#!/usr/bin/env bash
# Serving-stack smoke gate (CI): boot sjs_serve on an ephemeral loopback
# port, drive it with sjs_load for ~2 wall seconds, SIGTERM the daemon, and
# assert the full contract:
#
#   1. the server drains cleanly on SIGTERM (exit 0),
#   2. jobs actually completed (nonzero server completed counter AND a
#      nonzero server.jobs_completed metric),
#   3. the journal directory is a parseable instance bundle, and
#   4. replaying it through sjs_sim reproduces the live outcomes
#      byte-identically (diff of outcomes.csv).
#
# Usage: scripts/serve_smoke.sh   (BUILD_DIR overrides ./build)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
SERVE="$BUILD_DIR/tools/sjs_serve"
LOAD="$BUILD_DIR/tools/sjs_load"
SIM="$BUILD_DIR/tools/sjs_sim"
for bin in "$SERVE" "$LOAD" "$SIM"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)" >&2; exit 1; }
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

JOURNAL="$WORK/journal"
SERVER_LOG="$WORK/server.log"

# accel=20: two wall seconds of load span 40 virtual seconds, so plenty of
# jobs resolve while the session is still live.
"$SERVE" --port=0 --journal="$JOURNAL" --accel=20 --metrics \
  > "$SERVER_LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "$SERVER_LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVER_LOG" >&2; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server never reported LISTENING" >&2; exit 1; }
echo "server up on port $PORT (pid $SERVER_PID)"

"$LOAD" --port="$PORT" --duration=2 --rate=200 --linger=1 --seed=7

echo "sending SIGTERM"
kill -TERM "$SERVER_PID"
SERVER_STATUS=0
wait "$SERVER_PID" || SERVER_STATUS=$?
SERVER_PID=""
cat "$SERVER_LOG"
[ "$SERVER_STATUS" -eq 0 ] || {
  echo "FAIL: server exited $SERVER_STATUS after SIGTERM" >&2; exit 1; }

COMPLETED="$(sed -n 's/^server: .* \([0-9]*\) completed.*/\1/p' "$SERVER_LOG")"
[ -n "$COMPLETED" ] && [ "$COMPLETED" -gt 0 ] || {
  echo "FAIL: no completed jobs in server summary" >&2; exit 1; }

METRIC="$(awk '/server\.jobs_completed:/ { print $2 }' "$SERVER_LOG")"
[ -n "$METRIC" ] && awk -v m="$METRIC" 'BEGIN { exit !(m > 0) }' || {
  echo "FAIL: server.jobs_completed metric missing or zero" >&2; exit 1; }

for f in jobs.csv capacity.csv band.csv meta.csv outcomes.csv; do
  [ -s "$JOURNAL/$f" ] || { echo "FAIL: journal missing $f" >&2; exit 1; }
done

SCHEDULER="$(awk -F, '$1 == "scheduler" { print $2 }' "$JOURNAL/meta.csv")"
"$SIM" --bundle="$JOURNAL" --scheduler="$SCHEDULER" \
  --outcomes-csv="$WORK/replay_outcomes.csv" > "$WORK/replay.log"
cat "$WORK/replay.log"
diff "$JOURNAL/outcomes.csv" "$WORK/replay_outcomes.csv" || {
  echo "FAIL: replay outcomes differ from the live session" >&2; exit 1; }

echo "PASS: clean SIGTERM drain, $COMPLETED jobs completed, replay bit-exact"
