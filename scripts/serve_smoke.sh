#!/usr/bin/env bash
# Serving-stack smoke gate (CI): boot sjs_serve on an ephemeral loopback
# port, drive it with sjs_load for ~2 wall seconds, SIGTERM the daemon, and
# assert the full contract:
#
#   1. the server drains cleanly on SIGTERM (exit 0),
#   2. jobs actually completed (nonzero server completed counter AND a
#      nonzero server.jobs_completed metric),
#   3. the journal directory is a parseable instance bundle, and
#   4. replaying it through sjs_sim reproduces the live outcomes
#      byte-identically (diff of outcomes.csv).
#
# The gate runs three times: against the single-threaded server, against the
# sharded plane (--shards=4, sjs_load --connections=4, where step 3/4 apply
# to EVERY per-shard bundle <journal>/shard<k> independently), and against
# the fleet plane (--cluster=4, replayed via sjs_sim --cluster-bundle).
#
# Usage: scripts/serve_smoke.sh   (BUILD_DIR overrides ./build)
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
SERVE="$BUILD_DIR/tools/sjs_serve"
LOAD="$BUILD_DIR/tools/sjs_load"
SIM="$BUILD_DIR/tools/sjs_sim"
for bin in "$SERVE" "$LOAD" "$SIM"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)" >&2; exit 1; }
done

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# replay_bundle <bundle_dir> <tag>: bundle is complete, parseable, and
# replays through sjs_sim to a byte-identical outcomes.csv.
replay_bundle() {
  local bundle="$1" tag="$2"
  for f in jobs.csv capacity.csv band.csv meta.csv outcomes.csv; do
    [ -s "$bundle/$f" ] || { echo "FAIL($tag): bundle missing $f" >&2; exit 1; }
  done
  local scheduler
  scheduler="$(awk -F, '$1 == "scheduler" { print $2 }' "$bundle/meta.csv")"
  "$SIM" --bundle="$bundle" --scheduler="$scheduler" \
    --outcomes-csv="$WORK/replay_$tag.csv" > "$WORK/replay_$tag.log"
  diff "$bundle/outcomes.csv" "$WORK/replay_$tag.csv" || {
    echo "FAIL($tag): replay outcomes differ from the live session" >&2
    exit 1
  }
  echo "replay bit-exact: $tag"
}

# replay_cluster_bundle <bundle_dir> <tag>: same contract for a cluster
# journal — complete, parseable, byte-exact through sjs_sim --cluster-bundle.
replay_cluster_bundle() {
  local bundle="$1" tag="$2"
  for f in fleet.csv server0.csv server3.csv band.csv meta.csv jobs.csv \
           outcomes.csv; do
    [ -s "$bundle/$f" ] || { echo "FAIL($tag): bundle missing $f" >&2; exit 1; }
  done
  "$SIM" --cluster-bundle="$bundle" \
    --outcomes-csv="$WORK/replay_$tag.csv" > "$WORK/replay_$tag.log"
  diff "$bundle/outcomes.csv" "$WORK/replay_$tag.csv" || {
    echo "FAIL($tag): cluster replay outcomes differ from the live session" >&2
    exit 1
  }
  echo "replay bit-exact: $tag"
}

# smoke_phase <tag> <journal_dir> <extra serve flags...> -- <extra load flags...>
smoke_phase() {
  local tag="$1" journal="$2"
  shift 2
  local serve_flags=()
  while [ "$1" != "--" ]; do serve_flags+=("$1"); shift; done
  shift
  local load_flags=("$@")
  local server_log="$WORK/server_$tag.log"

  # accel=20: two wall seconds of load span 40 virtual seconds, so plenty of
  # jobs resolve while the session is still live.
  "$SERVE" --port=0 --journal="$journal" --accel=20 --metrics \
    "${serve_flags[@]}" > "$server_log" 2>&1 &
  SERVER_PID=$!

  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^LISTENING \([0-9]*\)$/\1/p' "$server_log")"
    [ -n "$port" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$server_log" >&2; exit 1; }
    sleep 0.1
  done
  [ -n "$port" ] || { echo "server never reported LISTENING" >&2; exit 1; }
  echo "[$tag] server up on port $port (pid $SERVER_PID)"

  "$LOAD" --port="$port" --duration=2 --rate=200 --linger=1 --seed=7 \
    "${load_flags[@]}"

  echo "[$tag] sending SIGTERM"
  kill -TERM "$SERVER_PID"
  local status=0
  wait "$SERVER_PID" || status=$?
  SERVER_PID=""
  cat "$server_log"
  [ "$status" -eq 0 ] || {
    echo "FAIL($tag): server exited $status after SIGTERM" >&2; exit 1; }

  COMPLETED="$(sed -n 's/^server: .* \([0-9]*\) completed.*/\1/p' "$server_log")"
  [ -n "$COMPLETED" ] && [ "$COMPLETED" -gt 0 ] || {
    echo "FAIL($tag): no completed jobs in server summary" >&2; exit 1; }

  local metric
  metric="$(awk '/server\.jobs_completed:/ { print $2 }' "$server_log")"
  [ -n "$metric" ] && awk -v m="$metric" 'BEGIN { exit !(m > 0) }' || {
    echo "FAIL($tag): server.jobs_completed metric missing or zero" >&2
    exit 1
  }
}

# --- Phase 1: single-threaded AdmissionServer (the original gate) ----------
smoke_phase single "$WORK/journal" --
replay_bundle "$WORK/journal" single
SINGLE_COMPLETED="$COMPLETED"

# --- Phase 2: sharded plane, 4 shards x 4 loadgen connections --------------
smoke_phase sharded "$WORK/journal4" --shards=4 -- --connections=4
for k in 0 1 2 3; do
  replay_bundle "$WORK/journal4/shard$k" "shard$k"
done
# The per-shard drain lines prove every shard carried traffic.
for k in 0 1 2 3; do
  grep -q "^shard $k drained:" "$WORK/server_sharded.log" || {
    echo "FAIL: no drain summary for shard $k" >&2; exit 1; }
done

SHARDED_COMPLETED="$COMPLETED"

# --- Phase 3: elastic fleet (--cluster=4) ----------------------------------
smoke_phase cluster "$WORK/journalc" --cluster=4 --
replay_cluster_bundle "$WORK/journalc" cluster
grep -q "^drained: cluster of 4" "$WORK/server_cluster.log" || {
  echo "FAIL: no cluster drain summary" >&2; exit 1; }

echo "PASS: clean SIGTERM drains ($SINGLE_COMPLETED single / $SHARDED_COMPLETED sharded / $COMPLETED cluster completed), all replays bit-exact"
