#!/usr/bin/env bash
# Captures the micro-benchmark baseline into BENCH_micro.json at the repo
# root. Run it before and after a hot-path change and diff the numbers;
# the committed file is the reference the next optimisation PR compares
# against.
#
# Usage:
#   scripts/bench_baseline.sh             # full capture (~1 min)
#   SMOKE=1 scripts/bench_baseline.sh     # CI smoke: tiny min_time, engine +
#                                         # capacity benches only; JSON kept
#                                         # at build/bench_micro_smoke.json
#                                         # for the CI artifact, never
#                                         # committed
#   BUILD_DIR=build-foo scripts/bench_baseline.sh   # bench a specific tree
#
# The script refuses to produce numbers from anything but a plain Release
# tree: benchmarking a Debug/RelWithDebInfo or sanitizer build silently
# understates the hot paths by integer factors, and a baseline captured that
# way poisons every comparison made against it. It also warns when the
# machine is already busy (1-minute load average), since a loaded box skews
# single-threaded wall-clock benches.
#
# Note: --benchmark_min_time is passed as a plain double (not "0.2s") for
# compatibility with older google-benchmark releases that reject the
# unit-suffixed form.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

# Release-only gate. For a pre-existing tree, inspect the cache BEFORE
# running cmake on it: re-configuring with -DCMAKE_BUILD_TYPE=Release would
# silently rewrite the tree's cached build type (e.g. flip a TSan
# RelWithDebInfo tree to Release), so an unsuitable tree must be rejected
# untouched. Fresh trees are configured Release explicitly.
cache="${BUILD_DIR}/CMakeCache.txt"
if [[ -f "${cache}" ]]; then
  build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${cache}")
  sanitize=$(sed -n 's/^SJS_SANITIZE:[^=]*=//p' "${cache}")
  if [[ "${build_type}" != "Release" ]]; then
    echo "error: ${BUILD_DIR} is configured as '${build_type:-<empty>}', not Release." >&2
    echo "       Benchmark numbers from non-Release trees are meaningless;" >&2
    echo "       reconfigure with -DCMAKE_BUILD_TYPE=Release or point BUILD_DIR" >&2
    echo "       at a Release tree." >&2
    exit 1
  fi
  if [[ -n "${sanitize}" ]]; then
    echo "error: ${BUILD_DIR} has SJS_SANITIZE='${sanitize}'; sanitizer" >&2
    echo "       instrumentation distorts benchmarks. Use an uninstrumented" >&2
    echo "       Release tree." >&2
    exit 1
  fi
  cmake -B "${BUILD_DIR}" >/dev/null
else
  generator_args=()
  if command -v ninja >/dev/null 2>&1; then
    generator_args=(-G Ninja)
  fi
  cmake -B "${BUILD_DIR}" "${generator_args[@]}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

# Busy-box warning: a 1-minute load average at or above 1 per core means the
# bench will time-share the CPU and report inflated, noisy wall-clock times.
load=$(cut -d' ' -f1 /proc/loadavg 2>/dev/null || echo 0)
ncpu=$(nproc 2>/dev/null || echo 1)
if awk -v l="${load}" -v n="${ncpu}" 'BEGIN { exit !(l >= n * 0.8) }'; then
  echo "warning: load average ${load} on ${ncpu} CPU(s) — the machine is busy;" >&2
  echo "         benchmark numbers captured now will be noisy." >&2
fi

cmake --build "${BUILD_DIR}" --target bench_micro

if [[ "${SMOKE:-0}" == "1" ]]; then
  out="${BUILD_DIR}/bench_micro_smoke.json"
  # The BM_Engine prefix deliberately covers the timer-wheel benches too
  # (BM_EngineTimerChurn, BM_EngineTimerOccupancy) so every CI run leaves an
  # inspectable wheel-vs-heap datapoint in the artifact. BM_LiveSteadyState
  # rides along so each CI artifact also records allocs_per_op for the warmed
  # live session (must be 0; it runs a fixed iteration count, so min_time
  # does not shorten it).
  "./${BUILD_DIR}/bench/bench_micro" \
    --benchmark_filter='BM_Capacity|BM_Engine|BM_FullSimulation|BM_LiveSteadyState|BM_ReadyQueue' \
    --benchmark_min_time=0.01 \
    --benchmark_format=json \
    --benchmark_out="${out}"
  echo "smoke run ok (json at ${out}, uploaded as a CI artifact, not committed)"
else
  "./${BUILD_DIR}/bench/bench_micro" \
    --benchmark_min_time=0.2 \
    --benchmark_format=json \
    --benchmark_out=BENCH_micro.json
  echo "baseline written to BENCH_micro.json"
fi
