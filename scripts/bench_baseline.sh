#!/usr/bin/env bash
# Captures the micro-benchmark baseline into BENCH_micro.json at the repo
# root. Run it before and after a hot-path change and diff the numbers;
# the committed file is the reference the next optimisation PR compares
# against.
#
# Usage:
#   scripts/bench_baseline.sh             # full capture (~1 min)
#   SMOKE=1 scripts/bench_baseline.sh     # CI smoke: tiny min_time, engine +
#                                         # capacity benches only, result
#                                         # discarded to a temp file
#
# Note: --benchmark_min_time is passed as a plain double (not "0.2s") for
# compatibility with older google-benchmark releases that reject the
# unit-suffixed form.
set -euo pipefail
cd "$(dirname "$0")/.."

generator_args=()
if [[ ! -f build/CMakeCache.txt ]] && command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi
cmake -B build "${generator_args[@]}" >/dev/null
cmake --build build --target bench_micro

if [[ "${SMOKE:-0}" == "1" ]]; then
  out=$(mktemp /tmp/bench_micro_smoke.XXXXXX.json)
  ./build/bench/bench_micro \
    --benchmark_filter='BM_Capacity|BM_Engine|BM_FullSimulation' \
    --benchmark_min_time=0.01 \
    --benchmark_format=json \
    --benchmark_out="${out}"
  echo "smoke run ok (json at ${out}, not committed)"
else
  ./build/bench/bench_micro \
    --benchmark_min_time=0.2 \
    --benchmark_format=json \
    --benchmark_out=BENCH_micro.json
  echo "baseline written to BENCH_micro.json"
fi
