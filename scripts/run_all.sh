#!/usr/bin/env bash
# Full pipeline: configure, build, test, regenerate every paper experiment.
# Outputs land next to this repo root (table1.csv, fig1_*.csv, logs).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for bench in build/bench/*; do
    echo "==================== ${bench} ===================="
    "${bench}"
    echo
  done
} 2>&1 | tee bench_output.txt
