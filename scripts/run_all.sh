#!/usr/bin/env bash
# Full pipeline: configure, build, test, regenerate every paper experiment.
# Outputs land in results/ (table1.csv, fig1_*.csv + .gp, logs).
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when it is installed and build/ is not already configured with
# another generator; otherwise fall back to the CMake default (Makefiles).
generator_args=()
if [[ ! -f build/CMakeCache.txt ]] && command -v ninja >/dev/null 2>&1; then
  generator_args=(-G Ninja)
fi
cmake -B build "${generator_args[@]}"
cmake --build build
mkdir -p results
ctest --test-dir build --output-on-failure 2>&1 | tee results/test_output.txt

# Benches run from results/ so their CSV / gnuplot outputs land there.
(
  cd results
  for bench in ../build/bench/*; do
    [[ -f ${bench} && -x ${bench} ]] || continue
    echo "==================== $(basename "${bench}") ===================="
    "${bench}"
    echo
  done
) 2>&1 | tee results/bench_output.txt
