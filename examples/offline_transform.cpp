// The paper's offline reduction (Sec. III-A) end to end: take a varying-
// capacity instance, stretch it onto the constant-capacity axis, solve both
// systems exactly, and show the optima coincide — then compare the online
// algorithms against that clairvoyant optimum.
//
//   ./offline_transform [--seed=5] [--jobs=12]
#include <cstdio>

#include "capacity/capacity_process.hpp"
#include "capacity/stretch.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/greedy_offline.hpp"
#include "offline/maxflow.hpp"
#include "offline/transform_solver.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sjs;

  CliFlags flags;
  flags.add_int("seed", 5, "RNG seed");
  flags.add_int("jobs", 12, "instance size (exact solver is exponential)");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  // An overloaded little instance on a bursty capacity path.
  cap::TwoStateMarkovParams cp;
  cp.c_lo = 1.0;
  cp.c_hi = 8.0;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 5.0;
  auto capacity = cap::sample_two_state_markov(cp, 50.0, rng);
  auto jobs = gen::generate_small_random_jobs(
      static_cast<std::size_t>(flags.get_int("jobs")), 15.0, 7.0, 1.0, 2.0,
      rng);
  Instance instance(jobs, capacity, 1.0, 8.0);

  std::printf("=== The stretch transformation T(t) = (1/c_lo) \\int_0^t c ===\n");
  cap::StretchTransform transform(instance.capacity(), instance.c_lo());
  for (double t : {0.0, 10.0, 25.0, 50.0}) {
    std::printf("  T(%5.1f) = %8.2f   (T^-1 round-trip: %5.1f)\n", t,
                transform.forward(t), transform.inverse(transform.forward(t)));
  }

  auto direct = offline::exact_offline_value(instance);
  auto via_stretch = offline::solve_via_stretch(instance);
  std::printf("\nexact optimum, solved directly on varying capacity : %.3f "
              "(%llu nodes)\n",
              direct.value,
              static_cast<unsigned long long>(direct.nodes_visited));
  std::printf("exact optimum, solved on the stretched constant axis: %.3f "
              "(%llu nodes)\n",
              via_stretch.value,
              static_cast<unsigned long long>(via_stretch.nodes_visited));
  std::printf("reduction preserves the optimum: %s\n\n",
              std::abs(direct.value - via_stretch.value) < 1e-6 ? "YES"
                                                                : "NO (bug!)");

  auto greedy = offline::best_greedy_offline_value(instance);
  std::printf("polynomial offline approximations:\n");
  std::printf("  greedy (best of value/density order): %.3f (%.1f%% of OPT)\n",
              greedy.value, 100.0 * greedy.value / direct.value);
  std::printf("  flow upper bound                    : %.3f (>= OPT)\n\n",
              offline::offline_value_upper_bound(instance.jobs(),
                                                 instance.capacity()));

  std::printf("online algorithms vs the clairvoyant optimum:\n");
  for (const auto& factory : sched::extended_lineup({1.0, 8.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    std::printf("  %14s : %.3f (%.1f%% of OPT)\n", factory.name.c_str(),
                result.completed_value,
                100.0 * result.completed_value / direct.value);
  }
  return 0;
}
