// Trace-driven workflow: persist a capacity sample path to CSV (standing in
// for real datacenter telemetry), reload it, and schedule a batch workload
// against the reloaded trace. This is the integration point for users with
// production residual-capacity data — export "time,rate" rows and everything
// downstream works unchanged.
//
//   ./trace_driven [--trace=path.csv] [--seed=3]
// If --trace is given and the file exists it is used as-is; otherwise a CTMC
// sample path is generated and saved there first.
#include <cstdio>
#include <filesystem>

#include "capacity/capacity_process.hpp"
#include "capacity/capacity_stats.hpp"
#include "capacity/trace_io.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sjs;

  CliFlags flags;
  flags.add_string("trace", "residual_capacity.csv",
                   "capacity trace CSV (created if missing)");
  flags.add_int("seed", 3, "RNG seed");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }
  const std::string& path = flags.get_string("trace");
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  if (!std::filesystem::exists(path)) {
    cap::TwoStateMarkovParams cp;
    cp.c_lo = 1.0;
    cp.c_hi = 35.0;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 60.0;
    auto sampled = cap::sample_two_state_markov(cp, 400.0, rng);
    cap::save_trace(sampled, path);
    std::printf("no trace found — sampled a CTMC path and saved %zu "
                "breakpoints to %s\n",
                sampled.segments(), path.c_str());
  }

  auto capacity = cap::load_trace(path);
  std::printf("loaded trace: %zu segments, band [%g, %g], delta %.1f\n",
              capacity.segments(), capacity.min_rate(), capacity.max_rate(),
              capacity.delta());

  // Characterise the trace and recover CTMC parameters — what a user does
  // with real telemetry before generating synthetic what-if workloads.
  const double span = capacity.breakpoints().back();
  if (span > 0.0) {
    auto fit = cap::fit_two_state_markov(capacity, 0.0, span);
    std::printf("trace statistics over [0, %.0f]: mean rate %.2f, high-state "
                "duty cycle %.2f\n",
                span, cap::mean_rate(capacity, 0.0, span),
                cap::duty_cycle(capacity, (fit.c_lo + fit.c_hi) / 2.0, 0.0,
                                span));
    std::printf("fitted two-state CTMC: levels {%.2f, %.2f}, mean sojourns "
                "{%.1f, %.1f}, visits {%zu, %zu}\n\n",
                fit.c_lo, fit.c_hi, fit.mean_sojourn_lo, fit.mean_sojourn_hi,
                fit.low_visits, fit.high_visits);
  }

  // A batch workload sized to overload the trace's low-capacity stretches.
  gen::JobGenParams jp;
  jp.lambda = 5.0;
  jp.horizon = 300.0;
  jp.slack_factor = 1.2;  // a little SLA slack
  jp.c_lo = capacity.min_rate();
  auto jobs = gen::generate_jobs(jp, rng);
  Instance instance(jobs, capacity);
  std::printf("workload: %zu jobs, total value %.0f\n\n", instance.size(),
              instance.total_value());

  std::printf("%14s | %8s | %9s | %8s\n", "scheduler", "value %", "finished",
              "expired");
  for (const auto& factory : sched::extended_lineup(
           {capacity.min_rate(), capacity.max_rate()})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    std::printf("%14s | %7.2f%% | %9llu | %8llu\n", factory.name.c_str(),
                result.value_fraction() * 100.0,
                static_cast<unsigned long long>(result.completed_count),
                static_cast<unsigned long long>(result.expired_count));
  }
  return 0;
}
