// Quickstart: build a tiny secondary-job instance by hand, schedule it with
// V-Dover on a time-varying capacity path, and inspect the result.
//
//   ./quickstart
#include <cstdio>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "sched/vdover.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"

int main() {
  using namespace sjs;

  // 1. The residual capacity left by primary jobs: 1 core-equivalent for the
  //    first 6 seconds (primaries busy), then 4 (primaries idle).
  cap::CapacityProfile capacity({0.0, 6.0}, {1.0, 4.0});

  // 2. Three secondary jobs: release, workload (capacity-seconds), firm
  //    deadline, value. Ids are assigned by the Instance (release order).
  auto job = [](double r, double p, double d, double v) {
    Job j;
    j.release = r;
    j.workload = p;
    j.deadline = d;
    j.value = v;
    return j;
  };
  Instance instance(
      {
          job(0.0, 4.0, 5.0, 4.0),   // tight: needs most of the low period
          job(1.0, 3.0, 4.0, 9.0),   // urgent and valuable
          job(2.0, 8.0, 9.0, 6.0),   // big, saved by the capacity jump at t=6
      },
      capacity);

  std::printf("instance: %zu jobs, total value %.1f, band [%g, %g] "
              "(delta=%g), importance ratio k=%.2f\n",
              instance.size(), instance.total_value(), instance.c_lo(),
              instance.c_hi(), instance.delta(), instance.importance_ratio());
  std::printf("all individually admissible: %s\n\n",
              instance.all_individually_admissible() ? "yes" : "no");

  // 3. Schedule with V-Dover (defaults: conservative estimate c_lo, beta*).
  sched::VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  engine.record_schedule(true);  // keep the timeline for the Gantt below
  sim::SimResult result = engine.run_to_completion();

  // 4. Inspect.
  std::printf("%s\n\n", result.to_string().c_str());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const Job& j = instance.jobs()[i];
    const char* outcome =
        result.outcomes[i] == sim::JobOutcome::kCompleted ? "completed"
                                                          : "expired";
    std::printf("  %s -> %s (executed %.2f of %.2f)\n", j.to_string().c_str(),
                outcome, result.executed_work[i], j.workload);
  }
  std::printf("\nvalue accrual over time:\n");
  for (std::size_t i = 0; i < result.value_trace.size(); ++i) {
    std::printf("  t=%6.2f  cumulative value %.1f\n",
                result.value_trace.times()[i], result.value_trace.values()[i]);
  }
  std::printf("\nexecution timeline:\n%s",
              sim::render_gantt(instance, result).c_str());
  std::printf("\nV-Dover internals: %llu zero-laxity interrupts, "
              "%llu supplement dispatches, %llu supplement completions\n",
              static_cast<unsigned long long>(
                  scheduler.stats().zero_laxity_interrupts),
              static_cast<unsigned long long>(
                  scheduler.stats().supplement_dispatched),
              static_cast<unsigned long long>(
                  scheduler.stats().supplement_completed));
  return 0;
}
