// Spot-market scenario (the paper's motivating application, Sec. I): a cloud
// provider sells leftover capacity to deadline-constrained spot jobs. Primary
// load follows a diurnal sinusoid, so the residual capacity for spot work
// peaks at night. We compare the revenue (= value of spot jobs finished by
// their SLA deadlines) captured by V-Dover, the best Dover configuration,
// and the naive baselines, over several simulated days.
//
//   ./spot_market [--days=4] [--seed=1] [--lambda=8]
#include <cmath>
#include <cstdio>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sjs;

  CliFlags flags;
  flags.add_int("days", 4, "simulated days");
  flags.add_int("seed", 1, "RNG seed");
  flags.add_double("lambda", 8.0, "spot job arrival rate (jobs per hour)");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  const double hours = 24.0 * static_cast<double>(flags.get_int("days"));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));

  // Residual capacity: diurnal sinusoid between 2 and 30 "instance units",
  // peaking at 02:00 (primaries quiet at night).
  cap::SinusoidParams cp;
  cp.mid = 16.0;
  cp.amp = 14.0;
  cp.period = 24.0;
  cp.phase = M_PI;  // trough at midday
  cp.c_lo = 2.0;
  cp.c_hi = 30.0;
  cp.samples_per_period = 48;
  auto capacity = cap::sample_sinusoid(cp, hours + 24.0);

  // Spot jobs: Poisson arrivals, exponential sizes (instance-hours), bids
  // (value densities) uniform in [1, 7] $/instance-hour, SLA window sized to
  // the worst-case rate (zero conservative laxity — the paper's hard case).
  gen::JobGenParams jp;
  jp.lambda = flags.get_double("lambda");
  jp.horizon = hours;
  jp.workload_mean = 6.0;  // instance-hours
  jp.density_lo = 1.0;
  jp.density_hi = 7.0;
  jp.slack_factor = 1.0;
  jp.c_lo = cp.c_lo;
  auto jobs = gen::generate_jobs(jp, rng);
  Instance instance(jobs, capacity, cp.c_lo, cp.c_hi);

  std::printf("=== Spot market: %d day(s), %zu spot jobs, max revenue $%.0f "
              "===\n\n",
              static_cast<int>(flags.get_int("days")), instance.size(),
              instance.total_value());
  std::printf("residual capacity (hourly): %s\n\n",
              render_sparkline(
                  StepFunction(capacity.breakpoints(), capacity.rates())
                      .resample(0.0, hours, 48))
                  .c_str());

  std::printf("%14s | %10s | %8s | %9s | %11s | %10s\n", "scheduler",
              "revenue $", "% of max", "finished", "preemptions",
              "mean resp");
  double vdover_revenue = 0.0, best_other = 0.0;
  for (const auto& factory :
       sched::extended_lineup({cp.c_lo, (cp.c_lo + cp.c_hi) / 2, cp.c_hi})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    std::printf("%14s | %10.0f | %7.2f%% | %9llu | %11llu | %9.2fh\n",
                factory.name.c_str(), result.completed_value,
                result.value_fraction() * 100.0,
                static_cast<unsigned long long>(result.completed_count),
                static_cast<unsigned long long>(result.preemptions),
                result.mean_response_time());
    if (factory.name == "V-Dover") {
      vdover_revenue = result.completed_value;
    } else {
      best_other = std::max(best_other, result.completed_value);
    }
  }
  std::printf("\nV-Dover vs best alternative: %+.2f%%\n",
              100.0 * (vdover_revenue / best_other - 1.0));
  return 0;
}
