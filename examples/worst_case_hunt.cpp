// Hunt an adversarial instance for a scheduler, archive it as a replayable
// bundle, and compare the whole line-up on it. Demonstrates the worst-case
// search harness, instance-bundle persistence, and the exact offline solver
// working together: the instance that breaks EDF is usually handled far more
// gracefully by V-Dover (it cannot do worse than its Theorem 3(2) ratio).
//
//   ./worst_case_hunt [--target=EDF] [--out=worst_bundle] [--seed=9]
#include <cstdio>

#include "jobs/bundle.hpp"
#include "mc/worstcase.hpp"
#include "offline/exact.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"

namespace {

sjs::sched::NamedFactory factory_by_name(const std::string& name) {
  for (auto& f : sjs::sched::extended_lineup({1.0, 5.0})) {
    if (f.name == name) return f;
  }
  std::fprintf(stderr, "unknown scheduler %s, falling back to EDF\n",
               name.c_str());
  return sjs::sched::make_edf();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sjs;

  CliFlags flags;
  flags.add_string("target", "EDF", "scheduler to attack (factory name)");
  flags.add_string("out", "worst_bundle", "bundle directory for the archive");
  flags.add_int("seed", 9, "search seed");
  flags.add_int("iters", 300, "mutations per restart");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  mc::WorstCaseOptions options;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.iterations = static_cast<std::size_t>(flags.get_int("iters"));
  const auto target = factory_by_name(flags.get_string("target"));

  std::printf("hunting a worst-case instance for %s...\n",
              target.name.c_str());
  auto worst = mc::search_worst_case(options, target);
  std::printf("found ratio %.4f (online %.2f vs OPT %.2f) after %llu "
              "evaluations\n\n",
              worst.worst_ratio, worst.online_value, worst.offline_value,
              static_cast<unsigned long long>(worst.evaluations));

  // Rebuild the instance from the recorded genome pieces and archive it.
  std::vector<double> times{0.0};
  std::vector<double> rates{options.c_lo};
  double cover = options.horizon;
  for (const auto& j : worst.jobs) cover = std::max(cover, j.deadline);
  double t = std::max(worst.wave_phase, 1e-9);
  bool high = true;
  while (t < cover) {
    times.push_back(t);
    rates.push_back(high ? options.c_hi : options.c_lo);
    t += high ? worst.wave_high : worst.wave_low;
    high = !high;
  }
  Instance instance(worst.jobs, cap::CapacityProfile(times, rates),
                    options.c_lo, options.c_hi);
  save_instance_bundle(instance, flags.get_string("out"));
  std::printf("archived to %s/ (jobs.csv, capacity.csv, band.csv)\n\n",
              flags.get_string("out").c_str());

  // Replay the archived instance with every scheduler.
  auto replay = load_instance_bundle(flags.get_string("out"));
  auto opt = offline::exact_offline_value(replay);
  std::printf("replaying the archived instance (OPT = %.2f):\n", opt.value);
  for (const auto& factory : sched::extended_lineup({1.0, 5.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(replay, *scheduler);
    auto result = engine.run_to_completion();
    std::printf("  %14s : %8.2f  (%.1f%% of OPT)%s\n", factory.name.c_str(),
                result.completed_value,
                opt.value > 0 ? 100.0 * result.completed_value / opt.value
                              : 100.0,
                factory.name == target.name ? "   <- hunted" : "");
  }
  return 0;
}
