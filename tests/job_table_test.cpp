// Unit tests for the SoA job slab (sim/job_table.hpp): generation-stamped
// handle semantics, free-list slot reuse, clear()-for-reuse across
// Monte-Carlo cells, and the bounded-memory contract under churn.
//
// The differential test mirrors ready_queue_test.cpp's approach: drive the
// slab and a deliberately naive AoS reference (maps keyed by handle) with
// one random operation stream and require identical observable state after
// every step — including that stale handles (released, or from before a
// clear()) are rejected exactly when the reference says they must be.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "jobs/job.hpp"
#include "sim/job_table.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

using sim::JobTable;

TEST(JobTableTest, DenseBindMatchesInstanceOrder) {
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(Job{static_cast<JobId>(i), 0.0, 1.0 + i, 10.0, 1.0});
  }
  JobTable table;
  table.bind_dense(jobs);
  ASSERT_EQ(table.size(), 5u);
  for (JobId id = 0; id < 5; ++id) {
    // Dense ids are numerically the slot: generation 0.
    EXPECT_EQ(job_slot(id), static_cast<std::uint32_t>(id));
    EXPECT_EQ(job_generation(id), 0u);
    EXPECT_TRUE(table.valid(id));
    EXPECT_EQ(table.remaining(id), 1.0 + id);
    EXPECT_EQ(table.outcome(id), sim::JobOutcome::kPending);
    EXPECT_FALSE(table.released(id));
  }
}

TEST(JobTableTest, AppendDenseAssignsAdmissionOrderIds) {
  JobTable table;
  table.bind_dense({});
  EXPECT_EQ(table.append_dense(2.0), 0);
  EXPECT_EQ(table.append_dense(3.0), 1);
  EXPECT_EQ(table.append_dense(4.0), 2);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_EQ(table.remaining(1), 3.0);
}

TEST(JobTableTest, ReleaseSlotInvalidatesHandleAndReusesSlot) {
  JobTable table;
  const JobId a = table.allocate(1.0);
  const JobId b = table.allocate(2.0);
  ASSERT_TRUE(table.valid(a));
  ASSERT_TRUE(table.valid(b));
  EXPECT_EQ(table.live_count(), 2u);

  EXPECT_TRUE(table.release_slot(a));
  EXPECT_FALSE(table.valid(a));
  EXPECT_EQ(table.live_count(), 1u);
  // Releasing again (or any stale handle) is a harmless no-op.
  EXPECT_FALSE(table.release_slot(a));
  EXPECT_EQ(table.live_count(), 1u);

  // The freed slot is reused under a NEW generation: same slot, different
  // handle, and the stale handle still bounces.
  const JobId c = table.allocate(3.0);
  EXPECT_EQ(job_slot(c), job_slot(a));
  EXPECT_NE(job_generation(c), job_generation(a));
  EXPECT_TRUE(table.valid(c));
  EXPECT_FALSE(table.valid(a));
  EXPECT_EQ(table.remaining(c), 3.0);
  EXPECT_EQ(table.size(), 2u);  // no third slot was ever created
}

TEST(JobTableTest, ClearBumpsGenerationsOfOccupiedSlots) {
  JobTable table;
  const JobId a = table.allocate(1.0);
  const JobId b = table.allocate(2.0);
  table.set_released(a);
  table.clear();

  EXPECT_EQ(table.live_count(), 0u);
  EXPECT_FALSE(table.valid(a));
  EXPECT_FALSE(table.valid(b));
  // Lanes keep their high-water length (clear is reuse, not shrink).
  EXPECT_EQ(table.slots(), 2u);

  // Slots come back under fresh generations with fresh lane state.
  const JobId c = table.allocate(5.0);
  EXPECT_FALSE(table.valid(a));
  EXPECT_FALSE(table.valid(b));
  EXPECT_TRUE(table.valid(c));
  EXPECT_FALSE(table.released(c));
  EXPECT_EQ(table.remaining(c), 5.0);
  EXPECT_EQ(table.size(), 2u);
}

TEST(JobTableTest, RandomizedDifferentialAgainstAosReference) {
  // The reference is the pre-slab design: per-job state in ordered maps
  // keyed by the full handle. A handle is valid iff it is in the map;
  // release erases it; clear erases everything. The slab must agree on
  // every observable after every operation.
  JobTable table;
  std::map<JobId, double> ref_remaining;
  std::map<JobId, bool> ref_released;
  std::vector<JobId> live;  // reference's live handles, insertion order
  std::vector<JobId> stale; // every handle ever invalidated
  Rng rng(20250809);

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.40 || live.empty()) {
      // Allocate.
      const double workload = rng.uniform(0.5, 9.5);
      const JobId id = table.allocate(workload);
      ASSERT_TRUE(table.valid(id));
      ASSERT_EQ(ref_remaining.count(id), 0u) << "slab returned a live handle";
      ref_remaining[id] = workload;
      ref_released[id] = false;
      live.push_back(id);
    } else if (roll < 0.65) {
      // Release a random live handle.
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(live.size())));
      const JobId id = live[std::min(k, live.size() - 1)];
      EXPECT_TRUE(table.release_slot(id));
      ref_remaining.erase(id);
      ref_released.erase(id);
      live.erase(live.begin() +
                 static_cast<std::ptrdiff_t>(std::min(k, live.size() - 1)));
      stale.push_back(id);
    } else if (roll < 0.85) {
      // Mutate a random live handle's lanes.
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform(0.0, static_cast<double>(live.size())));
      const JobId id = live[std::min(k, live.size() - 1)];
      const double served = rng.uniform(0.0, 0.5);
      table.remaining(id) -= served;
      ref_remaining[id] -= served;
      if (rng.uniform(0.0, 1.0) < 0.3) {
        table.set_released(id);
        ref_released[id] = true;
      }
    } else if (roll < 0.995) {
      // Probe a stale handle: must be invalid, release must no-op.
      if (!stale.empty()) {
        const std::size_t k = static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(stale.size())));
        const JobId id = stale[std::min(k, stale.size() - 1)];
        EXPECT_FALSE(table.valid(id));
        EXPECT_FALSE(table.release_slot(id));
      }
    } else {
      // Clear-for-reuse: the Monte-Carlo cell boundary.
      table.clear();
      for (const auto& [id, unused] : ref_remaining) stale.push_back(id);
      ref_remaining.clear();
      ref_released.clear();
      live.clear();
      EXPECT_EQ(table.live_count(), 0u);
    }

    // Full-state comparison every step.
    ASSERT_EQ(table.live_count(), ref_remaining.size());
    for (const auto& [id, rem] : ref_remaining) {
      ASSERT_TRUE(table.valid(id)) << "live handle rejected";
      ASSERT_EQ(table.remaining(id), rem);
      ASSERT_EQ(table.released(id), ref_released[id]);
    }
  }

  // The run exercised reuse: far fewer slots than allocations.
  EXPECT_LT(table.slots(), 20000u / 4);
}

TEST(JobTableTest, ChurnKeepsSlotsBoundedByPeakOccupancy) {
  // Mirror of ready_queue_test's bounded-memory churn test: on a fresh
  // thread (so nothing donated by earlier tests skews accounting), cycle
  // far more allocations through the slab than it ever holds at once. Slot
  // count must track PEAK occupancy, never the operation count — this is
  // the bounded-memory contract for unbounded-session serving.
  std::thread worker([] {
    constexpr std::size_t kWindow = 64;
    constexpr int kOps = 100000;
    JobTable table;
    table.reserve(kWindow);
    std::vector<JobId> window;
    Rng rng(777);
    for (int i = 0; i < kOps; ++i) {
      window.push_back(table.allocate(rng.uniform(1.0, 2.0)));
      if (window.size() == kWindow) {
        // Free in a scrambled order so the LIFO free list sees churn.
        while (!window.empty()) {
          const std::size_t k = static_cast<std::size_t>(rng.uniform(
              0.0, static_cast<double>(window.size())));
          const std::size_t j = std::min(k, window.size() - 1);
          EXPECT_TRUE(table.release_slot(window[j]));
          window[j] = window.back();
          window.pop_back();
        }
      }
    }
    EXPECT_EQ(table.peak(), kWindow);
    EXPECT_LE(table.slots(), kWindow);
  });
  worker.join();
}

TEST(JobTableTest, DenseRebindInvalidatesPriorHandlesByContract) {
  std::vector<Job> jobs{Job{0, 0.0, 1.0, 10.0, 1.0},
                        Job{1, 0.0, 2.0, 10.0, 1.0}};
  JobTable table;
  table.bind_dense(jobs);
  table.remaining(0) = 0.25;
  table.set_released(1);

  // Rebinding the same instance resets every slot to its initial state.
  table.bind_dense(jobs);
  EXPECT_EQ(table.remaining(0), 1.0);
  EXPECT_FALSE(table.released(1));
  EXPECT_EQ(table.outcome(0), sim::JobOutcome::kPending);
  EXPECT_EQ(table.live_count(), 2u);
}

}  // namespace
}  // namespace sjs
