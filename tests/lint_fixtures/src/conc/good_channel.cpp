// Fixture: raw-concurrency does NOT apply outside src/serve/ and
// src/sched/ — conc/ is exactly where the primitives are supposed to live.
#include <atomic>
#include <mutex>
#include <thread>

namespace sjs::conc {

struct FixtureChannel {
  std::mutex mu;
  std::atomic<bool> pending{false};
  std::thread consumer;
};

}  // namespace sjs::conc
