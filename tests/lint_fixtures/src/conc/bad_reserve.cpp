// Fixture: two-phase channel discipline. A reserve with no commit/abort at
// all fires; a return between reserve and its resolution fires unless it is
// the failure branch of a status check wrapping the reserve call itself; an
// audited allow() silences the separated-status-check idiom.
namespace fixture {

struct Reservation {
  bool valid = false;
};

struct Chan {
  int reserve(Reservation& res);
  void commit(Reservation& res, int value);
  void abort(Reservation& res);
};

// BAD: channel-discipline (return between reserve and commit; the reserve
// is not inside the if's parens, so the analyzer cannot see the pairing).
int leaky(Chan& ch) {
  Reservation res;
  const int st = ch.reserve(res);
  if (st != 0) return st;
  ch.commit(res, 1);
  return 0;
}

// BAD: channel-discipline (no commit/abort anywhere in the function).
int never_resolves(Chan& ch) {
  Reservation res;
  ch.reserve(res);
  return 0;
}

// OK: the failure branch lives inside the status-check block.
int disciplined(Chan& ch) {
  Reservation res;
  if (ch.reserve(res) != 0) {
    return -1;
  }
  ch.commit(res, 2);
  return 0;
}

// OK: same shape as leaky, but carries the audited suppression.
int audited(Chan& ch) {
  Reservation res;
  const int st = ch.reserve(res);
  // sjs-lint: allow(channel-discipline): fixture: failure-branch return, the failed reserve claimed nothing
  if (st != 0) return st;
  ch.commit(res, 3);
  return 0;
}

}  // namespace fixture
