// Fixture: raw-concurrency — raw primitives in src/serve/ must be flagged
// (cross-thread traffic belongs behind conc::Channel / conc::ShardSet);
// the suppressed member and the commented mention must stay silent.
#include <atomic>
#include <mutex>
#include <thread>

namespace sjs::serve {

struct BadPlane {
  void spin() {
    std::thread t([] {});
    std::lock_guard<std::mutex> lock(mu_);
    t.join();
  }

  // std::thread in a comment is fine.
  std::mutex mu_;
  std::atomic<int> counter_{0};
  // sjs-lint: allow(raw-concurrency): fixture proves suppression works
  std::atomic<bool> suppressed_{false};
};

}  // namespace sjs::serve
