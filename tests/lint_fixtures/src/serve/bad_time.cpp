// Fixture: the banned-time rule must cover src/serve/ too — the serving
// stack takes an injected serve::Clock&, and only serve/clock.cpp (via an
// audited suppression) may touch a real clock.
#include <chrono>
#include <ctime>

namespace fixture {

double stray_wall_clock_reads() {
  // BAD: banned-time — a serve/ file reading the system clock directly.
  const auto wall = std::chrono::system_clock::now().time_since_epoch();
  // BAD: banned-time — POSIX clock read bypassing serve::Clock.
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::chrono::duration<double>(wall).count() +
         static_cast<double>(ts.tv_sec);
}

}  // namespace fixture
