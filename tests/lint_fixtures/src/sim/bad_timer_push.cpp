// Fixture: timer-wheel-bypass. kTimer events pushed straight into an event
// queue in src/sim/ must be flagged; mentioning kTimer without a push, or
// pushing non-timer events, must stay silent.
#include <vector>

enum class EventType { kRelease, kCompletion, kTimer };

struct Event {
  double time;
  EventType type;
};

struct BadQueue {
  std::vector<Event> heap_;

  void bypass_wheel(double t) {
    heap_.push_back(Event{t, EventType::kTimer});  // finding 1
  }

  void bypass_wheel_emplace(double t) {
    heap_.emplace_back(Event{t, EventType::kTimer});  // finding 2
  }

  void fine_non_timer(double t) {
    heap_.push_back(Event{t, EventType::kCompletion});  // ok: not a timer
  }

  bool fine_mention(const Event& e) {
    return e.type == EventType::kTimer;  // ok: no push on this line
  }

  void suppressed(double t) {
    // sjs-lint: allow(timer-wheel-bypass): fixture exercising suppression
    heap_.push_back(Event{t, EventType::kTimer});
  }
};
