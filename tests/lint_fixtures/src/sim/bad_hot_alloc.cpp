// Fixture: allocation-capable operations reachable from a
// `// sjs-hot-path-root` annotation. One reachable alloc fires; an audited
// per-site allow() silences its site; an audited allow() on a call line cuts
// that edge (cold path); an unreachable function never fires.
#include <vector>

namespace fixture {

struct HotLoop {
  std::vector<int> buf;

  // BAD: alloc-in-hot-path (reachable from spin()).
  void helper_allocates() { buf.push_back(1); }

  void audited_alloc() {
    // sjs-lint: allow(alloc-in-hot-path): fixture: buffer pre-sized in setup, push never reallocates
    buf.push_back(2);
  }

  // Never reported: the call edge into it is an audited cold path.
  void cold_setup() { buf.resize(64); }

  // sjs-hot-path-root
  void spin() {
    helper_allocates();
    audited_alloc();
    // sjs-lint: allow(alloc-in-hot-path): fixture: init-only edge, runs before the loop
    cold_setup();
  }
};

// Never reported: not reachable from any root.
void unreachable_alloc(std::vector<int>& v) { v.push_back(3); }

}  // namespace fixture
