// Fixture: a three-deep call chain reaching a direct clock read. The read
// itself is a banned-time finding; every unsuppressed caller up the chain is
// a transitive-banned-time finding, and an audited allow() on a call line
// both silences that edge and stops the taint from climbing past it.
#include <chrono>

namespace fixture {

double read_clock_directly() {
  // BAD: banned-time (direct steady_clock::now) — and the taint seed.
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

// BAD: transitive-banned-time (calls read_clock_directly).
double middle_layer() { return read_clock_directly(); }

// BAD: transitive-banned-time (reaches the read through middle_layer).
double top_layer() { return middle_layer(); }

double audited_top() {
  // sjs-lint: allow(transitive-banned-time): fixture: sanctioned seam — callers treat this as injected time
  return middle_layer();
}

// Must stay silent: the audited edge above cut the propagation.
double above_audited() { return audited_top(); }

}  // namespace fixture
