// Fixture: half of a sim <-> sched module include cycle (see
// sched/cycle_b.hpp). The diagnostic anchors at the lexicographically
// smallest module in the cycle, so it is reported from the sched side.
#pragma once

#include "sched/cycle_b.hpp"

namespace fixture {
struct CycleA {};
}  // namespace fixture
