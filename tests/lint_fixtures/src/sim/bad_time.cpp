// Fixture: banned-time must fire on every ambient time/randomness source.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double ambient() {
  double x = 0.5;
  x += static_cast<double>(std::rand());                 // BAD: banned-time
  x += static_cast<double>(std::random_device{}());      // BAD: banned-time
  x += static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x += static_cast<double>(time(nullptr));               // BAD: banned-time
  return x;
}

}  // namespace fixture
