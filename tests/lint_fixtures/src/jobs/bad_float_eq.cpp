// Fixture: float-eq must fire on raw ==/!= against FP literals and on
// time-named operands.
namespace fixture {

struct Ev {
  double time;
};

bool zero_payload(double a) { return a == 0.0; }  // BAD: float-eq (literal)

bool same_instant(const Ev& x, const Ev& y) {
  return x.time == y.time;  // BAD: float-eq (time-named operands)
}

}  // namespace fixture
