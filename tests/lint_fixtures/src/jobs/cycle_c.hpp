// Fixture: half of a jobs <-> obs module include cycle (see
// obs/cycle_d.hpp) with an audited suppression at the anchor ("jobs" <
// "obs", and this is the only jobs -> obs edge) — must stay silent.
#pragma once

// sjs-lint: allow(include-cycle): fixture: transitional cycle, tracked for the interface-header split
#include "obs/cycle_d.hpp"

namespace fixture {
struct CycleC {};
}  // namespace fixture
