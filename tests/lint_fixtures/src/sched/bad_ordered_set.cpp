// Fixture: ordered-set-hot-path must fire on std::set/std::multiset keyed on
// double (directly or via pair<double, ...>) in sched/ or sim/, must NOT fire
// on unordered_set, and must honour an audited suppression.
#include <set>
#include <unordered_set>
#include <utility>

namespace fixture {

struct Sched {
  std::set<std::pair<double, int>> ready_;        // BAD: ordered-set-hot-path
  std::multiset<double> laxities_;                // BAD: ordered-set-hot-path
  std::unordered_set<double> seen_;               // OK: not an ordered set
  std::set<int> ids_;                             // OK: not keyed on double
  // sjs-lint: allow(ordered-set-hot-path): cold path, audited 2026-08
  std::set<std::pair<double, int>> audit_log_;    // suppressed
};

}  // namespace fixture
