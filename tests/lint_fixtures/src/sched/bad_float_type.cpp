// Fixture: float-type must fire on any `float` in simulation code.
namespace fixture {

float truncate_deadline(double d) {  // BAD: float-type
  return static_cast<float>(d);      // BAD: float-type
}

}  // namespace fixture
