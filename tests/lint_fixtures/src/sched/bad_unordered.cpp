// Fixture: unordered-iter must fire on hot-path iteration over unordered
// containers (both range-for and explicit .begin() walks).
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Sched {
  std::unordered_map<int, double> queue_;
  std::unordered_set<int> live_;

  double total() const {
    double sum = 0.0;
    for (const auto& [id, laxity] : queue_) {  // BAD: unordered-iter
      sum += laxity;
    }
    return sum;
  }

  int first() const {
    auto it = live_.begin();  // BAD: unordered-iter
    return it == live_.end() ? -1 : *it;
  }
};

}  // namespace fixture
