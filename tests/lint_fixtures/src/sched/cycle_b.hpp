// Fixture: half of a sim <-> sched module include cycle (see
// sim/cycle_a.hpp). BAD: include-cycle, anchored here ("sched" < "sim").
#pragma once

#include "sim/cycle_a.hpp"

namespace fixture {
struct CycleB {};
}  // namespace fixture
