// Fixture: raw-concurrency — the rule covers src/sched/ too: schedulers run
// inside a single-threaded engine, so any primitive here is a smell.
#include <condition_variable>
#include <thread>

namespace sjs::sched {

struct BadScheduler {
  std::condition_variable cv_;
  std::jthread helper_;
};

}  // namespace sjs::sched
