// Fixture: handles kDispatch and kComplete but not kGhost.
#include "obs/trace_event.hpp"

namespace fixture {

int handle(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch:
      return 1;
    case TraceKind::kComplete:
      return 2;
    default:
      return 0;
  }
}

}  // namespace fixture
