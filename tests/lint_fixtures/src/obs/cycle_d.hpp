// Fixture: half of a jobs <-> obs module include cycle (see
// jobs/cycle_c.hpp). The anchor is on the jobs side and carries an audited
// suppression, so the cycle reports nothing.
#pragma once

#include "jobs/cycle_c.hpp"

namespace fixture {
struct CycleD {};
}  // namespace fixture
