// Fixture: a TraceKind enum with one kind the exporter forgets to handle.
#pragma once

namespace fixture {

enum class TraceKind {
  kDispatch = 0,
  kComplete,
  kGhost,  // not handled by exporters.cpp -> trace-exhaustive fires
};

}  // namespace fixture
