// Fixture: include-hygiene must fire on relative/bare quoted includes,
// <iostream> in a header, and file-scope using-namespace in a header.
#pragma once

#include "../sim/bad_time.hpp"  // BAD: include-hygiene (relative)
#include "bad_unordered.hpp"    // BAD: include-hygiene (bare, not module-rooted)
#include <iostream>             // BAD: include-hygiene (<iostream> in header)

using namespace std;  // BAD: include-hygiene (using-namespace in header)
