// Fixture: correctly-written suppressions must silence the diagnostics —
// this file must produce ZERO findings.
namespace fixture {

// sjs-lint: allow(float-eq): sentinel payloads are written as exact 0.0.
bool line_above(double a) { return a == 0.0; }

bool same_line(double b) {
  return b != 0.0;  // sjs-lint: allow(float-eq): exact flag semantics.
}

}  // namespace fixture
