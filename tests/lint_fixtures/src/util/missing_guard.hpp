// Fixture: header-guard must fire — no #pragma once anywhere in this header.
namespace fixture {

inline int answer() { return 42; }

}  // namespace fixture
