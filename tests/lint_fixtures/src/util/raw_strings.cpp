// Fixture: lexer corner cases. Every banned token below lives inside a raw
// string, a spliced string, or a spliced // comment — none may fire. The one
// real finding (a float-eq after the raw strings) proves the lexer resyncs.
namespace fixture {

// Multi-line raw string: the body spans physical lines and contains banned
// tokens, quotes, and comment markers.
const char* kDoc = R"(
  calling std::rand() or time(nullptr) in here is just prose
  so is "std::random_device" and // this is not a comment
)";

// Custom-delimiter raw string: an embedded )" must not close it.
const char* kTricky = R"sep(
  body with )" inside, plus clock_gettime( and steady_clock::now
)sep";

// Encoding-prefixed raw string.
const char* kPrefixed = u8R"(gettimeofday( lives here)";

// A // comment continued by a line splice swallows the next physical line \
std::random_device this_line_is_still_comment;

const char* kSpliced = "a string with time(nullptr) that continues \
onto this line with std::rand() still inside the literal";

// Sentinel: exactly one real diagnostic in this file.
bool sentinel(double x) { return x == 1.25; }  // BAD: float-eq

}  // namespace fixture
