// Fixture: bad-suppression must fire on a reason-less allow() and on an
// allow() naming an unknown rule. Neither comment suppresses anything.
namespace fixture {

// sjs-lint: allow(float-eq)
bool no_reason(double a) { return a == 0.0; }

// sjs-lint: allow(made-up-rule): this rule id does not exist
bool unknown_rule(double b) { return b != 0.0; }

}  // namespace fixture
