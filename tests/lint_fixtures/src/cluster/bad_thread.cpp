// Fixture: raw-concurrency — src/cluster/ sits inside the single-threaded
// serving plane, so raw primitives are flagged there exactly as in
// src/serve/; the suppressed member stays silent.
#include <atomic>
#include <mutex>

namespace sjs::cluster {

struct BadFleetPlane {
  void settle() { std::lock_guard<std::mutex> lock(mu_); }

  std::mutex mu_;
  // sjs-lint: allow(raw-concurrency): fixture proves suppression works
  std::atomic<int> suppressed_{0};
};

}  // namespace sjs::cluster
