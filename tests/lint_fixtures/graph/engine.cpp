// Mini-project for the indexer / call-graph internals test: qualified
// names through namespace + class scopes, a qualified call for resolution
// narrowing, a cross-file call (free_fn, defined in graph/util.cpp), and
// per-body alloc facts.
#include <vector>

namespace mini {

void free_fn();

struct Engine {
  void helper() { data_.push_back(1); }

  void tick() {}

  void step() {
    helper();
    Engine::tick();
    free_fn();
  }

  std::vector<int> data_;
};

}  // namespace mini
