// Second TU of the mini-project: the cross-file callee, with an alloc and a
// banned read so reachability facts can be asserted end to end.
#include <chrono>

namespace mini {

double wall_now() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

void free_fn() {
  int* scratch = new int(3);
  delete scratch;
}

}  // namespace mini
