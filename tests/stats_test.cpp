// Unit tests for src/stats: Welford accumulators, summaries, histograms,
// step-function time series.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/timeseries.hpp"
#include "stats/welford.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

// ---------------------------------------------------------------- Welford

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance_sample(), 0.0);
}

TEST(Welford, SingleSample) {
  Welford w;
  w.add(5.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance_sample(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 5.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
}

TEST(Welford, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-10, 10);
    xs.push_back(x);
    w.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(w.mean(), mean, 1e-12);
  EXPECT_NEAR(w.variance_sample(), var, 1e-10);
}

TEST(Welford, NumericallyStableWithLargeOffset) {
  Welford w;
  // Classic catastrophic-cancellation case for the naive formula.
  for (double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) w.add(x);
  EXPECT_NEAR(w.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(w.variance_sample(), 30.0, 1e-6);
}

TEST(Welford, MergeEqualsSequential) {
  Rng rng(2);
  Welford all, a, b;
  for (int i = 0; i < 500; ++i) {
    double x = rng.normal();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance_sample(), all.variance_sample(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty absorbing non-empty copies it
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Welford, SemShrinksWithSamples) {
  Welford small, large;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.sem(), large.sem());
}

// ---------------------------------------------------------------- Summary

TEST(Summary, EmptySampleIsZeroed) {
  auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summary, KnownValues) {
  auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, CiContainsMeanAndIsSymmetric) {
  auto s = summarize({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_LT(s.ci95_lo, s.mean);
  EXPECT_GT(s.ci95_hi, s.mean);
  EXPECT_NEAR(s.mean - s.ci95_lo, s.ci95_hi - s.mean, 1e-12);
}

TEST(Summary, QuantileInterpolation) {
  std::vector<double> sorted{0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.5);
}

TEST(Summary, QuantileSingleton) {
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.9), 7.0);
}

TEST(Summary, QuantileEmptyThrows) {
  EXPECT_THROW(quantile_sorted({}, 0.5), CheckError);
}

TEST(Summary, UnsortedInputHandled) {
  auto s = summarize({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

// ---------------------------------------------------------------- Histogram

TEST(Histogram, BinsCountCorrectly) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, BoundaryGoesToUpperBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);  // exactly on the 0/1 bin edge -> bin 1
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.count(1), 1u);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), CheckError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckError);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 5; ++i) h.add(0.25);
  auto text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
}

// ---------------------------------------------------------------- StepFunction

TEST(StepFunction, EmptyEvaluatesToBefore) {
  StepFunction f;
  EXPECT_DOUBLE_EQ(f.value_at(5.0), 0.0);
}

TEST(StepFunction, RightContinuity) {
  StepFunction f({0.0, 1.0, 2.0}, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(f.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(f.value_at(0.999), 10.0);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 20.0);  // right-continuous at breakpoints
  EXPECT_DOUBLE_EQ(f.value_at(5.0), 30.0);  // extends past last breakpoint
}

TEST(StepFunction, BeforeFirstBreakpoint) {
  StepFunction f({1.0}, {7.0}, /*before=*/-1.0);
  EXPECT_DOUBLE_EQ(f.value_at(0.5), -1.0);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 7.0);
}

TEST(StepFunction, AppendMaintainsOrder) {
  StepFunction f;
  f.append(0.0, 1.0);
  f.append(2.0, 3.0);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.value_at(2.5), 3.0);
  EXPECT_THROW(f.append(1.0, 9.0), CheckError);
}

TEST(StepFunction, AppendSameInstantCollapses) {
  StepFunction f;
  f.append(1.0, 5.0);
  f.append(1.0, 9.0);  // same instant: the later value wins
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.value_at(1.0), 9.0);
}

TEST(StepFunction, IntegrateExactAcrossBreakpoints) {
  StepFunction f({0.0, 1.0, 3.0}, {2.0, 4.0, 1.0});
  // [0,1): 2, [1,3): 4, [3,..): 1
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 3.0), 10.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.5, 3.5), 1.0 + 8.0 + 0.5);
  EXPECT_DOUBLE_EQ(f.integrate(2.0, 2.0), 0.0);
}

TEST(StepFunction, IntegrateBeforeFirstBreakpointUsesBefore) {
  StepFunction f({2.0}, {10.0}, /*before=*/1.0);
  EXPECT_DOUBLE_EQ(f.integrate(0.0, 3.0), 2.0 * 1.0 + 1.0 * 10.0);
}

TEST(StepFunction, ResampleEndpoints) {
  StepFunction f({0.0, 5.0}, {1.0, 2.0});
  auto y = f.resample(0.0, 10.0, 11);
  ASSERT_EQ(y.size(), 11u);
  EXPECT_DOUBLE_EQ(y.front(), 1.0);
  EXPECT_DOUBLE_EQ(y[4], 1.0);   // t = 4
  EXPECT_DOUBLE_EQ(y[5], 2.0);   // t = 5 (right-continuous)
  EXPECT_DOUBLE_EQ(y.back(), 2.0);
}

TEST(StepFunction, MeanResampledAverages) {
  StepFunction a({0.0}, {1.0});
  StepFunction b({0.0}, {3.0});
  auto mean = mean_resampled({a, b}, 0.0, 1.0, 5);
  for (double v : mean) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(StepFunction, ConstructorRejectsMismatch) {
  EXPECT_THROW(StepFunction({0.0, 1.0}, {1.0}), CheckError);
  EXPECT_THROW(StepFunction({1.0, 0.5}, {1.0, 2.0}), CheckError);
}

// Property: integrate() telescopes — ∫[a,c] = ∫[a,b] + ∫[b,c] on random
// step functions.
class StepFunctionProperty : public ::testing::TestWithParam<int> {};

TEST_P(StepFunctionProperty, IntegralTelescopes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  StepFunction f;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    f.append(t, rng.uniform(0.5, 5.0));
    t += rng.exponential_mean(1.0);
  }
  for (int trial = 0; trial < 20; ++trial) {
    double a = rng.uniform(0.0, t);
    double c = rng.uniform(a, t + 2.0);
    double b = rng.uniform(a, c);
    EXPECT_NEAR(f.integrate(a, c), f.integrate(a, b) + f.integrate(b, c),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace sjs
