// Integration tests for the sharded admission plane (src/serve/
// sharded_server.hpp + shard_worker.hpp).
//
// The two contracts under test:
//
//  1. N = 1 equivalence: a ShardedAdmissionServer with one shard, driven
//     through the exact scripted FakeClock session serve_test.cpp uses,
//     leaves a journal at <root>/shard0 that is BYTE-IDENTICAL to the one
//     the single-threaded AdmissionServer writes — same jobs.csv, same
//     %.17g admission stamps, same outcomes.csv. The sharded plane is a
//     strict refactor, not a behavioural fork.
//
//  2. Per-shard replay: with --shards=4 every shard journal is an
//     independent instance bundle that replays bit-exactly through a fresh
//     engine + scheduler, and (for an uncontended workload) the union of
//     shard outcomes equals what a single shard would have produced.
//
// Shard workers run on real threads, so awaits step the acceptor with a
// 1 ms poll timeout — the acceptor's poll set includes the reply-channel
// wake fds, so it unblocks the moment a shard commits a reply.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "jobs/bundle.hpp"
#include "sched/factory.hpp"
#include "serve/clock.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using sjs::serve::AdmissionServer;
using sjs::serve::FakeClock;
using sjs::serve::FrameDecoder;
using sjs::serve::JobState;
using sjs::serve::Message;
using sjs::serve::MsgType;
using sjs::serve::RejectReason;
using sjs::serve::ServerConfig;
using sjs::serve::ShardedAdmissionServer;

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::unique_ptr<sjs::sim::Scheduler> make_scheduler(const std::string& name,
                                                    double c_lo, double c_hi) {
  const auto lineup = sjs::sched::full_lineup(c_lo, c_hi);
  const auto* factory = sjs::sched::find_factory(lineup, name);
  SJS_CHECK_MSG(factory != nullptr, "unknown scheduler in test");
  return factory->make();
}

constexpr double kBandLo = 0.5;
constexpr double kBandHi = 1.0;

ServerConfig base_config(const std::string& journal_dir, std::size_t shards) {
  ServerConfig config;
  config.scheduler_name = "V-Dover";
  config.capacity = sjs::cap::CapacityProfile(1.0);
  config.c_lo = kBandLo;
  config.c_hi = kBandHi;
  config.journal_dir = journal_dir;
  config.shards = shards;
  config.shard_poll_ms = 5;  // shard threads re-check promptly in tests
  return config;
}

ShardedAdmissionServer::SchedulerFactory scheduler_factory() {
  return [] { return make_scheduler("V-Dover", kBandLo, kBandHi); };
}

/// Raw nonblocking loopback client, templated on the server type so the
/// same scripted session can drive AdmissionServer and the sharded plane.
/// `step_ms` is the poll timeout each await spin grants the acceptor.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SJS_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    SJS_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SJS_CHECK(::fcntl(fd_, F_SETFL, O_NONBLOCK) == 0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const Message& m) {
    const auto bytes = sjs::serve::encode_frame(m);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      SJS_CHECK_MSG(n > 0, "test client send failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  void read_socket() {
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return;
      decoder_.feed(buf, static_cast<std::size_t>(n));
      Message m;
      while (decoder_.next(m) == FrameDecoder::Status::kOk) {
        inbox.push_back(m);
      }
    }
  }

  template <typename Server, typename Pred>
  Message await(Server& server, Pred pred, int step_ms, int spins = 4000) {
    for (int i = 0; i < spins; ++i) {
      for (std::size_t j = scanned_; j < inbox.size(); ++j) {
        if (pred(inbox[j])) {
          scanned_ = j + 1;
          return inbox[j];
        }
      }
      scanned_ = inbox.size();
      server.step(step_ms);
      read_socket();
    }
    ADD_FAILURE() << "no matching reply after " << spins << " spins";
    return Message{};
  }

  template <typename Server>
  Message await_seq(Server& server, std::uint64_t seq, int step_ms) {
    return await(
        server, [seq](const Message& m) { return m.seq == seq; }, step_ms);
  }

  std::vector<Message> inbox;

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::size_t scanned_ = 0;
};

Message submit_msg(std::uint64_t seq, double workload, double rel_deadline,
                   double value) {
  Message m;
  m.type = MsgType::kSubmit;
  m.seq = seq;
  m.a = workload;
  m.b = rel_deadline;
  m.c = value;
  return m;
}

/// The serve_test.cpp scripted session, verbatim (Rng(4242), 60 submissions,
/// every 10th inadmissible), driving an arbitrary server type. Awaiting each
/// reply before advancing the clock pins every admission stamp regardless of
/// which thread evaluates it, so the N=1 byte-identity comparison is fair.
template <typename Server>
void run_scripted_session(Server& server, FakeClock& clock, int step_ms) {
  server.start();
  TestClient client(server.port());
  sjs::Rng rng(4242);
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    clock.advance(rng.exponential_rate(20.0));
    const double workload = rng.exponential_mean(0.05);
    const bool sabotage = (i % 10) == 9;
    const double window = sabotage
                              ? 0.5 * workload / kBandLo
                              : rng.uniform(1.05, 3.0) * workload / kBandLo;
    const double value = workload * rng.uniform(1.0, 7.0);
    client.send(submit_msg(++seq, workload, window, value));
    const Message r = client.await_seq(server, seq, step_ms);
    EXPECT_EQ(r.type, sabotage ? MsgType::kRejected : MsgType::kAccepted) << i;
  }
  clock.advance(0.5);
  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = ++seq;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, seq, step_ms).type, MsgType::kDraining);
  while (server.step(step_ms)) {
    client.read_socket();
  }
  client.read_socket();
  EXPECT_TRUE(server.finished());
}

void expect_bitwise_equal_results(const sjs::sim::SimResult& live,
                                  const sjs::sim::SimResult& replay) {
  EXPECT_EQ(live.completed_value, replay.completed_value);
  EXPECT_EQ(live.generated_value, replay.generated_value);
  EXPECT_EQ(live.completed_count, replay.completed_count);
  EXPECT_EQ(live.expired_count, replay.expired_count);
  ASSERT_EQ(live.outcomes.size(), replay.outcomes.size());
  for (std::size_t i = 0; i < live.outcomes.size(); ++i) {
    EXPECT_EQ(live.outcomes[i], replay.outcomes[i]) << "job " << i;
    EXPECT_EQ(std::memcmp(&live.completion_times[i],
                          &replay.completion_times[i], sizeof(double)),
              0)
        << "job " << i;
    EXPECT_EQ(live.executed_work[i], replay.executed_work[i]) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// Contract 1: shards=1 is byte-identical to the single-threaded server.

TEST(ShardedServeTest, SingleShardJournalIsByteIdenticalToAdmissionServer) {
  const std::string dir_single = fresh_dir("sharded_eq_single");
  const std::string dir_sharded = fresh_dir("sharded_eq_sharded");

  {
    FakeClock clock;
    AdmissionServer server(base_config(dir_single, 1),
                           make_scheduler("V-Dover", kBandLo, kBandHi), clock);
    run_scripted_session(server, clock, 0);
  }
  sjs::sim::SimResult sharded_live;
  {
    FakeClock clock;
    ShardedAdmissionServer server(base_config(dir_sharded, 1),
                                  scheduler_factory(), clock);
    run_scripted_session(server, clock, 1);
    ASSERT_EQ(server.shard_count(), 1u);
    sharded_live = server.shard(0).result();
    EXPECT_EQ(server.stats().accepted, 54u);
    EXPECT_EQ(server.stats().rejected, 6u);
  }

  // The shard0 bundle must match the single server's journal byte for byte
  // — admission stamps, job order, capacity band, outcomes, all of it.
  for (const char* file : {"/jobs.csv", "/capacity.csv", "/band.csv",
                           "/meta.csv", "/outcomes.csv"}) {
    const std::string single = slurp(dir_single + file);
    ASSERT_FALSE(single.empty()) << file;
    EXPECT_EQ(single, slurp(dir_sharded + "/shard0" + file)) << file;
  }

  // And the shard's bundle replays bit-exactly against its live result.
  const sjs::Instance replayed =
      sjs::load_instance_bundle(dir_sharded + "/shard0");
  auto scheduler = make_scheduler("V-Dover", replayed.c_lo(), replayed.c_hi());
  sjs::sim::Engine engine(replayed, *scheduler);
  expect_bitwise_equal_results(sharded_live, engine.run_to_completion());
}

// ---------------------------------------------------------------------------
// Contract 2: shards=4 — every shard journal replays bit-exactly, and for an
// uncontended workload the union of outcomes equals a one-shard run.

/// Widely spaced identical-shape submissions: each job completes well before
/// the next arrives, so per-job fate is independent of which shard (and how
/// many) it lands on. 40 jobs, workload 0.25 into a 5.0 window at unit
/// capacity, 1 virtual second apart.
template <typename Server>
std::vector<std::uint64_t> run_spaced_session(Server& server, FakeClock& clock,
                                              int step_ms, int jobs) {
  server.start();
  TestClient client(server.port());
  std::vector<std::uint64_t> tickets;
  std::uint64_t seq = 0;
  for (int i = 0; i < jobs; ++i) {
    clock.advance(1.0);
    client.send(submit_msg(++seq, 0.25, 5.0, 1.0 + 0.01 * i));
    const Message r = client.await_seq(server, seq, step_ms);
    EXPECT_EQ(r.type, MsgType::kAccepted) << i;
    tickets.push_back(r.ticket);
  }
  clock.advance(2.0);
  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = ++seq;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, seq, step_ms).type, MsgType::kDraining);
  while (server.step(step_ms)) {
    client.read_socket();
  }
  client.read_socket();
  EXPECT_TRUE(server.finished());
  return tickets;
}

struct JobRow {
  double release, workload, deadline, value;
};

bool operator<(const JobRow& a, const JobRow& b) { return a.release < b.release; }

std::vector<JobRow> bundle_rows(const std::string& dir) {
  std::vector<JobRow> rows;
  const sjs::Instance bundle = sjs::load_instance_bundle(dir);
  for (const sjs::Job& j : bundle.jobs()) {
    rows.push_back({j.release, j.workload, j.deadline, j.value});
  }
  return rows;
}

TEST(ShardedServeTest, FourShardJournalsReplayBitExactlyAndUnionMatches) {
  constexpr int kJobs = 40;
  const std::string dir_one = fresh_dir("sharded_union_one");
  const std::string dir_four = fresh_dir("sharded_union_four");

  {
    FakeClock clock;
    ShardedAdmissionServer server(base_config(dir_one, 1),
                                  scheduler_factory(), clock);
    run_spaced_session(server, clock, 1, kJobs);
  }

  FakeClock clock;
  ShardedAdmissionServer server(base_config(dir_four, 4), scheduler_factory(),
                                clock);
  const auto tickets = run_spaced_session(server, clock, 1, kJobs);
  ASSERT_EQ(server.shard_count(), 4u);

  // Tickets are dense globals in submission order.
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(tickets[i], static_cast<std::uint64_t>(i));
  }

  // Every shard got work (splitmix64 spreads even 40 consecutive tickets),
  // every shard journal is an independent bundle that replays bit-exactly,
  // and every admitted job completed (the workload is uncontended).
  std::vector<JobRow> union_rows;
  std::size_t union_jobs = 0;
  std::uint64_t union_completed = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const std::string shard_dir = dir_four + "/shard" + std::to_string(k);
    const sjs::Instance replayed = sjs::load_instance_bundle(shard_dir);
    EXPECT_GT(replayed.jobs().size(), 0u) << "shard " << k;
    union_jobs += replayed.jobs().size();

    auto scheduler =
        make_scheduler("V-Dover", replayed.c_lo(), replayed.c_hi());
    sjs::sim::Engine engine(replayed, *scheduler);
    const sjs::sim::SimResult replay = engine.run_to_completion();
    expect_bitwise_equal_results(server.shard(k).result(), replay);
    union_completed += replay.completed_count;

    // outcomes.csv on disk equals what a fresh replay would write: the same
    // byte-diff scripts/serve_smoke.sh applies per shard in CI.
    const std::string replay_dir = fresh_dir("sharded_union_replay");
    std::filesystem::create_directories(replay_dir);
    sjs::sim::save_outcomes_csv(replay, replayed.jobs(),
                                replay_dir + "/outcomes.csv");
    EXPECT_EQ(slurp(shard_dir + "/outcomes.csv"),
              slurp(replay_dir + "/outcomes.csv"))
        << "shard " << k;

    for (const JobRow& row : bundle_rows(shard_dir)) union_rows.push_back(row);
  }
  EXPECT_EQ(union_jobs, static_cast<std::size_t>(kJobs));
  EXPECT_EQ(union_completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(server.stats().completed, static_cast<std::uint64_t>(kJobs));

  // Union of the four shard bundles == the one-shard bundle, field-exact
  // (releases are unique, so sorting by release aligns the rows).
  std::vector<JobRow> one_rows = bundle_rows(dir_one + "/shard0");
  std::sort(union_rows.begin(), union_rows.end());
  std::sort(one_rows.begin(), one_rows.end());
  ASSERT_EQ(union_rows.size(), one_rows.size());
  for (std::size_t i = 0; i < one_rows.size(); ++i) {
    EXPECT_EQ(union_rows[i].release, one_rows[i].release) << i;
    EXPECT_EQ(union_rows[i].workload, one_rows[i].workload) << i;
    EXPECT_EQ(union_rows[i].deadline, one_rows[i].deadline) << i;
    EXPECT_EQ(union_rows[i].value, one_rows[i].value) << i;
  }
}

// ---------------------------------------------------------------------------
// Ticket routing: cancel and query cross the plane to the owning shard.

TEST(ShardedServeTest, CancelAndQueryRouteToOwningShard) {
  FakeClock clock;
  const std::string dir = fresh_dir("sharded_routing");
  ShardedAdmissionServer server(base_config(dir, 4), scheduler_factory(),
                                clock);
  server.start();
  TestClient client(server.port());

  std::vector<std::uint64_t> tickets;
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    client.send(submit_msg(seq, 1.0, 50.0, 1.0));
    const Message r = client.await_seq(server, seq, 1);
    ASSERT_EQ(r.type, MsgType::kAccepted);
    tickets.push_back(r.ticket);
    clock.advance(0.01);  // distinct stamps; jobs stay live (long windows)
  }

  // Jobs become cancellable once their release event fires.
  clock.advance(0.1);
  server.step(1);

  // QUERY each ticket: the acceptor must route by splitmix64 and the owning
  // shard must answer with live state.
  for (std::uint64_t i = 0; i < 4; ++i) {
    Message query;
    query.type = MsgType::kQuery;
    query.seq = 10 + i;
    query.ticket = tickets[i];
    client.send(query);
    const Message qr = client.await_seq(server, 10 + i, 1);
    ASSERT_EQ(qr.type, MsgType::kQueryReply) << i;
    EXPECT_TRUE(qr.code == static_cast<std::uint8_t>(JobState::kRunning) ||
                qr.code == static_cast<std::uint8_t>(JobState::kQueued))
        << static_cast<int>(qr.code);
    EXPECT_GT(qr.a, 0.0);  // remaining work
  }

  // Cancel ticket 2; its expiry must stay internal to the shard.
  Message cancel;
  cancel.type = MsgType::kCancel;
  cancel.seq = 20;
  cancel.ticket = tickets[2];
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 20, 1).type, MsgType::kCancelled);
  cancel.seq = 21;  // terminal now: second cancel fails on the owning shard
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 21, 1).type, MsgType::kCancelFailed);

  // Unknown tickets fail at the acceptor without touching any shard.
  cancel.seq = 22;
  cancel.ticket = 999;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 22, 1).type, MsgType::kCancelFailed);
  Message query;
  query.type = MsgType::kQuery;
  query.seq = 23;
  query.ticket = 999;
  client.send(query);
  const Message qr = client.await_seq(server, 23, 1);
  ASSERT_EQ(qr.type, MsgType::kQueryReply);
  EXPECT_EQ(qr.code, static_cast<std::uint8_t>(JobState::kUnknown));

  // Aggregate STATS from the acceptor, then drain.
  Message stats;
  stats.type = MsgType::kStats;
  stats.seq = 30;
  client.send(stats);
  const Message sr = client.await_seq(server, 30, 1);
  ASSERT_EQ(sr.type, MsgType::kStatsReply);
  EXPECT_EQ(sr.stats.submitted, 4u);
  EXPECT_EQ(sr.stats.accepted, 4u);
  EXPECT_EQ(sr.stats.cancelled, 1u);
  EXPECT_EQ(sr.stats.in_flight, 3u);

  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = 31;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, 31, 1).type, MsgType::kDraining);
  while (server.step(1)) client.read_socket();
  client.read_socket();

  // The cancelled job's forced expiry never reached the client.
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;
  for (const Message& m : client.inbox) {
    if (m.type == MsgType::kExpired) {
      ++expired;
      EXPECT_NE(m.ticket, tickets[2]);
    }
    if (m.type == MsgType::kCompleted) ++completed;
  }
  // The three survivors resolved one way or the other at drain.
  EXPECT_EQ(expired + completed, 3u);
  EXPECT_EQ(server.stats().cancelled, 1u);
}

TEST(ShardedServeTest, SubmitsDuringDrainAreRefused) {
  FakeClock clock;
  ShardedAdmissionServer server(base_config("", 2), scheduler_factory(),
                                clock);
  server.start();
  TestClient client(server.port());

  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = 1;
  client.send(drain);
  client.send(submit_msg(2, 0.5, 5.0, 1.0));
  EXPECT_EQ(client.await_seq(server, 1, 1).type, MsgType::kDraining);
  const Message r = client.await_seq(server, 2, 1);
  EXPECT_EQ(r.type, MsgType::kRejected);
  EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kDraining));
  while (server.step(1)) client.read_socket();
  EXPECT_TRUE(server.finished());
  EXPECT_EQ(server.stats().accepted, 0u);
}

}  // namespace
