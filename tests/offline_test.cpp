// Offline solver tests: EDF feasibility oracle, Dinic max-flow and the
// value upper bound, exact branch-and-bound (validated against brute force),
// greedy approximations, and the stretch-transform solver equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "offline/greedy_offline.hpp"
#include "offline/maxflow.hpp"
#include "offline/transform_solver.hpp"
#include "sched/edf.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs::offline {
namespace {

Job make_job(double r, double p, double d, double v, JobId id = 0) {
  Job j;
  j.id = id;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

std::vector<Job> with_ids(std::vector<Job> jobs) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return jobs;
}

// ------------------------------------------------------------- feasibility

TEST(Feasibility, EmptySetIsFeasible) {
  EXPECT_TRUE(edf_feasible({}, cap::CapacityProfile(1.0)));
}

TEST(Feasibility, SingleJobTightWindow) {
  cap::CapacityProfile p(2.0);
  EXPECT_TRUE(edf_feasible({make_job(0, 4, 2, 1)}, p));   // exactly fits
  EXPECT_FALSE(edf_feasible({make_job(0, 4, 1.9, 1)}, p));
}

TEST(Feasibility, TwoJobsSequential) {
  cap::CapacityProfile p(1.0);
  EXPECT_TRUE(edf_feasible(
      {make_job(0, 2, 2, 1), make_job(0, 2, 4, 1, 1)}, p));
  EXPECT_FALSE(edf_feasible(
      {make_job(0, 2, 2, 1), make_job(0, 2, 3.5, 1, 1)}, p));
}

TEST(Feasibility, PreemptionRequired) {
  // Job 1 must interrupt job 0 (both feasible only with preemption).
  cap::CapacityProfile p(1.0);
  EXPECT_TRUE(edf_feasible(
      {make_job(0, 4, 6, 1), make_job(1, 1, 2, 1, 1)}, p));
}

TEST(Feasibility, VaryingCapacityMatters) {
  // 20 units due by t=2: impossible at rate 1, trivial when rate jumps to 35.
  std::vector<Job> jobs{make_job(0, 20, 2, 1)};
  EXPECT_FALSE(edf_feasible(jobs, cap::CapacityProfile(1.0)));
  EXPECT_TRUE(edf_feasible(
      jobs, cap::CapacityProfile({0.0, 1.0}, {1.0, 35.0})));
}

TEST(Feasibility, IdleGapsHandled) {
  cap::CapacityProfile p(1.0);
  EXPECT_TRUE(edf_feasible(
      {make_job(0, 1, 1, 1), make_job(10, 1, 11, 1, 1)}, p));
}

TEST(Feasibility, LateArrivalWithEarlierDeadline) {
  cap::CapacityProfile p(1.0);
  // Job 1 arrives at t=3 needing [3,4]; job 0 needs 4 units by t=5: the
  // preemption steals 1 unit and job 0 misses.
  EXPECT_FALSE(edf_feasible(
      {make_job(0, 4.5, 5, 1), make_job(3, 1, 4, 1, 1)}, p));
  EXPECT_TRUE(edf_feasible(
      {make_job(0, 4.0, 5, 1), make_job(3, 1, 4, 1, 1)}, p));
}

// Agreement with the engine: feasible <=> the EDF scheduler completes all.
TEST(Feasibility, MatchesEngineEdfOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed + 700);
    cap::TwoStateMarkovParams cp;
    cp.c_hi = 4.0;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 5.0;
    auto profile = cap::sample_two_state_markov(cp, 30.0, rng);
    auto jobs = gen::generate_small_random_jobs(8, 15.0, 7.0, 1.0, 3.0, rng);
    Instance instance(jobs, profile, 1.0, 4.0);

    sched::EdfScheduler scheduler;
    sim::Engine engine(instance, scheduler);
    auto result = engine.run_to_completion();
    const bool engine_all = result.completed_count == instance.size();
    EXPECT_EQ(edf_feasible(instance.jobs(), instance.capacity()), engine_all)
        << "seed " << seed;
  }
}

// ------------------------------------------------------------- max-flow

TEST(MaxFlowGraph, HandComputedNetwork) {
  MaxFlow flow(4);
  // 0 -> 1 (3), 0 -> 2 (2), 1 -> 3 (2), 2 -> 3 (3), 1 -> 2 (5).
  flow.add_edge(0, 1, 3);
  flow.add_edge(0, 2, 2);
  auto e13 = flow.add_edge(1, 3, 2);
  flow.add_edge(2, 3, 3);
  flow.add_edge(1, 2, 5);
  EXPECT_DOUBLE_EQ(flow.solve(0, 3), 5.0);
  EXPECT_DOUBLE_EQ(flow.flow_on(e13), 2.0);
}

TEST(MaxFlowGraph, DisconnectedIsZero) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 5);
  EXPECT_DOUBLE_EQ(flow.solve(0, 2), 0.0);
}

TEST(MaxFlowGraph, FractionalCapacities) {
  MaxFlow flow(3);
  flow.add_edge(0, 1, 0.75);
  flow.add_edge(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(flow.solve(0, 2), 0.5);
}

TEST(SchedulableWorkload, FeasibleSetIsFullyRoutable) {
  auto jobs = with_ids({make_job(0, 2, 2, 1), make_job(0, 2, 4, 1)});
  cap::CapacityProfile p(1.0);
  EXPECT_NEAR(max_schedulable_workload(jobs, p), 4.0, 1e-9);
}

TEST(SchedulableWorkload, OverloadRoutesOnlyCapacity) {
  // Two 3-unit jobs sharing window [0, 4] at rate 1: only 4 units fit.
  auto jobs = with_ids({make_job(0, 3, 4, 1), make_job(0, 3, 4, 1)});
  cap::CapacityProfile p(1.0);
  EXPECT_NEAR(max_schedulable_workload(jobs, p), 4.0, 1e-9);
}

TEST(SchedulableWorkload, UsesVaryingCapacity) {
  auto jobs = with_ids({make_job(0, 20, 2, 1)});
  EXPECT_NEAR(max_schedulable_workload(
                  jobs, cap::CapacityProfile({0.0, 1.0}, {1.0, 35.0})),
              20.0, 1e-9);
  EXPECT_NEAR(max_schedulable_workload(jobs, cap::CapacityProfile(1.0)), 2.0,
              1e-9);
}

TEST(UpperBound, DominatesExactOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 800);
    cap::TwoStateMarkovParams cp;
    cp.c_hi = 6.0;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 4.0;
    auto profile = cap::sample_two_state_markov(cp, 25.0, rng);
    auto jobs = gen::generate_small_random_jobs(9, 12.0, 7.0, 1.0, 2.5, rng);
    Instance instance(jobs, profile, 1.0, 6.0);
    auto exact = exact_offline_value(instance);
    ASSERT_TRUE(exact.proved_optimal);
    EXPECT_GE(offline_value_upper_bound(instance.jobs(), instance.capacity()),
              exact.value - 1e-9)
        << "seed " << seed;
  }
}

// ------------------------------------------------------------- exact B&B

// Brute force over all subsets for validation.
double brute_force_optimum(const std::vector<Job>& jobs,
                           const cap::CapacityProfile& profile) {
  const std::size_t n = jobs.size();
  double best = 0.0;
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<Job> subset;
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        subset.push_back(jobs[i]);
        value += jobs[i].value;
      }
    }
    if (value > best && edf_feasible(subset, profile)) best = value;
  }
  return best;
}

TEST(Exact, MatchesBruteForceOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 900);
    cap::TwoStateMarkovParams cp;
    cp.c_hi = 4.0;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 3.0;
    auto profile = cap::sample_two_state_markov(cp, 20.0, rng);
    auto jobs = gen::generate_small_random_jobs(9, 10.0, 7.0, 1.0, 2.0, rng);
    Instance instance(jobs, profile, 1.0, 4.0);

    auto exact = exact_offline_value(instance);
    ASSERT_TRUE(exact.proved_optimal);
    EXPECT_NEAR(exact.value,
                brute_force_optimum(instance.jobs(), instance.capacity()),
                1e-9)
        << "seed " << seed;
  }
}

TEST(Exact, KeptSetIsFeasibleAndSumsToValue) {
  Rng rng(1234);
  auto jobs = gen::generate_small_random_jobs(10, 10.0, 7.0, 1.0, 2.0, rng);
  cap::CapacityProfile profile(1.0);
  Instance instance(jobs, profile, 1.0, 1.0);
  auto exact = exact_offline_value(instance);
  ASSERT_TRUE(exact.proved_optimal);

  std::vector<Job> kept;
  double value = 0.0;
  for (JobId id : exact.kept) {
    kept.push_back(instance.job(id));
    value += instance.job(id).value;
  }
  EXPECT_TRUE(edf_feasible(kept, profile));
  EXPECT_NEAR(value, exact.value, 1e-9);
}

TEST(Exact, EmptyInstance) {
  Instance instance({}, cap::CapacityProfile(1.0));
  auto exact = exact_offline_value(instance);
  EXPECT_TRUE(exact.proved_optimal);
  EXPECT_DOUBLE_EQ(exact.value, 0.0);
  EXPECT_TRUE(exact.kept.empty());
}

TEST(Exact, NodeBudgetTruncates) {
  Rng rng(77);
  auto jobs = gen::generate_small_random_jobs(14, 10.0, 7.0, 1.0, 2.0, rng);
  Instance instance(jobs, cap::CapacityProfile(1.0), 1.0, 1.0);
  ExactOptions options;
  options.max_nodes = 5;
  auto truncated = exact_offline_value(instance, options);
  EXPECT_FALSE(truncated.proved_optimal);
  // Still a valid lower bound:
  auto full = exact_offline_value(instance);
  EXPECT_LE(truncated.value, full.value + 1e-12);
}

// ------------------------------------------------------------- greedy

TEST(GreedyOffline, NeverExceedsExactAndKeepsFeasibleSet) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 1100);
    auto profile = cap::CapacityProfile({0.0, 5.0}, {1.0, 3.0});
    auto jobs = gen::generate_small_random_jobs(10, 10.0, 7.0, 1.0, 2.0, rng);
    Instance instance(jobs, profile, 1.0, 3.0);
    auto exact = exact_offline_value(instance);
    auto greedy = best_greedy_offline_value(instance);
    EXPECT_LE(greedy.value, exact.value + 1e-9);

    std::vector<Job> kept;
    for (JobId id : greedy.kept) kept.push_back(instance.job(id));
    EXPECT_TRUE(edf_feasible(kept, instance.capacity()));
  }
}

TEST(GreedyOffline, OrdersCanDisagree) {
  // value order picks the big job; density order picks the two small ones.
  auto jobs = with_ids({make_job(0, 4, 4, 6), make_job(0, 1, 1, 2),
                        make_job(1, 1, 2, 2)});
  cap::CapacityProfile p(1.0);
  auto by_value = greedy_offline_value(jobs, p, GreedyOrder::kValueDesc);
  auto by_density =
      greedy_offline_value(jobs, p, GreedyOrder::kValueDensityDesc);
  EXPECT_DOUBLE_EQ(by_value.value, 6.0);
  EXPECT_DOUBLE_EQ(by_density.value, 4.0);
}

// ------------------------------------------------------------- stretch solver

TEST(TransformSolver, StretchedJobsPreserveWorkloadAndValue) {
  cap::CapacityProfile p({0.0, 10.0}, {1.0, 35.0});
  Instance instance(with_ids({make_job(5, 2, 15, 3)}), p);
  auto transformed = stretch_instance(instance);
  ASSERT_EQ(transformed.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(transformed.jobs[0].workload, 2.0);
  EXPECT_DOUBLE_EQ(transformed.jobs[0].value, 3.0);
  EXPECT_DOUBLE_EQ(transformed.jobs[0].release, 5.0);            // T(5) = 5
  EXPECT_DOUBLE_EQ(transformed.jobs[0].deadline, 10.0 + 175.0);  // T(15)
  EXPECT_DOUBLE_EQ(transformed.reference_rate, 1.0);
}

TEST(TransformSolver, ReductionPreservesOptimalValue) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 1300);
    cap::TwoStateMarkovParams cp;
    cp.c_hi = 8.0;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 3.0;
    auto profile = cap::sample_two_state_markov(cp, 20.0, rng);
    auto jobs = gen::generate_small_random_jobs(9, 10.0, 7.0, 1.0, 2.5, rng);
    Instance instance(jobs, profile, 1.0, 8.0);

    auto direct = exact_offline_value(instance);
    auto via_stretch = solve_via_stretch(instance);
    ASSERT_TRUE(direct.proved_optimal && via_stretch.proved_optimal);
    EXPECT_NEAR(direct.value, via_stretch.value, 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sjs::offline
