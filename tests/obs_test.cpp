// Tests for the observability subsystem (src/obs/): ring buffer semantics,
// replay digest determinism and sensitivity, metrics sharding and merging,
// exporters, and the online invariant checker — both green on real engine
// runs and red on tampered streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "capacity/capacity_process.hpp"
#include "cloud/global_sched.hpp"
#include "cloud/multi_engine.hpp"
#include "jobs/workload_gen.hpp"
#include "obs/digest.hpp"
#include "obs/exporters.hpp"
#include "obs/invariants.hpp"
#include "obs/metrics.hpp"
#include "obs/ring_buffer.hpp"
#include "obs/trace_sink.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sjs::obs {
namespace {

TraceEvent ev(double t, TraceKind kind, JobId job = kNoJob, double a = 0.0,
              double b = 0.0, std::int32_t server = -1) {
  return TraceEvent{t, kind, job, server, a, b};
}

Job make_job(JobId id, double r, double p, double d, double v) {
  Job j;
  j.id = id;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

/// Two unit-rate jobs on a constant rate-1 path: job 0 fits, job 1 does not
/// if it only runs after job 0.
Instance tiny_instance() {
  std::vector<Job> jobs{make_job(0, 0.0, 2.0, 3.0, 5.0),
                        make_job(1, 1.0, 4.0, 4.0, 7.0)};
  return Instance(jobs, cap::CapacityProfile(1.0), 1.0, 1.0);
}

/// The canonical event stream of running tiny_instance() under EDF-like
/// "job 0 first": release(0), dispatch(0), release(1), complete(0) at t=2,
/// dispatch(1), expire(1) at t=4, run_end.
std::vector<TraceEvent> tiny_valid_stream() {
  return {
      ev(0.0, TraceKind::kRunStart, kNoJob, 2.0),
      ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0),
      ev(0.0, TraceKind::kDispatch, 0, 2.0),
      ev(1.0, TraceKind::kRelease, 1, 4.0, 4.0),
      ev(2.0, TraceKind::kComplete, 0, 5.0),
      ev(2.0, TraceKind::kDispatch, 1, 4.0),
      ev(4.0, TraceKind::kExpire, 1, 2.0, 1.0),
      ev(4.0, TraceKind::kRunEnd, kNoJob, 5.0, 12.0),
  };
}

// ------------------------------------------------------------- trace sinks

TEST(TraceSink, VectorSinkRetainsStreamInOrder) {
  VectorTraceSink sink;
  for (const auto& event : tiny_valid_stream()) sink.record(event);
  ASSERT_EQ(sink.events().size(), 8u);
  EXPECT_EQ(sink.events().front().kind, TraceKind::kRunStart);
  EXPECT_EQ(sink.events().back().kind, TraceKind::kRunEnd);
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceSink, TeeFansOutToEverySink) {
  VectorTraceSink a;
  VectorTraceSink b;
  TeeSink tee;
  EXPECT_EQ(tee.sink_count(), 0u);
  tee.add(&a);
  tee.add(&b);
  tee.record(ev(1.0, TraceKind::kRelease, 0));
  EXPECT_EQ(a.events().size(), 1u);
  EXPECT_EQ(b.events().size(), 1u);
}

TEST(RingBuffer, BelowCapacityKeepsEverything) {
  RingTraceBuffer ring(16);
  for (int i = 0; i < 5; ++i) {
    ring.record(ev(i, TraceKind::kTimer, 0, i));
  }
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(events[i].time, i);
}

TEST(RingBuffer, WrapsKeepingTheTail) {
  RingTraceBuffer ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record(ev(i, TraceKind::kTimer, 0, i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Chronological order, most recent 4 events: t = 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(events[i].time, 6.0 + i);
}

// ------------------------------------------------------------------ digest

TEST(Digest, IdenticalStreamsHashIdentically) {
  DigestSink a;
  DigestSink b;
  for (const auto& event : tiny_valid_stream()) {
    a.record(event);
    b.record(event);
  }
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.event_count(), 8u);
  EXPECT_NE(a.digest(), kDigestSeed);  // folding happened
}

TEST(Digest, SingleBitOfDriftChangesTheDigest) {
  auto stream = tiny_valid_stream();
  DigestSink clean;
  for (const auto& event : stream) clean.record(event);

  // Perturb one payload by one ulp.
  auto tampered = stream;
  tampered[4].a = std::nextafter(tampered[4].a, 1e300);
  DigestSink dirty;
  for (const auto& event : tampered) dirty.record(event);
  EXPECT_NE(clean.digest(), dirty.digest());
}

TEST(Digest, OrderMatters) {
  auto stream = tiny_valid_stream();
  DigestSink forward;
  for (const auto& event : stream) forward.record(event);
  std::reverse(stream.begin(), stream.end());
  DigestSink backward;
  for (const auto& event : stream) backward.record(event);
  EXPECT_NE(forward.digest(), backward.digest());
}

TEST(Digest, NegativeZeroIsCanonical) {
  DigestSink a;
  DigestSink b;
  a.record(ev(0.0, TraceKind::kIdle, kNoJob, 0.0));
  b.record(ev(-0.0, TraceKind::kIdle, kNoJob, -0.0));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(double_bits(-0.0), double_bits(0.0));
}

TEST(Digest, CombineIsOrderSensitive) {
  const std::vector<std::uint64_t> ab{1u, 2u};
  const std::vector<std::uint64_t> ba{2u, 1u};
  EXPECT_NE(combine_digests(ab), combine_digests(ba));
  EXPECT_EQ(combine_digests(ab), combine_digests(ab));
}

TEST(Digest, EngineRunsAreReproducible) {
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 80.0;
  Rng rng(31);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto digest_of = [&](const sched::NamedFactory& f) {
    auto scheduler = f.make();
    sim::Engine engine(instance, *scheduler);
    DigestSink sink;
    engine.attach_trace(&sink);
    engine.run_to_completion();
    return sink.digest();
  };
  EXPECT_EQ(digest_of(sched::make_vdover()), digest_of(sched::make_vdover()));
  EXPECT_NE(digest_of(sched::make_vdover()), digest_of(sched::make_edf()));
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CountersGaugesDistributionsMerge) {
  MetricsRegistry registry;
  auto& shard = registry.local();
  shard.count("jobs", 3.0);
  shard.count("jobs");
  shard.set_gauge("queue_depth", 7.0);
  shard.observe("latency", 1.0);
  shard.observe("latency", 3.0);

  auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("jobs"), 4.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("queue_depth"), 7.0);
  EXPECT_EQ(snap.distributions.at("latency").count(), 2u);
  EXPECT_DOUBLE_EQ(snap.distributions.at("latency").mean(), 2.0);
  EXPECT_NE(snap.render().find("jobs"), std::string::npos);
}

TEST(Metrics, ThreadShardsMergeExactly) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  parallel_for(pool, 1000, [&](std::size_t i) {
    auto& shard = registry.local();
    shard.count("items");
    shard.observe("value", static_cast<double>(i));
  });
  pool.wait_idle();
  EXPECT_GE(registry.shard_count(), 1u);
  auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("items"), 1000.0);
  EXPECT_EQ(snap.distributions.at("value").count(), 1000u);
  EXPECT_DOUBLE_EQ(snap.distributions.at("value").mean(), 499.5);
  EXPECT_DOUBLE_EQ(snap.distributions.at("value").min(), 0.0);
  EXPECT_DOUBLE_EQ(snap.distributions.at("value").max(), 999.0);
}

TEST(Metrics, DeclaredHistogramsBinAndMergeAcrossShards) {
  MetricsRegistry registry;
  registry.declare_histogram("value", 0.0, 100.0, 10);
  ThreadPool pool(3);
  parallel_for(pool, 100, [&](std::size_t i) {
    registry.local().observe("value", static_cast<double>(i));
  });
  pool.wait_idle();
  auto snap = registry.snapshot();
  const auto& histogram = snap.histograms.at("value");
  EXPECT_EQ(histogram.total(), 100u);
  for (std::size_t bin = 0; bin < histogram.bins(); ++bin) {
    EXPECT_EQ(histogram.count(bin), 10u) << "bin " << bin;
  }
}

TEST(Metrics, GaugesMergeByMaximum) {
  // Gauges are last-write-wins within a shard and max across shards; pin one
  // shard per explicit thread so the cross-shard rule is what is tested.
  MetricsRegistry registry;
  registry.local().set_gauge("peak", 3.0);
  std::thread high([&] { registry.local().set_gauge("peak", 9.0); });
  std::thread low([&] { registry.local().set_gauge("peak", 5.0); });
  high.join();
  low.join();
  EXPECT_EQ(registry.shard_count(), 3u);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges.at("peak"), 9.0);
}

TEST(Metrics, BridgeDerivesResponseTimeAndCounters) {
  MetricsRegistry registry;
  TraceMetricsBridge bridge(registry.local());
  for (const auto& event : tiny_valid_stream()) bridge.record(event);
  auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("trace.release"), 2.0);
  EXPECT_DOUBLE_EQ(snap.counters.at("trace.dispatch"), 2.0);
  EXPECT_DOUBLE_EQ(snap.counters.at("trace.complete"), 1.0);
  // Job 0: released at 0, completed at 2, deadline 3.
  EXPECT_DOUBLE_EQ(snap.distributions.at("job.response_time").mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap.distributions.at("job.slack_at_completion").mean(),
                   1.0);
  EXPECT_DOUBLE_EQ(snap.distributions.at("run.value_fraction").mean(),
                   5.0 / 12.0);
}

// --------------------------------------------------------------- exporters

TEST(Exporters, JsonlEmitsOneObjectPerEvent) {
  std::ostringstream out;
  write_jsonl(tiny_valid_stream(), out);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 8);
  EXPECT_NE(text.find("\"kind\":\"release\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"run_end\""), std::string::npos);
  EXPECT_NE(text.find("\"job\":1"), std::string::npos);
}

TEST(Exporters, ChromeTraceHasSlicesAndInstants) {
  std::ostringstream out;
  write_chrome_trace(tiny_valid_stream(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // exec slices
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);  // instants
  // Balanced JSON braces (cheap well-formedness check).
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
}

TEST(Exporters, ChromeTraceClosesTruncatedSlices) {
  // A stream that ends mid-execution (as a wrapped ring would) must still
  // produce a closed slice.
  std::vector<TraceEvent> stream{
      ev(0.0, TraceKind::kDispatch, 0, 2.0),
      ev(1.5, TraceKind::kTimer, 0, 1.0),
  };
  std::ostringstream out;
  write_chrome_trace(stream, out);
  EXPECT_NE(out.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(Exporters, SaveTraceRejectsUnknownFormatAndBadPath) {
  const auto events = tiny_valid_stream();
  EXPECT_THROW(save_trace(events, "/nonexistent-dir/x.jsonl", "jsonl"),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  EXPECT_THROW(save_trace(events, path, "xml"), std::runtime_error);
  EXPECT_NO_THROW(save_trace(events, path, "jsonl"));
  EXPECT_NO_THROW(save_trace(events, path, "chrome"));
}

// ---------------------------------------------------------------- checker

TEST(Invariants, AcceptsAValidStream) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  for (const auto& event : tiny_valid_stream()) checker.record(event);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_DOUBLE_EQ(checker.executed(0), 2.0);
  EXPECT_DOUBLE_EQ(checker.executed(1), 2.0);
  EXPECT_EQ(checker.completed_count(), 1u);
  checker.verify_executed_work({2.0, 2.0});
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(Invariants, DetectsCompletionWithoutEnoughWork) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.0, TraceKind::kRunStart, kNoJob, 2.0));
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  checker.record(ev(0.0, TraceKind::kDispatch, 0, 2.0));
  // Claimed complete at t=1: only 1.0 of 2.0 workload integrated.
  checker.record(ev(1.0, TraceKind::kComplete, 0, 5.0));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("integrated work"), std::string::npos);
}

TEST(Invariants, DetectsExecutionPastTheDeadline) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  checker.record(ev(0.0, TraceKind::kDispatch, 0, 2.0));
  checker.record(ev(3.5, TraceKind::kPreempt, 0, 0.0));  // d_0 = 3
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("past its deadline"), std::string::npos);
}

TEST(Invariants, DetectsDispatchOfUnreleasedJob) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.5, TraceKind::kDispatch, 1, 4.0));  // r_1 = 1
  EXPECT_FALSE(checker.ok());
}

TEST(Invariants, DetectsDoubleReleaseAndDoubleCompletion) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("released twice"), std::string::npos);
}

TEST(Invariants, DetectsValueMisaccountingAtRunEnd) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  for (auto event : tiny_valid_stream()) {
    if (event.kind == TraceKind::kRunEnd) event.a = 9.0;  // engine "claims" 9
    checker.record(event);
  }
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("completed value"), std::string::npos);
}

TEST(Invariants, DetectsZeroLaxityLabelWithoutTest) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  // Supplement label with no preceding kNoteZeroLaxityTest: I9.
  checker.record(ev(0.5, TraceKind::kNote, 0, kNoteSupplement));
  EXPECT_FALSE(checker.ok());
  EXPECT_NE(checker.report().find("zero-laxity"), std::string::npos);
}

TEST(Invariants, AcceptsLabelAfterZeroLaxityTest) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  checker.record(ev(0.5, TraceKind::kNote, 0, kNoteZeroLaxityTest, 5.0));
  checker.record(ev(0.5, TraceKind::kNote, 0, kNoteSupplement));
  EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(Invariants, DetectsMisreportedExecutedWork) {
  const auto instance = tiny_instance();
  InvariantChecker checker(instance);
  for (const auto& event : tiny_valid_stream()) checker.record(event);
  ASSERT_TRUE(checker.ok());
  checker.verify_executed_work({2.0, 3.5});  // trace integrates 2.0 for job 1
  EXPECT_FALSE(checker.ok());
}

TEST(Invariants, ThrowOnViolationOptionFiresImmediately) {
  const auto instance = tiny_instance();
  InvariantChecker::Options options;
  options.throw_on_violation = true;
  InvariantChecker checker(instance, options);
  checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0));
  EXPECT_THROW(checker.record(ev(0.0, TraceKind::kRelease, 0, 2.0, 3.0)),
               CheckError);
}

TEST(Invariants, GreenOnRealVDoverRun) {
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 120.0;
  Rng rng(77);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto scheduler = sched::make_vdover().make();
  sim::Engine engine(instance, *scheduler);
  InvariantChecker checker(instance);
  engine.attach_trace(&checker);
  auto result = engine.run_to_completion();
  checker.verify_executed_work(result.executed_work);
  EXPECT_TRUE(checker.ok()) << checker.report();
  EXPECT_EQ(checker.completed_count(), result.completed_count);
}

TEST(Invariants, GreenOnMultiEngineWithMigration) {
  // The chaos-free path: global EDF over a heterogeneous 3-server fleet.
  Rng rng(123);
  gen::JobGenParams jp;
  jp.lambda = 6.0;
  jp.horizon = 40.0;
  jp.slack_factor = 1.4;
  auto jobs = gen::generate_jobs(jp, rng);
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  std::vector<cap::CapacityProfile> fleet{cap::CapacityProfile(1.0),
                                          cap::CapacityProfile(2.0),
                                          cap::CapacityProfile(0.5)};
  // Checker ground truth: the jobs plus per-server paths.
  Instance instance(jobs, cap::CapacityProfile(1.0), 0.5, 2.0);

  cloud::GlobalKeyScheduler scheduler(cloud::GlobalKey::kDeadline);
  cloud::MultiEngine engine(jobs, fleet, scheduler);
  InvariantChecker checker(instance);
  checker.set_server_profiles(fleet);
  engine.attach_trace(&checker);
  auto result = engine.run_to_completion();
  checker.verify_executed_work(result.executed_work);
  EXPECT_TRUE(checker.ok()) << checker.report();
}

// ------------------------------------------------------ engine integration

TEST(EngineTrace, StreamIsBracketedAndFlushed) {
  gen::PaperSetup setup;
  setup.lambda = 4.0;
  setup.expected_jobs = 40.0;
  Rng rng(5);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto scheduler = sched::make_edf().make();
  sim::Engine engine(instance, *scheduler);
  EXPECT_FALSE(engine.trace_enabled());
  VectorTraceSink sink;
  engine.attach_trace(&sink);
  EXPECT_TRUE(engine.trace_enabled());
  auto result = engine.run_to_completion();

  ASSERT_FALSE(sink.events().empty());
  EXPECT_EQ(sink.events().front().kind, TraceKind::kRunStart);
  EXPECT_EQ(sink.events().back().kind, TraceKind::kRunEnd);
  EXPECT_DOUBLE_EQ(sink.events().back().a, result.completed_value);

  // Event count bookkeeping: one release per job, terminal per job.
  const auto count_kind = [&](TraceKind kind) {
    return std::count_if(
        sink.events().begin(), sink.events().end(),
        [kind](const TraceEvent& event) { return event.kind == kind; });
  };
  EXPECT_EQ(count_kind(TraceKind::kRelease),
            static_cast<std::ptrdiff_t>(instance.size()));
  EXPECT_EQ(count_kind(TraceKind::kComplete),
            static_cast<std::ptrdiff_t>(result.completed_count));
  EXPECT_EQ(count_kind(TraceKind::kExpire),
            static_cast<std::ptrdiff_t>(result.expired_count));
}

TEST(EngineTrace, RingTailMatchesFullStream) {
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 60.0;
  Rng rng(8);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto run_with = [&](TraceSink& sink) {
    auto scheduler = sched::make_vdover().make();
    sim::Engine engine(instance, *scheduler);
    engine.attach_trace(&sink);
    engine.run_to_completion();
  };
  VectorTraceSink full;
  run_with(full);
  RingTraceBuffer ring(32);
  run_with(ring);

  ASSERT_GT(full.events().size(), 32u) << "instance too small for a wrap";
  EXPECT_EQ(ring.total_recorded(), full.events().size());
  const auto tail = ring.events();
  ASSERT_EQ(tail.size(), 32u);
  const auto& reference = full.events();
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const auto& expected = reference[reference.size() - 32 + i];
    EXPECT_DOUBLE_EQ(tail[i].time, expected.time);
    EXPECT_EQ(tail[i].kind, expected.kind);
    EXPECT_EQ(tail[i].job, expected.job);
  }
}

TEST(EngineTrace, VDoverEmitsAuditableNotes) {
  // Overloaded instance: V-Dover must hit Procedure D at least once, and
  // every label must follow a zero-laxity test (checked by I9 above; here we
  // check the notes actually appear).
  gen::PaperSetup setup;
  setup.lambda = 8.0;
  setup.expected_jobs = 150.0;
  Rng rng(13);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto scheduler = sched::make_vdover().make();
  sim::Engine engine(instance, *scheduler);
  VectorTraceSink sink;
  engine.attach_trace(&sink);
  engine.run_to_completion();

  const auto notes = std::count_if(
      sink.events().begin(), sink.events().end(), [](const TraceEvent& event) {
        return event.kind == TraceKind::kNote &&
               static_cast<int>(event.a) == kNoteZeroLaxityTest;
      });
  EXPECT_GT(notes, 0) << "overloaded V-Dover run never reached Procedure D";
}

}  // namespace
}  // namespace sjs::obs
