// Tests for the elastic fleet (src/cluster/): fleet presets and persistence,
// rental controllers, the dispatcher's rental-cost accounting against a
// hand-computed oracle on a scripted 3-machine scenario, budget enforcement,
// the cluster Monte-Carlo driver's thread-count independence, and the
// cluster.* metrics surface.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/cluster_metrics.hpp"
#include "cluster/dispatcher.hpp"
#include "cluster/fleet.hpp"
#include "cluster/rental.hpp"
#include "jobs/workload_gen.hpp"
#include "mc/cluster_mc.hpp"
#include "obs/metrics.hpp"

namespace {

using sjs::Job;
using sjs::cluster::Dispatcher;
using sjs::cluster::DispatcherConfig;
using sjs::cluster::Fleet;
using sjs::cluster::FleetLoad;
using sjs::cluster::ServerSpec;

Job make_job(sjs::JobId id, double release, double workload, double deadline,
             double value) {
  Job j;
  j.id = id;
  j.release = release;
  j.workload = workload;
  j.deadline = deadline;
  j.value = value;
  return j;
}

TEST(FleetTest, HeterogeneousPresetCyclesFastestFirst) {
  const Fleet fleet = Fleet::heterogeneous(4);
  ASSERT_EQ(fleet.size(), 4u);
  // large, standard, small, large — the lowest-rented configuration (the
  // dispatcher releases highest-index-first) keeps the strongest machine.
  EXPECT_DOUBLE_EQ(fleet.spec(0).speed, 2.0);
  EXPECT_DOUBLE_EQ(fleet.spec(1).speed, 1.0);
  EXPECT_DOUBLE_EQ(fleet.spec(2).speed, 0.5);
  EXPECT_DOUBLE_EQ(fleet.spec(3).speed, 2.0);
  // Admission floor is the strongest machine's effective c_lo.
  EXPECT_DOUBLE_EQ(fleet.admission_c_lo(), 2.0);
  EXPECT_DOUBLE_EQ(fleet.max_hi(), 70.0);
  EXPECT_DOUBLE_EQ(fleet.total_cost_rate(), 2.2 + 1.0 + 0.45 + 2.2);
  const auto paths = fleet.constant_paths();
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_DOUBLE_EQ(paths[0].rate(0.0), 70.0);
  EXPECT_DOUBLE_EQ(paths[2].rate(123.0), 17.5);
}

TEST(FleetTest, CsvRoundTripIsExact) {
  Fleet fleet;
  fleet.add(ServerSpec{1.0, 35.0, 2.0, 2.2});
  fleet.add(ServerSpec{0.7, 12.5, 1.0, 1.0 / 3.0});
  const auto path =
      (std::filesystem::path(testing::TempDir()) / "fleet_rt.csv").string();
  sjs::cluster::save_fleet_csv(fleet, path);
  const Fleet loaded = sjs::cluster::load_fleet_csv(path);
  ASSERT_EQ(loaded.size(), fleet.size());
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    EXPECT_EQ(loaded.spec(k).c_lo, fleet.spec(k).c_lo);
    EXPECT_EQ(loaded.spec(k).c_hi, fleet.spec(k).c_hi);
    EXPECT_EQ(loaded.spec(k).speed, fleet.spec(k).speed);
    EXPECT_EQ(loaded.spec(k).cost_rate, fleet.spec(k).cost_rate);
  }
}

TEST(RentalTest, ThresholdControllerHysteresis) {
  sjs::cluster::ThresholdRentalController ctl;  // rent > 2.0, release < 0.75
  // Empty fleet: rent one machine as soon as a job exists.
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 0, 0, 4}), 0u);
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 1, 0, 4}), 1u);
  // Inside the hysteresis band: hold.
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 2, 1, 4}), 1u);
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 3, 2, 4}), 2u);
  // Above the rent threshold: grow by one.
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 3, 1, 4}), 2u);
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 9, 2, 4}), 3u);
  // Below the release threshold: shrink by one.
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 1, 2, 4}), 1u);
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 0, 1, 4}), 0u);
}

TEST(RentalTest, LoadTrackingControllerEwma) {
  sjs::cluster::LoadTrackingRentalController ctl(0.5, 2.0);
  // First observation primes the EWMA directly.
  EXPECT_EQ(ctl.target_machines(FleetLoad{0.0, 8, 0, 4}), 4u);  // ceil(8/2)
  // EWMA: 0.5*0 + 0.5*8 = 4 → ceil(4/2) = 2.
  EXPECT_EQ(ctl.target_machines(FleetLoad{1.0, 0, 4, 4}), 2u);
  // EWMA: 0.5*0 + 0.5*4 = 2 → ceil(2/2) = 1.
  EXPECT_EQ(ctl.target_machines(FleetLoad{2.0, 0, 2, 4}), 1u);
}

TEST(RentalTest, FactoryNamesAndErrors) {
  EXPECT_NE(sjs::cluster::make_rental_controller("threshold"), nullptr);
  EXPECT_NE(sjs::cluster::make_rental_controller("load"), nullptr);
  EXPECT_EQ(sjs::cluster::make_rental_controller("static"), nullptr);
  EXPECT_EQ(sjs::cluster::make_rental_controller(""), nullptr);
  EXPECT_THROW(sjs::cluster::make_rental_controller("spot-market"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// The acceptance oracle: rental cost on a scripted 3-machine scenario,
// computed by hand.
//
// Fleet heterogeneous(3): machine 0 = large (rate 70, cost 2.2), machine 1 =
// standard (rate 35, cost 1.0), machine 2 = small (rate 17.5, cost 0.45).
// Threshold rental (rent when jobs/machine > 2, release when < 0.75),
// min_rented = 1. Three jobs at t = 0 sized to the machine rates:
//
//   t=0    on_start rents machine 0 (min_rented).           rent #1
//          j0 (p=70) released → 1 job/machine → hold; j0 runs on m0. (d1)
//          j1 (p=35) released → 2 jobs/machine → hold; j1 queues.
//          j2 (p=17.5) released → 3 > 2 → rent machine 1.   rent #2
//          Top-2 by (deadline, id): j0 stays on m0, j1 → m1 (d2); j2 queues.
//   [0,1]  two machines rented: cost 2.2 + 1.0 = 3.2.
//   t=1    j0 completes (70/70) → 2 jobs, 2 machines → hold. m0 is now the
//          fastest free machine, so top-priority j1 (done but not yet
//          reaped) migrates m1 → m0 (d3, the migration) and j2 takes m1
//          (d4).
//          j1's completion lands → 1 job / 2 machines = 0.5 < 0.75 →
//          release machine 1, evicting j2 (the preemption). release #1
//          j2 re-places onto m0 (d5).
//   [1,1.25] one machine rented: cost 2.2 · 0.25 = 0.55.
//   t=1.25 j2 completes (17.5 remaining at rate 70).
//   [1.25,10] the jobs' expiry events (scheduled at admission, stale once
//          the jobs completed) still advance the engine clock to the
//          deadline horizon, and run_cluster settles the account at the
//          last event: cost 2.2 · 8.75 = 19.25 on the pinned min fleet.
//
// Totals: cost = 3.2 + 0.55 + 19.25 = 23, machine-time = 2·1 + 1·9 = 11,
// 2 rents, 1 release, peak 2, 5 dispatches, 1 migration, 1 preemption.
TEST(DispatcherTest, RentalCostMatchesHandOracle) {
  const Fleet fleet = Fleet::heterogeneous(3);
  const std::vector<Job> jobs = {
      make_job(0, 0.0, 70.0, 10.0, 1.0),
      make_job(1, 0.0, 35.0, 10.0, 1.0),
      make_job(2, 0.0, 17.5, 10.0, 1.0),
  };
  DispatcherConfig config;
  Dispatcher dispatcher(fleet, config,
                        sjs::cluster::make_rental_controller("threshold"));
  const sjs::cloud::MultiSimResult result = sjs::cluster::run_cluster(
      jobs, fleet.constant_paths(), dispatcher);

  EXPECT_EQ(result.completed_count, 3u);
  EXPECT_EQ(result.expired_count, 0u);
  ASSERT_EQ(result.completion_times.size(), 3u);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 1.0);
  EXPECT_DOUBLE_EQ(result.completion_times[1], 1.0);
  EXPECT_DOUBLE_EQ(result.completion_times[2], 1.25);

  EXPECT_NEAR(result.rental_cost, (2.2 + 1.0) * 1.0 + 2.2 * 9.0, 1e-9);
  EXPECT_NEAR(result.rented_machine_time, 11.0, 1e-9);
  EXPECT_EQ(result.rent_events, 2u);
  EXPECT_EQ(result.release_events, 1u);
  EXPECT_EQ(result.rented_peak, 2u);
  EXPECT_EQ(result.dispatches, 5u);
  EXPECT_EQ(result.migrations, 1u);
  EXPECT_EQ(result.preemptions, 1u);
  EXPECT_EQ(result.scheduler_name, "Cluster-EDF/threshold");
}

TEST(DispatcherTest, BudgetPinsTheFleetToMinRented) {
  const Fleet fleet = Fleet::heterogeneous(3);
  sjs::gen::JobGenParams params;
  params.lambda = 10.0;
  params.horizon = 30.0;
  params.c_lo = fleet.admission_c_lo();
  sjs::Rng rng(77, 0);
  std::vector<Job> jobs = sjs::gen::generate_jobs(params, rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sjs::JobId>(i);
  }

  DispatcherConfig unlimited;
  Dispatcher free_dispatcher(fleet, unlimited,
                             sjs::cluster::make_rental_controller("threshold"));
  const auto free_run = sjs::cluster::run_cluster(
      jobs, fleet.constant_paths(), free_dispatcher);

  DispatcherConfig capped = unlimited;
  capped.budget = 5.0;
  Dispatcher capped_dispatcher(
      fleet, capped, sjs::cluster::make_rental_controller("threshold"));
  const auto capped_run = sjs::cluster::run_cluster(
      jobs, fleet.constant_paths(), capped_dispatcher);

  // The unbudgeted fleet actually elasticises under this load.
  EXPECT_GT(free_run.rented_peak, 1u);
  EXPECT_GT(free_run.rent_events, 1u);
  // Once accrued cost crosses the budget the fleet pins to min_rented: the
  // capped run never holds more machines than the free one and spends
  // strictly less (here the budget is gone before the first rent trigger,
  // so it never elasticises at all).
  EXPECT_LT(capped_run.rental_cost, free_run.rental_cost);
  EXPECT_LE(capped_run.rented_peak, free_run.rented_peak);
  EXPECT_EQ(capped_run.rented_peak, 1u);
}

TEST(DispatcherTest, StaticRentalKeepsWholeFleetAndHvdfNames) {
  const Fleet fleet = Fleet::heterogeneous(2);
  const std::vector<Job> jobs = {make_job(0, 0.0, 70.0, 10.0, 1.0)};
  DispatcherConfig config;
  config.key = sjs::cloud::GlobalKey::kValueDensity;
  Dispatcher dispatcher(fleet, config, nullptr);
  const auto result =
      sjs::cluster::run_cluster(jobs, fleet.constant_paths(), dispatcher);
  EXPECT_EQ(result.scheduler_name, "Cluster-HVDF/static");
  EXPECT_EQ(result.rented_peak, 2u);
  EXPECT_EQ(result.release_events, 0u);
  // Whole fleet rented for the whole session, which runs to the last engine
  // event — the job's (stale) expiry at its deadline, t = 10.
  EXPECT_NEAR(result.rental_cost, fleet.total_cost_rate() * 10.0, 1e-9);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(ClusterMcTest, ThreadCountIndependentDigests) {
  sjs::mc::ClusterMcConfig config;
  config.fleet = Fleet::heterogeneous(4);
  config.jobs.lambda = 6.0;
  config.jobs.horizon = 20.0;
  config.jobs.c_lo = config.fleet.admission_c_lo();
  config.scenario.kind = sjs::cap::ScenarioKind::kFlashCrowd;
  config.runs = 8;
  config.compute_digests = true;

  config.threads = 1;
  const auto serial = sjs::mc::run_cluster_mc(config);
  config.threads = 4;
  const auto parallel = sjs::mc::run_cluster_mc(config);

  EXPECT_EQ(serial.scheduler_name, "Cluster-EDF/threshold");
  EXPECT_EQ(serial.scenario, "flash-crowd");
  ASSERT_EQ(serial.run_digests.size(), 8u);
  EXPECT_EQ(serial.run_digests, parallel.run_digests);
  EXPECT_EQ(serial.combined_digest, parallel.combined_digest);
  EXPECT_NE(serial.combined_digest, 0u);
  ASSERT_EQ(serial.value_fractions.size(), 8u);
  EXPECT_EQ(serial.value_fractions, parallel.value_fractions);
  EXPECT_DOUBLE_EQ(serial.mean_cost, parallel.mean_cost);
  ASSERT_EQ(serial.mean_util_per_server.size(), 4u);
}

TEST(ClusterMetricsTest, PublishesCountersAndPerServerGauges) {
  sjs::cloud::MultiSimResult result;
  result.dispatches = 10;
  result.preemptions = 2;
  result.migrations = 3;
  result.rent_events = 4;
  result.release_events = 1;
  result.rental_cost = 12.5;
  result.rented_machine_time = 40.0;
  result.rented_peak = 3;
  result.busy_time_per_server = {50.0, 25.0, 0.0};

  sjs::obs::MetricsRegistry registry;
  sjs::cluster::publish_cluster_metrics(result, 100.0, registry.local());
  const std::string rendered = registry.render();
  EXPECT_NE(rendered.find("cluster.dispatches: 10"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("cluster.migrations: 3"), std::string::npos);
  EXPECT_NE(rendered.find("cluster.cost_accrued: 12.5"), std::string::npos);
  EXPECT_NE(rendered.find("cluster.rented_machines: 3"), std::string::npos);
  EXPECT_NE(rendered.find("cluster.util.server0: 0.5"), std::string::npos);
  EXPECT_NE(rendered.find("cluster.util.server1: 0.25"), std::string::npos);
  EXPECT_NE(rendered.find("cluster.util.server2: 0"), std::string::npos);
}

}  // namespace
