// Wire-protocol codec tests: every message type must round-trip bit-exactly
// through encode_frame/FrameDecoder, fragmented delivery must reassemble,
// and malformed input — truncation, bad lengths, unknown types, random
// mutation — must be rejected deterministically without ever crashing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace {

using sjs::serve::FrameDecoder;
using sjs::serve::Message;
using sjs::serve::MsgType;

Message decode_one(const std::vector<std::uint8_t>& frame) {
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  Message out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kOk);
  Message rest;
  EXPECT_EQ(dec.next(rest), FrameDecoder::Status::kNeedMore)
      << "frame left trailing bytes";
  return out;
}

std::vector<Message> all_message_samples() {
  std::vector<Message> msgs;
  {
    Message m;
    m.type = MsgType::kSubmit;
    m.seq = 42;
    m.a = 0.1 + 0.2;  // a double that does not round-trip through text
    m.b = 1e-17;
    m.c = 7.25;
    msgs.push_back(m);
  }
  for (MsgType t : {MsgType::kCancel, MsgType::kQuery, MsgType::kCancelled,
                    MsgType::kCancelFailed}) {
    Message m;
    m.type = t;
    m.seq = 7;
    m.ticket = 0xdeadbeefcafeULL;
    msgs.push_back(m);
  }
  for (MsgType t : {MsgType::kStats, MsgType::kDrain, MsgType::kShed,
                    MsgType::kDraining}) {
    Message m;
    m.type = t;
    m.seq = 9001;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kAccepted;
    m.seq = 3;
    m.ticket = 17;
    m.a = std::nextafter(5.0, 6.0);  // release stamp: ulp-exact transport
    msgs.push_back(m);
  }
  for (MsgType t : {MsgType::kRejected, MsgType::kError}) {
    Message m;
    m.type = t;
    m.seq = 4;
    m.code = 2;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kCompleted;
    m.seq = 5;
    m.ticket = 11;
    m.a = 3.5;
    m.b = 123.456;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kExpired;
    m.seq = 6;
    m.ticket = 12;
    m.b = 99.875;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kQueryReply;
    m.seq = 8;
    m.ticket = 13;
    m.code = 2;
    m.a = 0.75;
    msgs.push_back(m);
  }
  {
    Message m;
    m.type = MsgType::kStatsReply;
    m.seq = 10;
    m.stats.submitted = 100;
    m.stats.accepted = 90;
    m.stats.rejected = 5;
    m.stats.shed = 5;
    m.stats.completed = 60;
    m.stats.expired = 20;
    m.stats.cancelled = 3;
    m.stats.in_flight = 7;
    m.stats.virtual_now = 12.125;
    m.stats.admitted_value = 55.5;
    m.stats.completed_value = 33.25;
    msgs.push_back(m);
  }
  return msgs;
}

void expect_equal(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.ticket, b.ticket);
  // Bitwise double equality: the transport must not perturb a single ulp.
  EXPECT_EQ(std::memcmp(&a.a, &b.a, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.b, &b.b, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.c, &b.c, sizeof(double)), 0);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.stats.submitted, b.stats.submitted);
  EXPECT_EQ(a.stats.accepted, b.stats.accepted);
  EXPECT_EQ(a.stats.rejected, b.stats.rejected);
  EXPECT_EQ(a.stats.shed, b.stats.shed);
  EXPECT_EQ(a.stats.completed, b.stats.completed);
  EXPECT_EQ(a.stats.expired, b.stats.expired);
  EXPECT_EQ(a.stats.cancelled, b.stats.cancelled);
  EXPECT_EQ(a.stats.in_flight, b.stats.in_flight);
  EXPECT_EQ(a.stats.virtual_now, b.stats.virtual_now);
  EXPECT_EQ(a.stats.admitted_value, b.stats.admitted_value);
  EXPECT_EQ(a.stats.completed_value, b.stats.completed_value);
}

TEST(ServeProtocolTest, EveryTypeRoundTrips) {
  for (const Message& m : all_message_samples()) {
    SCOPED_TRACE(static_cast<int>(m.type));
    const auto frame = sjs::serve::encode_frame(m);
    ASSERT_EQ(frame.size(), sjs::serve::kFrameHeader +
                                sjs::serve::kMinPayload +
                                sjs::serve::body_size(m.type));
    expect_equal(decode_one(frame), m);
  }
}

TEST(ServeProtocolTest, StreamOfFramesSplitsCorrectly) {
  const auto msgs = all_message_samples();
  std::vector<std::uint8_t> stream;
  for (const Message& m : msgs) sjs::serve::append_frame(stream, m);

  // Feed the whole stream byte-by-byte: framing must not depend on read
  // boundaries.
  FrameDecoder dec;
  std::size_t decoded = 0;
  for (std::uint8_t byte : stream) {
    dec.feed(&byte, 1);
    Message out;
    while (dec.next(out) == FrameDecoder::Status::kOk) {
      ASSERT_LT(decoded, msgs.size());
      expect_equal(out, msgs[decoded]);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, msgs.size());
}

TEST(ServeProtocolTest, TruncatedFrameWaitsForMore) {
  Message m;
  m.type = MsgType::kSubmit;
  m.seq = 1;
  const auto frame = sjs::serve::encode_frame(m);
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size() - 1);
  Message out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kNeedMore);
  const std::uint8_t last = frame.back();
  dec.feed(&last, 1);
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kOk);
}

TEST(ServeProtocolTest, LengthOutOfBoundsIsMalformedAndSticky) {
  for (std::uint32_t len :
       {std::uint32_t{0}, std::uint32_t{8},
        static_cast<std::uint32_t>(sjs::serve::kMaxPayload + 1),
        std::uint32_t{0xffffffff}}) {
    SCOPED_TRACE(len);
    std::vector<std::uint8_t> bad;
    for (int i = 0; i < 4; ++i) {
      bad.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    bad.resize(16, 0);
    FrameDecoder dec;
    dec.feed(bad.data(), bad.size());
    Message out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::kMalformed);
    EXPECT_FALSE(dec.error().empty());
    // Sticky: a valid frame fed afterwards is refused (connection is dead).
    const auto good = sjs::serve::encode_frame(Message{});
    dec.feed(good.data(), good.size());
    EXPECT_EQ(dec.next(out), FrameDecoder::Status::kMalformed);
  }
}

TEST(ServeProtocolTest, UnknownTypeIsMalformed) {
  Message m;
  m.type = MsgType::kSubmit;
  auto frame = sjs::serve::encode_frame(m);
  frame[4] = 0x7f;  // clobber the type byte
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  Message out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kMalformed);
}

TEST(ServeProtocolTest, LengthBodyMismatchIsMalformed) {
  // A kCancel body (8 bytes) with a kSubmit type byte: length no longer
  // matches the declared type's fixed body size.
  Message m;
  m.type = MsgType::kCancel;
  m.ticket = 5;
  auto frame = sjs::serve::encode_frame(m);
  frame[4] = static_cast<std::uint8_t>(MsgType::kSubmit);
  FrameDecoder dec;
  dec.feed(frame.data(), frame.size());
  Message out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Status::kMalformed);
}

// Deterministic mutation fuzz: flip bytes in valid frames and splice random
// garbage; the decoder must always return a definite status and never read
// out of bounds (the ASan/UBSan CI jobs give this test its teeth).
TEST(ServeProtocolTest, MutationFuzzNeverCrashes) {
  sjs::Rng rng(20260806);
  const auto samples = all_message_samples();
  int ok = 0;
  int malformed = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> stream;
    for (int j = 0; j < 3; ++j) {
      const auto& m = samples[rng.below(samples.size())];
      sjs::serve::append_frame(stream, m);
    }
    const int flips = static_cast<int>(rng.below(6));
    for (int f = 0; f < flips; ++f) {
      stream[rng.below(stream.size())] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    if (rng.bernoulli(0.3)) {
      stream.resize(rng.below(stream.size() + 1));
    }
    FrameDecoder dec;
    // Random fragmentation.
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.below(40), stream.size() - pos);
      dec.feed(stream.data() + pos, n);
      pos += n;
      Message out;
      FrameDecoder::Status st;
      while ((st = dec.next(out)) == FrameDecoder::Status::kOk) {
        ++ok;
      }
      if (st == FrameDecoder::Status::kMalformed) {
        ++malformed;
        break;
      }
    }
  }
  // Sanity: the fuzz exercised both outcomes.
  EXPECT_GT(ok, 0);
  EXPECT_GT(malformed, 0);
}

// Long sessions must not accumulate consumed bytes (the decoder compacts its
// buffer); this is a behavioural proxy: a million tiny frames decode fine.
TEST(ServeProtocolTest, LongStreamDecodesIncrementally) {
  FrameDecoder dec;
  Message m;
  m.type = MsgType::kStats;
  const auto frame = sjs::serve::encode_frame(m);
  int decoded = 0;
  for (int i = 0; i < 100000; ++i) {
    m.seq = static_cast<std::uint64_t>(i);
    const auto f = sjs::serve::encode_frame(m);
    dec.feed(f.data(), f.size());
    Message out;
    while (dec.next(out) == FrameDecoder::Status::kOk) {
      EXPECT_EQ(out.seq, static_cast<std::uint64_t>(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 100000);
  (void)frame;
}

}  // namespace
