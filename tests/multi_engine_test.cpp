// Tests for the coupled multi-server engine and the global (migrating)
// schedulers: placement/migration mechanics, exact per-server completion
// arithmetic, conservation invariants under a chaos scheduler, and the
// expected dominance relations (more servers >= fewer; migration >= none on
// feasible loads).
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "cloud/dispatch.hpp"
#include "cloud/global_sched.hpp"
#include "cloud/multi_engine.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::cloud {
namespace {

Job make_job(JobId id, double r, double p, double d, double v) {
  Job j;
  j.id = id;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

std::vector<Job> canonical(std::vector<Job> jobs) {
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    return a.release < b.release;
  });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<JobId>(i);
  }
  return jobs;
}

std::vector<cap::CapacityProfile> uniform_fleet(std::size_t n, double rate) {
  return std::vector<cap::CapacityProfile>(n, cap::CapacityProfile(rate));
}

// ------------------------------------------------------------- mechanics

TEST(MultiEngine, TwoJobsRunTrulyInParallel) {
  auto jobs = canonical({make_job(0, 0.0, 4.0, 5.0, 1.0),
                         make_job(0, 0.0, 4.0, 5.0, 1.0)});
  GlobalKeyScheduler scheduler(GlobalKey::kDeadline);
  MultiEngine engine(jobs, uniform_fleet(2, 1.0), scheduler);
  auto result = engine.run_to_completion();
  // On one rate-1 server only one of the two 4-in-5 jobs could finish;
  // two servers complete both by t=4.
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_DOUBLE_EQ(result.busy_time_per_server[0], 4.0);
  EXPECT_DOUBLE_EQ(result.busy_time_per_server[1], 4.0);
}

TEST(MultiEngine, HeterogeneousRatesGiveExactCompletionTimes) {
  // Urgent job on the fast server (global EDF assigns fastest-first).
  auto jobs = canonical({make_job(0, 0.0, 10.0, 3.0, 1.0),
                         make_job(0, 0.0, 10.0, 11.0, 1.0)});
  GlobalKeyScheduler scheduler(GlobalKey::kDeadline);
  std::vector<cap::CapacityProfile> fleet{cap::CapacityProfile(1.0),
                                          cap::CapacityProfile(5.0)};
  MultiEngine engine(jobs, fleet, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  // Earliest deadline ran at rate 5: done at t=2; the other at rate 1: t=10.
  EXPECT_DOUBLE_EQ(result.executed_work[0], 10.0);
  EXPECT_DOUBLE_EQ(result.executed_work[1], 10.0);
}

TEST(MultiEngine, MigrationCarriesRemainingWork) {
  // A scheduler that deliberately migrates job 0 from server 0 to server 1
  // at job 1's release.
  class MigratingScheduler : public GlobalScheduler {
   public:
    void on_release(MultiEngine& engine, JobId job) override {
      if (job == 0) {
        engine.run_on(0, 0);
      } else {
        engine.run_on(1, 0);  // migrate job 0; leave job 1 unscheduled
      }
    }
    void on_complete(MultiEngine&, JobId, std::size_t) override {}
    void on_expire(MultiEngine&, JobId, std::size_t) override {}
    std::string name() const override { return "migrating"; }
  };
  auto jobs = canonical({make_job(0, 0.0, 6.0, 20.0, 1.0),
                         make_job(0, 2.0, 1.0, 3.0, 1.0)});
  MigratingScheduler scheduler;
  // Server 0 runs at 1, server 1 at 2: job 0 does 2 units by t=2, then the
  // remaining 4 at rate 2 -> completes at t=4.
  std::vector<cap::CapacityProfile> fleet{cap::CapacityProfile(1.0),
                                          cap::CapacityProfile(2.0)};
  MultiEngine engine(jobs, fleet, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.migrations, 1u);
  EXPECT_EQ(result.outcomes[0], sim::JobOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 6.0);
  EXPECT_EQ(result.outcomes[1], sim::JobOutcome::kExpired);
}

TEST(MultiEngine, JobNeverOnTwoServers) {
  class DoublePlacer : public GlobalScheduler {
   public:
    void on_release(MultiEngine& engine, JobId job) override {
      engine.run_on(0, job);
      engine.run_on(1, job);  // must migrate, not duplicate
      EXPECT_EQ(engine.server_of(job), 1u);
      EXPECT_EQ(engine.running_on(0), kNoJob);
    }
    void on_complete(MultiEngine&, JobId, std::size_t) override {}
    void on_expire(MultiEngine&, JobId, std::size_t) override {}
    std::string name() const override { return "double"; }
  };
  auto jobs = canonical({make_job(0, 0.0, 2.0, 5.0, 1.0)});
  DoublePlacer scheduler;
  MultiEngine engine(jobs, uniform_fleet(2, 1.0), scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  // Executed exactly its workload despite the double placement.
  EXPECT_DOUBLE_EQ(result.executed_work[0], 2.0);
}

TEST(MultiEngine, StopAndIdleWork) {
  class StopScheduler : public GlobalScheduler {
   public:
    void on_release(MultiEngine& engine, JobId job) override {
      if (job == 0) engine.run_on(0, 0);
      if (job == 1) engine.stop(0);  // park job 0 at t=1, run nothing
    }
    void on_complete(MultiEngine&, JobId, std::size_t) override {}
    void on_expire(MultiEngine&, JobId, std::size_t) override {}
    std::string name() const override { return "stopper"; }
  };
  auto jobs = canonical({make_job(0, 0.0, 5.0, 4.0, 1.0),
                         make_job(0, 1.0, 1.0, 9.0, 1.0)});
  StopScheduler scheduler;
  MultiEngine engine(jobs, uniform_fleet(1, 1.0), scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 0u);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 1.0);  // only [0, 1)
}

TEST(MultiEngine, RejectsMisuse) {
  auto jobs = canonical({make_job(0, 0.0, 1.0, 2.0, 1.0)});
  GlobalKeyScheduler scheduler(GlobalKey::kDeadline);
  MultiEngine engine(jobs, uniform_fleet(1, 1.0), scheduler);
  EXPECT_THROW(engine.run_on(0, 0), CheckError);  // outside callback
  EXPECT_THROW(MultiEngine(jobs, {}, scheduler), CheckError);
}

// ------------------------------------------------------------- invariants

class ChaosGlobalScheduler : public GlobalScheduler {
 public:
  explicit ChaosGlobalScheduler(std::uint64_t seed) : rng_(seed) {}
  void on_release(MultiEngine& engine, JobId) override { act(engine); }
  void on_complete(MultiEngine& engine, JobId, std::size_t) override {
    act(engine);
  }
  void on_expire(MultiEngine& engine, JobId, std::size_t) override {
    act(engine);
  }
  std::string name() const override { return "chaos"; }

 private:
  void act(MultiEngine& engine) {
    std::vector<JobId> live;
    for (JobId id = 0; id < static_cast<JobId>(engine.job_count()); ++id) {
      if (engine.is_live(id)) live.push_back(id);
    }
    for (std::size_t s = 0; s < engine.server_count(); ++s) {
      if (live.empty() || rng_.bernoulli(0.3)) {
        engine.idle(s);
      } else {
        engine.run_on(s, live[rng_.below(live.size())]);
      }
    }
  }
  Rng rng_;
};

class MultiEngineInvariants : public ::testing::TestWithParam<int> {};

TEST_P(MultiEngineInvariants, ConservationUnderChaos) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 15000);
  gen::JobGenParams jp;
  jp.lambda = 8.0;
  jp.horizon = 25.0;
  jp.slack_factor = 1.0 + rng.uniform01();
  auto jobs = canonical(gen::generate_jobs(jp, rng));
  double cover = 30.0;
  for (const auto& j : jobs) cover = std::max(cover, j.deadline);

  std::vector<cap::CapacityProfile> fleet;
  for (int s = 0; s < 3; ++s) {
    cap::TwoStateMarkovParams cp;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 5.0;
    fleet.push_back(cap::sample_two_state_markov(cp, cover, rng));
  }
  ChaosGlobalScheduler chaos(static_cast<std::uint64_t>(GetParam()));
  MultiEngine engine(jobs, fleet, chaos);
  auto result = engine.run_to_completion();

  EXPECT_EQ(result.completed_count + result.expired_count, jobs.size());
  double total_available = 0.0;
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    total_available += fleet[s].work(0.0, cover);
  }
  double executed = 0.0, completed_value = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(result.executed_work[i], -1e-9);
    EXPECT_LE(result.executed_work[i], jobs[i].workload + 1e-9);
    executed += result.executed_work[i];
    if (result.outcomes[i] == sim::JobOutcome::kCompleted) {
      completed_value += jobs[i].value;
      EXPECT_NEAR(result.executed_work[i], jobs[i].workload,
                  1e-6 * std::max(1.0, jobs[i].workload));
    }
  }
  EXPECT_LE(executed, total_available + 1e-6);
  EXPECT_NEAR(result.completed_value, completed_value,
              1e-9 * std::max(1.0, completed_value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiEngineInvariants, ::testing::Range(0, 6));

// ------------------------------------------------------------- dominance

TEST(GlobalSched, GlobalEdfCompletesPartitionableLoad) {
  // Four sequential streams that exactly fit four servers.
  std::vector<Job> jobs;
  for (int stream = 0; stream < 4; ++stream) {
    for (int i = 0; i < 5; ++i) {
      jobs.push_back(make_job(0, i * 2.0, 2.0, (i + 1) * 2.0, 1.0));
    }
  }
  auto canon = canonical(jobs);
  GlobalKeyScheduler scheduler(GlobalKey::kDeadline);
  MultiEngine engine(canon, uniform_fleet(4, 1.0), scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, canon.size());
}

TEST(GlobalSched, MoreServersNeverHurt) {
  Rng rng(99);
  gen::JobGenParams jp;
  jp.lambda = 6.0;
  jp.horizon = 40.0;
  auto jobs = canonical(gen::generate_jobs(jp, rng));
  auto run_k = [&](std::size_t k) {
    GlobalKeyScheduler scheduler(GlobalKey::kDeadline);
    MultiEngine engine(jobs, uniform_fleet(k, 1.0), scheduler);
    return engine.run_to_completion().completed_value;
  };
  EXPECT_GE(run_k(4), run_k(2));
  EXPECT_GE(run_k(2), run_k(1));
}

TEST(GlobalSched, MigrationBeatsDispatchOnUnbalancedBursts) {
  // All jobs arrive while server 0 is slow and server 1 is fast, then the
  // roles flip. Dispatch-once policies strand work on whichever server they
  // picked; the migrating global scheduler follows the capacity.
  std::vector<Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(make_job(0, 0.1 * i, 4.0, 0.1 * i + 8.0, 1.0));
  }
  auto canon = canonical(jobs);
  std::vector<cap::CapacityProfile> fleet{
      cap::CapacityProfile({0.0, 4.0}, {1.0, 10.0}),
      cap::CapacityProfile({0.0, 4.0}, {10.0, 1.0}),
  };
  GlobalKeyScheduler global(GlobalKey::kDeadline);
  MultiEngine engine(canon, fleet, global);
  auto migrating = engine.run_to_completion();

  CloudConfig config;
  config.c_lo = 1.0;
  config.c_hi = 10.0;
  config.policy = DispatchPolicy::kLeastBacklog;
  auto dispatched = run_cloud(canon, fleet, config, sched::make_edf());

  EXPECT_GE(migrating.completed_value, dispatched.completed_value);
  EXPECT_GT(migrating.migrations, 0u);
}

TEST(GlobalSched, HvdfPrefersDenseJobsUnderOverload) {
  std::vector<Job> jobs{
      make_job(0, 0.0, 4.0, 4.0, 28.0),  // density 7
      make_job(0, 0.0, 4.0, 4.0, 4.0),   // density 1
      make_job(0, 0.0, 4.0, 4.0, 4.0),   // density 1
  };
  auto canon = canonical(jobs);
  GlobalKeyScheduler scheduler(GlobalKey::kValueDensity);
  MultiEngine engine(canon, uniform_fleet(2, 1.0), scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_DOUBLE_EQ(result.completed_value, 32.0);  // dense + one filler
}

}  // namespace
}  // namespace sjs::cloud
