// Cloud-wise extension tests: dispatcher policies, causality of the
// conservative backlog model, and the end-to-end fleet simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "capacity/capacity_process.hpp"
#include "cloud/dispatch.hpp"
#include "jobs/workload_gen.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::cloud {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

std::vector<cap::CapacityProfile> uniform_fleet(std::size_t n, double rate) {
  return std::vector<cap::CapacityProfile>(n, cap::CapacityProfile(rate));
}

TEST(Dispatch, RoundRobinCycles) {
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(make_job(i, 1, i + 2, 1));
  CloudConfig config;
  config.policy = DispatchPolicy::kRoundRobin;
  auto assignment = dispatch_jobs(jobs, uniform_fleet(3, 1.0), config);
  EXPECT_EQ(assignment, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(Dispatch, RoundRobinFollowsReleaseOrderNotInputOrder) {
  // Input deliberately out of release order.
  std::vector<Job> jobs{make_job(5, 1, 7, 1), make_job(0, 1, 2, 1),
                        make_job(3, 1, 5, 1)};
  CloudConfig config;
  config.policy = DispatchPolicy::kRoundRobin;
  auto assignment = dispatch_jobs(jobs, uniform_fleet(3, 1.0), config);
  // Release order is jobs[1] (t=0), jobs[2] (t=3), jobs[0] (t=5).
  EXPECT_EQ(assignment[1], 0u);
  EXPECT_EQ(assignment[2], 1u);
  EXPECT_EQ(assignment[0], 2u);
}

TEST(Dispatch, LeastBacklogBalancesSimultaneousArrivals) {
  std::vector<Job> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(make_job(0.0, 2.0, 10, 1));
  CloudConfig config;
  config.policy = DispatchPolicy::kLeastBacklog;
  auto assignment = dispatch_jobs(jobs, uniform_fleet(2, 1.0), config);
  int s0 = 0, s1 = 0;
  for (auto a : assignment) (a == 0 ? s0 : s1)++;
  EXPECT_EQ(s0, 2);
  EXPECT_EQ(s1, 2);
}

TEST(Dispatch, BacklogDrainsOverTime) {
  // Job 0 loads server 0 with workload 4 at t=0; by t=5 (> 4/c_lo) the
  // backlog has drained, so job 1 also goes to server 0 (ties prefer 0).
  std::vector<Job> jobs{make_job(0.0, 4.0, 10, 1), make_job(5.0, 1.0, 10, 1)};
  CloudConfig config;
  config.policy = DispatchPolicy::kLeastBacklog;
  config.c_lo = 1.0;
  auto assignment = dispatch_jobs(jobs, uniform_fleet(2, 1.0), config);
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 0u);
  // With a slower drain the backlog survives and job 1 avoids server 0.
  std::vector<Job> jobs2{make_job(0.0, 4.0, 10, 1), make_job(1.0, 1.0, 10, 1)};
  auto assignment2 = dispatch_jobs(jobs2, uniform_fleet(2, 1.0), config);
  EXPECT_EQ(assignment2[1], 1u);
}

TEST(Dispatch, BestRatePicksFastestServerNow) {
  std::vector<cap::CapacityProfile> fleet{
      cap::CapacityProfile({0.0, 5.0}, {1.0, 35.0}),
      cap::CapacityProfile({0.0, 5.0}, {35.0, 1.0}),
  };
  std::vector<Job> jobs{make_job(1.0, 1.0, 40, 1), make_job(6.0, 1.0, 42, 1)};
  CloudConfig config;
  config.policy = DispatchPolicy::kBestRate;
  auto assignment = dispatch_jobs(jobs, fleet, config);
  EXPECT_EQ(assignment[0], 1u);  // server 1 is at 35 before t=5
  EXPECT_EQ(assignment[1], 0u);  // server 0 is at 35 after t=5
}

TEST(Dispatch, RandomIsDeterministicPerSeed) {
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) jobs.push_back(make_job(i, 1, i + 3, 1));
  CloudConfig config;
  config.policy = DispatchPolicy::kRandom;
  config.rng_seed = 5;
  auto a = dispatch_jobs(jobs, uniform_fleet(4, 1.0), config);
  auto b = dispatch_jobs(jobs, uniform_fleet(4, 1.0), config);
  EXPECT_EQ(a, b);
  config.rng_seed = 6;
  auto c = dispatch_jobs(jobs, uniform_fleet(4, 1.0), config);
  EXPECT_NE(a, c);
}

TEST(Dispatch, PowerOfTwoBalancesBetterThanRandom) {
  // Classic two-choices result: max backlog is dramatically smaller than
  // under purely random assignment. Measure the final per-server assigned
  // workload spread on a heavy burst.
  std::vector<Job> jobs;
  for (int i = 0; i < 400; ++i) {
    jobs.push_back(make_job(i * 0.01, 1.0, i * 0.01 + 10.0, 1.0));
  }
  auto fleet = uniform_fleet(8, 1.0);
  auto spread = [&](DispatchPolicy policy) {
    CloudConfig config;
    config.policy = policy;
    config.rng_seed = 99;
    auto assignment = dispatch_jobs(jobs, fleet, config);
    std::vector<double> load(8, 0.0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      load[assignment[i]] += jobs[i].workload;
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    return *hi - *lo;
  };
  EXPECT_LT(spread(DispatchPolicy::kPowerOfTwo),
            spread(DispatchPolicy::kRandom));
}

TEST(Dispatch, PowerOfTwoSingleServerIsSafe) {
  CloudConfig config;
  config.policy = DispatchPolicy::kPowerOfTwo;
  auto assignment =
      dispatch_jobs({make_job(0, 1, 2, 1)}, uniform_fleet(1, 1.0), config);
  EXPECT_EQ(assignment[0], 0u);
}

TEST(Dispatch, RejectsEmptyFleet) {
  CloudConfig config;
  EXPECT_THROW(dispatch_jobs({make_job(0, 1, 2, 1)}, {}, config), CheckError);
}

TEST(RunCloud, PartitionsEveryJobExactlyOnce) {
  Rng rng(1);
  gen::JobGenParams jp;
  jp.lambda = 6.0;
  jp.horizon = 40.0;
  auto jobs = gen::generate_jobs(jp, rng);
  std::vector<cap::CapacityProfile> fleet;
  for (int s = 0; s < 3; ++s) {
    cap::TwoStateMarkovParams cp;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 10.0;
    fleet.push_back(cap::sample_two_state_markov(cp, 100.0, rng));
  }
  CloudConfig config;
  auto result = run_cloud(jobs, fleet, config, sched::make_vdover());
  EXPECT_EQ(result.per_server.size(), 3u);
  EXPECT_EQ(result.completed_count + result.expired_count, jobs.size());
  double total_value = 0.0;
  for (const auto& j : jobs) total_value += j.value;
  EXPECT_NEAR(result.generated_value, total_value, 1e-9);
  EXPECT_LE(result.completed_value, result.generated_value + 1e-9);
}

TEST(RunCloud, MoreServersCaptureMoreOfAnOverload) {
  Rng rng(2);
  gen::JobGenParams jp;
  jp.lambda = 10.0;  // heavy overload for one rate-1 server
  jp.horizon = 60.0;
  auto jobs = gen::generate_jobs(jp, rng);
  CloudConfig config;
  config.c_hi = 1.0;  // constant-rate fleet
  auto one = run_cloud(jobs, uniform_fleet(1, 1.0), config,
                       sched::make_vdover());
  auto four = run_cloud(jobs, uniform_fleet(4, 1.0), config,
                        sched::make_vdover());
  EXPECT_GT(four.value_fraction(), one.value_fraction());
}

TEST(RunCloud, HeterogeneousFleetHandledPerServer) {
  // Servers with very different sample paths inside one declared band:
  // per-server results must reflect their own capacity, and the totals must
  // still partition the job set.
  Rng rng(77);
  gen::JobGenParams jp;
  jp.lambda = 8.0;
  jp.horizon = 40.0;
  auto jobs = gen::generate_jobs(jp, rng);
  double cover = 40.0;
  for (const auto& j : jobs) cover = std::max(cover, j.deadline);

  std::vector<cap::CapacityProfile> fleet{
      cap::CapacityProfile(1.0),                             // slow constant
      cap::CapacityProfile(35.0),                            // fast constant
      cap::square_wave(1.0, 35.0, 5.0, 5.0, cover),          // alternating
  };
  CloudConfig config;
  config.policy = DispatchPolicy::kRoundRobin;
  auto result = run_cloud(jobs, fleet, config, sched::make_vdover());
  ASSERT_EQ(result.per_server.size(), 3u);
  EXPECT_EQ(result.completed_count + result.expired_count, jobs.size());
  // The fast server completes a (weakly) larger value share than the slow
  // one under round-robin's identical load split.
  EXPECT_GE(result.per_server[1].completed_value + 1e-9,
            result.per_server[0].completed_value);
}

TEST(RunCloud, BacklogPolicyBeatsRandomOnUniformFleet) {
  // Aggregated over several seeds: join-shortest-backlog should dominate
  // random assignment on a symmetric fleet.
  double backlog_total = 0.0, random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 40);
    gen::JobGenParams jp;
    jp.lambda = 6.0;
    jp.horizon = 50.0;
    auto jobs = gen::generate_jobs(jp, rng);
    CloudConfig config;
    config.c_hi = 1.0;
    config.rng_seed = seed;
    config.policy = DispatchPolicy::kLeastBacklog;
    backlog_total +=
        run_cloud(jobs, uniform_fleet(3, 1.0), config, sched::make_vdover())
            .value_fraction();
    config.policy = DispatchPolicy::kRandom;
    random_total +=
        run_cloud(jobs, uniform_fleet(3, 1.0), config, sched::make_vdover())
            .value_fraction();
  }
  EXPECT_GT(backlog_total, random_total);
}

}  // namespace
}  // namespace sjs::cloud
