// Edge-case and differential tests for sim::TimerWheel — the hierarchical
// wheel backing the volatile event side (docs/performance.md, "The timer
// wheel"). The digest-critical contract under test: cancelled timers pop as
// tombstones at their original (time, seq) position, pop order is exactly
// min (key, seq) with key the monotone bit pattern of the time, and
// cascading never reorders or drops a node.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/timer_wheel.hpp"

namespace sjs::sim {
namespace {

// Pops everything due at or before `target`, advancing the wheel clock to
// each popped instant first (the engine's calling convention: the clock
// never jumps past an unpopped node). Leaves the clock at `target`.
std::vector<TimerWheel::Fired> pop_through(TimerWheel& wheel, double target) {
  std::vector<TimerWheel::Fired> fired;
  double t = 0.0;
  std::uint64_t seq = 0;
  while (wheel.peek(t, seq) && t <= target) {
    wheel.advance_clock(t);
    fired.push_back(wheel.pop());
  }
  wheel.advance_clock(target);
  return fired;
}

TEST(TimerWheel, ExactInstantExpiryVsCancelCollision) {
  TimerWheel wheel;
  // Three timers at the identical instant; the middle one is cancelled
  // before any fire. The tombstone must still pop, in seq position.
  const TimerId a = wheel.arm(1.0, 10, 1, 1);
  const TimerId b = wheel.arm(1.0, 11, 2, 2);
  const TimerId c = wheel.arm(1.0, 12, 3, 3);
  ASSERT_NE(a, kNoTimer);
  EXPECT_TRUE(wheel.cancel(b));
  EXPECT_FALSE(wheel.cancel(b));  // second cancel of the same id is stale
  EXPECT_EQ(wheel.live_count(), 2u);
  EXPECT_EQ(wheel.pending_count(), 3u);

  const auto fired = pop_through(wheel, 1.0);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].seq, 1u);
  EXPECT_TRUE(fired[0].live);
  EXPECT_EQ(fired[0].job, 10);
  EXPECT_EQ(fired[1].seq, 2u);
  EXPECT_FALSE(fired[1].live);  // the tombstone keeps its order slot
  EXPECT_EQ(fired[2].seq, 3u);
  EXPECT_TRUE(fired[2].live);
  EXPECT_EQ(fired[2].tag, 3);

  // Cancelling after the fire is stale too — the slot was freed by pop().
  EXPECT_FALSE(wheel.cancel(a));
  EXPECT_FALSE(wheel.cancel(c));

  // Arming at the exact current clock instant is legal and fires
  // immediately on the next sweep.
  const TimerId d = wheel.arm(1.0, 13, 4, 4);
  (void)d;
  const auto again = pop_through(wheel, 1.0);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].seq, 4u);
  EXPECT_TRUE(again[0].live);
}

TEST(TimerWheel, CancelAfterCascadeRemainsTombstone) {
  TimerWheel wheel;
  // A far-future timer lands in a high level at arm time. Advancing the
  // clock most of the way there forces it to cascade down; a cancel AFTER
  // the cascade must still tombstone it (the node moved buckets, the slab
  // slot did not move).
  const TimerId far = wheel.arm(1e6, 42, 7, 1);
  wheel.arm(2e6, 43, 8, 2);  // stays live, pops after the target window

  pop_through(wheel, 999999.0);  // crosses several key bytes -> cascades
  EXPECT_GT(wheel.cascades(), 0u);
  EXPECT_GT(wheel.cascaded_entries(), 0u);

  EXPECT_TRUE(wheel.cancel(far));
  const auto fired = pop_through(wheel, 1e6);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].time, 1e6);
  EXPECT_EQ(fired[0].seq, 1u);
  EXPECT_FALSE(fired[0].live);
  EXPECT_FALSE(wheel.cancel(far));

  const auto rest = pop_through(wheel, 2e6);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].job, 43);
  EXPECT_TRUE(rest[0].live);
  EXPECT_EQ(wheel.pending_count(), 0u);
  EXPECT_EQ(wheel.live_count(), 0u);
}

TEST(TimerWheel, FarFutureAndOverflowKeysOrderCorrectly) {
  TimerWheel wheel;
  const double inf = std::numeric_limits<double>::infinity();
  // Keys spanning the full exponent range, armed out of order. +inf is a
  // valid far-future sentinel and must sort after every finite time.
  wheel.arm(inf, 1, 0, 1);
  wheel.arm(1e300, 2, 0, 2);
  wheel.arm(5e-324, 3, 0, 3);  // smallest subnormal
  wheel.arm(0.0, 4, 0, 4);
  wheel.arm(-0.0, 5, 0, 5);  // canonicalised to +0.0, ordered by seq

  std::vector<std::uint64_t> order;
  for (const auto& f : pop_through(wheel, inf)) order.push_back(f.seq);
  EXPECT_EQ(order, (std::vector<std::uint64_t>{4, 5, 3, 2, 1}));
  EXPECT_EQ(wheel.pending_count(), 0u);

  // The wheel clock is now at +inf's key; clear() must fully rewind.
  wheel.clear();
  wheel.arm(0.5, 6, 0, 6);
  const auto fired = pop_through(wheel, 1.0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].seq, 6u);
}

// Reference model: a plain vector popped by min (time, seq). For
// non-negative doubles this is the same order as the wheel's bit-pattern
// keys, so any divergence is a wheel bug.
struct RefEntry {
  double time;
  std::uint64_t seq;
  JobId job;
  int tag;
  bool live;
  TimerId id;
};

std::size_t ref_min(const std::vector<RefEntry>& ref) {
  std::size_t best = ref.size();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (best == ref.size() || ref[i].time < ref[best].time ||
        (ref[i].time == ref[best].time && ref[i].seq < ref[best].seq)) {
      best = i;
    }
  }
  return best;
}

TEST(TimerWheel, RandomizedDifferentialAgainstReferenceModel) {
  TimerWheel wheel;
  std::vector<RefEntry> ref;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  double clock = 0.0;
  std::uint64_t seq = 0;
  JobId job = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t op = next() % 100;
    if (op < 55 || ref.empty()) {
      // Arm: usually a random future offset; sometimes exactly `clock` or a
      // duplicate of an armed instant to force same-bucket collisions.
      double time = clock + static_cast<double>(next() % 4096) * 0.37;
      const std::uint64_t mode = next() % 8;
      if (mode == 0) time = clock;
      if (mode == 1 && !ref.empty()) time = ref[next() % ref.size()].time;
      if (time < clock) time = clock;
      const int tag = static_cast<int>(next() % 4);
      const TimerId id = wheel.arm(time, job, tag, ++seq);
      ref.push_back(RefEntry{time, seq, job, tag, true, id});
      ++job;
    } else if (op < 75) {
      // Cancel a random still-armed timer (tombstones it in the model).
      std::vector<std::size_t> live;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        if (ref[i].live) live.push_back(i);
      }
      if (!live.empty()) {
        RefEntry& e = ref[live[next() % live.size()]];
        EXPECT_TRUE(wheel.cancel(e.id));
        EXPECT_FALSE(wheel.cancel(e.id));
        e.live = false;
      }
    } else if (op < 95) {
      // Sweep: pop everything due up to a random target, comparing each
      // fired node against the model's minimum.
      const double target = clock + static_cast<double>(next() % 512) * 0.91;
      double t = 0.0;
      std::uint64_t s = 0;
      while (wheel.peek(t, s) && t <= target) {
        const std::size_t m = ref_min(ref);
        ASSERT_LT(m, ref.size());
        ASSERT_EQ(t, ref[m].time);
        ASSERT_EQ(s, ref[m].seq);
        wheel.advance_clock(t);
        const TimerWheel::Fired f = wheel.pop();
        ASSERT_EQ(f.time, ref[m].time);
        ASSERT_EQ(f.seq, ref[m].seq);
        ASSERT_EQ(f.live, ref[m].live);
        if (f.live) {
          ASSERT_EQ(f.job, ref[m].job);
          ASSERT_EQ(f.tag, ref[m].tag);
        }
        ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(m));
      }
      wheel.advance_clock(target);
      clock = target;
      // Nothing due remains in the model either.
      const std::size_t m = ref_min(ref);
      if (m < ref.size()) {
        ASSERT_GT(ref[m].time, target);
      }
    } else {
      // Lazy compaction: purge tombstones from both sides.
      const std::size_t purged = wheel.purge_dead();
      std::size_t expect = 0;
      for (const RefEntry& e : ref) expect += e.live ? 0 : 1;
      ASSERT_EQ(purged, expect);
      ref.erase(std::remove_if(ref.begin(), ref.end(),
                               [](const RefEntry& e) { return !e.live; }),
                ref.end());
    }
    ASSERT_EQ(wheel.pending_count(), ref.size());
    std::size_t live = 0;
    for (const RefEntry& e : ref) live += e.live ? 1 : 0;
    ASSERT_EQ(wheel.live_count(), live);
  }

  // Drain to empty; the tail must come out in model order too.
  while (!ref.empty()) {
    const std::size_t m = ref_min(ref);
    double t = 0.0;
    std::uint64_t s = 0;
    ASSERT_TRUE(wheel.peek(t, s));
    ASSERT_EQ(t, ref[m].time);
    ASSERT_EQ(s, ref[m].seq);
    wheel.advance_clock(t);
    const TimerWheel::Fired f = wheel.pop();
    ASSERT_EQ(f.live, ref[m].live);
    ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(m));
  }
  EXPECT_EQ(wheel.pending_count(), 0u);
  EXPECT_EQ(wheel.live_count(), 0u);
}

}  // namespace
}  // namespace sjs::sim
