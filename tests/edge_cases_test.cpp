// Edge cases across the engine and schedulers: simultaneous events, zero
// values, completion exactly at capacity switches, duplicate release
// instants, extreme bands, and degenerate instances.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

sim::SimResult run_factory(const Instance& instance,
                           const sched::NamedFactory& factory) {
  auto scheduler = factory.make();
  sim::Engine engine(instance, *scheduler);
  return engine.run_to_completion();
}

TEST(EdgeCases, EmptyInstanceRunsCleanly) {
  Instance instance({}, cap::CapacityProfile(1.0));
  for (const auto& factory : sched::extended_lineup({1.0})) {
    auto result = run_factory(instance, factory);
    EXPECT_EQ(result.completed_count, 0u) << factory.name;
    EXPECT_DOUBLE_EQ(result.completed_value, 0.0) << factory.name;
  }
}

TEST(EdgeCases, SimultaneousReleasesAllHandled) {
  // Five jobs released at the same instant with staggered deadlines.
  std::vector<Job> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(1.0, 1.0, 2.0 + i, 1.0));
  }
  Instance instance(jobs, cap::CapacityProfile(1.0));
  for (const auto& factory : sched::extended_lineup({1.0})) {
    auto result = run_factory(instance, factory);
    EXPECT_EQ(result.completed_count + result.expired_count, 5u)
        << factory.name;
  }
  // EDF completes all five (they are exactly feasible back to back).
  auto edf = run_factory(instance, sched::make_edf());
  EXPECT_EQ(edf.completed_count, 5u);
}

TEST(EdgeCases, ZeroValueJobIsLegalAndCounted) {
  Instance instance({make_job(0, 1, 3, 0.0)}, cap::CapacityProfile(1.0));
  auto result = run_factory(instance, sched::make_vdover());
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 0.0);
}

TEST(EdgeCases, CompletionExactlyAtCapacitySwitch) {
  // 5 units of work, rate 1 on [0,5): completion lands exactly on the
  // breakpoint where the rate jumps — the inversion must not double-count.
  Instance instance({make_job(0, 5, 10, 1)},
                    cap::CapacityProfile({0.0, 5.0}, {1.0, 35.0}));
  auto result = run_factory(instance, sched::make_edf());
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 5.0);
}

TEST(EdgeCases, ReleaseExactlyAtCapacitySwitch) {
  Instance instance({make_job(5.0, 35.0, 6.0, 1.0)},
                    cap::CapacityProfile({0.0, 5.0}, {1.0, 35.0}));
  // Released exactly when rate becomes 35: 35 units in one second.
  auto result = run_factory(instance, sched::make_edf());
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(EdgeCases, DeadlineBeyondCapacityTraceEnd) {
  // Profile sampled only to t=10 but the job's window extends past it; the
  // final rate extends to infinity.
  Instance instance({make_job(9.0, 10.0, 30.0, 1.0)},
                    cap::CapacityProfile({0.0, 10.0}, {1.0, 2.0}));
  auto result = run_factory(instance, sched::make_vdover());
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(EdgeCases, ManyTinyJobsStressQueues) {
  Rng rng(50);
  std::vector<Job> jobs;
  for (int i = 0; i < 500; ++i) {
    const double r = rng.uniform(0.0, 10.0);
    const double p = rng.uniform(0.001, 0.02);
    jobs.push_back(make_job(r, p, r + p * rng.uniform(1.0, 3.0),
                            p * rng.uniform(1.0, 7.0)));
  }
  Instance instance(jobs, cap::CapacityProfile({0.0, 5.0}, {1.0, 4.0}));
  for (const auto& factory : sched::extended_lineup({1.0, 4.0})) {
    auto result = run_factory(instance, factory);
    EXPECT_EQ(result.completed_count + result.expired_count, 500u)
        << factory.name;
  }
}

TEST(EdgeCases, HugeBandRatio) {
  // delta = 1e6: numerical stress on the stretch-era formulas and laxities.
  Instance instance(
      {make_job(0, 1, 1.0, 1.0), make_job(0.5, 2e6, 3.0, 7.0)},
      cap::CapacityProfile({0.0, 2.0}, {1.0, 1e6}), 1.0, 1e6);
  for (const auto& factory :
       {sched::make_vdover(), sched::make_dover(1.0), sched::make_edf()}) {
    auto result = run_factory(instance, factory);
    EXPECT_EQ(result.completed_count + result.expired_count, 2u)
        << factory.name;
  }
}

TEST(EdgeCases, IdenticalJobsTieBreakDeterministically) {
  std::vector<Job> jobs(4, make_job(0.0, 1.0, 10.0, 2.0));
  Instance instance(jobs, cap::CapacityProfile(1.0));
  auto a = run_factory(instance, sched::make_vdover());
  auto b = run_factory(instance, sched::make_vdover());
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.completed_count, 4u);
}

TEST(EdgeCases, VDoverCascadeOfZeroLaxityWinners) {
  // Successively released jobs, each beta-times more valuable, all with
  // zero conservative laxity: each must hijack the previous one. Only the
  // last completes; the chain must terminate cleanly.
  std::vector<Job> jobs;
  double value = 1.0;
  for (int i = 0; i < 5; ++i) {
    const double r = 0.2 * i;
    jobs.push_back(make_job(r, 4.0, r + 4.0, value));
    value *= 10.0;  // far above any beta
  }
  Instance instance(jobs, cap::CapacityProfile(1.0));
  auto result = run_factory(instance, sched::make_vdover());
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 10000.0);  // the last job
}

TEST(EdgeCases, SupplementChainDrainsWhenIdle) {
  // Several supplements stack up behind one long regular job; after it
  // completes there is abundant capacity — they must drain latest-deadline
  // first and all finish.
  std::vector<Job> jobs{make_job(0.0, 4.0, 4.0, 100.0)};
  for (int i = 1; i <= 3; ++i) {
    jobs.push_back(make_job(0.5 * i, 2.0, 0.5 * i + 2.0, 1.0));
  }
  Instance instance(jobs, cap::CapacityProfile({0.0, 3.0}, {1.0, 35.0}));
  auto result = run_factory(instance, sched::make_vdover());
  // Jobs 1-3 supplement out; when capacity hits 35 at t=3, the running
  // regular job finishes early and the supplements get their chance.
  EXPECT_GE(result.completed_count, 2u);
  EXPECT_GE(result.completed_value, 100.0);
}

TEST(EdgeCases, AllSchedulersHandleInstantWindowOverlap) {
  // Windows that share exactly one instant (deadline of one = release of
  // the next) must not confuse the event ordering.
  Instance instance(
      {make_job(0.0, 2.0, 2.0, 1.0), make_job(2.0, 2.0, 4.0, 1.0),
       make_job(4.0, 2.0, 6.0, 1.0)},
      cap::CapacityProfile(1.0));
  for (const auto& factory : sched::extended_lineup({1.0})) {
    auto result = run_factory(instance, factory);
    EXPECT_EQ(result.completed_count + result.expired_count, 3u)
        << factory.name;
  }
  auto edf = run_factory(instance, sched::make_edf());
  EXPECT_EQ(edf.completed_count, 3u);
}

}  // namespace
}  // namespace sjs
