// Execution-timeline recording tests: the recorded slices are the ground
// truth of "who ran when", so they must partition the busy time, stay inside
// each job's [release, deadline] window, and integrate (against the capacity
// path) to exactly the per-job executed work. Also covers the Gantt
// renderer.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "util/rng.hpp"

namespace sjs::sim {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

SimResult run_recorded(const Instance& instance,
                       const sched::NamedFactory& factory) {
  auto scheduler = factory.make();
  Engine engine(instance, *scheduler);
  engine.record_schedule(true);
  return engine.run_to_completion();
}

TEST(ScheduleTrace, OffByDefault) {
  Instance instance({make_job(0, 1, 2, 1)}, cap::CapacityProfile(1.0));
  auto factory = sched::make_edf();
  auto scheduler = factory.make();
  Engine engine(instance, *scheduler);
  auto result = engine.run_to_completion();
  EXPECT_TRUE(result.schedule.empty());
}

TEST(ScheduleTrace, SingleJobSingleSlice) {
  Instance instance({make_job(1, 2, 9, 1)}, cap::CapacityProfile(1.0));
  auto result = run_recorded(instance, sched::make_edf());
  ASSERT_EQ(result.schedule.size(), 1u);
  EXPECT_DOUBLE_EQ(result.schedule[0].start, 1.0);
  EXPECT_DOUBLE_EQ(result.schedule[0].end, 3.0);
  EXPECT_EQ(result.schedule[0].job, 0);
}

TEST(ScheduleTrace, PreemptionSplitsSlices) {
  Instance instance(
      {make_job(0.0, 4.0, 10.0, 1.0), make_job(1.0, 2.0, 5.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_recorded(instance, sched::make_edf());
  ASSERT_EQ(result.schedule.size(), 3u);
  EXPECT_EQ(result.schedule[0].job, 0);  // [0,1)
  EXPECT_EQ(result.schedule[1].job, 1);  // [1,3)
  EXPECT_EQ(result.schedule[2].job, 0);  // [3,6)
  EXPECT_DOUBLE_EQ(result.schedule[2].end, 6.0);
}

class ScheduleTraceProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleTraceProperty, SlicesAreChronologicalAndWindowContained) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 13000);
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 120.0;
  auto instance = gen::generate_paper_instance(setup, rng);

  for (const auto& factory :
       {sched::make_vdover(), sched::make_edf(), sched::make_llf(),
        sched::make_hvdf(), sched::make_srpt()}) {
    auto result = run_recorded(instance, factory);
    double cursor = 0.0;
    for (const auto& slice : result.schedule) {
      EXPECT_LE(cursor, slice.start + 1e-12) << factory.name;
      EXPECT_LT(slice.start, slice.end) << factory.name;
      const Job& j = instance.job(slice.job);
      EXPECT_GE(slice.start, j.release - 1e-9) << factory.name;
      EXPECT_LE(slice.end, j.deadline + 1e-9) << factory.name;
      cursor = slice.end;
    }
  }
}

TEST_P(ScheduleTraceProperty, SliceWorkMatchesExecutedWork) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 14000);
  gen::PaperSetup setup;
  setup.lambda = 7.0;
  setup.expected_jobs = 120.0;
  auto instance = gen::generate_paper_instance(setup, rng);
  auto result = run_recorded(instance, sched::make_vdover());

  std::vector<double> work(instance.size(), 0.0);
  double busy = 0.0;
  for (const auto& slice : result.schedule) {
    work[static_cast<std::size_t>(slice.job)] +=
        instance.capacity().work(slice.start, slice.end);
    busy += slice.end - slice.start;
  }
  for (std::size_t i = 0; i < instance.size(); ++i) {
    EXPECT_NEAR(work[i], result.executed_work[i],
                1e-6 * std::max(1.0, work[i]))
        << "job " << i;
  }
  EXPECT_NEAR(busy, result.busy_time, 1e-6 * std::max(1.0, busy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleTraceProperty, ::testing::Range(0, 6));

TEST(Gantt, RendersExecutionAndOutcome) {
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 1.0), make_job(1.0, 4.0, 5.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_recorded(instance, sched::make_edf());
  auto gantt = render_gantt(instance, result);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find('C'), std::string::npos);  // job 0 completes
  EXPECT_NE(gantt.find('X'), std::string::npos);  // job 1 expires
  EXPECT_NE(gantt.find("job    0"), std::string::npos);
}

TEST(Gantt, ElidesExcessRows) {
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back(make_job(i, 0.5, i + 2, 1));
  Instance instance(jobs, cap::CapacityProfile(1.0));
  auto result = run_recorded(instance, sched::make_edf());
  GanttOptions options;
  options.max_jobs = 3;
  auto gantt = render_gantt(instance, result, options);
  EXPECT_NE(gantt.find("7 more jobs elided"), std::string::npos);
}

TEST(Gantt, EmptyInstanceSafe) {
  Instance instance({}, cap::CapacityProfile(1.0));
  SimResult result;
  EXPECT_EQ(render_gantt(instance, result), "(no jobs)\n");
}

}  // namespace
}  // namespace sjs::sim
