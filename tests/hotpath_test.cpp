// Long-run bounded-memory regression for the engine hot paths.
//
// The adaptive-EWMA V-Dover configuration is the engine's worst timer
// customer: every capacity breakpoint cancels and re-arms one 0-claxity
// timer per queued job. Over a profile with hundreds of breakpoints the
// pre-slab engine grew its timer table and event heap linearly with the
// number of set_timer calls (the table was append-only, and cancelled
// events were left dead in the heap until their expiry popped). These tests
// pin the bounded-memory contract of engine.hpp: slab slots stay O(max
// simultaneously live timers) and the dead fraction of the heap stays below
// the compaction threshold, no matter how many timers a run arms.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sched/vdover.hpp"
#include "serve/clock.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "util/alloc_probe.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

/// Many-breakpoint profile oscillating in [1, 4] with mean sojourn
/// `mean_sojourn` — dense capacity changes, little service capacity, so an
/// aggressive arrival stream keeps a standing Qother queue (each queued job
/// holds one armed 0cl timer that every breakpoint cancels and re-arms).
cap::CapacityProfile make_choppy_profile(std::size_t segments,
                                         double mean_sojourn, Rng& rng) {
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(1.0, 4.0)};
  for (std::size_t i = 1; i < segments; ++i) {
    times.push_back(times.back() + rng.exponential_mean(mean_sojourn));
    rates.push_back(rng.uniform(1.0, 4.0));
  }
  return {std::move(times), std::move(rates)};
}

/// V-Dover with the engine's occupancy sampled at every capacity
/// breakpoint — the instants right after the scheduler's own timer churn.
class ProbedVDover : public sched::VDoverScheduler {
 public:
  explicit ProbedVDover(const sched::VDoverOptions& options)
      : sched::VDoverScheduler(options) {}

  void on_capacity_change(sim::Engine& engine) override {
    sched::VDoverScheduler::on_capacity_change(engine);
    max_live_timers_ =
        std::max(max_live_timers_, engine.live_timer_count());
    max_slab_size_ = std::max(max_slab_size_, engine.timer_slab_size());
    const std::size_t queued = engine.queued_event_count();
    const std::size_t dead = engine.dead_event_count();
    max_dead_events_ = std::max(max_dead_events_, dead);
    if (queued >= sim::Engine::kCompactionMinEvents) {
      max_dead_fraction_ = std::max(
          max_dead_fraction_,
          static_cast<double>(dead) / static_cast<double>(queued));
    }
    ++samples_;
  }

  std::size_t max_live_timers_ = 0;
  std::size_t max_slab_size_ = 0;
  std::size_t max_dead_events_ = 0;
  double max_dead_fraction_ = 0.0;
  std::size_t samples_ = 0;
};

TEST(HotPathBoundedMemory, TimerSlabAndHeapStayBoundedUnderEwmaChurn) {
  // A 3x-overloaded arrival stream against 512 capacity breakpoints:
  // thousands of timer arms, only a few dozen ever live at once.
  Rng rng(2024);
  auto profile = make_choppy_profile(512, 0.2, rng);  // span ~100
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(800, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;
  ProbedVDover scheduler(options);
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();

  // The probe actually sampled the churn (every breakpoint inside the run).
  ASSERT_GT(scheduler.samples_, 400u);
  ASSERT_GT(result.timers_armed, 1000u);

  // Slab slots are bounded by peak simultaneous liveness, not by the arm
  // count. The pre-slab engine kept one record per set_timer call, so this
  // bound is the regression: slots would equal timers_armed there. (The
  // probe samples only at breakpoints, so it may miss the exact peak
  // instant — it lower-bounds the engine's own accounting.)
  EXPECT_GE(result.timer_slab_peak,
            static_cast<std::uint64_t>(scheduler.max_live_timers_));
  EXPECT_LE(result.timer_slab_peak, result.timer_slab_slots);
  EXPECT_LE(result.timer_slab_slots, instance.size() + 4);
  EXPECT_LT(result.timer_slab_slots, result.timers_armed / 10);
  EXPECT_LE(scheduler.max_slab_size_, instance.size() + 4);

  // Dead (cancelled / stale) events never dominate the heap: compaction
  // keeps the dead fraction at most ~half once the heap is big enough for
  // compaction to be worthwhile, plus slack for the events added between
  // threshold crossings.
  EXPECT_LE(scheduler.max_dead_fraction_, 0.75);
  EXPECT_LE(static_cast<std::uint64_t>(scheduler.max_dead_events_),
            result.event_heap_peak);

  // The mechanism engaged (this workload cancels far more than it fires)
  // and the run still terminated with an empty slab.
  EXPECT_GE(result.heap_compactions, 1u);
  EXPECT_EQ(engine.live_timer_count(), 0u);
  EXPECT_EQ(engine.dead_event_count(), 0u);
}

TEST(HotPathBoundedMemory, ReadyQueueStorageStaysBoundedUnderChurn) {
  // The same churn-heavy workload through V-Dover's three ReadyQueues: the
  // entry storage each run reserves must be bounded by the occupancy peak
  // (plus geometric-growth slack), never by the number of queue operations,
  // and identical replays must report identical occupancy. Runs on a fresh
  // thread so the queues' thread-local buffer recycler starts empty —
  // otherwise buffers donated by other tests in this process would inflate
  // the slot accounting this test bounds.
  std::thread worker([] {
  Rng rng(2026);
  auto profile = make_choppy_profile(128, 0.2, rng);
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(400, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;

  std::uint64_t first_peak = 0;
  std::uint64_t first_slots = 0;
  std::optional<sim::Engine> engine;
  for (int run = 0; run < 6; ++run) {
    sched::VDoverScheduler scheduler(options);
    if (engine) {
      engine->reset(scheduler);
    } else {
      engine.emplace(instance, scheduler);
    }
    auto result = engine->run_to_completion();

    // The workload actually exercises the queues...
    ASSERT_GT(result.queue_peak, 0u);
    // ...and storage is occupancy-bound: reserve() sizes each of the three
    // queues to at most the instance size, so the summed peak and slot
    // counts can never exceed 3n no matter how many operations ran.
    EXPECT_LE(result.queue_peak,
              3 * static_cast<std::uint64_t>(instance.size()));
    EXPECT_LE(result.queue_slots,
              3 * static_cast<std::uint64_t>(instance.size()));
    EXPECT_GE(result.queue_slots, result.queue_peak);

    if (run == 0) {
      first_peak = result.queue_peak;
      first_slots = result.queue_slots;
    } else {
      // Identical replay => identical occupancy accounting (this is what
      // the sched.queue.* gauges aggregate).
      EXPECT_EQ(result.queue_peak, first_peak);
      EXPECT_EQ(result.queue_slots, first_slots);
    }
  }
  });
  worker.join();
}

TEST(HotPathBoundedMemory, RepeatedResetDoesNotGrowSlab) {
  // Replay the same churn-heavy instance many times on ONE engine (the
  // Monte-Carlo reuse path): per-run occupancy must not creep run over run.
  Rng rng(2025);
  auto profile = make_choppy_profile(128, 0.2, rng);
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(200, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;

  std::uint64_t first_slots = 0;
  std::uint64_t first_heap_peak = 0;
  std::optional<sim::Engine> engine;
  for (int run = 0; run < 8; ++run) {
    sched::VDoverScheduler scheduler(options);
    if (engine) {
      engine->reset(scheduler);
    } else {
      engine.emplace(instance, scheduler);
    }
    auto result = engine->run_to_completion();
    if (run == 0) {
      first_slots = result.timer_slab_slots;
      first_heap_peak = result.event_heap_peak;
    } else {
      // reset() rewinds; identical replay means identical occupancy.
      EXPECT_EQ(result.timer_slab_slots, first_slots);
      EXPECT_EQ(result.event_heap_peak, first_heap_peak);
    }
    EXPECT_EQ(engine->live_timer_count(), 0u);
  }
}

TEST(HotPathAllocations, SteadyStateReplayAllocationRatchet) {
  // Runtime twin of sjs_lint's alloc-in-hot-path rule: that rule's report is
  // the static work-list of allocation sites reachable from the hot-path
  // roots; this test measures how many of them actually FIRE during a warmed
  // steady-state replay, via global operator-new interposition (AllocProbe,
  // linked into this binary only).
  //
  // Protocol: run the instance once cold (tables, slabs, and queues size
  // themselves), DESTROY the cold scheduler so its ReadyQueue buffers return
  // to the thread-local recycler, rebind a fresh scheduler with reset(), then
  // count every allocation of the second, fully warmed replay — including
  // the fresh scheduler's on_start, whose buffers must come back out of the
  // recycler and the engine's slab lanes. The ratchet is ZERO: the warmed
  // hot path owns no allocation site at all (the static twin,
  // `sjs_lint --report=alloc --max=0`, holds the same line at the source
  // level). Runs on a fresh thread so the recycler starts empty and the
  // count does not depend on which tests ran earlier in this process.
  std::uint64_t steady_count = 0;
  std::uint64_t steady_bytes = 0;
  std::thread worker([&] {
    Rng rng(2027);
    auto profile = make_choppy_profile(128, 0.2, rng);
    const double horizon = profile.breakpoints().back();
    auto jobs = gen::generate_small_random_jobs(400, horizon, 7.0, 1.0, 3.0,
                                                rng);
    Instance instance(std::move(jobs), profile);

    sched::VDoverOptions options;
    options.adaptive_estimate = true;

    std::optional<sim::Engine> engine;
    std::uint64_t cold_timers_armed = 0;
    {
      sched::VDoverScheduler cold_scheduler(options);
      engine.emplace(instance, cold_scheduler);
      const auto& cold = engine->run_to_completion();
      ASSERT_GT(cold.timers_armed, 100u);  // the warm-up exercised the paths
      cold_timers_armed = cold.timers_armed;
    }  // cold scheduler's queue buffers -> thread-local recycler

    sched::VDoverScheduler warm_scheduler(options);
    engine->reset(warm_scheduler);
    util::AllocProbe::reset();
    const auto& warm = engine->run_to_completion();
    steady_count = util::AllocProbe::count();
    steady_bytes = util::AllocProbe::bytes();
    ASSERT_EQ(warm.timers_armed, cold_timers_armed);  // identical replay
  });
  worker.join();

  // The zero-allocation steady state (docs/performance.md): a warmed replay
  // allocates NOTHING. Any regression here names its site in
  // `sjs_lint --report=alloc`.
  constexpr std::uint64_t kSteadyStateAllocRatchet = 0;
  RecordProperty("steady_state_allocs", static_cast<int>(steady_count));
  RecordProperty("steady_state_bytes", static_cast<int>(steady_bytes));
  std::fprintf(stderr, "steady-state replay: %llu allocations, %llu bytes\n",
               static_cast<unsigned long long>(steady_count),
               static_cast<unsigned long long>(steady_bytes));
  EXPECT_LE(steady_count, kSteadyStateAllocRatchet);
}

/// Minimal loopback client for the serve steady-state probe below. Unlike
/// serve_test's TestClient it is itself allocation-free once warmed: frames
/// are encoded into a stack buffer, replies are counted rather than stored,
/// and the only growable state is the FrameDecoder's byte buffer (which
/// retains its high-water capacity).
class SteadyClient {
 public:
  explicit SteadyClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SJS_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    SJS_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SJS_CHECK(::fcntl(fd_, F_SETFL, O_NONBLOCK) == 0);
  }
  ~SteadyClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const serve::Message& m) {
    std::uint8_t frame[serve::kMaxFrame];
    const std::size_t n = serve::encode_frame_into(frame, m);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t k = ::send(fd_, frame + sent, n - sent, MSG_NOSIGNAL);
      SJS_CHECK_MSG(k > 0, "steady client send failed");
      sent += static_cast<std::size_t>(k);
    }
  }

  void read_socket() {
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return;
      decoder_.feed(buf, static_cast<std::size_t>(n));
      serve::Message m;
      while (decoder_.next(m) == serve::FrameDecoder::Status::kOk) note(m);
    }
  }

  /// Pumps the server until the direct reply to `seq` arrives. Returns its
  /// type (kError after too many fruitless spins).
  serve::MsgType await_seq(serve::AdmissionServer& server, std::uint64_t seq) {
    for (int i = 0; i < 1000; ++i) {
      if (last_direct_seq_ == seq) return last_direct_type_;
      server.step(0);
      read_socket();
    }
    return serve::MsgType::kError;
  }

  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;

 private:
  void note(const serve::Message& m) {
    switch (m.type) {
      case serve::MsgType::kCompleted:
        ++completed;
        return;  // notification: echoes the submit's seq, not a direct reply
      case serve::MsgType::kExpired:
        ++expired;
        return;
      case serve::MsgType::kAccepted:
        ++accepted;
        break;
      case serve::MsgType::kRejected:
        ++rejected;
        break;
      default:
        break;
    }
    last_direct_seq_ = m.seq;
    last_direct_type_ = m.type;
  }

  int fd_ = -1;
  serve::FrameDecoder decoder_;
  std::uint64_t last_direct_seq_ = 0;
  serve::MsgType last_direct_type_ = serve::MsgType::kError;
};

TEST(HotPathAllocations, SteadyStateServeSessionAllocationFree) {
  // The live-mode twin of the replay ratchet above: a warmed FakeClock
  // AdmissionServer session — submits, accept/reject decisions, completion
  // and expiry notifications, reply encoding, the poll loop — performs zero
  // heap allocations. start() pre-sizes the slab, routes, and notification
  // buffers from --max-in-flight; the warm-up phase below grows everything
  // else (socket buffers, decoders) to its steady-state high-water. The
  // whole session is deterministic (FakeClock + seeded Rng), so this is an
  // exact assertion, not a statistical one. Runs on a fresh thread so the
  // ready queues' thread-local recycler starts empty.
  std::uint64_t steady_count = 0;
  std::uint64_t steady_bytes = 0;
  std::uint64_t measured_accepts = 0;
  std::uint64_t measured_notifications = 0;
  std::thread worker([&] {
    constexpr double kBandLo = 0.5;
    constexpr double kBandHi = 1.0;
    serve::ServerConfig config;
    config.scheduler_name = "V-Dover";
    config.capacity = cap::CapacityProfile(1.0);
    config.c_lo = kBandLo;
    config.c_hi = kBandHi;
    // No journal, no metrics: the probe measures the serve core itself.
    const auto lineup = sched::full_lineup(kBandLo, kBandHi);
    const auto* factory = sched::find_factory(lineup, "V-Dover");
    ASSERT_NE(factory, nullptr);
    serve::FakeClock clock;
    serve::AdmissionServer server(config, factory->make(), clock);
    const int port = server.start();
    SteadyClient client(port);

    Rng rng(2028);
    std::uint64_t seq = 0;
    const auto pump_one = [&](double arrival_rate) {
      clock.advance(rng.exponential_rate(arrival_rate));
      const double workload = rng.exponential_mean(0.05);
      const bool sabotage = (seq % 10) == 9;
      const double window =
          sabotage ? 0.5 * workload / kBandLo
                   : rng.uniform(1.05, 3.0) * workload / kBandLo;
      serve::Message m;
      m.type = serve::MsgType::kSubmit;
      m.seq = ++seq;
      m.a = workload;
      m.b = window;
      m.c = workload;
      client.send(m);
      client.await_seq(server, seq);
    };
    const auto settle = [&] {
      clock.advance(5.0);
      for (int i = 0; i < 50; ++i) {
        server.step(0);
        client.read_socket();
      }
    };

    // Warm-up: an overloaded burst (20 submits per virtual second) sizes
    // every buffer past what the measured phase needs and exercises accept,
    // reject, completion, and expiry at least once.
    for (int i = 0; i < 120; ++i) pump_one(20.0);
    settle();
    ASSERT_GT(client.accepted, 0u);
    ASSERT_GT(client.rejected, 0u);
    ASSERT_GT(client.completed, 0u);

    const std::uint64_t warm_accepts = client.accepted;
    const std::uint64_t warm_notes = client.completed + client.expired;
    util::AllocProbe::reset();
    for (int i = 0; i < 120; ++i) pump_one(10.0);
    settle();
    steady_count = util::AllocProbe::count();
    steady_bytes = util::AllocProbe::bytes();
    measured_accepts = client.accepted - warm_accepts;
    measured_notifications = client.completed + client.expired - warm_notes;
    // Teardown (drain, finalize) happens after the probe window on purpose:
    // the zero-allocation contract covers the steady state, not shutdown.
  });
  worker.join();

  // The measured phase did real admission work...
  EXPECT_GT(measured_accepts, 50u);
  EXPECT_GT(measured_notifications, 50u);
  // ...and allocated nothing at all.
  RecordProperty("steady_serve_allocs", static_cast<int>(steady_count));
  std::fprintf(stderr, "steady-state serve: %llu allocations, %llu bytes\n",
               static_cast<unsigned long long>(steady_count),
               static_cast<unsigned long long>(steady_bytes));
  EXPECT_EQ(steady_count, 0u);
}

}  // namespace
}  // namespace sjs
