// Long-run bounded-memory regression for the engine hot paths.
//
// The adaptive-EWMA V-Dover configuration is the engine's worst timer
// customer: every capacity breakpoint cancels and re-arms one 0-claxity
// timer per queued job. Over a profile with hundreds of breakpoints the
// pre-slab engine grew its timer table and event heap linearly with the
// number of set_timer calls (the table was append-only, and cancelled
// events were left dead in the heap until their expiry popped). These tests
// pin the bounded-memory contract of engine.hpp: slab slots stay O(max
// simultaneously live timers) and the dead fraction of the heap stays below
// the compaction threshold, no matter how many timers a run arms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/vdover.hpp"
#include "sim/engine.hpp"
#include "util/alloc_probe.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

/// Many-breakpoint profile oscillating in [1, 4] with mean sojourn
/// `mean_sojourn` — dense capacity changes, little service capacity, so an
/// aggressive arrival stream keeps a standing Qother queue (each queued job
/// holds one armed 0cl timer that every breakpoint cancels and re-arms).
cap::CapacityProfile make_choppy_profile(std::size_t segments,
                                         double mean_sojourn, Rng& rng) {
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(1.0, 4.0)};
  for (std::size_t i = 1; i < segments; ++i) {
    times.push_back(times.back() + rng.exponential_mean(mean_sojourn));
    rates.push_back(rng.uniform(1.0, 4.0));
  }
  return {std::move(times), std::move(rates)};
}

/// V-Dover with the engine's occupancy sampled at every capacity
/// breakpoint — the instants right after the scheduler's own timer churn.
class ProbedVDover : public sched::VDoverScheduler {
 public:
  explicit ProbedVDover(const sched::VDoverOptions& options)
      : sched::VDoverScheduler(options) {}

  void on_capacity_change(sim::Engine& engine) override {
    sched::VDoverScheduler::on_capacity_change(engine);
    max_live_timers_ =
        std::max(max_live_timers_, engine.live_timer_count());
    max_slab_size_ = std::max(max_slab_size_, engine.timer_slab_size());
    const std::size_t queued = engine.queued_event_count();
    const std::size_t dead = engine.dead_event_count();
    max_dead_events_ = std::max(max_dead_events_, dead);
    if (queued >= sim::Engine::kCompactionMinEvents) {
      max_dead_fraction_ = std::max(
          max_dead_fraction_,
          static_cast<double>(dead) / static_cast<double>(queued));
    }
    ++samples_;
  }

  std::size_t max_live_timers_ = 0;
  std::size_t max_slab_size_ = 0;
  std::size_t max_dead_events_ = 0;
  double max_dead_fraction_ = 0.0;
  std::size_t samples_ = 0;
};

TEST(HotPathBoundedMemory, TimerSlabAndHeapStayBoundedUnderEwmaChurn) {
  // A 3x-overloaded arrival stream against 512 capacity breakpoints:
  // thousands of timer arms, only a few dozen ever live at once.
  Rng rng(2024);
  auto profile = make_choppy_profile(512, 0.2, rng);  // span ~100
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(800, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;
  ProbedVDover scheduler(options);
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();

  // The probe actually sampled the churn (every breakpoint inside the run).
  ASSERT_GT(scheduler.samples_, 400u);
  ASSERT_GT(result.timers_armed, 1000u);

  // Slab slots are bounded by peak simultaneous liveness, not by the arm
  // count. The pre-slab engine kept one record per set_timer call, so this
  // bound is the regression: slots would equal timers_armed there. (The
  // probe samples only at breakpoints, so it may miss the exact peak
  // instant — it lower-bounds the engine's own accounting.)
  EXPECT_GE(result.timer_slab_peak,
            static_cast<std::uint64_t>(scheduler.max_live_timers_));
  EXPECT_LE(result.timer_slab_peak, result.timer_slab_slots);
  EXPECT_LE(result.timer_slab_slots, instance.size() + 4);
  EXPECT_LT(result.timer_slab_slots, result.timers_armed / 10);
  EXPECT_LE(scheduler.max_slab_size_, instance.size() + 4);

  // Dead (cancelled / stale) events never dominate the heap: compaction
  // keeps the dead fraction at most ~half once the heap is big enough for
  // compaction to be worthwhile, plus slack for the events added between
  // threshold crossings.
  EXPECT_LE(scheduler.max_dead_fraction_, 0.75);
  EXPECT_LE(static_cast<std::uint64_t>(scheduler.max_dead_events_),
            result.event_heap_peak);

  // The mechanism engaged (this workload cancels far more than it fires)
  // and the run still terminated with an empty slab.
  EXPECT_GE(result.heap_compactions, 1u);
  EXPECT_EQ(engine.live_timer_count(), 0u);
  EXPECT_EQ(engine.dead_event_count(), 0u);
}

TEST(HotPathBoundedMemory, ReadyQueueStorageStaysBoundedUnderChurn) {
  // The same churn-heavy workload through V-Dover's three ReadyQueues: the
  // entry storage each run reserves must be bounded by the occupancy peak
  // (plus geometric-growth slack), never by the number of queue operations,
  // and identical replays must report identical occupancy. Runs on a fresh
  // thread so the queues' thread-local buffer recycler starts empty —
  // otherwise buffers donated by other tests in this process would inflate
  // the slot accounting this test bounds.
  std::thread worker([] {
  Rng rng(2026);
  auto profile = make_choppy_profile(128, 0.2, rng);
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(400, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;

  std::uint64_t first_peak = 0;
  std::uint64_t first_slots = 0;
  std::optional<sim::Engine> engine;
  for (int run = 0; run < 6; ++run) {
    sched::VDoverScheduler scheduler(options);
    if (engine) {
      engine->reset(scheduler);
    } else {
      engine.emplace(instance, scheduler);
    }
    auto result = engine->run_to_completion();

    // The workload actually exercises the queues...
    ASSERT_GT(result.queue_peak, 0u);
    // ...and storage is occupancy-bound: reserve() sizes each of the three
    // queues to at most the instance size, so the summed peak and slot
    // counts can never exceed 3n no matter how many operations ran.
    EXPECT_LE(result.queue_peak,
              3 * static_cast<std::uint64_t>(instance.size()));
    EXPECT_LE(result.queue_slots,
              3 * static_cast<std::uint64_t>(instance.size()));
    EXPECT_GE(result.queue_slots, result.queue_peak);

    if (run == 0) {
      first_peak = result.queue_peak;
      first_slots = result.queue_slots;
    } else {
      // Identical replay => identical occupancy accounting (this is what
      // the sched.queue.* gauges aggregate).
      EXPECT_EQ(result.queue_peak, first_peak);
      EXPECT_EQ(result.queue_slots, first_slots);
    }
  }
  });
  worker.join();
}

TEST(HotPathBoundedMemory, RepeatedResetDoesNotGrowSlab) {
  // Replay the same churn-heavy instance many times on ONE engine (the
  // Monte-Carlo reuse path): per-run occupancy must not creep run over run.
  Rng rng(2025);
  auto profile = make_choppy_profile(128, 0.2, rng);
  const double horizon = profile.breakpoints().back();
  auto jobs = gen::generate_small_random_jobs(200, horizon, 7.0, 1.0, 3.0,
                                              rng);
  Instance instance(std::move(jobs), profile);

  sched::VDoverOptions options;
  options.adaptive_estimate = true;

  std::uint64_t first_slots = 0;
  std::uint64_t first_heap_peak = 0;
  std::optional<sim::Engine> engine;
  for (int run = 0; run < 8; ++run) {
    sched::VDoverScheduler scheduler(options);
    if (engine) {
      engine->reset(scheduler);
    } else {
      engine.emplace(instance, scheduler);
    }
    auto result = engine->run_to_completion();
    if (run == 0) {
      first_slots = result.timer_slab_slots;
      first_heap_peak = result.event_heap_peak;
    } else {
      // reset() rewinds; identical replay means identical occupancy.
      EXPECT_EQ(result.timer_slab_slots, first_slots);
      EXPECT_EQ(result.event_heap_peak, first_heap_peak);
    }
    EXPECT_EQ(engine->live_timer_count(), 0u);
  }
}

TEST(HotPathAllocations, SteadyStateReplayAllocationRatchet) {
  // Runtime twin of sjs_lint's alloc-in-hot-path rule: that rule's report is
  // the static work-list of allocation sites reachable from the hot-path
  // roots; this test measures how many of them actually FIRE during a warmed
  // steady-state replay, via global operator-new interposition (AllocProbe,
  // linked into this binary only).
  //
  // Protocol: run the instance once cold (tables, slabs, and queues size
  // themselves), rebind with reset(), then count every allocation of the
  // second, fully warmed replay. The target state is zero — every audited
  // `allow(alloc-in-hot-path)` suppression claims amortization or
  // pre-reserve, so a warmed replay should touch none of them. Today's
  // measured count is nonzero; it is pinned here as a ratchet so the
  // upcoming zero-allocation work can only lower it. Runs on a fresh thread
  // so the ready queues' thread-local buffer recycler starts empty and the
  // count does not depend on which tests ran earlier in this process.
  std::uint64_t steady_count = 0;
  std::uint64_t steady_bytes = 0;
  std::thread worker([&] {
    Rng rng(2027);
    auto profile = make_choppy_profile(128, 0.2, rng);
    const double horizon = profile.breakpoints().back();
    auto jobs = gen::generate_small_random_jobs(400, horizon, 7.0, 1.0, 3.0,
                                                rng);
    Instance instance(std::move(jobs), profile);

    sched::VDoverOptions options;
    options.adaptive_estimate = true;

    sched::VDoverScheduler cold_scheduler(options);
    sim::Engine engine(instance, cold_scheduler);
    auto cold = engine.run_to_completion();
    ASSERT_GT(cold.timers_armed, 100u);  // the warm-up exercised the paths

    sched::VDoverScheduler warm_scheduler(options);
    engine.reset(warm_scheduler);
    util::AllocProbe::reset();
    auto warm = engine.run_to_completion();
    steady_count = util::AllocProbe::count();
    steady_bytes = util::AllocProbe::bytes();
    ASSERT_EQ(warm.timers_armed, cold.timers_armed);  // identical replay
  });
  worker.join();

  // Ratchet: measured on the seed workload above. Lower it as allocation
  // sites are burned down (see `sjs_lint --report=alloc`); never raise it
  // without a matching audited suppression in the static report.
  constexpr std::uint64_t kSteadyStateAllocRatchet = 53;
  RecordProperty("steady_state_allocs", static_cast<int>(steady_count));
  RecordProperty("steady_state_bytes", static_cast<int>(steady_bytes));
  std::fprintf(stderr, "steady-state replay: %llu allocations, %llu bytes\n",
               static_cast<unsigned long long>(steady_count),
               static_cast<unsigned long long>(steady_bytes));
  EXPECT_LE(steady_count, kSteadyStateAllocRatchet);
}

}  // namespace
}  // namespace sjs
