// Integration tests for the real-time admission service (src/serve/).
//
// The flagship test drives an AdmissionServer over a real loopback socket
// under a FakeClock — fully deterministic, no wall-clock dependence — and
// then proves the journal-replay contract: loading the journal directory as
// an instance bundle and re-running it through a fresh engine + scheduler
// reproduces the live session's outcomes, completion times, and captured
// value BIT-EXACTLY. A second copy of the same scripted session must produce
// a byte-identical journal (determinism across runs).
//
// The remaining tests cover the protocol-visible behaviours one at a time:
// Thm. 3(3) admission rejection, max-in-flight shedding, cancel semantics,
// QUERY/STATS, malformed-frame connection teardown, and a threaded
// real-clock loadgen session (the TSan CI job runs this file).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "jobs/bundle.hpp"
#include "sched/factory.hpp"
#include "serve/clock.hpp"
#include "serve/journal.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

using sjs::serve::AdmissionServer;
using sjs::serve::FakeClock;
using sjs::serve::FrameDecoder;
using sjs::serve::JobState;
using sjs::serve::Message;
using sjs::serve::MsgType;
using sjs::serve::RejectReason;
using sjs::serve::ServerConfig;

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::unique_ptr<sjs::sim::Scheduler> make_scheduler(const std::string& name,
                                                    double c_lo, double c_hi) {
  const auto lineup = sjs::sched::full_lineup(c_lo, c_hi);
  const auto* factory = sjs::sched::find_factory(lineup, name);
  SJS_CHECK_MSG(factory != nullptr, "unknown scheduler in test");
  return factory->make();
}

/// A raw nonblocking loopback client. Lives in the same thread as the
/// server: every await interleaves server.step(0) with socket reads, so the
/// whole exchange is single-threaded and deterministic under FakeClock.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SJS_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    SJS_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SJS_CHECK(::fcntl(fd_, F_SETFL, O_NONBLOCK) == 0);
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void send(const Message& m) { send_bytes(sjs::serve::encode_frame(m)); }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      SJS_CHECK_MSG(n > 0, "test client send failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Drains readable bytes into the decoder; true if the peer closed.
  bool read_socket() {
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        Message m;
        while (decoder_.next(m) == FrameDecoder::Status::kOk) {
          inbox.push_back(m);
        }
        continue;
      }
      if (n == 0) return true;  // orderly close
      return false;             // EAGAIN: nothing more right now
    }
  }

  /// Steps the server until a message matching `pred` arrives; fails the
  /// test (and returns a default Message) after `spins` fruitless cycles.
  template <typename Pred>
  Message await(AdmissionServer& server, Pred pred, int spins = 1000) {
    for (int i = 0; i < spins; ++i) {
      for (std::size_t j = scanned_; j < inbox.size(); ++j) {
        if (pred(inbox[j])) {
          scanned_ = j + 1;
          return inbox[j];
        }
      }
      scanned_ = inbox.size();
      server.step(0);
      read_socket();
    }
    ADD_FAILURE() << "no matching reply after " << spins << " spins";
    return Message{};
  }

  Message await_seq(AdmissionServer& server, std::uint64_t seq) {
    return await(server, [seq](const Message& m) { return m.seq == seq; });
  }

  std::vector<Message> inbox;

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::size_t scanned_ = 0;  // inbox prefix already handed out by await()
};

Message submit_msg(std::uint64_t seq, double workload, double rel_deadline,
                   double value) {
  Message m;
  m.type = MsgType::kSubmit;
  m.seq = seq;
  m.a = workload;
  m.b = rel_deadline;
  m.c = value;
  return m;
}

constexpr double kBandLo = 0.5;  // band floor below the unit capacity path:
constexpr double kBandHi = 1.0;  // admission windows have real slack to cut

ServerConfig scripted_config(const std::string& journal_dir) {
  ServerConfig config;
  config.scheduler_name = "V-Dover";
  config.capacity = sjs::cap::CapacityProfile(1.0);
  config.c_lo = kBandLo;
  config.c_hi = kBandHi;
  config.journal_dir = journal_dir;
  return config;
}

/// What one scripted live session leaves behind, copied out before the
/// server is destroyed so replay comparisons can run afterwards.
struct SessionOutput {
  sjs::sim::SimResult live;
  std::vector<sjs::Job> jobs;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t notified_completed = 0;
  std::uint64_t notified_expired = 0;
};

/// Drives one fixed 60-submission session (deterministic Rng shapes, every
/// 10th submission deliberately inadmissible) against a FakeClock server,
/// drains it, and returns the live result. Identical inputs every call —
/// the determinism test runs it twice and diffs the journals.
SessionOutput run_scripted_session(const std::string& journal_dir) {
  FakeClock clock;
  AdmissionServer server(scripted_config(journal_dir),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  const int port = server.start();
  TestClient client(port);

  sjs::Rng rng(4242);
  SessionOutput out;
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    // ~20 submissions per virtual second against unit capacity with mean
    // workload 0.05: the processor saturates, so V-Dover must abandon work
    // and both COMPLETED and EXPIRED notifications occur.
    clock.advance(rng.exponential_rate(20.0));
    const double workload = rng.exponential_mean(0.05);
    const bool sabotage = (i % 10) == 9;
    const double window = sabotage
                              ? 0.5 * workload / kBandLo   // fails Thm. 3(3)
                              : rng.uniform(1.05, 3.0) * workload / kBandLo;
    const double value = workload * rng.uniform(1.0, 7.0);
    client.send(submit_msg(++seq, workload, window, value));
    const Message r = client.await_seq(server, seq);
    if (sabotage) {
      EXPECT_EQ(r.type, MsgType::kRejected);
      EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kInadmissible));
      ++out.rejected;
    } else {
      EXPECT_EQ(r.type, MsgType::kAccepted);
      ++out.accepted;
    }
  }

  // Let some backlog resolve in virtual time before draining.
  clock.advance(0.5);
  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = ++seq;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, seq).type, MsgType::kDraining);
  while (server.step(0)) {
    client.read_socket();
  }
  client.read_socket();

  EXPECT_TRUE(server.finished());
  for (const Message& m : client.inbox) {
    if (m.type == MsgType::kCompleted) ++out.notified_completed;
    if (m.type == MsgType::kExpired) ++out.notified_expired;
  }
  out.live = server.result();
  out.jobs = server.instance().jobs();
  return out;
}

void expect_bitwise_equal_results(const sjs::sim::SimResult& live,
                                  const sjs::sim::SimResult& replay) {
  // Exact, not approximate: the replay contract is bit-for-bit.
  EXPECT_EQ(live.completed_value, replay.completed_value);
  EXPECT_EQ(live.generated_value, replay.generated_value);
  EXPECT_EQ(live.completed_count, replay.completed_count);
  EXPECT_EQ(live.expired_count, replay.expired_count);
  ASSERT_EQ(live.outcomes.size(), replay.outcomes.size());
  for (std::size_t i = 0; i < live.outcomes.size(); ++i) {
    EXPECT_EQ(live.outcomes[i], replay.outcomes[i]) << "job " << i;
    // memcmp so NaN (expired jobs) compares equal to itself.
    EXPECT_EQ(std::memcmp(&live.completion_times[i],
                          &replay.completion_times[i], sizeof(double)),
              0)
        << "job " << i;
    EXPECT_EQ(live.executed_work[i], replay.executed_work[i]) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// The tentpole contract: journal replay is bit-exact.

TEST(ServeTest, FakeClockSessionReplaysBitExactly) {
  const std::string dir = fresh_dir("serve_replay");
  const SessionOutput session = run_scripted_session(dir);

  EXPECT_EQ(session.accepted, 54u);
  EXPECT_EQ(session.rejected, 6u);
  EXPECT_GT(session.notified_completed, 0u);
  EXPECT_GT(session.notified_expired, 0u);
  // Every accepted job was resolved and notified exactly once by the drain.
  EXPECT_EQ(session.notified_completed + session.notified_expired,
            session.accepted);
  EXPECT_EQ(session.live.completed_count + session.live.expired_count,
            session.accepted);

  // The journal directory is a loadable bundle recording exactly the
  // accepted jobs with their %.17g admission stamps.
  const sjs::Instance replayed = sjs::load_instance_bundle(dir);
  ASSERT_EQ(replayed.jobs().size(), session.jobs.size());
  EXPECT_EQ(replayed.c_lo(), kBandLo);
  EXPECT_EQ(replayed.c_hi(), kBandHi);
  for (std::size_t i = 0; i < session.jobs.size(); ++i) {
    EXPECT_EQ(replayed.jobs()[i].release, session.jobs[i].release);
    EXPECT_EQ(replayed.jobs()[i].workload, session.jobs[i].workload);
    EXPECT_EQ(replayed.jobs()[i].deadline, session.jobs[i].deadline);
    EXPECT_EQ(replayed.jobs()[i].value, session.jobs[i].value);
  }
  const auto meta = sjs::serve::read_journal_meta(dir);
  EXPECT_EQ(meta.at("scheduler"), "V-Dover");
  EXPECT_TRUE(sjs::serve::read_journal_cancels(dir).empty());

  // Replay through a fresh engine + scheduler: identical outcomes.
  auto scheduler = make_scheduler(meta.at("scheduler"), replayed.c_lo(),
                                  replayed.c_hi());
  sjs::sim::Engine engine(replayed, *scheduler);
  const sjs::sim::SimResult replay = engine.run_to_completion();
  expect_bitwise_equal_results(session.live, replay);

  // outcomes.csv written at drain must equal the one a replay would write —
  // same check scripts/serve_smoke.sh applies to the installed binaries.
  const std::string live_csv = slurp(dir + "/outcomes.csv");
  const std::string replay_csv_path = fresh_dir("serve_replay_outcomes");
  std::filesystem::create_directories(replay_csv_path);
  sjs::sim::save_outcomes_csv(replay, replayed.jobs(),
                              replay_csv_path + "/outcomes.csv");
  EXPECT_FALSE(live_csv.empty());
  EXPECT_EQ(live_csv, slurp(replay_csv_path + "/outcomes.csv"));
}

TEST(ServeTest, ScriptedSessionIsDeterministicAcrossRuns) {
  const std::string dir_a = fresh_dir("serve_det_a");
  const std::string dir_b = fresh_dir("serve_det_b");
  const SessionOutput a = run_scripted_session(dir_a);
  const SessionOutput b = run_scripted_session(dir_b);
  expect_bitwise_equal_results(a.live, b.live);
  // Byte-identical journals: admission stamps included.
  for (const char* file : {"/jobs.csv", "/capacity.csv", "/band.csv",
                           "/meta.csv", "/outcomes.csv"}) {
    EXPECT_EQ(slurp(dir_a + file), slurp(dir_b + file)) << file;
  }
}

// ---------------------------------------------------------------------------
// Protocol-visible behaviours, one at a time.

TEST(ServeTest, InadmissibleAndInvalidSubmitsAreRejected) {
  FakeClock clock;
  ServerConfig config = scripted_config("");
  AdmissionServer server(config, make_scheduler("V-Dover", kBandLo, kBandHi),
                         clock);
  TestClient client(server.start());

  // d − r < p / c_lo: workload 1 needs a window of at least 2 at c_lo = 0.5.
  client.send(submit_msg(1, 1.0, 1.9, 1.0));
  Message r = client.await_seq(server, 1);
  EXPECT_EQ(r.type, MsgType::kRejected);
  EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kInadmissible));

  client.send(submit_msg(2, -1.0, 1.0, 1.0));
  r = client.await_seq(server, 2);
  EXPECT_EQ(r.type, MsgType::kRejected);
  EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kInvalid));

  client.send(submit_msg(3, 1.0, 2.5, 1.0));
  EXPECT_EQ(client.await_seq(server, 3).type, MsgType::kAccepted);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 2u);
}

TEST(ServeTest, AdmissionCheckCanBeDisabled) {
  FakeClock clock;
  ServerConfig config = scripted_config("");
  config.admission_check = false;
  AdmissionServer server(config, make_scheduler("V-Dover", kBandLo, kBandHi),
                         clock);
  TestClient client(server.start());
  client.send(submit_msg(1, 1.0, 1.9, 1.0));  // inadmissible, but accepted
  EXPECT_EQ(client.await_seq(server, 1).type, MsgType::kAccepted);
}

TEST(ServeTest, OverInFlightLimitSheds) {
  FakeClock clock;
  ServerConfig config = scripted_config("");
  config.max_in_flight = 2;
  AdmissionServer server(config, make_scheduler("V-Dover", kBandLo, kBandHi),
                         clock);
  TestClient client(server.start());
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    client.send(submit_msg(seq, 0.5, 10.0, 1.0));
    EXPECT_EQ(client.await_seq(server, seq).type, MsgType::kAccepted);
  }
  client.send(submit_msg(3, 0.5, 10.0, 1.0));
  EXPECT_EQ(client.await_seq(server, 3).type, MsgType::kShed);

  // Shedding is load-, not state-based: once a job resolves, capacity frees.
  clock.advance(20.0);
  client.send(submit_msg(4, 0.5, 10.0, 1.0));
  EXPECT_EQ(client.await_seq(server, 4).type, MsgType::kAccepted);
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(ServeTest, CancelSuppressesExpiryNotification) {
  FakeClock clock;
  const std::string dir = fresh_dir("serve_cancel");
  AdmissionServer server(scripted_config(dir),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  TestClient client(server.start());

  client.send(submit_msg(1, 1.0, 4.0, 1.0));
  const Message accepted = client.await_seq(server, 1);
  ASSERT_EQ(accepted.type, MsgType::kAccepted);

  // A job only becomes cancellable once its release event has fired, which
  // happens on the first pump strictly after the admission stamp.
  clock.advance(0.5);
  server.step(0);

  Message cancel;
  cancel.type = MsgType::kCancel;
  cancel.seq = 2;
  cancel.ticket = accepted.ticket;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 2).type, MsgType::kCancelled);

  // Cancelling again (terminal job) fails.
  cancel.seq = 3;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 3).type, MsgType::kCancelFailed);
  // As does a ticket that never existed.
  cancel.seq = 4;
  cancel.ticket = 999;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 4).type, MsgType::kCancelFailed);

  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = 5;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, 5).type, MsgType::kDraining);
  while (server.step(0)) client.read_socket();
  client.read_socket();

  // The forced expiry stays internal: no kExpired reaches the client.
  for (const Message& m : client.inbox) {
    EXPECT_NE(m.type, MsgType::kExpired);
    EXPECT_NE(m.type, MsgType::kCompleted);
  }
  EXPECT_EQ(server.stats().cancelled, 1u);
  // The journal records the cancel, marking the session non-replayable.
  const auto cancels = sjs::serve::read_journal_cancels(dir);
  ASSERT_EQ(cancels.size(), 1u);
  EXPECT_EQ(cancels[0].second, static_cast<sjs::JobId>(accepted.ticket));
}

TEST(ServeTest, QueryAndStatsReportLiveState) {
  FakeClock clock;
  AdmissionServer server(scripted_config(""),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  TestClient client(server.start());

  client.send(submit_msg(1, 1.0, 10.0, 2.0));
  const Message accepted = client.await_seq(server, 1);
  ASSERT_EQ(accepted.type, MsgType::kAccepted);

  Message query;
  query.type = MsgType::kQuery;
  query.seq = 2;
  query.ticket = accepted.ticket;
  client.send(query);
  Message qr = client.await_seq(server, 2);
  ASSERT_EQ(qr.type, MsgType::kQueryReply);
  EXPECT_TRUE(qr.code == static_cast<std::uint8_t>(JobState::kRunning) ||
              qr.code == static_cast<std::uint8_t>(JobState::kQueued))
      << static_cast<int>(qr.code);
  EXPECT_GT(qr.a, 0.0);  // remaining work

  clock.advance(5.0);  // unit capacity: workload 1 finishes well before 5
  query.seq = 3;
  client.send(query);
  qr = client.await_seq(server, 3);
  EXPECT_EQ(qr.code, static_cast<std::uint8_t>(JobState::kCompleted));

  query.seq = 4;
  query.ticket = 777;
  client.send(query);
  qr = client.await_seq(server, 4);
  EXPECT_EQ(qr.code, static_cast<std::uint8_t>(JobState::kUnknown));

  Message stats;
  stats.type = MsgType::kStats;
  stats.seq = 5;
  client.send(stats);
  const Message sr = client.await_seq(server, 5);
  ASSERT_EQ(sr.type, MsgType::kStatsReply);
  EXPECT_EQ(sr.stats.submitted, 1u);
  EXPECT_EQ(sr.stats.accepted, 1u);
  EXPECT_EQ(sr.stats.completed, 1u);
  EXPECT_EQ(sr.stats.in_flight, 0u);
  EXPECT_EQ(sr.stats.completed_value, 2.0);
  EXPECT_GE(sr.stats.virtual_now, 1.0);
}

TEST(ServeTest, MalformedFrameKillsConnectionNotServer) {
  FakeClock clock;
  AdmissionServer server(scripted_config(""),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  const int port = server.start();

  TestClient bad(port);
  bad.send_bytes({0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00});
  const Message err = bad.await(
      server, [](const Message& m) { return m.type == MsgType::kError; });
  EXPECT_EQ(err.code,
            static_cast<std::uint8_t>(sjs::serve::ErrorCode::kMalformedFrame));
  // The server hangs up on the offender...
  bool closed = false;
  for (int i = 0; i < 100 && !closed; ++i) {
    server.step(0);
    closed = bad.read_socket();
  }
  EXPECT_TRUE(closed);

  // ...but keeps serving everyone else.
  TestClient good(port);
  good.send(submit_msg(1, 0.5, 5.0, 1.0));
  EXPECT_EQ(good.await_seq(server, 1).type, MsgType::kAccepted);

  // A client sending a server→client type is also cut off.
  TestClient confused(port);
  Message backwards;
  backwards.type = MsgType::kAccepted;
  backwards.seq = 9;
  confused.send(backwards);
  const Message err2 = confused.await(
      server, [](const Message& m) { return m.type == MsgType::kError; });
  EXPECT_EQ(err2.code,
            static_cast<std::uint8_t>(sjs::serve::ErrorCode::kNotARequest));
}

TEST(ServeTest, SubmitsDuringDrainAreRefused) {
  FakeClock clock;
  AdmissionServer server(scripted_config(""),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  TestClient client(server.start());

  // DRAIN and a SUBMIT in the same batch: the submit must see draining.
  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = 1;
  client.send(drain);
  client.send(submit_msg(2, 0.5, 5.0, 1.0));
  EXPECT_EQ(client.await_seq(server, 1).type, MsgType::kDraining);
  const Message r = client.await_seq(server, 2);
  EXPECT_EQ(r.type, MsgType::kRejected);
  EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kDraining));
  while (server.step(0)) client.read_socket();
  EXPECT_TRUE(server.finished());
  EXPECT_EQ(server.result().completed_count, 0u);
}

// ---------------------------------------------------------------------------
// Real clocks and real concurrency: server thread + loadgen thread over
// loopback, then the same replay contract. TSan runs this too.

TEST(ServeTest, RealClockLoadgenSessionReplays) {
  const std::string dir = fresh_dir("serve_loadgen");
  sjs::serve::SystemClock server_clock;
  ServerConfig config = scripted_config(dir);
  config.accel = 20.0;  // compress the virtual session into fractions of a s
  AdmissionServer server(config, make_scheduler("V-Dover", kBandLo, kBandHi),
                         server_clock);
  const int port = server.start();
  std::thread server_thread([&server] { server.run(); });

  sjs::serve::LoadGenConfig load;
  load.port = port;
  load.duration_s = 0.3;
  load.linger_s = 2.0;
  load.arrival_rate = 200.0;
  load.mean_workload = 0.02;
  load.c_lo = kBandLo;
  load.seed = 99;
  load.send_drain = true;
  sjs::serve::SystemClock client_clock;
  const sjs::serve::LoadReport report =
      sjs::serve::run_load(load, client_clock);
  server_thread.join();

  ASSERT_TRUE(server.finished());
  EXPECT_TRUE(report.drain_acked);
  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_EQ(report.submitted, report.accepted + report.rejected + report.shed);
  // Drain resolves every admitted job, and the client saw each resolution.
  EXPECT_EQ(report.completed + report.expired, report.accepted);
  EXPECT_EQ(server.result().completed_count, report.completed);
  EXPECT_EQ(server.result().expired_count, report.expired);
  EXPECT_EQ(report.completed_value, server.result().completed_value);

  // Same contract as the FakeClock test, now with wall-clock stamps.
  const sjs::Instance replayed = sjs::load_instance_bundle(dir);
  ASSERT_EQ(replayed.jobs().size(), report.accepted);
  auto scheduler = make_scheduler("V-Dover", replayed.c_lo(), replayed.c_hi());
  sjs::sim::Engine engine(replayed, *scheduler);
  const sjs::sim::SimResult replay = engine.run_to_completion();
  expect_bitwise_equal_results(server.result(), replay);
}

// ---------------------------------------------------------------------------
// Journal durability: a failed append must surface, not silently drop rows.

TEST(JournalTest, AppendFailureThrowsInsteadOfSilentLoss) {
  const std::string dir = fresh_dir("journal_enospc");
  sjs::serve::Journal journal(dir, sjs::cap::CapacityProfile(1.0), kBandLo,
                              kBandHi, {"V-Dover", 1.0, true});

  // Cap the process file size so the next flush past the cap fails with
  // EFBIG — the same silent-failbit path a short write or ENOSPC takes.
  // SIGXFSZ must be ignored or the kernel kills the process instead.
  struct sigaction ignore_xfsz {};
  ignore_xfsz.sa_handler = SIG_IGN;
  struct sigaction old_xfsz {};
  ASSERT_EQ(::sigaction(SIGXFSZ, &ignore_xfsz, &old_xfsz), 0);
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  const rlimit tiny{256, old_limit.rlim_max};
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &tiny), 0);

  sjs::Job job;
  job.id = 0;
  job.release = 0.25;
  job.workload = 1.0;
  job.deadline = 4.0;
  job.value = 2.0;
  bool threw = false;
  std::string what;
  for (int i = 0; i < 64 && !threw; ++i) {
    job.id = i;
    try {
      journal.record_admit(job);
    } catch (const std::runtime_error& e) {
      threw = true;
      what = e.what();
    }
  }
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ASSERT_EQ(::sigaction(SIGXFSZ, &old_xfsz, nullptr), 0);
  EXPECT_TRUE(threw) << "journal swallowed a failed append";
  EXPECT_NE(what.find("journal append failed"), std::string::npos) << what;
}

TEST(ServeTest, JournalFailureFailsSessionCleanly) {
  const std::string dir = fresh_dir("serve_journal_fail");
  FakeClock clock;
  AdmissionServer server(scripted_config(dir),
                         make_scheduler("V-Dover", kBandLo, kBandHi), clock);
  TestClient client(server.start());

  // One healthy admission first: the failure path must not corrupt it.
  client.send(submit_msg(1, 0.5, 5.0, 1.0));
  EXPECT_EQ(client.await_seq(server, 1).type, MsgType::kAccepted);

  struct sigaction ignore_xfsz {};
  ignore_xfsz.sa_handler = SIG_IGN;
  struct sigaction old_xfsz {};
  ASSERT_EQ(::sigaction(SIGXFSZ, &ignore_xfsz, &old_xfsz), 0);
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_FSIZE, &old_limit), 0);
  const rlimit tiny{128, old_limit.rlim_max};
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &tiny), 0);

  // Submit until an append fails. The client must see ERROR(kJournalFailed),
  // never an ACCEPTED whose journal row was silently dropped.
  std::uint64_t seq = 1;
  Message failed{};
  for (int i = 0; i < 64; ++i) {
    clock.advance(0.01);
    client.send(submit_msg(++seq, 0.5, 5.0, 1.0));
    const Message r = client.await_seq(server, seq);
    if (r.type == MsgType::kError) {
      failed = r;
      break;
    }
    ASSERT_EQ(r.type, MsgType::kAccepted);
  }
  ASSERT_EQ(::setrlimit(RLIMIT_FSIZE, &old_limit), 0);
  ASSERT_EQ(::sigaction(SIGXFSZ, &old_xfsz, nullptr), 0);

  ASSERT_EQ(failed.type, MsgType::kError);
  EXPECT_EQ(failed.code,
            static_cast<std::uint8_t>(sjs::serve::ErrorCode::kJournalFailed));
  EXPECT_FALSE(server.journal_error().empty());
  // The failure initiated a drain on its own — no DRAIN frame was sent.
  EXPECT_TRUE(server.draining());
  while (server.step(0)) client.read_socket();
  EXPECT_TRUE(server.finished());
}

// ---------------------------------------------------------------------------
// Pooled latency merge: quantiles come from the union of samples, never from
// averaging per-connection summaries.

TEST(LoadGen, MergedLatencyPoolsSamplesAcrossConnections) {
  // Two heavily skewed connections: one fast (1ms-ish), one slow (100ms-ish)
  // with the same sample count. Averaging the per-connection p99s would
  // report ~50ms; the pooled tail must sit in the slow group.
  std::vector<double> fast;
  std::vector<double> slow;
  for (int i = 0; i < 99; ++i) {
    fast.push_back(1e-3 + static_cast<double>(i) * 1e-6);
    slow.push_back(0.1 + static_cast<double>(i) * 1e-4);
  }
  const sjs::Summary fast_sum = sjs::summarize(fast);
  const sjs::Summary slow_sum = sjs::summarize(slow);
  const sjs::Summary merged =
      sjs::serve::merge_latency_samples({fast, slow});

  EXPECT_EQ(merged.count, fast.size() + slow.size());
  EXPECT_EQ(merged.min, fast.front());
  EXPECT_EQ(merged.max, slow.back());
  // Pooled p99 ≈ the slow group's tail, far above the average of the two
  // per-connection p99s.
  EXPECT_GT(merged.p99, 0.1);
  EXPECT_GT(merged.p99, 1.5 * 0.5 * (fast_sum.p99 + slow_sum.p99));
  // p50 of the pool straddles the groups; each group's own median does not.
  EXPECT_GT(merged.median, fast_sum.median);
  EXPECT_LT(merged.median, slow_sum.median);

  // Degenerate shapes stay well-defined.
  EXPECT_EQ(sjs::serve::merge_latency_samples({}).count, 0u);
  EXPECT_EQ(sjs::serve::merge_latency_samples({{}, {2.5}}).count, 1u);
}

}  // namespace
