// Unit + property tests for src/capacity: the piecewise-constant profile's
// exact rate/work/invert algebra, the stochastic generators, and trace I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "capacity/capacity_process.hpp"
#include "capacity/capacity_profile.hpp"
#include "capacity/trace_io.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::cap {
namespace {

// ---------------------------------------------------------------- profile

TEST(CapacityProfile, ConstantProfileBasics) {
  CapacityProfile p(2.0);
  EXPECT_DOUBLE_EQ(p.rate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(p.rate(100.0), 2.0);
  EXPECT_DOUBLE_EQ(p.work(1.0, 4.0), 6.0);
  EXPECT_DOUBLE_EQ(p.invert(1.0, 6.0), 4.0);
  EXPECT_DOUBLE_EQ(p.min_rate(), 2.0);
  EXPECT_DOUBLE_EQ(p.max_rate(), 2.0);
  EXPECT_DOUBLE_EQ(p.delta(), 1.0);
  EXPECT_EQ(p.next_change(0.0), CapacityProfile::kInfinity);
}

TEST(CapacityProfile, PiecewiseRates) {
  CapacityProfile p({0.0, 10.0, 20.0}, {1.0, 35.0, 2.0});
  EXPECT_DOUBLE_EQ(p.rate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(9.999), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(10.0), 35.0);  // right-continuous
  EXPECT_DOUBLE_EQ(p.rate(19.0), 35.0);
  EXPECT_DOUBLE_EQ(p.rate(20.0), 2.0);
  EXPECT_DOUBLE_EQ(p.rate(1000.0), 2.0);  // last segment extends forever
}

TEST(CapacityProfile, WorkAcrossSegments) {
  CapacityProfile p({0.0, 10.0, 20.0}, {1.0, 35.0, 2.0});
  EXPECT_DOUBLE_EQ(p.work(0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(p.work(0.0, 20.0), 10.0 + 350.0);
  EXPECT_DOUBLE_EQ(p.work(5.0, 15.0), 5.0 + 175.0);
  EXPECT_DOUBLE_EQ(p.work(20.0, 25.0), 10.0);
  EXPECT_DOUBLE_EQ(p.work(3.0, 3.0), 0.0);
}

TEST(CapacityProfile, InvertWithinSegment) {
  CapacityProfile p({0.0, 10.0}, {1.0, 5.0});
  EXPECT_DOUBLE_EQ(p.invert(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.invert(2.0, 3.0), 5.0);
}

TEST(CapacityProfile, InvertAcrossSegments) {
  CapacityProfile p({0.0, 10.0}, {1.0, 5.0});
  // 10 units in segment one, then 5/unit: 15 units total -> t = 11.
  EXPECT_DOUBLE_EQ(p.invert(0.0, 15.0), 11.0);
  // Start mid-segment: from t=5, 5 units to t=10, then 10 more -> t = 12.
  EXPECT_DOUBLE_EQ(p.invert(5.0, 15.0), 12.0);
}

TEST(CapacityProfile, InvertZeroWorkIsIdentity) {
  CapacityProfile p({0.0, 1.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.invert(0.7, 0.0), 0.7);
}

TEST(CapacityProfile, InvertBeyondLastBreakpoint) {
  CapacityProfile p({0.0, 1.0}, {1.0, 4.0});
  EXPECT_DOUBLE_EQ(p.invert(2.0, 8.0), 4.0);
}

TEST(CapacityProfile, NextChange) {
  CapacityProfile p({0.0, 10.0, 20.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(p.next_change(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.next_change(10.0), 20.0);  // strictly after t
  EXPECT_DOUBLE_EQ(p.next_change(15.0), 20.0);
  EXPECT_EQ(p.next_change(20.0), CapacityProfile::kInfinity);
}

TEST(CapacityProfile, CumulativeMatchesWorkFromZero) {
  CapacityProfile p({0.0, 2.0, 5.0}, {3.0, 1.0, 7.0});
  for (double t : {0.0, 1.0, 2.0, 3.5, 5.0, 9.0}) {
    EXPECT_DOUBLE_EQ(p.cumulative(t), p.work(0.0, t));
  }
}

TEST(CapacityProfile, RejectsInvalidConstruction) {
  EXPECT_THROW(CapacityProfile({1.0}, {1.0}), CheckError);          // t0 != 0
  EXPECT_THROW(CapacityProfile({0.0, 0.0}, {1.0, 2.0}), CheckError);  // dup
  EXPECT_THROW(CapacityProfile({0.0, 2.0, 1.0}, {1, 1, 1}), CheckError);
  EXPECT_THROW(CapacityProfile({0.0}, {0.0}), CheckError);          // zero rate
  EXPECT_THROW(CapacityProfile({0.0}, {-1.0}), CheckError);
  EXPECT_THROW(CapacityProfile({}, {}), CheckError);
  EXPECT_THROW(CapacityProfile({0.0, 1.0}, {1.0}), CheckError);     // mismatch
}

TEST(CapacityProfile, RejectsNegativeTimeQueries) {
  CapacityProfile p(1.0);
  EXPECT_THROW(p.rate(-0.5), CheckError);
  EXPECT_THROW(p.work(2.0, 1.0), CheckError);
  EXPECT_THROW(p.invert(0.0, -1.0), CheckError);
}

// Property: invert is the exact inverse of work on random profiles.
class ProfileInverseProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProfileInverseProperty, InvertWorkRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(0.5, 10.0)};
  for (int i = 0; i < 30; ++i) {
    times.push_back(times.back() + rng.exponential_mean(2.0));
    rates.push_back(rng.uniform(0.5, 10.0));
  }
  CapacityProfile p(times, rates);
  for (int trial = 0; trial < 50; ++trial) {
    const double t = rng.uniform(0.0, times.back() * 1.2);
    const double w = rng.exponential_mean(5.0);
    const double t2 = p.invert(t, w);
    EXPECT_GE(t2, t);
    EXPECT_NEAR(p.work(t, t2), w, 1e-9 * std::max(1.0, w));
  }
}

TEST_P(ProfileInverseProperty, WorkIsAdditive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(0.5, 10.0)};
  for (int i = 0; i < 20; ++i) {
    times.push_back(times.back() + rng.exponential_mean(1.0));
    rates.push_back(rng.uniform(0.5, 10.0));
  }
  CapacityProfile p(times, rates);
  for (int trial = 0; trial < 30; ++trial) {
    double a = rng.uniform(0.0, 20.0);
    double c = a + rng.exponential_mean(5.0);
    double b = rng.uniform(a, c);
    EXPECT_NEAR(p.work(a, c), p.work(a, b) + p.work(b, c), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileInverseProperty,
                         ::testing::Range(0, 8));

// ----------------------------------------------------------------- cursor
//
// The cursor is a drop-in replacement for the plain methods on the engine's
// hot path, gated by replay digests — so its results must be BIT-identical
// (EXPECT_EQ on doubles, not EXPECT_NEAR), on monotone streams, backward
// jumps, and after reset().

TEST(CapacityCursor, MatchesPlainMethodsExactlyOnMonotoneStream) {
  Rng rng(300);
  for (int profile_trial = 0; profile_trial < 4; ++profile_trial) {
    std::vector<double> times{0.0};
    std::vector<double> rates{rng.uniform(0.5, 10.0)};
    for (int i = 0; i < 40; ++i) {
      times.push_back(times.back() + rng.exponential_mean(1.0));
      rates.push_back(rng.uniform(0.5, 10.0));
    }
    CapacityProfile p(times, rates);
    CapacityProfile::Cursor cursor(p);
    double t = 0.0;
    for (int q = 0; q < 200; ++q) {
      const double w = rng.exponential_mean(4.0);
      EXPECT_EQ(cursor.rate(t), p.rate(t));
      EXPECT_EQ(cursor.cumulative(t), p.cumulative(t));
      EXPECT_EQ(cursor.invert(t, w), p.invert(t, w));
      const double t2 = t + rng.exponential_mean(0.7);
      EXPECT_EQ(cursor.work(t, t2), p.work(t, t2));
      t = t2;
    }
  }
}

TEST(CapacityCursor, MatchesPlainMethodsOnBackwardJumps) {
  // Backward queries fall back to binary search; answers stay identical.
  Rng rng(301);
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(0.5, 10.0)};
  for (int i = 0; i < 40; ++i) {
    times.push_back(times.back() + rng.exponential_mean(1.0));
    rates.push_back(rng.uniform(0.5, 10.0));
  }
  CapacityProfile p(times, rates);
  CapacityProfile::Cursor cursor(p);
  const double span = times.back();
  for (int q = 0; q < 300; ++q) {
    const double t = rng.uniform(0.0, span * 1.3);  // arbitrary order
    const double w = rng.exponential_mean(4.0);
    EXPECT_EQ(cursor.rate(t), p.rate(t));
    EXPECT_EQ(cursor.invert(t, w), p.invert(t, w));
    EXPECT_EQ(cursor.work(t, t + w), p.work(t, t + w));
  }
}

TEST(CapacityCursor, InvertLookaheadDoesNotPoisonHint) {
  // invert() may gallop far ahead of the current segment (a long completion
  // lookahead); the next rate() query at the *current* time must still be on
  // the forward-walk fast path and — more importantly — still exact.
  CapacityProfile p({0.0, 1.0, 2.0, 3.0, 4.0, 5.0}, {1, 2, 3, 4, 5, 6});
  CapacityProfile::Cursor cursor(p);
  EXPECT_EQ(cursor.rate(0.5), 1.0);
  EXPECT_EQ(cursor.invert(0.5, 100.0), p.invert(0.5, 100.0));  // far lookahead
  EXPECT_EQ(cursor.rate(0.6), 1.0);  // still exact at the original position
  EXPECT_EQ(cursor.cumulative(0.6), p.cumulative(0.6));
}

TEST(CapacityCursor, ResetRestartsFromTimeZero) {
  CapacityProfile p({0.0, 10.0, 20.0}, {1.0, 35.0, 2.0});
  CapacityProfile::Cursor cursor(p);
  EXPECT_EQ(cursor.rate(25.0), 2.0);  // advance hint to the last segment
  cursor.reset();
  EXPECT_EQ(cursor.rate(0.0), 1.0);
  EXPECT_EQ(cursor.work(0.0, 20.0), p.work(0.0, 20.0));
}

TEST(CapacityCursor, RejectsInvalidQueriesLikePlainMethods) {
  CapacityProfile p(1.0);
  CapacityProfile::Cursor cursor(p);
  EXPECT_THROW(cursor.rate(-0.5), CheckError);
  EXPECT_THROW(cursor.work(2.0, 1.0), CheckError);
  EXPECT_THROW(cursor.invert(0.0, -1.0), CheckError);
}

// ---------------------------------------------------------------- processes

TEST(TwoStateMarkov, PathStaysInBand) {
  Rng rng(1);
  TwoStateMarkovParams params;
  params.c_lo = 1.0;
  params.c_hi = 35.0;
  params.mean_sojourn_lo = params.mean_sojourn_hi = 10.0;
  auto p = sample_two_state_markov(params, 200.0, rng);
  for (double r : p.rates()) {
    EXPECT_TRUE(r == 1.0 || r == 35.0) << r;
  }
  EXPECT_DOUBLE_EQ(p.breakpoints().front(), 0.0);
}

TEST(TwoStateMarkov, AlternatesStates) {
  Rng rng(2);
  TwoStateMarkovParams params;
  params.mean_sojourn_lo = params.mean_sojourn_hi = 1.0;
  auto p = sample_two_state_markov(params, 100.0, rng);
  ASSERT_GT(p.segments(), 10u);  // ~100 expected switches
  for (std::size_t i = 1; i < p.rates().size(); ++i) {
    EXPECT_NE(p.rates()[i], p.rates()[i - 1]);
  }
}

TEST(TwoStateMarkov, SojournMeanRoughlyMatches) {
  Rng rng(3);
  TwoStateMarkovParams params;
  params.mean_sojourn_lo = params.mean_sojourn_hi = 2.0;
  auto p = sample_two_state_markov(params, 20000.0, rng);
  // segments ≈ horizon / mean_sojourn.
  const double mean_seg = 20000.0 / static_cast<double>(p.segments());
  EXPECT_NEAR(mean_seg, 2.0, 0.2);
}

TEST(TwoStateMarkov, DeterministicGivenSeed) {
  TwoStateMarkovParams params;
  Rng a(7), b(7);
  auto pa = sample_two_state_markov(params, 50.0, a);
  auto pb = sample_two_state_markov(params, 50.0, b);
  EXPECT_EQ(pa.breakpoints(), pb.breakpoints());
  EXPECT_EQ(pa.rates(), pb.rates());
}

TEST(MarkovChain, ThreeStateChainStaysInStates) {
  Rng rng(4);
  MarkovChainParams params;
  params.rates = {1.0, 5.0, 20.0};
  params.mean_sojourn = {1.0, 2.0, 1.0};
  params.transition = {{0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}};
  auto p = sample_markov_chain(params, 100.0, rng);
  for (double r : p.rates()) {
    EXPECT_TRUE(r == 1.0 || r == 5.0 || r == 20.0);
  }
}

TEST(MarkovChain, RejectsBadTransitionMatrix) {
  Rng rng(5);
  MarkovChainParams params;
  params.rates = {1.0, 2.0};
  params.mean_sojourn = {1.0, 1.0};
  params.transition = {{0.5, 0.5}, {1.0, 0.0}};  // self-loop in row 0
  EXPECT_THROW(sample_markov_chain(params, 10.0, rng), CheckError);
  params.transition = {{0.0, 0.4}, {1.0, 0.0}};  // row does not sum to 1
  EXPECT_THROW(sample_markov_chain(params, 10.0, rng), CheckError);
}

TEST(MarkovChain, SingleStateIsConstant) {
  Rng rng(6);
  MarkovChainParams params;
  params.rates = {3.0};
  params.mean_sojourn = {1.0};
  params.transition = {{0.0}};
  auto p = sample_markov_chain(params, 10.0, rng);
  EXPECT_EQ(p.segments(), 1u);
  EXPECT_DOUBLE_EQ(p.rate(5.0), 3.0);
}

TEST(RandomWalk, StaysClampedInBand) {
  Rng rng(7);
  RandomWalkParams params;
  params.c_lo = 1.0;
  params.c_hi = 8.0;
  params.start = 4.0;
  params.mean_epoch = 0.1;
  auto p = sample_random_walk(params, 100.0, rng);
  for (double r : p.rates()) {
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 8.0);
  }
  EXPECT_GT(p.segments(), 100u);
}

TEST(Sinusoid, ClampedAndPeriodic) {
  SinusoidParams params;
  params.mid = 5.0;
  params.amp = 10.0;  // would dip below zero without the clamp
  params.c_lo = 1.0;
  params.c_hi = 12.0;
  auto p = sample_sinusoid(params, 300.0);
  for (double r : p.rates()) {
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 12.0);
  }
}

TEST(SquareWave, ExactPattern) {
  auto p = square_wave(1.0, 10.0, 2.0, 3.0, 12.0);
  EXPECT_DOUBLE_EQ(p.rate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(1.999), 1.0);
  EXPECT_DOUBLE_EQ(p.rate(2.0), 10.0);
  EXPECT_DOUBLE_EQ(p.rate(4.999), 10.0);
  EXPECT_DOUBLE_EQ(p.rate(5.0), 1.0);
  EXPECT_DOUBLE_EQ(p.work(0.0, 5.0), 2.0 + 30.0);
}

// ---------------------------------------------------------------- trace I/O

class TraceIo : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "sjs_trace_test.csv")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(TraceIo, RoundTrip) {
  CapacityProfile original({0.0, 1.5, 4.0}, {1.0, 35.0, 2.0});
  save_trace(original, path_);
  auto loaded = load_trace(path_);
  EXPECT_EQ(loaded.breakpoints(), original.breakpoints());
  EXPECT_EQ(loaded.rates(), original.rates());
}

TEST_F(TraceIo, RejectsMalformedRows) {
  {
    std::ofstream out(path_);
    out << "time,rate\n0.0,1.0,extra\n";
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIo, RejectsNonNumeric) {
  {
    std::ofstream out(path_);
    out << "0.0,abc\n";
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIo, RejectsNegativeRate) {
  {
    std::ofstream out(path_);
    out << "time,rate\n0.0,-1.0\n";
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

TEST_F(TraceIo, RejectsEmpty) {
  {
    std::ofstream out(path_);
  }
  EXPECT_THROW(load_trace(path_), std::runtime_error);
}

}  // namespace
}  // namespace sjs::cap
