// Unit tests for src/util: RNG, CLI flags, CSV, ASCII charts, logging/checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/gnuplot.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sjs {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, StreamIsDeterministic) {
  Rng a(7, 5), b(7, 5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialStrictlyPositive) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential_mean(1.0), 0.0);
}

TEST(Rng, ExponentialRateIsReciprocalMean) {
  Rng a(6), b(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.exponential_rate(4.0), b.exponential_mean(0.25));
  }
}

TEST(Rng, BelowInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowZeroIsZero) {
  Rng rng(8);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, BoundedParetoInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.bounded_pareto(1.5, 0.1, 20.0);
    EXPECT_GE(x, 0.1 - 1e-9);
    EXPECT_LE(x, 20.0 + 1e-9);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // 50! permutations; identity is absurdly unlikely
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<int> hits(3, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(4);
  std::vector<int> hits(1, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0], 1);
}

TEST(ThreadPool, ParallelForNonDivisibleBlockSizes) {
  // 1000 % 7 threads != 0: the trailing partial block must still run and no
  // index may be visited twice.
  ThreadPool pool(7);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPrimeCountOnSingleThread) {
  ThreadPool pool(1);
  std::vector<int> hits(13, 0);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WaitIdleOnFreshPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
}

TEST(ThreadPool, SizeReflectsThreadCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

// ---------------------------------------------------------------- CLI

TEST(Cli, ParsesEqualsSyntax) {
  CliFlags flags;
  flags.add_double("rate", 1.0, "");
  const char* argv[] = {"prog", "--rate=2.5"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.5);
}

TEST(Cli, ParsesSpaceSyntax) {
  CliFlags flags;
  flags.add_int("runs", 10, "");
  const char* argv[] = {"prog", "--runs", "800"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("runs"), 800);
}

TEST(Cli, BareBooleanFlag) {
  CliFlags flags;
  flags.add_bool("verbose", false, "");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, BooleanExplicitFalse) {
  CliFlags flags;
  flags.add_bool("verbose", true, "");
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(Cli, MixedSyntaxAcrossAllTypes) {
  // One invocation freely mixing --name=value and --name value, covering
  // every registered flag type (the serving binaries are driven both ways).
  CliFlags flags;
  flags.add_double("rate", 1.0, "");
  flags.add_int("port", 0, "");
  flags.add_bool("drain", false, "");
  flags.add_string("scheduler", "V-Dover", "");
  flags.add_double_list("lambda", {1.0}, "");
  const char* argv[] = {"prog",   "--rate=2.5", "--port", "7070",
                        "--drain", "--scheduler", "EDF",  "--lambda=4,5"};
  ASSERT_TRUE(flags.parse(8, const_cast<char**>(argv))) << flags.error();
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.5);
  EXPECT_EQ(flags.get_int("port"), 7070);
  EXPECT_TRUE(flags.get_bool("drain"));
  EXPECT_EQ(flags.get_string("scheduler"), "EDF");
  EXPECT_EQ(flags.get_double_list("lambda"), (std::vector<double>{4.0, 5.0}));
}

TEST(Cli, SpaceSyntaxForStringAndList) {
  CliFlags flags;
  flags.add_string("journal", "", "");
  flags.add_double_list("c-hats", {}, "");
  const char* argv[] = {"prog", "--journal", "/tmp/j", "--c-hats", "1,2,3"};
  ASSERT_TRUE(flags.parse(5, const_cast<char**>(argv))) << flags.error();
  EXPECT_EQ(flags.get_string("journal"), "/tmp/j");
  EXPECT_EQ(flags.get_double_list("c-hats"),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Cli, EqualsValueMayContainEquals) {
  // Only the first '=' splits name from value.
  CliFlags flags;
  flags.add_string("define", "", "");
  const char* argv[] = {"prog", "--define=key=value"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_string("define"), "key=value");
}

TEST(Cli, BareBoolDoesNotConsumeNextFlag) {
  // --drain is bare boolean syntax: the following --rate=9 must still parse
  // as its own flag, not be swallowed as drain's value.
  CliFlags flags;
  flags.add_bool("drain", false, "");
  flags.add_double("rate", 1.0, "");
  const char* argv[] = {"prog", "--drain", "--rate=9"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv))) << flags.error();
  EXPECT_TRUE(flags.get_bool("drain"));
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 9.0);
}

TEST(Cli, RepeatedFlagLastOneWins) {
  CliFlags flags;
  flags.add_int("seed", 1, "");
  const char* argv[] = {"prog", "--seed=2", "--seed", "3"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("seed"), 3);
}

TEST(Cli, BadBoolValueIsError) {
  CliFlags flags;
  flags.add_bool("drain", false, "");
  const char* argv[] = {"prog", "--drain=yes"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(flags.error().find("bad value"), std::string::npos);
}

TEST(Cli, DefaultsSurviveNoArgs) {
  CliFlags flags;
  flags.add_double("x", 3.5, "");
  flags.add_string("name", "abc", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(flags.get_double("x"), 3.5);
  EXPECT_EQ(flags.get_string("name"), "abc");
}

TEST(Cli, UnknownFlagIsError) {
  CliFlags flags;
  flags.add_double("x", 0.0, "");
  const char* argv[] = {"prog", "--y=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_NE(flags.error().find("unknown"), std::string::npos);
}

TEST(Cli, MissingValueIsError) {
  CliFlags flags;
  flags.add_double("x", 0.0, "");
  const char* argv[] = {"prog", "--x"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, MalformedNumberIsError) {
  CliFlags flags;
  flags.add_double("x", 0.0, "");
  const char* argv[] = {"prog", "--x=abc"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, DoubleListParses) {
  CliFlags flags;
  flags.add_double_list("lambda", {1.0}, "");
  const char* argv[] = {"prog", "--lambda=4,5,6.5"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_double_list("lambda"),
            (std::vector<double>{4.0, 5.0, 6.5}));
}

TEST(Cli, HelpReturnsFalse) {
  CliFlags flags;
  flags.add_double("x", 0.0, "the x flag");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.error().empty());
}

TEST(Cli, UsageMentionsFlagsAndHelp) {
  CliFlags flags;
  flags.add_double("rate", 1.0, "arrival rate");
  auto usage = flags.usage("prog");
  EXPECT_NE(usage.find("--rate"), std::string::npos);
  EXPECT_NE(usage.find("arrival rate"), std::string::npos);
}

TEST(Cli, WrongTypeAccessThrows) {
  CliFlags flags;
  flags.add_double("x", 0.0, "");
  EXPECT_THROW(flags.get_int("x"), std::logic_error);
  EXPECT_THROW(flags.get_double("nope"), std::logic_error);
}

TEST(Cli, RequirePositiveRejectsZeroNegativeAndNonFinite) {
  CliFlags flags;
  flags.add_double("accel", 1.0, "");
  flags.add_int("max-in-flight", 1024, "");

  const char* bad_zero[] = {"prog", "--accel=0"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(bad_zero)));
  EXPECT_FALSE(flags.require_positive("accel"));
  EXPECT_NE(flags.error().find("--accel"), std::string::npos);

  const char* bad_neg[] = {"prog", "--max-in-flight=-3"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(bad_neg)));
  EXPECT_FALSE(flags.require_positive("max-in-flight"));
  EXPECT_NE(flags.error().find("--max-in-flight"), std::string::npos);

  const char* bad_inf[] = {"prog", "--accel=inf"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(bad_inf)));
  EXPECT_FALSE(flags.require_positive("accel"));

  const char* good[] = {"prog", "--accel=2.5", "--max-in-flight=1"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(good)));
  EXPECT_TRUE(flags.require_positive("accel"));
  EXPECT_TRUE(flags.require_positive("max-in-flight"));
}

TEST(Cli, RequireAtLeastValidatesIntLowerBound) {
  CliFlags flags;
  flags.add_int("trace-ring", 4096, "");
  const char* neg[] = {"prog", "--trace-ring=-1"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(neg)));
  EXPECT_FALSE(flags.require_at_least("trace-ring", 0));
  EXPECT_NE(flags.error().find("--trace-ring"), std::string::npos);

  const char* zero[] = {"prog", "--trace-ring=0"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(zero)));
  EXPECT_TRUE(flags.require_at_least("trace-ring", 0));
}

TEST(Cli, RequireHelpersRejectUnregisteredOrNonNumeric) {
  CliFlags flags;
  flags.add_string("name", "x", "");
  EXPECT_THROW(flags.require_positive("nope"), std::logic_error);
  EXPECT_THROW(flags.require_positive("name"), std::logic_error);
  EXPECT_THROW(flags.require_at_least("name", 0), std::logic_error);
}

TEST(ParseDoubleList, HandlesEmptyAndMalformed) {
  EXPECT_TRUE(parse_double_list("").empty());
  EXPECT_EQ(parse_double_list("1,2"), (std::vector<double>{1, 2}));
  EXPECT_THROW(parse_double_list("1,x"), std::invalid_argument);
}

// ---------------------------------------------------------------- CSV

class CsvRoundtrip : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "sjs_csv_test.csv")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvRoundtrip, SimpleRows) {
  {
    CsvWriter w(path_);
    w.write_row({"a", "b"});
    w.write_row({"1", "2"});
  }
  auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST_F(CsvRoundtrip, EscapedFields) {
  {
    CsvWriter w(path_);
    w.write_row({"with,comma", "with\"quote", "plain"});
  }
  auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "with,comma");
  EXPECT_EQ(rows[0][1], "with\"quote");
  EXPECT_EQ(rows[0][2], "plain");
}

TEST_F(CsvRoundtrip, QuotedNewlinesSurviveRoundTrip) {
  // Regression: csv_escape quotes fields containing '\n', but read_csv used
  // to parse line-at-a-time, splitting such a field into two rows and
  // carrying the broken quote state into the next line (the row after the
  // newline came back with its commas swallowed into one field).
  {
    CsvWriter w(path_);
    w.write_row({"a\nb", "x"});
    w.write_row({"multi\nline\nnote", "with,comma", "with\"quote"});
    w.write_row({"plain", "tail"});
  }
  auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\nb", "x"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"multi\nline\nnote",
                                               "with,comma", "with\"quote"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"plain", "tail"}));
}

TEST_F(CsvRoundtrip, CrlfTerminatorsAndMissingFinalNewline) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "a,b\r\n"      // CRLF-terminated row
        << "\"q\r\",c\r\n"  // CR *inside* quotes is field content
        << "last,row";    // no trailing newline at all
  }
  auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"q\r", "c"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"last", "row"}));
}

TEST_F(CsvRoundtrip, NumericRoundTrip) {
  {
    CsvWriter w(path_);
    w.write_row_numeric({0.1, 1e-17, 12345.6789});
  }
  auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), 0.1);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][1]), 1e-17);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][2]), 12345.6789);
}

TEST(Csv, EscapePassthroughForPlainFields) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

TEST(Csv, WriteToBadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

// ---------------------------------------------------------------- ASCII chart

TEST(AsciiChart, ContainsMarkersAndLegend) {
  AsciiSeries s;
  s.name = "series-one";
  s.marker = '@';
  for (int i = 0; i < 20; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  AsciiChartOptions opt;
  opt.title = "squares";
  auto chart = render_ascii_chart({s}, opt);
  EXPECT_NE(chart.find('@'), std::string::npos);
  EXPECT_NE(chart.find("series-one"), std::string::npos);
  EXPECT_NE(chart.find("squares"), std::string::npos);
}

TEST(AsciiChart, EmptySeriesSafe) {
  auto chart = render_ascii_chart({}, {});
  EXPECT_NE(chart.find("no data"), std::string::npos);
}

TEST(AsciiChart, SparklineLengthMatches) {
  auto spark = render_sparkline({1, 2, 3, 2, 1});
  EXPECT_FALSE(spark.empty());
  EXPECT_TRUE(render_sparkline({}).empty());
}

// ---------------------------------------------------------------- gnuplot

class GnuplotTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "sjs_gnuplot_test.gp")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }

  std::string read_all() {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
};

TEST_F(GnuplotTest, EmitsSeriesAndLabels) {
  GnuplotFigure figure;
  figure.title = "my title";
  figure.x_label = "time";
  figure.y_label = "value";
  figure.series = {{"data.csv", 1, 2, "V-Dover"},
                   {"data.csv", 1, 3, "Dover"}};
  write_gnuplot_script(figure, path_);
  auto script = read_all();
  EXPECT_NE(script.find("set title \"my title\""), std::string::npos);
  EXPECT_NE(script.find("using 1:2"), std::string::npos);
  EXPECT_NE(script.find("using 1:3"), std::string::npos);
  EXPECT_NE(script.find("title \"V-Dover\""), std::string::npos);
  EXPECT_EQ(script.find("set output"), std::string::npos);  // interactive
}

TEST_F(GnuplotTest, PngOutputAndEscaping) {
  GnuplotFigure figure;
  figure.title = "quote \" here";
  figure.output_png = "out.png";
  figure.series = {{"d.csv", 1, 2, "s"}};
  write_gnuplot_script(figure, path_);
  auto script = read_all();
  EXPECT_NE(script.find("set output \"out.png\""), std::string::npos);
  EXPECT_NE(script.find("quote \\\" here"), std::string::npos);
}

TEST(Gnuplot, BadPathThrows) {
  GnuplotFigure figure;
  EXPECT_THROW(write_gnuplot_script(figure, "/nonexistent/dir/x.gp"),
               std::runtime_error);
}

// ---------------------------------------------------------------- Logging

TEST(Logging, CheckThrowsWithMessage) {
  try {
    SJS_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
  }
}

TEST(Logging, CheckPassesSilently) {
  SJS_CHECK(1 + 1 == 2);  // must not throw
}

TEST(Logging, LevelGating) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace sjs
