// sched::ReadyQueue — the flat addressable heap every scheduler's ready
// queue runs on. The load-bearing property is the ordering contract: pop
// order must be EXACTLY the iteration order of the std::set<pair<double,
// JobId>> (or its greater<> twin) that the queue replaced, because the
// replay-digest gate freezes every schedule decision that order feeds. The
// differential tests drive the queue and an ordered-set reference model
// through the same randomized operation streams and compare observable
// behavior after every step.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sched/ready_queue.hpp"
#include "util/rng.hpp"

namespace sjs::sched {
namespace {

// Ordered-set reference model with the same API surface. kMinFirst mirrors
// std::set<pair<...>>, kMaxFirst mirrors std::set<pair<...>, greater<>>; a
// side map provides erase-by-id / key_of.
class ReferenceQueue {
 public:
  explicit ReferenceQueue(QueueOrder order) : order_(order) {}

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  bool contains(JobId id) const { return key_by_id_.count(id) > 0; }
  double key_of(JobId id) const { return key_by_id_.at(id); }

  std::pair<double, JobId> top() const {
    return order_ == QueueOrder::kMinFirst ? *entries_.begin()
                                           : *entries_.rbegin();
  }

  void push(double key, JobId id) {
    entries_.emplace(key, id);
    key_by_id_.emplace(id, key);
  }

  std::pair<double, JobId> pop() {
    const auto it = order_ == QueueOrder::kMinFirst
                        ? entries_.begin()
                        : std::prev(entries_.end());
    const auto entry = *it;
    entries_.erase(it);
    key_by_id_.erase(entry.second);
    return entry;
  }

  bool erase(JobId id) {
    const auto it = key_by_id_.find(id);
    if (it == key_by_id_.end()) return false;
    entries_.erase({it->second, id});
    key_by_id_.erase(it);
    return true;
  }

  void update_key(JobId id, double key) {
    erase(id);
    push(key, id);
  }

  /// Entries in the pop order the contract promises.
  std::vector<std::pair<double, JobId>> ordered() const {
    std::vector<std::pair<double, JobId>> out(entries_.begin(),
                                              entries_.end());
    if (order_ == QueueOrder::kMaxFirst) {
      return {out.rbegin(), out.rend()};
    }
    return out;
  }

 private:
  QueueOrder order_;
  std::set<std::pair<double, JobId>> entries_;
  std::map<JobId, double> key_by_id_;
};

void expect_same_ordered_view(const ReadyQueue& queue,
                              const ReferenceQueue& ref) {
  std::vector<std::pair<double, JobId>> got;
  queue.for_each_ordered([&](const ReadyQueue::Entry& e) {
    got.emplace_back(e.key, e.id);
  });
  EXPECT_EQ(got, ref.ordered());
}

// Interleaved push/pop/erase-by-id/update-key stream against the reference.
// Keys come from a small discrete pool so duplicate keys (the tie-break
// cases) occur constantly.
void run_differential(QueueOrder order, std::uint64_t seed) {
  constexpr JobId kIdBound = 64;
  Rng rng(seed);
  ReadyQueue queue(order);
  queue.reserve(static_cast<std::size_t>(kIdBound));
  ReferenceQueue ref(order);

  const auto random_key = [&] {
    // 8 distinct values => with up to 64 live ids, ties are the norm.
    return 0.25 * static_cast<double>(rng.uniform_int(0, 7));
  };

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    const JobId id = static_cast<JobId>(rng.uniform_int(0, kIdBound - 1));
    if (op < 4) {  // push a currently-absent id
      if (!ref.contains(id)) {
        const double key = random_key();
        queue.push(key, id);
        ref.push(key, id);
      }
    } else if (op < 6) {  // pop
      if (!ref.empty()) {
        const auto expected = ref.pop();
        const auto got = queue.pop();
        ASSERT_EQ(got.key, expected.first) << "step " << step;
        ASSERT_EQ(got.id, expected.second) << "step " << step;
      }
    } else if (op < 8) {  // erase by id (present or absent)
      ASSERT_EQ(queue.erase(id), ref.erase(id)) << "step " << step;
    } else {  // update-key of a present id
      if (ref.contains(id)) {
        const double key = random_key();
        queue.update_key(id, key);
        ref.update_key(id, key);
      }
    }

    ASSERT_EQ(queue.size(), ref.size()) << "step " << step;
    ASSERT_EQ(queue.contains(id), ref.contains(id)) << "step " << step;
    if (ref.contains(id)) {
      ASSERT_EQ(queue.key_of(id), ref.key_of(id)) << "step " << step;
    }
    if (!ref.empty()) {
      ASSERT_EQ(queue.top().key, ref.top().first) << "step " << step;
      ASSERT_EQ(queue.top().id, ref.top().second) << "step " << step;
    }
    if (step % 512 == 0) expect_same_ordered_view(queue, ref);
  }

  // Drain fully: the tail of the pop sequence is where a broken sift shows.
  while (!ref.empty()) {
    const auto expected = ref.pop();
    const auto got = queue.pop();
    ASSERT_EQ(got.key, expected.first);
    ASSERT_EQ(got.id, expected.second);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(ReadyQueueDifferential, MinFirstMatchesOrderedSet) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    run_differential(QueueOrder::kMinFirst, seed);
  }
}

TEST(ReadyQueueDifferential, MaxFirstMatchesGreaterOrderedSet) {
  for (std::uint64_t seed : {5u, 6u, 7u, 8u}) {
    run_differential(QueueOrder::kMaxFirst, seed);
  }
}

TEST(ReadyQueueTest, TieBreakIsExactlyThePairOrder) {
  // All keys equal: kMinFirst must pop ids ascending (set<pair<>> order),
  // kMaxFirst descending (set<pair<>, greater<>> order).
  ReadyQueue min_q(QueueOrder::kMinFirst);
  ReadyQueue max_q(QueueOrder::kMaxFirst);
  for (JobId id : {7, 2, 9, 0, 5}) {
    min_q.push(1.5, id);
    max_q.push(1.5, id);
  }
  for (JobId expected : {0, 2, 5, 7, 9}) {
    EXPECT_EQ(min_q.pop().id, expected);
  }
  for (JobId expected : {9, 7, 5, 2, 0}) {
    EXPECT_EQ(max_q.pop().id, expected);
  }
}

TEST(ReadyQueueTest, EraseByIdRemovesTheRightEntryUnderDuplicateKeys) {
  ReadyQueue queue(QueueOrder::kMinFirst);
  queue.push(1.0, 3);
  queue.push(1.0, 1);
  queue.push(1.0, 2);
  EXPECT_TRUE(queue.erase(1));
  EXPECT_FALSE(queue.erase(1));  // absent now: tolerated no-op
  EXPECT_FALSE(queue.contains(1));
  EXPECT_EQ(queue.pop().id, 2);
  EXPECT_EQ(queue.pop().id, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(ReadyQueueTest, UpdateKeyResifts) {
  ReadyQueue queue(QueueOrder::kMinFirst);
  queue.push(1.0, 0);
  queue.push(2.0, 1);
  queue.push(3.0, 2);
  queue.update_key(2, 0.5);  // up
  EXPECT_EQ(queue.top().id, 2);
  queue.update_key(2, 9.0);  // down
  EXPECT_EQ(queue.top().id, 0);
  EXPECT_EQ(queue.key_of(2), 9.0);
}

TEST(ReadyQueueTest, ClearKeepsStorageAndPeak) {
  ReadyQueue queue;
  queue.reserve(128);
  for (JobId id = 0; id < 100; ++id) {
    queue.push(static_cast<double>(id), id);
  }
  const std::uint64_t slots = queue.slots();
  EXPECT_EQ(queue.peak(), 100u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.peak(), 100u);  // lifetime high-water survives clear()
  EXPECT_EQ(queue.slots(), slots);
  // Storage really is reusable: refill without growing.
  for (JobId id = 0; id < 100; ++id) {
    queue.push(static_cast<double>(id), id);
  }
  EXPECT_EQ(queue.slots(), slots);
  EXPECT_EQ(queue.peak(), 100u);
}

TEST(ReadyQueueTest, PeakTracksHighWaterNotCurrentSize) {
  ReadyQueue queue;
  queue.push(1.0, 0);
  queue.push(2.0, 1);
  queue.push(3.0, 2);
  queue.pop();
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.peak(), 3u);
}

TEST(ReadyQueueTest, ForEachOrderedIsSafeAgainstSelfMutation) {
  // The V-Dover capacity-change path mutates the queue from inside the
  // ordered visit; the snapshot must keep iterating the pre-visit state.
  ReadyQueue queue(QueueOrder::kMinFirst);
  for (JobId id = 0; id < 8; ++id) {
    queue.push(static_cast<double>(id), id);
  }
  std::vector<JobId> visited;
  queue.for_each_ordered([&](const ReadyQueue::Entry& e) {
    visited.push_back(e.id);
    queue.erase(static_cast<JobId>((e.id + 1) % 8));
  });
  const std::vector<JobId> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(visited, expected);
}

}  // namespace
}  // namespace sjs::sched
