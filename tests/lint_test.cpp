// Tests for tools/sjs_lint: every rule must fire on its known-bad fixture
// (tests/lint_fixtures/), valid suppressions must silence diagnostics,
// malformed suppressions must themselves be diagnosed, and the real source
// tree must be clean.
//
// The linter is exercised end-to-end as a subprocess (the binary path and
// fixture root are injected by CMake), so the exit-code and output-format
// contracts are covered too.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult run_cmd(const std::string& cmd) {
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintResult result;
  std::array<char, 4096> buf{};
  while (pipe != nullptr && fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pipe != nullptr ? pclose(pipe) : -1;
  result.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return result;
}

LintResult run_lint(const std::string& args) {
  return run_cmd(std::string(SJS_LINT_BIN) + " " + args + " 2>/dev/null");
}

// Same as run_lint, but from `dir` so relative diagnostic paths match.
LintResult run_lint_in(const std::string& dir, const std::string& args) {
  return run_cmd("cd " + dir + " && " + SJS_LINT_BIN + " " + args +
                 " 2>/dev/null");
}

std::string fixture_args(const std::string& paths) {
  return std::string("--root ") + SJS_LINT_FIXTURES + " " + paths;
}

std::string fx(const std::string& rel) {
  return std::string(SJS_LINT_FIXTURES) + "/" + rel;
}

// Number of output lines naming `rule` within `file` (empty file = any).
int count_findings(const std::string& output, const std::string& rule,
                   const std::string& file = "") {
  int n = 0;
  std::size_t pos = 0;
  const std::string needle = "[" + rule + "]";
  while (true) {
    const std::size_t eol = output.find('\n', pos);
    const std::string line = output.substr(pos, eol - pos);
    if (line.find(needle) != std::string::npos &&
        (file.empty() || line.find(file) != std::string::npos)) {
      ++n;
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return n;
}

TEST(LintTest, UnorderedIterFiresOnRangeForAndBeginWalk) {
  const auto r = run_lint(fixture_args(fx("src/sched/bad_unordered.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "unordered-iter"), 2) << r.output;
}

TEST(LintTest, OrderedSetHotPathFiresOnDoubleKeyedSetsOnly) {
  const auto r = run_lint(fixture_args(fx("src/sched/bad_ordered_set.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // set<pair<double,..>> + multiset<double>; the unordered_set<double>, the
  // set<int>, and the suppressed member must all stay silent.
  EXPECT_EQ(count_findings(r.output, "ordered-set-hot-path"), 2) << r.output;
  EXPECT_NE(r.output.find("ReadyQueue"), std::string::npos) << r.output;
}

TEST(LintTest, BannedTimeFiresOnEverySource) {
  const auto r = run_lint(fixture_args(fx("src/sim/bad_time.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // std::rand, random_device, steady_clock::now, time(nullptr)
  EXPECT_EQ(count_findings(r.output, "banned-time"), 4) << r.output;
}

TEST(LintTest, BannedTimeCoversServeDirectory) {
  // The serving stack must take serve::Clock& everywhere; a stray direct
  // clock read in src/serve/ (system_clock::now + clock_gettime) is flagged.
  const auto r = run_lint(fixture_args(fx("src/serve/bad_time.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "banned-time", "serve/bad_time.cpp"), 2)
      << r.output;
}

TEST(LintTest, FloatEqFiresOnLiteralAndTimeNamedOperands) {
  const auto r = run_lint(fixture_args(fx("src/jobs/bad_float_eq.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "float-eq"), 2) << r.output;
}

TEST(LintTest, FloatTypeFires) {
  const auto r = run_lint(fixture_args(fx("src/sched/bad_float_type.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_GE(count_findings(r.output, "float-type"), 2) << r.output;
}

TEST(LintTest, TraceExhaustiveFiresOnUnhandledKind) {
  const auto r = run_lint(fixture_args(fx("src/obs/trace_event.hpp") + " " +
                                       fx("src/obs/exporters.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "trace-exhaustive"), 1) << r.output;
  EXPECT_NE(r.output.find("kGhost"), std::string::npos) << r.output;
}

TEST(LintTest, TraceExhaustiveNeedsBothFiles) {
  // With only the enum header in scope the rule cannot run — no findings.
  const auto r = run_lint(fixture_args(fx("src/obs/trace_event.hpp")));
  EXPECT_EQ(count_findings(r.output, "trace-exhaustive"), 0) << r.output;
}

TEST(LintTest, IncludeHygieneFiresOnRelativeBareIostreamAndUsingNamespace) {
  const auto r = run_lint(fixture_args(fx("src/util/bad_include.hpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "include-hygiene"), 4) << r.output;
}

TEST(LintTest, HeaderGuardFires) {
  const auto r = run_lint(fixture_args(fx("src/util/missing_guard.hpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "header-guard"), 1) << r.output;
}

TEST(LintTest, RawConcurrencyFiresInServeAndSupportsSuppression) {
  const auto r = run_lint(fixture_args(fx("src/serve/bad_thread.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // thread + lock_guard + mutex (same line) + mutex member + atomic member;
  // the suppressed atomic and the comment mention stay silent.
  EXPECT_EQ(count_findings(r.output, "raw-concurrency"), 5) << r.output;
  EXPECT_NE(r.output.find("conc::Channel"), std::string::npos) << r.output;
}

TEST(LintTest, RawConcurrencyCoversSchedDirectory) {
  const auto r = run_lint(fixture_args(fx("src/sched/bad_condvar.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(count_findings(r.output, "raw-concurrency"), 2) << r.output;
}

TEST(LintTest, RawConcurrencyCoversClusterDirectory) {
  const auto r = run_lint(fixture_args(fx("src/cluster/bad_thread.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // lock_guard + mutex (same line) + mutex member; the suppressed atomic
  // stays silent.
  EXPECT_EQ(count_findings(r.output, "raw-concurrency"), 3) << r.output;
}

TEST(LintTest, RawConcurrencyIgnoresConcDirectory) {
  // conc/ is where the primitives are supposed to live — no findings there.
  const auto r = run_lint(fixture_args(fx("src/conc/good_channel.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(count_findings(r.output, "raw-concurrency"), 0) << r.output;
}

TEST(LintTest, TimerWheelBypassFiresOnDirectTimerPushes) {
  const auto r = run_lint(fixture_args(fx("src/sim/bad_timer_push.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // push_back + emplace_back of a kTimer event; the non-timer push, the
  // push-free kTimer mention, and the suppressed push stay silent.
  EXPECT_EQ(count_findings(r.output, "timer-wheel-bypass"), 2) << r.output;
  EXPECT_NE(r.output.find("Engine::set_timer"), std::string::npos) << r.output;
}

TEST(LintTest, BadSuppressionFiresAndDoesNotSuppress) {
  const auto r = run_lint(fixture_args(fx("src/util/bad_suppression.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // One reason-less allow() + one unknown-rule allow().
  EXPECT_EQ(count_findings(r.output, "bad-suppression"), 2) << r.output;
  // A malformed allow() must not silence the underlying diagnostic.
  EXPECT_EQ(count_findings(r.output, "float-eq"), 2) << r.output;
}

TEST(LintTest, ValidSuppressionsSilenceDiagnostics) {
  const auto r = run_lint(fixture_args(fx("src/util/suppressed_ok.cpp")));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(LintTest, WholeFixtureTreeReportsEveryRule) {
  const auto r = run_lint(fixture_args(fx("src")));
  EXPECT_EQ(r.exit_code, 1);
  for (const char* rule :
       {"unordered-iter", "ordered-set-hot-path", "banned-time", "float-eq",
        "float-type", "trace-exhaustive", "include-hygiene", "header-guard",
        "raw-concurrency", "timer-wheel-bypass", "bad-suppression"}) {
    EXPECT_GE(count_findings(r.output, rule), 1) << rule << "\n" << r.output;
  }
}

TEST(LintTest, GithubFormatEmitsWorkflowAnnotations) {
  const auto r = run_lint("--format=github " +
                          fixture_args(fx("src/util/missing_guard.hpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("::error file="), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("title=sjs_lint header-guard"), std::string::npos)
      << r.output;
}

TEST(LintTest, ListRulesNamesAllRules) {
  const auto r = run_lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"unordered-iter", "ordered-set-hot-path", "banned-time", "float-eq",
        "float-type", "trace-exhaustive", "include-hygiene", "header-guard",
        "raw-concurrency", "timer-wheel-bypass", "transitive-banned-time",
        "alloc-in-hot-path", "channel-discipline", "include-cycle"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
  }
}

// --- cross-TU analyzer: the two-phase rewrite and the four graph rules ------

// The 11 pre-rewrite rules must produce byte-identical diagnostics on the
// fixture tree. tests/lint_fixtures/legacy_golden.txt was captured from the
// last single-pass build; this diff restricts the new analyzer's output to
// the legacy rule set and the files that golden covers (fixtures added for
// the graph rules are newer than the capture, so they are out of scope).
TEST(LintTest, GoldenDiffLegacyRulesUnchanged) {
  const std::string golden_path =
      std::string(SJS_LINT_FIXTURES) + "/legacy_golden.txt";
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in.is_open()) << golden_path;
  std::string golden, line;
  std::set<std::string> golden_files;
  while (std::getline(golden_in, line)) {
    golden += line + "\n";
    golden_files.insert(line.substr(0, line.find(':')));
  }
  ASSERT_FALSE(golden_files.empty());

  // Run from the fixture root so diagnostic paths match the capture.
  const auto r = run_lint_in(SJS_LINT_FIXTURES, "--root . src");
  EXPECT_EQ(r.exit_code, 1);
  static const std::set<std::string> legacy_rules = {
      "unordered-iter", "ordered-set-hot-path", "banned-time",  "float-eq",
      "float-type",     "trace-exhaustive",     "include-hygiene",
      "header-guard",   "raw-concurrency",      "timer-wheel-bypass",
      "bad-suppression"};
  std::string filtered;
  std::istringstream out(r.output);
  while (std::getline(out, line)) {
    const std::string file = line.substr(0, line.find(':'));
    const std::size_t open = line.find('[');
    const std::size_t close = line.find(']', open);
    if (open == std::string::npos || close == std::string::npos) continue;
    const std::string rule = line.substr(open + 1, close - open - 1);
    if (golden_files.count(file) && legacy_rules.count(rule)) {
      filtered += line + "\n";
    }
  }
  EXPECT_EQ(filtered, golden);
}

TEST(LintTest, TransitiveBannedTimeReportsCallChain) {
  const auto r = run_lint(fixture_args(fx("src/sim/bad_transitive_time.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // The direct read fires the per-file rule; the two unsuppressed callers
  // fire the transitive rule. The audited caller and everything above the
  // cut edge stay silent.
  EXPECT_EQ(count_findings(r.output, "banned-time"), 1) << r.output;
  EXPECT_EQ(count_findings(r.output, "transitive-banned-time"), 2) << r.output;
  EXPECT_NE(r.output.find("top_layer -> fixture::middle_layer -> "
                          "fixture::read_clock_directly"),
            std::string::npos)
      << r.output;
}

TEST(LintTest, ExplainPrintsChainNotes) {
  const auto r =
      run_lint("--explain=transitive-banned-time " +
               fixture_args(fx("src/sim/bad_transitive_time.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("note: fixture::read_clock_directly"),
            std::string::npos)
      << r.output;
}

TEST(LintTest, AllocInHotPathFiresOnlyOnReachableUnauditedSites) {
  const auto r = run_lint(fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // helper_allocates fires; the audited site, the cut cold edge, and the
  // unreachable function stay silent.
  EXPECT_EQ(count_findings(r.output, "alloc-in-hot-path"), 1) << r.output;
  EXPECT_NE(r.output.find("HotLoop::spin -> fixture::HotLoop::helper_allocates"),
            std::string::npos)
      << r.output;
}

TEST(LintTest, AllocReportListsSuppressedSitesToo) {
  const auto r = run_lint("--report=alloc " +
                          fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  // The report is a work-list, not a gate: exit 0, suppressed sites listed.
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("helper_allocates"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[suppressed]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("audited_alloc"), std::string::npos) << r.output;
}

TEST(LintTest, AllocReportMaxGatesOnTotalSiteCount) {
  // The fixture has at least one unaudited and one suppressed site, so
  // --max=0 must trip the ratchet (suppressions count — they are debt, not
  // absolution) while a generous budget passes.
  const auto over = run_lint("--report=alloc --max=0 " +
                             fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  EXPECT_EQ(over.exit_code, 1);
  const auto under = run_lint("--report=alloc --max=100 " +
                              fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  EXPECT_EQ(under.exit_code, 0) << under.output;
}

TEST(LintTest, AllocMaxWithoutReportIsUsageError) {
  const auto r =
      run_lint("--max=0 " + fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  EXPECT_EQ(r.exit_code, 2);
  const auto bad = run_lint("--report=alloc --max=nope " +
                            fixture_args(fx("src/sim/bad_hot_alloc.cpp")));
  EXPECT_EQ(bad.exit_code, 2);
}

TEST(LintTest, ChannelDisciplineFiresOnLeakyPathsOnly) {
  const auto r = run_lint(fixture_args(fx("src/conc/bad_reserve.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // leaky (return between reserve and commit) + never_resolves (no
  // resolution at all); disciplined and audited stay silent.
  EXPECT_EQ(count_findings(r.output, "channel-discipline"), 2) << r.output;
  EXPECT_NE(r.output.find("fixture::leaky"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("fixture::never_resolves"), std::string::npos)
      << r.output;
}

TEST(LintTest, IncludeCycleAnchorsAtSmallestModuleAndHonorsSuppression) {
  const auto r = run_lint(fixture_args(
      fx("src/sim/cycle_a.hpp") + " " + fx("src/sched/cycle_b.hpp") + " " +
      fx("src/jobs/cycle_c.hpp") + " " + fx("src/obs/cycle_d.hpp")));
  EXPECT_EQ(r.exit_code, 1);
  // sim <-> sched fires once, anchored at the sched side; jobs <-> obs is
  // suppressed at its anchor include.
  EXPECT_EQ(count_findings(r.output, "include-cycle"), 1) << r.output;
  EXPECT_EQ(count_findings(r.output, "include-cycle", "cycle_b.hpp"), 1)
      << r.output;
  EXPECT_NE(r.output.find("sched -> sim -> sched"), std::string::npos)
      << r.output;
}

TEST(LintTest, LexerHandlesRawStringsAndLineSplices) {
  const auto r = run_lint(fixture_args(fx("src/util/raw_strings.cpp")));
  EXPECT_EQ(r.exit_code, 1);
  // Every banned token lives inside a raw string, a spliced string, or a
  // spliced comment; only the sentinel float-eq after them may fire.
  EXPECT_EQ(count_findings(r.output, "banned-time"), 0) << r.output;
  EXPECT_EQ(count_findings(r.output, "raw-concurrency"), 0) << r.output;
  EXPECT_EQ(count_findings(r.output, "float-eq"), 1) << r.output;
}

TEST(LintTest, CacheReplayIsByteIdentical) {
  const std::string cache =
      ::testing::TempDir() + "/sjs_lint_cache_replay.txt";
  std::remove(cache.c_str());
  const std::string args = "--cache=" + cache + " " + fixture_args(fx("src"));
  const auto cold = run_lint(args);
  const auto warm = run_lint(args);
  EXPECT_EQ(cold.exit_code, 1);
  EXPECT_EQ(warm.exit_code, 1);
  EXPECT_EQ(cold.output, warm.output);
  std::ifstream written(cache);
  EXPECT_TRUE(written.is_open()) << cache;
}

// The acceptance gate: the real tree must lint clean — runtime sources, the
// tools (the analyzer lints itself), and bench/.
TEST(LintTest, RealSourceTreeIsClean) {
  const auto r = run_lint(std::string("--root ") + SJS_SOURCE_ROOT + " " +
                          SJS_SOURCE_ROOT + "/src " + SJS_SOURCE_ROOT +
                          "/tools " + SJS_SOURCE_ROOT + "/bench");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// The zero-allocation ratchet on the real tree: every hot-path-reachable
// allocation site has been converted to slab/pool access, moved to setup,
// or routed through the audited util:: helpers — and no suppression hides
// one. This is the static half of the guarantee; the runtime half is
// hotpath_test's AllocProbe ratchet at 0.
TEST(LintTest, RealSourceTreeHotPathIsAllocationFree) {
  const auto r = run_lint(std::string("--report=alloc --max=0 --root ") +
                          SJS_SOURCE_ROOT + " " + SJS_SOURCE_ROOT + "/src " +
                          SJS_SOURCE_ROOT + "/tools " + SJS_SOURCE_ROOT +
                          "/bench");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
