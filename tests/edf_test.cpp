// EDF scheduler tests, including the paper's Theorem 2: EDF achieves
// competitive ratio 1 for underloaded systems under time-varying capacity.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "sched/edf.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

sim::SimResult run_edf(const Instance& instance) {
  sched::EdfScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  return engine.run_to_completion();
}

TEST(Edf, RunsSingleJob) {
  Instance instance({make_job(0, 2, 5, 1)}, cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(Edf, PrefersEarlierDeadline) {
  // Job 1 (later release, earlier deadline) must preempt job 0.
  Instance instance(
      {make_job(0.0, 10.0, 20.0, 1.0), make_job(1.0, 2.0, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 1u);
  // Job 1 finishes at t=3 (1 unit of job 0 done first).
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 3.0);
}

TEST(Edf, NoPreemptionWhenRunningHasEarlierDeadline) {
  Instance instance(
      {make_job(0.0, 3.0, 4.0, 1.0), make_job(1.0, 3.0, 10.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(Edf, FeasibleSetFullyCompleted) {
  // Three jobs schedulable by EDF at rate 1.
  Instance instance({make_job(0, 1, 2, 1), make_job(0, 1, 3, 1),
                     make_job(0, 1, 4, 1)},
                    cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, 3u);
  EXPECT_DOUBLE_EQ(result.value_fraction(), 1.0);
}

TEST(Edf, OverloadDominoEffect) {
  // Classic overload: EDF chases the earliest deadline and finishes nothing.
  // Two unit-window jobs with big workloads back to back.
  Instance instance(
      {make_job(0.0, 2.0, 2.0, 10.0), make_job(1.0, 1.9, 2.9, 10.0)},
      cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  // Job 0 runs [0,2) but at t=1 job 1 arrives with later deadline (2.9), so
  // job 0 keeps running and completes; job 1 then cannot finish.
  // Now force the domino with an earlier-deadline latecomer:
  Instance domino(
      {make_job(0.0, 2.0, 2.05, 10.0), make_job(1.0, 1.0, 2.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto domino_result = run_edf(domino);
  // Job 1 (deadline 2.0) preempts at t=1, finishes at t=2; job 0 has 1 unit
  // left and only 0.05 time: EDF sacrificed a value-10 job for a value-1 job.
  EXPECT_DOUBLE_EQ(domino_result.completed_value, 1.0);
  EXPECT_EQ(result.completed_count + domino_result.completed_count, 2u);
}

TEST(Edf, VaryingCapacitySpeedsCompletion) {
  // Rate jumps to 35 at t=1: a 36-unit job with deadline 2 finishes exactly.
  Instance instance({make_job(0.0, 36.0, 2.0, 1.0)},
                    cap::CapacityProfile({0.0, 1.0}, {1.0, 35.0}));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(Edf, ExpiredQueuedJobPurged) {
  // Job 1 waits behind job 0 and expires in queue; EDF must continue cleanly.
  Instance instance(
      {make_job(0.0, 5.0, 6.0, 1.0), make_job(1.0, 1.0, 7.0, 1.0),
       make_job(2.0, 0.5, 3.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count + result.expired_count, 3u);
}

// --- Theorem 2: EDF is optimal (ratio 1) on underloaded varying-capacity
// systems. We build instances that are feasible by construction and check
// EDF captures every job.
class EdfTheorem2 : public ::testing::TestWithParam<int> {};

TEST_P(EdfTheorem2, CapturesEverythingWhenUnderloaded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  cap::TwoStateMarkovParams cp;
  cp.c_lo = 1.0;
  cp.c_hi = 35.0;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 25.0;
  auto profile = cap::sample_two_state_markov(cp, 120.0, rng);
  auto jobs = gen::generate_underloaded_jobs(profile, 100.0, 25, 0.85, rng);
  Instance instance(jobs, profile);
  ASSERT_TRUE(offline::edf_feasible(instance.jobs(), instance.capacity()));

  auto result = run_edf(instance);
  EXPECT_EQ(result.completed_count, instance.size());
  EXPECT_DOUBLE_EQ(result.value_fraction(), 1.0);
}

// EDF never beats the exact offline optimum, and matches it exactly when the
// instance is feasible.
TEST_P(EdfTheorem2, NeverExceedsOfflineOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  cap::TwoStateMarkovParams cp;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 5.0;
  cp.c_hi = 5.0;
  auto profile = cap::sample_two_state_markov(cp, 30.0, rng);
  auto jobs = gen::generate_small_random_jobs(9, 15.0, 7.0, 1.0, 3.0, rng);
  Instance instance(jobs, profile);

  auto result = run_edf(instance);
  auto exact = offline::exact_offline_value(instance);
  ASSERT_TRUE(exact.proved_optimal);
  EXPECT_LE(result.completed_value, exact.value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfTheorem2, ::testing::Range(0, 10));

}  // namespace
}  // namespace sjs
