// Tests for src/conc/: the bounded MPSC channel's full contract (capacity
// backpressure, two-phase reserve/commit/abort with reservation-order
// delivery, the close→drain state machine, poll(2) wakeup composition), the
// ShardSet lifecycle, and the pinned job→shard hash. The multi-producer
// stress cases are the ones the TSan CI config is aimed at.
#include <gtest/gtest.h>

#include <poll.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "conc/channel.hpp"
#include "conc/shard_hash.hpp"
#include "conc/shard_set.hpp"

namespace {

using sjs::conc::Channel;
using sjs::conc::PopStatus;
using sjs::conc::SendStatus;

bool wake_readable(int fd, int timeout_ms = 0) {
  pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) == 1 && (pfd.revents & POLLIN) != 0;
}

// ---------------------------------------------------------------------------
// Capacity and backpressure
// ---------------------------------------------------------------------------

TEST(ChannelTest, CapacityBoundsOutstandingMessages) {
  Channel<int> ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ch.try_send(i), SendStatus::kOk);
  EXPECT_EQ(ch.try_send(99), SendStatus::kFull);
  EXPECT_EQ(ch.size(), 4u);

  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 0);  // FIFO
  EXPECT_EQ(ch.try_send(4), SendStatus::kOk);  // slot freed
  for (int expect : {1, 2, 3, 4}) {
    EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
    EXPECT_EQ(v, expect);
  }
  EXPECT_EQ(ch.try_pop(v), PopStatus::kEmpty);  // open, not drained
}

TEST(ChannelTest, ReservationsCountAgainstCapacity) {
  Channel<int> ch(2);
  Channel<int>::Reservation r1;
  Channel<int>::Reservation r2;
  EXPECT_EQ(ch.reserve(r1), SendStatus::kOk);
  EXPECT_EQ(ch.reserve(r2), SendStatus::kOk);
  Channel<int>::Reservation r3;
  EXPECT_EQ(ch.reserve(r3), SendStatus::kFull);  // uncommitted still occupies
  ch.commit(r1, 10);
  ch.commit(r2, 20);
  EXPECT_EQ(ch.reserve(r3), SendStatus::kFull);  // still unconsumed
}

// ---------------------------------------------------------------------------
// Two-phase protocol: delivery in reservation order
// ---------------------------------------------------------------------------

TEST(ChannelTest, DeliveryFollowsReservationOrderNotCommitOrder) {
  Channel<int> ch(8);
  Channel<int>::Reservation first;
  Channel<int>::Reservation second;
  ASSERT_EQ(ch.reserve(first), SendStatus::kOk);
  ASSERT_EQ(ch.reserve(second), SendStatus::kOk);
  ch.commit(second, 2);  // later reservation commits first

  // The consumer must WAIT at the unresolved head, never reorder around it.
  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kEmpty);
  ch.commit(first, 1);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 2);
}

TEST(ChannelTest, AbortSkipsThePositionSilently) {
  Channel<int> ch(8);
  Channel<int>::Reservation aborted;
  Channel<int>::Reservation kept;
  ASSERT_EQ(ch.reserve(aborted), SendStatus::kOk);
  ASSERT_EQ(ch.reserve(kept), SendStatus::kOk);
  ch.commit(kept, 7);
  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kEmpty);  // head still reserved
  ch.abort(aborted);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);  // aborted slot skipped
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(aborted.valid);
  EXPECT_FALSE(kept.valid);
}

// ---------------------------------------------------------------------------
// Close / drain state machine
// ---------------------------------------------------------------------------

TEST(ChannelTest, CloseWhileFullKeepsEverythingDeliverable) {
  Channel<int> ch(3);
  for (int i = 0; i < 3; ++i) ASSERT_EQ(ch.try_send(i), SendStatus::kOk);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.drained());
  EXPECT_EQ(ch.try_send(99), SendStatus::kClosed);
  Channel<int>::Reservation r;
  EXPECT_EQ(ch.reserve(r), SendStatus::kClosed);

  int v = -1;
  for (int expect : {0, 1, 2}) {
    EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
    EXPECT_EQ(v, expect);
  }
  EXPECT_EQ(ch.try_pop(v), PopStatus::kDrained);
  EXPECT_TRUE(ch.drained());
}

TEST(ChannelTest, OutstandingReservationResolvesAfterClose) {
  Channel<int> ch(4);
  Channel<int>::Reservation r;
  ASSERT_EQ(ch.reserve(r), SendStatus::kOk);
  ch.close();  // refuses NEW reservations only
  ch.commit(r, 5);
  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
  EXPECT_EQ(v, 5);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kDrained);
}

TEST(ChannelTest, AbortAfterCloseDrains) {
  Channel<int> ch(4);
  Channel<int>::Reservation r;
  ASSERT_EQ(ch.reserve(r), SendStatus::kOk);
  ch.close();
  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kEmpty);  // unresolved reservation
  ch.abort(r);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kDrained);
}

TEST(ChannelTest, EmptyClosedChannelIsDrainedImmediately) {
  Channel<int> ch(4);
  ch.close();
  ch.close();  // idempotent
  int v = -1;
  EXPECT_EQ(ch.try_pop(v), PopStatus::kDrained);
  EXPECT_TRUE(ch.drained());
}

// ---------------------------------------------------------------------------
// Wakeup composition with poll(2)
// ---------------------------------------------------------------------------

TEST(ChannelTest, WakeFdSignalsOnCommitAndCoalesces) {
  Channel<int> ch(16);
  EXPECT_FALSE(wake_readable(ch.wake_fd()));
  for (int i = 0; i < 5; ++i) ASSERT_EQ(ch.try_send(i), SendStatus::kOk);
  EXPECT_TRUE(wake_readable(ch.wake_fd()));

  // Consumer protocol: drain wakeups FIRST, then pop until kEmpty.
  ch.drain_wakeups();
  EXPECT_FALSE(wake_readable(ch.wake_fd()));
  int v = -1;
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.try_pop(v), PopStatus::kOk);
  EXPECT_EQ(ch.try_pop(v), PopStatus::kEmpty);

  // The next commit re-signals even though earlier ones were coalesced.
  ASSERT_EQ(ch.try_send(42), SendStatus::kOk);
  EXPECT_TRUE(wake_readable(ch.wake_fd()));
}

TEST(ChannelTest, CloseSignalsTheConsumer) {
  Channel<int> ch(4);
  ch.drain_wakeups();
  ch.close();
  EXPECT_TRUE(wake_readable(ch.wake_fd()));  // a parked consumer must wake
}

// ---------------------------------------------------------------------------
// Multi-producer stress (the TSan targets)
// ---------------------------------------------------------------------------

TEST(ChannelTest, MultiProducerStressDeliversEverythingInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr std::uint32_t kPerProducer = 2000;
  Channel<std::uint64_t> ch(64);  // small: forces constant kFull backoff

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t msg =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (ch.try_send(msg) != SendStatus::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<std::uint32_t> next(kProducers, 0);
  std::uint64_t received = 0;
  const std::uint64_t total =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  std::uint64_t msg = 0;
  while (received < total) {
    const PopStatus st = ch.try_pop(msg);
    if (st != PopStatus::kOk) {
      if (wake_readable(ch.wake_fd(), 50)) ch.drain_wakeups();
      continue;
    }
    const auto p = static_cast<int>(msg >> 32);
    const auto i = static_cast<std::uint32_t>(msg & 0xffffffffu);
    ASSERT_EQ(i, next[p]) << "producer " << p << " reordered";
    ++next[p];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  ch.close();
  EXPECT_EQ(ch.try_pop(msg), PopStatus::kDrained);
}

TEST(ChannelTest, MultiProducerTwoPhaseStressKeepsReservationOrder) {
  constexpr int kProducers = 3;
  constexpr std::uint32_t kPerProducer = 500;
  Channel<std::uint64_t> ch(32);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        Channel<std::uint64_t>::Reservation res;
        while (ch.reserve(res) != SendStatus::kOk) {
          std::this_thread::yield();
        }
        if (i % 7 == 3) {  // some reservations abort instead of committing
          ch.abort(res);
          continue;
        }
        std::this_thread::yield();  // widen the reserve→commit window
        ch.commit(res, (static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }

  std::vector<std::uint32_t> last(kProducers, 0);
  std::vector<bool> seen(kProducers, false);
  std::uint64_t delivered = 0;
  std::uint64_t msg = 0;
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < kPerProducer; ++i) {
    if (i % 7 != 3) ++expected;
  }
  expected *= kProducers;
  while (delivered < expected) {
    const PopStatus st = ch.try_pop(msg);
    if (st != PopStatus::kOk) {
      if (wake_readable(ch.wake_fd(), 50)) ch.drain_wakeups();
      continue;
    }
    const auto p = static_cast<int>(msg >> 32);
    const auto i = static_cast<std::uint32_t>(msg & 0xffffffffu);
    if (seen[p]) {
      ASSERT_GT(i, last[p]) << "producer " << p << " reordered";
    }
    seen[p] = true;
    last[p] = i;
    ++delivered;
  }
  for (std::thread& t : producers) t.join();
}

// ---------------------------------------------------------------------------
// ShardSet lifecycle
// ---------------------------------------------------------------------------

TEST(ShardSetTest, RunsEveryBodyWithItsIndexAndJoinsInOrder) {
  constexpr std::size_t kShards = 4;
  std::vector<Channel<int>*> inputs;
  std::vector<std::unique_ptr<Channel<int>>> owned;
  std::vector<int> sums(kShards, 0);
  for (std::size_t k = 0; k < kShards; ++k) {
    owned.push_back(std::make_unique<Channel<int>>(8));
    inputs.push_back(owned.back().get());
  }

  sjs::conc::ShardSet shards;
  EXPECT_FALSE(shards.joined());
  shards.spawn(kShards, [&](std::size_t k) {
    int v = 0;
    while (true) {
      const PopStatus st = inputs[k]->try_pop(v);
      if (st == PopStatus::kOk) {
        sums[k] += v;
      } else if (st == PopStatus::kDrained) {
        return;
      } else if (wake_readable(inputs[k]->wake_fd(), 50)) {
        inputs[k]->drain_wakeups();
      }
    }
  });
  EXPECT_EQ(shards.size(), kShards);

  for (std::size_t k = 0; k < kShards; ++k) {
    for (int i = 1; i <= static_cast<int>(k) + 1; ++i) {
      ASSERT_EQ(inputs[k]->try_send(i), SendStatus::kOk);
    }
  }
  // The drain contract: close inputs in shard order, then join in order.
  for (std::size_t k = 0; k < kShards; ++k) inputs[k]->close();
  shards.join();
  EXPECT_TRUE(shards.joined());
  shards.join();  // idempotent

  for (std::size_t k = 0; k < kShards; ++k) {
    const int n = static_cast<int>(k) + 1;
    EXPECT_EQ(sums[k], n * (n + 1) / 2) << "shard " << k;
  }
}

// ---------------------------------------------------------------------------
// Shard hash: pinned golden values (format contract)
// ---------------------------------------------------------------------------

TEST(ShardHashTest, SplitMix64GoldenValues) {
  // Pinned: changing any of these is a format break for multi-shard journal
  // sets (the ticket→shard map would silently re-partition old sessions).
  EXPECT_EQ(sjs::conc::splitmix64(0), 16294208416658607535ULL);
  EXPECT_EQ(sjs::conc::splitmix64(1), 10451216379200822465ULL);
  EXPECT_EQ(sjs::conc::splitmix64(2), 10905525725756348110ULL);
  EXPECT_EQ(sjs::conc::splitmix64(3), 2092789425003139053ULL);
  EXPECT_EQ(sjs::conc::splitmix64(42), 13679457532755275413ULL);
  EXPECT_EQ(sjs::conc::splitmix64(1000000), 7497680628364559847ULL);
  EXPECT_EQ(sjs::conc::splitmix64(0xffffffffffffffffULL),
            16490336266968443936ULL);
}

TEST(ShardHashTest, ShardOfGoldenValues) {
  using sjs::conc::shard_of;
  EXPECT_EQ(shard_of(0, 4), 3u);
  EXPECT_EQ(shard_of(1, 4), 1u);
  EXPECT_EQ(shard_of(2, 4), 2u);
  EXPECT_EQ(shard_of(3, 4), 1u);
  EXPECT_EQ(shard_of(42, 4), 1u);
  EXPECT_EQ(shard_of(1000000, 4), 3u);
  EXPECT_EQ(shard_of(0, 7), 2u);
  EXPECT_EQ(shard_of(42, 7), 5u);
  // Degenerate planes route everything to shard 0.
  for (std::uint64_t t : {0ULL, 1ULL, 99ULL}) {
    EXPECT_EQ(shard_of(t, 1), 0u);
    EXPECT_EQ(shard_of(t, 0), 0u);
  }
}

TEST(ShardHashTest, ConsecutiveTicketsSpreadEvenly) {
  // The avalanche property the routing relies on: a dense ticket burst does
  // not stripe. 10k tickets over 4 shards, each within 5% of uniform.
  std::size_t counts[4] = {0, 0, 0, 0};
  for (std::uint64_t t = 0; t < 10000; ++t) {
    ++counts[sjs::conc::shard_of(t, 4)];
  }
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_GT(counts[k], 2100u) << "shard " << k;
    EXPECT_LT(counts[k], 2900u) << "shard " << k;
  }
}

}  // namespace
