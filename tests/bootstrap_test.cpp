// Bootstrap confidence-interval tests.
#include <gtest/gtest.h>

#include <numeric>

#include "stats/bootstrap.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

double mean_of(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

TEST(Bootstrap, PointEstimateIsExact) {
  std::vector<double> sample{1, 2, 3, 4, 5};
  auto interval = bootstrap_ci(sample, mean_of, 500, 0.95, 7);
  EXPECT_DOUBLE_EQ(interval.point, 3.0);
}

TEST(Bootstrap, IntervalBracketsPoint) {
  Rng rng(1);
  std::vector<double> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(rng.normal() + 10.0);
  auto interval = bootstrap_ci(sample, mean_of, 1000, 0.95, 7);
  EXPECT_LE(interval.lo, interval.point);
  EXPECT_GE(interval.hi, interval.point);
  // For n=200 standard normals around 10 the 95% CI is roughly ±0.14.
  EXPECT_NEAR(interval.hi - interval.lo, 0.28, 0.12);
}

TEST(Bootstrap, DeterministicInSeed) {
  std::vector<double> sample{1, 5, 2, 8, 3};
  auto a = bootstrap_ci(sample, mean_of, 300, 0.9, 42);
  auto b = bootstrap_ci(sample, mean_of, 300, 0.9, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, WiderConfidenceIsWiderInterval) {
  Rng rng(2);
  std::vector<double> sample;
  for (int i = 0; i < 100; ++i) sample.push_back(rng.uniform(0, 1));
  auto narrow = bootstrap_ci(sample, mean_of, 1000, 0.80, 7);
  auto wide = bootstrap_ci(sample, mean_of, 1000, 0.99, 7);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(Bootstrap, CoverageNearNominal) {
  // Repeat: CI for the mean of U[0,1] samples should cover 0.5 about 95%
  // of the time. With 60 trials, expect at least ~50 covers.
  int covered = 0;
  for (std::uint64_t trial = 0; trial < 60; ++trial) {
    Rng rng(trial + 100);
    std::vector<double> sample;
    for (int i = 0; i < 60; ++i) sample.push_back(rng.uniform(0, 1));
    auto interval = bootstrap_ci(sample, mean_of, 400, 0.95, trial);
    covered += (interval.lo <= 0.5 && 0.5 <= interval.hi);
  }
  EXPECT_GE(covered, 50);
}

TEST(Bootstrap, RejectsDegenerateInput) {
  EXPECT_THROW(bootstrap_ci({}, mean_of), CheckError);
  EXPECT_THROW(bootstrap_ci({1.0}, mean_of, 1), CheckError);
  EXPECT_THROW(bootstrap_ci({1.0}, mean_of, 100, 1.5), CheckError);
}

TEST(PairedBootstrap, GainOfPairedShiftIsTight) {
  // b = a + 2 exactly: the gain statistic has zero variance under paired
  // resampling, so the interval collapses onto the point.
  Rng rng(3);
  std::vector<double> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(rng.uniform(1, 2));
    b.push_back(a.back() + 2.0);
  }
  auto gain = [](const std::vector<double>& x, const std::vector<double>& y) {
    double mx = 0, my = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      mx += x[i];
      my += y[i];
    }
    return my / mx;
  };
  auto interval = paired_bootstrap_ci(a, b, gain, 500, 0.95, 7);
  EXPECT_GT(interval.point, 1.0);
  // Paired resampling preserves the +2 coupling, but the ratio of means
  // still varies a little with which rows are drawn.
  EXPECT_LT(interval.hi - interval.lo, 0.5);
  EXPECT_LE(interval.lo, interval.point);
  EXPECT_GE(interval.hi, interval.point);
}

TEST(PairedBootstrap, RejectsMismatchedSizes) {
  auto stat = [](const std::vector<double>&, const std::vector<double>&) {
    return 0.0;
  };
  EXPECT_THROW(paired_bootstrap_ci({1.0}, {1.0, 2.0}, stat), CheckError);
}

}  // namespace
}  // namespace sjs
