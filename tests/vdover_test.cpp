// V-Dover scheduler tests: each handler path of procedures B/C/D on
// hand-constructed scenarios, the Dover-mode differences, and the
// Theorem 3(2) competitive-ratio property against exact offline optima.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "sched/factory.hpp"
#include "sched/vdover.hpp"
#include "sim/engine.hpp"
#include "theory/ratios.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

struct RunOutput {
  sim::SimResult result;
  sched::VDoverStats stats;
  double beta;
};

RunOutput run_vdover(const Instance& instance,
                     sched::VDoverOptions options = {}) {
  sched::VDoverScheduler scheduler(options);
  sim::Engine engine(instance, scheduler);
  RunOutput out{engine.run_to_completion(), scheduler.stats(),
                scheduler.beta()};
  return out;
}

// ---------------------------------------------------------------- procedure B

TEST(VDover, IdleReleaseRunsImmediately) {
  Instance instance({make_job(0, 2, 5, 1)}, cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.result.completed_count, 1u);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 0u);
}

TEST(VDover, EdfPreemptionWithSufficientSlack) {
  // J0 (p=4, d=10) has claxity 6; J1 (p=2, d=5) arrives at t=1: earlier
  // deadline and tc=2 <= cSlack=6 -> EDF preemption into Qedf, both finish.
  Instance instance(
      {make_job(0.0, 4.0, 10.0, 1.0), make_job(1.0, 2.0, 5.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.result.completed_count, 2u);
  EXPECT_EQ(out.result.preemptions, 1u);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 0u);  // Qedf jobs carry no timer
  // J1 completes at t=3, J0 resumes and completes at t=6.
  EXPECT_DOUBLE_EQ(out.result.value_trace.times()[0], 3.0);
  EXPECT_DOUBLE_EQ(out.result.value_trace.times()[1], 6.0);
}

TEST(VDover, EarlierDeadlineButNoSlackGoesToQother) {
  // Zero-claxity running job leaves cSlack = 0: the arrival cannot EDF-
  // preempt even with an earlier deadline, raises 0cl immediately, and (low
  // value) becomes a supplement.
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 10.0), make_job(1.0, 1.0, 2.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 1u);
  EXPECT_EQ(out.stats.labeled_supplement, 1u);
  EXPECT_DOUBLE_EQ(out.result.completed_value, 10.0);  // J0 only
}

// ---------------------------------------------------------------- procedure D

TEST(VDover, UrgentValuableJobWinsZeroLaxityTest) {
  // J1's value (100) exceeds beta * privileged value (1): 0cl-scheduled,
  // preempting J0, which gets demoted and eventually supplements out.
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 1.0), make_job(1.0, 3.0, 4.0, 100.0)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.ocl_scheduled, 1u);
  EXPECT_DOUBLE_EQ(out.result.completed_value, 100.0);
  // The demoted J0 re-raises 0cl with negative laxity and supplements.
  EXPECT_EQ(out.stats.labeled_supplement, 1u);
  EXPECT_GE(out.stats.zero_laxity_interrupts, 2u);
}

TEST(VDover, UrgentLowValueJobBecomesSupplement) {
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 10.0), make_job(1.0, 3.0, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.ocl_scheduled, 0u);
  EXPECT_EQ(out.stats.labeled_supplement, 1u);
  EXPECT_DOUBLE_EQ(out.result.completed_value, 10.0);
}

// ---------------------------------------------------------------- procedure C
// and the supplement mechanism (V-Dover's difference (ii) from Dover)

TEST(VDover, SupplementCompletesWhenCapacityRises) {
  // J1 loses the 0cl test and supplements. After J0 finishes, J1 runs as a
  // supplement; capacity jumps to 35 at t=4.5 and saves it before d=5.
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 4.0), make_job(1.0, 4.0, 5.0, 4.4)},
      cap::CapacityProfile({0.0, 4.5}, {1.0, 35.0}));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.labeled_supplement, 1u);
  EXPECT_EQ(out.stats.supplement_dispatched, 1u);
  EXPECT_EQ(out.stats.supplement_completed, 1u);
  EXPECT_DOUBLE_EQ(out.result.completed_value, 8.4);
}

TEST(VDover, DoverAbandonsWhatVDoverSaves) {
  // Same instance, Dover mode (no supplement queue): the loser is abandoned
  // and its value lost even though capacity later allowed it.
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 4.0), make_job(1.0, 4.0, 5.0, 4.4)},
      cap::CapacityProfile({0.0, 4.5}, {1.0, 35.0}));
  sched::VDoverOptions dover;
  dover.use_supplement_queue = false;
  dover.capacity_estimate = 1.0;
  auto out = run_vdover(instance, dover);
  EXPECT_EQ(out.stats.abandoned, 1u);
  EXPECT_EQ(out.stats.supplement_dispatched, 0u);
  EXPECT_DOUBLE_EQ(out.result.completed_value, 4.0);
}

TEST(VDover, SupplementPreemptedByNewRegularArrival) {
  // J1 supplements, starts running after J0 completes, then J2 arrives and
  // must preempt it immediately (regular > supplement priority, B.13-15).
  Instance instance(
      {make_job(0.0, 2.0, 2.0, 1.0), make_job(0.5, 2.0, 2.5, 1.0),
       make_job(2.2, 1.0, 3.2, 1.0)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.supplement_dispatched, 1u);
  EXPECT_EQ(out.stats.supplement_completed, 0u);  // J1 expired at 2.5
  // J0 and J2 complete.
  EXPECT_EQ(out.result.completed_count, 2u);
  EXPECT_EQ(out.result.expired_count, 1u);
}

TEST(VDover, SupplementQueueIsLatestDeadlineFirst) {
  // Two supplements; the later-deadline one (J2, d=6) must be dispatched
  // first when the processor frees up — and only it can complete.
  Instance instance(
      {make_job(0.0, 3.0, 3.0, 10.0), make_job(0.5, 2.5, 3.0, 1.0),
       make_job(1.0, 2.0, 6.0, 1.0)},  // slack 3 after J0 ends at t=3
      cap::CapacityProfile(1.0));
  // J2 has claxity 6-1-2 = 3 > 0 at release... it would EDF-compare: d=6 >
  // d_curr=3 -> Qother, 0cl at 6-2 = 4 (after J0 ends). To keep the scenario
  // clean, check outcomes only.
  auto out = run_vdover(instance);
  // J0 completes (value 10); J1 supplements and expires; J2 completes
  // (either via C.10-12 as a regular from Qother, or as supplement).
  EXPECT_DOUBLE_EQ(out.result.completed_value, 11.0);
}

// ---------------------------------------------------------------- Dover mode

TEST(VDover, DoverUsesItsEstimateForLaxity) {
  // With c^ = 35 the arrival (earlier deadline, tiny tc) EDF-preempts even
  // though cSlack under c_lo would forbid it.
  Instance instance(
      {make_job(0.0, 4.0, 4.0, 1.0), make_job(1.0, 1.0, 3.9, 1.0)},
      cap::CapacityProfile({0.0, 1.0}, {1.0, 35.0}));
  sched::VDoverOptions dover;
  dover.use_supplement_queue = false;
  dover.capacity_estimate = 35.0;
  auto out = run_vdover(instance, dover);
  // At t=1 capacity really is 35: both finish comfortably.
  EXPECT_EQ(out.result.completed_count, 2u);
  EXPECT_EQ(out.result.preemptions, 1u);
}

TEST(VDover, NamesFollowConfiguration) {
  EXPECT_EQ(sched::VDoverScheduler(sched::VDoverOptions{}).name(), "V-Dover");
  sched::VDoverOptions dover;
  dover.use_supplement_queue = false;
  dover.capacity_estimate = 10.5;
  EXPECT_EQ(sched::VDoverScheduler(dover).name(), "Dover(c^=10.5)");
}

TEST(VDover, DefaultBetaIsTheoreticalOptimum) {
  Instance instance({make_job(0, 1, 35, 1)},
                    cap::CapacityProfile({0.0, 1.0}, {1.0, 35.0}));
  auto out = run_vdover(instance);
  EXPECT_DOUBLE_EQ(out.beta, theory::optimal_beta(7.0, 35.0));

  sched::VDoverOptions dover;
  dover.use_supplement_queue = false;
  dover.capacity_estimate = 1.0;
  auto dover_out = run_vdover(instance, dover);
  EXPECT_DOUBLE_EQ(dover_out.beta, theory::dover_beta(7.0));
}

TEST(VDover, ExplicitBetaRespected) {
  Instance instance({make_job(0, 1, 2, 1)}, cap::CapacityProfile(1.0));
  sched::VDoverOptions options;
  options.beta = 3.25;
  auto out = run_vdover(instance, options);
  EXPECT_DOUBLE_EQ(out.beta, 3.25);
}

TEST(VDover, ConstantCapacityFallsBackToDoverBeta) {
  Instance instance({make_job(0, 1, 2, 1)}, cap::CapacityProfile(2.0));
  auto out = run_vdover(instance);
  EXPECT_DOUBLE_EQ(out.beta, theory::dover_beta(7.0));
}

// V-Dover "reduces to Dover under constant capacity" (paper Sec. IV
// discussion of Fig. 1(a)): with c(t) ≡ c_lo the conservative estimate is
// exact, a supplement job's negative conservative laxity is its true
// laxity, so supplements can never complete — the two algorithms collect
// identical value (given the same β).
TEST(VDover, ReducesToDoverAtConstantCapacity) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 6000);
    gen::JobGenParams jp;
    jp.lambda = 3.0;  // overloaded at rate 1
    jp.horizon = 60.0;
    auto jobs = gen::generate_jobs(jp, rng);
    Instance instance(jobs, cap::CapacityProfile(1.0));

    sched::VDoverOptions vd_options;
    vd_options.beta = 3.0;
    auto vd = run_vdover(instance, vd_options);

    sched::VDoverOptions dover_options;
    dover_options.use_supplement_queue = false;
    dover_options.capacity_estimate = 1.0;
    dover_options.beta = 3.0;
    auto dover = run_vdover(instance, dover_options);

    EXPECT_NEAR(vd.result.completed_value, dover.result.completed_value,
                1e-9)
        << "seed " << seed;
    EXPECT_EQ(vd.stats.supplement_completed, 0u) << "seed " << seed;
  }
}

// Exact cSlack chain arithmetic: a three-deep EDF preemption nest whose
// completion instants are fully determined by handlers B and C.
TEST(VDover, CslackChainCompletionTimesExact) {
  Instance instance(
      {make_job(0.0, 10.0, 20.0, 10.0),   // J0: claxity 10 at start
       make_job(2.0, 4.0, 10.0, 4.0),     // J1 preempts (cSlack 10 >= 4)
       make_job(3.0, 2.0, 6.0, 2.0)},     // J2 preempts (cSlack 4 >= 2)
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.result.completed_count, 3u);
  EXPECT_EQ(out.result.preemptions, 2u);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 0u);
  const auto& times = out.result.value_trace.times();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);   // J2: [3,5)
  EXPECT_DOUBLE_EQ(times[1], 8.0);   // J1: [2,3) + [5,8)
  EXPECT_DOUBLE_EQ(times[2], 16.0);  // J0: [0,2) + [8,16)
}

// cSlack exhaustion: after the chain above, one more earlier-deadline
// arrival with tc exceeding the remaining budget must NOT be EDF-admitted.
TEST(VDover, CslackExhaustionForcesQother) {
  Instance instance(
      {make_job(0.0, 10.0, 20.0, 10.0),
       make_job(2.0, 4.0, 10.0, 4.0),
       make_job(3.0, 2.0, 6.0, 2.0),
       // At t=3.5, cSlack = 1 (set by J2's claxity cap); tc = 1.4 > 1 and
       // the value (1.5) is below beta * privileged — so J3 must join
       // Qother and supplement out rather than preempt.
       make_job(3.5, 1.4, 5.2, 1.5)},
      cap::CapacityProfile(1.0));
  auto out = run_vdover(instance);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 1u);
  EXPECT_EQ(out.stats.labeled_supplement, 1u);
  // The original chain is untouched.
  EXPECT_DOUBLE_EQ(out.result.completed_value, 16.0);
}

// ---------------------------------------------------------------- adaptive

TEST(VDoverAdaptive, SeededEstimateEnablesEdfAdmission) {
  // Constant rate 35 inside a declared band [1, 35]. The adaptive estimate
  // seeds from the observed rate, so the earlier-deadline arrival passes
  // the EDF admission test (tc = p/35) and both jobs finish; the
  // conservative-at-1 Dover parks it in Qother, the 0cl value test fails
  // (v = 1 <= beta * 1), and the job is abandoned.
  auto jobs = [] {
    return std::vector<Job>{make_job(0.0, 35.0, 2.0, 1.0),
                            make_job(0.1, 3.5, 1.0, 1.0)};
  };
  Instance instance(jobs(), cap::CapacityProfile(35.0), 1.0, 35.0);

  sched::VDoverOptions adaptive;
  adaptive.use_supplement_queue = false;
  adaptive.adaptive_estimate = true;
  adaptive.ewma_alpha = 1.0;
  auto smart = run_vdover(instance, adaptive);
  EXPECT_EQ(smart.result.completed_count, 2u);

  sched::VDoverOptions conservative;
  conservative.use_supplement_queue = false;
  conservative.capacity_estimate = 1.0;
  auto dumb = run_vdover(instance, conservative);
  EXPECT_EQ(dumb.result.completed_count, 1u);
  EXPECT_EQ(dumb.stats.abandoned, 1u);
}

TEST(VDoverAdaptive, ReArmsZeroLaxityTimersOnCapacityChange) {
  // J1 waits in Qother with a 0cl instant computed at estimate 35
  // (d − p/35 ≈ 31.9). When the rate collapses to 1 at t=5 the adaptive
  // estimate drops and the re-armed timer fires at d − p/1 = 29 — while the
  // big job is still running — so the low-value J1 is *abandoned* there.
  // With the stale estimate the interrupt would never fire before C
  // schedules J1 normally, and nothing would be abandoned.
  Instance instance(
      {make_job(0.0, 200.0, 31.0, 10.0), make_job(0.5, 3.0, 32.0, 1.0)},
      cap::CapacityProfile({0.0, 5.0}, {35.0, 1.0}), 1.0, 35.0);
  sched::VDoverOptions options;
  options.use_supplement_queue = false;
  options.adaptive_estimate = true;
  options.ewma_alpha = 1.0;
  auto out = run_vdover(instance, options);
  EXPECT_EQ(out.stats.abandoned, 1u);
  EXPECT_EQ(out.stats.zero_laxity_interrupts, 1u);
}

TEST(VDoverAdaptive, NameAndFactory) {
  EXPECT_EQ(sched::make_dover_ewma().name, "Dover-EWMA");
  sched::VDoverOptions options;
  options.adaptive_estimate = true;
  EXPECT_EQ(sched::VDoverScheduler(options).name(), "V-Dover-EWMA");
}

TEST(VDoverAdaptive, SurvivesPaperWorkload) {
  Rng rng(31);
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 200.0;
  auto instance = gen::generate_paper_instance(setup, rng);
  auto factory = sched::make_dover_ewma();
  auto scheduler = factory.make();
  sim::Engine engine(instance, *scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count + result.expired_count, instance.size());
}

// ------------------------------------------------------------- timer hygiene

TEST(VDoverTimers, ExpiryAtExactTimerInstantLeavesNoDanglingHandle) {
  // J1's workload is so small (1e-17 < ulp(4.0)/2) that its 0cl instant
  // d − p/c_est rounds to exactly its deadline: the expiry event and the 0cl
  // timer event land on the same timestamp. Expiry sorts first (event type
  // 1 < 4), so on_expire runs with the timer event still pending in the
  // heap — the old handler left ocl_timer_ pointing at it, a dangling
  // handle once the engine swallowed the fire. The fixed handler
  // cancel-and-clears; the swallowed event must then be a stale
  // generation-checked no-op, never a resurrected slab slot (SJS_CHECK in
  // the engine) and never a zero-laxity interrupt.
  //
  // J0 runs with zero conservative slack (p = d at rate 1), so J1's
  // earlier deadline cannot EDF-preempt (tc = 1e-17 > cSlack = 0) and it
  // waits in Qother until it dies.
  Instance instance(
      {make_job(0.0, 20.0, 20.0, 100.0), make_job(1.0, 1e-17, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  sched::VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();

  EXPECT_EQ(result.completed_count, 1u);  // J0, exactly at its deadline
  EXPECT_EQ(result.expired_count, 1u);    // J1 dies queued at t = 4.0
  EXPECT_EQ(scheduler.stats().zero_laxity_interrupts, 0u)
      << "the dead job's timer fired as a live interrupt";
  EXPECT_EQ(engine.live_timer_count(), 0u)
      << "expiry path leaked an armed timer slot";
  EXPECT_EQ(engine.dead_event_count(), 0u);
}

TEST(VDoverTimers, QueuedExpiryNeverFiresStaleInterrupt) {
  // Broader sweep of the same hazard: a batch of tiny-workload jobs with
  // staggered deadlines all expire while queued behind a zero-slack hog.
  // Every expiry cancels a pending timer; none may come back as an
  // interrupt, and the slab must drain completely.
  std::vector<Job> jobs{make_job(0.0, 50.0, 50.0, 1000.0)};
  for (int i = 1; i <= 8; ++i) {
    jobs.push_back(
        make_job(1.0, 1e-17, 4.0 + static_cast<double>(i), 1.0));
  }
  Instance instance(std::move(jobs), cap::CapacityProfile(1.0));
  sched::VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.expired_count, 8u);
  EXPECT_EQ(scheduler.stats().zero_laxity_interrupts, 0u);
  EXPECT_EQ(engine.live_timer_count(), 0u);
  EXPECT_EQ(engine.dead_event_count(), 0u);
}

// ---------------------------------------------------------------- properties

// Theorem 3(2): on individually admissible instances V-Dover's value is at
// least the competitive ratio times the exact offline optimum — and never
// more than the optimum itself.
class VDoverCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(VDoverCompetitive, WithinTheoremThreeBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  cap::TwoStateMarkovParams cp;
  cp.c_lo = 1.0;
  cp.c_hi = 5.0;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 4.0;
  auto profile = cap::sample_two_state_markov(cp, 40.0, rng);
  // Dense small instance: overloaded with high probability, all admissible.
  auto jobs = gen::generate_small_random_jobs(10, 8.0, 7.0, 1.0, 2.0, rng);
  Instance instance(jobs, profile, 1.0, 5.0);
  ASSERT_TRUE(instance.all_individually_admissible());

  auto exact = offline::exact_offline_value(instance);
  ASSERT_TRUE(exact.proved_optimal);
  auto out = run_vdover(instance);

  EXPECT_LE(out.result.completed_value, exact.value + 1e-9);
  const double ratio = theory::vdover_competitive_ratio(
      std::max(1.0, instance.importance_ratio()), instance.delta());
  EXPECT_GE(out.result.completed_value, ratio * exact.value - 1e-9)
      << "V-Dover fell below the Theorem 3(2) guarantee";
}

TEST_P(VDoverCompetitive, StatsAreInternallyConsistent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 120.0;  // small but busy
  auto instance = gen::generate_paper_instance(setup, rng);
  sched::VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  const auto& stats = scheduler.stats();

  EXPECT_EQ(stats.zero_laxity_interrupts,
            stats.ocl_scheduled + stats.labeled_supplement);
  EXPECT_LE(stats.supplement_dispatched, stats.labeled_supplement);
  EXPECT_LE(stats.supplement_completed, stats.supplement_dispatched);
  EXPECT_EQ(stats.abandoned, 0u);  // V-Dover never abandons
  EXPECT_EQ(result.completed_count + result.expired_count, instance.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VDoverCompetitive, ::testing::Range(0, 10));

}  // namespace
}  // namespace sjs
