// Tests for the fleet capacity scenarios (src/capacity/scenario.hpp) and the
// cluster fleet model's path sampling (src/cluster/fleet.hpp): fixed-seed
// goldens (the deterministic-RNG seam pins every sampled path bit-for-bit),
// CTMC stationarity of the diurnal base chain, exact-k correlated outages,
// and the scale_profile building block.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "capacity/scenario.hpp"
#include "cluster/fleet.hpp"
#include "util/rng.hpp"

namespace {

using sjs::Rng;
using sjs::cap::CapacityProfile;
using sjs::cap::FleetEventInfo;
using sjs::cap::ScenarioKind;
using sjs::cap::TwoStateMarkovParams;

TwoStateMarkovParams paper_base() {
  TwoStateMarkovParams base;
  base.c_lo = 1.0;
  base.c_hi = 35.0;
  base.mean_sojourn_lo = 6.0;
  base.mean_sojourn_hi = 14.0;
  base.p_start_hi = 0.7;
  return base;
}

/// A degenerate CTMC pinned at a constant rate: both states collapse to
/// `rate`, so correlated-event factor paths are exactly visible.
TwoStateMarkovParams constant_base(double rate) {
  TwoStateMarkovParams base;
  base.c_lo = rate;
  base.c_hi = rate;
  return base;
}

TEST(ScenarioTest, NamesRoundTrip) {
  for (const ScenarioKind kind : sjs::cap::all_scenarios()) {
    ScenarioKind parsed{};
    ASSERT_TRUE(sjs::cap::parse_scenario(sjs::cap::scenario_name(kind),
                                         &parsed));
    EXPECT_EQ(parsed, kind);
  }
  ScenarioKind ignored{};
  EXPECT_FALSE(sjs::cap::parse_scenario("full-moon", &ignored));
  EXPECT_EQ(sjs::cap::all_scenarios().size(), 4u);
}

TEST(ScenarioTest, DiurnalFixedSeedGolden) {
  // The deterministic RNG seam makes the sampled path a stable artifact:
  // these values only change if the draw order or the modulation arithmetic
  // changes, which is exactly what this golden is guarding.
  Rng rng(123, 0);
  const CapacityProfile p =
      sjs::cap::sample_diurnal_ctmc(paper_base(), sjs::cap::DiurnalParams{},
                                    100.0, rng);
  ASSERT_EQ(p.breakpoints().size(), 17u);
  EXPECT_DOUBLE_EQ(p.breakpoints()[0], 0.0);
  EXPECT_DOUBLE_EQ(p.rates()[0], 25.855133175232634);
  EXPECT_DOUBLE_EQ(p.breakpoints()[1], 6.5972787228618097);
  EXPECT_DOUBLE_EQ(p.rates()[1], 1.0);
  EXPECT_DOUBLE_EQ(p.breakpoints()[2], 9.3228450054797811);
  EXPECT_DOUBLE_EQ(p.rates()[2], 28.849366186229805);
  EXPECT_DOUBLE_EQ(p.rate(50.0), 34.912737586012867);
}

TEST(ScenarioTest, DiurnalStaysInsideBandAndActuallyModulates) {
  const TwoStateMarkovParams base = paper_base();
  Rng rng(99, 5);
  const CapacityProfile p =
      sjs::cap::sample_diurnal_ctmc(base, sjs::cap::DiurnalParams{}, 400.0,
                                    rng);
  std::size_t distinct_high = 0;
  for (const double r : p.rates()) {
    EXPECT_GE(r, base.c_lo);
    EXPECT_LE(r, base.c_hi);
    if (r > base.c_lo && r < base.c_hi) ++distinct_high;
  }
  // The sinusoid grid subdivides high sojourns, so strictly interior rates
  // must appear — a plain two-state chain would only ever emit the extremes.
  EXPECT_GT(distinct_high, 4u);
}

TEST(ScenarioTest, DiurnalHighStateStationaryFraction) {
  // The modulation never touches *when* the chain is high, only how high:
  // the time-weighted fraction of rates above c_lo must match the CTMC's
  // stationary high-state probability hi/(lo+hi) = 14/20 = 0.7.
  const TwoStateMarkovParams base = paper_base();
  const double horizon = 40000.0;
  double high_time = 0.0;
  Rng rng(2024, 0);
  const CapacityProfile p = sjs::cap::sample_diurnal_ctmc(
      base, sjs::cap::DiurnalParams{}, horizon, rng);
  const auto& times = p.breakpoints();
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double end = i + 1 < times.size() ? times[i + 1] : horizon;
    if (end <= times[i]) continue;
    if (p.rates()[i] > base.c_lo) high_time += end - times[i];
  }
  EXPECT_NEAR(high_time / horizon, 0.7, 0.05);
}

TEST(ScenarioTest, ScaleProfileMergesBreakpointsAndMultiplies) {
  const CapacityProfile base = sjs::cap::square_wave(2.0, 8.0, 5.0, 5.0, 30.0);
  const CapacityProfile scaled =
      sjs::cap::scale_profile(base, {0.0, 7.5, 12.0}, {1.0, 0.5, 2.0});
  // Sample on both sides of every breakpoint of both operands.
  for (const double t : {0.0, 4.9, 5.1, 7.4, 7.6, 9.9, 10.1, 11.9, 12.1,
                         14.9, 15.1, 29.0}) {
    double factor = 1.0;
    if (t >= 12.0) {
      factor = 2.0;
    } else if (t >= 7.5) {
      factor = 0.5;
    }
    EXPECT_DOUBLE_EQ(scaled.rate(t), base.rate(t) * factor) << "t=" << t;
  }
}

TEST(ScenarioTest, FlashCrowdCollapsesAndRecoversTheWholeFleet) {
  const double horizon = 200.0;
  const std::vector<TwoStateMarkovParams> bases(3, constant_base(10.0));
  sjs::cap::FlashCrowdParams params;
  Rng rng(31, 2);
  FleetEventInfo info;
  const auto paths =
      sjs::cap::sample_flash_crowd_fleet(bases, params, horizon, rng, &info);
  ASSERT_EQ(paths.size(), 3u);
  // Shared epoch inside the configured window; everyone is affected.
  EXPECT_GE(info.event_time, params.epoch_fraction_lo * horizon);
  EXPECT_LE(info.event_time, params.epoch_fraction_hi * horizon);
  EXPECT_DOUBLE_EQ(info.event_end, info.event_time +
                                       params.collapse_duration +
                                       params.recovery_duration);
  EXPECT_EQ(info.affected.size(), 3u);
  for (const auto& p : paths) {
    // Before the epoch and after full recovery: the untouched base rate.
    EXPECT_DOUBLE_EQ(p.rate(info.event_time * 0.5), 10.0);
    EXPECT_DOUBLE_EQ(p.rate(info.event_end + 1.0), 10.0);
    // During the collapse: the shared factor, exactly.
    EXPECT_DOUBLE_EQ(p.rate(info.event_time + 1.0),
                     10.0 * params.collapse_fraction);
    // The staircase recovers monotonically and never hits zero.
    double prev = 0.0;
    for (std::size_t s = 0; s < params.recovery_steps; ++s) {
      const double t = info.event_time + params.collapse_duration +
                       (static_cast<double>(s) + 0.5) *
                           params.recovery_duration /
                           static_cast<double>(params.recovery_steps);
      const double r = p.rate(t);
      EXPECT_GT(r, prev);
      EXPECT_LE(r, 10.0);
      prev = r;
    }
    EXPECT_GT(p.min_rate(), 0.0);
  }
}

TEST(ScenarioTest, OutageHitsExactlyKServers) {
  const double horizon = 200.0;
  const std::vector<TwoStateMarkovParams> bases(6, constant_base(10.0));
  sjs::cap::CorrelatedOutageParams params;
  params.failures = 2;
  std::set<std::vector<std::size_t>> seen_subsets;
  for (std::uint64_t run = 0; run < 20; ++run) {
    Rng rng(55, run);
    FleetEventInfo info;
    const auto paths = sjs::cap::sample_correlated_outage_fleet(
        bases, params, horizon, rng, &info);
    ASSERT_EQ(paths.size(), 6u);
    ASSERT_EQ(info.affected.size(), 2u) << "run " << run;
    EXPECT_TRUE(std::is_sorted(info.affected.begin(), info.affected.end()));
    EXPECT_NE(info.affected[0], info.affected[1]);
    EXPECT_LT(info.affected[1], 6u);
    seen_subsets.insert(info.affected);
    for (std::size_t s = 0; s < paths.size(); ++s) {
      const bool hit = std::find(info.affected.begin(), info.affected.end(),
                                 s) != info.affected.end();
      const double during = paths[s].rate(info.event_time + 1.0);
      const double before = paths[s].rate(info.event_time * 0.5);
      const double after = paths[s].rate(info.event_end + 1.0);
      EXPECT_DOUBLE_EQ(before, 10.0);
      EXPECT_DOUBLE_EQ(after, 10.0);
      if (hit) {
        EXPECT_DOUBLE_EQ(during, 10.0 * params.floor_fraction);
      } else {
        EXPECT_DOUBLE_EQ(during, 10.0);
      }
    }
  }
  // The failing subset is drawn, not fixed: different seeds hit different
  // machine pairs.
  EXPECT_GT(seen_subsets.size(), 1u);
}

TEST(ScenarioTest, OutageFixedSeedGolden) {
  sjs::cluster::Fleet fleet = sjs::cluster::Fleet::heterogeneous(6);
  sjs::cluster::ScenarioConfig config;
  config.kind = ScenarioKind::kCorrelatedOutage;
  config.outage.failures = 2;
  Rng rng(7, 3);
  FleetEventInfo info;
  const auto paths = fleet.sample_paths(config, 200.0, rng, &info);
  ASSERT_EQ(paths.size(), 6u);
  EXPECT_DOUBLE_EQ(info.event_time, 60.847729048369089);
  EXPECT_DOUBLE_EQ(info.event_end, 85.847729048369089);
  ASSERT_EQ(info.affected.size(), 2u);
  EXPECT_EQ(info.affected[0], 0u);
  EXPECT_EQ(info.affected[1], 3u);
}

TEST(ScenarioTest, SameSeedSameFleetAcrossAllScenarios) {
  sjs::cluster::Fleet fleet = sjs::cluster::Fleet::heterogeneous(4);
  for (const ScenarioKind kind : sjs::cap::all_scenarios()) {
    sjs::cluster::ScenarioConfig config;
    config.kind = kind;
    Rng rng_a(42, 7);
    Rng rng_b(42, 7);
    const auto a = fleet.sample_paths(config, 150.0, rng_a);
    const auto b = fleet.sample_paths(config, 150.0, rng_b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      ASSERT_EQ(a[s].breakpoints(), b[s].breakpoints())
          << sjs::cap::scenario_name(kind) << " server " << s;
      ASSERT_EQ(a[s].rates(), b[s].rates())
          << sjs::cap::scenario_name(kind) << " server " << s;
      EXPECT_GT(a[s].min_rate(), 0.0);
    }
  }
}

}  // namespace
