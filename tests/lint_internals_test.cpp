// White-box tests for the sjs_lint analyzer library (tools/lint/): the
// lexer's comment/string blanking, the declaration indexer's goldens over a
// mini-project, name-resolved call-graph construction, taint propagation
// depth, and content-hash cache invalidation. The CLI-level contracts
// (diagnostic text, exit codes, suppressions) live in lint_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/call_graph.hpp"
#include "lint/index.hpp"
#include "lint/source.hpp"

namespace fs = std::filesystem;
using namespace sjs::lint;

namespace {

std::vector<std::string> lines(std::initializer_list<const char*> ls) {
  return {ls.begin(), ls.end()};
}

SourceFile load_fixture(const std::string& rel) {
  const fs::path root = SJS_LINT_FIXTURES;
  auto file = load_file(root / rel, root);
  EXPECT_TRUE(file.has_value()) << rel;
  return std::move(*file);
}

const FunctionDef* find_func(const FileIndex& idx, const std::string& name) {
  for (const FunctionDef& fn : idx.funcs) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

// --- lexer ------------------------------------------------------------------

TEST(LintLexer, BlanksMultiLineRawStringBodies) {
  const auto code = strip_comments(lines({
      "const char* s = R\"(",
      "  std::rand() // not a comment",
      ")\";",
      "int after = 1;",
  }));
  EXPECT_EQ(code[1].find("rand"), std::string::npos) << code[1];
  EXPECT_NE(code[3].find("after"), std::string::npos) << code[3];
}

TEST(LintLexer, RawStringDelimiterMustMatch) {
  const auto code = strip_comments(lines({
      "const char* s = R\"sep( body with )\" inside )sep\";",
      "int after = 2;",
  }));
  // The embedded )" must not close the literal early.
  EXPECT_EQ(code[0].find("inside"), std::string::npos) << code[0];
  EXPECT_NE(code[1].find("after"), std::string::npos) << code[1];
}

TEST(LintLexer, LineSpliceContinuesLineComment) {
  const auto code = strip_comments(lines({
      "// comment spliced \\",
      "std::random_device still_comment;",
      "int after = 3;",
  }));
  EXPECT_EQ(code[1].find("random_device"), std::string::npos) << code[1];
  EXPECT_NE(code[2].find("after"), std::string::npos) << code[2];
}

TEST(LintLexer, LineSpliceContinuesStringLiteral) {
  const auto code = strip_comments(lines({
      "const char* s = \"first half \\",
      "time(nullptr) second half\";",
      "int after = 4;",
  }));
  EXPECT_EQ(code[1].find("time("), std::string::npos) << code[1];
  EXPECT_NE(code[2].find("after"), std::string::npos) << code[2];
}

TEST(LintLexer, ColumnsArePreservedByBlanking) {
  const auto code = strip_comments(lines({
      "int x = 1; /* mid */ int y = 2;",
  }));
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code[0].size(), std::string("int x = 1; /* mid */ int y = 2;").size());
  EXPECT_EQ(code[0].find("int y"), 21u) << code[0];
}

// --- indexer goldens over the mini-project ----------------------------------

TEST(LintIndexer, QualifiedNamesAndBodyRanges) {
  const SourceFile file = load_fixture("graph/engine.cpp");
  const FileIndex idx = build_index(file);

  const FunctionDef* step = find_func(idx, "step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->qualified, "mini::Engine::step");
  EXPECT_EQ(step->line, 16u);
  EXPECT_EQ(step->body_begin, 16u);
  EXPECT_EQ(step->body_end, 20u);

  const FunctionDef* helper = find_func(idx, "helper");
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->qualified, "mini::Engine::helper");
  ASSERT_EQ(helper->allocs.size(), 1u);
  EXPECT_EQ(helper->allocs[0].what, "push_back");
}

TEST(LintIndexer, CallSitesRecordWrittenQualifiers) {
  const SourceFile file = load_fixture("graph/engine.cpp");
  const FileIndex idx = build_index(file);
  const FunctionDef* step = find_func(idx, "step");
  ASSERT_NE(step, nullptr);

  bool saw_qualified_tick = false, saw_helper = false, saw_free_fn = false;
  for (const CallSite& call : step->calls) {
    if (call.name == "tick") {
      saw_qualified_tick = call.qual == "Engine::tick";
    }
    if (call.name == "helper") saw_helper = true;
    if (call.name == "free_fn") saw_free_fn = true;
  }
  EXPECT_TRUE(saw_qualified_tick);
  EXPECT_TRUE(saw_helper);
  EXPECT_TRUE(saw_free_fn);
}

TEST(LintIndexer, BannedReadsAreBodyFacts) {
  const SourceFile file = load_fixture("graph/util.cpp");
  const FileIndex idx = build_index(file);
  const FunctionDef* wall = find_func(idx, "wall_now");
  ASSERT_NE(wall, nullptr);
  ASSERT_EQ(wall->banned.size(), 1u);
  EXPECT_EQ(wall->banned[0].what, "std::chrono::*_clock::now");

  const FunctionDef* alloc = find_func(idx, "free_fn");
  ASSERT_NE(alloc, nullptr);
  ASSERT_EQ(alloc->allocs.size(), 1u);
  EXPECT_EQ(alloc->allocs[0].what, "new");
}

// --- call graph -------------------------------------------------------------

TEST(LintCallGraph, ResolvesCrossFileCallsByName) {
  std::vector<FileIndex> indices = {
      build_index(load_fixture("graph/engine.cpp")),
      build_index(load_fixture("graph/util.cpp")),
  };
  const CallGraph g = build_call_graph(indices);

  const auto& steps = g.named("step");
  ASSERT_EQ(steps.size(), 1u);
  const auto& frees = g.named("free_fn");
  ASSERT_EQ(frees.size(), 1u);

  bool step_calls_free_fn = false;
  for (const std::size_t e : g.out[steps[0]]) {
    if (g.edges[e].callee == frees[0]) step_calls_free_fn = true;
  }
  EXPECT_TRUE(step_calls_free_fn);
}

TEST(LintCallGraph, ForwardPropagationReachesTransitiveCallees) {
  std::vector<FileIndex> indices = {
      build_index(load_fixture("graph/engine.cpp")),
      build_index(load_fixture("graph/util.cpp")),
  };
  const CallGraph g = build_call_graph(indices);
  const auto& steps = g.named("step");
  ASSERT_EQ(steps.size(), 1u);

  const Reachability r = propagate(g, {steps[0]}, /*forward=*/true,
                                   [](std::size_t) { return false; });
  for (const char* name : {"helper", "tick", "free_fn"}) {
    const auto& ids = g.named(name);
    ASSERT_EQ(ids.size(), 1u) << name;
    EXPECT_TRUE(r.reached[ids[0]]) << name;
  }
  // wall_now is never called: unreachable.
  const auto& walls = g.named("wall_now");
  ASSERT_EQ(walls.size(), 1u);
  EXPECT_FALSE(r.reached[walls[0]]);
}

TEST(LintCallGraph, ThreeDeepTaintChainIsReconstructed) {
  // The CLI-visible behavior of this fixture is covered in lint_test.cpp;
  // here the chain itself is asserted through the library.
  AnalyzerOptions options;
  options.root = SJS_LINT_FIXTURES;
  options.inputs = {fs::path(SJS_LINT_FIXTURES) /
                    "src/sim/bad_transitive_time.cpp"};
  const AnalyzerResult result = run_analyzer(options);

  const Diagnostic* top = nullptr;
  for (const Diagnostic& d : result.diags) {
    if (d.rule == "transitive-banned-time" &&
        d.message.find("'fixture::middle_layer'") != std::string::npos) {
      top = &d;
    }
  }
  ASSERT_NE(top, nullptr);
  // Chain notes: top_layer -> middle_layer -> read_clock_directly.
  ASSERT_EQ(top->chain.size(), 3u);
  EXPECT_NE(top->chain[0].find("top_layer"), std::string::npos);
  EXPECT_NE(top->chain[1].find("middle_layer"), std::string::npos);
  EXPECT_NE(top->chain[2].find("read_clock_directly"), std::string::npos);
}

// --- cache ------------------------------------------------------------------

class LintCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "sjs_lint_cache_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "src" / "util");
    cache_ = dir_ / "index.cache";
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_source(const std::string& body) {
    std::ofstream out(dir_ / "src" / "util" / "probe.cpp", std::ios::trunc);
    out << body;
  }

  AnalyzerResult analyze() {
    AnalyzerOptions options;
    options.root = dir_;
    options.inputs = {dir_ / "src"};
    options.cache_path = cache_;
    return run_analyzer(options);
  }

  fs::path dir_;
  fs::path cache_;
};

TEST_F(LintCacheTest, SecondRunHitsAndReplaysIdenticalDiagnostics) {
  write_source("bool f(double x) { return x == 0.5; }\n");
  const AnalyzerResult cold = analyze();
  EXPECT_EQ(cold.cache_hits, 0u);
  ASSERT_EQ(cold.diags.size(), 1u);
  EXPECT_EQ(cold.diags[0].rule, "float-eq");

  const AnalyzerResult warm = analyze();
  EXPECT_EQ(warm.cache_hits, 1u);
  ASSERT_EQ(warm.diags.size(), 1u);
  EXPECT_EQ(warm.diags[0].rule, cold.diags[0].rule);
  EXPECT_EQ(warm.diags[0].line, cold.diags[0].line);
  EXPECT_EQ(warm.diags[0].col, cold.diags[0].col);
  EXPECT_EQ(warm.diags[0].message, cold.diags[0].message);
}

TEST_F(LintCacheTest, EditInvalidatesByContentHash) {
  write_source("bool f(double x) { return x == 0.5; }\n");
  analyze();

  // Fix the finding; the cached (stale) entry must not replay.
  write_source("bool f(double x) { return x < 0.5; }\n");
  const AnalyzerResult fixed = analyze();
  EXPECT_EQ(fixed.cache_hits, 0u);
  EXPECT_TRUE(fixed.diags.empty());

  // Reintroduce a different finding at a different line.
  write_source("\nfloat g() { return 0; }\n");
  const AnalyzerResult changed = analyze();
  EXPECT_EQ(changed.cache_hits, 0u);
  ASSERT_EQ(changed.diags.size(), 1u);
  EXPECT_EQ(changed.diags[0].rule, "float-type");
  EXPECT_EQ(changed.diags[0].line, 2u);
}

TEST_F(LintCacheTest, CorruptCacheIsIgnoredNotFatal) {
  write_source("bool f(double x) { return x == 0.5; }\n");
  {
    std::ofstream out(cache_, std::ios::trunc);
    out << "not a cache file\n\x1f\x1fgarbage\n";
  }
  const AnalyzerResult result = analyze();
  EXPECT_EQ(result.cache_hits, 0u);
  ASSERT_EQ(result.diags.size(), 1u);
  EXPECT_EQ(result.diags[0].rule, "float-eq");
}

}  // namespace
