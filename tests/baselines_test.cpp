// FIFO and greedy (HVF / HVDF) baseline scheduler tests, plus the factory.
#include <gtest/gtest.h>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "sched/factory.hpp"
#include "sched/fifo.hpp"
#include "sched/greedy.hpp"
#include "sim/engine.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

template <typename SchedulerT, typename... Args>
sim::SimResult run_with(const Instance& instance, Args&&... args) {
  SchedulerT scheduler(std::forward<Args>(args)...);
  sim::Engine engine(instance, scheduler);
  return engine.run_to_completion();
}

// ---------------------------------------------------------------- FIFO

TEST(Fifo, RunsInReleaseOrder) {
  Instance instance(
      {make_job(0.0, 2.0, 10.0, 1.0), make_job(1.0, 2.0, 3.5, 5.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::FifoScheduler>(instance);
  // FIFO refuses to preempt: job 1 (tight deadline) waits and fails.
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 1.0);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(Fifo, NeverPreempts) {
  Instance instance(
      {make_job(0.0, 5.0, 20.0, 1.0), make_job(1.0, 1.0, 3.0, 100.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::FifoScheduler>(instance);
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_DOUBLE_EQ(result.completed_value, 1.0);  // the jackpot is lost
}

TEST(Fifo, SkipsExpiredQueueEntries) {
  Instance instance(
      {make_job(0.0, 4.0, 10.0, 1.0), make_job(1.0, 1.0, 2.0, 1.0),
       make_job(2.0, 1.0, 20.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::FifoScheduler>(instance);
  EXPECT_EQ(result.completed_count, 2u);  // jobs 0 and 2
  EXPECT_EQ(result.expired_count, 1u);
}

TEST(Fifo, DrainsQueueAfterIdleGap) {
  Instance instance(
      {make_job(0.0, 1.0, 5.0, 1.0), make_job(10.0, 1.0, 15.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::FifoScheduler>(instance);
  EXPECT_EQ(result.completed_count, 2u);
}

// ---------------------------------------------------------------- Greedy

TEST(Greedy, HvfPrefersAbsoluteValue) {
  // Job 1 has the higher value but lower density — HVF must still run it.
  Instance instance(
      {make_job(0.0, 1.0, 2.0, 5.0), make_job(0.0, 10.0, 12.0, 8.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::GreedyScheduler>(instance,
                                                 sched::GreedyKey::kValue);
  // HVF runs job 1 (v=8) for its whole window; job 0 (v=5) expires.
  EXPECT_DOUBLE_EQ(result.completed_value, 8.0);
}

TEST(Greedy, HvdfPrefersDensity) {
  Instance instance(
      {make_job(0.0, 1.0, 2.0, 5.0), make_job(0.0, 10.0, 12.0, 8.0)},
      cap::CapacityProfile(1.0));
  auto result = run_with<sched::GreedyScheduler>(
      instance, sched::GreedyKey::kValueDensity);
  // HVDF runs job 0 (density 5) first, then job 1 still fits ([1,11] in a
  // 12-deadline window): both complete.
  EXPECT_DOUBLE_EQ(result.completed_value, 13.0);
}

TEST(Greedy, PreemptsForHigherValueArrival) {
  Instance instance(
      {make_job(0.0, 5.0, 20.0, 1.0), make_job(1.0, 1.0, 3.0, 100.0)},
      cap::CapacityProfile(1.0));
  auto result =
      run_with<sched::GreedyScheduler>(instance, sched::GreedyKey::kValue);
  EXPECT_EQ(result.preemptions, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 101.0);
}

TEST(Greedy, NamesDiffer) {
  EXPECT_EQ(sched::GreedyScheduler(sched::GreedyKey::kValue).name(), "HVF");
  EXPECT_EQ(sched::GreedyScheduler(sched::GreedyKey::kValueDensity).name(),
            "HVDF");
}

// ---------------------------------------------------------------- NP-EDF

TEST(NpEdf, NeverPreempts) {
  Instance instance(
      {make_job(0.0, 5.0, 20.0, 1.0), make_job(1.0, 1.0, 2.5, 100.0)},
      cap::CapacityProfile(1.0));
  auto factory = sched::make_np_edf();
  auto scheduler = factory.make();
  sim::Engine engine(instance, *scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.preemptions, 0u);
  // The urgent valuable job dies waiting — the cost of non-preemption.
  EXPECT_DOUBLE_EQ(result.completed_value, 1.0);
}

TEST(NpEdf, PicksEarliestDeadlineAtDispatchBoundaries) {
  Instance instance(
      {make_job(0.0, 1.0, 10.0, 1.0), make_job(0.5, 1.0, 9.0, 1.0),
       make_job(0.6, 1.0, 3.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto factory = sched::make_np_edf();
  auto scheduler = factory.make();
  sim::Engine engine(instance, *scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 3u);
  // After job 0 finishes at t=1, job 2 (deadline 3) runs before job 1.
  EXPECT_DOUBLE_EQ(result.value_trace.times()[1], 2.0);
}

TEST(NpEdf, MatchesEdfWhenNoPreemptionNeeded) {
  // Strictly sequential windows: preemptive and non-preemptive EDF coincide.
  Instance instance(
      {make_job(0.0, 1.0, 2.0, 1.0), make_job(2.0, 1.0, 4.0, 2.0)},
      cap::CapacityProfile(1.0));
  auto np = sched::make_np_edf().make();
  sim::Engine engine_np(instance, *np);
  auto np_result = engine_np.run_to_completion();
  auto p = sched::make_edf().make();
  sim::Engine engine_p(instance, *p);
  auto p_result = engine_p.run_to_completion();
  EXPECT_DOUBLE_EQ(np_result.completed_value, p_result.completed_value);
}

// ---------------------------------------------------------------- factory

TEST(Factory, PaperLineupLayout) {
  auto lineup = sched::paper_lineup({1.0, 10.5, 24.5, 35.0});
  ASSERT_EQ(lineup.size(), 5u);
  EXPECT_EQ(lineup[0].name, "Dover(c^=1)");
  EXPECT_EQ(lineup[3].name, "Dover(c^=35)");
  EXPECT_EQ(lineup[4].name, "V-Dover");
}

TEST(Factory, ExtendedLineupAppendsBaselines) {
  auto lineup = sched::extended_lineup({1.0});
  ASSERT_EQ(lineup.size(), 9u);
  EXPECT_EQ(lineup[1].name, "V-Dover");
  EXPECT_EQ(lineup[2].name, "EDF");
  EXPECT_EQ(lineup[3].name, "EDF-AC");
  EXPECT_EQ(lineup.back().name, "SRPT");
}

TEST(Factory, FactoriesProduceFreshSchedulers) {
  auto factory = sched::make_edf();
  auto a = factory.make();
  auto b = factory.make();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), "EDF");
}

TEST(Factory, EachFactoryRunsACompleteSimulation) {
  Instance instance(
      {make_job(0.0, 1.0, 3.0, 1.0), make_job(0.5, 1.0, 4.0, 2.0)},
      cap::CapacityProfile({0.0, 2.0}, {1.0, 3.0}));
  for (const auto& factory : sched::extended_lineup({1.0, 35.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    EXPECT_EQ(result.completed_count + result.expired_count, 2u)
        << factory.name;
    EXPECT_GE(result.completed_value, 0.0) << factory.name;
  }
}

}  // namespace
}  // namespace sjs
