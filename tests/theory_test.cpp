// Tests for the competitive-ratio formulas (Theorems 1 & 3) and the
// Theorem 3(3) adversary construction — including verifying the pair's
// claimed offline optima with the exact solver and demonstrating the
// ratio -> 0 decay for concrete online algorithms.
#include <gtest/gtest.h>

#include <cmath>

#include "offline/exact.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "theory/adversary.hpp"
#include "theory/ratios.hpp"
#include "util/logging.hpp"

namespace sjs::theory {
namespace {

// ---------------------------------------------------------------- formulas

TEST(Ratios, FKnownValue) {
  // f(k, δ) = 2δ + 2 + log(δk)/log(δ/(δ−1)); δ = 2, k = 1:
  // 4 + 2 + log(2)/log(2) = 7.
  EXPECT_NEAR(f_k_delta(1.0, 2.0), 7.0, 1e-12);
}

TEST(Ratios, FPaperParameters) {
  // The paper's simulation: k = 7, δ = 35.
  const double expected =
      2.0 * 35.0 + 2.0 + std::log(35.0 * 7.0) / std::log(35.0 / 34.0);
  EXPECT_NEAR(f_k_delta(7.0, 35.0), expected, 1e-9);
  EXPECT_GT(f_k_delta(7.0, 35.0), 72.0);  // the log term is positive
}

TEST(Ratios, FMonotoneInDeltaForLargeDelta) {
  // For moderate-to-large δ the 2δ term dominates.
  EXPECT_LT(f_k_delta(7.0, 5.0), f_k_delta(7.0, 20.0));
  EXPECT_LT(f_k_delta(7.0, 20.0), f_k_delta(7.0, 100.0));
}

TEST(Ratios, FMonotoneInK) {
  EXPECT_LT(f_k_delta(2.0, 5.0), f_k_delta(20.0, 5.0));
}

TEST(Ratios, FRejectsInvalidDomain) {
  EXPECT_THROW(f_k_delta(0.5, 2.0), CheckError);
  EXPECT_THROW(f_k_delta(2.0, 1.0), CheckError);   // δ must exceed 1
  EXPECT_THROW(f_k_delta(2.0, 0.5), CheckError);
}

TEST(Ratios, VDoverRatioInUnitInterval) {
  for (double k : {1.0, 2.0, 7.0, 100.0}) {
    for (double delta : {1.5, 2.0, 35.0}) {
      const double r = vdover_competitive_ratio(k, delta);
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1.0);
    }
  }
}

TEST(Ratios, AchievableBelowUpperBound) {
  // Theorem 3: achievable ratio (claim 2) <= upper bound (claim 1).
  for (double k : {1.0, 7.0, 50.0}) {
    for (double delta : {1.2, 5.0, 35.0}) {
      EXPECT_LE(vdover_competitive_ratio(k, delta), overload_upper_bound(k));
    }
  }
}

TEST(Ratios, UpperBoundKnownValues) {
  EXPECT_NEAR(overload_upper_bound(1.0), 0.25, 1e-12);       // 1/(1+1)²
  EXPECT_NEAR(overload_upper_bound(4.0), 1.0 / 9.0, 1e-12);  // 1/(1+2)²
}

TEST(Ratios, AsymptoticOptimality) {
  // Theorem 3 remark: achievable/upper -> 1 as k -> ∞ for fixed δ.
  const double delta = 5.0;
  double previous = 0.0;
  for (double k : {1e2, 1e4, 1e6, 1e8}) {
    const double quotient =
        vdover_competitive_ratio(k, delta) / overload_upper_bound(k);
    EXPECT_GT(quotient, previous);  // improves monotonically along this sweep
    previous = quotient;
  }
  EXPECT_GT(previous, 0.99);  // essentially optimal by k = 1e8
}

TEST(Ratios, OptimalBetaExceedsOne) {
  for (double k : {1.0, 7.0, 100.0}) {
    for (double delta : {1.5, 35.0}) {
      EXPECT_GT(optimal_beta(k, delta), 1.0);
    }
  }
}

TEST(Ratios, OptimalBetaFormula) {
  const double k = 7.0, delta = 35.0;
  EXPECT_NEAR(optimal_beta(k, delta),
              1.0 + std::sqrt(k / f_k_delta(k, delta)), 1e-12);
}

TEST(Ratios, DoverBetaFormula) {
  EXPECT_NEAR(dover_beta(4.0), 3.0, 1e-12);
  EXPECT_NEAR(dover_beta(7.0), 1.0 + std::sqrt(7.0), 1e-12);
}

TEST(Ratios, MultiplierIsReciprocalOfRatio) {
  const double k = 7.0, delta = 35.0;
  EXPECT_NEAR(offline_value_multiplier(k, delta) *
                  vdover_competitive_ratio(k, delta),
              1.0, 1e-12);
}

// ---------------------------------------------------------------- adversary

TEST(Adversary, JackpotViolatesAdmissibilityFillersDoNot) {
  AdversaryParams params;
  params.n = 5;
  auto pair = make_adversary_pair(params);
  // Job ids are reassigned after release-sorting; the jackpot is the unique
  // inadmissible job.
  auto bad = pair.high.inadmissible_jobs();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_DOUBLE_EQ(pair.high.job(bad[0]).workload, params.c_hi);
  EXPECT_EQ(pair.low.inadmissible_jobs().size(), 1u);
}

TEST(Adversary, BothPathsShareJobsAndBand) {
  auto pair = make_adversary_pair({});
  ASSERT_EQ(pair.high.size(), pair.low.size());
  for (std::size_t i = 0; i < pair.high.size(); ++i) {
    EXPECT_EQ(pair.high.jobs()[i], pair.low.jobs()[i]);
  }
  EXPECT_DOUBLE_EQ(pair.high.c_lo(), pair.low.c_lo());
  EXPECT_DOUBLE_EQ(pair.high.c_hi(), pair.low.c_hi());
}

TEST(Adversary, ClaimedOfflineValuesMatchExactSolver) {
  AdversaryParams params;
  params.n = 4;
  params.c_hi = 6.0;
  auto pair = make_adversary_pair(params);
  auto exact_high = offline::exact_offline_value(pair.high);
  auto exact_low = offline::exact_offline_value(pair.low);
  ASSERT_TRUE(exact_high.proved_optimal && exact_low.proved_optimal);
  EXPECT_NEAR(exact_high.value, pair.offline_high, 1e-9);
  EXPECT_NEAR(exact_low.value, pair.offline_low, 1e-9);
}

TEST(Adversary, RejectsDegenerateParameters) {
  AdversaryParams params;
  params.c_hi = params.c_lo;  // no variation -> no trap
  EXPECT_THROW(make_adversary_pair(params), CheckError);
  params = {};
  params.n = 0;
  EXPECT_THROW(make_adversary_pair(params), CheckError);
}

// Theorem 3(3) demonstration: as the jackpot value grows with n, every
// concrete online algorithm's min-ratio over the pair decays toward 0.
double pair_min_ratio(const AdversaryPair& pair,
                      const sched::NamedFactory& factory) {
  double worst = 1.0;
  const Instance* instances[] = {&pair.high, &pair.low};
  const double offline[] = {pair.offline_high, pair.offline_low};
  for (int i = 0; i < 2; ++i) {
    auto scheduler = factory.make();
    sim::Engine engine(*instances[i], *scheduler);
    auto result = engine.run_to_completion();
    worst = std::min(worst, result.completed_value / offline[i]);
  }
  return worst;
}

TEST(Adversary, RatioDecaysForOnlineAlgorithms) {
  for (const auto& factory :
       {sched::make_vdover(), sched::make_edf(), sched::make_hvdf()}) {
    double previous = 2.0;
    for (int n : {2, 8, 32}) {
      AdversaryParams params;
      params.n = n;
      // Jackpot value grows superlinearly so the high-path ratio of a
      // filler-hedging algorithm decays.
      params.jackpot_value_factor = static_cast<double>(n);
      auto pair = make_adversary_pair(params);
      const double ratio = pair_min_ratio(pair, factory);
      EXPECT_LE(ratio, previous + 1e-12) << factory.name << " n=" << n;
      previous = ratio;
    }
    EXPECT_LT(previous, 0.15)
        << factory.name << " should be crushed by the adversary at n=32";
  }
}

}  // namespace
}  // namespace sjs::theory
