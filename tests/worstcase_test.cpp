// Tests for the adversarial worst-case search harness.
#include <gtest/gtest.h>

#include "mc/worstcase.hpp"
#include "sched/factory.hpp"
#include "theory/ratios.hpp"
#include "util/logging.hpp"

namespace sjs::mc {
namespace {

WorstCaseOptions small_options() {
  WorstCaseOptions options;
  options.jobs = 5;
  options.restarts = 2;
  options.iterations = 40;
  options.seed = 3;
  return options;
}

TEST(WorstCase, DeterministicInSeed) {
  auto a = search_worst_case(small_options(), sched::make_edf());
  auto b = search_worst_case(small_options(), sched::make_edf());
  EXPECT_DOUBLE_EQ(a.worst_ratio, b.worst_ratio);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(WorstCase, RatioIsAValidRatio) {
  auto result = search_worst_case(small_options(), sched::make_vdover());
  EXPECT_GE(result.worst_ratio, 0.0);
  EXPECT_LE(result.worst_ratio, 1.0);
  EXPECT_LE(result.online_value, result.offline_value + 1e-9);
  EXPECT_GT(result.evaluations, 0u);
}

TEST(WorstCase, WorstInstanceIsAdmissibleByConstruction) {
  auto options = small_options();
  auto result = search_worst_case(options, sched::make_edf());
  ASSERT_FALSE(result.jobs.empty());
  for (const auto& job : result.jobs) {
    EXPECT_TRUE(job.individually_admissible(options.c_lo))
        << job.to_string();
  }
}

TEST(WorstCase, EvaluationCountMatchesBudget) {
  auto options = small_options();
  auto result = search_worst_case(options, sched::make_fifo());
  // One evaluation per restart seed + one per mutation.
  EXPECT_EQ(result.evaluations,
            options.restarts * (options.iterations + 1));
}

TEST(WorstCase, FindsOverloadForEdf) {
  // EDF under overload is famously fragile; even a tiny search should find
  // an instance where it loses a chunk of the optimum.
  auto options = small_options();
  options.restarts = 4;
  options.iterations = 150;
  auto result = search_worst_case(options, sched::make_edf());
  EXPECT_LT(result.worst_ratio, 0.95);
}

TEST(WorstCase, VDoverRespectsItsGuarantee) {
  auto options = small_options();
  options.restarts = 4;
  options.iterations = 150;
  auto result = search_worst_case(options, sched::make_vdover(options.k));
  const double guarantee = theory::vdover_competitive_ratio(
      options.k, options.c_hi / options.c_lo);
  EXPECT_GE(result.worst_ratio, guarantee - 1e-9);
}

TEST(WorstCase, RejectsDegenerateOptions) {
  WorstCaseOptions options = small_options();
  options.c_hi = options.c_lo;
  EXPECT_THROW(search_worst_case(options, sched::make_edf()), CheckError);
  options = small_options();
  options.jobs = 0;
  EXPECT_THROW(search_worst_case(options, sched::make_edf()), CheckError);
}

}  // namespace
}  // namespace sjs::mc
