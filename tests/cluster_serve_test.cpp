// Integration tests for the fleet-backed admission service
// (src/cluster/cluster_server.hpp).
//
// The flagship test drives a ClusterServer over a real loopback socket under
// a FakeClock, drains it, then loads the journal directory as a cluster
// bundle and re-runs it through a fresh Dispatcher + MultiEngine — job
// outcomes, completion times, and outcomes.csv must match the live session
// BIT-EXACTLY (the contract `sjs_sim --cluster-bundle=` relies on). Rental
// *cost* is deliberately excluded from the bitwise comparison: the live
// session settles its account at the wall-driven drain instant, which lies
// past the last engine event the replay settles at (see docs/cluster.md).
//
// The remaining tests cover fleet admission rejection, cancel semantics and
// the cancels journal, QUERY/STATS, and cross-run journal determinism.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster_journal.hpp"
#include "cluster/cluster_server.hpp"
#include "cluster/dispatcher.hpp"
#include "obs/metrics.hpp"
#include "serve/clock.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace {

using sjs::cluster::ClusterServer;
using sjs::cluster::ClusterServerConfig;
using sjs::cluster::Fleet;
using sjs::serve::FakeClock;
using sjs::serve::FrameDecoder;
using sjs::serve::JobState;
using sjs::serve::Message;
using sjs::serve::MsgType;
using sjs::serve::RejectReason;

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A raw nonblocking loopback client; same single-threaded await idiom as
/// tests/serve_test.cpp, retargeted at ClusterServer.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SJS_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    SJS_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SJS_CHECK(::fcntl(fd_, F_SETFL, O_NONBLOCK) == 0);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const Message& m) {
    const auto bytes = sjs::serve::encode_frame(m);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      SJS_CHECK_MSG(n > 0, "test client send failed");
      sent += static_cast<std::size_t>(n);
    }
  }

  bool read_socket() {
    std::uint8_t buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        Message m;
        while (decoder_.next(m) == FrameDecoder::Status::kOk) {
          inbox.push_back(m);
        }
        continue;
      }
      if (n == 0) return true;
      return false;
    }
  }

  template <typename Pred>
  Message await(ClusterServer& server, Pred pred, int spins = 1000) {
    for (int i = 0; i < spins; ++i) {
      for (std::size_t j = scanned_; j < inbox.size(); ++j) {
        if (pred(inbox[j])) {
          scanned_ = j + 1;
          return inbox[j];
        }
      }
      scanned_ = inbox.size();
      server.step(0);
      read_socket();
    }
    ADD_FAILURE() << "no matching reply after " << spins << " spins";
    return Message{};
  }

  Message await_seq(ClusterServer& server, std::uint64_t seq) {
    return await(server, [seq](const Message& m) { return m.seq == seq; });
  }

  std::vector<Message> inbox;

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  std::size_t scanned_ = 0;
};

Message submit_msg(std::uint64_t seq, double workload, double rel_deadline,
                   double value) {
  Message m;
  m.type = MsgType::kSubmit;
  m.seq = seq;
  m.a = workload;
  m.b = rel_deadline;
  m.c = value;
  return m;
}

/// Three speed classes over a deliberately tight base band [30, 35]: the
/// admission floor (60, the large machine's guaranteed rate) sits close to
/// the fleet's actual serving rates (70/35/17.5), so admissible windows are
/// short and queueing genuinely expires jobs — the wide paper band would let
/// every admitted job survive any realistic backlog.
ClusterServerConfig scripted_config(const std::string& journal_dir) {
  ClusterServerConfig config;
  Fleet fleet;
  fleet.add(sjs::cluster::ServerSpec{30.0, 35.0, 2.0, 2.2});
  fleet.add(sjs::cluster::ServerSpec{30.0, 35.0, 1.0, 1.0});
  fleet.add(sjs::cluster::ServerSpec{30.0, 35.0, 0.5, 0.45});
  config.fleet = fleet;
  config.rental = "threshold";
  config.journal_dir = journal_dir;
  return config;
}

struct SessionOutput {
  sjs::cloud::MultiSimResult live;
  std::vector<sjs::Job> jobs;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t notified_completed = 0;
  std::uint64_t notified_expired = 0;
};

/// Drives one fixed 60-submission session against a FakeClock ClusterServer:
/// the offered load (~mean workload 40 every 1/8 virtual second ≈ 320/s)
/// swamps the 3-machine fleet's peak throughput of 122.5, so the EDF backlog
/// pushes jobs past their (floor-sized, short) windows and both COMPLETED
/// and EXPIRED notifications occur; every 10th submission is deliberately
/// inadmissible even on the strongest machine's floor.
SessionOutput run_scripted_session(const std::string& journal_dir) {
  FakeClock clock;
  ClusterServerConfig config = scripted_config(journal_dir);
  const double floor = config.fleet.admission_c_lo();
  ClusterServer server(std::move(config), clock);
  const int port = server.start();
  TestClient client(port);

  sjs::Rng rng(4242);
  SessionOutput out;
  std::uint64_t seq = 0;
  for (int i = 0; i < 60; ++i) {
    clock.advance(rng.exponential_rate(8.0));
    const double workload = rng.exponential_mean(40.0);
    const bool sabotage = (i % 10) == 9;
    const double window = sabotage
                              ? 0.5 * workload / floor    // fails Thm. 3(3)
                              : rng.uniform(1.05, 3.0) * workload / floor;
    const double value = workload * rng.uniform(1.0, 7.0);
    client.send(submit_msg(++seq, workload, window, value));
    const Message r = client.await_seq(server, seq);
    if (sabotage) {
      EXPECT_EQ(r.type, MsgType::kRejected);
      EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kInadmissible));
      ++out.rejected;
    } else {
      EXPECT_EQ(r.type, MsgType::kAccepted);
      ++out.accepted;
    }
  }

  clock.advance(0.5);
  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = ++seq;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, seq).type, MsgType::kDraining);
  while (server.step(0)) {
    client.read_socket();
  }
  client.read_socket();

  EXPECT_TRUE(server.finished());
  EXPECT_TRUE(server.journal_error().empty());
  for (const Message& m : client.inbox) {
    if (m.type == MsgType::kCompleted) ++out.notified_completed;
    if (m.type == MsgType::kExpired) ++out.notified_expired;
  }
  out.live = server.result();
  out.jobs = server.jobs();
  return out;
}

void expect_bitwise_equal_outcomes(const sjs::cloud::MultiSimResult& live,
                                   const sjs::cloud::MultiSimResult& replay) {
  EXPECT_EQ(live.completed_value, replay.completed_value);
  EXPECT_EQ(live.generated_value, replay.generated_value);
  EXPECT_EQ(live.completed_count, replay.completed_count);
  EXPECT_EQ(live.expired_count, replay.expired_count);
  ASSERT_EQ(live.outcomes.size(), replay.outcomes.size());
  for (std::size_t i = 0; i < live.outcomes.size(); ++i) {
    EXPECT_EQ(live.outcomes[i], replay.outcomes[i]) << "job " << i;
    // memcmp so NaN (expired jobs) compares equal to itself.
    EXPECT_EQ(std::memcmp(&live.completion_times[i],
                          &replay.completion_times[i], sizeof(double)),
              0)
        << "job " << i;
    EXPECT_EQ(live.executed_work[i], replay.executed_work[i]) << "job " << i;
  }
}

// ---------------------------------------------------------------------------
// The tentpole contract: a cluster journal replays bit-exactly.

TEST(ClusterServeTest, FakeClockSessionReplaysBitExactly) {
  const std::string dir = fresh_dir("cluster_replay");
  const SessionOutput session = run_scripted_session(dir);

  EXPECT_EQ(session.accepted, 54u);
  EXPECT_EQ(session.rejected, 6u);
  EXPECT_GT(session.notified_completed, 0u);
  EXPECT_GT(session.notified_expired, 0u);
  EXPECT_EQ(session.notified_completed + session.notified_expired,
            session.accepted);
  EXPECT_EQ(session.live.completed_count + session.live.expired_count,
            session.accepted);
  // The elastic fleet actually elasticised under the overload.
  EXPECT_GT(session.live.rented_peak, 1u);
  EXPECT_GT(session.live.rental_cost, 0.0);

  // The journal loads as a cluster bundle recording exactly the accepted
  // jobs with their %.17g admission stamps and the dispatcher's meta.
  const sjs::cluster::ClusterBundle bundle =
      sjs::cluster::load_cluster_bundle(dir);
  ASSERT_EQ(bundle.jobs.size(), session.jobs.size());
  ASSERT_EQ(bundle.fleet.size(), 3u);
  ASSERT_EQ(bundle.paths.size(), 3u);
  EXPECT_TRUE(bundle.cancels.empty());
  EXPECT_EQ(bundle.meta.at("scheduler"), "Cluster-EDF/threshold");
  EXPECT_EQ(bundle.meta.at("sched_key"), "deadline");
  EXPECT_EQ(bundle.meta.at("rental"), "threshold");
  EXPECT_EQ(bundle.meta.at("cluster"), "3");
  for (std::size_t i = 0; i < session.jobs.size(); ++i) {
    EXPECT_EQ(bundle.jobs[i].release, session.jobs[i].release);
    EXPECT_EQ(bundle.jobs[i].workload, session.jobs[i].workload);
    EXPECT_EQ(bundle.jobs[i].deadline, session.jobs[i].deadline);
    EXPECT_EQ(bundle.jobs[i].value, session.jobs[i].value);
  }

  // Replay through a fresh dispatcher + engine, exactly as
  // `sjs_sim --cluster-bundle=` does: identical outcomes.
  sjs::cluster::DispatcherConfig dc;
  dc.key = sjs::cloud::GlobalKey::kDeadline;
  dc.budget = std::stod(bundle.meta.at("budget"));
  dc.min_rented = std::stoul(bundle.meta.at("min_rented"));
  sjs::cluster::Dispatcher dispatcher(
      bundle.fleet, dc,
      sjs::cluster::make_rental_controller(bundle.meta.at("rental")));
  const sjs::cloud::MultiSimResult replay =
      sjs::cluster::run_cluster(bundle.jobs, bundle.paths, dispatcher);
  expect_bitwise_equal_outcomes(session.live, replay);
  // Rental decisions replay exactly too — only the settle horizon differs
  // (live settles at the wall-driven drain instant), so cost is compared
  // directionally, not bitwise.
  EXPECT_EQ(session.live.rent_events, replay.rent_events);
  EXPECT_EQ(session.live.rented_peak, replay.rented_peak);
  EXPECT_EQ(session.live.dispatches, replay.dispatches);
  EXPECT_EQ(session.live.migrations, replay.migrations);
  EXPECT_GE(session.live.rental_cost, replay.rental_cost);

  // outcomes.csv written at drain must equal the one the replay writes —
  // the same byte-diff scripts/serve_smoke.sh applies to the binaries.
  const std::string live_csv = slurp(dir + "/outcomes.csv");
  const std::string replay_dir = fresh_dir("cluster_replay_outcomes");
  std::filesystem::create_directories(replay_dir);
  sjs::cloud::save_multi_outcomes_csv(replay, bundle.jobs,
                                      replay_dir + "/outcomes.csv");
  EXPECT_FALSE(live_csv.empty());
  EXPECT_EQ(live_csv, slurp(replay_dir + "/outcomes.csv"));
}

TEST(ClusterServeTest, ScriptedSessionIsDeterministicAcrossRuns) {
  const std::string dir_a = fresh_dir("cluster_det_a");
  const std::string dir_b = fresh_dir("cluster_det_b");
  const SessionOutput a = run_scripted_session(dir_a);
  const SessionOutput b = run_scripted_session(dir_b);
  expect_bitwise_equal_outcomes(a.live, b.live);
  EXPECT_EQ(a.live.rental_cost, b.live.rental_cost);
  for (const char* file :
       {"/fleet.csv", "/server0.csv", "/server1.csv", "/server2.csv",
        "/band.csv", "/meta.csv", "/jobs.csv", "/cancels.csv",
        "/outcomes.csv"}) {
    EXPECT_EQ(slurp(dir_a + file), slurp(dir_b + file)) << file;
  }
}

// ---------------------------------------------------------------------------
// Protocol-visible behaviours, one at a time.

TEST(ClusterServeTest, RejectsJobsHopelessEvenOnTheStrongestMachine) {
  FakeClock clock;
  ClusterServer server(scripted_config(""), clock);
  TestClient client(server.start());
  // Fleet floor is 60 (the large machine's guaranteed rate): workload 600
  // needs a 10-second window even on the best floor, so a window of 4 is
  // hopeless and one of 12 is admissible.
  client.send(submit_msg(1, 600.0, 4.0, 1.0));
  Message r = client.await_seq(server, 1);
  EXPECT_EQ(r.type, MsgType::kRejected);
  EXPECT_EQ(r.code, static_cast<std::uint8_t>(RejectReason::kInadmissible));
  client.send(submit_msg(2, 600.0, 12.0, 1.0));
  r = client.await_seq(server, 2);
  EXPECT_EQ(r.type, MsgType::kAccepted);
  server.request_drain();
  while (server.step(0)) client.read_socket();
}

TEST(ClusterServeTest, CancelSemanticsAndCancelJournal) {
  const std::string dir = fresh_dir("cluster_cancel");
  FakeClock clock;
  ClusterServer server(scripted_config(dir), clock);
  TestClient client(server.start());

  // Big enough that the large machine (rate 70) is still chewing on it when
  // the cancel lands at virtual t = 0.5.
  client.send(submit_msg(1, 350.0, 200.0, 5.0));
  const Message accepted = client.await_seq(server, 1);
  ASSERT_EQ(accepted.type, MsgType::kAccepted);

  // The job becomes cancellable once its release event has fired.
  clock.advance(0.5);
  server.step(0);

  Message cancel;
  cancel.type = MsgType::kCancel;
  cancel.seq = 2;
  cancel.ticket = accepted.ticket;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 2).type, MsgType::kCancelled);

  cancel.seq = 3;  // terminal job: cancelling again fails
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 3).type, MsgType::kCancelFailed);
  cancel.seq = 4;  // as does a ticket that never existed
  cancel.ticket = 999;
  client.send(cancel);
  EXPECT_EQ(client.await_seq(server, 4).type, MsgType::kCancelFailed);

  Message drain;
  drain.type = MsgType::kDrain;
  drain.seq = 5;
  client.send(drain);
  EXPECT_EQ(client.await_seq(server, 5).type, MsgType::kDraining);
  while (server.step(0)) client.read_socket();

  EXPECT_EQ(server.result().expired_count, 1u);
  EXPECT_EQ(server.result().completed_count, 0u);
  // The cancellation is journalled, and a cancel-bearing bundle says so.
  const auto bundle = sjs::cluster::load_cluster_bundle(dir);
  ASSERT_EQ(bundle.cancels.size(), 1u);
  EXPECT_EQ(bundle.cancels[0].second, 0u);
  EXPECT_GT(bundle.cancels[0].first, 0.0);
}

TEST(ClusterServeTest, QueryAndStatsReflectTheFleet) {
  FakeClock clock;
  ClusterServerConfig config = scripted_config("");
  ClusterServer server(std::move(config), clock);
  TestClient client(server.start());

  client.send(submit_msg(1, 70.0, 100.0, 2.0));
  const Message accepted = client.await_seq(server, 1);
  ASSERT_EQ(accepted.type, MsgType::kAccepted);

  Message query;
  query.type = MsgType::kQuery;
  query.seq = 2;
  query.ticket = accepted.ticket;
  client.send(query);
  Message qr = client.await_seq(server, 2);
  ASSERT_EQ(qr.type, MsgType::kQueryReply);
  EXPECT_TRUE(qr.code == static_cast<std::uint8_t>(JobState::kRunning) ||
              qr.code == static_cast<std::uint8_t>(JobState::kQueued))
      << static_cast<int>(qr.code);
  EXPECT_GT(qr.a, 0.0);  // remaining work

  // The large machine serves at 70: workload 70 finishes well before t=5.
  clock.advance(5.0);
  query.seq = 3;
  client.send(query);
  qr = client.await_seq(server, 3);
  EXPECT_EQ(qr.code, static_cast<std::uint8_t>(JobState::kCompleted));

  query.seq = 4;
  query.ticket = 777;
  client.send(query);
  qr = client.await_seq(server, 4);
  EXPECT_EQ(qr.code, static_cast<std::uint8_t>(JobState::kUnknown));

  Message stats;
  stats.type = MsgType::kStats;
  stats.seq = 5;
  client.send(stats);
  const Message sr = client.await_seq(server, 5);
  ASSERT_EQ(sr.type, MsgType::kStatsReply);
  EXPECT_EQ(sr.stats.submitted, 1u);
  EXPECT_EQ(sr.stats.accepted, 1u);
  EXPECT_EQ(sr.stats.completed, 1u);
  EXPECT_EQ(sr.stats.in_flight, 0u);
  EXPECT_EQ(sr.stats.completed_value, 2.0);
  EXPECT_GE(sr.stats.virtual_now, 1.0);

  server.request_drain();
  while (server.step(0)) client.read_socket();
  EXPECT_TRUE(server.finished());
}

TEST(ClusterServeTest, PublishesClusterMetricsAtDrain) {
  sjs::obs::MetricsRegistry metrics;
  FakeClock clock;
  ClusterServer server(scripted_config(""), clock, &metrics);
  TestClient client(server.start());
  client.send(submit_msg(1, 10.0, 20.0, 1.0));
  ASSERT_EQ(client.await_seq(server, 1).type, MsgType::kAccepted);
  clock.advance(1.0);
  server.request_drain();
  while (server.step(0)) client.read_socket();
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("cluster.dispatches"), 1.0);
  EXPECT_GT(snap.counters.at("cluster.cost_accrued"), 0.0);
  EXPECT_EQ(snap.gauges.at("cluster.rented_machines"), 1.0);
  EXPECT_GT(snap.gauges.at("cluster.util.server0"), 0.0);
}

}  // namespace
