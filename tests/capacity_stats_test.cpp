// Tests for capacity-path descriptive statistics.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "capacity/capacity_stats.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::cap {
namespace {

const CapacityProfile kProfile({0.0, 10.0, 20.0}, {1.0, 35.0, 2.0});

TEST(CapacityStats, MeanRateKnownValues) {
  EXPECT_DOUBLE_EQ(mean_rate(kProfile, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(mean_rate(kProfile, 0.0, 20.0), (10.0 + 350.0) / 20.0);
  EXPECT_DOUBLE_EQ(mean_rate(kProfile, 5.0, 15.0), (5.0 + 175.0) / 10.0);
}

TEST(CapacityStats, MeanRateRejectsEmptyInterval) {
  EXPECT_THROW(mean_rate(kProfile, 3.0, 3.0), CheckError);
}

TEST(CapacityStats, DutyCycle) {
  // rate >= 2 holds on [10, 20) and on [20, 30): 2/3 of [0, 30].
  EXPECT_DOUBLE_EQ(duty_cycle(kProfile, 2.0, 0.0, 30.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(duty_cycle(kProfile, 1.0, 0.0, 30.0), 1.0);
  EXPECT_DOUBLE_EQ(duty_cycle(kProfile, 100.0, 0.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(duty_cycle(kProfile, 35.0, 0.0, 20.0), 0.5);
}

TEST(CapacityStats, TimeAtRate) {
  auto shares = time_at_rate(kProfile, 0.0, 30.0);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_DOUBLE_EQ(shares.at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(shares.at(35.0), 10.0);
  EXPECT_DOUBLE_EQ(shares.at(2.0), 10.0);
}

TEST(CapacityStats, TimeAtRatePartialWindow) {
  auto shares = time_at_rate(kProfile, 5.0, 12.0);
  EXPECT_DOUBLE_EQ(shares.at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(shares.at(35.0), 2.0);
  EXPECT_EQ(shares.count(2.0), 0u);
}

TEST(CapacityStats, ObservedBandNarrowerThanDeclared) {
  // Only looking at [0, 10): the path never visits 35 or 2.
  auto band = observed_band(kProfile, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(band.lo, 1.0);
  EXPECT_DOUBLE_EQ(band.hi, 1.0);
  EXPECT_DOUBLE_EQ(band.delta(), 1.0);
  auto full = observed_band(kProfile, 0.0, 30.0);
  EXPECT_DOUBLE_EQ(full.lo, 1.0);
  EXPECT_DOUBLE_EQ(full.hi, 35.0);
  EXPECT_DOUBLE_EQ(full.delta(), 35.0);
}

TEST(CapacityStats, SegmentDurations) {
  auto durations = segment_durations(kProfile, 5.0, 25.0);
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_DOUBLE_EQ(durations[0], 5.0);
  EXPECT_DOUBLE_EQ(durations[1], 10.0);
  EXPECT_DOUBLE_EQ(durations[2], 5.0);
}

TEST(CapacityStats, SharesPartitionTheWindow) {
  Rng rng(4);
  TwoStateMarkovParams params;
  params.mean_sojourn_lo = params.mean_sojourn_hi = 3.0;
  auto profile = sample_two_state_markov(params, 100.0, rng);
  auto shares = time_at_rate(profile, 0.0, 100.0);
  double total = 0.0;
  for (const auto& [rate, time] : shares) total += time;
  EXPECT_NEAR(total, 100.0, 1e-9);
  // And the duty cycle at the high state equals its share.
  EXPECT_NEAR(duty_cycle(profile, 35.0, 0.0, 100.0),
              shares.count(35.0) ? shares.at(35.0) / 100.0 : 0.0, 1e-12);
}

TEST(CapacityFit, RecoversKnownTwoStateParameters) {
  // Long sampled path from known parameters: the moment estimator must land
  // close to the truth.
  Rng rng(6);
  TwoStateMarkovParams truth;
  truth.c_lo = 1.0;
  truth.c_hi = 35.0;
  truth.mean_sojourn_lo = 4.0;
  truth.mean_sojourn_hi = 8.0;
  auto profile = sample_two_state_markov(truth, 20000.0, rng);
  auto fit = fit_two_state_markov(profile, 0.0, 20000.0);
  // Only two levels exist, so the fitted levels are exact up to the
  // time-weighted-average's accumulation rounding.
  EXPECT_NEAR(fit.c_lo, 1.0, 1e-9);
  EXPECT_NEAR(fit.c_hi, 35.0, 1e-9);
  EXPECT_NEAR(fit.mean_sojourn_lo, 4.0, 0.5);
  EXPECT_NEAR(fit.mean_sojourn_hi, 8.0, 1.0);
  EXPECT_GT(fit.low_visits, 1000u);
}

TEST(CapacityFit, ConstantPathIsDegenerate) {
  CapacityProfile p(3.0);
  auto fit = fit_two_state_markov(p, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(fit.c_lo, 3.0);
  EXPECT_DOUBLE_EQ(fit.c_hi, 3.0);
  EXPECT_EQ(fit.low_visits, 1u);
  EXPECT_EQ(fit.high_visits, 0u);
  EXPECT_DOUBLE_EQ(fit.mean_sojourn_lo, 10.0);
}

TEST(CapacityFit, SquareWaveExactSojourns) {
  auto p = square_wave(1.0, 10.0, 2.0, 3.0, 20.0);
  auto fit = fit_two_state_markov(p, 0.0, 20.0);
  EXPECT_DOUBLE_EQ(fit.c_lo, 1.0);
  EXPECT_DOUBLE_EQ(fit.c_hi, 10.0);
  EXPECT_NEAR(fit.mean_sojourn_lo, 2.0, 1e-9);
  EXPECT_NEAR(fit.mean_sojourn_hi, 3.0, 1e-9);
}

TEST(CapacityFit, MultiLevelPathSplitsAtMidpoint) {
  // Rates 1, 2 (low side of midpoint 5.5) and 9, 10 (high side).
  CapacityProfile p({0.0, 1.0, 2.0, 3.0}, {1.0, 9.0, 2.0, 10.0});
  auto fit = fit_two_state_markov(p, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(fit.c_lo, 1.5);   // time-weighted mean of {1, 2}
  EXPECT_DOUBLE_EQ(fit.c_hi, 9.5);
  EXPECT_EQ(fit.low_visits, 2u);
  EXPECT_EQ(fit.high_visits, 2u);
}

TEST(CapacityStats, MeanRateConsistentWithShares) {
  Rng rng(5);
  TwoStateMarkovParams params;
  params.mean_sojourn_lo = params.mean_sojourn_hi = 5.0;
  auto profile = sample_two_state_markov(params, 60.0, rng);
  auto shares = time_at_rate(profile, 0.0, 60.0);
  double weighted = 0.0;
  for (const auto& [rate, time] : shares) weighted += rate * time;
  EXPECT_NEAR(mean_rate(profile, 0.0, 60.0), weighted / 60.0, 1e-9);
}

}  // namespace
}  // namespace sjs::cap
