// Cross-validation of the exact event engine against the naive fixed-step
// reference simulator: on instances with real slack (so outcomes are robust
// to O(dt) decision-timing error) the two must agree job by job.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/edf.hpp"
#include "sim/engine.hpp"
#include "sim/reference.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::sim {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

SimResult engine_edf(const Instance& instance) {
  sched::EdfScheduler scheduler;
  Engine engine(instance, scheduler);
  return engine.run_to_completion();
}

TEST(Reference, SingleJobMatchesEngine) {
  Instance instance({make_job(0, 2, 5, 3)}, cap::CapacityProfile(1.0));
  auto ref = reference_edf_simulate(instance, 1e-3);
  auto eng = engine_edf(instance);
  EXPECT_EQ(ref.completed_count, eng.completed_count);
  EXPECT_DOUBLE_EQ(ref.completed_value, eng.completed_value);
}

TEST(Reference, InfeasibleJobFailsInBoth) {
  Instance instance({make_job(0, 10, 5, 3)}, cap::CapacityProfile(1.0));
  auto ref = reference_edf_simulate(instance, 1e-3);
  auto eng = engine_edf(instance);
  EXPECT_EQ(ref.completed_count, 0u);
  EXPECT_EQ(eng.completed_count, 0u);
}

TEST(Reference, RejectsNonPositiveStep) {
  Instance instance({make_job(0, 1, 2, 1)}, cap::CapacityProfile(1.0));
  EXPECT_THROW(reference_edf_simulate(instance, 0.0), CheckError);
}

class ReferenceCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceCrossValidation, PerJobOutcomesAgreeOnSlackInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 11000);
  cap::TwoStateMarkovParams cp;
  cp.c_hi = 8.0;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 8.0;
  auto profile = cap::sample_two_state_markov(cp, 80.0, rng);

  gen::JobGenParams jp;
  // Busy but not overloaded at the worst-case rate (utilisation 0.8 at
  // c_lo): queueing and preemption happen, yet no job sits within O(dt) of
  // its deadline, so per-job outcomes are robust to the reference
  // simulator's decision-timing error. (Under genuine overload *which* job
  // misses is discontinuous in dt and exact agreement is unattainable.)
  jp.lambda = 0.8;
  jp.horizon = 80.0;
  jp.slack_factor = 1.5;
  // Uniform workloads bound p >= 0.5: absolute slack >= 0.25 >> dt.
  jp.workload_dist = gen::WorkloadDist::kUniform;
  auto jobs = gen::generate_jobs(jp, rng);
  Instance instance(jobs, profile, 1.0, 8.0);

  auto ref = reference_edf_simulate(instance, 1e-3);
  auto eng = engine_edf(instance);

  ASSERT_EQ(ref.outcomes.size(), eng.outcomes.size());
  for (std::size_t i = 0; i < ref.outcomes.size(); ++i) {
    EXPECT_EQ(ref.outcomes[i], eng.outcomes[i]) << "job " << i;
  }
  EXPECT_NEAR(ref.completed_value, eng.completed_value, 1e-9);
}

TEST_P(ReferenceCrossValidation, ValueConvergesAsStepShrinks) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 12000);
  gen::JobGenParams jp;
  jp.lambda = 2.0;  // light load: completions never sit on a dt boundary
  jp.horizon = 30.0;
  jp.slack_factor = 2.0;
  jp.workload_dist = gen::WorkloadDist::kUniform;
  auto jobs = gen::generate_jobs(jp, rng);
  Instance instance(jobs, cap::CapacityProfile({0.0, 10.0}, {1.0, 5.0}), 1.0,
                    5.0);
  const double exact = engine_edf(instance).completed_value;
  double prev_error = std::numeric_limits<double>::infinity();
  for (double dt : {0.5, 0.05, 0.005}) {
    const double err =
        std::abs(reference_edf_simulate(instance, dt).completed_value - exact);
    EXPECT_LE(err, prev_error + 1e-9) << "dt " << dt;
    prev_error = err;
  }
  EXPECT_NEAR(prev_error, 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceCrossValidation,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace sjs::sim
