// Tests for the paper's Sec. III-A stretch transformation: bijection,
// workload preservation, and schedulability equivalence between the original
// varying-capacity system and the stretched constant-capacity system.
#include <gtest/gtest.h>

#include <cmath>

#include "capacity/capacity_process.hpp"
#include "capacity/stretch.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/feasibility.hpp"
#include "offline/transform_solver.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

using cap::CapacityProfile;
using cap::StretchTransform;

TEST(Stretch, IdentityOnConstantProfileAtReferenceRate) {
  CapacityProfile p(3.0);
  StretchTransform t(p, 3.0);
  for (double x : {0.0, 1.0, 5.5, 100.0}) {
    EXPECT_DOUBLE_EQ(t.forward(x), x);
    EXPECT_DOUBLE_EQ(t.inverse(x), x);
  }
}

TEST(Stretch, ConstantProfileScalesLinearly) {
  CapacityProfile p(4.0);
  StretchTransform t(p, 2.0);  // running twice as fast as reference
  EXPECT_DOUBLE_EQ(t.forward(1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.forward(3.0), 6.0);
  EXPECT_DOUBLE_EQ(t.inverse(6.0), 3.0);
}

TEST(Stretch, PiecewiseKnownValues) {
  // c = 1 on [0,10), 35 on [10,20), 1 after; reference c_lo = 1.
  CapacityProfile p({0.0, 10.0, 20.0}, {1.0, 35.0, 1.0});
  StretchTransform t(p);
  EXPECT_DOUBLE_EQ(t.reference_rate(), 1.0);
  EXPECT_DOUBLE_EQ(t.forward(10.0), 10.0);
  EXPECT_DOUBLE_EQ(t.forward(20.0), 10.0 + 350.0);
  EXPECT_DOUBLE_EQ(t.forward(21.0), 361.0);
  EXPECT_DOUBLE_EQ(t.inverse(360.0), 20.0);
}

TEST(Stretch, ForwardIsStrictlyIncreasing) {
  CapacityProfile p({0.0, 1.0, 2.0}, {1.0, 10.0, 2.0});
  StretchTransform t(p);
  double prev = -1.0;
  for (double x = 0.0; x <= 5.0; x += 0.1) {
    const double y = t.forward(x);
    EXPECT_GT(y, prev);
    prev = y;
  }
}

TEST(Stretch, StretchedProfileIsConstantReference) {
  CapacityProfile p({0.0, 1.0}, {2.0, 5.0});
  StretchTransform t(p);
  auto stretched = t.stretched_profile();
  EXPECT_DOUBLE_EQ(stretched.rate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(stretched.rate(1000.0), 2.0);
  EXPECT_EQ(stretched.segments(), 1u);
}

TEST(Stretch, RejectsNonPositiveReference) {
  CapacityProfile p(1.0);
  EXPECT_THROW(StretchTransform(p, 0.0), CheckError);
  EXPECT_THROW(StretchTransform(p, -2.0), CheckError);
}

// Property: round trips and the paper's workload-preservation identity
//   ∫_s^t c = c_ref · (T(t) − T(s))
// on random piecewise profiles.
class StretchProperty : public ::testing::TestWithParam<int> {
 protected:
  CapacityProfile random_profile(Rng& rng) {
    std::vector<double> times{0.0};
    std::vector<double> rates{rng.uniform(1.0, 35.0)};
    for (int i = 0; i < 25; ++i) {
      times.push_back(times.back() + rng.exponential_mean(3.0));
      rates.push_back(rng.uniform(1.0, 35.0));
    }
    return CapacityProfile(times, rates);
  }
};

TEST_P(StretchProperty, RoundTripBothWays) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
  auto p = random_profile(rng);
  StretchTransform t(p);
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.uniform(0.0, 120.0);
    EXPECT_NEAR(t.inverse(t.forward(x)), x, 1e-8 * std::max(1.0, x));
    const double y = rng.uniform(0.0, 120.0);
    EXPECT_NEAR(t.forward(t.inverse(y)), y, 1e-8 * std::max(1.0, y));
  }
}

TEST_P(StretchProperty, WorkloadPreserved) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  auto p = random_profile(rng);
  StretchTransform t(p);
  for (int trial = 0; trial < 50; ++trial) {
    double s = rng.uniform(0.0, 100.0);
    double e = s + rng.exponential_mean(10.0);
    const double original_work = p.work(s, e);
    const double stretched_work =
        t.reference_rate() * (t.forward(e) - t.forward(s));
    EXPECT_NEAR(original_work, stretched_work,
                1e-9 * std::max(1.0, original_work));
  }
}

// The core claim of Sec. III-A: a job set is schedulable under the original
// varying capacity iff the stretched set is schedulable at constant c_lo.
TEST_P(StretchProperty, FeasibilityEquivalence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 90);
  auto profile = random_profile(rng);
  auto jobs =
      gen::generate_small_random_jobs(8, 40.0, 7.0, profile.min_rate(),
                                      /*slack_max=*/4.0, rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<JobId>(i);

  Instance instance(jobs, profile);
  auto transformed = offline::stretch_instance(instance);

  EXPECT_EQ(offline::edf_feasible(instance.jobs(), instance.capacity()),
            offline::edf_feasible(transformed.jobs, transformed.capacity));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StretchProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace sjs
