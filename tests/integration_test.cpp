// End-to-end integration: the paper's Sec. IV experiment at reduced scale.
// These tests assert the *qualitative* findings the paper reports — V-Dover
// dominates the best Dover configuration, EDF is optimal when underloaded,
// and the Fig.-1-style traces behave — using enough Monte-Carlo runs to make
// the comparisons statistically meaningful but fast.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/table.hpp"
#include "obs/digest.hpp"
#include "obs/invariants.hpp"
#include "obs/trace_sink.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

TEST(Integration, VDoverBeatsBestDoverAtModerateLoad) {
  // λ = 6, the paper's illustrative load, scaled down to ~300 jobs x 24 runs.
  mc::McConfig config;
  config.setup.lambda = 6.0;
  config.setup.expected_jobs = 300.0;
  config.runs = 24;
  config.seed = 2026;
  auto factories = sched::paper_lineup({1.0, 10.5, 24.5, 35.0});
  auto outcome = mc::run_monte_carlo(config, factories);
  auto row = mc::make_row(6.0, outcome, /*vdover_index=*/4);

  // Paper Table I: V-Dover strictly gains over the best Dover at λ=6
  // (13% there; we only assert a clear positive gap).
  EXPECT_GT(row.vdover_percent, row.best_dover_percent)
      << "V-Dover must beat every Dover configuration on average";
}

TEST(Integration, PerRunVDoverNeverFarBehindBestDover) {
  // The paper observes V-Dover "performs no worse than Dover in all cases"
  // (case = averaged configuration). Per run we allow small noise but check
  // the mean dominance over each individual Dover column.
  mc::McConfig config;
  config.setup.lambda = 6.0;
  config.setup.expected_jobs = 250.0;
  config.runs = 20;
  config.seed = 7;
  auto factories = sched::paper_lineup({1.0, 10.5, 24.5, 35.0});
  auto outcome = mc::run_monte_carlo(config, factories);
  const double vdover_mean = outcome.per_scheduler[4].fraction_summary.mean;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GE(vdover_mean + 1e-9,
              outcome.per_scheduler[s].fraction_summary.mean)
        << outcome.per_scheduler[s].name;
  }
}

TEST(Integration, EdfCapturesEverythingUnderloaded) {
  // Theorem 2 at integration scale: a feasible-by-construction workload on a
  // CTMC path; EDF must capture 100% of the value.
  Rng rng(99);
  cap::TwoStateMarkovParams cp;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 100.0;
  auto profile = cap::sample_two_state_markov(cp, 500.0, rng);
  auto jobs = gen::generate_underloaded_jobs(profile, 450.0, 120, 0.8, rng);
  Instance instance(jobs, profile);

  auto factory = sched::make_edf();
  auto scheduler = factory.make();
  sim::Engine engine(instance, *scheduler);
  auto result = engine.run_to_completion();
  EXPECT_DOUBLE_EQ(result.value_fraction(), 1.0);
}

TEST(Integration, Fig1StyleTracesAreComparable) {
  // One shared sample path, V-Dover vs Dover(1): traces must start at 0,
  // end at each algorithm's total, and V-Dover's final value must win on
  // this overloaded path (λ=6 with zero-laxity jobs is heavily overloaded
  // whenever c(t)=1).
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 400.0;
  Rng rng(1234);
  auto instance = gen::generate_paper_instance(setup, rng);

  auto run = [&](const sched::NamedFactory& f) {
    auto scheduler = f.make();
    sim::Engine engine(instance, *scheduler);
    return engine.run_to_completion();
  };
  auto vdover = run(sched::make_vdover());
  auto dover = run(sched::make_dover(1.0));

  EXPECT_GE(vdover.completed_value, dover.completed_value);
  // Traces resample cleanly onto a common grid (what bench_fig1 emits).
  const double end = instance.max_deadline();
  auto vd = vdover.value_trace.resample(0.0, end, 100);
  auto dv = dover.value_trace.resample(0.0, end, 100);
  EXPECT_DOUBLE_EQ(vd.front(), 0.0);
  EXPECT_DOUBLE_EQ(dv.front(), 0.0);
  EXPECT_NEAR(vd.back(), vdover.completed_value, 1e-9);
  EXPECT_NEAR(dv.back(), dover.completed_value, 1e-9);
}

TEST(Integration, GainShrinksAtHighLoad) {
  // Paper: the V-Dover gain is hump-shaped in λ — smaller at very high load
  // than at moderate load. Compare relative gains at λ=6 and λ=24 (we use a
  // more extreme high load than the paper's 12 to make the contraction
  // robust at reduced Monte-Carlo scale).
  auto gain_at = [](double lambda) {
    mc::McConfig config;
    config.setup.lambda = lambda;
    config.setup.expected_jobs = 250.0;
    config.runs = 16;
    config.seed = 55;
    auto factories = sched::paper_lineup({1.0, 35.0});
    auto outcome = mc::run_monte_carlo(config, factories);
    auto row = mc::make_row(lambda, outcome, 2);
    return row.gain_percent;
  };
  const double moderate = gain_at(6.0);
  const double high = gain_at(24.0);
  EXPECT_GT(moderate, 0.0);
  EXPECT_LT(high, moderate + 5.0);  // allow noise; must not explode upward
}

TEST(Integration, InvariantsHoldForEveryRegisteredScheduler) {
  // Runtime verification across the full line-up: the InvariantChecker
  // independently re-integrates ∫c(τ)dτ over every execution slice and must
  // come back green for every scheduler on a paper-style overloaded instance.
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 200.0;
  Rng rng(2027);
  const auto instance = gen::generate_paper_instance(setup, rng);

  for (const auto& factory : sched::extended_lineup({1.0, 10.5, 24.5, 35.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    obs::InvariantChecker checker(instance);
    obs::DigestSink digest;
    obs::TeeSink tee({&checker, &digest});
    engine.attach_trace(&tee);
    auto result = engine.run_to_completion();
    checker.verify_executed_work(result.executed_work);
    EXPECT_TRUE(checker.ok()) << factory.name << ": " << checker.report();
    EXPECT_EQ(checker.completed_count(), result.completed_count)
        << factory.name;
    EXPECT_NE(digest.digest(), obs::kDigestSeed) << factory.name;
  }
}

TEST(Integration, TracingDoesNotChangeTheSchedule) {
  // Observability must be pure: the same (instance, scheduler) pair with and
  // without an attached sink produces bit-identical results.
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 250.0;
  Rng rng(31337);
  const auto instance = gen::generate_paper_instance(setup, rng);

  auto bare_scheduler = sched::make_vdover().make();
  sim::Engine bare(instance, *bare_scheduler);
  auto bare_result = bare.run_to_completion();

  auto traced_scheduler = sched::make_vdover().make();
  sim::Engine traced(instance, *traced_scheduler);
  obs::VectorTraceSink sink;
  traced.attach_trace(&sink);
  auto traced_result = traced.run_to_completion();

  EXPECT_EQ(bare_result.completed_value, traced_result.completed_value);
  EXPECT_EQ(bare_result.completed_count, traced_result.completed_count);
  EXPECT_EQ(bare_result.preemptions, traced_result.preemptions);
  EXPECT_EQ(bare_result.executed_work, traced_result.executed_work);
  EXPECT_FALSE(sink.events().empty());
}

TEST(Integration, AllSchedulersSurviveLongMixedWorkload) {
  // Longevity smoke test across the whole line-up on a trace with many
  // capacity switches and mixed slack.
  Rng rng(4242);
  gen::JobGenParams jp;
  jp.lambda = 8.0;
  jp.horizon = 120.0;
  jp.slack_factor = 1.5;
  auto jobs = gen::generate_jobs(jp, rng);
  cap::TwoStateMarkovParams cp;
  cp.mean_sojourn_lo = cp.mean_sojourn_hi = 3.0;  // rapid switching
  auto profile = cap::sample_two_state_markov(cp, 300.0, rng);
  Instance instance(jobs, profile, 1.0, 35.0);

  for (const auto& factory : sched::extended_lineup({1.0, 10.5, 24.5, 35.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    EXPECT_EQ(result.completed_count + result.expired_count, instance.size())
        << factory.name;
  }
}

}  // namespace
}  // namespace sjs
