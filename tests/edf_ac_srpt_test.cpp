// Tests for the EDF-with-admission-control and conservative-SRPT baselines.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/edf_ac.hpp"
#include "sched/srpt.hpp"
#include "sched/vdover.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs::sched {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

// ---------------------------------------------------------------- EDF-AC

TEST(EdfAc, AdmitsFeasibleSet) {
  Instance instance({make_job(0, 1, 2, 1), make_job(0, 1, 3, 1),
                     make_job(0, 1, 4, 1)},
                    cap::CapacityProfile(1.0));
  EdfAcScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 3u);
  EXPECT_EQ(scheduler.rejected(), 0u);
}

TEST(EdfAc, RejectsOverloadingArrival) {
  // Two zero-laxity jobs back to back: the second cannot be added without
  // breaking the first's guarantee.
  Instance instance({make_job(0, 4, 4, 1), make_job(1, 2, 3, 100)},
                    cap::CapacityProfile(1.0));
  EdfAcScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(scheduler.rejected(), 1u);
  // The admitted (first) job completes, the jackpot was turned away — the
  // price of hard guarantees.
  EXPECT_DOUBLE_EQ(result.completed_value, 1.0);
}

TEST(EdfAc, EveryAdmittedJobCompletes) {
  // The defining property: admission at c_lo + capacity >= c_lo means no
  // admitted job ever misses. Expired jobs must all be rejects.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 600);
    gen::PaperSetup setup;
    setup.lambda = 8.0;
    setup.expected_jobs = 200.0;
    auto instance = gen::generate_paper_instance(setup, rng);
    EdfAcScheduler scheduler;
    sim::Engine engine(instance, scheduler);
    auto result = engine.run_to_completion();
    EXPECT_EQ(result.expired_count, scheduler.rejected()) << "seed " << seed;
  }
}

TEST(EdfAc, AdmissionUsesRemainingNotOriginalWork) {
  // Job 0 is half done by the time job 1 arrives; admitting job 1 is only
  // possible because the test uses remaining work.
  Instance instance({make_job(0, 4, 8, 1), make_job(2, 5.5, 8, 1)},
                    cap::CapacityProfile(1.0));
  EdfAcScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  // At t=2: job 0 has 2 remaining (deadline 8 -> needs 2 of 6), job 1 needs
  // 5.5: total 7.5 > 6 -> reject. With remaining-work accounting this is
  // correctly rejected; with original workload it would also reject. Flip
  // the case: make job 1 fit exactly thanks to progress.
  Instance fits({make_job(0, 4, 8, 1), make_job(2, 4.0, 8, 1)},
                cap::CapacityProfile(1.0));
  EdfAcScheduler scheduler2;
  sim::Engine engine2(fits, scheduler2);
  auto result2 = engine2.run_to_completion();
  EXPECT_EQ(result2.completed_count, 2u);  // 2 + 4 = 6 <= 6: admitted
  EXPECT_EQ(scheduler2.rejected(), 0u);
  EXPECT_EQ(result.completed_count + result.expired_count, 2u);
}

TEST(EdfAc, LeavesValueOnTheTableVsVDoverWhenCapacityRises) {
  // Capacity is mostly far above c_lo: conservative admission rejects jobs
  // the actual path could have served; V-Dover's supplement queue catches
  // them. Aggregate over seeds for robustness.
  double edfac_total = 0.0, vdover_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 900);
    gen::PaperSetup setup;
    setup.lambda = 6.0;
    setup.expected_jobs = 300.0;
    auto instance = gen::generate_paper_instance(setup, rng);
    {
      EdfAcScheduler scheduler;
      sim::Engine engine(instance, scheduler);
      edfac_total += engine.run_to_completion().completed_value;
    }
    {
      VDoverScheduler scheduler;
      sim::Engine engine(instance, scheduler);
      vdover_total += engine.run_to_completion().completed_value;
    }
  }
  EXPECT_GT(vdover_total, edfac_total);
}

// ---------------------------------------------------------------- SRPT

TEST(Srpt, PrefersShortJob) {
  Instance instance({make_job(0, 10, 20, 1), make_job(1, 1, 20, 1)},
                    cap::CapacityProfile(1.0));
  SrptScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 1u);
  // Short job jumps the queue: completes at t=2.
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 2.0);
}

TEST(Srpt, NoPreemptionWhenRunningIsShorter) {
  Instance instance({make_job(0, 2, 10, 1), make_job(1, 5, 10, 1)},
                    cap::CapacityProfile(1.0));
  SrptScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.completed_count, 2u);
}

TEST(Srpt, ResumedJobKeyUsesUpdatedRemaining) {
  // Job 0 (p=10) preempted by job 1 (p=1) at t=5 has 5 remaining; job 2
  // (p=3, released t=6) must still beat it.
  Instance instance({make_job(0, 10, 30, 1), make_job(5, 1, 30, 1),
                     make_job(6, 3, 30, 1)},
                    cap::CapacityProfile(1.0));
  SrptScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 3u);
  const auto& times = result.value_trace.times();
  // job1 at t=6, job2 at t=9, job0 at t=14.
  EXPECT_DOUBLE_EQ(times[0], 6.0);
  EXPECT_DOUBLE_EQ(times[1], 9.0);
  EXPECT_DOUBLE_EQ(times[2], 14.0);
}

TEST(Srpt, MaximisesCompletionCountUnderOverload) {
  // Many small + one huge job, all sharing a window: SRPT finishes the
  // small ones; value-blindness is the known cost.
  std::vector<Job> jobs{make_job(0, 8, 10, 100)};
  for (int i = 0; i < 5; ++i) jobs.push_back(make_job(0, 1, 10, 1));
  Instance instance(jobs, cap::CapacityProfile(1.0));
  SrptScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 5u);
  EXPECT_DOUBLE_EQ(result.completed_value, 5.0);  // the 100 is lost
}

TEST(Srpt, SurvivesPaperWorkload) {
  Rng rng(77);
  gen::PaperSetup setup;
  setup.lambda = 8.0;
  setup.expected_jobs = 300.0;
  auto instance = gen::generate_paper_instance(setup, rng);
  SrptScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count + result.expired_count, instance.size());
}

}  // namespace
}  // namespace sjs::sched
