// Instance-bundle persistence tests: bit-exact replay of archived inputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "capacity/capacity_process.hpp"
#include "jobs/bundle.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

class BundleTest : public ::testing::Test {
 protected:
  std::string dir_ = (std::filesystem::temp_directory_path() /
                      "sjs_bundle_test")
                         .string();
  void TearDown() override { std::filesystem::remove_all(dir_); }
};

Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  gen::PaperSetup setup;
  setup.lambda = 5.0;
  setup.expected_jobs = 40.0;
  return gen::generate_paper_instance(setup, rng);
}

TEST_F(BundleTest, RoundTripPreservesEverything) {
  auto original = random_instance(1);
  save_instance_bundle(original, dir_);
  auto loaded = load_instance_bundle(dir_);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.jobs()[i], original.jobs()[i]);
  }
  EXPECT_EQ(loaded.capacity().breakpoints(),
            original.capacity().breakpoints());
  EXPECT_EQ(loaded.capacity().rates(), original.capacity().rates());
  EXPECT_DOUBLE_EQ(loaded.c_lo(), original.c_lo());
  EXPECT_DOUBLE_EQ(loaded.c_hi(), original.c_hi());
}

TEST_F(BundleTest, ReplayIsBitExact) {
  auto original = random_instance(2);
  save_instance_bundle(original, dir_);
  auto loaded = load_instance_bundle(dir_);

  auto run = [](const Instance& instance) {
    auto factory = sched::make_vdover();
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    return engine.run_to_completion();
  };
  auto a = run(original);
  auto b = run(loaded);
  EXPECT_DOUBLE_EQ(a.completed_value, b.completed_value);
  EXPECT_EQ(a.completed_count, b.completed_count);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.outcomes, b.outcomes);
}

TEST_F(BundleTest, CreatesNestedDirectories) {
  auto nested = dir_ + "/deep/nested/path";
  save_instance_bundle(random_instance(3), nested);
  EXPECT_NO_THROW(load_instance_bundle(nested));
}

TEST_F(BundleTest, MissingFilesThrow) {
  std::filesystem::create_directories(dir_);
  EXPECT_THROW(load_instance_bundle(dir_), std::runtime_error);
}

TEST_F(BundleTest, MalformedBandThrows) {
  save_instance_bundle(random_instance(4), dir_);
  {
    std::ofstream band(dir_ + "/band.csv");
    band << "c_lo,c_hi\nnot,numeric\n";
  }
  EXPECT_THROW(load_instance_bundle(dir_), std::runtime_error);
}

TEST_F(BundleTest, InconsistentBandThrows) {
  save_instance_bundle(random_instance(5), dir_);
  {
    std::ofstream band(dir_ + "/band.csv");
    // Band narrower than the saved capacity path.
    band << "c_lo,c_hi\n2.0,3.0\n";
  }
  EXPECT_THROW(load_instance_bundle(dir_), std::runtime_error);
}

}  // namespace
}  // namespace sjs
