// Tests for the discrete-event engine: exact completion times under varying
// capacity, preemption/resume, deadline semantics, timers, event ordering,
// and accounting invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "obs/digest.hpp"
#include "sim/engine.hpp"
#include "util/logging.hpp"

namespace sjs::sim {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

/// Runs whatever was just released; re-dispatches nothing on completion.
/// Used to probe raw engine mechanics.
class RunOnReleaseScheduler : public Scheduler {
 public:
  void on_release(Engine& engine, JobId job) override { engine.run(job); }
  void on_complete(Engine&, JobId) override {}
  void on_expire(Engine&, JobId, bool) override {}
  std::string name() const override { return "run-on-release"; }
};

/// Work-conserving EDF-ish test scheduler that also logs every callback.
class LoggingScheduler : public Scheduler {
 public:
  void on_release(Engine& engine, JobId job) override {
    log_.push_back({'R', job, engine.now()});
    ready_.push_back(job);
    if (engine.running() == kNoJob) dispatch(engine);
  }
  void on_complete(Engine& engine, JobId job) override {
    log_.push_back({'C', job, engine.now()});
    dispatch(engine);
  }
  void on_expire(Engine& engine, JobId job, bool) override {
    log_.push_back({'X', job, engine.now()});
    std::erase(ready_, job);
    if (engine.running() == kNoJob) dispatch(engine);
  }
  void on_timer(Engine& engine, JobId job, int tag) override {
    log_.push_back({'T', job, engine.now()});
    last_timer_tag_ = tag;
  }
  std::string name() const override { return "logging"; }

  struct Entry {
    char kind;
    JobId job;
    double time;
  };
  std::vector<Entry> log_;
  int last_timer_tag_ = -1;

 private:
  void dispatch(Engine& engine) {
    while (!ready_.empty()) {
      JobId next = ready_.front();
      ready_.erase(ready_.begin());
      if (engine.is_live(next)) {
        engine.run(next);
        return;
      }
    }
  }
  std::vector<JobId> ready_;
};

TEST(Engine, SingleJobCompletesAtExactTime) {
  Instance instance({make_job(1.0, 4.0, 10.0, 5.0)},
                    cap::CapacityProfile(2.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 5.0);
  // 4 units at rate 2 from t=1 -> completes at t=3.
  ASSERT_EQ(result.value_trace.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 3.0);
}

TEST(Engine, CompletionSpansCapacityChangeExactly) {
  // Rate 1 on [0,10), then 35: a 12-unit job started at t=8 gets 2 units by
  // t=10 and the remaining 10 units in 10/35 time.
  Instance instance({make_job(8.0, 12.0, 100.0, 1.0)},
                    cap::CapacityProfile({0.0, 10.0}, {1.0, 35.0}));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 10.0 + 10.0 / 35.0);
}

TEST(Engine, JobCompletingExactlyAtDeadlineSucceeds) {
  // p = 4 at rate 1 with window exactly 4.
  Instance instance({make_job(0.0, 4.0, 4.0, 3.0)}, cap::CapacityProfile(1.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_EQ(result.expired_count, 0u);
  EXPECT_DOUBLE_EQ(result.completed_value, 3.0);
}

TEST(Engine, InfeasibleJobFailsAtDeadline) {
  Instance instance({make_job(0.0, 10.0, 4.0, 3.0)},
                    cap::CapacityProfile(1.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 0u);
  EXPECT_EQ(result.expired_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 0.0);
  // It executed for its whole window though.
  EXPECT_DOUBLE_EQ(result.executed_work[0], 4.0);
}

TEST(Engine, UnscheduledJobExpiresUntouched) {
  /// A scheduler that never runs anything.
  class IdleScheduler : public Scheduler {
   public:
    void on_release(Engine&, JobId) override {}
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine& engine, JobId job, bool was_running) override {
      EXPECT_FALSE(was_running);
      EXPECT_FALSE(engine.is_live(job));
    }
    std::string name() const override { return "idle"; }
  };
  Instance instance({make_job(0.0, 1.0, 2.0, 1.0)}, cap::CapacityProfile(1.0));
  IdleScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.expired_count, 1u);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 0.0);
  EXPECT_DOUBLE_EQ(result.busy_time, 0.0);
}

TEST(Engine, PreemptionResumesFromPointOfPreemption) {
  // Job 0: long, released first. Job 1: short, preempts at t=2 (the logging
  // scheduler runs whatever is released when idle; we force the preemption
  // by a custom scheduler).
  class PreemptingScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override { engine.run(job); }
    void on_complete(Engine& engine, JobId job) override {
      if (job == 1 && engine.is_live(0)) engine.run(0);  // resume job 0
    }
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "preempting"; }
  };
  Instance instance(
      {make_job(0.0, 5.0, 20.0, 1.0), make_job(2.0, 1.0, 10.0, 1.0)},
      cap::CapacityProfile(1.0));
  PreemptingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 1u);
  // Job 0: 2 units by t=2, paused for 1, resumes and finishes at t=6.
  const auto& times = result.value_trace.times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 3.0);  // job 1
  EXPECT_DOUBLE_EQ(times[1], 6.0);  // job 0
}

TEST(Engine, RemainingTracksExecution) {
  class ProbeScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      EXPECT_DOUBLE_EQ(engine.remaining(job), engine.job(job).workload);
      engine.run(job);
    }
    void on_complete(Engine& engine, JobId job) override {
      EXPECT_DOUBLE_EQ(engine.remaining(job), 0.0);
      EXPECT_TRUE(engine.is_completed(job));
    }
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "probe"; }
  };
  Instance instance({make_job(0.0, 3.0, 10.0, 1.0)},
                    cap::CapacityProfile(1.5));
  ProbeScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
}

TEST(Engine, TimerFiresAtRequestedInstant) {
  class TimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.now() + 0.5, job, 42);
    }
  };
  Instance instance({make_job(1.0, 5.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  TimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  bool saw_timer = false;
  for (const auto& e : sched.log_) {
    if (e.kind == 'T') {
      saw_timer = true;
      EXPECT_DOUBLE_EQ(e.time, 1.5);
    }
  }
  EXPECT_TRUE(saw_timer);
  EXPECT_EQ(sched.last_timer_tag_, 42);
}

TEST(Engine, CancelledTimerNeverFires) {
  class CancelScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      auto id = engine.set_timer(engine.now() + 0.5, job, 1);
      engine.cancel_timer(id);
    }
  };
  Instance instance({make_job(0.0, 2.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  CancelScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  for (const auto& e : sched.log_) EXPECT_NE(e.kind, 'T');
}

TEST(Engine, TimerForDeadJobIsSuppressed) {
  class DeadTimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      // Fires after the job's deadline — must be swallowed by the engine.
      engine.set_timer(engine.job(job).deadline + 1.0, job, 9);
    }
  };
  Instance instance({make_job(0.0, 10.0, 2.0, 1.0)},
                    cap::CapacityProfile(1.0));
  DeadTimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  for (const auto& e : sched.log_) EXPECT_NE(e.kind, 'T');
}

TEST(Engine, ImmediateTimerFiresAfterCurrentHandler) {
  class ImmediateTimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.now(), job, 7);
    }
  };
  Instance instance({make_job(1.0, 2.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  ImmediateTimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  ASSERT_GE(sched.log_.size(), 2u);
  EXPECT_EQ(sched.log_[0].kind, 'R');
  EXPECT_EQ(sched.log_[1].kind, 'T');
  EXPECT_DOUBLE_EQ(sched.log_[1].time, 1.0);
}

TEST(Engine, CompletionBeatsExpiryAtSameInstant) {
  // Window exactly equal to processing time: completion and expiry collide
  // at t=4 and the completion must win.
  Instance instance({make_job(0.0, 4.0, 4.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  bool saw_expire = false;
  for (const auto& e : sched.log_) saw_expire |= (e.kind == 'X');
  EXPECT_FALSE(saw_expire);
}

TEST(Engine, ValueTraceIsCumulative) {
  Instance instance(
      {make_job(0.0, 1.0, 5.0, 2.0), make_job(0.0, 1.0, 5.0, 3.0)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  ASSERT_EQ(result.value_trace.size(), 2u);
  const auto& values = result.value_trace.values();
  EXPECT_GT(values[1], values[0]);
  EXPECT_DOUBLE_EQ(values[1], 5.0);
}

TEST(Engine, WorkConservation) {
  Instance instance(
      {make_job(0.0, 3.0, 4.0, 1.0), make_job(1.0, 2.0, 8.0, 1.0)},
      cap::CapacityProfile({0.0, 2.0}, {1.0, 3.0}));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  double executed = 0.0;
  for (double w : result.executed_work) executed += w;
  EXPECT_NEAR(executed, result.executed_total, 1e-9);
  // Executed work cannot exceed what the capacity path offered while busy.
  EXPECT_LE(result.executed_total,
            instance.capacity().work(0.0, instance.max_deadline()) + 1e-9);
}

TEST(Engine, RunningNonLiveJobThrows) {
  class BadScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId) override {
      engine.run(1);  // job 1 not released yet
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "bad"; }
  };
  Instance instance(
      {make_job(0.0, 1.0, 5.0, 1.0), make_job(3.0, 1.0, 9.0, 1.0)},
      cap::CapacityProfile(1.0));
  BadScheduler sched;
  Engine engine(instance, sched);
  EXPECT_THROW(engine.run_to_completion(), CheckError);
}

TEST(Engine, RunOutsideCallbackThrows) {
  Instance instance({make_job(0.0, 1.0, 5.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  EXPECT_THROW(engine.run(0), CheckError);
}

TEST(Engine, RunSameJobIsNoOp) {
  class RedundantScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      engine.run(job);
      engine.run(job);  // no-op, must not count a preemption
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "redundant"; }
  };
  Instance instance({make_job(0.0, 1.0, 5.0, 1.0)}, cap::CapacityProfile(1.0));
  RedundantScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.dispatches, 1u);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(Engine, IdleRunStopsExecution) {
  class StopScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      if (job == 0) engine.run(0);
      if (job == 1) engine.run(kNoJob);  // park the processor at t=1
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "stop"; }
  };
  Instance instance(
      {make_job(0.0, 5.0, 3.0, 1.0), make_job(1.0, 1.0, 2.0, 1.0)},
      cap::CapacityProfile(1.0));
  StopScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 0u);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 1.0);  // only [0,1)
  EXPECT_DOUBLE_EQ(result.busy_time, 1.0);
}

TEST(Engine, ClaxityMatchesDefinition) {
  class ClaxityProbe : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      // claxity = d − t − p_rem/c_est.
      EXPECT_DOUBLE_EQ(engine.claxity(job, 2.0),
                       engine.job(job).deadline - engine.now() -
                           engine.remaining(job) / 2.0);
      engine.run(job);
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "claxity"; }
  };
  Instance instance({make_job(1.0, 6.0, 9.0, 1.0)}, cap::CapacityProfile(3.0));
  ClaxityProbe sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
}

TEST(Engine, CapacityChangeEventsDeliveredWhenRequested) {
  class CapacityWatcher : public LoggingScheduler {
   public:
    bool wants_capacity_events() const override { return true; }
    void on_capacity_change(Engine& engine) override {
      changes_.push_back({engine.now(), engine.current_rate()});
    }
    std::vector<std::pair<double, double>> changes_;
  };
  Instance instance({make_job(0.0, 30.0, 40.0, 1.0)},
                    cap::CapacityProfile({0.0, 10.0, 20.0}, {1.0, 2.0, 1.0}));
  CapacityWatcher sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  ASSERT_EQ(sched.changes_.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.changes_[0].first, 10.0);
  EXPECT_DOUBLE_EQ(sched.changes_[0].second, 2.0);
  EXPECT_DOUBLE_EQ(sched.changes_[1].first, 20.0);
}

TEST(Engine, CompletionAndResponseTimesRecorded) {
  Instance instance(
      {make_job(1.0, 2.0, 9.0, 1.0), make_job(2.0, 50.0, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  ASSERT_EQ(result.completion_times.size(), 2u);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 3.0);   // [1, 3)
  EXPECT_TRUE(std::isnan(result.completion_times[1])); // expired
  auto responses = result.response_times();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0], 2.0);
  EXPECT_DOUBLE_EQ(result.mean_response_time(), 2.0);
}

TEST(Engine, MeanResponseTimeZeroWhenNothingCompletes) {
  Instance instance({make_job(0.0, 9.0, 1.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_DOUBLE_EQ(result.mean_response_time(), 0.0);
  EXPECT_TRUE(result.response_times().empty());
}

// ------------------------------------------------------------- timer slab

TEST(EngineTimerSlab, CancelCorruptedIdThrows) {
  Instance instance({make_job(0.0, 1.0, 5.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  // Slot index 999 was never allocated: a corrupted handle, not a stale one.
  EXPECT_THROW(engine.cancel_timer(TimerId{999}), CheckError);
}

TEST(EngineTimerSlab, StaleCancelAfterSlotReuseIsNoOp) {
  // Cancel a timer, arm a new one (which reuses the freed slot with a bumped
  // generation), then cancel the FIRST handle again: the stale cancel must
  // not kill the new timer.
  class ReuseScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      TimerId first = engine.set_timer(engine.now() + 0.25, job, 1);
      engine.cancel_timer(first);
      TimerId second = engine.set_timer(engine.now() + 0.5, job, 2);
      EXPECT_EQ(engine.live_timer_count(), 1u);
      engine.cancel_timer(first);  // stale generation: harmless no-op
      EXPECT_EQ(engine.live_timer_count(), 1u);
      (void)second;
    }
  };
  Instance instance({make_job(0.0, 2.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  ReuseScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  int timer_fires = 0;
  for (const auto& e : sched.log_) timer_fires += (e.kind == 'T');
  EXPECT_EQ(timer_fires, 1);
  EXPECT_EQ(sched.last_timer_tag_, 2);  // the second timer, not the first
  EXPECT_EQ(engine.live_timer_count(), 0u);
}

TEST(EngineTimerSlab, SlotsAreReusedNotLeaked) {
  // One timer live at a time, armed and fired N times in sequence: the slab
  // must stay at a single slot however many timers were armed.
  class ChainScheduler : public LoggingScheduler {
   public:
    void on_timer(Engine& engine, JobId job, int tag) override {
      LoggingScheduler::on_timer(engine, job, tag);
      if (tag < 8 && engine.is_live(job)) {
        engine.set_timer(engine.now() + 0.5, job, tag + 1);
      }
    }
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.now() + 0.5, job, 1);
    }
  };
  Instance instance({make_job(0.0, 6.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  ChainScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.timers_armed, 8u);
  EXPECT_EQ(result.timer_slab_slots, 1u);   // same slot recycled every time
  EXPECT_EQ(result.timer_slab_peak, 1u);
  EXPECT_EQ(engine.live_timer_count(), 0u);
}

TEST(EngineTimerSlab, LiveTimerCountTracksArmAndCancel) {
  class CountScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      TimerId a = engine.set_timer(engine.now() + 1.0, job, 1);
      engine.set_timer(engine.now() + 2.0, job, 2);
      EXPECT_EQ(engine.live_timer_count(), 2u);
      engine.cancel_timer(a);
      EXPECT_EQ(engine.live_timer_count(), 1u);
      engine.cancel_timer(kNoTimer);  // explicit no-op
      EXPECT_EQ(engine.live_timer_count(), 1u);
    }
  };
  Instance instance({make_job(0.0, 4.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  CountScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.timer_slab_peak, 2u);
  EXPECT_EQ(engine.live_timer_count(), 0u);
}

TEST(EngineTimerSlab, DeadJobTimerStillFreesItsSlot) {
  // A timer that fires after its job's deadline is swallowed (no callback),
  // but the slab slot must still come back.
  class DeadTimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.job(job).deadline + 1.0, job, 9);
    }
  };
  Instance instance({make_job(0.0, 10.0, 2.0, 1.0)},
                    cap::CapacityProfile(1.0));
  DeadTimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  EXPECT_EQ(engine.live_timer_count(), 0u);
}

// ------------------------------------------------------------ engine reuse

TEST(EngineReset, ReplaysIdenticallyOnSameInstance) {
  Instance instance(
      {make_job(0.0, 3.0, 4.0, 1.0), make_job(1.0, 2.0, 8.0, 2.0),
       make_job(1.5, 4.0, 5.0, 3.0)},
      cap::CapacityProfile({0.0, 2.0, 5.0}, {1.0, 3.0, 2.0}));

  obs::DigestSink first_digest;
  LoggingScheduler first_sched;
  Engine engine(instance, first_sched);
  engine.attach_trace(&first_digest);
  auto first = engine.run_to_completion();

  obs::DigestSink second_digest;
  LoggingScheduler second_sched;  // fresh scheduler, same engine
  engine.reset(second_sched);
  engine.attach_trace(&second_digest);
  auto second = engine.run_to_completion();

  EXPECT_EQ(first_digest.digest(), second_digest.digest());
  EXPECT_EQ(first_digest.event_count(), second_digest.event_count());
  EXPECT_EQ(first.completed_count, second.completed_count);
  EXPECT_DOUBLE_EQ(first.completed_value, second.completed_value);
  EXPECT_EQ(first.events_processed, second.events_processed);
  EXPECT_EQ(first.preemptions, second.preemptions);
  ASSERT_EQ(first.executed_work.size(), second.executed_work.size());
  for (std::size_t i = 0; i < first.executed_work.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.executed_work[i], second.executed_work[i]);
  }
}

TEST(EngineReset, ClearsTimersFromPreviousRun) {
  // Run 1 leaves nothing live, but even mid-slab state must not leak into
  // run 2: stale handles from run 1 are rejected as corrupted or stale, and
  // the slab starts empty.
  class ArmOnlyScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      saved_ = engine.set_timer(engine.now() + 50.0, job, 3);  // never fires
    }
    TimerId saved_ = kNoTimer;
  };
  Instance instance({make_job(0.0, 1.0, 2.0, 1.0)}, cap::CapacityProfile(1.0));
  ArmOnlyScheduler first;
  Engine engine(instance, first);
  engine.run_to_completion();

  LoggingScheduler second;
  engine.reset(second);
  EXPECT_EQ(engine.live_timer_count(), 0u);
  EXPECT_EQ(engine.timer_slab_size(), 0u);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  for (const auto& e : second.log_) EXPECT_NE(e.kind, 'T');
}

TEST(Engine, GeneratedValueEqualsInstanceTotal) {
  Instance instance(
      {make_job(0.0, 1.0, 1.0, 2.5), make_job(0.5, 1.0, 9.0, 4.5)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_DOUBLE_EQ(result.generated_value, 7.0);
  EXPECT_LE(result.completed_value, result.generated_value);
}

}  // namespace
}  // namespace sjs::sim
