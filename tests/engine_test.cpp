// Tests for the discrete-event engine: exact completion times under varying
// capacity, preemption/resume, deadline semantics, timers, event ordering,
// and accounting invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "sim/engine.hpp"
#include "util/logging.hpp"

namespace sjs::sim {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

/// Runs whatever was just released; re-dispatches nothing on completion.
/// Used to probe raw engine mechanics.
class RunOnReleaseScheduler : public Scheduler {
 public:
  void on_release(Engine& engine, JobId job) override { engine.run(job); }
  void on_complete(Engine&, JobId) override {}
  void on_expire(Engine&, JobId, bool) override {}
  std::string name() const override { return "run-on-release"; }
};

/// Work-conserving EDF-ish test scheduler that also logs every callback.
class LoggingScheduler : public Scheduler {
 public:
  void on_release(Engine& engine, JobId job) override {
    log_.push_back({'R', job, engine.now()});
    ready_.push_back(job);
    if (engine.running() == kNoJob) dispatch(engine);
  }
  void on_complete(Engine& engine, JobId job) override {
    log_.push_back({'C', job, engine.now()});
    dispatch(engine);
  }
  void on_expire(Engine& engine, JobId job, bool) override {
    log_.push_back({'X', job, engine.now()});
    std::erase(ready_, job);
    if (engine.running() == kNoJob) dispatch(engine);
  }
  void on_timer(Engine& engine, JobId job, int tag) override {
    log_.push_back({'T', job, engine.now()});
    last_timer_tag_ = tag;
  }
  std::string name() const override { return "logging"; }

  struct Entry {
    char kind;
    JobId job;
    double time;
  };
  std::vector<Entry> log_;
  int last_timer_tag_ = -1;

 private:
  void dispatch(Engine& engine) {
    while (!ready_.empty()) {
      JobId next = ready_.front();
      ready_.erase(ready_.begin());
      if (engine.is_live(next)) {
        engine.run(next);
        return;
      }
    }
  }
  std::vector<JobId> ready_;
};

TEST(Engine, SingleJobCompletesAtExactTime) {
  Instance instance({make_job(1.0, 4.0, 10.0, 5.0)},
                    cap::CapacityProfile(2.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 5.0);
  // 4 units at rate 2 from t=1 -> completes at t=3.
  ASSERT_EQ(result.value_trace.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 3.0);
}

TEST(Engine, CompletionSpansCapacityChangeExactly) {
  // Rate 1 on [0,10), then 35: a 12-unit job started at t=8 gets 2 units by
  // t=10 and the remaining 10 units in 10/35 time.
  Instance instance({make_job(8.0, 12.0, 100.0, 1.0)},
                    cap::CapacityProfile({0.0, 10.0}, {1.0, 35.0}));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 10.0 + 10.0 / 35.0);
}

TEST(Engine, JobCompletingExactlyAtDeadlineSucceeds) {
  // p = 4 at rate 1 with window exactly 4.
  Instance instance({make_job(0.0, 4.0, 4.0, 3.0)}, cap::CapacityProfile(1.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  EXPECT_EQ(result.expired_count, 0u);
  EXPECT_DOUBLE_EQ(result.completed_value, 3.0);
}

TEST(Engine, InfeasibleJobFailsAtDeadline) {
  Instance instance({make_job(0.0, 10.0, 4.0, 3.0)},
                    cap::CapacityProfile(1.0));
  RunOnReleaseScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 0u);
  EXPECT_EQ(result.expired_count, 1u);
  EXPECT_DOUBLE_EQ(result.completed_value, 0.0);
  // It executed for its whole window though.
  EXPECT_DOUBLE_EQ(result.executed_work[0], 4.0);
}

TEST(Engine, UnscheduledJobExpiresUntouched) {
  /// A scheduler that never runs anything.
  class IdleScheduler : public Scheduler {
   public:
    void on_release(Engine&, JobId) override {}
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine& engine, JobId job, bool was_running) override {
      EXPECT_FALSE(was_running);
      EXPECT_FALSE(engine.is_live(job));
    }
    std::string name() const override { return "idle"; }
  };
  Instance instance({make_job(0.0, 1.0, 2.0, 1.0)}, cap::CapacityProfile(1.0));
  IdleScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.expired_count, 1u);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 0.0);
  EXPECT_DOUBLE_EQ(result.busy_time, 0.0);
}

TEST(Engine, PreemptionResumesFromPointOfPreemption) {
  // Job 0: long, released first. Job 1: short, preempts at t=2 (the logging
  // scheduler runs whatever is released when idle; we force the preemption
  // by a custom scheduler).
  class PreemptingScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override { engine.run(job); }
    void on_complete(Engine& engine, JobId job) override {
      if (job == 1 && engine.is_live(0)) engine.run(0);  // resume job 0
    }
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "preempting"; }
  };
  Instance instance(
      {make_job(0.0, 5.0, 20.0, 1.0), make_job(2.0, 1.0, 10.0, 1.0)},
      cap::CapacityProfile(1.0));
  PreemptingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 1u);
  // Job 0: 2 units by t=2, paused for 1, resumes and finishes at t=6.
  const auto& times = result.value_trace.times();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 3.0);  // job 1
  EXPECT_DOUBLE_EQ(times[1], 6.0);  // job 0
}

TEST(Engine, RemainingTracksExecution) {
  class ProbeScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      EXPECT_DOUBLE_EQ(engine.remaining(job), engine.job(job).workload);
      engine.run(job);
    }
    void on_complete(Engine& engine, JobId job) override {
      EXPECT_DOUBLE_EQ(engine.remaining(job), 0.0);
      EXPECT_TRUE(engine.is_completed(job));
    }
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "probe"; }
  };
  Instance instance({make_job(0.0, 3.0, 10.0, 1.0)},
                    cap::CapacityProfile(1.5));
  ProbeScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
}

TEST(Engine, TimerFiresAtRequestedInstant) {
  class TimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.now() + 0.5, job, 42);
    }
  };
  Instance instance({make_job(1.0, 5.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  TimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  bool saw_timer = false;
  for (const auto& e : sched.log_) {
    if (e.kind == 'T') {
      saw_timer = true;
      EXPECT_DOUBLE_EQ(e.time, 1.5);
    }
  }
  EXPECT_TRUE(saw_timer);
  EXPECT_EQ(sched.last_timer_tag_, 42);
}

TEST(Engine, CancelledTimerNeverFires) {
  class CancelScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      auto id = engine.set_timer(engine.now() + 0.5, job, 1);
      engine.cancel_timer(id);
    }
  };
  Instance instance({make_job(0.0, 2.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  CancelScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  for (const auto& e : sched.log_) EXPECT_NE(e.kind, 'T');
}

TEST(Engine, TimerForDeadJobIsSuppressed) {
  class DeadTimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      // Fires after the job's deadline — must be swallowed by the engine.
      engine.set_timer(engine.job(job).deadline + 1.0, job, 9);
    }
  };
  Instance instance({make_job(0.0, 10.0, 2.0, 1.0)},
                    cap::CapacityProfile(1.0));
  DeadTimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  for (const auto& e : sched.log_) EXPECT_NE(e.kind, 'T');
}

TEST(Engine, ImmediateTimerFiresAfterCurrentHandler) {
  class ImmediateTimerScheduler : public LoggingScheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      LoggingScheduler::on_release(engine, job);
      engine.set_timer(engine.now(), job, 7);
    }
  };
  Instance instance({make_job(1.0, 2.0, 20.0, 1.0)},
                    cap::CapacityProfile(1.0));
  ImmediateTimerScheduler sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  ASSERT_GE(sched.log_.size(), 2u);
  EXPECT_EQ(sched.log_[0].kind, 'R');
  EXPECT_EQ(sched.log_[1].kind, 'T');
  EXPECT_DOUBLE_EQ(sched.log_[1].time, 1.0);
}

TEST(Engine, CompletionBeatsExpiryAtSameInstant) {
  // Window exactly equal to processing time: completion and expiry collide
  // at t=4 and the completion must win.
  Instance instance({make_job(0.0, 4.0, 4.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 1u);
  bool saw_expire = false;
  for (const auto& e : sched.log_) saw_expire |= (e.kind == 'X');
  EXPECT_FALSE(saw_expire);
}

TEST(Engine, ValueTraceIsCumulative) {
  Instance instance(
      {make_job(0.0, 1.0, 5.0, 2.0), make_job(0.0, 1.0, 5.0, 3.0)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 2u);
  ASSERT_EQ(result.value_trace.size(), 2u);
  const auto& values = result.value_trace.values();
  EXPECT_GT(values[1], values[0]);
  EXPECT_DOUBLE_EQ(values[1], 5.0);
}

TEST(Engine, WorkConservation) {
  Instance instance(
      {make_job(0.0, 3.0, 4.0, 1.0), make_job(1.0, 2.0, 8.0, 1.0)},
      cap::CapacityProfile({0.0, 2.0}, {1.0, 3.0}));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  double executed = 0.0;
  for (double w : result.executed_work) executed += w;
  EXPECT_NEAR(executed, result.executed_total, 1e-9);
  // Executed work cannot exceed what the capacity path offered while busy.
  EXPECT_LE(result.executed_total,
            instance.capacity().work(0.0, instance.max_deadline()) + 1e-9);
}

TEST(Engine, RunningNonLiveJobThrows) {
  class BadScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId) override {
      engine.run(1);  // job 1 not released yet
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "bad"; }
  };
  Instance instance(
      {make_job(0.0, 1.0, 5.0, 1.0), make_job(3.0, 1.0, 9.0, 1.0)},
      cap::CapacityProfile(1.0));
  BadScheduler sched;
  Engine engine(instance, sched);
  EXPECT_THROW(engine.run_to_completion(), CheckError);
}

TEST(Engine, RunOutsideCallbackThrows) {
  Instance instance({make_job(0.0, 1.0, 5.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  EXPECT_THROW(engine.run(0), CheckError);
}

TEST(Engine, RunSameJobIsNoOp) {
  class RedundantScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      engine.run(job);
      engine.run(job);  // no-op, must not count a preemption
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "redundant"; }
  };
  Instance instance({make_job(0.0, 1.0, 5.0, 1.0)}, cap::CapacityProfile(1.0));
  RedundantScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_EQ(result.dispatches, 1u);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(Engine, IdleRunStopsExecution) {
  class StopScheduler : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      if (job == 0) engine.run(0);
      if (job == 1) engine.run(kNoJob);  // park the processor at t=1
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "stop"; }
  };
  Instance instance(
      {make_job(0.0, 5.0, 3.0, 1.0), make_job(1.0, 1.0, 2.0, 1.0)},
      cap::CapacityProfile(1.0));
  StopScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_EQ(result.completed_count, 0u);
  EXPECT_DOUBLE_EQ(result.executed_work[0], 1.0);  // only [0,1)
  EXPECT_DOUBLE_EQ(result.busy_time, 1.0);
}

TEST(Engine, ClaxityMatchesDefinition) {
  class ClaxityProbe : public Scheduler {
   public:
    void on_release(Engine& engine, JobId job) override {
      // claxity = d − t − p_rem/c_est.
      EXPECT_DOUBLE_EQ(engine.claxity(job, 2.0),
                       engine.job(job).deadline - engine.now() -
                           engine.remaining(job) / 2.0);
      engine.run(job);
    }
    void on_complete(Engine&, JobId) override {}
    void on_expire(Engine&, JobId, bool) override {}
    std::string name() const override { return "claxity"; }
  };
  Instance instance({make_job(1.0, 6.0, 9.0, 1.0)}, cap::CapacityProfile(3.0));
  ClaxityProbe sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
}

TEST(Engine, CapacityChangeEventsDeliveredWhenRequested) {
  class CapacityWatcher : public LoggingScheduler {
   public:
    bool wants_capacity_events() const override { return true; }
    void on_capacity_change(Engine& engine) override {
      changes_.push_back({engine.now(), engine.current_rate()});
    }
    std::vector<std::pair<double, double>> changes_;
  };
  Instance instance({make_job(0.0, 30.0, 40.0, 1.0)},
                    cap::CapacityProfile({0.0, 10.0, 20.0}, {1.0, 2.0, 1.0}));
  CapacityWatcher sched;
  Engine engine(instance, sched);
  engine.run_to_completion();
  ASSERT_EQ(sched.changes_.size(), 2u);
  EXPECT_DOUBLE_EQ(sched.changes_[0].first, 10.0);
  EXPECT_DOUBLE_EQ(sched.changes_[0].second, 2.0);
  EXPECT_DOUBLE_EQ(sched.changes_[1].first, 20.0);
}

TEST(Engine, CompletionAndResponseTimesRecorded) {
  Instance instance(
      {make_job(1.0, 2.0, 9.0, 1.0), make_job(2.0, 50.0, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  ASSERT_EQ(result.completion_times.size(), 2u);
  EXPECT_DOUBLE_EQ(result.completion_times[0], 3.0);   // [1, 3)
  EXPECT_TRUE(std::isnan(result.completion_times[1])); // expired
  auto responses = result.response_times();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_DOUBLE_EQ(responses[0], 2.0);
  EXPECT_DOUBLE_EQ(result.mean_response_time(), 2.0);
}

TEST(Engine, MeanResponseTimeZeroWhenNothingCompletes) {
  Instance instance({make_job(0.0, 9.0, 1.0, 1.0)}, cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_DOUBLE_EQ(result.mean_response_time(), 0.0);
  EXPECT_TRUE(result.response_times().empty());
}

TEST(Engine, GeneratedValueEqualsInstanceTotal) {
  Instance instance(
      {make_job(0.0, 1.0, 1.0, 2.5), make_job(0.5, 1.0, 9.0, 4.5)},
      cap::CapacityProfile(1.0));
  LoggingScheduler sched;
  Engine engine(instance, sched);
  auto result = engine.run_to_completion();
  EXPECT_DOUBLE_EQ(result.generated_value, 7.0);
  EXPECT_LE(result.completed_value, result.generated_value);
}

}  // namespace
}  // namespace sjs::sim
