// Empirical validation of the paper's Sec. III-E analysis machinery using
// the V-Dover scheduler's regular-interval instrumentation:
//
//   * Lemma 1: for every regular interval I_R = [s, e],
//       ∫_s^e c(t)dt  <=  regval(I_R) + clval(I_R) / (β − 1).
//   * Structural properties of Definition 6: intervals are disjoint, ordered,
//     and (under individual admissibility) always closed by a completion.
//   * Value decomposition: V-Dover's total = Σ regval + suppval.
#include <gtest/gtest.h>

#include "jobs/workload_gen.hpp"
#include "sched/vdover.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs::sched {
namespace {

struct LemmaRun {
  Instance instance;
  std::vector<RegularInterval> intervals;
  bool interval_open;
  double beta;
  double completed_value;
  VDoverStats stats;
};

LemmaRun run_paper_instance(std::uint64_t seed, double lambda,
                            double expected_jobs) {
  Rng rng(seed);
  gen::PaperSetup setup;
  setup.lambda = lambda;
  setup.expected_jobs = expected_jobs;
  Instance instance = gen::generate_paper_instance(setup, rng);
  VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  auto result = engine.run_to_completion();
  return LemmaRun{std::move(instance), scheduler.regular_intervals(),
                  scheduler.interval_open(), scheduler.beta(),
                  result.completed_value, scheduler.stats()};
}

class Lemma1 : public ::testing::TestWithParam<int> {};

TEST_P(Lemma1, WorkloadBoundHoldsOnEveryRegularInterval) {
  auto run = run_paper_instance(static_cast<std::uint64_t>(GetParam()) + 9000,
                                6.0, 250.0);
  ASSERT_FALSE(run.intervals.empty());
  for (const auto& interval : run.intervals) {
    const double workload =
        run.instance.capacity().work(interval.start, interval.end);
    const double bound =
        interval.regval + interval.clval / (run.beta - 1.0);
    EXPECT_LE(workload, bound + 1e-6 * std::max(1.0, bound))
        << "interval [" << interval.start << ", " << interval.end << "]";
  }
}

TEST_P(Lemma1, IntervalsAreDisjointAndOrdered) {
  auto run = run_paper_instance(static_cast<std::uint64_t>(GetParam()) + 9100,
                                8.0, 250.0);
  double previous_end = -1.0;
  for (const auto& interval : run.intervals) {
    EXPECT_LE(interval.start, interval.end);
    // Two regular intervals may touch only at their endpoints (Sec. III-E).
    EXPECT_GE(interval.start, previous_end - 1e-9);
    previous_end = interval.end;
  }
}

TEST_P(Lemma1, AdmissibleRunsCloseEveryInterval) {
  // Under individual admissibility (the paper-setup default), a regular job
  // never fails, so every regular interval closes via a completion.
  auto run = run_paper_instance(static_cast<std::uint64_t>(GetParam()) + 9200,
                                6.0, 250.0);
  ASSERT_TRUE(run.instance.all_individually_admissible());
  EXPECT_FALSE(run.interval_open);
}

TEST_P(Lemma1, ValueDecomposesIntoRegvalPlusSuppval) {
  // Sec. III-F: V-Dover's value = regval + suppval (every regular completion
  // lies inside a regular interval; every other completion is a supplement).
  auto run = run_paper_instance(static_cast<std::uint64_t>(GetParam()) + 9300,
                                7.0, 250.0);
  double regval_total = 0.0;
  double clval_total = 0.0;
  for (const auto& interval : run.intervals) {
    regval_total += interval.regval;
    clval_total += interval.clval;
    EXPECT_GE(interval.clval, -1e-12);
    EXPECT_LE(interval.clval, interval.regval + 1e-9);
  }
  EXPECT_NEAR(run.completed_value,
              regval_total + run.stats.supplement_value,
              1e-6 * std::max(1.0, run.completed_value));
}

TEST_P(Lemma1, SummedBoundImpliesTheorem3Accounting) {
  // Lemma 1 summed over REG (the proof of Thm. 3(2)): total workload in REG
  // <= regval + clval/(β−1).
  auto run = run_paper_instance(static_cast<std::uint64_t>(GetParam()) + 9400,
                                6.0, 400.0);
  double workload = 0.0, regval = 0.0, clval = 0.0;
  for (const auto& interval : run.intervals) {
    workload += run.instance.capacity().work(interval.start, interval.end);
    regval += interval.regval;
    clval += interval.clval;
  }
  EXPECT_LE(workload, regval + clval / (run.beta - 1.0) +
                          1e-6 * std::max(1.0, regval));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1, ::testing::Range(0, 8));

TEST(Lemma1Structure, SingleJobMakesOneInterval) {
  Job j;
  j.release = 1.0;
  j.workload = 2.0;
  j.deadline = 5.0;
  j.value = 3.0;
  Instance instance({j}, cap::CapacityProfile(1.0));
  VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  engine.run_to_completion();
  ASSERT_EQ(scheduler.regular_intervals().size(), 1u);
  const auto& interval = scheduler.regular_intervals()[0];
  EXPECT_DOUBLE_EQ(interval.start, 1.0);
  EXPECT_DOUBLE_EQ(interval.end, 3.0);
  EXPECT_DOUBLE_EQ(interval.regval, 3.0);
  EXPECT_DOUBLE_EQ(interval.clval, 0.0);
}

TEST(Lemma1Structure, EdfChainIsOneInterval) {
  // J0 preempted by J1 (EDF): one interval covering both completions,
  // regval = both values, no 0cl involvement.
  auto job = [](double r, double p, double d, double v) {
    Job x;
    x.release = r;
    x.workload = p;
    x.deadline = d;
    x.value = v;
    return x;
  };
  // Densities >= 1 (the paper's normalisation, which Lemma 1 assumes).
  Instance instance({job(0, 4, 10, 5), job(1, 2, 5, 2.5)},
                    cap::CapacityProfile(1.0));
  VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  engine.run_to_completion();
  ASSERT_EQ(scheduler.regular_intervals().size(), 1u);
  const auto& interval = scheduler.regular_intervals()[0];
  EXPECT_DOUBLE_EQ(interval.start, 0.0);
  EXPECT_DOUBLE_EQ(interval.end, 6.0);
  EXPECT_DOUBLE_EQ(interval.regval, 7.5);
  EXPECT_DOUBLE_EQ(interval.clval, 0.0);
}

TEST(Lemma1Structure, OclWinnerCountsInClval) {
  auto job = [](double r, double p, double d, double v) {
    Job x;
    x.release = r;
    x.workload = p;
    x.deadline = d;
    x.value = v;
    return x;
  };
  // J1 wins the 0cl test (value 100 vs beta * 4) and completes.
  Instance instance({job(0, 4, 4, 4), job(1, 3, 4, 100)},
                    cap::CapacityProfile(1.0));
  VDoverScheduler scheduler;
  sim::Engine engine(instance, scheduler);
  engine.run_to_completion();
  ASSERT_EQ(scheduler.regular_intervals().size(), 1u);
  const auto& interval = scheduler.regular_intervals()[0];
  EXPECT_DOUBLE_EQ(interval.regval, 100.0);
  EXPECT_DOUBLE_EQ(interval.clval, 100.0);
}

}  // namespace
}  // namespace sjs::sched
