// Conservative-LLF scheduler tests: least-laxity dispatch, laxity-crossing
// preemption, the anti-thrash quantum, and underloaded sanity.
#include <gtest/gtest.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/feasibility.hpp"
#include "sched/llf.hpp"
#include "sim/engine.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

sim::SimResult run_llf(const Instance& instance, double c_est = 0.0,
                       double quantum = 0.05) {
  sched::LlfScheduler scheduler(c_est, quantum);
  sim::Engine engine(instance, scheduler);
  return engine.run_to_completion();
}

TEST(Llf, RunsSingleJob) {
  Instance instance({make_job(0, 2, 5, 1)}, cap::CapacityProfile(1.0));
  auto result = run_llf(instance);
  EXPECT_EQ(result.completed_count, 1u);
}

TEST(Llf, PrefersSmallerLaxityAtRelease) {
  // Job 0: laxity 8 at t=0. Job 1 (released t=1): laxity 0 — must preempt.
  Instance instance(
      {make_job(0.0, 2.0, 10.0, 1.0), make_job(1.0, 3.0, 4.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_llf(instance);
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_GE(result.preemptions, 1u);
  // Job 1 runs [1,4): completes first.
  EXPECT_DOUBLE_EQ(result.value_trace.times()[0], 4.0);
}

TEST(Llf, NoPreemptionWhenRunningHasLeastLaxity) {
  Instance instance(
      {make_job(0.0, 3.0, 3.5, 1.0), make_job(1.0, 1.0, 9.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_llf(instance);
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_EQ(result.preemptions, 0u);
}

TEST(Llf, CrossingPreemptionViaTimer) {
  // Job 0 has plenty of laxity; job 1 waits and its laxity erodes until it
  // crosses below job 0's — the crossing timer must fire and switch.
  // Job 0: p=6, d=20 -> laxity at 0 is 14. Job 1: p=2, d=9 -> laxity 7.
  // Job 1 preempts immediately at release (smaller laxity).
  // To exercise the *timer* path instead, give job 1 larger initial laxity
  // but a much closer deadline... laxity ordering is what matters; instead:
  // job 1 released while job 0 runs with SMALLER remaining laxity gap.
  Instance instance(
      {make_job(0.0, 6.0, 20.0, 1.0), make_job(1.0, 2.0, 16.4, 1.0)},
      cap::CapacityProfile(1.0));
  // At t=1: job 0 laxity = 20-1-5 = 14, job 1 laxity = 16.4-1-2 = 13.4 —
  // job 1 preempts at release. Once job 1 runs, its laxity holds at 13.4
  // while job 0's erodes; they cross at 14-? ... job 0 queued: laxity
  // 20-t-5; job 1 running at rate 1 = c_est: laxity constant 13.4. Cross at
  // 20-t-5 = 13.4 -> t = 1.6, timer preempts back to job 0.
  auto result = run_llf(instance, 1.0, 0.01);
  EXPECT_EQ(result.completed_count, 2u);
  EXPECT_GE(result.preemptions, 2u);
}

TEST(Llf, QuantumBoundsPreemptionRate) {
  // Two identical jobs with equal laxity: without the quantum LLF would
  // time-slice unboundedly. Dispatch count must stay modest.
  Instance instance(
      {make_job(0.0, 5.0, 30.0, 1.0), make_job(0.0, 5.0, 30.0, 1.0)},
      cap::CapacityProfile(1.0));
  auto result = run_llf(instance, 1.0, 0.5);
  EXPECT_EQ(result.completed_count, 2u);
  // 10 time units of work, one switch per >= 0.5 -> at most ~21 dispatches.
  EXPECT_LE(result.dispatches, 25u);
}

TEST(Llf, UnderloadedFeasibleSetCompleted) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 300);
    cap::TwoStateMarkovParams cp;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 30.0;
    auto profile = cap::sample_two_state_markov(cp, 120.0, rng);
    // Low utilisation so LLF's quantum artefacts cannot cause a miss.
    auto jobs = gen::generate_underloaded_jobs(profile, 100.0, 15, 0.5, rng);
    Instance instance(jobs, profile);
    auto result = run_llf(instance);
    EXPECT_EQ(result.completed_count, instance.size()) << "seed " << seed;
  }
}

TEST(Llf, ExplicitEstimateUsedInsteadOfBand) {
  // With c_est = c_hi the laxity of a long job looks comfortable; behaviour
  // should still complete a trivially feasible instance.
  Instance instance({make_job(0, 2, 50, 1), make_job(1, 2, 40, 1)},
                    cap::CapacityProfile({0.0, 5.0}, {1.0, 2.0}));
  auto result = run_llf(instance, 2.0);
  EXPECT_EQ(result.completed_count, 2u);
}

TEST(Llf, RejectsNonPositiveQuantum) {
  Instance instance({make_job(0, 1, 5, 1)}, cap::CapacityProfile(1.0));
  sched::LlfScheduler scheduler(1.0, 0.0);
  sim::Engine engine(instance, scheduler);
  EXPECT_THROW(engine.run_to_completion(), CheckError);
}

}  // namespace
}  // namespace sjs
