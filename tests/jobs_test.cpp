// Tests for src/jobs: Job semantics, Instance canonicalisation and
// validation, serialization, and the workload generators (including the
// paper's Sec. IV setup invariants).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "capacity/capacity_process.hpp"
#include "jobs/instance.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/feasibility.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

Job make_job(double r, double p, double d, double v) {
  Job j;
  j.release = r;
  j.workload = p;
  j.deadline = d;
  j.value = v;
  return j;
}

// ---------------------------------------------------------------- Job

TEST(Job, ValueDensityAndWindow) {
  Job j = make_job(1.0, 2.0, 5.0, 6.0);
  EXPECT_DOUBLE_EQ(j.value_density(), 3.0);
  EXPECT_DOUBLE_EQ(j.window(), 4.0);
}

TEST(Job, IndividualAdmissibility) {
  // Definition 4: d − r >= p / c_lo.
  Job j = make_job(0.0, 4.0, 2.0, 1.0);
  EXPECT_TRUE(j.individually_admissible(2.0));   // needs 2.0 <= 2.0
  EXPECT_FALSE(j.individually_admissible(1.9));  // needs ~2.1 > 2.0
}

TEST(Job, LaxityDefinition) {
  Job j = make_job(0.0, 4.0, 10.0, 1.0);
  // Definition 5 with c_est = 2: d − t − p_rem/c_est.
  EXPECT_DOUBLE_EQ(j.laxity(3.0, 4.0, 2.0), 10.0 - 3.0 - 2.0);
  EXPECT_DOUBLE_EQ(j.laxity(3.0, 2.0, 2.0), 6.0);
}

TEST(Job, ValidityChecks) {
  EXPECT_TRUE(make_job(0, 1, 1, 1).valid());
  EXPECT_FALSE(make_job(-1, 1, 1, 1).valid());          // negative release
  EXPECT_FALSE(make_job(0, 0, 1, 1).valid());           // zero workload
  EXPECT_FALSE(make_job(2, 1, 2, 1).valid());           // deadline == release
  EXPECT_FALSE(make_job(0, 1, 1, -0.5).valid());        // negative value
  Job nan_job = make_job(0, 1, 1, 1);
  nan_job.deadline = std::nan("");
  EXPECT_FALSE(nan_job.valid());
}

TEST(Job, ToStringMentionsFields) {
  auto s = make_job(1, 2, 3, 4).to_string();
  EXPECT_NE(s.find("r=1"), std::string::npos);
  EXPECT_NE(s.find("p=2"), std::string::npos);
}

// ---------------------------------------------------------------- Instance

TEST(Instance, SortsByReleaseAndAssignsIds) {
  std::vector<Job> jobs{make_job(5, 1, 7, 1), make_job(1, 1, 3, 1),
                        make_job(3, 1, 9, 1)};
  Instance instance(jobs, cap::CapacityProfile(1.0));
  ASSERT_EQ(instance.size(), 3u);
  EXPECT_DOUBLE_EQ(instance.jobs()[0].release, 1.0);
  EXPECT_DOUBLE_EQ(instance.jobs()[1].release, 3.0);
  EXPECT_DOUBLE_EQ(instance.jobs()[2].release, 5.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(instance.jobs()[i].id, static_cast<JobId>(i));
    EXPECT_EQ(instance.job(static_cast<JobId>(i)).id, static_cast<JobId>(i));
  }
}

TEST(Instance, ImportanceRatio) {
  std::vector<Job> jobs{make_job(0, 1, 2, 1), make_job(0, 1, 2, 7),
                        make_job(0, 2, 4, 6)};  // densities 1, 7, 3
  Instance instance(jobs, cap::CapacityProfile(1.0));
  EXPECT_DOUBLE_EQ(instance.importance_ratio(), 7.0);
}

TEST(Instance, ImportanceRatioEmptyIsOne) {
  Instance instance({}, cap::CapacityProfile(1.0));
  EXPECT_DOUBLE_EQ(instance.importance_ratio(), 1.0);
}

TEST(Instance, Totals) {
  std::vector<Job> jobs{make_job(0, 2, 3, 5), make_job(1, 3, 8, 7)};
  Instance instance(jobs, cap::CapacityProfile(1.0));
  EXPECT_DOUBLE_EQ(instance.total_value(), 12.0);
  EXPECT_DOUBLE_EQ(instance.total_workload(), 5.0);
  EXPECT_DOUBLE_EQ(instance.max_deadline(), 8.0);
}

TEST(Instance, BandDefaultsToProfileMinMax) {
  cap::CapacityProfile p({0.0, 1.0}, {2.0, 6.0});
  Instance instance({make_job(0, 1, 2, 1)}, p);
  EXPECT_DOUBLE_EQ(instance.c_lo(), 2.0);
  EXPECT_DOUBLE_EQ(instance.c_hi(), 6.0);
  EXPECT_DOUBLE_EQ(instance.delta(), 3.0);
}

TEST(Instance, RejectsPathOutsideDeclaredBand) {
  cap::CapacityProfile p({0.0, 1.0}, {1.0, 35.0});
  EXPECT_THROW(Instance({make_job(0, 1, 2, 1)}, p, 2.0, 35.0), CheckError);
  EXPECT_THROW(Instance({make_job(0, 1, 2, 1)}, p, 1.0, 30.0), CheckError);
}

TEST(Instance, RejectsInvalidJob) {
  EXPECT_THROW(Instance({make_job(0, -1, 2, 1)}, cap::CapacityProfile(1.0)),
               CheckError);
}

TEST(Instance, AdmissibilityScan) {
  // c_lo = 2: first job needs window >= 1, second needs >= 3.
  std::vector<Job> jobs{make_job(0, 2, 1, 1), make_job(0, 6, 2, 1)};
  Instance instance(jobs, cap::CapacityProfile(2.0));
  EXPECT_FALSE(instance.all_individually_admissible());
  EXPECT_EQ(instance.inadmissible_jobs().size(), 1u);
  auto cleaned = instance.drop_inadmissible();
  EXPECT_EQ(cleaned.size(), 1u);
  EXPECT_TRUE(cleaned.all_individually_admissible());
}

TEST(Instance, NormalizedSetsMinDensityToOne) {
  std::vector<Job> jobs{make_job(0, 2, 4, 1),    // density 0.5 (the min)
                        make_job(0, 1, 2, 3)};   // density 3
  Instance instance(jobs, cap::CapacityProfile(1.0));
  auto normalized = instance.normalized();
  double min_density = 1e300;
  for (const auto& j : normalized.jobs()) {
    min_density = std::min(min_density, j.value_density());
  }
  EXPECT_NEAR(min_density, 1.0, 1e-12);
  // Importance ratio is scale-invariant.
  EXPECT_NEAR(normalized.importance_ratio(), instance.importance_ratio(),
              1e-12);
  // Values scaled by exactly 1/0.5 = 2.
  EXPECT_NEAR(normalized.total_value(), instance.total_value() * 2.0, 1e-12);
}

TEST(Instance, NormalizedEmptyAndAlreadyNormalised) {
  Instance empty({}, cap::CapacityProfile(1.0));
  EXPECT_EQ(empty.normalized().size(), 0u);
  std::vector<Job> jobs{make_job(0, 2, 4, 2)};  // density exactly 1
  Instance instance(jobs, cap::CapacityProfile(1.0));
  EXPECT_DOUBLE_EQ(instance.normalized().total_value(),
                   instance.total_value());
}

class InstanceIo : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "sjs_jobs_test.csv")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(InstanceIo, SaveLoadRoundTrip) {
  std::vector<Job> jobs{make_job(0.5, 1.25, 2.75, 3.5),
                        make_job(1.0, 0.1, 9.0, 0.7)};
  Instance instance(jobs, cap::CapacityProfile(1.0));
  instance.save_jobs(path_);
  auto loaded = Instance::load_jobs(path_);
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded[i], instance.jobs()[i]);
  }
}

TEST_F(InstanceIo, LoadRejectsBadRows) {
  {
    std::ofstream out(path_);
    out << "id,release,workload,deadline,value\n0,0.0,1.0\n";
  }
  EXPECT_THROW(Instance::load_jobs(path_), std::runtime_error);
}

TEST_F(InstanceIo, LoadRejectsInvalidJob) {
  {
    std::ofstream out(path_);
    out << "0,5.0,1.0,4.0,1.0\n";  // deadline before release
  }
  EXPECT_THROW(Instance::load_jobs(path_), std::runtime_error);
}

// ---------------------------------------------------------------- generators

TEST(WorkloadGen, PoissonCountNearLambdaH) {
  Rng rng(1);
  gen::JobGenParams params;
  params.lambda = 5.0;
  params.horizon = 2000.0;
  auto jobs = gen::generate_jobs(params, rng);
  EXPECT_NEAR(static_cast<double>(jobs.size()), 10000.0, 500.0);
}

TEST(WorkloadGen, ReleasesWithinHorizonAndSorted) {
  Rng rng(2);
  gen::JobGenParams params;
  params.horizon = 100.0;
  auto jobs = gen::generate_jobs(params, rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].release, 0.0);
    EXPECT_LT(jobs[i].release, 100.0);
    if (i) EXPECT_GE(jobs[i].release, jobs[i - 1].release);
  }
}

TEST(WorkloadGen, ZeroConservativeLaxityAtRelease) {
  // The paper's setup: relative deadline = p / c_lo exactly.
  Rng rng(3);
  gen::JobGenParams params;
  params.slack_factor = 1.0;
  params.c_lo = 1.0;
  auto jobs = gen::generate_jobs(params, rng);
  ASSERT_FALSE(jobs.empty());
  for (const auto& j : jobs) {
    EXPECT_NEAR(j.window(), j.workload / params.c_lo, 1e-12);
    EXPECT_NEAR(j.laxity(j.release, j.workload, params.c_lo), 0.0, 1e-12);
  }
}

TEST(WorkloadGen, DensityInRange) {
  Rng rng(4);
  gen::JobGenParams params;
  params.density_lo = 1.0;
  params.density_hi = 7.0;
  auto jobs = gen::generate_jobs(params, rng);
  for (const auto& j : jobs) {
    EXPECT_GE(j.value_density(), 1.0 - 1e-12);
    EXPECT_LE(j.value_density(), 7.0 + 1e-12);
  }
}

TEST(WorkloadGen, WorkloadMeanMatches) {
  Rng rng(5);
  gen::JobGenParams params;
  params.lambda = 10.0;
  params.horizon = 2000.0;
  params.workload_mean = 2.0;
  auto jobs = gen::generate_jobs(params, rng);
  double mean = 0.0;
  for (const auto& j : jobs) mean += j.workload;
  mean /= static_cast<double>(jobs.size());
  EXPECT_NEAR(mean, 2.0, 0.1);
}

TEST(WorkloadGen, AllDistributionsProducePositiveWork) {
  for (auto dist :
       {gen::WorkloadDist::kExponential, gen::WorkloadDist::kDeterministic,
        gen::WorkloadDist::kBoundedPareto, gen::WorkloadDist::kUniform}) {
    Rng rng(6);
    gen::JobGenParams params;
    params.workload_dist = dist;
    params.horizon = 50.0;
    auto jobs = gen::generate_jobs(params, rng);
    for (const auto& j : jobs) EXPECT_GT(j.workload, 0.0);
  }
}

TEST(PaperSetup, HorizonFormula) {
  gen::PaperSetup setup;
  setup.lambda = 8.0;
  setup.expected_jobs = 2000.0;
  EXPECT_DOUBLE_EQ(setup.horizon(), 250.0);
}

TEST(PaperSetup, InstanceMatchesPaperParameters) {
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  Rng rng(7);
  auto instance = gen::generate_paper_instance(setup, rng);
  EXPECT_DOUBLE_EQ(instance.c_lo(), 1.0);
  EXPECT_DOUBLE_EQ(instance.c_hi(), 35.0);
  EXPECT_LE(instance.importance_ratio(), 7.0 + 1e-9);
  // slack_factor 1.0 puts every job exactly at the admissibility boundary.
  EXPECT_TRUE(instance.all_individually_admissible());
  // Roughly 2000 expected jobs.
  EXPECT_NEAR(static_cast<double>(instance.size()), 2000.0, 250.0);
  // Capacity must cover the last deadline.
  EXPECT_GE(instance.capacity().breakpoints().back() +
                1e9,  // profile extends to infinity anyway
            0.0);
}

TEST(PaperSetup, SubUnitSlackFactorBreaksAdmissibility) {
  gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.slack_factor = 0.5;
  Rng rng(8);
  auto instance = gen::generate_paper_instance(setup, rng);
  EXPECT_FALSE(instance.all_individually_admissible());
}

TEST(UnderloadedGen, ProducesFeasibleSet) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    cap::TwoStateMarkovParams cp;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 20.0;
    auto profile = cap::sample_two_state_markov(cp, 100.0, rng);
    auto jobs =
        gen::generate_underloaded_jobs(profile, 100.0, 20, 0.9, rng);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      jobs[i].id = static_cast<JobId>(i);
    }
    EXPECT_TRUE(offline::edf_feasible(jobs, profile)) << "seed " << seed;
  }
}

TEST(MmppGen, ArrivalCountBetweenPhaseRates) {
  Rng rng(20);
  gen::JobGenParams shape;
  shape.horizon = 5000.0;
  gen::MmppParams mmpp;
  mmpp.lambda_low = 2.0;
  mmpp.lambda_high = 10.0;
  mmpp.mean_sojourn_low = mmpp.mean_sojourn_high = 20.0;
  auto jobs = gen::generate_mmpp_jobs(shape, mmpp, rng);
  // Symmetric sojourns: expected rate = (2 + 10)/2 = 6.
  const double rate = static_cast<double>(jobs.size()) / shape.horizon;
  EXPECT_GT(rate, 4.0);
  EXPECT_LT(rate, 8.0);
}

TEST(MmppGen, ReleasesSortedWithinHorizon) {
  Rng rng(21);
  gen::JobGenParams shape;
  shape.horizon = 200.0;
  auto jobs = gen::generate_mmpp_jobs(shape, gen::MmppParams{}, rng);
  ASSERT_FALSE(jobs.empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_LT(jobs[i].release, 200.0);
    if (i) EXPECT_GE(jobs[i].release, jobs[i - 1].release);
    EXPECT_TRUE(jobs[i].valid());
  }
}

TEST(MmppGen, BurstierThanPoissonAtSameMeanRate) {
  // Compare the variance of arrivals per unit-time window: MMPP with a big
  // rate spread must exceed Poisson at the same mean rate.
  auto window_variance = [](const std::vector<Job>& jobs, double horizon) {
    std::vector<int> counts(static_cast<std::size_t>(horizon), 0);
    for (const auto& j : jobs) {
      ++counts[static_cast<std::size_t>(j.release)];
    }
    double mean = 0.0;
    for (int c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (int c : counts) var += (c - mean) * (c - mean);
    return var / static_cast<double>(counts.size());
  };
  Rng rng(22);
  gen::JobGenParams shape;
  shape.horizon = 2000.0;
  gen::MmppParams mmpp;
  mmpp.lambda_low = 1.0;
  mmpp.lambda_high = 11.0;
  mmpp.mean_sojourn_low = mmpp.mean_sojourn_high = 25.0;
  auto bursty = gen::generate_mmpp_jobs(shape, mmpp, rng);

  gen::JobGenParams poisson = shape;
  poisson.lambda = 6.0;  // same mean rate
  auto smooth = gen::generate_jobs(poisson, rng);

  EXPECT_GT(window_variance(bursty, shape.horizon),
            1.5 * window_variance(smooth, shape.horizon));
}

TEST(MmppGen, RejectsBadParameters) {
  Rng rng(23);
  gen::JobGenParams shape;
  gen::MmppParams mmpp;
  mmpp.lambda_low = 0.0;
  EXPECT_THROW(gen::generate_mmpp_jobs(shape, mmpp, rng), CheckError);
}

TEST(SmallRandomGen, RespectsAdmissibilityWindow) {
  Rng rng(9);
  auto jobs = gen::generate_small_random_jobs(50, 10.0, 7.0, 1.0, 3.0, rng);
  EXPECT_EQ(jobs.size(), 50u);
  for (const auto& j : jobs) {
    EXPECT_GE(j.window() + 1e-12, j.workload);  // admissible at c_lo = 1
    EXPECT_LE(j.window(), 3.0 * j.workload + 1e-9);
  }
}

}  // namespace
}  // namespace sjs
