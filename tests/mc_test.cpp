// Monte-Carlo driver tests: determinism, common random numbers, thread-count
// independence, aggregation, and Table-I row construction.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "mc/monte_carlo.hpp"
#include "mc/table.hpp"
#include "util/logging.hpp"

namespace sjs::mc {
namespace {

gen::PaperSetup small_setup(double lambda = 6.0) {
  gen::PaperSetup setup;
  setup.lambda = lambda;
  setup.expected_jobs = 60.0;  // keep unit tests fast
  return setup;
}

TEST(MonteCarlo, DeterministicAcrossInvocations) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 6;
  config.seed = 9;
  config.threads = 2;
  auto factories = sched::paper_lineup({1.0, 35.0});
  auto a = run_monte_carlo(config, factories);
  auto b = run_monte_carlo(config, factories);
  for (std::size_t s = 0; s < factories.size(); ++s) {
    EXPECT_EQ(a.per_scheduler[s].value_fractions,
              b.per_scheduler[s].value_fractions);
  }
}

TEST(MonteCarlo, ThreadCountDoesNotChangeResults) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 6;
  config.seed = 10;
  auto factories = sched::paper_lineup({1.0});
  config.threads = 1;
  auto serial = run_monte_carlo(config, factories);
  config.threads = 4;
  auto parallel = run_monte_carlo(config, factories);
  for (std::size_t s = 0; s < factories.size(); ++s) {
    EXPECT_EQ(serial.per_scheduler[s].value_fractions,
              parallel.per_scheduler[s].value_fractions);
  }
}

TEST(MonteCarlo, ReplayDigestsIdenticalAcrossThreadCounts) {
  // The determinism contract as a checkable value: every run's full engine
  // event stream hashes to the same 64-bit digest whether the campaign ran
  // on one thread or eight.
  McConfig config;
  config.setup = small_setup();
  config.runs = 8;
  config.seed = 21;
  config.compute_digests = true;
  auto factories = sched::paper_lineup({1.0, 35.0});
  config.threads = 1;
  auto serial = run_monte_carlo(config, factories);
  config.threads = 8;
  auto parallel = run_monte_carlo(config, factories);
  for (std::size_t s = 0; s < factories.size(); ++s) {
    EXPECT_EQ(serial.per_scheduler[s].value_fractions,
              parallel.per_scheduler[s].value_fractions);
    ASSERT_EQ(serial.per_scheduler[s].run_digests.size(), config.runs);
    EXPECT_EQ(serial.per_scheduler[s].run_digests,
              parallel.per_scheduler[s].run_digests);
    EXPECT_EQ(serial.per_scheduler[s].combined_digest,
              parallel.per_scheduler[s].combined_digest);
    EXPECT_NE(serial.per_scheduler[s].combined_digest, 0u);
  }
  // Different schedulers on the same instances must diverge somewhere.
  EXPECT_NE(serial.per_scheduler[0].combined_digest,
            serial.per_scheduler[1].combined_digest);
}

TEST(MonteCarlo, DigestsOffByDefault) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 2;
  auto factories = sched::paper_lineup({1.0});
  auto outcome = run_monte_carlo(config, factories);
  EXPECT_TRUE(outcome.per_scheduler[0].run_digests.empty());
  EXPECT_EQ(outcome.per_scheduler[0].combined_digest, 0u);
}

TEST(MonteCarlo, MetricsRegistryCollectsAcrossRuns) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 4;
  config.threads = 2;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  auto factories = sched::paper_lineup({1.0});
  auto outcome = run_monte_carlo(config, factories);
  auto snap = registry.snapshot();
  // Every run emits exactly one run_start/run_end pair per scheduler.
  EXPECT_EQ(snap.counters.at("trace.run_start"),
            static_cast<double>(config.runs * factories.size()));
  EXPECT_EQ(snap.counters.at("trace.run_end"),
            static_cast<double>(config.runs * factories.size()));
  // Completions feed the response-time distribution.
  ASSERT_TRUE(snap.distributions.count("job.response_time"));
  EXPECT_GT(snap.distributions.at("job.response_time").count(), 0u);
  // Engine occupancy gauges/counters ride along with every metrics-enabled
  // campaign (gauges merge by max across shards: the worst run).
  ASSERT_TRUE(snap.gauges.count(obs::kGaugeTimerSlabPeak));
  ASSERT_TRUE(snap.gauges.count(obs::kGaugeEventHeapPeak));
  EXPECT_GT(snap.gauges.at(obs::kGaugeEventHeapPeak), 0.0);
  ASSERT_TRUE(snap.counters.count(obs::kCounterTimersArmed));
  EXPECT_GT(snap.counters.at(obs::kCounterTimersArmed), 0.0);
  // Timer-wheel churn stats ride along too (values may be zero on a
  // workload this small, but the keys must be present).
  ASSERT_TRUE(snap.counters.count(obs::kCounterTimerCascades));
  ASSERT_TRUE(snap.counters.count(obs::kCounterTimerCascadeEntries));
  ASSERT_TRUE(snap.gauges.count(obs::kGaugeTimerBucketPeak));
  (void)outcome;
}

TEST(MonteCarlo, SeedChangesResults) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 4;
  auto factories = sched::paper_lineup({1.0});
  config.seed = 1;
  auto a = run_monte_carlo(config, factories);
  config.seed = 2;
  auto b = run_monte_carlo(config, factories);
  EXPECT_NE(a.per_scheduler[0].value_fractions,
            b.per_scheduler[0].value_fractions);
}

TEST(MonteCarlo, SimulateOneMatchesDriver) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 3;
  config.seed = 11;
  config.threads = 1;
  auto factories = sched::paper_lineup({1.0});
  auto outcome = run_monte_carlo(config, factories);
  for (std::uint64_t run = 0; run < config.runs; ++run) {
    auto result = simulate_one(config.setup, config.seed, run, factories[0]);
    EXPECT_DOUBLE_EQ(result.value_fraction(),
                     outcome.per_scheduler[0].value_fractions[run])
        << "run " << run;
  }
}

TEST(MonteCarlo, FractionsAreValidAndSummarised) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 8;
  auto factories = sched::extended_lineup({1.0, 35.0});
  auto outcome = run_monte_carlo(config, factories);
  for (const auto& agg : outcome.per_scheduler) {
    EXPECT_EQ(agg.value_fractions.size(), config.runs);
    for (double f : agg.value_fractions) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
    EXPECT_EQ(agg.fraction_summary.count, config.runs);
    EXPECT_GE(agg.fraction_summary.mean, 0.0);
    EXPECT_LE(agg.fraction_summary.mean, 1.0);
    EXPECT_GT(agg.mean_completed + agg.mean_expired, 0.0);
  }
}

TEST(MonteCarlo, TracesKeptOnlyWhenRequested) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 2;
  auto factories = sched::paper_lineup({1.0});
  auto without = run_monte_carlo(config, factories);
  EXPECT_TRUE(without.per_scheduler[0].traces.empty());
  config.keep_traces = true;
  auto with = run_monte_carlo(config, factories);
  ASSERT_EQ(with.per_scheduler[0].traces.size(), 2u);
  EXPECT_FALSE(with.per_scheduler.back().traces[0].empty());
}

TEST(MonteCarlo, RejectsEmptyConfig) {
  McConfig config;
  config.runs = 0;
  EXPECT_THROW(run_monte_carlo(config, sched::paper_lineup({1.0})),
               CheckError);
  config.runs = 1;
  EXPECT_THROW(run_monte_carlo(config, {}), CheckError);
}

TEST(MonteCarlo, RunsCsvDumpsEverySample) {
  McConfig config;
  config.setup = small_setup();
  config.runs = 5;
  auto factories = sched::paper_lineup({1.0, 35.0});
  auto outcome = run_monte_carlo(config, factories);
  const auto path =
      (std::filesystem::temp_directory_path() / "sjs_runs_test.csv").string();
  save_runs_csv(outcome, path);
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);  // header + 5 runs
  EXPECT_NE(lines[0].find("V-Dover"), std::string::npos);
  // Run ids are integer join keys, not measurements: "3", never "3.000000".
  for (std::size_t run = 1; run < lines.size(); ++run) {
    const std::string id = lines[run].substr(0, lines[run].find(','));
    EXPECT_EQ(id, std::to_string(run - 1));
  }
  // Spot-check one cell round-trips.
  auto fields = lines[1];
  EXPECT_NE(fields.find(','), std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- table

McOutcome tiny_outcome() {
  McConfig config;
  config.setup = small_setup();
  config.runs = 4;
  return run_monte_carlo(config, sched::paper_lineup({1.0, 35.0}));
}

TEST(Table, RowMarksBestDoverAndComputesGain) {
  auto outcome = tiny_outcome();
  auto row = make_row(6.0, outcome, /*vdover_index=*/2);
  EXPECT_EQ(row.percent.size(), 3u);
  ASSERT_GE(row.best_dover_index, 0);
  EXPECT_LT(row.best_dover_index, 2);  // V-Dover is not a Dover column
  EXPECT_DOUBLE_EQ(
      row.best_dover_percent,
      std::max(row.percent[0], row.percent[1]));
  EXPECT_NEAR(row.gain_percent,
              100.0 * (row.vdover_percent / row.best_dover_percent - 1.0),
              1e-9);
}

TEST(Table, RenderContainsColumnsAndGain) {
  auto outcome = tiny_outcome();
  Table table;
  for (const auto& agg : outcome.per_scheduler) {
    table.scheduler_names.push_back(agg.name);
  }
  table.vdover_index = 2;
  table.rows.push_back(make_row(6.0, outcome, 2));
  auto text = table.render();
  EXPECT_NE(text.find("lambda"), std::string::npos);
  EXPECT_NE(text.find("V-Dover"), std::string::npos);
  EXPECT_NE(text.find("gain"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
}

TEST(Table, CsvRoundTripsRowCount) {
  auto outcome = tiny_outcome();
  Table table;
  for (const auto& agg : outcome.per_scheduler) {
    table.scheduler_names.push_back(agg.name);
  }
  table.vdover_index = 2;
  table.rows.push_back(make_row(4.0, outcome, 2));
  table.rows.push_back(make_row(6.0, outcome, 2));
  const auto path =
      (std::filesystem::temp_directory_path() / "sjs_table_test.csv").string();
  table.save_csv(path);
  // header + 2 rows
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3);
  std::filesystem::remove(path);
}

TEST(Table, RowRejectsBadVdoverIndex) {
  auto outcome = tiny_outcome();
  EXPECT_THROW(make_row(6.0, outcome, 99), CheckError);
}

}  // namespace
}  // namespace sjs::mc
