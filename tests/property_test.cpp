// Cross-cutting engine/scheduler invariants under randomised stress:
// whatever the scheduler does (including a deliberately chaotic one), the
// engine must uphold work conservation, window containment, value
// accounting, and outcome partitioning.
#include <gtest/gtest.h>

#include <fstream>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace sjs {
namespace {

/// A chaos-monkey scheduler: at every interrupt it runs a uniformly random
/// live job (or idles). Exercises engine paths no sane policy reaches.
class RandomScheduler : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  void on_release(sim::Engine& engine, JobId) override { act(engine); }
  void on_complete(sim::Engine& engine, JobId) override { act(engine); }
  void on_expire(sim::Engine& engine, JobId, bool) override { act(engine); }
  std::string name() const override { return "random"; }

 private:
  void act(sim::Engine& engine) {
    std::vector<JobId> live;
    for (JobId id = 0; id < static_cast<JobId>(engine.job_count()); ++id) {
      if (engine.is_live(id)) live.push_back(id);
    }
    if (live.empty() || rng_.bernoulli(0.2)) {
      engine.run(kNoJob);
      return;
    }
    engine.run(live[rng_.below(live.size())]);
  }
  Rng rng_;
};

struct NamedRun {
  std::string name;
  sim::SimResult result;
};

std::vector<NamedRun> run_everything(const Instance& instance,
                                     std::uint64_t seed) {
  std::vector<NamedRun> runs;
  for (const auto& factory : sched::extended_lineup({1.0, 10.5, 35.0})) {
    auto scheduler = factory.make();
    sim::Engine engine(instance, *scheduler);
    runs.push_back({factory.name, engine.run_to_completion()});
  }
  RandomScheduler chaos(seed);
  sim::Engine engine(instance, chaos);
  runs.push_back({"random", engine.run_to_completion()});
  return runs;
}

class EngineInvariants : public ::testing::TestWithParam<int> {
 protected:
  Instance make_instance() {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
    gen::PaperSetup setup;
    setup.lambda = 2.0 + 2.0 * rng.uniform01() * 5.0;
    setup.expected_jobs = 150.0;
    // Mix in instances with slack and without.
    setup.slack_factor = rng.bernoulli(0.5) ? 1.0 : 1.0 + rng.uniform01();
    return gen::generate_paper_instance(setup, rng);
  }
};

TEST_P(EngineInvariants, OutcomesPartitionTheJobSet) {
  auto instance = make_instance();
  for (const auto& [name, result] :
       run_everything(instance, static_cast<std::uint64_t>(GetParam()))) {
    EXPECT_EQ(result.completed_count + result.expired_count, instance.size())
        << name;
    std::uint64_t completed = 0, expired = 0;
    for (auto outcome : result.outcomes) {
      completed += outcome == sim::JobOutcome::kCompleted;
      expired += outcome == sim::JobOutcome::kExpired;
      EXPECT_NE(outcome, sim::JobOutcome::kPending) << name;
    }
    EXPECT_EQ(completed, result.completed_count) << name;
    EXPECT_EQ(expired, result.expired_count) << name;
  }
}

TEST_P(EngineInvariants, ValueAccountingMatchesOutcomes) {
  auto instance = make_instance();
  for (const auto& [name, result] :
       run_everything(instance, static_cast<std::uint64_t>(GetParam()))) {
    double completed_value = 0.0;
    for (std::size_t i = 0; i < instance.size(); ++i) {
      if (result.outcomes[i] == sim::JobOutcome::kCompleted) {
        completed_value += instance.jobs()[i].value;
      }
    }
    EXPECT_NEAR(result.completed_value, completed_value,
                1e-9 * std::max(1.0, completed_value))
        << name;
    EXPECT_DOUBLE_EQ(result.generated_value, instance.total_value()) << name;
    EXPECT_LE(result.completed_value, result.generated_value + 1e-9) << name;
  }
}

TEST_P(EngineInvariants, WorkConservation) {
  auto instance = make_instance();
  const double available =
      instance.capacity().work(0.0, instance.max_deadline());
  for (const auto& [name, result] :
       run_everything(instance, static_cast<std::uint64_t>(GetParam()))) {
    double executed = 0.0;
    for (std::size_t i = 0; i < instance.size(); ++i) {
      const double w = result.executed_work[i];
      EXPECT_GE(w, -1e-9) << name;
      EXPECT_LE(w, instance.jobs()[i].workload + 1e-9) << name;
      // Completed jobs executed their full workload.
      if (result.outcomes[i] == sim::JobOutcome::kCompleted) {
        EXPECT_NEAR(w, instance.jobs()[i].workload,
                    1e-6 * std::max(1.0, instance.jobs()[i].workload))
            << name;
      }
      executed += w;
    }
    EXPECT_NEAR(executed, result.executed_total,
                1e-6 * std::max(1.0, executed))
        << name;
    // A single processor cannot out-execute the capacity path.
    EXPECT_LE(result.executed_total, available + 1e-6) << name;
  }
}

TEST_P(EngineInvariants, ValueTraceMonotoneAndEndsAtTotal) {
  auto instance = make_instance();
  for (const auto& [name, result] :
       run_everything(instance, static_cast<std::uint64_t>(GetParam()))) {
    const auto& values = result.value_trace.values();
    for (std::size_t i = 1; i < values.size(); ++i) {
      EXPECT_GE(values[i], values[i - 1]) << name;
    }
    if (!values.empty()) {
      EXPECT_NEAR(values.back(), result.completed_value,
                  1e-9 * std::max(1.0, values.back()))
          << name;
    } else {
      EXPECT_DOUBLE_EQ(result.completed_value, 0.0) << name;
    }
  }
}

TEST_P(EngineInvariants, BusyTimeBounded) {
  auto instance = make_instance();
  const double horizon = instance.max_deadline();
  for (const auto& [name, result] :
       run_everything(instance, static_cast<std::uint64_t>(GetParam()))) {
    EXPECT_GE(result.busy_time, 0.0) << name;
    EXPECT_LE(result.busy_time, horizon + 1e-9) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineInvariants, ::testing::Range(0, 6));

}  // namespace
}  // namespace sjs
