// Theorem 3(3) demonstration: when a job violates individual admissibility,
// no online algorithm retains a positive competitive ratio. We sweep the
// adversary family I_n (one inadmissible "jackpot" whose value grows with n,
// plus n admissible fillers, with capacity-high / capacity-low paired sample
// paths) and report each algorithm's min ratio over the pair — it decays
// toward 0 as n grows, exactly the paper's "disproportional with n".
//
//   ./bench_adversary [--max-n=64] [--delta=10]
#include <algorithm>
#include <cstdio>

#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "theory/adversary.hpp"
#include "util/cli.hpp"

namespace {

double pair_min_ratio(const sjs::theory::AdversaryPair& pair,
                      const sjs::sched::NamedFactory& factory) {
  double worst = 1.0;
  const sjs::Instance* instances[] = {&pair.high, &pair.low};
  const double offline[] = {pair.offline_high, pair.offline_low};
  for (int i = 0; i < 2; ++i) {
    auto scheduler = factory.make();
    sjs::sim::Engine engine(*instances[i], *scheduler);
    auto result = engine.run_to_completion();
    worst = std::min(worst, result.completed_value / offline[i]);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("max-n", 64, "largest adversary size (doubling sweep from 2)");
  flags.add_double("delta", 10.0, "capacity variation c_hi/c_lo of the trap");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  std::vector<sjs::sched::NamedFactory> factories = {
      sjs::sched::make_vdover(), sjs::sched::make_dover(1.0),
      sjs::sched::make_edf(),    sjs::sched::make_llf(),
      sjs::sched::make_hvf(),    sjs::sched::make_hvdf(),
  };

  std::printf("=== Theorem 3(3): adversary family I_n "
              "(inadmissible jackpot, delta=%.0f) ===\n",
              flags.get_double("delta"));
  std::printf("cell = min over {high, low} capacity paths of "
              "online value / offline value\n\n");
  std::printf("%6s", "n");
  for (const auto& f : factories) std::printf(" | %12s", f.name.c_str());
  std::printf("\n");

  for (int n = 2; n <= flags.get_int("max-n"); n *= 2) {
    sjs::theory::AdversaryParams params;
    params.n = n;
    params.c_hi = flags.get_double("delta");
    params.jackpot_value_factor = static_cast<double>(n);
    auto pair = sjs::theory::make_adversary_pair(params);
    std::printf("%6d", n);
    for (const auto& f : factories) {
      std::printf(" | %12.4f", pair_min_ratio(pair, f));
    }
    std::printf("\n");
  }
  std::printf("\nevery column must decay toward 0 — no online algorithm "
              "survives without individual admissibility (Theorem 3(3))\n");
  return 0;
}
