// google-benchmark micro-benchmarks: the engine/scheduler hot paths whose
// throughput determines how large a Monte-Carlo campaign the library can
// sustain (capacity inversion, EDF feasibility, full simulation runs per
// scheduler, exact offline solving).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "capacity/capacity_process.hpp"
#include "capacity/scenario.hpp"
#include "cluster/dispatcher.hpp"
#include "cluster/fleet.hpp"
#include "cluster/rental.hpp"
#include "conc/channel.hpp"
#include "lint/analyzer.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "sched/factory.hpp"
#include "sched/ready_queue.hpp"
#include "sched/vdover.hpp"
#include "serve/protocol.hpp"
#include "serve/shard_worker.hpp"
#include "sim/engine.hpp"
#include "util/alloc_probe.hpp"
#include "util/rng.hpp"

namespace {

sjs::cap::CapacityProfile make_profile(std::size_t segments) {
  sjs::Rng rng(1);
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(1.0, 35.0)};
  for (std::size_t i = 1; i < segments; ++i) {
    times.push_back(times.back() + rng.exponential_mean(1.0));
    rates.push_back(rng.uniform(1.0, 35.0));
  }
  return {std::move(times), std::move(rates)};
}

void BM_CapacityInvert(benchmark::State& state) {
  auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  sjs::Rng rng(2);
  const double span = profile.breakpoints().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profile.invert(rng.uniform(0.0, span), rng.exponential_mean(5.0)));
  }
}
BENCHMARK(BM_CapacityInvert)->Arg(8)->Arg(64)->Arg(512);

void BM_CapacityWork(benchmark::State& state) {
  auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  sjs::Rng rng(3);
  const double span = profile.breakpoints().back();
  for (auto _ : state) {
    const double a = rng.uniform(0.0, span);
    benchmark::DoNotOptimize(profile.work(a, a + rng.exponential_mean(3.0)));
  }
}
BENCHMARK(BM_CapacityWork)->Arg(8)->Arg(512);

void BM_CapacityInvertMonotone(benchmark::State& state) {
  // The engine's actual access pattern: invert() queried at non-decreasing
  // start times (dispatch instants move forward). Arg 0 = segment count,
  // arg 1 = 0 for the plain binary-search methods, 1 for
  // CapacityProfile::Cursor (amortized O(1) on this stream).
  auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  const bool use_cursor = state.range(1) != 0;
  const double span = profile.breakpoints().back();
  sjs::cap::CapacityProfile::Cursor cursor(profile);
  sjs::Rng rng(8);
  double t = 0.0;
  for (auto _ : state) {
    const double w = rng.exponential_mean(5.0);
    const double done =
        use_cursor ? cursor.invert(t, w) : profile.invert(t, w);
    benchmark::DoNotOptimize(done);
    t += rng.exponential_mean(0.05);
    if (t > span) {
      t = 0.0;
      cursor.reset();
    }
  }
  state.SetLabel(use_cursor ? "cursor" : "plain");
}
BENCHMARK(BM_CapacityInvertMonotone)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_EdfFeasibility(benchmark::State& state) {
  sjs::Rng rng(4);
  auto profile = make_profile(32);
  auto jobs = sjs::gen::generate_small_random_jobs(
      static_cast<std::size_t>(state.range(0)), 20.0, 7.0, 1.0, 2.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sjs::offline::edf_feasible(jobs, profile));
  }
}
BENCHMARK(BM_EdfFeasibility)->Arg(10)->Arg(100)->Arg(1000);

void BM_FullSimulation(benchmark::State& state) {
  // One complete paper-setup run per iteration for the selected scheduler.
  const int scheduler_index = static_cast<int>(state.range(0));
  sjs::gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = static_cast<double>(state.range(1));
  sjs::Rng rng(5);
  const sjs::Instance instance = sjs::gen::generate_paper_instance(setup, rng);
  auto factories = sjs::sched::extended_lineup({10.5});
  const auto& factory = factories[static_cast<std::size_t>(scheduler_index)];
  state.SetLabel(factory.name);

  std::uint64_t events = 0;
  for (auto _ : state) {
    auto scheduler = factory.make();
    sjs::sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.completed_value);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// Args: {scheduler index in extended_lineup({10.5}), expected jobs}.
// 0=Dover(10.5), 1=V-Dover, 2=EDF, 3=EDF-AC, 4=LLF, 5=FIFO, 6=HVF, 7=HVDF,
// 8=SRPT (labels are set from the factory names at runtime).
BENCHMARK(BM_FullSimulation)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({3, 1000})
    ->Args({4, 1000})
    ->Args({5, 1000})
    ->Args({6, 1000})
    ->Args({7, 1000})
    ->Args({8, 1000});

void BM_FullSimulationReuse(benchmark::State& state) {
  // BM_FullSimulation's loop with the PR's engine-reuse path: one Engine is
  // constructed outside the loop and reset() per iteration, the way
  // mc::run_monte_carlo replays one instance through a scheduler lineup.
  // Compare against BM_FullSimulation at the same args to see the
  // allocation-free win.
  const int scheduler_index = static_cast<int>(state.range(0));
  sjs::gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = static_cast<double>(state.range(1));
  sjs::Rng rng(5);
  const sjs::Instance instance = sjs::gen::generate_paper_instance(setup, rng);
  auto factories = sjs::sched::extended_lineup({10.5});
  const auto& factory = factories[static_cast<std::size_t>(scheduler_index)];
  state.SetLabel(factory.name);

  std::optional<sjs::sim::Engine> engine;
  std::uint64_t events = 0;
  for (auto _ : state) {
    auto scheduler = factory.make();
    if (engine) {
      engine->reset(*scheduler);
    } else {
      engine.emplace(instance, *scheduler);
    }
    auto result = engine->run_to_completion();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.completed_value);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// V-Dover, EDF, and LLF cover the three queue profiles: three queues with
// ordered visitation, one plain deadline queue, and the timer-churn-heavy
// laxity queue.
BENCHMARK(BM_FullSimulationReuse)
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({4, 1000});

void BM_MultiEngineDispatch(benchmark::State& state) {
  // One full fleet run per iteration: arg(0) heterogeneous machines under
  // the elastic threshold controller, constant serving paths, a fixed seeded
  // workload sized for the fleet's admission floor. This is the per-run cost
  // of sjs_sim --cluster and of each Monte-Carlo repetition in the cluster
  // MC tables — dispatcher interrupts (accrue / re-rent / re-place) are the
  // hot path on top of the MultiEngine event loop.
  const auto machines = static_cast<std::size_t>(state.range(0));
  const sjs::cluster::Fleet fleet = sjs::cluster::Fleet::heterogeneous(machines);
  sjs::gen::JobGenParams params;
  params.lambda = 10.0;
  params.horizon = 60.0;
  params.c_lo = fleet.admission_c_lo();
  sjs::Rng rng(5);
  std::vector<sjs::Job> jobs = sjs::gen::generate_jobs(params, rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sjs::JobId>(i);
  }
  const auto paths = fleet.constant_paths();

  std::uint64_t dispatches = 0;
  for (auto _ : state) {
    sjs::cluster::Dispatcher dispatcher(
        fleet, sjs::cluster::DispatcherConfig{},
        sjs::cluster::make_rental_controller("threshold"));
    const auto result = sjs::cluster::run_cluster(jobs, paths, dispatcher);
    dispatches += result.dispatches;
    benchmark::DoNotOptimize(result.rental_cost);
  }
  state.counters["jobs"] = static_cast<double>(jobs.size());
  state.counters["dispatches/s"] = benchmark::Counter(
      static_cast<double>(dispatches), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiEngineDispatch)->Arg(2)->Arg(4)->Arg(8);

void BM_ClusterScenario(benchmark::State& state) {
  // Scenario-path sampling plus the fleet run it feeds: each iteration draws
  // a fresh correlated fleet of capacity paths (arg(0) selects the scenario
  // kind in declaration order) for 6 machines and runs the same seeded
  // workload through the elastic dispatcher. Measures what one cluster MC
  // repetition costs when the paths are volatile instead of constant —
  // sampling is re-done per iteration exactly as mc::run_cluster_mc re-draws
  // per run.
  const auto kind = static_cast<sjs::cap::ScenarioKind>(state.range(0));
  const sjs::cluster::Fleet fleet = sjs::cluster::Fleet::heterogeneous(6);
  sjs::cluster::ScenarioConfig scenario;
  scenario.kind = kind;
  state.SetLabel(sjs::cap::scenario_name(kind));

  sjs::gen::JobGenParams params;
  params.lambda = 10.0;
  params.horizon = 60.0;
  params.c_lo = fleet.admission_c_lo();
  sjs::Rng job_rng(5);
  std::vector<sjs::Job> jobs = sjs::gen::generate_jobs(params, job_rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = static_cast<sjs::JobId>(i);
  }

  std::uint64_t completed = 0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    sjs::Rng path_rng(11, run++);
    auto paths = fleet.sample_paths(scenario, params.horizon, path_rng);
    sjs::cluster::Dispatcher dispatcher(
        fleet, sjs::cluster::DispatcherConfig{},
        sjs::cluster::make_rental_controller("threshold"));
    const auto result =
        sjs::cluster::run_cluster(jobs, std::move(paths), dispatcher);
    completed += result.completed_count;
    benchmark::DoNotOptimize(result.rental_cost);
  }
  state.counters["completed/s"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
}
// Args: 0=steady, 1=diurnal, 2=flash-crowd, 3=outage (labels set at runtime).
BENCHMARK(BM_ClusterScenario)->Arg(1)->Arg(2)->Arg(3);

void BM_LiveSteadyState(benchmark::State& state) {
  // The sjs_serve steady state without sockets: one warmed live-mode
  // session, pre-sized the way AdmissionServer::start() pre-sizes from
  // --max-in-flight, admitting one job and advancing virtual time per
  // iteration. Live ids are dense (never reused), so the pre-size covers
  // the whole fixed-length session; after the warm-up batch every structure
  // is at its high water and the loop body must perform zero heap
  // allocations. The interposed AllocProbe counts the loop's allocations
  // and reports them as allocs_per_op so the claim is pinned in the
  // benchmark output itself, not just in hotpath_test.
  const int scheduler_index = static_cast<int>(state.range(0));
  auto factories = sjs::sched::extended_lineup({10.5});
  const auto& factory = factories[static_cast<std::size_t>(scheduler_index)];
  state.SetLabel(factory.name);

  constexpr std::size_t kWarmup = 256;
  constexpr double kDt = 0.1;  // arrival spacing: ~75% load at capacity 4
  const std::size_t total =
      kWarmup + static_cast<std::size_t>(state.max_iterations);
  sjs::Instance instance({}, sjs::cap::CapacityProfile(4.0));
  instance.reserve_jobs(total);
  auto scheduler = factory.make();
  sjs::sim::Engine engine(instance, *scheduler);
  engine.reserve_live(total);
  engine.begin_live();

  double now = 0.0;
  std::size_t phase = 0;
  const auto admit_one = [&] {
    static constexpr double kWorkloads[] = {0.1, 0.3, 0.5};
    now += kDt;
    sjs::Job job;
    job.release = now;
    job.workload = kWorkloads[phase];
    job.deadline = now + 5.0;
    job.value = job.workload * 12.0;
    phase = (phase + 1) % 3;
    engine.admit_live(instance.append_job(job));
    engine.advance_to(now);
  };
  for (std::size_t i = 0; i < kWarmup; ++i) admit_one();

  sjs::util::AllocProbe::reset();
  for (auto _ : state) {
    admit_one();
  }
  const auto allocs = static_cast<double>(sjs::util::AllocProbe::count());
  benchmark::DoNotOptimize(engine.now());
  state.counters["allocs_per_op"] =
      benchmark::Counter(allocs, benchmark::Counter::kAvgIterations);
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
// Fixed iteration count: the session length must be known up front so the
// pre-size covers it (exactly how --max-in-flight bounds a serve session's
// live window). V-Dover, EDF, and LLF cover the three queue profiles.
BENCHMARK(BM_LiveSteadyState)
    ->Iterations(100000)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void BM_ReadyQueueChurn(benchmark::State& state) {
  // The scheduler-queue hot loop in isolation: a deterministic interleaving
  // of push / pop / erase-by-id / re-key at a standing occupancy of
  // state.range(0), run through sched::ReadyQueue (arg1 = 1) or the
  // std::set<pair<double, JobId>> it replaced (arg1 = 0). Both paths consume
  // the same pre-generated operation stream, so the numbers isolate the
  // container cost (node allocation + pointer chasing vs flat sifts).
  const std::size_t occupancy = static_cast<std::size_t>(state.range(0));
  const bool use_ready_queue = state.range(1) != 0;
  state.SetLabel(use_ready_queue ? "ReadyQueue" : "std::set");

  struct Op {
    double key;
    sjs::JobId id;
    int kind;  // 0 = erase+push (re-key), 1 = pop+push (dispatch cycle)
  };
  sjs::Rng rng(10);
  std::vector<Op> ops(4096);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i] = {rng.uniform(0.0, 100.0),
              static_cast<sjs::JobId>(rng.below(occupancy)),
              static_cast<int>(rng.below(2))};
  }

  std::uint64_t processed = 0;
  if (use_ready_queue) {
    sjs::sched::ReadyQueue queue;
    queue.reserve(occupancy);
    for (std::size_t i = 0; i < occupancy; ++i) {
      queue.push(rng.uniform(0.0, 100.0), static_cast<sjs::JobId>(i));
    }
    for (auto _ : state) {
      for (const Op& op : ops) {
        if (op.kind == 0) {
          queue.erase(op.id);
          queue.push(op.key, op.id);
        } else {
          const auto popped = queue.pop();
          queue.push(op.key, popped.id);
        }
        benchmark::DoNotOptimize(queue.top().id);
      }
      processed += ops.size();
    }
  } else {
    std::set<std::pair<double, sjs::JobId>> queue;
    std::vector<double> key_of(occupancy);
    for (std::size_t i = 0; i < occupancy; ++i) {
      key_of[i] = rng.uniform(0.0, 100.0);
      queue.emplace(key_of[i], static_cast<sjs::JobId>(i));
    }
    for (auto _ : state) {
      for (const Op& op : ops) {
        if (op.kind == 0) {
          const auto idx = static_cast<std::size_t>(op.id);
          queue.erase({key_of[idx], op.id});
          key_of[idx] = op.key;
          queue.emplace(op.key, op.id);
        } else {
          const auto it = queue.begin();
          const sjs::JobId id = it->second;
          queue.erase(it);
          key_of[static_cast<std::size_t>(id)] = op.key;
          queue.emplace(op.key, id);
        }
        benchmark::DoNotOptimize(queue.begin()->second);
      }
      processed += ops.size();
    }
  }
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(processed), benchmark::Counter::kIsRate);
}
// arg0 = standing occupancy, arg1 = container (0 = std::set, 1 = ReadyQueue).
BENCHMARK(BM_ReadyQueueChurn)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

void BM_EngineTimerChurn(benchmark::State& state) {
  // Worst-case timer pressure: adaptive-EWMA V-Dover re-arms every queued
  // job's 0cl timer at every capacity breakpoint, so a profile with
  // state.range(0) segments cancels and re-arms O(segments * queued) timers
  // per run. Exercises the generation-checked slab + lazy heap compaction;
  // on the old append-only slab this footprint grew without bound.
  const std::size_t segments = static_cast<std::size_t>(state.range(0));
  auto profile = make_profile(segments);
  const double span = profile.breakpoints().back();
  sjs::Rng rng(9);
  auto jobs = sjs::gen::generate_small_random_jobs(
      2 * segments, span, 7.0, 1.0, 2.0, rng);
  sjs::Instance instance(jobs, profile);
  sjs::sched::VDoverOptions options;
  options.adaptive_estimate = true;
  std::uint64_t timers = 0;
  double slab_slots = 0.0;
  double dead_peak = 0.0;
  for (auto _ : state) {
    sjs::sched::VDoverScheduler scheduler(options);
    sjs::sim::Engine engine(instance, scheduler);
    auto result = engine.run_to_completion();
    timers += result.timers_armed;
    slab_slots = std::max(slab_slots,
                          static_cast<double>(result.timer_slab_slots));
    dead_peak = std::max(dead_peak,
                         static_cast<double>(result.event_heap_dead_peak));
    benchmark::DoNotOptimize(result.completed_value);
  }
  state.counters["timers/s"] = benchmark::Counter(
      static_cast<double>(timers), benchmark::Counter::kIsRate);
  state.counters["slab_slots"] = slab_slots;
  state.counters["dead_peak"] = dead_peak;
}
BENCHMARK(BM_EngineTimerChurn)->Arg(64)->Arg(512)->Arg(2048);

// Holds `target` timers live at every instant: each fire re-arms itself and
// rotates (cancel + re-arm) one pseudo-random other timer. This is the
// standing-occupancy regime BM_EngineTimerChurn never reaches (its slab
// stays at a handful of slots): arm/cancel/fire against a population of
// `target` pending timers, where the wheel's O(1) bucket operations beat the
// old heap's O(log n) sift plus O(n) compaction sweeps.
class StandingTimerScheduler final : public sjs::sim::Scheduler {
 public:
  StandingTimerScheduler(std::size_t target, double horizon, double step)
      : target_(target), horizon_(horizon), step_(step) {}

  void on_start(sjs::sim::Engine& engine) override {
    ids_.assign(target_, sjs::sim::kNoTimer);
    for (std::size_t i = 0; i < target_; ++i) {
      ids_[i] = engine.set_timer(jitter(), sjs::kNoJob,
                                 static_cast<int>(i));
    }
  }
  void on_timer(sjs::sim::Engine& engine, sjs::JobId, int tag) override {
    const auto self = static_cast<std::size_t>(tag);
    if (engine.now() >= horizon_) {
      ids_[self] = sjs::sim::kNoTimer;  // drain: stop re-arming
      return;
    }
    ids_[self] =
        engine.set_timer(engine.now() + jitter(), sjs::kNoJob, tag);
    const std::size_t other = next() % target_;
    if (other != self && ids_[other] != sjs::sim::kNoTimer) {
      engine.cancel_timer(ids_[other]);
      ids_[other] = engine.set_timer(engine.now() + jitter(), sjs::kNoJob,
                                     static_cast<int>(other));
    }
  }
  void on_release(sjs::sim::Engine&, sjs::JobId) override {}
  void on_complete(sjs::sim::Engine&, sjs::JobId) override {}
  void on_expire(sjs::sim::Engine&, sjs::JobId, bool) override {}
  std::string name() const override { return "standing-timer"; }

 private:
  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  double jitter() {
    return step_ * (0.5 + static_cast<double>(next() % 1024) / 1024.0);
  }

  std::size_t target_;
  double horizon_;
  double step_;
  std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
  std::vector<sjs::sim::TimerId> ids_;
};

void BM_EngineTimerOccupancy(benchmark::State& state) {
  // arg = standing timer occupancy. Each timer fires ~8 times before the
  // horizon, so one run is ~8 * occupancy fires and ~3x that many
  // arm/cancel operations, all against an occupancy-deep pending set.
  const auto occupancy = static_cast<std::size_t>(state.range(0));
  auto profile = make_profile(16);
  const double span = profile.breakpoints().back();
  sjs::Rng rng(11);
  auto jobs = sjs::gen::generate_small_random_jobs(4, span, 7.0, 1.0, 2.0,
                                                   rng);
  sjs::Instance instance(jobs, profile);
  std::uint64_t timers = 0;
  double slab_slots = 0.0;
  for (auto _ : state) {
    StandingTimerScheduler scheduler(occupancy, span, span / 8.0);
    sjs::sim::Engine engine(instance, scheduler);
    auto result = engine.run_to_completion();
    timers += result.timers_armed;
    slab_slots = std::max(slab_slots,
                          static_cast<double>(result.timer_slab_slots));
    benchmark::DoNotOptimize(result.events_processed);
  }
  state.counters["timers/s"] = benchmark::Counter(
      static_cast<double>(timers), benchmark::Counter::kIsRate);
  state.counters["slab_slots"] = slab_slots;
}
BENCHMARK(BM_EngineTimerOccupancy)->Arg(64)->Arg(512)->Arg(4096);

void BM_ExactOffline(benchmark::State& state) {
  sjs::Rng rng(6);
  auto profile = make_profile(16);
  auto jobs = sjs::gen::generate_small_random_jobs(
      static_cast<std::size_t>(state.range(0)), 10.0, 7.0, 1.0, 2.0, rng);
  sjs::Instance instance(jobs, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sjs::offline::exact_offline_value(instance));
  }
}
BENCHMARK(BM_ExactOffline)->Arg(8)->Arg(12);

void BM_PaperInstanceGeneration(benchmark::State& state) {
  sjs::gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 2000.0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    sjs::Rng rng(7, run++);
    benchmark::DoNotOptimize(sjs::gen::generate_paper_instance(setup, rng));
  }
}
BENCHMARK(BM_PaperInstanceGeneration);

void BM_ProtocolCodec(benchmark::State& state) {
  // Full SUBMIT→ACCEPTED wire round-trip: encode both frames, then feed the
  // byte stream through a FrameDecoder — the per-request codec cost of the
  // admission service's hot path (tools/sjs_serve).
  sjs::Rng rng(8);
  std::vector<sjs::serve::Message> submits(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < submits.size(); ++i) {
    submits[i].type = sjs::serve::MsgType::kSubmit;
    submits[i].seq = i;
    submits[i].a = rng.exponential_mean(0.02);
    submits[i].b = rng.uniform(0.1, 1.0);
    submits[i].c = rng.uniform(1.0, 7.0);
  }
  std::vector<std::uint8_t> stream;
  std::uint64_t decoded = 0;
  for (auto _ : state) {
    stream.clear();
    for (const auto& m : submits) {
      sjs::serve::append_frame(stream, m);
      sjs::serve::Message ack;
      ack.type = sjs::serve::MsgType::kAccepted;
      ack.seq = m.seq;
      ack.ticket = m.seq;
      ack.a = m.a;
      sjs::serve::append_frame(stream, ack);
    }
    sjs::serve::FrameDecoder decoder;
    decoder.feed(stream.data(), stream.size());
    sjs::serve::Message out;
    while (decoder.next(out) == sjs::serve::FrameDecoder::Status::kOk) {
      ++decoded;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decoded));
}
BENCHMARK(BM_ProtocolCodec)->Arg(64)->Arg(1024);

void BM_ChannelThroughput(benchmark::State& state) {
  // Single-producer/single-consumer drain of the bounded MPSC channel the
  // sharded plane forwards every request through (src/conc/channel.hpp):
  // arg(0) messages pushed with try_send and popped back per iteration,
  // capacity pinned at the sjs_serve default (1024). Measures the per-message
  // channel overhead — lock, slot state machine, and coalesced wakeup —
  // without thread-scheduling noise.
  const auto batch = static_cast<std::size_t>(state.range(0));
  sjs::conc::Channel<sjs::serve::ShardRequest> channel(1024);
  sjs::serve::ShardRequest req;
  req.kind = sjs::serve::ShardRequest::Kind::kSubmit;
  std::uint64_t moved = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      req.ticket = i;
      while (channel.try_send(req) != sjs::conc::SendStatus::kOk) {
        sjs::serve::ShardRequest out;
        while (channel.try_pop(out) == sjs::conc::PopStatus::kOk) ++moved;
      }
    }
    channel.drain_wakeups();
    sjs::serve::ShardRequest out;
    while (channel.try_pop(out) == sjs::conc::PopStatus::kOk) ++moved;
    benchmark::DoNotOptimize(moved);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(moved));
}
BENCHMARK(BM_ChannelThroughput)->Arg(256)->Arg(4096);

void BM_LintFullTree(benchmark::State& state) {
  // Cold full-tree static analysis: every src/tools/bench file lexed,
  // indexed, and pushed through the cross-TU phase (call graph, taint
  // propagation, include cycles) with no on-disk cache. This is the
  // worst-case latency of the CI lint job on a cache miss; the BENCH target
  // keeps it under ~5 s so the gate never becomes the slow part of CI.
  sjs::lint::AnalyzerOptions options;
  options.root = SJS_SOURCE_ROOT;
  options.inputs = {SJS_SOURCE_ROOT "/src", SJS_SOURCE_ROOT "/tools",
                    SJS_SOURCE_ROOT "/bench"};
  std::size_t files = 0;
  std::size_t diags = 0;
  for (auto _ : state) {
    const sjs::lint::AnalyzerResult result = sjs::lint::run_analyzer(options);
    files = result.files_analyzed;
    diags = result.diags.size();
    benchmark::DoNotOptimize(diags);
  }
  state.counters["files"] = static_cast<double>(files);
  state.counters["diags"] = static_cast<double>(diags);
}
BENCHMARK(BM_LintFullTree)->Unit(benchmark::kMillisecond);

}  // namespace
