// google-benchmark micro-benchmarks: the engine/scheduler hot paths whose
// throughput determines how large a Monte-Carlo campaign the library can
// sustain (capacity inversion, EDF feasibility, full simulation runs per
// scheduler, exact offline solving).
#include <benchmark/benchmark.h>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace {

sjs::cap::CapacityProfile make_profile(std::size_t segments) {
  sjs::Rng rng(1);
  std::vector<double> times{0.0};
  std::vector<double> rates{rng.uniform(1.0, 35.0)};
  for (std::size_t i = 1; i < segments; ++i) {
    times.push_back(times.back() + rng.exponential_mean(1.0));
    rates.push_back(rng.uniform(1.0, 35.0));
  }
  return {std::move(times), std::move(rates)};
}

void BM_CapacityInvert(benchmark::State& state) {
  auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  sjs::Rng rng(2);
  const double span = profile.breakpoints().back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        profile.invert(rng.uniform(0.0, span), rng.exponential_mean(5.0)));
  }
}
BENCHMARK(BM_CapacityInvert)->Arg(8)->Arg(64)->Arg(512);

void BM_CapacityWork(benchmark::State& state) {
  auto profile = make_profile(static_cast<std::size_t>(state.range(0)));
  sjs::Rng rng(3);
  const double span = profile.breakpoints().back();
  for (auto _ : state) {
    const double a = rng.uniform(0.0, span);
    benchmark::DoNotOptimize(profile.work(a, a + rng.exponential_mean(3.0)));
  }
}
BENCHMARK(BM_CapacityWork)->Arg(8)->Arg(512);

void BM_EdfFeasibility(benchmark::State& state) {
  sjs::Rng rng(4);
  auto profile = make_profile(32);
  auto jobs = sjs::gen::generate_small_random_jobs(
      static_cast<std::size_t>(state.range(0)), 20.0, 7.0, 1.0, 2.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sjs::offline::edf_feasible(jobs, profile));
  }
}
BENCHMARK(BM_EdfFeasibility)->Arg(10)->Arg(100)->Arg(1000);

void BM_FullSimulation(benchmark::State& state) {
  // One complete paper-setup run per iteration for the selected scheduler.
  const int scheduler_index = static_cast<int>(state.range(0));
  sjs::gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = static_cast<double>(state.range(1));
  sjs::Rng rng(5);
  const sjs::Instance instance = sjs::gen::generate_paper_instance(setup, rng);
  auto factories = sjs::sched::extended_lineup({10.5});
  const auto& factory = factories[static_cast<std::size_t>(scheduler_index)];
  state.SetLabel(factory.name);

  std::uint64_t events = 0;
  for (auto _ : state) {
    auto scheduler = factory.make();
    sjs::sim::Engine engine(instance, *scheduler);
    auto result = engine.run_to_completion();
    events += result.events_processed;
    benchmark::DoNotOptimize(result.completed_value);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// Args: {scheduler index in extended_lineup({10.5}), expected jobs}.
// 0=Dover(10.5), 1=V-Dover, 2=EDF, 3=EDF-AC, 4=LLF, 5=FIFO, 6=HVF, 7=HVDF,
// 8=SRPT (labels are set from the factory names at runtime).
BENCHMARK(BM_FullSimulation)
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({3, 1000})
    ->Args({4, 1000})
    ->Args({5, 1000})
    ->Args({6, 1000})
    ->Args({7, 1000})
    ->Args({8, 1000});

void BM_ExactOffline(benchmark::State& state) {
  sjs::Rng rng(6);
  auto profile = make_profile(16);
  auto jobs = sjs::gen::generate_small_random_jobs(
      static_cast<std::size_t>(state.range(0)), 10.0, 7.0, 1.0, 2.0, rng);
  sjs::Instance instance(jobs, profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sjs::offline::exact_offline_value(instance));
  }
}
BENCHMARK(BM_ExactOffline)->Arg(8)->Arg(12);

void BM_PaperInstanceGeneration(benchmark::State& state) {
  sjs::gen::PaperSetup setup;
  setup.lambda = 6.0;
  setup.expected_jobs = 2000.0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    sjs::Rng rng(7, run++);
    benchmark::DoNotOptimize(sjs::gen::generate_paper_instance(setup, rng));
  }
}
BENCHMARK(BM_PaperInstanceGeneration);

}  // namespace
