// Empirical check of the competitive-ratio theorems on small instances with
// exactly computed offline optima:
//
//   * Theorem 2  — EDF achieves ratio 1 on underloaded instances.
//   * Theorem 3(2) — V-Dover's value / OPT never falls below
//     1/((√k+√f(k,δ))²+1) on individually admissible instances; we report
//     the empirical worst case next to the guarantee (the bound is loose by
//     design — it is a worst-case guarantee).
//   * Theorem 3(1) — no algorithm's *worst case* can beat 1/(1+√k)²; we
//     print the bound for context.
//
//   ./bench_competitive [--instances=N] [--jobs=10] [--seed=S]
#include <algorithm>
#include <cstdio>

#include "capacity/capacity_process.hpp"
#include "jobs/workload_gen.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "theory/ratios.hpp"
#include "util/cli.hpp"

namespace {

double run_value(const sjs::Instance& instance,
                 const sjs::sched::NamedFactory& factory) {
  auto scheduler = factory.make();
  sjs::sim::Engine engine(instance, *scheduler);
  return engine.run_to_completion().completed_value;
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("instances", 40, "random instances per experiment");
  flags.add_int("jobs", 10, "jobs per instance (exact solver is exponential)");
  flags.add_int("seed", 11, "master RNG seed");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }
  const auto instances = static_cast<std::uint64_t>(flags.get_int("instances"));
  const auto n_jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // ---- Theorem 2: EDF ratio 1 on underloaded instances.
  std::printf("=== Theorem 2: EDF on underloaded varying-capacity systems ===\n");
  std::uint64_t edf_optimal = 0;
  for (std::uint64_t i = 0; i < instances; ++i) {
    sjs::Rng rng(seed, i);
    sjs::cap::TwoStateMarkovParams cp;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 25.0;
    auto profile = sjs::cap::sample_two_state_markov(cp, 120.0, rng);
    auto jobs =
        sjs::gen::generate_underloaded_jobs(profile, 100.0, 20, 0.85, rng);
    sjs::Instance instance(jobs, profile);
    const double value = run_value(instance, sjs::sched::make_edf());
    edf_optimal += (value >= instance.total_value() - 1e-9);
  }
  std::printf("EDF captured 100%% of value on %llu/%llu underloaded instances "
              "(Theorem 2 predicts all)\n\n",
              static_cast<unsigned long long>(edf_optimal),
              static_cast<unsigned long long>(instances));

  // ---- Theorem 3(2): V-Dover vs exact OPT on admissible overloaded inputs.
  std::printf("=== Theorem 3(2): V-Dover vs exact offline optimum ===\n");
  const double k = 7.0, delta = 5.0;
  const double guarantee = sjs::theory::vdover_competitive_ratio(k, delta);
  double worst_ratio = 1.0, mean_ratio = 0.0;
  std::uint64_t counted = 0;
  for (std::uint64_t i = 0; i < instances; ++i) {
    sjs::Rng rng(seed + 1000, i);
    sjs::cap::TwoStateMarkovParams cp;
    cp.c_hi = delta;
    cp.mean_sojourn_lo = cp.mean_sojourn_hi = 4.0;
    auto profile = sjs::cap::sample_two_state_markov(cp, 40.0, rng);
    auto jobs = sjs::gen::generate_small_random_jobs(n_jobs, 8.0, k, 1.0, 2.0,
                                                     rng);
    sjs::Instance instance(jobs, profile, 1.0, delta);
    auto exact = sjs::offline::exact_offline_value(instance);
    if (!exact.proved_optimal || exact.value <= 0.0) continue;
    const double ratio =
        run_value(instance, sjs::sched::make_vdover(k)) / exact.value;
    worst_ratio = std::min(worst_ratio, ratio);
    mean_ratio += ratio;
    ++counted;
  }
  mean_ratio /= static_cast<double>(std::max<std::uint64_t>(1, counted));
  std::printf("k=%.0f delta=%.0f  guarantee=%.4f (f=%.1f, beta*=%.3f)\n", k,
              delta, guarantee, sjs::theory::f_k_delta(k, delta),
              sjs::theory::optimal_beta(k, delta));
  std::printf("empirical over %llu instances: worst V-Dover/OPT=%.4f, "
              "mean=%.4f  (must stay above the guarantee)\n",
              static_cast<unsigned long long>(counted), worst_ratio,
              mean_ratio);
  std::printf("%s\n\n", worst_ratio >= guarantee - 1e-9
                            ? "PASS: worst case respects Theorem 3(2)"
                            : "FAIL: guarantee violated!");

  // ---- Theorem 3(1): context.
  std::printf("=== Theorem 3(1): upper bound for any online algorithm ===\n");
  for (double kk : {1.0, 7.0, 49.0}) {
    std::printf("k=%5.1f  upper bound 1/(1+sqrt(k))^2 = %.4f   "
                "V-Dover guarantee (delta=5) = %.4f\n",
                kk, sjs::theory::overload_upper_bound(kk),
                sjs::theory::vdover_competitive_ratio(kk, 5.0));
  }
  std::printf("asymptotics: guarantee/upper -> 1 as k -> inf "
              "(k=1e6: %.4f)\n",
              sjs::theory::vdover_competitive_ratio(1e6, 5.0) /
                  sjs::theory::overload_upper_bound(1e6));
  return worst_ratio >= guarantee - 1e-9 ? 0 : 1;
}
