// Reproduces **Table I** of the paper: percentage of generated value captured
// by Dover(ĉ) for ĉ ∈ {1, 10.5, 24.5, 35} and by V-Dover, with the relative
// gain over the best Dover column, for λ ∈ {4, 5, 6, 7, 8, 10, 12}.
//
// Paper setup (Sec. IV): Poisson(λ) arrivals, Exp(1) workloads, value density
// U[1, 7], zero conservative laxity at release, H = 2000/λ, capacity CTMC
// {1, 35} with mean sojourn H/4, 800 Monte-Carlo runs — the engine is fast
// enough that the paper's full scale is the default (~30 s on one core).
//
//   ./bench_table1 [--runs=N] [--seed=S] [--lambda=4,5,...] [--csv=path]
//                  [--extended] (adds EDF/LLF/FIFO/HVF/HVDF columns)
#include <cstdio>

#include <numeric>
#include <sstream>

#include "mc/monte_carlo.hpp"
#include "mc/table.hpp"
#include "sched/factory.hpp"
#include "stats/bootstrap.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("runs", 800, "Monte-Carlo runs per lambda (paper: 800)");
  flags.add_int("seed", 42, "master RNG seed");
  flags.add_int("threads", 0, "worker threads (0 = hardware)");
  flags.add_double_list("lambda", {4, 5, 6, 7, 8, 10, 12},
                        "arrival rates to sweep (paper Table I)");
  flags.add_double_list("chat", {1.0, 10.5, 24.5, 35.0},
                        "Dover capacity estimates ĉ");
  flags.add_double("jobs", 2000.0, "expected jobs per run (paper: 2000)");
  flags.add_string("csv", "table1.csv", "output CSV path (empty to skip)");
  flags.add_bool("extended", false, "append EDF/LLF/FIFO/HVF/HVDF columns");
  flags.add_bool("ci", false, "print 95% confidence half-widths");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  const auto& c_hats = flags.get_double_list("chat");
  auto factories = flags.get_bool("extended")
                       ? sjs::sched::extended_lineup(c_hats)
                       : sjs::sched::paper_lineup(c_hats);
  const int vdover_index = static_cast<int>(c_hats.size());

  sjs::mc::Table table;
  for (const auto& f : factories) table.scheduler_names.push_back(f.name);
  table.vdover_index = vdover_index;

  std::printf("=== Table I: captured value %% (paper Sec. IV setup) ===\n");
  std::printf("runs/lambda=%lld  expected jobs/run=%.0f  seed=%lld\n\n",
              static_cast<long long>(flags.get_int("runs")),
              flags.get_double("jobs"),
              static_cast<long long>(flags.get_int("seed")));

  std::ostringstream gain_cis;
  for (double lambda : flags.get_double_list("lambda")) {
    sjs::mc::McConfig config;
    config.setup.lambda = lambda;
    config.setup.expected_jobs = flags.get_double("jobs");
    config.runs = static_cast<std::size_t>(flags.get_int("runs"));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    config.threads = static_cast<std::size_t>(flags.get_int("threads"));
    auto outcome = sjs::mc::run_monte_carlo(config, factories);
    auto row = sjs::mc::make_row(lambda, outcome, vdover_index);
    if (flags.get_bool("ci") && row.best_dover_index >= 0) {
      // Paired bootstrap (common random numbers pair the runs) for the
      // relative-gain statistic, which has no clean closed-form interval.
      const auto& dover_fractions =
          outcome.per_scheduler[static_cast<std::size_t>(row.best_dover_index)]
              .value_fractions;
      const auto& vdover_fractions =
          outcome.per_scheduler[static_cast<std::size_t>(vdover_index)]
              .value_fractions;
      auto gain = [](const std::vector<double>& dover,
                     const std::vector<double>& vdover) {
        const double md = std::accumulate(dover.begin(), dover.end(), 0.0);
        const double mv = std::accumulate(vdover.begin(), vdover.end(), 0.0);
        return 100.0 * (mv / md - 1.0);
      };
      auto interval =
          sjs::paired_bootstrap_ci(dover_fractions, vdover_fractions, gain);
      char line[128];
      std::snprintf(line, sizeof(line),
                    "lambda %5.1f: gain %6.2f%%, 95%% CI [%6.2f, %6.2f]\n",
                    lambda, interval.point, interval.lo, interval.hi);
      gain_cis << line;
    }
    table.rows.push_back(row);
    std::fprintf(stderr, "lambda %.1f done\n", lambda);
  }

  std::printf("%s\n", table.render(flags.get_bool("ci")).c_str());
  if (flags.get_bool("ci")) {
    std::printf("paired-bootstrap gain intervals (vs best Dover):\n%s\n",
                gain_cis.str().c_str());
  }
  const auto& csv = flags.get_string("csv");
  if (!csv.empty()) {
    table.save_csv(csv);
    std::printf("rows written to %s\n", csv.c_str());
  }
  return 0;
}
