// Ablations over V-Dover's design choices (see DESIGN.md experiment index):
//
//   A — capacity estimate: sweep the constant estimate used for conservative
//       laxities (c_lo is the paper's choice (i); higher estimates morph
//       V-Dover toward Dover's optimism).
//   B — supplement queue on/off: isolates design choice (ii); "off" is
//       conservative Dover.
//   C — β sweep around the analytical optimum β*(k, δ).
//   D — capacity variation: gain vs best Dover as δ = c_hi/c_lo grows.
//
//   ./bench_ablation [--runs=N] [--seed=S] [--lambda=6] [--jobs=800]
#include <algorithm>
#include <cstdio>

#include "capacity/capacity_process.hpp"
#include "mc/monte_carlo.hpp"
#include "sim/engine.hpp"
#include "stats/summary.hpp"
#include "mc/table.hpp"
#include "sched/factory.hpp"
#include "theory/ratios.hpp"
#include "util/cli.hpp"
#include "util/fp.hpp"

namespace {

double mean_fraction(const sjs::mc::McConfig& config,
                     const sjs::sched::NamedFactory& factory) {
  auto outcome = sjs::mc::run_monte_carlo(config, {factory});
  return outcome.per_scheduler[0].fraction_summary.mean * 100.0;
}

}  // namespace

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("runs", 24, "Monte-Carlo runs per configuration");
  flags.add_int("seed", 42, "master RNG seed");
  flags.add_double("lambda", 6.0, "arrival rate");
  flags.add_double("jobs", 800.0, "expected jobs per run");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  sjs::mc::McConfig base;
  base.setup.lambda = flags.get_double("lambda");
  base.setup.expected_jobs = flags.get_double("jobs");
  base.runs = static_cast<std::size_t>(flags.get_int("runs"));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  // ---- Ablation A: the capacity estimate used for conservative laxity.
  std::printf("=== Ablation A: capacity estimate c_est "
              "(V-Dover keeps the supplement queue) ===\n");
  std::printf("%10s | %10s\n", "c_est", "value %");
  for (double c_est : {1.0, 2.0, 5.0, 10.5, 24.5, 35.0}) {
    sjs::sched::VDoverOptions options;
    options.capacity_estimate = c_est;
    char name[48];
    std::snprintf(name, sizeof(name), "VD(c_est=%.1f)", c_est);
    options.display_name = name;
    std::printf("%10.1f | %10.3f\n", c_est,
                mean_fraction(base, sjs::sched::make_vdover_with(options)));
  }
  std::printf("(paper choice (i): c_est = c_lo = 1 — expect the top row to "
              "win or tie)\n\n");

  // ---- Ablation A2: the "obvious smarter" alternative — track the observed
  // rate with an EWMA instead of assuming the worst case.
  std::printf("=== Ablation A2: adaptive (EWMA) estimate vs conservative "
              "===\n");
  std::printf("%18s | %10s\n", "estimator", "value %");
  std::printf("%18s | %10.3f\n", "V-Dover (c_lo)",
              mean_fraction(base, sjs::sched::make_vdover()));
  std::printf("%18s | %10.3f\n", "Dover (c_lo)",
              mean_fraction(base, sjs::sched::make_dover(1.0)));
  for (double alpha : {0.1, 0.3, 0.9}) {
    char name[32];
    std::snprintf(name, sizeof(name), "Dover-EWMA(%.1f)", alpha);
    std::printf("%18s | %10.3f\n", name,
                mean_fraction(base, sjs::sched::make_dover_ewma(alpha)));
  }
  std::printf("(tracking the rate does not recover what the supplement queue "
              "earns — and it forfeits the worst-case guarantee)\n\n");

  // ---- Ablation B: supplement queue on/off.
  std::printf("=== Ablation B: supplement queue (design choice (ii)) ===\n");
  {
    const double with_supp = mean_fraction(base, sjs::sched::make_vdover());
    sjs::sched::VDoverOptions no_supp;
    no_supp.use_supplement_queue = false;
    no_supp.capacity_estimate = 1.0;
    no_supp.display_name = "VD-no-supplement";
    const double without_supp =
        mean_fraction(base, sjs::sched::make_vdover_with(no_supp));
    std::printf("with supplement queue    : %8.3f %%\n", with_supp);
    std::printf("without (conservative Dover): %8.3f %%\n", without_supp);
    std::printf("supplement-queue contribution: %+.3f %%-points\n\n",
                with_supp - without_supp);
  }

  // ---- Ablation C: β sweep around β*.
  const double beta_star = sjs::theory::optimal_beta(7.0, 35.0);
  std::printf("=== Ablation C: beta sweep (beta* = %.4f for k=7, delta=35) "
              "===\n",
              beta_star);
  std::printf("%10s | %10s\n", "beta", "value %");
  for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double beta = 1.0 + (beta_star - 1.0) * scale;
    sjs::sched::VDoverOptions options;
    options.beta = beta;
    char name[48];
    std::snprintf(name, sizeof(name), "VD(beta=%.3f)", beta);
    options.display_name = name;
    std::printf("%10.3f | %10.3f\n", beta,
                mean_fraction(base, sjs::sched::make_vdover_with(options)));
  }
  std::printf("(beta* optimises the worst case; average performance is "
              "expected to be flat-ish around it)\n\n");

  // ---- Ablation D: capacity variation δ.
  std::printf("=== Ablation D: V-Dover gain vs best Dover as delta grows "
              "===\n");
  std::printf("%8s | %12s | %12s | %8s\n", "delta", "V-Dover %", "bestDover %",
              "gain %");
  for (double delta : {2.0, 5.0, 10.0, 35.0, 70.0}) {
    sjs::mc::McConfig config = base;
    config.setup.c_hi = delta;  // c_lo stays 1
    auto factories =
        sjs::sched::paper_lineup({1.0, delta / 2.0, delta});
    auto outcome = sjs::mc::run_monte_carlo(config, factories);
    auto row = sjs::mc::make_row(config.setup.lambda, outcome,
                                 static_cast<int>(factories.size()) - 1);
    std::printf("%8.1f | %12.3f | %12.3f | %8.2f\n", delta, row.vdover_percent,
                row.best_dover_percent, row.gain_percent);
  }
  std::printf("(delta = 1 would make V-Dover coincide with Dover; the gain "
              "comes from variation)\n\n");

  // ---- Ablation E: arrival burstiness (MMPP) at fixed mean rate.
  std::printf("=== Ablation E: arrival burstiness (MMPP, mean rate %.1f) "
              "===\n",
              flags.get_double("lambda"));
  std::printf("%14s | %12s | %12s | %8s\n", "spread", "V-Dover %",
              "bestDover %", "gain %");
  for (double spread : {0.0, 0.5, 0.9}) {
    // lambda_low/high = mean*(1∓spread); spread 0 is plain Poisson.
    const double mean_lambda = flags.get_double("lambda");
    const double horizon = flags.get_double("jobs") / mean_lambda;
    std::vector<double> fractions_vd, fractions_dover;
    auto vd = sjs::sched::make_vdover();
    auto dover = sjs::sched::make_dover(1.0);
    for (std::size_t run = 0;
         run < static_cast<std::size_t>(flags.get_int("runs")); ++run) {
      sjs::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")), run);
      sjs::gen::JobGenParams shape;
      shape.horizon = horizon;
      std::vector<sjs::Job> jobs;
      if (sjs::fp::is_zero(spread)) {
        shape.lambda = mean_lambda;
        jobs = sjs::gen::generate_jobs(shape, rng);
      } else {
        sjs::gen::MmppParams mmpp;
        mmpp.lambda_low = mean_lambda * (1.0 - spread);
        mmpp.lambda_high = mean_lambda * (1.0 + spread);
        mmpp.mean_sojourn_low = mmpp.mean_sojourn_high = horizon / 8.0;
        jobs = sjs::gen::generate_mmpp_jobs(shape, mmpp, rng);
      }
      double cover = horizon;
      for (const auto& j : jobs) cover = std::max(cover, j.deadline);
      sjs::cap::TwoStateMarkovParams cp;
      cp.mean_sojourn_lo = cp.mean_sojourn_hi = horizon / 4.0;
      auto profile = sjs::cap::sample_two_state_markov(cp, cover, rng);
      sjs::Instance instance(std::move(jobs), std::move(profile), 1.0, 35.0);
      auto run_one = [&](const sjs::sched::NamedFactory& f) {
        auto scheduler = f.make();
        sjs::sim::Engine engine(instance, *scheduler);
        return engine.run_to_completion().value_fraction();
      };
      fractions_vd.push_back(run_one(vd));
      fractions_dover.push_back(run_one(dover));
    }
    const double vd_pct = sjs::summarize(fractions_vd).mean * 100.0;
    const double dover_pct = sjs::summarize(fractions_dover).mean * 100.0;
    std::printf("%14.1f | %12.3f | %12.3f | %8.2f\n", spread, vd_pct,
                dover_pct, 100.0 * (vd_pct / dover_pct - 1.0));
  }
  std::printf("(spread 0 = Poisson; larger spread = burstier arrivals at the "
              "same mean rate — V-Dover's edge persists under burstiness)\n\n");

  // ---- Ablation F: the value of preemption (the paper's argument against
  // the non-preemptive prior work [12]).
  std::printf("=== Ablation F: value of preemption (captured value %%) ===\n");
  std::printf("%10s | %10s | %10s | %10s | %10s\n", "lambda", "NP-EDF",
              "FIFO", "EDF", "V-Dover");
  for (double lambda : {3.0, 6.0, 10.0}) {
    sjs::mc::McConfig config = base;
    config.setup.lambda = lambda;
    std::vector<sjs::sched::NamedFactory> lineup = {
        sjs::sched::make_np_edf(), sjs::sched::make_fifo(),
        sjs::sched::make_edf(), sjs::sched::make_vdover()};
    auto outcome = sjs::mc::run_monte_carlo(config, lineup);
    std::printf("%10.1f", lambda);
    for (const auto& agg : outcome.per_scheduler) {
      std::printf(" | %10.3f", agg.fraction_summary.mean * 100.0);
    }
    std::printf("\n");
  }
  std::printf("(non-preemptive dispatch cannot yield to newly released "
              "urgent jobs — the gap to EDF/V-Dover is the price)\n\n");

  // ---- Ablation G: importance-ratio k sweep (value density ~ U[1, k]).
  std::printf("=== Ablation G: importance-ratio sweep (density U[1,k], "
              "lambda=%.1f) ===\n",
              base.setup.lambda);
  std::printf("%8s | %12s | %12s | %8s | %10s\n", "k", "V-Dover %",
              "bestDover %", "gain %", "beta*");
  for (double k : {1.5, 3.0, 7.0, 15.0, 49.0}) {
    sjs::mc::McConfig config = base;
    config.setup.k = k;
    auto factories = sjs::sched::paper_lineup({1.0, 10.5, 35.0}, k);
    auto outcome = sjs::mc::run_monte_carlo(config, factories);
    auto row = sjs::mc::make_row(config.setup.lambda, outcome,
                                 static_cast<int>(factories.size()) - 1);
    std::printf("%8.1f | %12.3f | %12.3f | %8.2f | %10.4f\n", k,
                row.vdover_percent, row.best_dover_percent, row.gain_percent,
                sjs::theory::optimal_beta(k, config.setup.c_hi /
                                                 config.setup.c_lo));
  }
  std::printf("(the worst-case guarantee degrades with k, but the average "
              "gain is driven by capacity variation, not k)\n");
  return 0;
}
