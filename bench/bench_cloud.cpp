// Extension bench: cloud-wise scheduling (paper Sec. I's "with extensions").
// A fleet of servers with independent CTMC residual-capacity paths serves a
// shared secondary-job stream; we sweep dispatcher policy × local scheduler
// and report the captured-value percentage. Expected shape: least-backlog
// dispatch + V-Dover dominates; random/round-robin dispatch and value-blind
// local schedulers lose value under overload.
//
//   ./bench_cloud [--servers=4] [--lambda=20] [--runs=12] [--seed=21]
#include <cstdio>

#include "capacity/capacity_process.hpp"
#include "cloud/dispatch.hpp"
#include "cloud/global_sched.hpp"
#include "cloud/multi_engine.hpp"
#include "jobs/workload_gen.hpp"
#include "sched/factory.hpp"
#include "stats/summary.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace sjs;

  CliFlags flags;
  flags.add_int("servers", 4, "fleet size");
  flags.add_double("lambda", 20.0, "aggregate arrival rate");
  flags.add_int("runs", 12, "Monte-Carlo runs per cell");
  flags.add_int("seed", 21, "master seed");
  flags.add_double("horizon", 150.0, "release horizon");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }
  const auto servers = static_cast<std::size_t>(flags.get_int("servers"));
  const auto runs = static_cast<std::uint64_t>(flags.get_int("runs"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const double horizon = flags.get_double("horizon");

  const std::vector<cloud::DispatchPolicy> policies = {
      cloud::DispatchPolicy::kRoundRobin, cloud::DispatchPolicy::kRandom,
      cloud::DispatchPolicy::kLeastBacklog, cloud::DispatchPolicy::kPowerOfTwo,
      cloud::DispatchPolicy::kBestRate};
  const std::vector<sched::NamedFactory> locals = {
      sched::make_vdover(), sched::make_dover(1.0), sched::make_edf(),
      sched::make_hvdf()};

  std::printf("=== Cloud-wise extension: %zu servers, lambda=%.0f, %llu runs "
              "===\n",
              servers, flags.get_double("lambda"),
              static_cast<unsigned long long>(runs));
  std::printf("cell = mean captured value %% (dispatcher x local scheduler)\n\n");
  std::printf("%15s", "dispatch\\local");
  for (const auto& f : locals) std::printf(" | %12s", f.name.c_str());
  std::printf("\n");

  for (auto policy : policies) {
    std::printf("%15s", cloud::to_string(policy).c_str());
    for (const auto& local : locals) {
      std::vector<double> fractions;
      for (std::uint64_t run = 0; run < runs; ++run) {
        Rng rng(seed, run);
        gen::JobGenParams jp;
        jp.lambda = flags.get_double("lambda");
        jp.horizon = horizon;
        jp.slack_factor = 1.0;
        auto jobs = gen::generate_jobs(jp, rng);

        std::vector<cap::CapacityProfile> fleet;
        double cover = horizon;
        for (const auto& j : jobs) cover = std::max(cover, j.deadline);
        for (std::size_t s = 0; s < servers; ++s) {
          cap::TwoStateMarkovParams cp;
          cp.mean_sojourn_lo = cp.mean_sojourn_hi = horizon / 4.0;
          fleet.push_back(cap::sample_two_state_markov(cp, cover, rng));
        }
        cloud::CloudConfig config;
        config.policy = policy;
        config.rng_seed = seed ^ run;
        fractions.push_back(
            cloud::run_cloud(jobs, fleet, config, local).value_fraction());
      }
      std::printf(" | %12.3f", summarize(fractions).mean * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\n(identical job streams and fleet paths per run across all "
              "cells — differences are pure policy effects)\n\n");

  // ---- Global (migrating) schedulers on the coupled multi-server engine.
  std::printf("=== Global schedulers (migration allowed, coupled engine) "
              "===\n");
  std::printf("%15s | %10s | %12s\n", "scheduler", "value %", "migrations");
  for (auto key : {cloud::GlobalKey::kDeadline,
                   cloud::GlobalKey::kValueDensity}) {
    std::vector<double> fractions;
    double migrations = 0.0;
    for (std::uint64_t run = 0; run < runs; ++run) {
      Rng rng(seed, run);
      gen::JobGenParams jp;
      jp.lambda = flags.get_double("lambda");
      jp.horizon = horizon;
      jp.slack_factor = 1.0;
      auto jobs = gen::generate_jobs(jp, rng);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].id = static_cast<JobId>(i);
      }
      double cover = horizon;
      for (const auto& j : jobs) cover = std::max(cover, j.deadline);
      std::vector<cap::CapacityProfile> fleet;
      for (std::size_t s = 0; s < servers; ++s) {
        cap::TwoStateMarkovParams cp;
        cp.mean_sojourn_lo = cp.mean_sojourn_hi = horizon / 4.0;
        fleet.push_back(cap::sample_two_state_markov(cp, cover, rng));
      }
      cloud::GlobalKeyScheduler scheduler(key);
      cloud::MultiEngine engine(jobs, fleet, scheduler);
      auto result = engine.run_to_completion();
      fractions.push_back(result.value_fraction());
      migrations += static_cast<double>(result.migrations);
    }
    cloud::GlobalKeyScheduler naming(key);
    std::printf("%15s | %10.3f | %12.1f\n", naming.name().c_str(),
                summarize(fractions).mean * 100.0,
                migrations / static_cast<double>(runs));
  }
  std::printf("(global schedulers may move running jobs onto whichever "
              "server is currently fastest — the migration column counts "
              "those moves)\n");
  return 0;
}
