// Reproduces **Figure 1 (a)-(d)** of the paper: cumulative value vs time for
// λ = 6 on one shared capacity sample path; each panel compares V-Dover with
// Dover(ĉ) for ĉ ∈ {1, 10.5, 24.5, 35}.
//
// The traces are written as CSV (one file per panel) and rendered as ASCII
// charts so the qualitative shape — line segments whose slope tracks the
// CTMC capacity state, with V-Dover on or above Dover — is visible in the
// bench log, matching the paper's discussion of Fig. 1.
//
//   ./bench_fig1 [--lambda=6] [--seed=S] [--jobs=2000] [--points=120]
//                [--csv-prefix=fig1]
#include <cstdio>

#include "jobs/workload_gen.hpp"
#include "mc/monte_carlo.hpp"
#include "sched/factory.hpp"
#include "sim/engine.hpp"
#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/gnuplot.hpp"

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_double("lambda", 6.0, "arrival rate (paper Fig. 1 uses 6.0)");
  flags.add_int("seed", 7, "RNG seed selecting the sample path");
  flags.add_double("jobs", 2000.0, "expected jobs (paper: 2000)");
  flags.add_int("points", 120, "resampling grid size for CSV/chart");
  flags.add_string("csv-prefix", "fig1",
                   "CSV prefix; files <prefix>_chat<c>.csv (empty to skip)");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  sjs::gen::PaperSetup setup;
  setup.lambda = flags.get_double("lambda");
  setup.expected_jobs = flags.get_double("jobs");
  sjs::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
  const sjs::Instance instance = sjs::gen::generate_paper_instance(setup, rng);
  const double end = instance.max_deadline();
  const auto n_points = static_cast<std::size_t>(flags.get_int("points"));

  auto run = [&](const sjs::sched::NamedFactory& f) {
    auto scheduler = f.make();
    sjs::sim::Engine engine(instance, *scheduler);
    return engine.run_to_completion();
  };

  std::printf("=== Figure 1: value vs time, lambda=%.1f, one sample path ===\n",
              setup.lambda);
  std::printf("jobs=%zu  total value=%.1f  horizon=%.1f\n\n", instance.size(),
              instance.total_value(), end);

  const auto vdover = run(sjs::sched::make_vdover());
  auto vd_series = vdover.value_trace.resample(0.0, end, n_points);

  for (double c_hat : {1.0, 10.5, 24.5, 35.0}) {
    const auto dover = run(sjs::sched::make_dover(c_hat));
    auto dv_series = dover.value_trace.resample(0.0, end, n_points);

    sjs::AsciiSeries vd{"V-Dover", {}, vd_series, '#'};
    sjs::AsciiSeries dv{"Dover(c^=" + std::to_string(c_hat) + ")", {},
                        dv_series, '.'};
    for (std::size_t i = 0; i < n_points; ++i) {
      const double t = end * static_cast<double>(i) /
                       static_cast<double>(n_points - 1);
      vd.x.push_back(t);
      dv.x.push_back(t);
    }
    sjs::AsciiChartOptions options;
    options.title = "panel c^=" + std::to_string(c_hat) +
                    "  (final: V-Dover=" + std::to_string(vdover.completed_value) +
                    ", Dover=" + std::to_string(dover.completed_value) + ")";
    options.x_label = "time";
    options.y_label = "cumulative value";
    std::printf("%s\n", render_ascii_chart({dv, vd}, options).c_str());

    const auto& prefix = flags.get_string("csv-prefix");
    if (!prefix.empty()) {
      char path[128];
      std::snprintf(path, sizeof(path), "%s_chat%.1f.csv", prefix.c_str(),
                    c_hat);
      sjs::CsvWriter writer(path);
      writer.write_row({"time", "vdover_value", "dover_value"});
      for (std::size_t i = 0; i < n_points; ++i) {
        writer.write_row_numeric({vd.x[i], vd_series[i], dv_series[i]});
      }
      // A ready-to-run gnuplot script per panel (paper Fig. 1 styling).
      char gp_path[128], png_path[128], panel[64];
      std::snprintf(gp_path, sizeof(gp_path), "%s_chat%.1f.gp",
                    prefix.c_str(), c_hat);
      std::snprintf(png_path, sizeof(png_path), "%s_chat%.1f.png",
                    prefix.c_str(), c_hat);
      std::snprintf(panel, sizeof(panel),
                    "Fig. 1: value vs time (lambda=%.1f, c^=%.1f)",
                    setup.lambda, c_hat);
      sjs::GnuplotFigure figure;
      figure.title = panel;
      figure.x_label = "time";
      figure.y_label = "cumulative value";
      figure.output_png = png_path;
      figure.series = {{path, 1, 2, "V-Dover"}, {path, 1, 3, "Dover"}};
      sjs::write_gnuplot_script(figure, gp_path);
      std::printf("series written to %s (plot with: gnuplot %s)\n\n", path,
                  gp_path);
    }
  }
  return 0;
}
