// Adversarial worst-case search (see src/mc/worstcase.hpp): hill-climb over
// small admissible instances to find each algorithm's empirically worst
// (online / exact-OPT) ratio, and compare against the Theorem 3 bounds.
// Expected shape: every algorithm's found worst case lies between V-Dover's
// analytical guarantee and the 1/(1+√k)² upper bound's vicinity, with
// V-Dover and Dover degrading far more gracefully than EDF/greedy, whose
// worst cases collapse toward 0 as the search gets more aggressive.
//
//   ./bench_worstcase [--jobs=8] [--restarts=8] [--iters=250] [--seed=1]
#include <cstdio>

#include "mc/worstcase.hpp"
#include "sched/factory.hpp"
#include "theory/ratios.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  sjs::CliFlags flags;
  flags.add_int("jobs", 8, "jobs per candidate instance");
  flags.add_int("restarts", 8, "random restarts");
  flags.add_int("iters", 250, "mutations per restart");
  flags.add_int("seed", 1, "search RNG seed");
  flags.add_double("k", 7.0, "importance-ratio bound");
  flags.add_double("delta", 5.0, "capacity variation c_hi/c_lo");
  if (!flags.parse(argc, argv)) {
    if (!flags.error().empty()) {
      std::fprintf(stderr, "%s\n", flags.error().c_str());
      return 1;
    }
    return 0;
  }

  sjs::mc::WorstCaseOptions options;
  options.jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  options.restarts = static_cast<std::size_t>(flags.get_int("restarts"));
  options.iterations = static_cast<std::size_t>(flags.get_int("iters"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.k = flags.get_double("k");
  options.c_hi = options.c_lo * flags.get_double("delta");

  const double guarantee =
      sjs::theory::vdover_competitive_ratio(options.k, flags.get_double("delta"));
  const double upper = sjs::theory::overload_upper_bound(options.k);

  std::printf("=== Adversarial worst-case search (k=%.0f, delta=%.0f, "
              "n=%zu, %zu restarts x %zu iters) ===\n",
              options.k, flags.get_double("delta"), options.jobs,
              options.restarts, options.iterations);
  std::printf("V-Dover analytical guarantee: %.4f   overload upper bound: "
              "%.4f\n\n",
              guarantee, upper);
  std::printf("%14s | %12s | %10s | %10s | %12s\n", "scheduler",
              "worst ratio", "online", "OPT", "evaluations");

  const std::vector<sjs::sched::NamedFactory> factories = {
      sjs::sched::make_vdover(options.k),
      sjs::sched::make_dover(options.c_lo, options.k),
      sjs::sched::make_edf(),
      sjs::sched::make_edf_ac(),
      sjs::sched::make_llf(),
      sjs::sched::make_hvdf(),
      sjs::sched::make_srpt(),
      sjs::sched::make_fifo(),
  };
  for (const auto& factory : factories) {
    auto result = sjs::mc::search_worst_case(options, factory);
    std::printf("%14s | %12.4f | %10.3f | %10.3f | %12llu\n",
                factory.name.c_str(), result.worst_ratio, result.online_value,
                result.offline_value,
                static_cast<unsigned long long>(result.evaluations));
    if (factory.name == "V-Dover" && result.worst_ratio < guarantee) {
      std::printf("  !! V-Dover dipped below its Theorem 3(2) guarantee — "
                  "investigate\n");
    }
  }
  std::printf("\n(ratios are upper bounds on each algorithm's true "
              "competitive ratio for this input class; lower = more "
              "adversarially fragile)\n");
  return 0;
}
