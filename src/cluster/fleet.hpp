// Fleet model — a heterogeneous set of rentable machines.
//
// Each machine is described by a ServerSpec: a base capacity band
// [c_lo, c_hi] (the paper's C(c_lo, c_hi) class per machine), a speed-class
// multiplier applied to the whole band (the busy-time-on-heterogeneous-
// machines setting of arXiv 2402.11109), and a rental cost rate — cost
// accrues at cost_rate per unit of virtual time while the machine is rented
// (the cost-efficient-machines model of arXiv 1609.01184).
//
// A Fleet is an ordered list of specs; order is load-bearing: the dispatcher
// rents lowest-index-first and releases highest-index-first, so presets put
// the machines worth holding longest at the front.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "capacity/capacity_process.hpp"
#include "capacity/scenario.hpp"
#include "util/rng.hpp"
#include "util/vec.hpp"

namespace sjs::cluster {

struct ServerSpec {
  double c_lo = 1.0;      ///< base band floor (before speed scaling)
  double c_hi = 35.0;     ///< base band ceiling
  double speed = 1.0;     ///< speed-class multiplier on the whole band
  double cost_rate = 1.0; ///< rental cost per unit virtual time while rented

  /// Effective band after speed scaling.
  double lo() const { return c_lo * speed; }
  double hi() const { return c_hi * speed; }
};

/// Preset speed classes: cost grows slightly superlinearly with speed, so an
/// elastic policy has a real decision to make.
ServerSpec small_spec();     ///< speed 0.5, cost 0.45
ServerSpec standard_spec();  ///< speed 1.0, cost 1.0
ServerSpec large_spec();     ///< speed 2.0, cost 2.2

/// How a fleet's capacity paths are drawn for simulation runs.
struct ScenarioConfig {
  cap::ScenarioKind kind = cap::ScenarioKind::kSteady;
  // Two-state CTMC base shared by every scenario (band comes per server
  // from its spec).
  double mean_sojourn_lo = 6.0;
  double mean_sojourn_hi = 14.0;
  double p_start_hi = 0.7;
  cap::DiurnalParams diurnal;
  cap::FlashCrowdParams flash;
  cap::CorrelatedOutageParams outage;
};

class Fleet {
 public:
  Fleet() = default;

  /// Configuration-time wiring; add() is never called after a run starts
  /// (growth routes through util::append for the hot-path alloc gate, which
  /// cannot tell this `add` from TeeSink::add by name).
  void add(const ServerSpec& spec) { util::append(specs_, spec); }

  /// k identical machines.
  static Fleet uniform(std::size_t k, const ServerSpec& spec);
  /// k machines cycling large / standard / small (fastest first, so the
  /// lowest-rented configuration keeps the strongest machine).
  static Fleet heterogeneous(std::size_t k);

  std::size_t size() const { return specs_.size(); }
  const ServerSpec& spec(std::size_t k) const { return specs_[k]; }
  const std::vector<ServerSpec>& specs() const { return specs_; }

  /// Admission floor for Thm. 3(3) rejection: the strongest per-machine
  /// c_lo — a job needs only one machine, so it is hopeless only if even the
  /// best guaranteed floor cannot finish it in its window.
  double admission_c_lo() const;
  /// Largest effective ceiling across machines.
  double max_hi() const;
  /// Total cost rate of the whole fleet (budget sizing).
  double total_cost_rate() const;

  /// Serving paths: constant capacity at each machine's effective ceiling
  /// (the live server's analogue of the single-server constant-rate mode).
  std::vector<cap::CapacityProfile> constant_paths() const;

  /// Per-server CTMC base params with each machine's effective band.
  std::vector<cap::TwoStateMarkovParams> ctmc_bases(
      const ScenarioConfig& config) const;

  /// Draws one fleet of capacity paths for the configured scenario. Draw
  /// order is fixed (see capacity/scenario.hpp), so (seed, run) pins the
  /// whole fleet. `info` reports the correlated event when the scenario has
  /// one.
  std::vector<cap::CapacityProfile> sample_paths(
      const ScenarioConfig& config, double horizon, Rng& rng,
      cap::FleetEventInfo* info = nullptr) const;

 private:
  std::vector<ServerSpec> specs_;
};

/// fleet.csv round-trip ("server,c_lo,c_hi,speed,cost_rate", %.17g) — the
/// cluster journal's fleet description, replayed bit-exactly.
void save_fleet_csv(const Fleet& fleet, const std::string& path);
Fleet load_fleet_csv(const std::string& path);

}  // namespace sjs::cluster
