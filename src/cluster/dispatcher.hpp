// cluster::Dispatcher — the fleet's global scheduler: elastic rental plus
// top-R placement over the rented machines.
//
// At every engine interrupt (release / completion / expiry) the dispatcher
//   1. accrues rental cost for the interval since the last interrupt
//      (sum of rented cost rates × dt — exact, the fleet only changes at
//      interrupts),
//   2. asks its RentalController for a target machine count, clamps it to
//      [min_rented, fleet_size], enforces the cost budget (once accrued cost
//      reaches the budget the fleet pins to min_rented — enforcement is at
//      interrupt granularity, so the final interval may overshoot by one
//      accrual), and rents lowest-index-first / releases highest-index-first,
//   3. places the top-R live jobs (R = rented machines) by the global key
//      (deadline → Cluster-EDF, value density → Cluster-HVDF) onto rented
//      machines, fastest-current-rate first, winners staying put on ties —
//      the same no-gratuitous-migration rule as cloud::GlobalKeyScheduler.
//
// Decisions depend only on the interrupt sequence, so a replayed journal
// reproduces every rent, placement, and cost cent bit-exactly. The scheduler
// callbacks are hot paths (sjs_lint alloc roots): all scratch is pre-sized at
// construction and never grown inside a hook.
#pragma once

#include <memory>
#include <set>
#include <utility>

#include "cloud/global_sched.hpp"
#include "cloud/multi_engine.hpp"
#include "cluster/fleet.hpp"
#include "cluster/rental.hpp"

namespace sjs::cluster {

struct DispatcherConfig {
  cloud::GlobalKey key = cloud::GlobalKey::kDeadline;
  double budget = 0.0;          ///< total rental budget; <= 0 means unlimited
  std::size_t min_rented = 1;   ///< never release below this many machines
};

class Dispatcher final : public cloud::GlobalScheduler {
 public:
  /// `rental` may be null: the whole fleet stays rented ("static"). The
  /// fleet must outlive the dispatcher and match the engine's server count.
  Dispatcher(const Fleet& fleet, const DispatcherConfig& config,
             std::unique_ptr<RentalController> rental);

  void on_start(cloud::MultiEngine& engine) override;
  void on_release(cloud::MultiEngine& engine, JobId job) override;
  void on_complete(cloud::MultiEngine& engine, JobId job,
                   std::size_t server) override;
  void on_expire(cloud::MultiEngine& engine, JobId job,
                 std::size_t server) override;
  /// "Cluster-EDF/threshold", "Cluster-HVDF/static", ...
  std::string name() const override;

  // --- rental accounting (read after the run; settle() first) ---
  /// Accrues cost up to `t` — call once with the final session time before
  /// reading the totals or calling apply_accounting().
  void settle(double t);
  double cost_accrued() const { return cost_; }
  double rented_machine_time() const { return rented_time_; }
  std::uint64_t rent_events() const { return rent_events_; }
  std::uint64_t release_events() const { return release_events_; }
  std::uint64_t rented_peak() const { return rented_peak_; }
  std::size_t rented_count() const { return rented_count_; }

  /// Copies the rental totals into a run result.
  void apply_accounting(cloud::MultiSimResult* result) const;

 private:
  double priority(const cloud::MultiEngine& engine, JobId job) const;
  /// Shared interrupt body: accrue, re-rent, re-place.
  void handle_interrupt(cloud::MultiEngine& engine);
  void accrue(double t);
  void apply_rental(cloud::MultiEngine& engine);
  void place(cloud::MultiEngine& engine);

  const Fleet* fleet_;
  DispatcherConfig config_;
  std::unique_ptr<RentalController> rental_;

  /// Live jobs ordered by (priority, id) — lower is better.
  std::set<std::pair<double, JobId>> live_;

  std::vector<char> rented_;          // per server
  std::size_t rented_count_ = 0;
  double rented_cost_rate_ = 0.0;     // sum of rented machines' cost rates
  double last_accrual_ = 0.0;
  double cost_ = 0.0;
  double rented_time_ = 0.0;
  std::uint64_t rent_events_ = 0;
  std::uint64_t release_events_ = 0;
  std::uint64_t rented_peak_ = 0;

  // Hook-time scratch, pre-sized to the fleet in the constructor.
  std::vector<JobId> chosen_;
  std::vector<char> available_;
};

/// Convenience replay driver: runs `jobs` over `paths` under a fresh
/// MultiEngine with `dispatcher`, settles the rental account at the last
/// event, and returns the result with the rental fields filled in.
cloud::MultiSimResult run_cluster(const std::vector<Job>& jobs,
                                  std::vector<cap::CapacityProfile> paths,
                                  Dispatcher& dispatcher,
                                  obs::TraceSink* sink = nullptr);

}  // namespace sjs::cluster
