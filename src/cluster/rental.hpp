// Elastic machine-rental policies — how many machines the dispatcher should
// hold rented, decided online from observable load only.
//
// The controller sees a FleetLoad snapshot at every engine interrupt and
// answers with a desired rented-machine count; the dispatcher clamps the
// answer to [min_rented, fleet_size], applies the cost budget, and performs
// the actual rent/release transitions (lowest-index rents first,
// highest-index releases first — fleet order encodes machine preference).
//
// Controllers are deterministic state machines driven purely by the interrupt
// sequence, so a replayed session reproduces every rental decision exactly.
// Hot-path discipline: target_machines() runs inside scheduler callbacks and
// must not allocate.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace sjs::cluster {

/// Online-observable load snapshot at one engine interrupt.
struct FleetLoad {
  double now = 0.0;
  std::size_t live_jobs = 0;   ///< released, neither completed nor expired
  std::size_t rented = 0;      ///< machines currently rented
  std::size_t fleet_size = 0;  ///< machines available to rent
};

class RentalController {
 public:
  virtual ~RentalController() = default;
  /// Desired rented count for this load; called at every interrupt.
  virtual std::size_t target_machines(const FleetLoad& load) = 0;
  virtual std::string name() const = 0;
};

/// Hysteresis on instantaneous jobs-per-machine: rent one more machine when
/// the ratio exceeds rent_above, release one when it falls below
/// release_below. The dead band between the two prevents rent/release
/// flapping on every completion.
class ThresholdRentalController final : public RentalController {
 public:
  explicit ThresholdRentalController(double rent_above = 2.0,
                                     double release_below = 0.75);
  std::size_t target_machines(const FleetLoad& load) override;
  std::string name() const override { return "threshold"; }

 private:
  double rent_above_;
  double release_below_;
};

/// Exponentially-weighted moving average of the live-job count, sized to
/// jobs_per_machine: smooth tracking instead of hysteresis, so the fleet
/// follows sustained load shifts and ignores single-job noise.
class LoadTrackingRentalController final : public RentalController {
 public:
  explicit LoadTrackingRentalController(double alpha = 0.3,
                                        double jobs_per_machine = 1.5);
  std::size_t target_machines(const FleetLoad& load) override;
  std::string name() const override { return "load"; }

 private:
  double alpha_;
  double jobs_per_machine_;
  double ewma_ = 0.0;
  bool primed_ = false;
};

/// Factory: "threshold", "load", or "static" (nullptr — the dispatcher keeps
/// the whole fleet rented). Throws on an unknown name.
std::unique_ptr<RentalController> make_rental_controller(
    const std::string& name);

}  // namespace sjs::cluster
