#include "cluster/dispatcher.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sjs::cluster {

Dispatcher::Dispatcher(const Fleet& fleet, const DispatcherConfig& config,
                       std::unique_ptr<RentalController> rental)
    : fleet_(&fleet), config_(config), rental_(std::move(rental)) {
  SJS_CHECK_MSG(fleet.size() > 0, "dispatcher needs a non-empty fleet");
  SJS_CHECK_MSG(config_.min_rented >= 1, "min_rented must be at least 1");
  SJS_CHECK_MSG(config_.min_rented <= fleet.size(),
                "min_rented exceeds the fleet");
  rented_.assign(fleet.size(), 0);
  chosen_.assign(fleet.size(), kNoJob);
  available_.assign(fleet.size(), 0);
}

std::string Dispatcher::name() const {
  std::string out = config_.key == cloud::GlobalKey::kDeadline
                        ? "Cluster-EDF"
                        : "Cluster-HVDF";
  out += '/';
  out += rental_ ? rental_->name() : "static";
  return out;
}

double Dispatcher::priority(const cloud::MultiEngine& engine,
                            JobId job) const {
  const Job& j = engine.job(job);
  // Lower is better; negate density so higher density sorts first.
  return config_.key == cloud::GlobalKey::kDeadline ? j.deadline
                                                    : -j.value_density();
}

void Dispatcher::accrue(double t) {
  const double dt = t - last_accrual_;
  if (dt > 0.0) {
    cost_ += rented_cost_rate_ * dt;
    rented_time_ += static_cast<double>(rented_count_) * dt;
    last_accrual_ = t;
  }
}

void Dispatcher::settle(double t) { accrue(t); }

void Dispatcher::apply_accounting(cloud::MultiSimResult* result) const {
  result->rental_cost = cost_;
  result->rented_machine_time = rented_time_;
  result->rent_events = rent_events_;
  result->release_events = release_events_;
  result->rented_peak = rented_peak_;
}

void Dispatcher::apply_rental(cloud::MultiEngine& engine) {
  const std::size_t fleet_size = fleet_->size();
  std::size_t target = rented_count_;
  if (rental_) {
    target = rental_->target_machines(
        FleetLoad{engine.now(), live_.size(), rented_count_, fleet_size});
  } else {
    target = fleet_size;
  }
  target = std::clamp(target, config_.min_rented, fleet_size);
  // Budget exhausted: pin the fleet to its floor. Enforcement is at
  // interrupt granularity (cost is accrued before this check), so the final
  // interval may overshoot by one accrual.
  if (config_.budget > 0.0 && cost_ >= config_.budget) {
    target = config_.min_rented;
  }

  while (rented_count_ < target) {
    std::size_t s = 0;
    while (rented_[s]) ++s;
    rented_[s] = 1;
    ++rented_count_;
    rented_cost_rate_ += fleet_->spec(s).cost_rate;
    ++rent_events_;
  }
  while (rented_count_ > target) {
    std::size_t s = fleet_size;
    while (s > 0 && !rented_[s - 1]) --s;
    --s;
    // Evict whatever runs there; the job stays live and re-queues in place().
    if (engine.running_on(s) != kNoJob) engine.idle(s);
    rented_[s] = 0;
    --rented_count_;
    rented_cost_rate_ -= fleet_->spec(s).cost_rate;
    ++release_events_;
  }
  rented_peak_ = std::max(rented_peak_,
                          static_cast<std::uint64_t>(rented_count_));
}

void Dispatcher::place(cloud::MultiEngine& engine) {
  const std::size_t fleet_size = fleet_->size();

  // Top-R live jobs by priority, R = rented machines.
  std::size_t n = 0;
  for (const auto& [prio, job] : live_) {
    if (n == rented_count_) break;
    chosen_[n++] = job;
  }

  // Assign in priority order: each winner takes the fastest still-available
  // rented machine, staying put when its current machine ties the maximum
  // (no gratuitous migration among equal machines).
  for (std::size_t s = 0; s < fleet_size; ++s) available_[s] = rented_[s];
  for (std::size_t i = 0; i < n; ++i) {
    const JobId job = chosen_[i];
    std::size_t best = cloud::kNoServer;
    for (std::size_t s = 0; s < fleet_size; ++s) {
      if (!available_[s]) continue;
      if (best == cloud::kNoServer ||
          engine.server_rate(s) > engine.server_rate(best)) {
        best = s;
      }
    }
    const std::size_t current = engine.server_of(job);
    std::size_t target = best;
    if (current != cloud::kNoServer && available_[current] &&
        engine.server_rate(current) >= engine.server_rate(best)) {
      target = current;
    }
    available_[target] = 0;
    if (current != target) engine.run_on(target, job);
  }
  // Any remaining rented machine still executing a non-winner goes idle.
  for (std::size_t s = 0; s < fleet_size; ++s) {
    if (available_[s] && engine.running_on(s) != kNoJob) {
      engine.idle(s);
    }
  }
}

void Dispatcher::handle_interrupt(cloud::MultiEngine& engine) {
  accrue(engine.now());
  apply_rental(engine);
  place(engine);
}

void Dispatcher::on_start(cloud::MultiEngine& engine) {
  SJS_CHECK_MSG(engine.server_count() == fleet_->size(),
                "engine has " << engine.server_count() << " servers, fleet "
                              << fleet_->size());
  handle_interrupt(engine);
}

void Dispatcher::on_release(cloud::MultiEngine& engine, JobId job) {
  live_.emplace(priority(engine, job), job);
  handle_interrupt(engine);
}

void Dispatcher::on_complete(cloud::MultiEngine& engine, JobId job,
                             std::size_t /*server*/) {
  live_.erase({priority(engine, job), job});
  handle_interrupt(engine);
}

void Dispatcher::on_expire(cloud::MultiEngine& engine, JobId job,
                           std::size_t /*server*/) {
  live_.erase({priority(engine, job), job});
  handle_interrupt(engine);
}

cloud::MultiSimResult run_cluster(const std::vector<Job>& jobs,
                                  std::vector<cap::CapacityProfile> paths,
                                  Dispatcher& dispatcher,
                                  obs::TraceSink* sink) {
  cloud::MultiEngine engine(jobs, std::move(paths), dispatcher);
  if (sink) engine.attach_trace(sink);
  cloud::MultiSimResult result = engine.run_to_completion();
  dispatcher.settle(engine.now());
  dispatcher.apply_accounting(&result);
  return result;
}

}  // namespace sjs::cluster
