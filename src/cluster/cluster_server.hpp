// ClusterServer — the fleet-backed real-time admission service
// (docs/cluster.md), the K-machine analogue of serve::AdmissionServer.
//
// Same serving stack — EventLoop + length-prefixed protocol + ClockBridge +
// AdmissionGate — but the backend is a live cloud::MultiEngine over the
// fleet's constant serving paths, scheduled by a cluster::Dispatcher
// (elastic rental + top-R placement). The admission floor is the fleet's
// admission_c_lo(): a job needs only one machine, so it is rejected at the
// door only if even the strongest guaranteed floor cannot fit it (Thm. 3(3)
// applied per machine).
//
// Every admitted job is journalled to a ClusterJournal; the session replays
// bit-exactly through `sjs_sim --cluster-bundle=<dir>` because admission
// stamps are strictly increasing, MultiEngine::advance_to subdivides
// execution only at event times, and the Dispatcher's decisions are a pure
// function of the interrupt sequence (cancel-bearing sessions carry the same
// replay caveat as the single-server plane).
//
// Single-threaded by construction, like AdmissionServer: sockets, engine,
// dispatcher, and journal are touched only from the thread calling step().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/multi_engine.hpp"
#include "cluster/cluster_journal.hpp"
#include "cluster/dispatcher.hpp"
#include "cluster/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/ring_buffer.hpp"
#include "obs/trace_sink.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/event_loop.hpp"
#include "serve/protocol.hpp"
#include "util/vec.hpp"

namespace sjs::cluster {

struct ClusterServerConfig {
  Fleet fleet = Fleet::heterogeneous(4);
  cloud::GlobalKey key = cloud::GlobalKey::kDeadline;
  std::string rental = "threshold";  ///< "static" | "threshold" | "load"
  double budget = 0.0;               ///< total rental budget; <= 0 unlimited
  std::size_t min_rented = 1;

  int port = 0;                ///< 0 → ephemeral
  std::string journal_dir;     ///< empty → no journal
  double accel = 1.0;          ///< virtual seconds per wall second
  std::uint64_t max_in_flight = 1024;
  std::size_t max_write_buffer = 1 << 18;
  bool admission_check = true;
  std::size_t trace_ring = 0;  ///< >0: keep the last N trace events
};

class ClusterServer final : public serve::EventLoop::Handler {
 public:
  /// The clock is injected (SystemClock for the daemon, FakeClock in tests)
  /// and must outlive the server; `metrics` is optional (server.* and
  /// cluster.* series are published to it).
  ClusterServer(ClusterServerConfig config, serve::Clock& clock,
                obs::MetricsRegistry* metrics = nullptr);
  ~ClusterServer() override;

  /// Binds the listener, writes the journal preamble, anchors the clock
  /// bridge, enters engine live mode. Returns the bound port.
  int start();

  /// One pump cycle; same contract as AdmissionServer::step. Returns false
  /// once fully drained.
  bool step(int max_wait_ms = 50);

  /// Serves until drained (DRAIN request or request_drain()).
  void run();

  /// Initiates graceful drain: stop accepting, refuse new submits, resolve
  /// the simulated backlog, settle the rental account, flush, shut down.
  void request_drain();

  bool draining() const { return draining_; }
  bool finished() const { return finished_; }

  /// Final result (rental accounting filled in); valid once finished().
  const cloud::MultiSimResult& result() const { return result_; }

  /// Live counters (also the body of STATS replies).
  serve::StatsBody stats() const;

  int port() const { return loop_.port(); }
  serve::EventLoop& loop() { return loop_; }
  const Fleet& fleet() const { return config_.fleet; }
  const std::vector<Job>& jobs() const { return jobs_; }
  const std::string& journal_dir() const;
  /// Non-empty once a journal append has failed (session fails via drain;
  /// sjs_serve exits non-zero).
  const std::string& journal_error() const { return journal_error_; }
  std::vector<obs::TraceEvent> recent_trace() const;

  /// Registers `fd` (e.g. a signal self-pipe) with the loop; when readable
  /// the server drains it and initiates a drain.
  void watch_shutdown_fd(int fd);

  // EventLoop::Handler:
  void on_accept(int conn) override;
  void on_data(int conn, const std::uint8_t* data, std::size_t size) override;
  void on_close(int conn, bool overflow) override;
  void on_wake(int fd) override;

 private:
  /// Routes a job's COMPLETED/EXPIRED notification; the generation guards
  /// against conn-id reuse after a disconnect.
  struct Route {
    int conn = -1;
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;  // the SUBMIT's seq, echoed in notifications
    bool cancelled = false;
  };

  /// Captures kComplete/kExpire events raised inside the engine (same
  /// drain-in-place pattern as AdmissionServer::NotificationSink).
  class NotificationSink final : public obs::TraceSink {
   public:
    void record(const obs::TraceEvent& event) override {
      if (event.kind == obs::TraceKind::kComplete ||
          event.kind == obs::TraceKind::kExpire) {
        util::append(pending_, event);
      }
    }
    std::size_t size() const { return pending_.size(); }
    const obs::TraceEvent& operator[](std::size_t i) const {
      return pending_[i];
    }
    void clear() { pending_.clear(); }
    void reserve(std::size_t n) { pending_.reserve(n); }

   private:
    std::vector<obs::TraceEvent> pending_;
  };

  void handle_message(int conn, const serve::Message& m);
  void handle_submit(int conn, const serve::Message& m);
  void handle_cancel(int conn, const serve::Message& m);
  void handle_query(int conn, const serve::Message& m);
  void reply(int conn, const serve::Message& m);
  void pump_engine();
  void dispatch_notifications();
  /// Resolves the backlog (finish_live), settles the rental account, writes
  /// outcomes.csv, publishes cluster.* metrics.
  void finalize();
  void count(const char* name, double delta = 1.0);
  void set_gauge(const char* name, double value);

  ClusterServerConfig config_;
  std::vector<Job> jobs_;  ///< the admitted stream (dense ids)
  Dispatcher dispatcher_;
  cloud::MultiEngine engine_;
  serve::AdmissionGate gate_;
  serve::ClockBridge bridge_;
  serve::EventLoop loop_;
  std::unique_ptr<ClusterJournal> journal_;
  std::string journal_error_;
  obs::MetricsRegistry* metrics_;
  obs::MetricsRegistry::Shard* shard_ = nullptr;

  NotificationSink notifications_;
  std::unique_ptr<obs::RingTraceBuffer> ring_;
  std::unique_ptr<obs::TraceMetricsBridge> trace_bridge_;
  obs::TeeSink tee_;

  std::vector<serve::FrameDecoder> decoders_;  // indexed by conn id
  std::vector<std::uint64_t> conn_gens_;       // bumped on close
  std::vector<Route> routes_;                  // indexed by JobId
  std::vector<int> shutdown_fds_;

  bool started_ = false;
  bool draining_ = false;
  bool finalized_ = false;
  bool finished_ = false;
  int flush_spins_ = 0;

  serve::StatsBody stats_{};
  std::uint64_t in_flight_peak_ = 0;
  cloud::MultiSimResult result_;
};

}  // namespace sjs::cluster
