#include "cluster/cluster_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "cluster/cluster_metrics.hpp"
#include "util/logging.hpp"

namespace sjs::cluster {

using serve::ErrorCode;
using serve::FrameDecoder;
using serve::JobState;
using serve::Message;
using serve::MsgType;

namespace {

// The cluster daemon publishes the same server.* family as the
// single-engine daemon (one serving surface, two backends); cluster.*
// rental/placement series are published at drain via
// publish_cluster_metrics.
constexpr const char* kCtrSubmitted = "server.jobs_submitted";
constexpr const char* kCtrAccepted = "server.jobs_accepted";
constexpr const char* kCtrRejected = "server.jobs_rejected";
constexpr const char* kCtrShed = "server.jobs_shed";
constexpr const char* kCtrCompleted = "server.jobs_completed";
constexpr const char* kCtrExpired = "server.jobs_expired";
constexpr const char* kCtrCancelled = "server.jobs_cancelled";
constexpr const char* kCtrConnections = "server.connections";
constexpr const char* kCtrMalformed = "server.malformed_frames";
constexpr const char* kCtrOverflows = "server.write_overflows";
constexpr const char* kGaugeInFlightPeak = "server.in_flight_peak";
constexpr const char* kGaugeWriteBufPeak = "server.write_buffer_peak";

}  // namespace

ClusterServer::ClusterServer(ClusterServerConfig config, serve::Clock& clock,
                             obs::MetricsRegistry* metrics)
    : config_(std::move(config)),
      dispatcher_(config_.fleet,
                  DispatcherConfig{config_.key, config_.budget,
                                   config_.min_rented},
                  make_rental_controller(config_.rental)),
      engine_(jobs_, config_.fleet.constant_paths(), dispatcher_),
      gate_(config_.fleet.admission_c_lo(), config_.admission_check,
            config_.max_in_flight),
      bridge_(clock, config_.accel),
      loop_(*this),
      metrics_(metrics) {
  if (metrics_) shard_ = &metrics_->local();
  loop_.set_max_write_buffer(config_.max_write_buffer);
  tee_.add(&notifications_);
  if (config_.trace_ring > 0) {
    ring_ = std::make_unique<obs::RingTraceBuffer>(config_.trace_ring);
    tee_.add(ring_.get());
  }
  if (metrics_) {
    trace_bridge_ = std::make_unique<obs::TraceMetricsBridge>(metrics_->local());
    tee_.add(trace_bridge_.get());
  }
  engine_.attach_trace(&tee_);
}

ClusterServer::~ClusterServer() = default;

int ClusterServer::start() {
  SJS_CHECK_MSG(!started_, "ClusterServer::start called twice");
  if (!config_.journal_dir.empty()) {
    ClusterJournal::Meta meta;
    meta.scheduler = dispatcher_.name();
    meta.key =
        config_.key == cloud::GlobalKey::kDeadline ? "deadline" : "density";
    meta.rental = config_.rental.empty() ? "static" : config_.rental;
    meta.budget = config_.budget;
    meta.min_rented = config_.min_rented;
    meta.accel = config_.accel;
    meta.admission_check = config_.admission_check;
    journal_ = std::make_unique<ClusterJournal>(
        config_.journal_dir, config_.fleet, config_.fleet.constant_paths(),
        meta);
  }
  const int port = loop_.listen_loopback(config_.port);
  // Pre-size the per-request path from --max-in-flight, same growth-to-
  // high-water contract as AdmissionServer::start.
  const auto n = static_cast<std::size_t>(config_.max_in_flight);
  jobs_.reserve(n);
  engine_.reserve_live(n);
  routes_.reserve(n);
  notifications_.reserve(n);
  engine_.begin_live();
  bridge_.start();
  started_ = true;
  return port;
}

void ClusterServer::watch_shutdown_fd(int fd) {
  util::append(shutdown_fds_, fd);
  loop_.watch(fd);
}

const std::string& ClusterServer::journal_dir() const {
  static const std::string empty;
  return journal_ ? journal_->dir() : empty;
}

std::vector<obs::TraceEvent> ClusterServer::recent_trace() const {
  return ring_ ? ring_->events() : std::vector<obs::TraceEvent>{};
}

void ClusterServer::pump_engine() {
  engine_.advance_to(std::max(bridge_.virtual_now(), engine_.now()));
  dispatch_notifications();
}

void ClusterServer::dispatch_notifications() {
  for (std::size_t i = 0; i < notifications_.size(); ++i) {
    const obs::TraceEvent ev = notifications_[i];
    const auto id = static_cast<std::size_t>(ev.job);
    if (id >= routes_.size()) continue;
    Route& route = routes_[id];
    Message note;
    note.ticket = static_cast<std::uint64_t>(ev.job);
    note.seq = route.seq;
    if (ev.kind == obs::TraceKind::kComplete) {
      ++stats_.completed;
      stats_.completed_value += ev.a;
      count(kCtrCompleted);
      note.type = MsgType::kCompleted;
      note.a = ev.a;     // value collected
      note.b = ev.time;  // completion instant
    } else {
      if (route.cancelled) {
        // The client already got kCancelled; the forced expiry is internal.
        --stats_.in_flight;
        continue;
      }
      ++stats_.expired;
      count(kCtrExpired);
      note.type = MsgType::kExpired;
      note.b = ev.time;
    }
    --stats_.in_flight;
    if (route.conn >= 0 && loop_.conn_open(route.conn) &&
        conn_gens_[static_cast<std::size_t>(route.conn)] == route.gen) {
      reply(route.conn, note);
    }
  }
  notifications_.clear();
}

bool ClusterServer::step(int max_wait_ms) {
  SJS_CHECK_MSG(started_, "ClusterServer::step before start()");
  if (finished_) return false;
  if (!finalized_) {
    pump_engine();
    if (draining_) {
      finalize();
    } else {
      int timeout = max_wait_ms;
      const double next = engine_.next_event_time();
      if (std::isfinite(next)) {
        const double wall_s = bridge_.wall_until(next);
        const double ms = std::ceil(std::max(0.0, wall_s) * 1000.0);
        timeout = static_cast<int>(
            std::min<double>(ms, static_cast<double>(max_wait_ms)));
      }
      loop_.poll_once(timeout);
      if (draining_ && !finalized_) {
        pump_engine();
        finalize();
      }
    }
  }
  if (finalized_) {
    // Bounded flush spins, then drop: a peer that stops reading cannot wedge
    // the drain.
    if (loop_.writes_pending() && loop_.open_conn_count() > 0 &&
        flush_spins_ < 200) {
      ++flush_spins_;
      loop_.poll_once(std::min(max_wait_ms, 10));
    } else {
      set_gauge(kGaugeInFlightPeak, static_cast<double>(in_flight_peak_));
      set_gauge(kGaugeWriteBufPeak,
                static_cast<double>(loop_.write_buffer_peak()));
      loop_.shutdown();
      finished_ = true;
    }
  }
  return !finished_;
}

void ClusterServer::run() {
  while (step()) {
  }
}

void ClusterServer::request_drain() {
  if (draining_) return;
  draining_ = true;
  loop_.stop_listening();
}

void ClusterServer::finalize() {
  SJS_CHECK_MSG(!finalized_, "ClusterServer::finalize called twice");
  // Drain = fast-forward, as in AdmissionServer::finalize; then settle the
  // rental account at the final instant so the cost integral covers the tail
  // interval after the last interrupt.
  result_ = engine_.finish_live();
  dispatcher_.settle(engine_.now());
  dispatcher_.apply_accounting(&result_);
  dispatch_notifications();
  if (shard_) {
    publish_cluster_metrics(result_, engine_.now(), *shard_);
  }
  if (journal_) {
    save_multi_outcomes_csv(result_, jobs_,
                            (std::filesystem::path(journal_->dir()) /
                             "outcomes.csv").string());
    try {
      journal_->close();
    } catch (const std::exception& e) {
      if (journal_error_.empty()) journal_error_ = e.what();
    }
  }
  finalized_ = true;
}

serve::StatsBody ClusterServer::stats() const {
  serve::StatsBody s = stats_;
  s.virtual_now = engine_.now();
  return s;
}

void ClusterServer::on_accept(int conn) {
  const auto i = static_cast<std::size_t>(conn);
  util::grow_to_index(decoders_, i);
  util::grow_to_index_fill(conn_gens_, i, std::uint64_t{0});
  decoders_[i].reset();
  count(kCtrConnections);
}

void ClusterServer::on_close(int conn, bool overflow) {
  ++conn_gens_[static_cast<std::size_t>(conn)];
  if (overflow) count(kCtrOverflows);
}

void ClusterServer::on_wake(int fd) {
  char buf[64];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  request_drain();
}

void ClusterServer::on_data(int conn, const std::uint8_t* data,
                            std::size_t size) {
  FrameDecoder& dec = decoders_[static_cast<std::size_t>(conn)];
  dec.feed(data, size);
  Message m;
  while (true) {
    const FrameDecoder::Status st = dec.next(m);
    if (st == FrameDecoder::Status::kNeedMore) return;
    if (st == FrameDecoder::Status::kMalformed) {
      count(kCtrMalformed);
      Message err;
      err.type = MsgType::kError;
      err.code = static_cast<std::uint8_t>(ErrorCode::kMalformedFrame);
      reply(conn, err);
      loop_.close_conn(conn);
      return;
    }
    handle_message(conn, m);
    if (!loop_.conn_open(conn)) return;
  }
}

void ClusterServer::handle_message(int conn, const Message& m) {
  switch (m.type) {
    case MsgType::kSubmit:
      handle_submit(conn, m);
      return;
    case MsgType::kCancel:
      handle_cancel(conn, m);
      return;
    case MsgType::kQuery:
      handle_query(conn, m);
      return;
    case MsgType::kStats: {
      Message r;
      r.type = MsgType::kStatsReply;
      r.seq = m.seq;
      r.stats = stats();
      reply(conn, r);
      return;
    }
    case MsgType::kDrain: {
      Message r;
      r.type = MsgType::kDraining;
      r.seq = m.seq;
      reply(conn, r);
      request_drain();
      return;
    }
    default: {
      Message err;
      err.type = MsgType::kError;
      err.seq = m.seq;
      err.code = static_cast<std::uint8_t>(ErrorCode::kNotARequest);
      reply(conn, err);
      loop_.close_conn(conn);
      return;
    }
  }
}

void ClusterServer::handle_submit(int conn, const Message& m) {
  ++stats_.submitted;
  count(kCtrSubmitted);
  Message r;
  r.seq = m.seq;
  const serve::AdmissionGate::Decision verdict =
      gate_.evaluate(m.a, m.b, m.c, bridge_.virtual_now(), engine_.now(),
                     draining_, stats_.in_flight);
  if (verdict.reply == MsgType::kRejected) {
    ++stats_.rejected;
    count(kCtrRejected);
    r.type = MsgType::kRejected;
    r.code = static_cast<std::uint8_t>(verdict.reason);
    reply(conn, r);
    return;
  }
  if (verdict.reply == MsgType::kShed) {
    ++stats_.shed;
    count(kCtrShed);
    r.type = MsgType::kShed;
    reply(conn, r);
    return;
  }
  Job job = verdict.job;
  const JobId id = static_cast<JobId>(jobs_.size());
  job.id = id;
  util::append(jobs_, job);
  engine_.admit_live(id);
  Route route;
  route.conn = conn;
  route.gen = conn_gens_[static_cast<std::size_t>(conn)];
  route.seq = m.seq;
  util::append(routes_, route);
  SJS_CHECK(routes_.size() == static_cast<std::size_t>(id) + 1);
  ++stats_.in_flight;
  in_flight_peak_ = std::max(in_flight_peak_, stats_.in_flight);
  if (journal_) {
    try {
      journal_->record_admit(job);
    } catch (const std::exception& e) {
      // Same durability contract as AdmissionServer: the admit cannot be
      // made durable, so withdraw the job and fail the session via drain.
      journal_error_ = e.what();
      routes_[static_cast<std::size_t>(id)].cancelled = true;
      engine_.cancel_live(id);
      r.type = MsgType::kError;
      r.code = static_cast<std::uint8_t>(ErrorCode::kJournalFailed);
      reply(conn, r);
      dispatch_notifications();
      request_drain();
      return;
    }
  }
  ++stats_.accepted;
  stats_.admitted_value += job.value;
  count(kCtrAccepted);
  r.type = MsgType::kAccepted;
  r.ticket = static_cast<std::uint64_t>(id);
  r.a = job.release;
  reply(conn, r);
}

void ClusterServer::handle_cancel(int conn, const Message& m) {
  Message r;
  r.seq = m.seq;
  r.ticket = m.ticket;
  const auto id = static_cast<JobId>(m.ticket);
  const bool known =
      m.ticket < routes_.size() && !routes_[m.ticket].cancelled;
  if (known && engine_.cancel_live(id)) {
    routes_[m.ticket].cancelled = true;
    ++stats_.cancelled;
    count(kCtrCancelled);
    if (journal_) {
      try {
        journal_->record_cancel(engine_.now(), id);
      } catch (const std::exception& e) {
        journal_error_ = e.what();
        r.type = MsgType::kError;
        r.code = static_cast<std::uint8_t>(ErrorCode::kJournalFailed);
        reply(conn, r);
        dispatch_notifications();
        request_drain();
        return;
      }
    }
    r.type = MsgType::kCancelled;
    reply(conn, r);
    dispatch_notifications();
  } else {
    r.type = MsgType::kCancelFailed;
    reply(conn, r);
  }
}

void ClusterServer::handle_query(int conn, const Message& m) {
  Message r;
  r.type = MsgType::kQueryReply;
  r.seq = m.seq;
  r.ticket = m.ticket;
  const auto id = static_cast<JobId>(m.ticket);
  if (m.ticket >= routes_.size()) {
    r.code = static_cast<std::uint8_t>(JobState::kUnknown);
  } else if (engine_.outcome(id) == sim::JobOutcome::kCompleted) {
    r.code = static_cast<std::uint8_t>(JobState::kCompleted);
  } else if (engine_.outcome(id) == sim::JobOutcome::kExpired) {
    r.code = static_cast<std::uint8_t>(JobState::kExpired);
  } else if (engine_.server_of(id) != cloud::kNoServer) {
    r.code = static_cast<std::uint8_t>(JobState::kRunning);
    r.a = engine_.remaining(id);
  } else {
    r.code = static_cast<std::uint8_t>(JobState::kQueued);
    r.a = engine_.is_released(id) ? engine_.remaining(id)
                                  : engine_.job(id).workload;
  }
  reply(conn, r);
}

void ClusterServer::reply(int conn, const Message& m) {
  // Stack-encoded frame, as in AdmissionServer::reply: the per-reply path
  // allocates nothing.
  std::uint8_t frame[serve::kMaxFrame];
  const std::size_t n = serve::encode_frame_into(frame, m);
  loop_.send(conn, frame, n);
}

void ClusterServer::count(const char* name, double delta) {
  if (shard_) shard_->count(name, delta);
}

void ClusterServer::set_gauge(const char* name, double value) {
  if (shard_) shard_->set_gauge(name, value);
}

}  // namespace sjs::cluster
