#include "cluster/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace sjs::cluster {

ServerSpec small_spec() { return ServerSpec{1.0, 35.0, 0.5, 0.45}; }
ServerSpec standard_spec() { return ServerSpec{1.0, 35.0, 1.0, 1.0}; }
ServerSpec large_spec() { return ServerSpec{1.0, 35.0, 2.0, 2.2}; }

Fleet Fleet::uniform(std::size_t k, const ServerSpec& spec) {
  SJS_CHECK_MSG(k > 0, "fleet needs at least one machine");
  Fleet fleet;
  for (std::size_t i = 0; i < k; ++i) fleet.add(spec);
  return fleet;
}

Fleet Fleet::heterogeneous(std::size_t k) {
  SJS_CHECK_MSG(k > 0, "fleet needs at least one machine");
  const ServerSpec cycle[3] = {large_spec(), standard_spec(), small_spec()};
  Fleet fleet;
  for (std::size_t i = 0; i < k; ++i) fleet.add(cycle[i % 3]);
  return fleet;
}

double Fleet::admission_c_lo() const {
  SJS_CHECK_MSG(!specs_.empty(), "empty fleet");
  double best = specs_[0].lo();
  for (const ServerSpec& s : specs_) best = std::max(best, s.lo());
  return best;
}

double Fleet::max_hi() const {
  SJS_CHECK_MSG(!specs_.empty(), "empty fleet");
  double best = specs_[0].hi();
  for (const ServerSpec& s : specs_) best = std::max(best, s.hi());
  return best;
}

double Fleet::total_cost_rate() const {
  double total = 0.0;
  for (const ServerSpec& s : specs_) total += s.cost_rate;
  return total;
}

std::vector<cap::CapacityProfile> Fleet::constant_paths() const {
  std::vector<cap::CapacityProfile> paths;
  paths.reserve(specs_.size());
  for (const ServerSpec& s : specs_) {
    paths.push_back(cap::CapacityProfile(s.hi()));
  }
  return paths;
}

std::vector<cap::TwoStateMarkovParams> Fleet::ctmc_bases(
    const ScenarioConfig& config) const {
  std::vector<cap::TwoStateMarkovParams> bases;
  bases.reserve(specs_.size());
  for (const ServerSpec& s : specs_) {
    cap::TwoStateMarkovParams b;
    b.c_lo = s.lo();
    b.c_hi = s.hi();
    b.mean_sojourn_lo = config.mean_sojourn_lo;
    b.mean_sojourn_hi = config.mean_sojourn_hi;
    b.p_start_hi = config.p_start_hi;
    bases.push_back(b);
  }
  return bases;
}

std::vector<cap::CapacityProfile> Fleet::sample_paths(
    const ScenarioConfig& config, double horizon, Rng& rng,
    cap::FleetEventInfo* info) const {
  SJS_CHECK_MSG(!specs_.empty(), "empty fleet");
  const auto bases = ctmc_bases(config);
  if (info) *info = cap::FleetEventInfo{};
  switch (config.kind) {
    case cap::ScenarioKind::kSteady: {
      std::vector<cap::CapacityProfile> paths;
      paths.reserve(bases.size());
      for (const auto& b : bases) {
        paths.push_back(cap::sample_two_state_markov(b, horizon, rng));
      }
      return paths;
    }
    case cap::ScenarioKind::kDiurnal: {
      std::vector<cap::CapacityProfile> paths;
      paths.reserve(bases.size());
      for (const auto& b : bases) {
        paths.push_back(
            cap::sample_diurnal_ctmc(b, config.diurnal, horizon, rng));
      }
      return paths;
    }
    case cap::ScenarioKind::kFlashCrowd:
      return cap::sample_flash_crowd_fleet(bases, config.flash, horizon, rng,
                                           info);
    case cap::ScenarioKind::kCorrelatedOutage: {
      cap::CorrelatedOutageParams outage = config.outage;
      outage.failures = std::min(outage.failures, bases.size());
      return cap::sample_correlated_outage_fleet(bases, outage, horizon, rng,
                                                 info);
    }
  }
  SJS_CHECK_MSG(false, "unknown scenario kind");
  return {};
}

void save_fleet_csv(const Fleet& fleet, const std::string& path) {
  CsvWriter w(path);
  w.write_row({"server", "c_lo", "c_hi", "speed", "cost_rate"});
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    const ServerSpec& s = fleet.spec(k);
    w.write_row({std::to_string(k), format_double(s.c_lo),
                 format_double(s.c_hi), format_double(s.speed),
                 format_double(s.cost_rate)});
  }
}

Fleet load_fleet_csv(const std::string& path) {
  const auto rows = read_csv(path);
  if (rows.size() < 2) {
    throw std::runtime_error("fleet.csv has no machines: " + path);
  }
  Fleet fleet;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 5) {
      throw std::runtime_error("malformed fleet.csv row in " + path);
    }
    ServerSpec s;
    try {
      s.c_lo = std::stod(rows[i][1]);
      s.c_hi = std::stod(rows[i][2]);
      s.speed = std::stod(rows[i][3]);
      s.cost_rate = std::stod(rows[i][4]);
    } catch (const std::exception&) {
      throw std::runtime_error("non-numeric fleet.csv row in " + path);
    }
    fleet.add(s);
  }
  return fleet;
}

}  // namespace sjs::cluster
