#include "cluster/cluster_journal.hpp"

#include <filesystem>
#include <stdexcept>

#include "capacity/trace_io.hpp"
#include "util/logging.hpp"

namespace sjs::cluster {

namespace fs = std::filesystem;

namespace {

std::string server_trace_name(std::size_t k) {
  return "server" + std::to_string(k) + ".csv";
}

}  // namespace

ClusterJournal::ClusterJournal(const std::string& dir, const Fleet& fleet,
                               const std::vector<cap::CapacityProfile>& paths,
                               const Meta& meta)
    : dir_(dir) {
  SJS_CHECK(fleet.size() > 0);
  SJS_CHECK(paths.size() == fleet.size());
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create cluster journal directory " + dir +
                             ": " + ec.message());
  }
  save_fleet_csv(fleet, (fs::path(dir) / "fleet.csv").string());
  for (std::size_t k = 0; k < paths.size(); ++k) {
    cap::save_trace(paths[k], (fs::path(dir) / server_trace_name(k)).string());
  }
  {
    CsvWriter band((fs::path(dir) / "band.csv").string());
    band.write_row({"c_lo", "c_hi"});
    band.write_row_numeric({fleet.admission_c_lo(), fleet.max_hi()});
  }
  {
    CsvWriter m((fs::path(dir) / "meta.csv").string());
    m.write_row({"key", "value"});
    m.write_row({"scheduler", meta.scheduler});
    m.write_row({"cluster", std::to_string(fleet.size())});
    m.write_row({"sched_key", meta.key});
    m.write_row({"rental", meta.rental});
    m.write_row({"budget", format_double(meta.budget)});
    m.write_row({"min_rented", std::to_string(meta.min_rented)});
    m.write_row({"accel", format_double(meta.accel)});
    m.write_row({"admission_check", meta.admission_check ? "1" : "0"});
  }
  jobs_csv_ = std::make_unique<CsvWriter>((fs::path(dir) / "jobs.csv").string());
  jobs_csv_->write_row({"id", "release", "workload", "deadline", "value"});
  jobs_csv_->flush();
  cancels_csv_ =
      std::make_unique<CsvWriter>((fs::path(dir) / "cancels.csv").string());
  cancels_csv_->write_row({"time", "ticket"});
  cancels_csv_->flush();
  if (!jobs_csv_->ok() || !cancels_csv_->ok()) {
    throw std::runtime_error("cluster journal header write failed in " + dir);
  }
}

void ClusterJournal::record_admit(const Job& job) {
  // Same row layout and %.17g formatting as serve::Journal::record_admit, so
  // the bundle loader reconstructs the admitted stream bit-exactly.
  const double row[] = {static_cast<double>(job.id), job.release, job.workload,
                        job.deadline, job.value};
  jobs_csv_->write_row_numeric(row, 5);
  jobs_csv_->flush();
  // An ofstream swallows short writes and ENOSPC into its failbit; a row the
  // client was promised durable must not vanish silently.
  if (!jobs_csv_->ok()) {
    throw std::runtime_error("cluster journal append failed (jobs.csv in " +
                             dir_ + "): disk full or I/O error");
  }
  ++admit_rows_;
}

void ClusterJournal::record_cancel(double time, JobId job) {
  const double row[] = {time, static_cast<double>(job)};
  cancels_csv_->write_row_numeric(row, 2);
  cancels_csv_->flush();
  if (!cancels_csv_->ok()) {
    throw std::runtime_error("cluster journal append failed (cancels.csv in " +
                             dir_ + "): disk full or I/O error");
  }
  ++cancel_rows_;
}

void ClusterJournal::close() {
  if (jobs_csv_) jobs_csv_->flush();
  if (cancels_csv_) cancels_csv_->flush();
  const bool failed = (jobs_csv_ && !jobs_csv_->ok()) ||
                      (cancels_csv_ && !cancels_csv_->ok());
  jobs_csv_.reset();
  cancels_csv_.reset();
  if (failed) {
    throw std::runtime_error("cluster journal close failed in " + dir_ +
                             ": disk full or I/O error");
  }
}

ClusterBundle load_cluster_bundle(const std::string& dir) {
  ClusterBundle bundle;
  bundle.fleet = load_fleet_csv((fs::path(dir) / "fleet.csv").string());
  if (bundle.fleet.size() == 0) {
    throw std::runtime_error("cluster bundle has an empty fleet: " + dir);
  }
  bundle.paths.reserve(bundle.fleet.size());
  for (std::size_t k = 0; k < bundle.fleet.size(); ++k) {
    bundle.paths.push_back(
        cap::load_trace((fs::path(dir) / server_trace_name(k)).string()));
  }

  {
    const auto rows = read_csv((fs::path(dir) / "meta.csv").string());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() != 2) {
        throw std::runtime_error("malformed meta.csv row in " + dir);
      }
      bundle.meta[rows[i][0]] = rows[i][1];
    }
  }

  {
    const auto rows = read_csv((fs::path(dir) / "jobs.csv").string());
    for (std::size_t i = 1; i < rows.size(); ++i) {
      if (rows[i].size() != 5) {
        throw std::runtime_error("malformed jobs.csv row in " + dir);
      }
      Job j;
      j.id = static_cast<JobId>(std::stol(rows[i][0]));
      j.release = std::stod(rows[i][1]);
      j.workload = std::stod(rows[i][2]);
      j.deadline = std::stod(rows[i][3]);
      j.value = std::stod(rows[i][4]);
      if (j.id != static_cast<JobId>(bundle.jobs.size())) {
        throw std::runtime_error("non-dense job ids in cluster bundle " + dir);
      }
      bundle.jobs.push_back(j);
    }
  }

  {
    const auto path = (fs::path(dir) / "cancels.csv").string();
    if (fs::exists(path)) {
      const auto rows = read_csv(path);
      for (std::size_t i = 1; i < rows.size(); ++i) {
        if (rows[i].size() != 2) {
          throw std::runtime_error("malformed cancels.csv row in " + dir);
        }
        bundle.cancels.emplace_back(std::stod(rows[i][0]),
                                    static_cast<JobId>(std::stol(rows[i][1])));
      }
    }
  }
  return bundle;
}

}  // namespace sjs::cluster
