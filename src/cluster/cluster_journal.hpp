// Append-only cluster admission journal, laid out as a loadable cluster
// bundle — the fleet analogue of serve::Journal.
//
// Directory layout (all %.17g doubles, so every stamp round-trips exactly):
//   fleet.csv      server,c_lo,c_hi,speed,cost_rate — the machine set
//   server<k>.csv  time,rate — server k's capacity path (written once)
//   band.csv       c_lo,c_hi — the fleet admission band (info)
//   meta.csv       key,value — scheduler key, rental policy, budget, accel...
//   jobs.csv       appended+flushed per admitted job (id,release,workload,
//                  deadline,value — the Instance row layout)
//   cancels.csv    time,ticket (a session with cancels is not replayable)
//   outcomes.csv   written at drain (cloud::save_multi_outcomes_csv)
//
// Replay:  sjs_sim --cluster-bundle=<dir>  rebuilds the fleet, dispatcher,
// and job stream and must reproduce outcomes.csv byte-for-byte
// (tests/cluster_serve_test.cpp; gated in CI by scripts/serve_smoke.sh).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "cluster/fleet.hpp"
#include "jobs/job.hpp"
#include "util/csv.hpp"

namespace sjs::cluster {

class ClusterJournal {
 public:
  struct Meta {
    std::string scheduler;       ///< dispatcher name ("Cluster-EDF/threshold")
    std::string key = "deadline";///< "deadline" | "density"
    std::string rental = "static";
    double budget = 0.0;
    std::size_t min_rented = 1;
    double accel = 1.0;
    bool admission_check = true;
  };

  /// Creates the directory, writes fleet/server<k>/band/meta headers, opens
  /// jobs.csv and cancels.csv for appending. Throws on I/O failure.
  ClusterJournal(const std::string& dir, const Fleet& fleet,
                 const std::vector<cap::CapacityProfile>& paths,
                 const Meta& meta);

  /// Appends one admitted job and flushes (throws on short write — same
  /// durability contract as serve::Journal::record_admit).
  void record_admit(const Job& job);
  /// Appends one cancellation (throws on write failure).
  void record_cancel(double time, JobId job);
  /// Flushes and closes; throws if the final flush fails.
  void close();

  const std::string& dir() const { return dir_; }
  std::uint64_t admit_count() const { return admit_rows_; }
  std::uint64_t cancel_count() const { return cancel_rows_; }

 private:
  std::string dir_;
  std::unique_ptr<CsvWriter> jobs_csv_;
  std::unique_ptr<CsvWriter> cancels_csv_;
  std::uint64_t admit_rows_ = 0;
  std::uint64_t cancel_rows_ = 0;
};

/// Everything needed to replay a cluster session.
struct ClusterBundle {
  std::vector<Job> jobs;
  Fleet fleet;
  std::vector<cap::CapacityProfile> paths;  ///< one per fleet machine
  std::map<std::string, std::string> meta;
  std::vector<std::pair<double, JobId>> cancels;
};

/// Loads a cluster journal directory. Throws on missing/malformed files.
ClusterBundle load_cluster_bundle(const std::string& dir);

}  // namespace sjs::cluster
