// Publishes a cluster run's MultiSimResult into the obs metrics surface:
// placement/rental counters plus per-server utilisation gauges
// (cluster.util.server<k> = busy time / session span).
#pragma once

#include "cloud/multi_engine.hpp"
#include "obs/metrics.hpp"

namespace sjs::cluster {

/// `span` is the session's virtual duration (last event time, or the horizon
/// for MC runs); utilisation gauges divide busy time by it. A non-positive
/// span publishes the counters only.
void publish_cluster_metrics(const cloud::MultiSimResult& result, double span,
                             obs::MetricsRegistry::Shard& shard);

}  // namespace sjs::cluster
