#include "cluster/rental.hpp"

#include <cmath>
#include <stdexcept>

#include "util/logging.hpp"

namespace sjs::cluster {

ThresholdRentalController::ThresholdRentalController(double rent_above,
                                                     double release_below)
    : rent_above_(rent_above), release_below_(release_below) {
  SJS_CHECK(rent_above > 0.0 && release_below >= 0.0);
  SJS_CHECK_MSG(release_below < rent_above,
                "hysteresis band is inverted: release "
                    << release_below << " >= rent " << rent_above);
}

std::size_t ThresholdRentalController::target_machines(const FleetLoad& load) {
  if (load.rented == 0) return load.live_jobs > 0 ? 1 : 0;
  const double per = static_cast<double>(load.live_jobs) /
                     static_cast<double>(load.rented);
  if (per > rent_above_) return load.rented + 1;
  if (per < release_below_) return load.rented - 1;
  return load.rented;
}

LoadTrackingRentalController::LoadTrackingRentalController(
    double alpha, double jobs_per_machine)
    : alpha_(alpha), jobs_per_machine_(jobs_per_machine) {
  SJS_CHECK(alpha > 0.0 && alpha <= 1.0);
  SJS_CHECK(jobs_per_machine > 0.0);
}

std::size_t LoadTrackingRentalController::target_machines(
    const FleetLoad& load) {
  const double jobs = static_cast<double>(load.live_jobs);
  ewma_ = primed_ ? alpha_ * jobs + (1.0 - alpha_) * ewma_ : jobs;
  primed_ = true;
  return static_cast<std::size_t>(std::ceil(ewma_ / jobs_per_machine_));
}

std::unique_ptr<RentalController> make_rental_controller(
    const std::string& name) {
  if (name == "threshold") {
    return std::make_unique<ThresholdRentalController>();
  }
  if (name == "load") {
    return std::make_unique<LoadTrackingRentalController>();
  }
  if (name == "static" || name.empty()) {
    return nullptr;
  }
  throw std::runtime_error("unknown rental controller: " + name);
}

}  // namespace sjs::cluster
