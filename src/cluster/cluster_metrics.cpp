#include "cluster/cluster_metrics.hpp"

#include <algorithm>

namespace sjs::cluster {

void publish_cluster_metrics(const cloud::MultiSimResult& result, double span,
                             obs::MetricsRegistry::Shard& shard) {
  shard.count(obs::kCounterClusterDispatches,
              static_cast<double>(result.dispatches));
  shard.count(obs::kCounterClusterPreemptions,
              static_cast<double>(result.preemptions));
  shard.count(obs::kCounterClusterMigrations,
              static_cast<double>(result.migrations));
  shard.count(obs::kCounterClusterRentEvents,
              static_cast<double>(result.rent_events));
  shard.count(obs::kCounterClusterReleaseEvents,
              static_cast<double>(result.release_events));
  shard.count(obs::kCounterClusterCostAccrued, result.rental_cost);
  shard.set_gauge(obs::kGaugeClusterRentedMachines,
                  static_cast<double>(result.rented_peak));
  shard.set_gauge(obs::kGaugeClusterRentedMachineTime,
                  result.rented_machine_time);
  if (span > 0.0) {
    for (std::size_t k = 0; k < result.busy_time_per_server.size(); ++k) {
      shard.set_gauge(obs::cluster_util_gauge(k),
                      std::clamp(result.busy_time_per_server[k] / span, 0.0,
                                 1.0));
    }
  }
}

}  // namespace sjs::cluster
