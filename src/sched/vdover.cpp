#include "sched/vdover.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace_event.hpp"
#include "theory/ratios.hpp"
#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::sched {

namespace {

// Thread-local recycler for the regular-interval log (the ReadyQueue buffer
// idiom, sched/ready_queue.cpp): the Monte-Carlo driver and the steady-state
// replay ratchet construct one fresh scheduler per run on the same thread, so
// donating the destroyed scheduler's interval buffer and adopting it in the
// next keeps interval logging allocation-free across cells.
constexpr std::size_t kIntervalRecyclerCap = 4;

std::vector<std::vector<RegularInterval>>& interval_recycler() {
  thread_local std::vector<std::vector<RegularInterval>> pool;
  return pool;
}

}  // namespace

VDoverScheduler::VDoverScheduler(const VDoverOptions& options)
    : c_est_(options.capacity_estimate),
      use_supplement_queue_(options.use_supplement_queue),
      beta_(options.beta),
      k_(options.k),
      adaptive_estimate_(options.adaptive_estimate),
      ewma_alpha_(options.ewma_alpha) {
  if (!options.display_name.empty()) {
    display_name_ = options.display_name;
  } else if (adaptive_estimate_) {
    display_name_ = use_supplement_queue_ ? "V-Dover-EWMA" : "Dover-EWMA";
  } else if (use_supplement_queue_) {
    display_name_ = "V-Dover";
  } else {
    std::ostringstream os;
    os << "Dover(c^=";
    if (options.capacity_estimate > 0.0) {
      os << options.capacity_estimate;
    } else {
      os << "c_lo";
    }
    os << ")";
    display_name_ = os.str();
  }
  auto& pool = interval_recycler();
  if (!pool.empty()) {
    intervals_ = std::move(pool.back());
    pool.pop_back();
    intervals_.clear();
  }
}

VDoverScheduler::~VDoverScheduler() {
  auto& pool = interval_recycler();
  if (intervals_.capacity() > 0 && pool.size() < kIntervalRecyclerCap) {
    intervals_.clear();
    pool.push_back(std::move(intervals_));
  }
}

std::string VDoverScheduler::name() const { return display_name_; }

void VDoverScheduler::on_start(sim::Engine& engine) {
  if (adaptive_estimate_) {
    // Seed the EWMA with the rate observable at t = 0.
    c_est_ = engine.current_rate();
    SJS_CHECK_MSG(ewma_alpha_ > 0.0 && ewma_alpha_ <= 1.0,
                  "EWMA weight must lie in (0, 1]");
  }
  if (c_est_ <= 0.0) c_est_ = engine.c_lo();  // V-Dover's conservative choice
  if (beta_ <= 0.0) {
    const double delta = engine.c_hi() / engine.c_lo();
    if (use_supplement_queue_ && delta > 1.0) {
      beta_ = theory::optimal_beta(k_, delta);  // β* = 1 + √(k/f(k,δ))
    } else {
      // Constant capacity (δ = 1, where f is undefined) or Dover mode:
      // Koren–Shasha's optimum.
      beta_ = theory::dover_beta(k_);
    }
  }
  SJS_CHECK_MSG(beta_ > 1.0, "β must exceed 1 (Lemma 1 needs β − 1 > 0)");
  const std::size_t n = engine.job_capacity_hint();
  qedf_.reserve(n);
  qother_.reserve(n);
  qsupp_.reserve(n);
  // One regular interval closes per completion, so the hint also bounds the
  // Lemma-1 interval log for a bounded-in-flight session.
  intervals_.reserve(n);
  // Per-job lanes (Qedf metadata, 0cl timers, flags) are slab lanes the
  // engine already sized in rewind()/admit_live — nothing to grow here.
}

void VDoverScheduler::maybe_open_interval(double now) {
  if (interval_open_) return;
  interval_open_ = true;
  current_interval_ = RegularInterval{now, now, 0.0, 0.0};
}

void VDoverScheduler::close_interval(double now) {
  if (!interval_open_) return;
  interval_open_ = false;
  current_interval_.end = now;
  // Growth to the recycled buffer's high-water (see interval_recycler).
  util::append(intervals_, current_interval_);
}

double VDoverScheduler::privileged_value(const sim::Engine& engine) const {
  double total = 0.0;
  if (engine.running() != kNoJob) total += engine.job(engine.running()).value;
  // Ordered visitation: the sum feeds a traced payload, and floating-point
  // addition order is observable in the replay digest.
  qedf_.for_each_ordered([&](const ReadyQueue::Entry& e) {
    total += engine.job(e.id).value;
  });
  return total;
}

void VDoverScheduler::insert_other(sim::Engine& engine, JobId job) {
  qother_.push(engine.job(job).deadline, job);
  // The 0cl instant: the conservative laxity d − t − p_rem/c_est hits zero at
  // t = d − p_rem/c_est; p_rem is frozen while the job waits, so the instant
  // is known now. A non-positive laxity raises the interrupt immediately
  // (fires right after the current handler returns).
  const double t_0cl =
      engine.job(job).deadline - engine.remaining(job) / c_est_;
  engine.job_state().ocl_timer(job) =
      engine.set_timer(std::max(engine.now(), t_0cl), job, /*tag=*/0);
}

void VDoverScheduler::remove_other(sim::Engine& engine, JobId job) {
  qother_.erase(job);
  sim::TimerId& timer = engine.job_state().ocl_timer(job);
  engine.cancel_timer(timer);
  timer = sim::kNoTimer;
}

void VDoverScheduler::insert_supp(sim::Engine& engine, JobId job) {
  qsupp_.push(engine.job(job).deadline, job);
}

// Procedure B — job release handler.
void VDoverScheduler::on_release(sim::Engine& engine, JobId job) {
  switch (flag_) {
    case Flag::kIdle: {
      engine.run(job);
      maybe_open_interval(engine.now());
      cslack_ = claxity(engine, job);
      flag_ = Flag::kReg;
      break;
    }
    case Flag::kReg: {
      const JobId curr = engine.running();
      SJS_CHECK_MSG(curr != kNoJob, "flag=reg with an idle processor");
      const Job& arr = engine.job(job);
      const Job& running = engine.job(curr);
      if (arr.deadline < running.deadline && cslack_ >= tc(engine, job)) {
        // EDF preemption without overload: the preempted job becomes
        // "recently EDF-scheduled" (B.7–B.9).
        qedf_.push(running.deadline, curr);
        engine.job_state().qedf_meta(curr) = sim::QedfMeta{engine.now(), cslack_};
        const double tc_arr = tc(engine, job);
        engine.run(job);
        // [reconstruction] The paper's B.8–9 are OCR-garbled; by symmetry
        // with C.7, admitting the new job consumes tc(T_arr) of the slack and
        // the new running job's own laxity caps it.
        cslack_ = std::min(cslack_ - tc_arr, claxity(engine, job));
      } else {
        insert_other(engine, job);  // B.11
      }
      break;
    }
    case Flag::kSupp: {
      // B.13–15: regular jobs always preempt supplement jobs.
      const JobId curr = engine.running();
      SJS_CHECK_MSG(curr != kNoJob, "flag=supp with an idle processor");
      insert_supp(engine, curr);
      engine.run(job);
      maybe_open_interval(engine.now());
      cslack_ = claxity(engine, job);
      flag_ = Flag::kReg;
      break;
    }
  }
}

// Procedure C — job completion or failure handler. The engine has already
// freed the processor.
void VDoverScheduler::completion_or_failure(sim::Engine& engine) {
  const double now = engine.now();
  if (!qedf_.empty() && !qother_.empty()) {
    const auto [d_edf, t_edf] = qedf_.top();
    const sim::QedfMeta& meta = engine.job_state().qedf_meta(t_edf);
    cslack_ = meta.cslack_insert - (now - meta.t_insert);  // C.3
    const auto [d_other, t_other] = qother_.top();
    if (d_other < d_edf && cslack_ >= tc(engine, t_other)) {  // C.5
      remove_other(engine, t_other);
      const double tc_other = tc(engine, t_other);
      engine.run(t_other);
      cslack_ = std::min(cslack_ - tc_other, claxity(engine, t_other));  // C.7
    } else {
      qedf_.pop();  // C.9
      engine.run(t_edf);
    }
    maybe_open_interval(now);
    flag_ = Flag::kReg;
    return;
  }
  if (!qother_.empty()) {  // C.10–12
    const JobId t_other = qother_.top().id;
    remove_other(engine, t_other);
    engine.run(t_other);
    maybe_open_interval(now);
    cslack_ = claxity(engine, t_other);
    flag_ = Flag::kReg;
    return;
  }
  if (!qedf_.empty()) {  // C.13–15
    const JobId t_edf = qedf_.pop().id;
    const sim::QedfMeta meta = engine.job_state().qedf_meta(t_edf);
    engine.run(t_edf);
    maybe_open_interval(now);
    cslack_ = meta.cslack_insert - (now - meta.t_insert);
    flag_ = Flag::kReg;
    return;
  }
  cslack_ = kInf;  // C.17
  if (use_supplement_queue_ && !qsupp_.empty()) {  // C.18–20
    const JobId t_supp = qsupp_.pop().id;  // latest deadline first
    engine.run(t_supp);
    ++stats_.supplement_dispatched;
    flag_ = Flag::kSupp;
  } else {
    flag_ = Flag::kIdle;  // C.22
  }
}

// Procedure D — zero conservative laxity handler.
void VDoverScheduler::zero_laxity(sim::Engine& engine, JobId job) {
  SJS_CHECK_MSG(qother_.contains(job),
                "0cl interrupt for a job not in Qother");
  SJS_CHECK_MSG(flag_ == Flag::kReg,
                "Qother non-empty requires a running regular job");
  const double urgent_value = engine.job(job).value;
  const double privileged = privileged_value(engine);
  engine.note(job, obs::kNoteZeroLaxityTest, privileged);
  if (urgent_value > beta_ * privileged) {  // D.1
    ++stats_.ocl_scheduled;
    engine.job_state().set_ocl_scheduled(job, true);
    engine.note(job, obs::kNoteOclScheduled);
    remove_other(engine, job);
    const JobId prev = engine.running();
    engine.run(job);  // D.5
    // D.2–3: demote the previous running job and all of Qedf to Qother
    // (each re-arms a 0cl timer; those with negative laxity re-raise the
    // interrupt immediately and will typically become supplements). Drain in
    // pop order — timer arming order is observable in the replay digest.
    if (prev != kNoJob) insert_other(engine, prev);
    while (!qedf_.empty()) {
      insert_other(engine, qedf_.pop().id);
    }
    cslack_ = 0.0;  // D.4: the urgent job leaves no conservative slack
  } else {
    // D.7: not valuable enough — supplement (V-Dover) or abandon (Dover).
    remove_other(engine, job);
    if (use_supplement_queue_) {
      insert_supp(engine, job);
      ++stats_.labeled_supplement;
      engine.note(job, obs::kNoteSupplement);
    } else {
      engine.job_state().set_abandoned(job, true);
      ++stats_.abandoned;
      engine.note(job, obs::kNoteAbandon);
    }
  }
}

void VDoverScheduler::on_complete(sim::Engine& engine, JobId job) {
  const double value = engine.job(job).value;
  if (flag_ == Flag::kSupp) {
    ++stats_.supplement_completed;
    stats_.supplement_value += value;
  } else if (interval_open_) {
    // Regular completion inside the open regular interval (Sec. III-E).
    current_interval_.regval += value;
    if (engine.job_state().ocl_scheduled(job)) {
      current_interval_.clval += value;
    }
    // Definition 6: the interval ends at the first completion of a regular
    // job while Qedf is empty.
    if (qedf_.empty()) close_interval(engine.now());
  }
  completion_or_failure(engine);
}

void VDoverScheduler::on_expire(sim::Engine& engine, JobId job,
                                bool was_running) {
  // The job is dead: whatever 0cl timer handle it still carries can never
  // legitimately fire again. Cancel-and-clear unconditionally — including
  // when the timer fires at the very instant of the expiry (expiry sorts
  // first, so the timer event is still pending here and would otherwise
  // leave ocl_timer_ pointing at a fired id once the engine swallows it).
  // Cancelling an already-dead id is a generation-checked no-op.
  sim::TimerId& timer = engine.job_state().ocl_timer(job);
  engine.cancel_timer(timer);
  timer = sim::kNoTimer;
  if (was_running) {
    completion_or_failure(engine);
    // [reconstruction] With individual admissibility a regular job never
    // fails, so intervals always close via completions. Without it, a
    // failure can leave the interval dangling with no regular job running —
    // close it at the failure instant so the instrumentation stays sane.
    if (interval_open_ && flag_ != Flag::kReg) close_interval(engine.now());
    return;
  }
  // A queued job silently expired: purge it from whichever queue holds it
  // (erasing from the queues it is not in is a no-op).
  qother_.erase(job);
  qedf_.erase(job);
  qsupp_.erase(job);
}

void VDoverScheduler::on_timer(sim::Engine& engine, JobId job, int tag) {
  if (tag != 0) return;
  engine.job_state().ocl_timer(job) = sim::kNoTimer;
  ++stats_.zero_laxity_interrupts;
  zero_laxity(engine, job);
}

void VDoverScheduler::on_capacity_change(sim::Engine& engine) {
  if (!adaptive_estimate_) return;
  const double observed = engine.current_rate();
  c_est_ = std::clamp(ewma_alpha_ * observed + (1.0 - ewma_alpha_) * c_est_,
                      engine.c_lo(), engine.c_hi());
  // The 0cl instants of queued regular jobs depend on the estimate: re-arm
  // every Qother timer at the new d − p_rem/c_est (immediately when already
  // overdue). for_each_ordered walks a snapshot — an overdue timer fires
  // after this handler and mutates qother_ — and its (deadline, id) order
  // keeps timer arming order, hence the digest, stable.
  qother_.for_each_ordered([&](const ReadyQueue::Entry& e) {
    sim::TimerId& timer = engine.job_state().ocl_timer(e.id);
    engine.cancel_timer(timer);
    const double t_0cl = e.key - engine.remaining(e.id) / c_est_;
    timer = engine.set_timer(std::max(engine.now(), t_0cl), e.id, /*tag=*/0);
  });
}

}  // namespace sjs::sched
