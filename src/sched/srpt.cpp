#include "sched/srpt.hpp"

namespace sjs::sched {

void SrptScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const auto [best_remaining, best] = *ready_.begin();
  const JobId current = engine.running();
  if (current != kNoJob && engine.remaining(current) <= best_remaining) {
    return;
  }
  ready_.erase(ready_.begin());
  if (current != kNoJob) {
    ready_.emplace(engine.remaining(current), current);
  }
  engine.run(best);
}

void SrptScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.emplace(engine.remaining(job), job);
  dispatch(engine);
}

void SrptScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void SrptScheduler::on_expire(sim::Engine& engine, JobId job,
                              bool was_running) {
  if (!was_running) {
    // The key is the remaining workload frozen at enqueue time, which for a
    // never-executed-since-enqueue job equals its current remaining work.
    ready_.erase({engine.remaining(job), job});
  }
  dispatch(engine);
}

}  // namespace sjs::sched
