#include "sched/srpt.hpp"

namespace sjs::sched {

void SrptScheduler::on_start(sim::Engine& engine) {
  ready_.reserve(engine.job_capacity_hint());
}

void SrptScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const double best_remaining = ready_.top().key;
  const JobId current = engine.running();
  if (current != kNoJob && engine.remaining(current) <= best_remaining) {
    return;
  }
  const JobId best = ready_.pop().id;
  if (current != kNoJob) {
    ready_.push(engine.remaining(current), current);
  }
  engine.run(best);
}

void SrptScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.push(engine.remaining(job), job);
  dispatch(engine);
}

void SrptScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void SrptScheduler::on_expire(sim::Engine& engine, JobId job,
                              bool was_running) {
  if (!was_running) {
    ready_.erase(job);
  }
  dispatch(engine);
}

}  // namespace sjs::sched
