// Preemptive earliest-deadline-first.
//
// Theorem 2 of the paper: EDF achieves competitive ratio 1 for *underloaded*
// systems even under time-varying capacity (the stretch transformation maps
// an EDF schedule of the original system to an EDF schedule of the stretched
// constant-capacity system, where classic optimality applies). Under
// overload EDF can perform arbitrarily badly (Locke), which is what Dover /
// V-Dover address.
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class EdfScheduler : public sim::Scheduler {
 public:
  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {ready_.peak(), ready_.slots()};
  }
  std::string name() const override { return "EDF"; }

 private:
  /// Runs the earliest-deadline ready job (preempting if needed).
  void dispatch(sim::Engine& engine);

  /// Ready jobs excluding the running one, ordered by (deadline, id).
  ReadyQueue ready_;
};

}  // namespace sjs::sched
