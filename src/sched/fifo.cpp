#include "sched/fifo.hpp"

namespace sjs::sched {

void FifoScheduler::dispatch_next(sim::Engine& engine) {
  if (engine.running() != kNoJob) return;  // non-preemptive
  while (!queue_.empty()) {
    const JobId next = queue_.front();
    if (!engine.is_live(next)) {
      // Expired while waiting (on_expire also purges; this is defensive).
      queue_.pop_front();
      continue;
    }
    queue_.pop_front();
    engine.run(next);
    return;
  }
}

void FifoScheduler::on_release(sim::Engine& engine, JobId job) {
  // sjs-lint: allow(alloc-in-hot-path): amortized growth to queue high-water; capacity is retained across episodes
  queue_.push_back(job);
  if (queue_.size() > peak_) peak_ = queue_.size();
  dispatch_next(engine);
}

void FifoScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch_next(engine);
}

void FifoScheduler::on_expire(sim::Engine& engine, JobId job,
                              bool /*was_running*/) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == job) {
      queue_.erase(it);
      break;
    }
  }
  dispatch_next(engine);
}

}  // namespace sjs::sched
