#include "sched/fifo.hpp"

namespace sjs::sched {

void FifoScheduler::on_start(sim::Engine& engine) {
  queue_.reserve(engine.job_capacity_hint());
}

void FifoScheduler::dispatch_next(sim::Engine& engine) {
  if (engine.running() != kNoJob) return;  // non-preemptive
  while (!queue_.empty()) {
    const JobId next = queue_.pop().id;
    if (!engine.is_live(next)) {
      // Expired while waiting (on_expire also purges; this is defensive).
      continue;
    }
    engine.run(next);
    return;
  }
}

void FifoScheduler::on_release(sim::Engine& engine, JobId job) {
  queue_.push(engine.job(job).release, job);
  dispatch_next(engine);
}

void FifoScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch_next(engine);
}

void FifoScheduler::on_expire(sim::Engine& engine, JobId job,
                              bool /*was_running*/) {
  queue_.erase(job);
  dispatch_next(engine);
}

}  // namespace sjs::sched
