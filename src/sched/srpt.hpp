// Conservative shortest-remaining-processing-time (SRPT).
//
// SRPT maximises the *count* of completed jobs on a single machine; with
// values proportional to workload (the paper's v = density·p) it biases
// toward many small jobs. Under varying capacity the true remaining
// processing time is unknown, so remaining workload is the natural proxy
// (SRPT ordering is invariant to a constant rate estimate). Event-driven:
// the queue is ordered by remaining workload, frozen while jobs wait — a
// waiting job's remaining work never changes, and the running job's only
// shrinks, so the running job can never be overtaken by a queued one and no
// crossing timers are needed (preemption happens only at releases).
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class SrptScheduler : public sim::Scheduler {
 public:
  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {ready_.peak(), ready_.slots()};
  }
  std::string name() const override { return "SRPT"; }

 private:
  void dispatch(sim::Engine& engine);

  /// Ready jobs excluding the running one, (remaining-at-enqueue, id). The
  /// key is stable because queued jobs do not execute.
  ReadyQueue ready_;
};

}  // namespace sjs::sched
