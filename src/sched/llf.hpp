// Conservative least-laxity-first.
//
// The paper notes (Sec. III-B) that exact LLF does not generalise to varying
// capacity because true laxity needs the unknown future capacity; the natural
// generalisation is LLF on the *conservative* laxity of Definition 5,
// computed with a constant estimate c_est (default c_lo). We implement that
// as an event-driven baseline.
//
// Dynamics: a queued job's conservative laxity falls at rate 1 while the
// running job's falls at rate 1 - c(t)/c_est <= 0 whenever c(t) >= c_est, so
// queued jobs overtake the running job at computable crossing instants. The
// scheduler arms a timer at the next crossing (re-evaluated on every release,
// completion, and capacity change). Continuous-time LLF famously thrashes
// once laxities tie — two jobs at equal laxity preempt each other at an
// unbounded rate — so a switching quantum enforces a minimum time between
// laxity-driven preemptions (the standard discretisation; it bounds events
// without changing which jobs LLF favours at the scale of job lengths).
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class LlfScheduler : public sim::Scheduler {
 public:
  /// c_est <= 0 selects the band minimum c_lo at start. `quantum` is the
  /// minimum spacing of laxity-driven preemptions.
  explicit LlfScheduler(double c_est = 0.0, double quantum = 0.05)
      : c_est_(c_est), quantum_(quantum) {}

  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  void on_timer(sim::Engine& engine, JobId job, int tag) override;
  void on_capacity_change(sim::Engine& engine) override;
  bool wants_capacity_events() const override { return true; }
  QueueStats queue_stats() const override {
    return {ready_.peak(), ready_.slots()};
  }
  std::string name() const override { return "LLF"; }

 private:
  /// Laxity "intercept" d - p_rem/c_est of a queued job: its laxity at time t
  /// is intercept - t, so ordering queued jobs by intercept orders them by
  /// laxity, and the order is invariant while they wait.
  double intercept(const sim::Engine& engine, JobId job) const {
    return engine.job(job).deadline - engine.remaining(job) / c_est_;
  }

  /// Runs the least-laxity ready job and re-arms the crossing timer.
  void dispatch(sim::Engine& engine);
  void arm_crossing_timer(sim::Engine& engine);

  double c_est_;
  double quantum_;
  double last_switch_ = -1e300;
  sim::TimerId crossing_timer_ = sim::kNoTimer;
  /// Ready jobs excluding the running one, keyed by (intercept, id).
  ReadyQueue ready_;
};

}  // namespace sjs::sched
