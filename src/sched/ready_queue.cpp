#include "sched/ready_queue.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::sched {

namespace {

// Thread-local buffer recycler. The Monte-Carlo driver constructs one fresh
// scheduler per (run, scheduler) cell on the same worker thread; donating a
// destroyed queue's buffers here and adopting them in the next queue makes
// the steady state allocation-free across cells, mirroring Engine::reset()'s
// reuse of the event heap and timer slab. Thread-local keeps it race-free
// (TSan-clean) and deterministic: buffer identity never influences behavior.
// The cap bounds worst-case retention (a V-Dover cell donates three pairs).
constexpr std::size_t kRecyclerCap = 8;

struct BufferRecycler {
  std::vector<std::vector<ReadyQueue::Entry>> entries;
  std::vector<std::vector<std::uint32_t>> positions;
};

BufferRecycler& recycler() {
  thread_local BufferRecycler pool;
  return pool;
}

}  // namespace

ReadyQueue::ReadyQueue(QueueOrder order) : order_(order) {
  BufferRecycler& pool = recycler();
  if (!pool.entries.empty()) {
    heap_ = std::move(pool.entries.back());
    pool.entries.pop_back();
    heap_.clear();
  }
  if (!pool.positions.empty()) {
    pos_ = std::move(pool.positions.back());
    pool.positions.pop_back();
    pos_.clear();
  }
  if (!pool.entries.empty()) {
    scratch_ = std::move(pool.entries.back());
    pool.entries.pop_back();
    scratch_.clear();
  }
}

ReadyQueue::~ReadyQueue() {
  BufferRecycler& pool = recycler();
  if (heap_.capacity() > 0 && pool.entries.size() < kRecyclerCap) {
    heap_.clear();
    pool.entries.push_back(std::move(heap_));
  }
  if (scratch_.capacity() > 0 && pool.entries.size() < kRecyclerCap) {
    scratch_.clear();
    pool.entries.push_back(std::move(scratch_));
  }
  if (pos_.capacity() > 0 && pool.positions.size() < kRecyclerCap) {
    pos_.clear();
    pool.positions.push_back(std::move(pos_));
  }
}

void ReadyQueue::reserve(std::size_t id_bound) {
  // This IS the pre-sizing remedy: grow every table before the hot loop.
  // The scratch is included so all buffers a queue donates to the recycler
  // have capacity >= id_bound — whichever buffer the next same-sized queue
  // adopts, its own reserve() is then a no-op (the zero-allocation warmed
  // steady state depends on this interchangeability).
  if (pos_.size() < id_bound) util::grow_fill(pos_, id_bound, kNpos);
  heap_.reserve(id_bound);
  scratch_.reserve(id_bound);
}

void ReadyQueue::clear() {
  for (const Entry& e : heap_) pos_[static_cast<std::size_t>(e.id)] = kNpos;
  heap_.clear();
}

double ReadyQueue::key_of(JobId id) const {
  SJS_CHECK_MSG(contains(id), "ReadyQueue::key_of on absent job " << id);
  return heap_[pos_[static_cast<std::size_t>(id)]].key;
}

const ReadyQueue::Entry& ReadyQueue::top() const {
  SJS_CHECK_MSG(!heap_.empty(), "ReadyQueue::top on an empty queue");
  return heap_.front();
}

void ReadyQueue::push(double key, JobId id) {
  SJS_CHECK_MSG(id >= 0, "ReadyQueue::push of invalid job " << id);
  const auto idx = static_cast<std::size_t>(id);
  // Amortized doubling to the live-set high-water; reserve() pre-sizes both
  // tables, so a warmed steady state never grows them.
  util::grow_to_index_fill(pos_, idx, kNpos);
  SJS_CHECK_MSG(pos_[idx] == kNpos,
                "ReadyQueue::push of already-queued job " << id);
  util::append(heap_, Entry{key, id});
  pos_[idx] = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  peak_ = std::max<std::uint64_t>(peak_, heap_.size());
}

ReadyQueue::Entry ReadyQueue::pop() {
  SJS_CHECK_MSG(!heap_.empty(), "ReadyQueue::pop on an empty queue");
  const Entry best = heap_.front();
  pos_[static_cast<std::size_t>(best.id)] = kNpos;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, last);
    sift_down(0);
  }
  return best;
}

bool ReadyQueue::erase(JobId id) {
  if (!contains(id)) return false;
  const std::size_t slot = pos_[static_cast<std::size_t>(id)];
  pos_[static_cast<std::size_t>(id)] = kNpos;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (slot < heap_.size()) {
    place(slot, last);
    // The replacement may violate the heap property in either direction.
    sift_down(slot);
    if (heap_[slot].id == last.id) sift_up(slot);
  }
  return true;
}

void ReadyQueue::update_key(JobId id, double key) {
  SJS_CHECK_MSG(contains(id), "ReadyQueue::update_key on absent job " << id);
  const std::size_t slot = pos_[static_cast<std::size_t>(id)];
  const Entry updated{key, id};
  const bool toward_top = before(updated, heap_[slot]);
  heap_[slot].key = key;
  if (toward_top) {
    sift_up(slot);
  } else {
    sift_down(slot);
  }
}

void ReadyQueue::sift_up(std::size_t slot) {
  const Entry moving = heap_[slot];
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / kArity;
    if (!before(moving, heap_[parent])) break;
    place(slot, heap_[parent]);
    slot = parent;
  }
  place(slot, moving);
}

void ReadyQueue::sift_down(std::size_t slot) {
  const Entry moving = heap_[slot];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = slot * kArity + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    place(slot, heap_[best]);
    slot = best;
  }
  place(slot, moving);
}

void ReadyQueue::snapshot_ordered() const {
  scratch_.assign(heap_.begin(), heap_.end());
  std::sort(scratch_.begin(), scratch_.end(),
            [this](const Entry& a, const Entry& b) { return before(a, b); });
}

}  // namespace sjs::sched
