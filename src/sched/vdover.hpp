// V-Dover (paper Sec. III-D) and, via policy knobs, Koren–Shasha's Dover.
//
// V-Dover is an EDF/LLF hybrid for overloaded systems under time-varying
// capacity. It differs from Dover in exactly two ways (paper, end of
// Sec. III-D):
//   (i)  laxities use a *conservative* constant estimate of future capacity —
//        the band minimum c_lo (Dover, built for constant capacity, uses the
//        known rate; under varying capacity we give it an estimate ĉ);
//   (ii) a job that loses the zero-laxity value test is kept in a *supplement
//        queue* instead of being abandoned — capacity may later rise above
//        c_lo and leave slack to finish it (Dover abandons it).
//
// State (Sec. III-D):
//   Qedf   — recently-EDF-scheduled regular jobs, earliest deadline first;
//            entries carry (t_insert, cSlack_insert) for cSlack accounting.
//   Qother — other regular jobs, earliest deadline first. Each member has a
//            pending zero-conservative-laxity (0cl) timer at d − p_rem/c_est.
//   Qsupp  — supplement jobs, LATEST deadline first (when only supplements
//            remain, the most postponable one runs first).
//   cSlack — slack devotable to new jobs without endangering the running
//            regular job or Qedf, under the conservative capacity estimate.
//   flag   — reg / supp / idle.
//
// The pseudocode in the available paper text is OCR-damaged in places; where
// it is ambiguous we reconstruct from the prose (noted inline as
// [reconstruction]).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

struct VDoverOptions {
  /// Constant estimate of future capacity used in laxity computations.
  /// <= 0 selects the band minimum c_lo at start (V-Dover's choice).
  double capacity_estimate = 0.0;

  /// Keep zero-laxity losers in Qsupp (V-Dover) or abandon them (Dover).
  bool use_supplement_queue = true;

  /// The 0cl value-test threshold. <= 0 selects the theoretical optimum:
  /// β* = 1 + √(k/f(k,δ)) for V-Dover, 1 + √k for Dover (set `beta`
  /// explicitly for the β-sweep ablation).
  double beta = 0.0;

  /// Importance-ratio bound k used when deriving β (paper simulation: 7).
  double k = 7.0;

  /// Adaptive capacity estimation: instead of a fixed estimate, track an
  /// EWMA of the observed rate (updated at every capacity change). This
  /// deliberately abandons V-Dover's conservative guarantee — it exists to
  /// test design choice (i) against the "obvious" smarter alternative
  /// (ablation A2 in bench_ablation). The estimate is clamped to the band.
  bool adaptive_estimate = false;
  double ewma_alpha = 0.3;  ///< weight of the newest observation

  /// Display name; empty derives "V-Dover" or "Dover(ĉ=…)".
  std::string display_name;
};

/// Counters exposed for the ablation benches.
struct VDoverStats {
  std::uint64_t zero_laxity_interrupts = 0;
  std::uint64_t ocl_scheduled = 0;        ///< urgent jobs that won the value test
  std::uint64_t labeled_supplement = 0;   ///< urgent jobs that lost it
  std::uint64_t abandoned = 0;            ///< losers dropped (Dover mode)
  std::uint64_t supplement_dispatched = 0;
  std::uint64_t supplement_completed = 0;
  double supplement_value = 0.0;          ///< the analysis' "suppval"
};

/// A regular interval (Definition 6): a maximal stretch during which the
/// processor continuously executes regular jobs, opened when a regular job
/// is scheduled with Qedf empty and closed by the first completion with Qedf
/// empty. `regval`/`clval` are the analysis quantities of Sec. III-E: value
/// completed inside the interval, total and by 0cl-scheduled jobs. Lemma 1
/// bounds the interval's workload: ∫ c <= regval + clval/(β−1) — verified
/// empirically in tests/lemma_test.cpp.
struct RegularInterval {
  double start = 0.0;
  double end = 0.0;
  double regval = 0.0;
  double clval = 0.0;
};

class VDoverScheduler : public sim::Scheduler {
 public:
  explicit VDoverScheduler(const VDoverOptions& options = {});
  ~VDoverScheduler() override;

  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  void on_timer(sim::Engine& engine, JobId job, int tag) override;
  void on_capacity_change(sim::Engine& engine) override;
  bool wants_capacity_events() const override { return adaptive_estimate_; }
  QueueStats queue_stats() const override {
    return {qedf_.peak() + qother_.peak() + qsupp_.peak(),
            qedf_.slots() + qother_.slots() + qsupp_.slots()};
  }
  std::string name() const override;

  const VDoverStats& stats() const { return stats_; }
  double beta() const { return beta_; }
  double capacity_estimate() const { return c_est_; }

  /// Closed regular intervals in chronological order (Sec. III-E analysis
  /// instrumentation). An interval left open at the end of a run (possible
  /// only when individual admissibility is violated — an admissible regular
  /// job never fails, so every interval closes with a completion) is not
  /// included; `interval_open()` reports that condition.
  const std::vector<RegularInterval>& regular_intervals() const {
    return intervals_;
  }
  bool interval_open() const { return interval_open_; }

 private:
  enum class Flag : std::uint8_t { kIdle, kReg, kSupp };

  static constexpr double kInf = std::numeric_limits<double>::infinity();

  /// Conservative remaining processing time t_c(T, c_est) = p_rem / c_est.
  double tc(const sim::Engine& engine, JobId job) const {
    return engine.remaining(job) / c_est_;
  }
  /// Conservative laxity (Definition 5).
  double claxity(const sim::Engine& engine, JobId job) const {
    return engine.claxity(job, c_est_);
  }

  /// Inserts a regular job into Qother and arms its 0cl timer at
  /// d − p_rem/c_est (fires immediately when already non-positive).
  void insert_other(sim::Engine& engine, JobId job);
  /// Removes a job from Qother, cancelling its 0cl timer.
  void remove_other(sim::Engine& engine, JobId job);

  void insert_supp(sim::Engine& engine, JobId job);

  /// Sum of values of the running regular job and all Qedf members — the
  /// privileged value the 0cl test compares against.
  double privileged_value(const sim::Engine& engine) const;

  /// Procedure C — job completion-or-failure handler.
  void completion_or_failure(sim::Engine& engine);
  /// Procedure D — zero conservative laxity handler.
  void zero_laxity(sim::Engine& engine, JobId job);

  /// Opens a regular interval at `now` if none is open (called whenever a
  /// regular job is dispatched).
  void maybe_open_interval(double now);
  void close_interval(double now);

  // --- configuration ---
  double c_est_;
  bool use_supplement_queue_;
  double beta_;
  double k_;
  bool adaptive_estimate_;
  double ewma_alpha_;
  std::string display_name_;

  // --- algorithm state ---
  Flag flag_ = Flag::kIdle;
  double cslack_ = kInf;
  /// Keyed by (deadline, id): earliest deadline first.
  ReadyQueue qedf_;
  ReadyQueue qother_;
  /// Keyed by (deadline, id), max-first: latest deadline first.
  ReadyQueue qsupp_{QueueOrder::kMaxFirst};
  // Per-job lanes (Qedf metadata, 0cl timer handles, abandoned/0cl-scheduled
  // flags) live in the engine's job slab (sim::JobTable), not here: the slab
  // is owned by the engine and survives warmed across runs, so a fresh
  // scheduler performs no per-job table allocation — part of the
  // zero-allocation steady state (tests/hotpath_test.cpp).

  // Regular-interval instrumentation (Sec. III-E). The buffer is adopted
  // from / donated to a thread-local recycler (the ReadyQueue idiom), so
  // per-cell scheduler churn reuses interval storage allocation-free.
  std::vector<RegularInterval> intervals_;
  bool interval_open_ = false;
  RegularInterval current_interval_;

  VDoverStats stats_;
};

}  // namespace sjs::sched
