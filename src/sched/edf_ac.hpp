// EDF with conservative admission control (EDF-AC).
//
// Classical guarantee-based scheduling: a job is admitted at release only if
// the admitted set remains schedulable by its deadlines under the
// *conservative* capacity estimate c_lo; admitted jobs are then EDF-scheduled
// and never dropped. Because capacity never falls below c_lo, every admitted
// job completes — the opposite trade-off from V-Dover, which over-commits
// and resolves overload by value. Included as a baseline to show what
// conservative admission leaves on the table when capacity often runs above
// c_lo (the benches' δ = 35 regime).
//
// The admission test simulates EDF at rate c_lo over the admitted jobs'
// remaining work, O(n log n) per release.
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class EdfAcScheduler : public sim::Scheduler {
 public:
  /// c_est <= 0 selects the band minimum c_lo at start.
  explicit EdfAcScheduler(double c_est = 0.0) : c_est_(c_est) {}

  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {admitted_.peak(), admitted_.slots()};
  }
  std::string name() const override { return "EDF-AC"; }

  std::uint64_t rejected() const { return rejected_; }

 private:
  /// True iff the admitted set plus `candidate` can all meet deadlines at
  /// constant rate c_est from `now` (EDF simulation over remaining work).
  bool admissible_with(const sim::Engine& engine, JobId candidate) const;
  void dispatch(sim::Engine& engine);

  double c_est_;
  std::uint64_t rejected_ = 0;
  /// Admitted ready jobs excluding the running one, (deadline, id).
  ReadyQueue admitted_;
};

}  // namespace sjs::sched
