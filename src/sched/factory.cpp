#include "sched/factory.hpp"

#include "sched/edf.hpp"
#include "sched/edf_ac.hpp"
#include "sched/fifo.hpp"
#include "sched/greedy.hpp"
#include "sched/llf.hpp"
#include "sched/np_edf.hpp"
#include "sched/srpt.hpp"

namespace sjs::sched {

NamedFactory make_vdover(double k) {
  VDoverOptions options;
  options.k = k;
  return make_vdover_with(options);
}

NamedFactory make_vdover_with(const VDoverOptions& options) {
  const std::string name = VDoverScheduler(options).name();
  return {name, [options] { return std::make_unique<VDoverScheduler>(options); }};
}

NamedFactory make_dover(double c_hat, double k) {
  VDoverOptions options;
  options.capacity_estimate = c_hat;
  options.use_supplement_queue = false;
  options.k = k;
  return make_vdover_with(options);
}

NamedFactory make_dover_ewma(double alpha, double k) {
  VDoverOptions options;
  options.use_supplement_queue = false;
  options.adaptive_estimate = true;
  options.ewma_alpha = alpha;
  options.k = k;
  return make_vdover_with(options);
}

NamedFactory make_edf() {
  return {"EDF", [] { return std::make_unique<EdfScheduler>(); }};
}

NamedFactory make_llf(double c_est, double quantum) {
  return {"LLF", [c_est, quantum] {
            return std::make_unique<LlfScheduler>(c_est, quantum);
          }};
}

NamedFactory make_edf_ac(double c_est) {
  return {"EDF-AC",
          [c_est] { return std::make_unique<EdfAcScheduler>(c_est); }};
}

NamedFactory make_srpt() {
  return {"SRPT", [] { return std::make_unique<SrptScheduler>(); }};
}

NamedFactory make_np_edf() {
  return {"NP-EDF",
          [] { return std::make_unique<NonPreemptiveEdfScheduler>(); }};
}

NamedFactory make_fifo() {
  return {"FIFO", [] { return std::make_unique<FifoScheduler>(); }};
}

NamedFactory make_hvf() {
  return {"HVF", [] { return std::make_unique<GreedyScheduler>(GreedyKey::kValue); }};
}

NamedFactory make_hvdf() {
  return {"HVDF", [] {
            return std::make_unique<GreedyScheduler>(GreedyKey::kValueDensity);
          }};
}

std::vector<NamedFactory> paper_lineup(const std::vector<double>& c_hats,
                                       double k) {
  std::vector<NamedFactory> lineup;
  for (double c_hat : c_hats) lineup.push_back(make_dover(c_hat, k));
  lineup.push_back(make_vdover(k));
  return lineup;
}

std::vector<NamedFactory> extended_lineup(const std::vector<double>& c_hats,
                                          double k) {
  auto lineup = paper_lineup(c_hats, k);
  lineup.push_back(make_edf());
  lineup.push_back(make_edf_ac());
  lineup.push_back(make_llf());
  lineup.push_back(make_fifo());
  lineup.push_back(make_hvf());
  lineup.push_back(make_hvdf());
  lineup.push_back(make_srpt());
  return lineup;
}

std::vector<NamedFactory> full_lineup(double c_lo, double c_hi, double k) {
  auto lineup = extended_lineup({c_lo, (c_lo + c_hi) / 2.0, c_hi}, k);
  lineup.push_back(make_np_edf());
  return lineup;
}

const NamedFactory* find_factory(const std::vector<NamedFactory>& lineup,
                                 const std::string& name) {
  for (const auto& f : lineup) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace sjs::sched
