#include "sched/np_edf.hpp"

namespace sjs::sched {

void NonPreemptiveEdfScheduler::on_start(sim::Engine& engine) {
  ready_.reserve(engine.job_capacity_hint());
}

void NonPreemptiveEdfScheduler::dispatch_if_idle(sim::Engine& engine) {
  if (engine.running() != kNoJob || ready_.empty()) return;
  engine.run(ready_.pop().id);
}

void NonPreemptiveEdfScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.push(engine.job(job).deadline, job);
  dispatch_if_idle(engine);
}

void NonPreemptiveEdfScheduler::on_complete(sim::Engine& engine,
                                            JobId /*job*/) {
  dispatch_if_idle(engine);
}

void NonPreemptiveEdfScheduler::on_expire(sim::Engine& engine, JobId job,
                                          bool /*was_running*/) {
  ready_.erase(job);
  dispatch_if_idle(engine);
}

}  // namespace sjs::sched
