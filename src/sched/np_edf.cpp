#include "sched/np_edf.hpp"

namespace sjs::sched {

void NonPreemptiveEdfScheduler::dispatch_if_idle(sim::Engine& engine) {
  if (engine.running() != kNoJob || ready_.empty()) return;
  const auto [deadline, job] = *ready_.begin();
  ready_.erase(ready_.begin());
  engine.run(job);
}

void NonPreemptiveEdfScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.emplace(engine.job(job).deadline, job);
  dispatch_if_idle(engine);
}

void NonPreemptiveEdfScheduler::on_complete(sim::Engine& engine,
                                            JobId /*job*/) {
  dispatch_if_idle(engine);
}

void NonPreemptiveEdfScheduler::on_expire(sim::Engine& engine, JobId job,
                                          bool /*was_running*/) {
  ready_.erase({engine.job(job).deadline, job});
  dispatch_if_idle(engine);
}

}  // namespace sjs::sched
