// Non-preemptive first-in-first-out baseline: jobs run to completion (or to
// their deadline) in release order. Included to show what naive scheduling
// loses under overload; the paper's intro motivates value-aware policies.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class FifoScheduler : public sim::Scheduler {
 public:
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  /// FIFO keeps a plain deque (no keyed ordering to accelerate); it still
  /// reports its occupancy high-water so `sched.queue.peak` is comparable
  /// across the whole lineup. Slot accounting stays 0: the deque's storage
  /// is not the flat entry layout the gauge describes.
  QueueStats queue_stats() const override { return {peak_, 0}; }
  std::string name() const override { return "FIFO"; }

 private:
  void dispatch_next(sim::Engine& engine);

  std::deque<JobId> queue_;
  std::uint64_t peak_ = 0;
};

}  // namespace sjs::sched
