// Non-preemptive first-in-first-out baseline: jobs run to completion (or to
// their deadline) in release order. Included to show what naive scheduling
// loses under overload; the paper's intro motivates value-aware policies.
#pragma once

#include <deque>

#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class FifoScheduler : public sim::Scheduler {
 public:
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  std::string name() const override { return "FIFO"; }

 private:
  void dispatch_next(sim::Engine& engine);

  std::deque<JobId> queue_;
};

}  // namespace sjs::sched
