// Non-preemptive first-in-first-out baseline: jobs run to completion (or to
// their deadline) in release order. Included to show what naive scheduling
// loses under overload; the paper's intro motivates value-aware policies.
#pragma once

#include <cstdint>

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class FifoScheduler : public sim::Scheduler {
 public:
  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {queue_.peak(), queue_.slots()};
  }
  std::string name() const override { return "FIFO"; }

 private:
  void dispatch_next(sim::Engine& engine);

  /// Arrival order as a keyed queue: (release time, id) min-first. Releases
  /// pop from the engine in (time, seq) order and seq order equals id order
  /// at equal times, so lexicographic (release, id) order IS the order the
  /// old std::deque accumulated — pop-for-pop identical (digest-gated),
  /// while gaining O(log n) erase and the allocation-free recycled storage
  /// every other scheduler already has.
  ReadyQueue queue_;
};

}  // namespace sjs::sched
