// Preemptive static-priority greedy baselines: always run the ready job with
// the highest value (HVF) or highest value density (HVDF). These are the
// natural "grab the money" policies a spot-market operator might try first;
// the benches show where they lose to deadline-aware scheduling.
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

enum class GreedyKey {
  kValue,         ///< priority = v_i
  kValueDensity,  ///< priority = v_i / p_i
};

class GreedyScheduler : public sim::Scheduler {
 public:
  explicit GreedyScheduler(GreedyKey key)
      : key_(key), ready_(QueueOrder::kMaxFirst) {}

  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {ready_.peak(), ready_.slots()};
  }
  std::string name() const override {
    return key_ == GreedyKey::kValue ? "HVF" : "HVDF";
  }

 private:
  double priority(const sim::Engine& engine, JobId job) const;
  void dispatch(sim::Engine& engine);

  GreedyKey key_;
  /// Ready jobs excluding the running one, highest priority first.
  ReadyQueue ready_;
};

}  // namespace sjs::sched
