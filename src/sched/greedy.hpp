// Preemptive static-priority greedy baselines: always run the ready job with
// the highest value (HVF) or highest value density (HVDF). These are the
// natural "grab the money" policies a spot-market operator might try first;
// the benches show where they lose to deadline-aware scheduling.
#pragma once

#include <set>
#include <utility>

#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

enum class GreedyKey {
  kValue,         ///< priority = v_i
  kValueDensity,  ///< priority = v_i / p_i
};

class GreedyScheduler : public sim::Scheduler {
 public:
  explicit GreedyScheduler(GreedyKey key) : key_(key) {}

  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  std::string name() const override {
    return key_ == GreedyKey::kValue ? "HVF" : "HVDF";
  }

 private:
  double priority(const sim::Engine& engine, JobId job) const;
  void dispatch(sim::Engine& engine);

  GreedyKey key_;
  /// Ready jobs excluding the running one, highest priority first.
  std::set<std::pair<double, JobId>, std::greater<>> ready_;
};

}  // namespace sjs::sched
