// ReadyQueue — flat, addressable d-ary heap for scheduler ready queues.
//
// Every priority-driven scheduler in src/sched/ keeps its ready jobs ordered
// by one double key (deadline, laxity intercept, remaining work, value, ...).
// The original implementation was std::set<std::pair<double, JobId>>: a
// node-based red-black tree paying one heap allocation per insert and a
// pointer chase per begin()/erase() — the dominant per-event cost of the
// queue-heavy schedulers (LLF, V-Dover) in BM_FullSimulation. ReadyQueue
// replaces it with a 4-ary min-heap (or max-heap, by policy) over contiguous
// (key, id) storage plus a JobId -> heap-position index, giving
//
//   push / pop / erase-by-id / update-key   O(log n), allocation-free after
//                                           reserve()
//   top / contains / key_of                 O(1)
//
// Ordering contract (digest-gated — see docs/performance.md): the pop order
// is EXACTLY that of the std::set it replaced. kMinFirst pops the smallest
// (key, id) pair lexicographically (ties broken toward the smaller JobId);
// kMaxFirst pops the largest (key, id) pair (ties toward the LARGER JobId,
// matching std::set<..., std::greater<>>). JobIds are unique within a queue,
// so the pop sequence is a total order independent of insertion order and of
// the heap's internal layout.
//
// Addressable-slot invalidation rules: the position index is keyed by JobId
// and is only valid while the job is in the queue. push() requires the id to
// be absent; erase()/pop() invalidate the id's slot immediately (erase of an
// absent id is a tolerated no-op — schedulers purge expired jobs from every
// queue they might be in). Keys are frozen at push(); a key that must change
// goes through update_key(), never through mutation in place.
//
// clear() keeps the backing storage, and destroyed queues donate their
// buffers to a small thread-local recycler that the next queue constructed
// on the same thread adopts — so mc::run_monte_carlo's engine-reuse path,
// which constructs one fresh scheduler per (run, scheduler) cell on the same
// worker thread, reuses queue storage across cells just as Engine::reset()
// reuses the event heap and timer slab.
#pragma once

#include <cstdint>
#include <vector>

#include "jobs/job.hpp"
#include "util/fp.hpp"

namespace sjs::sched {

/// Pop-order policy: which (key, id) pair top()/pop() yield.
enum class QueueOrder : std::uint8_t {
  kMinFirst,  ///< smallest (key, id), ties toward the smaller id
  kMaxFirst,  ///< largest (key, id), ties toward the larger id
};

class ReadyQueue {
 public:
  struct Entry {
    double key;
    JobId id;
  };

  explicit ReadyQueue(QueueOrder order = QueueOrder::kMinFirst);
  ~ReadyQueue();

  ReadyQueue(const ReadyQueue&) = delete;
  ReadyQueue& operator=(const ReadyQueue&) = delete;

  /// Sizes the position index for JobIds in [0, id_bound) and reserves heap
  /// storage, so a run whose queue never exceeds id_bound entries performs
  /// no allocation after this call. Schedulers call it from on_start with
  /// engine.job_count().
  void reserve(std::size_t id_bound);

  /// Empties the queue in O(size), keeping all storage for reuse. The peak
  /// statistic is NOT reset (it is a lifetime high-water mark).
  void clear();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// True iff `id` is currently queued. O(1).
  bool contains(JobId id) const {
    const auto idx = static_cast<std::size_t>(id);
    return id >= 0 && idx < pos_.size() && pos_[idx] != kNpos;
  }

  /// Key `id` was queued with. The job must be queued. O(1).
  double key_of(JobId id) const;

  /// The best entry per the queue's policy. The queue must be non-empty.
  const Entry& top() const;

  /// Inserts `id` with `key`. The id must not already be queued.
  void push(double key, JobId id);

  /// Removes and returns the best entry. The queue must be non-empty.
  Entry pop();

  /// Removes `id` if queued; returns whether it was. Erasing an absent id is
  /// a no-op (schedulers purge dead jobs from every queue they might be in).
  bool erase(JobId id);

  /// Re-keys a queued job in place (one sift instead of erase + push).
  void update_key(JobId id, double key);

  /// Lifetime high-water mark of size() — the per-run occupancy peak
  /// surfaced as SimResult::queue_peak / the sched.queue.peak gauge.
  std::uint64_t peak() const { return peak_; }

  /// Entry slots currently reserved (capacity of the backing array).
  std::uint64_t slots() const { return heap_.capacity(); }

  /// Visits entries in unspecified order (the raw heap layout). Only for
  /// order-insensitive consumers — anything whose result feeds a schedule
  /// decision or a trace payload must use for_each_ordered instead.
  template <typename F>
  void for_each_unordered(F&& f) const {
    for (const Entry& e : heap_) f(e);
  }

  /// Visits entries in exact pop order (the order the replaced std::set
  /// iterated in) without disturbing the queue. O(n log n) via a scratch
  /// sort; the scratch buffer is retained, so repeated calls do not
  /// allocate. Safe against mutation of THIS queue from inside `f` (the
  /// visit walks a snapshot), which the V-Dover capacity-change re-arm path
  /// relies on.
  template <typename F>
  void for_each_ordered(F&& f) const {
    snapshot_ordered();
    for (const Entry& e : scratch_) f(e);
  }

 private:
  static constexpr std::size_t kArity = 4;
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  /// Strict priority: true iff `a` pops before `b`. Total order (JobIds are
  /// unique), identical to the lexicographic pair order of the replaced set.
  bool before(const Entry& a, const Entry& b) const {
    if (order_ == QueueOrder::kMinFirst) {
      return a.key < b.key || (fp::exact_eq(a.key, b.key) && a.id < b.id);
    }
    return a.key > b.key || (fp::exact_eq(a.key, b.key) && a.id > b.id);
  }

  void place(std::size_t slot, const Entry& e) {
    heap_[slot] = e;
    pos_[static_cast<std::size_t>(e.id)] = static_cast<std::uint32_t>(slot);
  }

  void sift_up(std::size_t slot);
  void sift_down(std::size_t slot);
  /// Fills scratch_ with the entries sorted into pop order.
  void snapshot_ordered() const;

  QueueOrder order_;
  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  // JobId -> heap slot, kNpos when absent
  mutable std::vector<Entry> scratch_;
  std::uint64_t peak_ = 0;
};

}  // namespace sjs::sched
