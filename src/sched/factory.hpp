// Named scheduler construction for benches and examples.
//
// Monte-Carlo experiments need a *fresh* scheduler per run (schedulers carry
// queues), so the unit of configuration is a factory, not an instance.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/vdover.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

struct NamedFactory {
  std::string name;
  SchedulerFactory make;
};

/// V-Dover with the paper's defaults (c_est = c_lo, β = β*(k, δ)).
NamedFactory make_vdover(double k = 7.0);

/// V-Dover with explicit options (ablations).
NamedFactory make_vdover_with(const VDoverOptions& options);

/// Dover with capacity estimate ĉ and threshold 1 + √k.
NamedFactory make_dover(double c_hat, double k = 7.0);

/// Dover whose estimate tracks an EWMA of the observed rate (ablation A2:
/// the "smarter" alternative to V-Dover's conservative choice).
NamedFactory make_dover_ewma(double alpha = 0.3, double k = 7.0);

NamedFactory make_edf();
/// EDF with conservative admission control (guarantees every admitted job).
NamedFactory make_edf_ac(double c_est = 0.0);
NamedFactory make_llf(double c_est = 0.0, double quantum = 0.05);
NamedFactory make_fifo();
NamedFactory make_hvf();
NamedFactory make_hvdf();
NamedFactory make_srpt();
/// Non-preemptive EDF (the regime of the paper's citation [12]).
NamedFactory make_np_edf();

/// The paper's Table-I line-up: Dover(ĉ) for each ĉ, then V-Dover.
std::vector<NamedFactory> paper_lineup(const std::vector<double>& c_hats,
                                       double k = 7.0);

/// Extended line-up: the paper's plus EDF/LLF/FIFO/HVF/HVDF baselines.
std::vector<NamedFactory> extended_lineup(const std::vector<double>& c_hats,
                                          double k = 7.0);

/// Every named scheduler the CLI surfaces resolve (sjs_sim, sjs_serve, the
/// serving tests): extended_lineup at ĉ ∈ {c_lo, mid, c_hi} plus NP-EDF.
/// One definition so a scheduler name recorded in a serving journal's
/// meta.csv means the same algorithm when the session is replayed.
std::vector<NamedFactory> full_lineup(double c_lo, double c_hi, double k = 7.0);

/// Looks up a factory by exact name; nullptr when absent.
const NamedFactory* find_factory(const std::vector<NamedFactory>& lineup,
                                 const std::string& name);

}  // namespace sjs::sched
