#include "sched/greedy.hpp"

namespace sjs::sched {

void GreedyScheduler::on_start(sim::Engine& engine) {
  ready_.reserve(engine.job_capacity_hint());
}

double GreedyScheduler::priority(const sim::Engine& engine, JobId job) const {
  const Job& j = engine.job(job);
  return key_ == GreedyKey::kValue ? j.value : j.value_density();
}

void GreedyScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const double best_priority = ready_.top().key;
  const JobId current = engine.running();
  if (current != kNoJob && priority(engine, current) >= best_priority) {
    return;
  }
  const JobId best = ready_.pop().id;
  if (current != kNoJob) {
    ready_.push(priority(engine, current), current);
  }
  engine.run(best);
}

void GreedyScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.push(priority(engine, job), job);
  dispatch(engine);
}

void GreedyScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void GreedyScheduler::on_expire(sim::Engine& engine, JobId job,
                                bool /*was_running*/) {
  ready_.erase(job);
  dispatch(engine);
}

}  // namespace sjs::sched
