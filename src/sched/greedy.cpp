#include "sched/greedy.hpp"

namespace sjs::sched {

double GreedyScheduler::priority(const sim::Engine& engine, JobId job) const {
  const Job& j = engine.job(job);
  return key_ == GreedyKey::kValue ? j.value : j.value_density();
}

void GreedyScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const auto [best_priority, best] = *ready_.begin();
  const JobId current = engine.running();
  if (current != kNoJob && priority(engine, current) >= best_priority) {
    return;
  }
  ready_.erase(ready_.begin());
  if (current != kNoJob) {
    ready_.emplace(priority(engine, current), current);
  }
  engine.run(best);
}

void GreedyScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.emplace(priority(engine, job), job);
  dispatch(engine);
}

void GreedyScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void GreedyScheduler::on_expire(sim::Engine& engine, JobId job,
                                bool /*was_running*/) {
  ready_.erase({priority(engine, job), job});
  dispatch(engine);
}

}  // namespace sjs::sched
