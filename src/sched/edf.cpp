#include "sched/edf.hpp"

namespace sjs::sched {

void EdfScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const auto [best_deadline, best] = *ready_.begin();
  const JobId current = engine.running();
  if (current != kNoJob &&
      engine.job(current).deadline <= best_deadline) {
    return;  // the running job already has the earliest deadline
  }
  ready_.erase(ready_.begin());
  if (current != kNoJob) {
    ready_.emplace(engine.job(current).deadline, current);
  }
  engine.run(best);
}

void EdfScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.emplace(engine.job(job).deadline, job);
  dispatch(engine);
}

void EdfScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void EdfScheduler::on_expire(sim::Engine& engine, JobId job,
                             bool /*was_running*/) {
  ready_.erase({engine.job(job).deadline, job});
  dispatch(engine);
}

}  // namespace sjs::sched
