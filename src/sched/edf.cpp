#include "sched/edf.hpp"

namespace sjs::sched {

void EdfScheduler::on_start(sim::Engine& engine) {
  ready_.reserve(engine.job_capacity_hint());
}

void EdfScheduler::dispatch(sim::Engine& engine) {
  if (ready_.empty()) return;
  const double best_deadline = ready_.top().key;
  const JobId current = engine.running();
  if (current != kNoJob &&
      engine.job(current).deadline <= best_deadline) {
    return;  // the running job already has the earliest deadline
  }
  const JobId best = ready_.pop().id;
  if (current != kNoJob) {
    ready_.push(engine.job(current).deadline, current);
  }
  engine.run(best);
}

void EdfScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.push(engine.job(job).deadline, job);
  dispatch(engine);
}

void EdfScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void EdfScheduler::on_expire(sim::Engine& engine, JobId job,
                             bool /*was_running*/) {
  ready_.erase(job);
  dispatch(engine);
}

}  // namespace sjs::sched
