#include "sched/edf_ac.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/vec.hpp"

namespace sjs::sched {

void EdfAcScheduler::on_start(sim::Engine& engine) {
  if (c_est_ <= 0.0) c_est_ = engine.c_lo();
  admitted_.reserve(engine.job_capacity_hint());
  engine.job_state().admission_scratch().reserve(engine.job_capacity_hint() + 2);
}

bool EdfAcScheduler::admissible_with(const sim::Engine& engine,
                                     JobId candidate) const {
  // Gather (deadline, remaining work) of the admitted set + candidate and
  // sweep in EDF order at constant rate c_est: feasible iff cumulative
  // remaining work never overtakes c_est * (deadline − now). All admitted
  // jobs are already released, so release times play no role. Visitation
  // order does not matter: the entries are sorted before the sweep. The
  // scratch is the job slab's admission buffer — pre-sized in on_start and
  // reused across calls, so the trial schedule is allocation-free.
  std::vector<std::pair<double, double>>& load =
      engine.job_state().admission_scratch();
  load.clear();
  admitted_.for_each_unordered([&](const ReadyQueue::Entry& e) {
    util::append_emplace(load, e.key, engine.remaining(e.id));
  });
  if (engine.running() != kNoJob) {
    util::append_emplace(load, engine.job(engine.running()).deadline,
                         engine.remaining(engine.running()));
  }
  util::append_emplace(load, engine.job(candidate).deadline,
                       engine.remaining(candidate));
  std::sort(load.begin(), load.end());

  const double now = engine.now();
  double cumulative = 0.0;
  for (const auto& [deadline, remaining] : load) {
    cumulative += remaining;
    if (cumulative > c_est_ * (deadline - now) + 1e-9) return false;
  }
  return true;
}

void EdfAcScheduler::dispatch(sim::Engine& engine) {
  if (admitted_.empty()) return;
  const double best_deadline = admitted_.top().key;
  const JobId current = engine.running();
  if (current != kNoJob && engine.job(current).deadline <= best_deadline) {
    return;
  }
  const JobId best = admitted_.pop().id;
  if (current != kNoJob) {
    admitted_.push(engine.job(current).deadline, current);
  }
  engine.run(best);
}

void EdfAcScheduler::on_release(sim::Engine& engine, JobId job) {
  if (!admissible_with(engine, job)) {
    ++rejected_;  // never scheduled; expires on its own
    return;
  }
  admitted_.push(engine.job(job).deadline, job);
  dispatch(engine);
}

void EdfAcScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void EdfAcScheduler::on_expire(sim::Engine& engine, JobId job,
                               bool /*was_running*/) {
  admitted_.erase(job);
  dispatch(engine);
}

}  // namespace sjs::sched
