// Non-preemptive EDF.
//
// The only prior work on varying-capacity deadline scheduling the paper
// cites ([12]) assumes scheduled jobs cannot be preempted; the paper argues
// preemption is essential in the cloud because newly released primary jobs
// can take capacity away mid-execution. This baseline quantifies that
// argument: earliest-deadline dispatch, but once a job starts it runs to
// completion or failure. The preemption-value ablation
// (bench_ablation, section F) compares it against preemptive EDF and
// V-Dover.
#pragma once

#include "sched/ready_queue.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sched {

class NonPreemptiveEdfScheduler : public sim::Scheduler {
 public:
  void on_start(sim::Engine& engine) override;
  void on_release(sim::Engine& engine, JobId job) override;
  void on_complete(sim::Engine& engine, JobId job) override;
  void on_expire(sim::Engine& engine, JobId job, bool was_running) override;
  QueueStats queue_stats() const override {
    return {ready_.peak(), ready_.slots()};
  }
  std::string name() const override { return "NP-EDF"; }

 private:
  void dispatch_if_idle(sim::Engine& engine);

  /// Ready jobs, (deadline, id).
  ReadyQueue ready_;
};

}  // namespace sjs::sched
