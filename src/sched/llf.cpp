#include "sched/llf.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace sjs::sched {

namespace {
// Preempt only on a strict laxity improvement; ties would otherwise cause the
// classic LLF preemption storm.
constexpr double kLaxityEps = 1e-9;
}  // namespace

void LlfScheduler::on_start(sim::Engine& engine) {
  if (c_est_ <= 0.0) c_est_ = engine.c_lo();
  SJS_CHECK_MSG(quantum_ > 0.0, "LLF quantum must be positive");
  ready_.reserve(engine.job_capacity_hint());
}

void LlfScheduler::arm_crossing_timer(sim::Engine& engine) {
  engine.cancel_timer(crossing_timer_);
  crossing_timer_ = sim::kNoTimer;
  if (engine.running() == kNoJob || ready_.empty()) return;

  const double now = engine.now();
  const double queued_laxity = ready_.top().key - now;
  const double running_laxity = engine.claxity(engine.running(), c_est_);
  // The queued job's laxity falls at rate 1, the running job's at
  // 1 - c/c_est <= 1, so the queued job closes the lead at speed c/c_est.
  const double closing = engine.current_rate() / c_est_;
  const double lead = queued_laxity - running_laxity;
  // lead > 0: a genuine future crossing; lead <= 0: the queued job is already
  // at/below the running job's laxity but the quantum (or the hysteresis)
  // blocked the switch — re-check one quantum later, never "now" (that would
  // spin at the current instant).
  double fire_at =
      lead > kLaxityEps ? now + lead / closing : now + quantum_;
  fire_at = std::max(fire_at, last_switch_ + quantum_);
  crossing_timer_ = engine.set_timer(fire_at, kNoJob, /*tag=*/1);
}

void LlfScheduler::dispatch(sim::Engine& engine) {
  if (!ready_.empty()) {
    const double now = engine.now();
    const auto [best_intercept, best] = ready_.top();
    const JobId current = engine.running();
    if (current == kNoJob) {
      ready_.pop();
      engine.run(best);
      last_switch_ = now;
    } else {
      const double queued_laxity = best_intercept - now;
      const double running_laxity = engine.claxity(current, c_est_);
      if (queued_laxity < running_laxity - kLaxityEps &&
          now >= last_switch_ + quantum_) {
        ready_.pop();
        ready_.push(intercept(engine, current), current);
        engine.run(best);
        last_switch_ = now;
      }
    }
  }
  arm_crossing_timer(engine);
}

void LlfScheduler::on_release(sim::Engine& engine, JobId job) {
  ready_.push(intercept(engine, job), job);
  // A newly released job may preempt immediately regardless of the quantum
  // (release-driven preemptions are bounded by the number of jobs).
  const JobId current = engine.running();
  if (current != kNoJob) {
    const double queued_laxity = ready_.top().key - engine.now();
    const double running_laxity = engine.claxity(current, c_est_);
    if (queued_laxity < running_laxity - kLaxityEps) {
      const JobId best = ready_.pop().id;
      ready_.push(intercept(engine, current), current);
      engine.run(best);
      last_switch_ = engine.now();
    }
    arm_crossing_timer(engine);
  } else {
    dispatch(engine);
  }
}

void LlfScheduler::on_complete(sim::Engine& engine, JobId /*job*/) {
  dispatch(engine);
}

void LlfScheduler::on_expire(sim::Engine& engine, JobId job,
                             bool /*was_running*/) {
  ready_.erase(job);
  dispatch(engine);
}

void LlfScheduler::on_timer(sim::Engine& engine, JobId /*job*/, int tag) {
  if (tag == 1) {
    crossing_timer_ = sim::kNoTimer;
    dispatch(engine);
  }
}

void LlfScheduler::on_capacity_change(sim::Engine& engine) {
  arm_crossing_timer(engine);
}

}  // namespace sjs::sched
