// The paper's Sec. III-A reduction, end to end: stretch the instance onto the
// constant-capacity axis, solve there, and map the chosen schedule back.
//
// This module exists to *demonstrate* the reduction (tests verify that
// solving the transformed system yields exactly the same optimal value as
// solving the original directly) and to expose the transformed instance for
// users who want to plug in constant-capacity algorithms from the classical
// literature.
#pragma once

#include "capacity/stretch.hpp"
#include "jobs/instance.hpp"
#include "offline/exact.hpp"

namespace sjs::offline {

struct TransformedInstance {
  std::vector<Job> jobs;           ///< stretched releases/deadlines, same p & v
  cap::CapacityProfile capacity;   ///< constant reference rate
  double reference_rate;
};

/// Applies the stretch transformation T(t) = (1/c_lo)∫₀ᵗ c to every job's
/// release and deadline. Workloads and values are preserved.
TransformedInstance stretch_instance(const Instance& instance);

/// Solves the offline problem by the reduction: stretch, then exact B&B on
/// the constant-capacity system. By the paper's bijection the value equals
/// exact_offline_value(instance) — asserted in tests.
ExactResult solve_via_stretch(const Instance& instance,
                              const ExactOptions& options = {});

}  // namespace sjs::offline
