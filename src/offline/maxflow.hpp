// Dinic max-flow on double capacities, plus the schedulable-workload bound.
//
// The classic flow formulation of preemptive deadline scheduling: split the
// time axis at every release/deadline epoch; job i connects to interval
// [s, t) iff [r_i, d_i] ⊇ [s, t); interval capacity is the work the
// processor can deliver there, ∫ c. The max flow equals the maximum total
// workload schedulable by their deadlines (feasibility of a fractional
// assignment is exactly a flow), which yields a valid upper bound on the
// offline value: OPT <= max_density × maxflow (and trivially OPT <= Σ v_i).
#pragma once

#include <cstddef>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/job.hpp"

namespace sjs::offline {

/// General-purpose Dinic max-flow on a directed graph with double capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodes);

  /// Adds a directed edge u -> v with the given capacity (and a zero-capacity
  /// residual arc). Returns the edge index.
  std::size_t add_edge(std::size_t u, std::size_t v, double capacity);

  /// Computes the maximum s->t flow. May be called once per instance.
  double solve(std::size_t s, std::size_t t);

  /// Flow routed through edge `index` after solve().
  double flow_on(std::size_t index) const;

  std::size_t node_count() const { return graph_.size(); }

 private:
  struct Edge {
    std::size_t to;
    std::size_t rev;  // index of the reverse edge in graph_[to]
    double capacity;
  };

  bool bfs(std::size_t s, std::size_t t);
  double dfs(std::size_t v, std::size_t t, double limit);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::size_t, std::size_t>> edge_refs_;
  std::vector<double> original_capacity_;
};

/// Maximum total workload (capacity-seconds) of `jobs` that can be executed
/// inside the jobs' own [release, deadline] windows on `profile`. Equals
/// Σ p_i iff the set is schedulable.
double max_schedulable_workload(const std::vector<Job>& jobs,
                                const cap::CapacityProfile& profile);

/// Upper bound on the optimal offline value:
/// min(Σ v_i, max_i(v_i/p_i) × max_schedulable_workload).
double offline_value_upper_bound(const std::vector<Job>& jobs,
                                 const cap::CapacityProfile& profile);

}  // namespace sjs::offline
