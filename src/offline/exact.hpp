// Exact optimal offline value by branch-and-bound over job subsets.
//
// The offline problem is NP-hard even at constant capacity (paper Sec. II-B),
// so exact solving is for small instances: tests validate the competitive-
// ratio claims (Theorems 2 and 3) against true optima, and the
// bench_competitive harness reports empirical ratios.
//
// Search: jobs ordered by value descending; at each node either keep or drop
// the next job, with two prunes — (a) value bound: current + remaining <=
// best so far; (b) feasibility: a kept set must stay EDF-schedulable (the
// oracle is exact, see feasibility.hpp). A node-budget keeps worst cases
// bounded; the result reports whether the search completed (proved optimal)
// or was truncated (best found is then only a lower bound).
#pragma once

#include <cstdint>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"

namespace sjs::offline {

struct ExactResult {
  double value = 0.0;             ///< best (optimal if `proved_optimal`)
  std::vector<JobId> kept;        ///< ids of the chosen jobs
  bool proved_optimal = false;
  std::uint64_t nodes_visited = 0;
};

struct ExactOptions {
  std::uint64_t max_nodes = 2'000'000;
};

/// Maximum total value completable by deadlines on the instance's capacity.
ExactResult exact_offline_value(const Instance& instance,
                                const ExactOptions& options = {});

/// Same search on an explicit job list + profile (used by the stretch-
/// transform solver to run on the transformed constant-capacity system).
ExactResult exact_offline_value(const std::vector<Job>& jobs,
                                const cap::CapacityProfile& profile,
                                const ExactOptions& options = {});

}  // namespace sjs::offline
