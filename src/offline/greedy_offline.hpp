// Polynomial offline approximations: greedy admission by value or value
// density with exact feasibility checks. These are the practical schedulers
// the paper's offline reduction (Sec. III-A) enables — "the approximation
// algorithms for offline job scheduling can be readily applied" — and serve
// as the scalable stand-in for the exact solver on large instances.
#pragma once

#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"

namespace sjs::offline {

enum class GreedyOrder {
  kValueDesc,         ///< admit highest-value jobs first
  kValueDensityDesc,  ///< admit highest v/p first
};

struct GreedyResult {
  double value = 0.0;
  std::vector<JobId> kept;
};

/// Scans jobs in the chosen order, keeping each job iff the kept set remains
/// EDF-schedulable on `profile`.
GreedyResult greedy_offline_value(const std::vector<Job>& jobs,
                                  const cap::CapacityProfile& profile,
                                  GreedyOrder order);

/// The better of the two greedy orders on the instance.
GreedyResult best_greedy_offline_value(const Instance& instance);

}  // namespace sjs::offline
