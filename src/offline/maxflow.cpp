#include "offline/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/logging.hpp"

namespace sjs::offline {

namespace {
// Flow below this is numerical dust; Dinic terminates when no augmenting
// path can carry more.
constexpr double kFlowEps = 1e-12;
}  // namespace

MaxFlow::MaxFlow(std::size_t nodes) : graph_(nodes) {}

std::size_t MaxFlow::add_edge(std::size_t u, std::size_t v, double capacity) {
  SJS_CHECK(u < graph_.size() && v < graph_.size());
  SJS_CHECK(capacity >= 0.0);
  graph_[u].push_back(Edge{v, graph_[v].size(), capacity});
  graph_[v].push_back(Edge{u, graph_[u].size() - 1, 0.0});
  edge_refs_.emplace_back(u, graph_[u].size() - 1);
  original_capacity_.push_back(capacity);
  return edge_refs_.size() - 1;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > kFlowEps && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::dfs(std::size_t v, std::size_t t, double limit) {
  if (v == t) return limit;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity > kFlowEps && level_[v] < level_[e.to]) {
      const double pushed = dfs(e.to, t, std::min(limit, e.capacity));
      if (pushed > kFlowEps) {
        e.capacity -= pushed;
        graph_[e.to][e.rev].capacity += pushed;
        return pushed;
      }
    }
  }
  return 0.0;
}

double MaxFlow::solve(std::size_t s, std::size_t t) {
  SJS_CHECK(s < graph_.size() && t < graph_.size() && s != t);
  double total = 0.0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    for (;;) {
      const double pushed =
          dfs(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEps) break;
      total += pushed;
    }
  }
  return total;
}

double MaxFlow::flow_on(std::size_t index) const {
  SJS_CHECK(index < edge_refs_.size());
  const auto [u, pos] = edge_refs_[index];
  return original_capacity_[index] - graph_[u][pos].capacity;
}

double max_schedulable_workload(const std::vector<Job>& jobs,
                                const cap::CapacityProfile& profile) {
  if (jobs.empty()) return 0.0;

  // Epochs: every release and deadline; intervals are consecutive pairs.
  std::vector<double> epochs;
  epochs.reserve(jobs.size() * 2);
  for (const Job& j : jobs) {
    epochs.push_back(j.release);
    epochs.push_back(j.deadline);
  }
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());

  const std::size_t n = jobs.size();
  const std::size_t m = epochs.size() - 1;
  // Nodes: 0 = source, 1..n = jobs, n+1..n+m = intervals, n+m+1 = sink.
  MaxFlow flow(n + m + 2);
  const std::size_t source = 0;
  const std::size_t sink = n + m + 1;

  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, jobs[i].workload);
  }
  for (std::size_t t = 0; t < m; ++t) {
    flow.add_edge(n + 1 + t, sink, profile.work(epochs[t], epochs[t + 1]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < m; ++t) {
      if (jobs[i].release <= epochs[t] && epochs[t + 1] <= jobs[i].deadline) {
        flow.add_edge(1 + i, n + 1 + t,
                      std::numeric_limits<double>::infinity());
      }
    }
  }
  return flow.solve(source, sink);
}

double offline_value_upper_bound(const std::vector<Job>& jobs,
                                 const cap::CapacityProfile& profile) {
  if (jobs.empty()) return 0.0;
  double total_value = 0.0;
  double max_density = 0.0;
  for (const Job& j : jobs) {
    total_value += j.value;
    max_density = std::max(max_density, j.value_density());
  }
  return std::min(total_value,
                  max_density * max_schedulable_workload(jobs, profile));
}

}  // namespace sjs::offline
