#include "offline/exact.hpp"

#include <algorithm>

#include "offline/feasibility.hpp"

namespace sjs::offline {

namespace {

struct SearchState {
  const std::vector<Job>* jobs = nullptr;       // ordered by value desc
  const cap::CapacityProfile* profile = nullptr;
  std::vector<double> suffix_value;             // Σ value from position i on
  std::vector<Job> kept;
  std::vector<JobId> kept_ids;
  double kept_value = 0.0;
  double best_value = 0.0;
  std::vector<JobId> best_ids;
  std::uint64_t nodes = 0;
  std::uint64_t max_nodes = 0;
  bool truncated = false;

  void visit(std::size_t i) {
    if (truncated) return;
    if (++nodes > max_nodes) {
      truncated = true;
      return;
    }
    if (i == jobs->size()) {
      if (kept_value > best_value) {
        best_value = kept_value;
        best_ids = kept_ids;
      }
      return;
    }
    // Value prune: even keeping everything left cannot beat the incumbent.
    if (kept_value + suffix_value[i] <= best_value) return;

    // Branch 1: keep job i (explored first — high-value jobs first makes the
    // incumbent strong early, which powers the value prune).
    const Job& j = (*jobs)[i];
    kept.push_back(j);
    if (edf_feasible(kept, *profile)) {
      kept_value += j.value;
      kept_ids.push_back(j.id);
      visit(i + 1);
      kept_ids.pop_back();
      kept_value -= j.value;
    }
    kept.pop_back();

    // Branch 2: drop job i.
    visit(i + 1);
  }
};

}  // namespace

ExactResult exact_offline_value(const std::vector<Job>& jobs,
                                const cap::CapacityProfile& profile,
                                const ExactOptions& options) {
  std::vector<Job> ordered = jobs;
  std::sort(ordered.begin(), ordered.end(), [](const Job& a, const Job& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.id < b.id;
  });

  SearchState state;
  state.jobs = &ordered;
  state.profile = &profile;
  state.max_nodes = options.max_nodes;
  state.suffix_value.assign(ordered.size() + 1, 0.0);
  for (std::size_t i = ordered.size(); i > 0; --i) {
    state.suffix_value[i - 1] = state.suffix_value[i] + ordered[i - 1].value;
  }
  state.visit(0);

  ExactResult result;
  result.value = state.best_value;
  result.kept = std::move(state.best_ids);
  std::sort(result.kept.begin(), result.kept.end());
  result.proved_optimal = !state.truncated;
  result.nodes_visited = state.nodes;
  return result;
}

ExactResult exact_offline_value(const Instance& instance,
                                const ExactOptions& options) {
  return exact_offline_value(instance.jobs(), instance.capacity(), options);
}

}  // namespace sjs::offline
