#include "offline/feasibility.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include "util/fp.hpp"

namespace sjs::offline {

namespace {

struct LiveJob {
  double deadline;
  double remaining;
  std::size_t index;  // tie-break for determinism

  bool operator>(const LiveJob& other) const {
    if (fp::exact_ne(deadline, other.deadline)) {
      return deadline > other.deadline;
    }
    return index > other.index;
  }
};

double deadline_eps(double deadline) {
  return 1e-9 * std::max(1.0, std::abs(deadline));
}

}  // namespace

bool edf_feasible(const std::vector<Job>& jobs,
                  const cap::CapacityProfile& profile) {
  if (jobs.empty()) return true;

  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].release < jobs[b].release;
  });

  std::priority_queue<LiveJob, std::vector<LiveJob>, std::greater<LiveJob>>
      live;
  std::size_t next = 0;
  double t = 0.0;

  auto admit_released = [&](double now) {
    while (next < order.size() && jobs[order[next]].release <= now) {
      const Job& j = jobs[order[next]];
      live.push(LiveJob{j.deadline, j.workload, order[next]});
      ++next;
    }
  };

  while (next < order.size() || !live.empty()) {
    if (live.empty()) {
      t = std::max(t, jobs[order[next]].release);
      admit_released(t);
      continue;
    }
    LiveJob top = live.top();
    const double finish = profile.invert(t, top.remaining);
    const double next_release =
        next < order.size() ? jobs[order[next]].release
                            : cap::CapacityProfile::kInfinity;
    if (finish <= next_release) {
      // Runs uninterrupted to completion — feasible iff it makes the
      // deadline (EDF is feasibility-optimal, so a miss here is a proof of
      // infeasibility, not a scheduling artefact).
      if (finish > top.deadline + deadline_eps(top.deadline)) return false;
      live.pop();
      t = finish;
    } else {
      // An arrival interrupts first. A miss before that arrival is still
      // final: no queued job has an earlier deadline than the running one.
      if (next_release > top.deadline + deadline_eps(top.deadline)) {
        return false;
      }
      live.pop();
      top.remaining -= profile.work(t, next_release);
      live.push(top);
      t = next_release;
      admit_released(t);
    }
  }
  return true;
}

}  // namespace sjs::offline
