// Schedulability oracle for job subsets under time-varying capacity.
//
// Preemptive EDF is feasibility-optimal on a constant-speed processor
// (Dertouzos); the paper's stretch transformation (Sec. III-A) is a
// value-preserving bijection between varying-capacity schedules and
// constant-capacity schedules, so EDF simulated on the *actual* capacity path
// is feasibility-optimal here too: a subset is schedulable iff EDF completes
// every job by its deadline. This oracle is the workhorse of the exact
// offline solver.
//
// The direct simulation below sweeps release/deadline epochs in order,
// processing the earliest-deadline live job with the exact work available in
// each inter-epoch interval — O((n + m) log n) per call where m is the number
// of capacity breakpoints crossed.
#pragma once

#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/job.hpp"

namespace sjs::offline {

/// True iff every job in `jobs` can be completed by its deadline on
/// `profile` (preemptive, single processor).
bool edf_feasible(const std::vector<Job>& jobs,
                  const cap::CapacityProfile& profile);

}  // namespace sjs::offline
