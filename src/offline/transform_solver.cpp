#include "offline/transform_solver.hpp"

namespace sjs::offline {

TransformedInstance stretch_instance(const Instance& instance) {
  const cap::StretchTransform transform(instance.capacity(),
                                        instance.c_lo());
  std::vector<Job> stretched;
  stretched.reserve(instance.size());
  for (const Job& j : instance.jobs()) {
    Job s = j;
    s.release = transform.forward(j.release);
    s.deadline = transform.forward(j.deadline);
    stretched.push_back(s);
  }
  return TransformedInstance{std::move(stretched),
                             transform.stretched_profile(),
                             transform.reference_rate()};
}

ExactResult solve_via_stretch(const Instance& instance,
                              const ExactOptions& options) {
  const TransformedInstance transformed = stretch_instance(instance);
  return exact_offline_value(transformed.jobs, transformed.capacity, options);
}

}  // namespace sjs::offline
