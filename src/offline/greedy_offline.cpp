#include "offline/greedy_offline.hpp"

#include <algorithm>

#include "offline/feasibility.hpp"

namespace sjs::offline {

GreedyResult greedy_offline_value(const std::vector<Job>& jobs,
                                  const cap::CapacityProfile& profile,
                                  GreedyOrder order) {
  std::vector<Job> ordered = jobs;
  std::sort(ordered.begin(), ordered.end(), [&](const Job& a, const Job& b) {
    const double ka =
        order == GreedyOrder::kValueDesc ? a.value : a.value_density();
    const double kb =
        order == GreedyOrder::kValueDesc ? b.value : b.value_density();
    if (ka != kb) return ka > kb;
    return a.id < b.id;
  });

  GreedyResult result;
  std::vector<Job> kept;
  kept.reserve(ordered.size());
  for (const Job& j : ordered) {
    kept.push_back(j);
    if (edf_feasible(kept, profile)) {
      result.value += j.value;
      result.kept.push_back(j.id);
    } else {
      kept.pop_back();
    }
  }
  std::sort(result.kept.begin(), result.kept.end());
  return result;
}

GreedyResult best_greedy_offline_value(const Instance& instance) {
  auto by_value = greedy_offline_value(instance.jobs(), instance.capacity(),
                                       GreedyOrder::kValueDesc);
  auto by_density = greedy_offline_value(instance.jobs(), instance.capacity(),
                                         GreedyOrder::kValueDensityDesc);
  return by_value.value >= by_density.value ? by_value : by_density;
}

}  // namespace sjs::offline
