// Theorem 3(3) demonstration: without individual admissibility no online
// algorithm has a positive competitive ratio.
//
// The paper's proof builds, for each n, an input instance I_n containing one
// job that is not individually admissible, such that the competitive ratio on
// the singleton set {I_n} is inversely proportional to n. The essential trap:
// a "jackpot" job J with workload p = c_hi·(d−r) — completable only if the
// capacity stays at c_hi for its whole window (so d − r < p/c_lo: not
// individually admissible) — released alongside n tiny filler jobs worth ε
// each. The adversary controls the capacity path:
//
//   * high path: capacity stays at c_hi through J's window. The offline
//     scheduler runs J and collects v_J ≈ n·ε·scale; an online scheduler that
//     hedged on fillers gets O(n·ε).
//   * low path: capacity drops to c_lo at J's release. J is hopeless; the
//     offline scheduler collects the fillers. An online scheduler that
//     gambled on J wasted the window and gets ~0.
//
// Since a deterministic online algorithm sees identical histories up to J's
// release, its ratio on the *pair* is at most max over its one choice, which
// tends to 0 as v_J grows with n. Our engine evaluates concrete algorithms
// against the pair and the benches report min-ratio decay with n.
#pragma once

#include <utility>

#include "jobs/instance.hpp"

namespace sjs::theory {

struct AdversaryParams {
  double c_lo = 1.0;
  double c_hi = 10.0;
  /// Number of filler jobs (the paper's n); jackpot value scales with n.
  int n = 4;
  /// Value of each filler job.
  double filler_value = 1.0;
  /// Jackpot value = jackpot_value_factor · n · filler_value.
  double jackpot_value_factor = 10.0;
};

struct AdversaryPair {
  Instance high;  ///< capacity stays at c_hi through the jackpot window
  Instance low;   ///< capacity drops to c_lo at the jackpot release
  /// Offline-optimal values on each path (known analytically by design).
  double offline_high;
  double offline_low;
};

/// Builds the instance pair I_n. The jackpot job is *not* individually
/// admissible; all fillers are.
AdversaryPair make_adversary_pair(const AdversaryParams& params);

}  // namespace sjs::theory
