#include "theory/adversary.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"

namespace sjs::theory {

AdversaryPair make_adversary_pair(const AdversaryParams& params) {
  SJS_CHECK(params.c_lo > 0.0);
  SJS_CHECK_MSG(params.c_hi > params.c_lo,
                "the trap needs genuine capacity variation (c_hi > c_lo)");
  SJS_CHECK(params.n >= 1);
  SJS_CHECK(params.filler_value > 0.0);
  SJS_CHECK(params.jackpot_value_factor > 0.0);

  const double n = static_cast<double>(params.n);

  std::vector<Job> jobs;
  // The jackpot: needs the processor at full c_hi for its entire [0, 1]
  // window, so p/c_lo = δ > 1 = d − r — NOT individually admissible.
  Job jackpot;
  jackpot.release = 0.0;
  jackpot.deadline = 1.0;
  jackpot.workload = params.c_hi;
  jackpot.value = params.jackpot_value_factor * n * params.filler_value;
  jobs.push_back(jackpot);

  // n back-to-back fillers tiling [0, 1], each individually admissible with
  // zero conservative laxity (window = p / c_lo exactly).
  for (int i = 0; i < params.n; ++i) {
    Job filler;
    filler.release = static_cast<double>(i) / n;
    filler.deadline = static_cast<double>(i + 1) / n;
    filler.workload = params.c_lo / n;
    filler.value = params.filler_value;
    jobs.push_back(filler);
  }

  // High path: c_hi through the window, then back to the floor.
  cap::CapacityProfile high_profile({0.0, 1.0}, {params.c_hi, params.c_lo});
  // Low path: the floor throughout.
  cap::CapacityProfile low_profile(params.c_lo);

  // Both instances declare the same band — the adversary's power comes from
  // the online scheduler's ignorance of which sample path it is on.
  AdversaryPair pair{
      Instance(jobs, high_profile, params.c_lo, params.c_hi),
      Instance(std::move(jobs), low_profile, params.c_lo, params.c_hi),
      // On the high path the window's work budget is exactly c_hi, so the
      // offline scheduler picks the better of "jackpot only" and "fillers
      // only" (running both is infeasible).
      /*offline_high=*/std::max(jackpot.value, n * params.filler_value),
      /*offline_low=*/n * params.filler_value,
  };
  return pair;
}

}  // namespace sjs::theory
