#include "theory/ratios.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace sjs::theory {

double f_k_delta(double k, double delta) {
  SJS_CHECK_MSG(k >= 1.0, "importance ratio k must be >= 1, got " << k);
  SJS_CHECK_MSG(delta > 1.0, "f(k, δ) requires δ > 1, got " << delta);
  return 2.0 * delta + 2.0 +
         std::log(delta * k) / std::log(delta / (delta - 1.0));
}

double offline_value_multiplier(double k, double delta) {
  const double root = std::sqrt(k) + std::sqrt(f_k_delta(k, delta));
  return root * root + 1.0;
}

double vdover_competitive_ratio(double k, double delta) {
  return 1.0 / offline_value_multiplier(k, delta);
}

double overload_upper_bound(double k) {
  SJS_CHECK_MSG(k >= 1.0, "importance ratio k must be >= 1, got " << k);
  const double root = 1.0 + std::sqrt(k);
  return 1.0 / (root * root);
}

double optimal_beta(double k, double delta) {
  return 1.0 + std::sqrt(k / f_k_delta(k, delta));
}

double dover_beta(double k) {
  SJS_CHECK_MSG(k >= 1.0, "importance ratio k must be >= 1, got " << k);
  return 1.0 + std::sqrt(k);
}

}  // namespace sjs::theory
