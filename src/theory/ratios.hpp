// Closed-form competitive-ratio expressions from the paper (Theorems 1 & 3).
//
//   f(k, δ)       = 2δ + 2 + log(δk) / log(δ/(δ−1))          (Lemma 2)
//   V-Dover ratio = 1 / ((√k + √f(k,δ))² + 1)                (Thm. 3(2))
//   upper bound   = 1 / (1 + √k)²                            (Thm. 3(1), =
//                   the constant-capacity optimum, Thm. 1(2))
//   β*            = 1 + √(k / f(k,δ))                        (Thm. 3 proof)
//
// k >= 1 is the importance-ratio bound, δ = c_hi/c_lo > 1 the capacity
// variation. Thm. 3(2) is asymptotically optimal: achievable/upper → 1 as
// k → ∞ for fixed δ.
#pragma once

namespace sjs::theory {

/// f(k, δ) of Lemma 2. Requires k >= 1 and δ > 1 (log(δ/(δ-1)) must be
/// positive and finite).
double f_k_delta(double k, double delta);

/// Achievable competitive ratio of V-Dover under individual admissibility
/// (Theorem 3(2)).
double vdover_competitive_ratio(double k, double delta);

/// Upper bound on any online algorithm's competitive ratio for overloaded
/// systems with importance ratio <= k (Theorem 3(1) / Theorem 1(2)).
double overload_upper_bound(double k);

/// The β threshold minimising the Theorem 3 bound: β* = 1 + √(k/f(k,δ)).
double optimal_beta(double k, double delta);

/// Dover's constant-capacity threshold 1 + √k (Koren–Shasha).
double dover_beta(double k);

/// The bound C(I) <= ((√k + √f)² + 1) · (suppval + regval) as a multiplier:
/// returns (√k + √f(k,δ))² + 1, the reciprocal of the achievable ratio.
double offline_value_multiplier(double k, double delta);

}  // namespace sjs::theory
