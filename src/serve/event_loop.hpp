// Single-threaded poll(2) reactor for the admission service.
//
// Deliberately minimal: one listening socket on loopback, N nonblocking
// connections with per-connection bounded write queues, and optional extra
// watched fds (the daemon's signal self-pipe). The loop never reads a clock
// — poll timeouts are computed by the caller from serve::ClockBridge — and
// never blocks on a write: output is queued and drained on POLLOUT, and a
// connection whose queue exceeds the budget is dropped (a slow consumer must
// shed, not wedge the admission path or grow without bound).
//
// Framing, protocol state, and scheduling live above this layer
// (serve::AdmissionServer); the loop deals in raw bytes only.
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sjs::serve {

class EventLoop {
 public:
  /// Upcalls into the owner. Connection ids are small integers, reused after
  /// close (the owner must treat on_close as the end of that incarnation).
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void on_accept(int conn) = 0;
    virtual void on_data(int conn, const std::uint8_t* data,
                         std::size_t size) = 0;
    /// Peer closed, read/write error, or write-budget overflow. The
    /// connection is already unregistered; `overflow` distinguishes a
    /// dropped slow consumer from a normal close.
    virtual void on_close(int conn, bool overflow) = 0;
    /// A watched fd became readable (signal self-pipe). The handler drains
    /// the fd itself.
    virtual void on_wake(int fd) = 0;
  };

  explicit EventLoop(Handler& handler);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Binds and listens on 127.0.0.1:`port` (0 = ephemeral). Returns the
  /// bound port. Throws std::runtime_error on failure.
  int listen_loopback(int port);
  int port() const { return port_; }

  /// Registers an extra readable fd (not owned) surfaced via on_wake.
  void watch(int fd);

  /// Queues `size` bytes on `conn`. Returns false — and drops the
  /// connection, with on_close(overflow=true) — when the queue would exceed
  /// the write budget.
  bool send(int conn, const std::uint8_t* data, std::size_t size);

  void close_conn(int conn);
  bool conn_open(int conn) const;
  std::size_t open_conn_count() const;

  /// One poll cycle: accept, read (on_data), flush pending writes. Blocks at
  /// most `timeout_ms` (0 = nonblocking pass, -1 = until activity). Returns
  /// the number of fds that had activity.
  int poll_once(int timeout_ms);

  /// True while any connection has unsent bytes queued (drain barrier).
  bool writes_pending() const;

  /// Closes the listener so no new connections land (drain), keeping
  /// established connections alive.
  void stop_listening();
  /// Closes everything (also done by the destructor).
  void shutdown();

  void set_max_write_buffer(std::size_t bytes) { max_write_buffer_ = bytes; }

  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  std::size_t write_buffer_peak() const { return write_buffer_peak_; }

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> wbuf;  // unsent output; wpos = sent prefix
    std::size_t wpos = 0;
    bool open = false;
  };

  void accept_new();
  void read_conn(int conn);
  void flush_conn(int conn);
  void drop_conn(int conn, bool overflow);

  Handler* handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<Conn> conns_;
  std::vector<int> watched_;
  // poll_once scratch (member, not local: capacity persists across cycles,
  // so a warmed loop builds its poll set without allocating).
  std::vector<pollfd> fds_scratch_;
  std::vector<int> ids_scratch_;
  std::size_t max_write_buffer_ = 1 << 18;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::size_t write_buffer_peak_ = 0;
};

}  // namespace sjs::serve
