// AdmissionServer — the real-time job-admission service (docs/serving.md).
//
// Glues the serving stack together: an EventLoop accepts loopback
// connections speaking the length-prefixed protocol; a ClockBridge maps the
// injected Clock onto virtual simulation time; the live-mode sim::Engine +
// a sched::Scheduler decide what runs; a Journal records every admitted job
// so the session replays bit-exactly through `sjs_sim --bundle=<journal>`.
//
// Single-threaded by construction: sockets, engine, and journal are all
// touched only from the thread calling step()/run(), so the whole daemon is
// trivially race-free (the TSan CI job runs the loopback tests).
//
// Admission path for SUBMIT(p, d_rel, v):
//   draining              → REJECTED(draining)
//   in_flight >= limit    → SHED                 (backpressure)
//   invalid p/d_rel/v     → REJECTED(invalid)
//   d − r < p / c_lo      → REJECTED(inadmissible)   [Thm. 3(3): such a job
//                           can be dropped without hurting any algorithm's
//                           competitive ratio, so it never enters the system]
//   otherwise             → release stamped, appended to the Instance,
//                           Engine::admit_live, journalled, ACCEPTED
//
// Admission stamps are strictly increasing (max(virtual_now,
// nextafter(prev))), which together with Engine::advance_to's strict bound
// is what makes the journal replay exact — see engine.hpp's live-mode notes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jobs/instance.hpp"
#include "obs/metrics.hpp"
#include "obs/ring_buffer.hpp"
#include "obs/trace_sink.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/event_loop.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "util/vec.hpp"

namespace sjs::serve {

struct ServerConfig {
  std::string scheduler_name = "V-Dover";
  cap::CapacityProfile capacity{1.0};
  double c_lo = 0.0;               ///< 0 → profile min rate
  double c_hi = 0.0;               ///< 0 → profile max rate
  int port = 0;                    ///< 0 → ephemeral
  std::string journal_dir;         ///< empty → no journal
  double accel = 1.0;              ///< virtual seconds per wall second
  std::uint64_t max_in_flight = 1024;
  std::size_t max_write_buffer = 1 << 18;
  bool admission_check = true;     ///< Thm. 3(3) rejection at the door
  std::size_t trace_ring = 0;      ///< >0: keep the last N trace events

  // Sharded plane only (serve/sharded_server.hpp); AdmissionServer ignores
  // these.
  std::size_t shards = 1;              ///< engine shards behind the acceptor
  std::size_t channel_capacity = 1024; ///< per-shard request channel slots
  int shard_poll_ms = 50;              ///< shard idle-poll cap (wall ms)
};

class AdmissionServer final : public EventLoop::Handler {
 public:
  /// The scheduler is owned; the clock is injected (SystemClock for the
  /// daemon, FakeClock in tests) and must outlive the server. `metrics` is
  /// optional; when set, server.* counters/gauges are published to it.
  AdmissionServer(ServerConfig config, std::unique_ptr<sim::Scheduler> sched,
                  Clock& clock, obs::MetricsRegistry* metrics = nullptr);
  ~AdmissionServer() override;

  /// Binds the listener, anchors the clock bridge, enters engine live mode.
  /// Returns the bound port.
  int start();

  /// One pump cycle: advance virtual time, deliver job notifications, poll
  /// sockets (at most `max_wait_ms`), process requests. After a drain has
  /// been requested it instead finalises the run and flushes remaining
  /// output. Returns false once fully drained (run() just loops on this).
  bool step(int max_wait_ms = 50);

  /// Serves until drained (DRAIN request or request_drain()).
  void run();

  /// Initiates graceful drain: stop accepting, refuse new submits, resolve
  /// the simulated backlog, notify clients, flush, shut down. Callable from
  /// a request handler or after a signal wake.
  void request_drain();

  bool draining() const { return draining_; }
  bool finished() const { return finished_; }

  /// Final result; valid once finished().
  const sim::SimResult& result() const { return result_; }

  /// Live counters (also the body of STATS replies).
  StatsBody stats() const;

  int port() const { return loop_.port(); }
  EventLoop& loop() { return loop_; }
  const Instance& instance() const { return instance_; }
  const std::string& journal_dir() const;
  /// Non-empty once a journal append has failed. The failing request was
  /// answered with ERROR(kJournalFailed) and the session began draining;
  /// callers (sjs_serve) should exit non-zero after the drain completes.
  const std::string& journal_error() const { return journal_error_; }
  /// The ring of recent trace events (empty unless trace_ring > 0).
  std::vector<obs::TraceEvent> recent_trace() const;

  /// Registers `fd` (e.g. a signal self-pipe) with the loop; when it becomes
  /// readable the server drains it and initiates a drain.
  void watch_shutdown_fd(int fd);

  // EventLoop::Handler:
  void on_accept(int conn) override;
  void on_data(int conn, const std::uint8_t* data, std::size_t size) override;
  void on_close(int conn, bool overflow) override;
  void on_wake(int fd) override;

 private:
  /// Tracks where to route a job's COMPLETED/EXPIRED notification. The
  /// generation guards against conn-id reuse after a disconnect.
  struct Route {
    int conn = -1;
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;      // the SUBMIT's seq, echoed in notifications
    bool cancelled = false;
  };

  /// Captures kComplete/kExpire events raised inside the engine so the pump
  /// can translate them into client notifications after advance_to returns.
  /// Drained in place (index + clear) rather than by move-returning the
  /// vector: a move would strip the retained capacity and force a fresh
  /// allocation on the next pump cycle.
  class NotificationSink final : public obs::TraceSink {
   public:
    void record(const obs::TraceEvent& event) override {
      if (event.kind == obs::TraceKind::kComplete ||
          event.kind == obs::TraceKind::kExpire) {
        // Drained every loop turn; growth stops at the per-turn high-water.
        util::append(pending_, event);
      }
    }
    std::size_t size() const { return pending_.size(); }
    const obs::TraceEvent& operator[](std::size_t i) const {
      return pending_[i];
    }
    void clear() { pending_.clear(); }
    void reserve(std::size_t n) { pending_.reserve(n); }

   private:
    std::vector<obs::TraceEvent> pending_;
  };

  void handle_message(int conn, const Message& m);
  void handle_submit(int conn, const Message& m);
  void handle_cancel(int conn, const Message& m);
  void handle_query(int conn, const Message& m);
  void reply(int conn, const Message& m);
  /// Advances virtual time to the bridge's now and ships notifications.
  void pump_engine();
  void dispatch_notifications();
  /// Resolves the backlog (Engine::finish_live), notifies, closes journal,
  /// writes outcomes.csv.
  void finalize();
  void count(const char* name, double delta = 1.0);
  void set_gauge(const char* name, double value);

  ServerConfig config_;
  std::unique_ptr<sim::Scheduler> scheduler_;
  Instance instance_;
  sim::Engine engine_;
  AdmissionGate gate_;
  ClockBridge bridge_;
  EventLoop loop_;
  std::unique_ptr<Journal> journal_;
  std::string journal_error_;  ///< first append failure; see journal_error()
  obs::MetricsRegistry* metrics_;
  obs::MetricsRegistry::Shard* shard_ = nullptr;  ///< cached local() shard

  NotificationSink notifications_;
  std::unique_ptr<obs::RingTraceBuffer> ring_;
  std::unique_ptr<obs::TraceMetricsBridge> trace_bridge_;
  obs::TeeSink tee_;

  std::vector<FrameDecoder> decoders_;   // indexed by conn id
  std::vector<std::uint64_t> conn_gens_; // bumped on close
  std::vector<Route> routes_;            // indexed by JobId
  std::vector<int> shutdown_fds_;

  bool started_ = false;
  bool draining_ = false;
  bool finalized_ = false;
  bool finished_ = false;
  int flush_spins_ = 0;

  StatsBody stats_{};
  std::uint64_t in_flight_peak_ = 0;
  sim::SimResult result_;
};

}  // namespace sjs::serve
