#include "serve/shard_worker.hpp"

#include <poll.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>

#include "util/logging.hpp"

namespace sjs::serve {

namespace {

// Per-shard labels for the server.* family: shard k publishes
// "<base>.shard<k>" into its own thread-local metrics shard. The plain
// (unsuffixed) names are counted once by the acceptor, so a registry
// snapshot shows both the rollup and the per-shard breakdown without
// double counting.
constexpr const char* kCtrAccepted = "server.jobs_accepted";
constexpr const char* kCtrRejected = "server.jobs_rejected";
constexpr const char* kCtrShed = "server.jobs_shed";
constexpr const char* kCtrCompleted = "server.jobs_completed";
constexpr const char* kCtrExpired = "server.jobs_expired";
constexpr const char* kCtrCancelled = "server.jobs_cancelled";
constexpr const char* kGaugeInFlightPeak = "server.in_flight_peak";

}  // namespace

ShardWorker::ShardWorker(const ServerConfig& config, std::size_t shard_index,
                         std::unique_ptr<sim::Scheduler> scheduler,
                         Clock& clock, obs::MetricsRegistry* metrics)
    : config_(config),
      shard_index_(shard_index),
      scheduler_(std::move(scheduler)),
      instance_(std::vector<Job>{}, config_.capacity,
                config_.c_lo > 0.0 ? config_.c_lo
                                   : config_.capacity.min_rate(),
                config_.c_hi > 0.0 ? config_.c_hi
                                   : config_.capacity.max_rate()),
      engine_(instance_, *scheduler_),
      gate_(instance_.c_lo(), config_.admission_check, config_.max_in_flight),
      bridge_(clock, config_.accel),
      metrics_(metrics),
      requests_(config_.channel_capacity),
      // Sized so a healthy plane never fills it: every request in the input
      // channel yields at most one direct reply, and at most max_in_flight
      // admitted jobs can have an unshipped terminal notification at once.
      // push_reply still tolerates overflow (it waits) for the stalled-
      // acceptor corner, where notifications can transiently exceed this.
      replies_(config_.channel_capacity + config_.max_in_flight + 8),
      metric_suffix_(".shard" + std::to_string(shard_index)),
      ctr_accepted_(kCtrAccepted + metric_suffix_),
      ctr_rejected_(kCtrRejected + metric_suffix_),
      ctr_shed_(kCtrShed + metric_suffix_),
      ctr_completed_(kCtrCompleted + metric_suffix_),
      ctr_expired_(kCtrExpired + metric_suffix_),
      ctr_cancelled_(kCtrCancelled + metric_suffix_),
      gauge_in_flight_peak_(kGaugeInFlightPeak + metric_suffix_) {
  tee_.add(&notifications_);
  if (!config_.journal_dir.empty()) {
    Journal::Meta meta;
    meta.scheduler = config_.scheduler_name;
    meta.accel = config_.accel;
    meta.admission_check = config_.admission_check;
    const std::string dir =
        (std::filesystem::path(config_.journal_dir) /
         ("shard" + std::to_string(shard_index))).string();
    journal_ = std::make_unique<Journal>(dir, instance_.capacity(),
                                         instance_.c_lo(), instance_.c_hi(),
                                         meta);
  }
}

ShardWorker::~ShardWorker() = default;

const std::string& ShardWorker::journal_dir() const {
  static const std::string empty;
  return journal_ ? journal_->dir() : empty;
}

// sjs-hot-path-root
void ShardWorker::run(double epoch) {
  bridge_.start_at(epoch);
  if (metrics_) {
    // The metrics shard must belong to THIS thread; obtaining it in the
    // constructor would alias the spawning thread's accumulator.
    shard_ = &metrics_->local();
    trace_bridge_ = util::alloc_unique<obs::TraceMetricsBridge>(*shard_);
    tee_.add(trace_bridge_.get());
  }
  engine_.attach_trace(&tee_);
  // Pre-size the per-job tables for a full live set; growth past the
  // admitted high-water is amortized (the dense local-id tables keep every
  // job ever admitted, not just the in-flight set).
  const auto n = static_cast<std::size_t>(config_.max_in_flight);
  instance_.reserve_jobs(n);
  engine_.reserve_live(n);
  routes_.reserve(n);
  tickets_.reserve(n);
  by_ticket_.reserve(n);
  notifications_.reserve(n);
  engine_.begin_live();

  while (true) {
    pump_engine();
    ShardRequest req;
    bool drained = false;
    while (true) {
      const auto st = requests_.try_pop(req);
      if (st == conc::PopStatus::kOk) {
        handle(req);
      } else {
        drained = (st == conc::PopStatus::kDrained);
        break;
      }
    }
    if (drained) break;
    pump_engine();
    // Park until the next simulated event is due or the acceptor signals.
    int timeout = config_.shard_poll_ms;
    const double next = engine_.next_event_time();
    if (std::isfinite(next)) {
      const double wall_s = bridge_.wall_until(next);
      const double ms = std::ceil(std::max(0.0, wall_s) * 1000.0);
      timeout = static_cast<int>(
          std::min<double>(ms, static_cast<double>(timeout)));
    }
    struct pollfd pfd;
    pfd.fd = requests_.wake_fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    ::poll(&pfd, 1, timeout);
    if ((pfd.revents & POLLIN) != 0) requests_.drain_wakeups();
  }

  pump_engine();
  finalize();
  replies_.close();
}

void ShardWorker::pump_engine() {
  engine_.advance_to(std::max(bridge_.virtual_now(), engine_.now()));
  dispatch_notifications();
}

void ShardWorker::handle(const ShardRequest& req) {
  switch (req.kind) {
    case ShardRequest::Kind::kSubmit:
      handle_submit(req);
      return;
    case ShardRequest::Kind::kCancel:
      handle_cancel(req);
      return;
    case ShardRequest::Kind::kQuery:
      handle_query(req);
      return;
  }
  SJS_CHECK_MSG(false, "unreachable: unknown ShardRequest kind");
}

void ShardWorker::handle_submit(const ShardRequest& req) {
  ++stats_.submitted;
  Message r;
  r.seq = req.seq;
  // Drain refusal happens at the acceptor (it stops forwarding before
  // closing the channel), so draining is always false here.
  const AdmissionGate::Decision verdict =
      gate_.evaluate(req.workload, req.rel_deadline, req.value,
                     bridge_.virtual_now(), engine_.now(),
                     /*draining=*/false, stats_.in_flight);
  if (verdict.reply == MsgType::kRejected) {
    ++stats_.rejected;
    count(ctr_rejected_);
    r.type = MsgType::kRejected;
    r.code = static_cast<std::uint8_t>(verdict.reason);
    push_reply(req.conn, req.gen, r);
    return;
  }
  if (verdict.reply == MsgType::kShed) {
    ++stats_.shed;
    count(ctr_shed_);
    r.type = MsgType::kShed;
    push_reply(req.conn, req.gen, r);
    return;
  }
  if (!journal_error_.empty()) {
    // A previous append failed; this shard admits nothing more (the plane
    // drains, sjs_serve exits non-zero).
    r.type = MsgType::kError;
    r.code = static_cast<std::uint8_t>(ErrorCode::kJournalFailed);
    push_reply(req.conn, req.gen, r);
    return;
  }
  const Job& job = verdict.job;
  const JobId id = instance_.append_job(job);
  engine_.admit_live(id);
  Route route;
  route.conn = req.conn;
  route.gen = req.gen;
  route.seq = req.seq;
  route.ticket = req.ticket;
  // Per-job bookkeeping: reserve() in run() covers the steady state, growth
  // past the pre-size is amortized doubling.
  util::append(routes_, route);
  util::append(tickets_, req.ticket);
  by_ticket_.put(req.ticket, id);
  SJS_CHECK(routes_.size() == static_cast<std::size_t>(id) + 1);
  ++stats_.in_flight;
  in_flight_peak_ = std::max(in_flight_peak_, stats_.in_flight);
  if (journal_) {
    try {
      journal_->record_admit(instance_.job(id));
    } catch (const std::exception& e) {
      // The admit cannot be made durable, so the client must not see
      // ACCEPTED: withdraw the job and report the failure.
      journal_error_ = e.what();
      routes_[static_cast<std::size_t>(id)].cancelled = true;
      engine_.cancel_live(id);
      r.type = MsgType::kError;
      r.code = static_cast<std::uint8_t>(ErrorCode::kJournalFailed);
      push_reply(req.conn, req.gen, r);
      dispatch_notifications();
      return;
    }
  }
  ++stats_.accepted;
  stats_.admitted_value += job.value;
  count(kCtrAccepted);
  r.type = MsgType::kAccepted;
  r.ticket = req.ticket;
  r.a = job.release;
  push_reply(req.conn, req.gen, r);
}

void ShardWorker::handle_cancel(const ShardRequest& req) {
  Message r;
  r.seq = req.seq;
  r.ticket = req.ticket;
  const JobId id = by_ticket_.get(req.ticket, kNoJob);
  const bool known =
      id != kNoJob && !routes_[static_cast<std::size_t>(id)].cancelled;
  if (known && engine_.cancel_live(id)) {
    routes_[static_cast<std::size_t>(id)].cancelled = true;
    ++stats_.cancelled;
    count(ctr_cancelled_);
    if (journal_) {
      try {
        journal_->record_cancel(engine_.now(), id);
      } catch (const std::exception& e) {
        if (journal_error_.empty()) journal_error_ = e.what();
        r.type = MsgType::kError;
        r.code = static_cast<std::uint8_t>(ErrorCode::kJournalFailed);
        push_reply(req.conn, req.gen, r);
        dispatch_notifications();
        return;
      }
    }
    r.type = MsgType::kCancelled;
    push_reply(req.conn, req.gen, r);
    // cancel_live raised a kExpire notification; translate it now so the
    // in-flight count is current before the next admission decision.
    dispatch_notifications();
  } else {
    r.type = MsgType::kCancelFailed;
    push_reply(req.conn, req.gen, r);
  }
}

void ShardWorker::handle_query(const ShardRequest& req) {
  Message r;
  r.type = MsgType::kQueryReply;
  r.seq = req.seq;
  r.ticket = req.ticket;
  const JobId id = by_ticket_.get(req.ticket, kNoJob);
  if (id == kNoJob) {
    r.code = static_cast<std::uint8_t>(JobState::kUnknown);
  } else {
    if (engine_.is_completed(id)) {
      r.code = static_cast<std::uint8_t>(JobState::kCompleted);
    } else if (engine_.is_expired(id)) {
      r.code = static_cast<std::uint8_t>(JobState::kExpired);
    } else if (engine_.running() == id) {
      r.code = static_cast<std::uint8_t>(JobState::kRunning);
      r.a = engine_.remaining(id);
    } else {
      r.code = static_cast<std::uint8_t>(JobState::kQueued);
      r.a = engine_.is_released(id) ? engine_.remaining(id)
                                    : engine_.job(id).workload;
    }
  }
  push_reply(req.conn, req.gen, r);
}

void ShardWorker::dispatch_notifications() {
  // Drained in place (push_reply never re-enters the sink); clear() at the
  // end keeps the buffer's capacity for the next engine pump.
  for (std::size_t i = 0; i < notifications_.size(); ++i) {
    const obs::TraceEvent ev = notifications_[i];
    const auto id = static_cast<std::size_t>(ev.job);
    if (id >= routes_.size()) continue;
    Route& route = routes_[id];
    Message note;
    note.ticket = route.ticket;
    note.seq = route.seq;
    if (ev.kind == obs::TraceKind::kComplete) {
      ++stats_.completed;
      stats_.completed_value += ev.a;
      count(ctr_completed_);
      note.type = MsgType::kCompleted;
      note.a = ev.a;
      note.b = ev.time;
    } else {
      if (route.cancelled) {
        // The client already got kCancelled; the forced expiry is internal.
        --stats_.in_flight;
        continue;
      }
      ++stats_.expired;
      count(ctr_expired_);
      note.type = MsgType::kExpired;
      note.b = ev.time;
    }
    --stats_.in_flight;
    // Ship unconditionally; the acceptor drops it if the connection died.
    push_reply(route.conn, route.gen, note);
  }
  notifications_.clear();
}

void ShardWorker::finalize() {
  result_ = engine_.finish_live();
  result_.scheduler_name = config_.scheduler_name;
  dispatch_notifications();
  if (journal_) {
    save_outcomes_csv(result_, instance_.jobs(),
                      (std::filesystem::path(journal_->dir()) /
                       "outcomes.csv").string());
    try {
      journal_->close();
    } catch (const std::exception& e) {
      if (journal_error_.empty()) journal_error_ = e.what();
    }
  }
  stats_.virtual_now = engine_.now();
  if (shard_) {
    shard_->set_gauge(gauge_in_flight_peak_,
                      static_cast<double>(in_flight_peak_));
  }
}

void ShardWorker::push_reply(int conn, std::uint64_t gen, const Message& msg) {
  ShardReply rep;
  rep.conn = conn;
  rep.gen = gen;
  rep.msg = msg;
  // The reply channel is sized for the steady state; it can only fill when
  // the acceptor stops draining for a while. Waiting here is deadlock-free:
  // the acceptor never blocks on our request channel (a full channel sheds),
  // so it always returns to its poll loop and consumes replies.
  while (true) {
    const conc::SendStatus st = replies_.try_send(rep);
    if (st == conc::SendStatus::kOk) return;
    SJS_CHECK_MSG(st != conc::SendStatus::kClosed,
                  "shard reply channel closed while serving");
    ::poll(nullptr, 0, 1);
  }
}

void ShardWorker::count(const std::string& name, double delta) {
  if (shard_) shard_->count(name, delta);
}

}  // namespace sjs::serve
