#include "serve/protocol.hpp"

#include <bit>
#include <cstring>

namespace sjs::serve {

namespace {

// Raw-pointer little-endian writers: the encoder targets a caller-owned
// buffer of at least kMaxFrame bytes, so encoding never allocates.
inline std::uint8_t* put_u8(std::uint8_t* out, std::uint8_t v) {
  *out++ = v;
  return out;
}

inline std::uint8_t* put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    *out++ = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return out;
}

inline std::uint8_t* put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *out++ = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return out;
}

inline std::uint8_t* put_f64(std::uint8_t* out, double v) {
  return put_u64(out, std::bit_cast<std::uint64_t>(v));
}

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    return pos_ < size_ ? data_[pos_++] : 0;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8 && pos_ < size_; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t body_size(MsgType type) {
  switch (type) {
    case MsgType::kSubmit:
      return 24;  // workload, rel_deadline, value
    case MsgType::kCancel:
    case MsgType::kQuery:
    case MsgType::kCancelled:
    case MsgType::kCancelFailed:
      return 8;  // ticket
    case MsgType::kStats:
    case MsgType::kDrain:
    case MsgType::kShed:
    case MsgType::kDraining:
      return 0;
    case MsgType::kAccepted:
      return 16;  // ticket, release
    case MsgType::kRejected:
    case MsgType::kError:
      return 1;  // code
    case MsgType::kCompleted:
      return 24;  // ticket, value, time
    case MsgType::kExpired:
      return 16;  // ticket, time
    case MsgType::kQueryReply:
      return 17;  // ticket, state, remaining
    case MsgType::kStatsReply:
      return 8 * 8 + 3 * 8;  // eight u64 counters + three f64
  }
  return static_cast<std::size_t>(-1);
}

std::size_t encode_frame_into(std::uint8_t* out, const Message& m) {
  const std::uint8_t* const start = out;
  const std::size_t payload = kMinPayload + body_size(m.type);
  out = put_u32(out, static_cast<std::uint32_t>(payload));
  out = put_u8(out, static_cast<std::uint8_t>(m.type));
  out = put_u64(out, m.seq);
  switch (m.type) {
    case MsgType::kSubmit:
      out = put_f64(out, m.a);
      out = put_f64(out, m.b);
      out = put_f64(out, m.c);
      break;
    case MsgType::kCancel:
    case MsgType::kQuery:
    case MsgType::kCancelled:
    case MsgType::kCancelFailed:
      out = put_u64(out, m.ticket);
      break;
    case MsgType::kStats:
    case MsgType::kDrain:
    case MsgType::kShed:
    case MsgType::kDraining:
      break;
    case MsgType::kAccepted:
      out = put_u64(out, m.ticket);
      out = put_f64(out, m.a);
      break;
    case MsgType::kRejected:
    case MsgType::kError:
      out = put_u8(out, m.code);
      break;
    case MsgType::kCompleted:
      out = put_u64(out, m.ticket);
      out = put_f64(out, m.a);
      out = put_f64(out, m.b);
      break;
    case MsgType::kExpired:
      out = put_u64(out, m.ticket);
      out = put_f64(out, m.b);
      break;
    case MsgType::kQueryReply:
      out = put_u64(out, m.ticket);
      out = put_u8(out, m.code);
      out = put_f64(out, m.a);
      break;
    case MsgType::kStatsReply:
      out = put_u64(out, m.stats.submitted);
      out = put_u64(out, m.stats.accepted);
      out = put_u64(out, m.stats.rejected);
      out = put_u64(out, m.stats.shed);
      out = put_u64(out, m.stats.completed);
      out = put_u64(out, m.stats.expired);
      out = put_u64(out, m.stats.cancelled);
      out = put_u64(out, m.stats.in_flight);
      out = put_f64(out, m.stats.virtual_now);
      out = put_f64(out, m.stats.admitted_value);
      out = put_f64(out, m.stats.completed_value);
      break;
  }
  return static_cast<std::size_t>(out - start);
}

void append_frame(std::vector<std::uint8_t>& out, const Message& m) {
  std::uint8_t buf[kMaxFrame];
  const std::size_t n = encode_frame_into(buf, m);
  // insert() grows to the send-buffer high-water; per-message steady state
  // reuses retained capacity.
  out.insert(out.end(), buf, buf + n);
}

std::vector<std::uint8_t> encode_frame(const Message& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kMaxFrame);
  append_frame(out, m);
  return out;
}

bool decode_payload(const std::uint8_t* data, std::size_t size, Message& out,
                    std::string& error) {
  if (size < kMinPayload) {
    error = "payload shorter than type+seq";
    return false;
  }
  const auto type = static_cast<MsgType>(data[0]);
  const std::size_t body = body_size(type);
  if (body == static_cast<std::size_t>(-1)) {
    error = "unknown message type " + std::to_string(data[0]);
    return false;
  }
  if (size != kMinPayload + body) {
    error = "bad length for type " + std::to_string(data[0]) + ": " +
            std::to_string(size) + " != " +
            std::to_string(kMinPayload + body);
    return false;
  }
  out = Message{};
  out.type = type;
  Reader r(data + 1, size - 1);
  out.seq = r.u64();
  switch (type) {
    case MsgType::kSubmit:
      out.a = r.f64();
      out.b = r.f64();
      out.c = r.f64();
      break;
    case MsgType::kCancel:
    case MsgType::kQuery:
    case MsgType::kCancelled:
    case MsgType::kCancelFailed:
      out.ticket = r.u64();
      break;
    case MsgType::kStats:
    case MsgType::kDrain:
    case MsgType::kShed:
    case MsgType::kDraining:
      break;
    case MsgType::kAccepted:
      out.ticket = r.u64();
      out.a = r.f64();
      break;
    case MsgType::kRejected:
    case MsgType::kError:
      out.code = r.u8();
      break;
    case MsgType::kCompleted:
      out.ticket = r.u64();
      out.a = r.f64();
      out.b = r.f64();
      break;
    case MsgType::kExpired:
      out.ticket = r.u64();
      out.b = r.f64();
      break;
    case MsgType::kQueryReply:
      out.ticket = r.u64();
      out.code = r.u8();
      out.a = r.f64();
      break;
    case MsgType::kStatsReply:
      out.stats.submitted = r.u64();
      out.stats.accepted = r.u64();
      out.stats.rejected = r.u64();
      out.stats.shed = r.u64();
      out.stats.completed = r.u64();
      out.stats.expired = r.u64();
      out.stats.cancelled = r.u64();
      out.stats.in_flight = r.u64();
      out.stats.virtual_now = r.f64();
      out.stats.admitted_value = r.f64();
      out.stats.completed_value = r.f64();
      break;
  }
  return true;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (broken_) return;
  buf_.insert(buf_.end(), data, data + size);
}

FrameDecoder::Status FrameDecoder::next(Message& out) {
  if (broken_) return Status::kMalformed;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeader) return Status::kNeedMore;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len < kMinPayload || len > kMaxPayload) {
    broken_ = true;
    error_ = "frame length " + std::to_string(len) + " outside [" +
             std::to_string(kMinPayload) + ", " + std::to_string(kMaxPayload) +
             "]";
    return Status::kMalformed;
  }
  if (avail < kFrameHeader + len) return Status::kNeedMore;
  if (!decode_payload(buf_.data() + pos_ + kFrameHeader, len, out, error_)) {
    broken_ = true;
    return Status::kMalformed;
  }
  pos_ += kFrameHeader + len;
  // Reclaim the consumed prefix once it dominates the buffer, keeping the
  // decoder O(live bytes) over arbitrarily long sessions.
  if (pos_ > 4096 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return Status::kOk;
}

}  // namespace sjs::serve
