// Append-only admission journal, laid out as an instance bundle.
//
// The journal directory IS a loadable bundle (jobs.csv + capacity.csv +
// band.csv, the src/jobs/bundle.hpp layout): capacity and band are written
// once at session start, and every admitted job appends one row to jobs.csv
// the moment it is accepted — %.17g doubles, so the admission stamps
// round-trip bit-exactly. Replay is therefore just
//
//   sjs_sim --bundle=<journal dir> --scheduler=<meta.csv scheduler>
//
// and must reproduce the live session's completion set and captured value
// exactly (the engine's live mode guarantees it; asserted in
// tests/serve_test.cpp and gated in CI by scripts/serve_smoke.sh).
//
// Extra session files (ignored by the bundle loader):
//   meta.csv     key,value — scheduler name, accel, admission flag
//   cancels.csv  time,ticket — client cancellations. A session with cancels
//                is NOT replayable through sjs_sim (the replay input has no
//                cancel channel); readers must check cancel_count.
//   outcomes.csv written at drain by sjs_serve (sim::save_outcomes_csv) so
//                the replay gate can diff live vs replayed outcomes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/job.hpp"
#include "util/csv.hpp"

namespace sjs::serve {

class Journal {
 public:
  struct Meta {
    std::string scheduler;
    double accel = 1.0;
    bool admission_check = true;
  };

  /// Creates the journal directory (if missing), writes capacity.csv,
  /// band.csv, and meta.csv, and opens jobs.csv / cancels.csv for appending.
  /// Throws std::runtime_error on I/O failure.
  Journal(const std::string& dir, const cap::CapacityProfile& capacity,
          double c_lo, double c_hi, const Meta& meta);

  /// Appends one admitted job and flushes the row (an admission the client
  /// saw ACCEPTED for must be on disk before the next poll). Throws
  /// std::runtime_error if the write or flush fails (short write, ENOSPC):
  /// a silently dropped row would break the replay-parity guarantee, so the
  /// session must fail loudly instead.
  void record_admit(const Job& job);

  /// Appends one cancellation. Throws on write failure like record_admit.
  void record_cancel(double time, JobId job);

  /// Flushes and closes the writers (the destructor also flushes, but only
  /// close() reports failure). Throws if the final flush fails.
  void close();

  const std::string& dir() const { return dir_; }
  std::uint64_t admit_count() const { return admit_rows_; }
  std::uint64_t cancel_count() const { return cancel_rows_; }

 private:
  std::string dir_;
  std::unique_ptr<CsvWriter> jobs_csv_;
  std::unique_ptr<CsvWriter> cancels_csv_;
  std::uint64_t admit_rows_ = 0;
  std::uint64_t cancel_rows_ = 0;
};

/// meta.csv as a key→value map. Throws on missing/malformed file.
std::map<std::string, std::string> read_journal_meta(const std::string& dir);

/// time,ticket rows of cancels.csv (empty when the file is absent).
std::vector<std::pair<double, JobId>> read_journal_cancels(
    const std::string& dir);

}  // namespace sjs::serve
