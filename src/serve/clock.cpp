// The single sanctioned wall-clock read site outside util/ (see clock.hpp
// and docs/serving.md). Everything downstream of SystemClock must go through
// the Clock interface so it can be replaced by FakeClock in tests.
#include "serve/clock.hpp"

#include <chrono>

namespace sjs::serve {

double SystemClock::now() {
  // sjs-lint: allow(banned-time): serve::SystemClock is the audited wall-clock bridge for real-time serving; all other code takes Clock& (docs/serving.md)
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(t).count();
}

}  // namespace sjs::serve
