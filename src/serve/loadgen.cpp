#include "serve/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace sjs::serve {

namespace {

struct PendingSubmit {
  double sent_at = 0.0;   // wall clock reading at submit
  double value = 0.0;
};

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("loadgen: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("loadgen: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

}  // namespace

LoadReport run_load(const LoadGenConfig& config, Clock& clock) {
  const int fd = connect_loopback(config.port);
  Rng rng(config.seed);
  LoadReport report;
  FrameDecoder decoder;
  std::vector<std::uint8_t> obuf;   // unsent output, opos = sent prefix
  std::size_t opos = 0;
  std::map<std::uint64_t, PendingSubmit> by_seq;     // awaiting ack
  std::map<std::uint64_t, PendingSubmit> by_ticket;  // awaiting completion
  std::vector<double> ack_lat;
  std::vector<double> done_lat;

  const double start = clock.now();
  const double submit_end = start + config.duration_s;
  const double hard_end = submit_end + config.linger_s;
  double next_submit = start + rng.exponential_rate(config.arrival_rate);
  std::uint64_t next_seq = 1;
  bool drain_sent = false;
  bool closed = false;

  auto queue_frame = [&](const Message& m) {
    append_frame(obuf, m);
  };

  while (!closed) {
    const double now = clock.now();
    if (now >= hard_end) break;
    // Open-loop pacing: emit every submission whose arrival instant has
    // passed, regardless of what the server answered so far.
    while (!drain_sent && now >= next_submit && next_submit < submit_end) {
      Message m;
      m.type = MsgType::kSubmit;
      m.seq = next_seq++;
      m.a = rng.exponential_mean(config.mean_workload);
      const double slack = rng.uniform(config.slack_min, config.slack_max);
      m.b = slack * m.a / config.c_lo;
      m.c = m.a * rng.uniform(1.0, config.k);  // density in [1, k]
      queue_frame(m);
      by_seq[m.seq] = PendingSubmit{now, m.c};
      ++report.submitted;
      report.submitted_value += m.c;
      next_submit += rng.exponential_rate(config.arrival_rate);
    }
    if (config.send_drain && !drain_sent && now >= submit_end) {
      Message m;
      m.type = MsgType::kDrain;
      m.seq = next_seq++;
      queue_frame(m);
      drain_sent = true;
    }

    // Poll until the next submission is due (or briefly, when idle).
    double wait_s = config.send_drain || drain_sent
                        ? 0.01
                        : std::max(0.0, next_submit - now);
    if (next_submit >= submit_end && !config.send_drain) wait_s = 0.01;
    wait_s = std::min(wait_s, std::max(0.0, hard_end - now));
    pollfd pfd{fd, POLLIN, 0};
    if (opos < obuf.size()) pfd.events |= POLLOUT;
    const int timeout_ms =
        static_cast<int>(std::ceil(std::min(wait_s, 0.05) * 1000.0));
    ::poll(&pfd, 1, timeout_ms);

    if (pfd.revents & POLLOUT) {
      while (opos < obuf.size()) {
        const ssize_t n = ::send(fd, obuf.data() + opos, obuf.size() - opos,
                                 MSG_NOSIGNAL);
        if (n > 0) {
          opos += static_cast<std::size_t>(n);
        } else {
          if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
              errno != EINTR) {
            closed = true;
          }
          break;
        }
      }
      if (opos == obuf.size()) {
        obuf.clear();
        opos = 0;
      }
    }
    if (pfd.revents & (POLLIN | POLLHUP | POLLERR)) {
      std::uint8_t rbuf[4096];
      while (true) {
        const ssize_t n = ::recv(fd, rbuf, sizeof(rbuf), 0);
        if (n > 0) {
          decoder.feed(rbuf, static_cast<std::size_t>(n));
          if (n < static_cast<ssize_t>(sizeof(rbuf))) break;
        } else if (n == 0) {
          closed = true;
          break;
        } else {
          if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
            closed = true;
          }
          break;
        }
      }
      Message m;
      while (decoder.next(m) == FrameDecoder::Status::kOk) {
        const double t = clock.now();
        switch (m.type) {
          case MsgType::kAccepted: {
            const auto it = by_seq.find(m.seq);
            if (it != by_seq.end()) {
              ack_lat.push_back(t - it->second.sent_at);
              report.admitted_value += it->second.value;
              by_ticket[m.ticket] = it->second;
              by_seq.erase(it);
            }
            ++report.accepted;
            break;
          }
          case MsgType::kRejected: {
            const auto it = by_seq.find(m.seq);
            if (it != by_seq.end()) {
              ack_lat.push_back(t - it->second.sent_at);
              by_seq.erase(it);
            }
            ++report.rejected;
            break;
          }
          case MsgType::kShed: {
            const auto it = by_seq.find(m.seq);
            if (it != by_seq.end()) {
              ack_lat.push_back(t - it->second.sent_at);
              by_seq.erase(it);
            }
            ++report.shed;
            break;
          }
          case MsgType::kCompleted: {
            const auto it = by_ticket.find(m.ticket);
            if (it != by_ticket.end()) {
              done_lat.push_back(t - it->second.sent_at);
              by_ticket.erase(it);
            }
            ++report.completed;
            report.completed_value += m.a;
            break;
          }
          case MsgType::kExpired: {
            by_ticket.erase(m.ticket);
            ++report.expired;
            break;
          }
          case MsgType::kDraining:
            report.drain_acked = true;
            break;
          default:
            break;  // kQueryReply/kStatsReply/kCancelled: not used here
        }
      }
    }
    // After a drain ack, the server resolves everything immediately; once no
    // completions are outstanding there is nothing left to wait for.
    if (report.drain_acked && by_ticket.empty() && opos == obuf.size()) break;
  }
  ::close(fd);
  report.ack_latency = summarize(ack_lat);
  report.completion_latency = summarize(done_lat);
  return report;
}

std::string LoadReport::to_string() const {
  std::ostringstream os;
  os << "submitted " << submitted << " (value " << submitted_value << "), "
     << "accepted " << accepted << ", rejected " << rejected << ", shed "
     << shed << ", completed " << completed << ", expired " << expired
     << "\ncaptured value: " << completed_value << "/" << admitted_value
     << " admitted (" << captured_fraction() * 100.0 << "%)";
  if (ack_latency.count > 0) {
    os << "\nack latency (ms): p50 " << ack_latency.median * 1e3 << ", p95 "
       << ack_latency.p95 * 1e3 << ", p99 " << ack_latency.p99 * 1e3
       << ", max " << ack_latency.max * 1e3;
  }
  if (completion_latency.count > 0) {
    os << "\ncompletion latency (ms): p50 " << completion_latency.median * 1e3
       << ", p95 " << completion_latency.p95 * 1e3 << ", p99 "
       << completion_latency.p99 * 1e3;
  }
  return os.str();
}

}  // namespace sjs::serve
