#include "serve/loadgen.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "serve/protocol.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace sjs::serve {

namespace {

struct PendingSubmit {
  double sent_at = 0.0;   // wall clock reading at submit
  double value = 0.0;
};

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("loadgen: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("loadgen: connect to 127.0.0.1:" +
                             std::to_string(port) + " failed: " +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Everything the generator tracks for one socket. The generator stays
/// single-threaded: one poll set covers every connection, so adding
/// connections exercises the SERVER's concurrency, not the client's.
struct Conn {
  int fd = -1;
  bool closed = false;
  FrameDecoder decoder;
  std::vector<std::uint8_t> obuf;  // unsent output, opos = sent prefix
  std::size_t opos = 0;
  std::map<std::uint64_t, PendingSubmit> by_seq;     // awaiting ack
  std::map<std::uint64_t, PendingSubmit> by_ticket;  // awaiting completion
  std::vector<double> ack_lat;
  std::vector<double> done_lat;
  ConnReport report;
};

}  // namespace

LoadReport run_load(const LoadGenConfig& config, Clock& clock) {
  SJS_CHECK_MSG(config.connections >= 1, "loadgen needs >= 1 connection");
  const auto nconn = static_cast<std::size_t>(config.connections);
  std::vector<Conn> conns(nconn);
  for (Conn& c : conns) c.fd = connect_loopback(config.port);

  Rng rng(config.seed);
  LoadReport report;

  const double start = clock.now();
  const double submit_end = start + config.duration_s;
  const double hard_end = submit_end + config.linger_s;
  double next_submit = start + rng.exponential_rate(config.arrival_rate);
  std::uint64_t next_seq = 1;
  std::uint64_t submit_index = 0;  // round-robin cursor over connections
  bool drain_sent = false;

  const auto open_count = [&] {
    std::size_t n = 0;
    for (const Conn& c : conns) n += c.closed ? 0 : 1;
    return n;
  };
  const auto settled = [&] {
    // drain acked, every completion resolved, every queued byte flushed.
    if (!report.drain_acked) return false;
    for (const Conn& c : conns) {
      if (c.closed) continue;
      if (!c.by_ticket.empty() || c.opos != c.obuf.size()) return false;
    }
    return true;
  };

  while (open_count() > 0) {
    const double now = clock.now();
    if (now >= hard_end) break;
    // Open-loop pacing: emit every submission whose arrival instant has
    // passed, regardless of what the server answered so far. Submissions
    // round-robin over the connections.
    while (!drain_sent && now >= next_submit && next_submit < submit_end) {
      Conn& c = conns[submit_index++ % nconn];
      Message m;
      m.type = MsgType::kSubmit;
      m.seq = next_seq++;
      m.a = rng.exponential_mean(config.mean_workload);
      const double slack = rng.uniform(config.slack_min, config.slack_max);
      m.b = slack * m.a / config.c_lo;
      m.c = m.a * rng.uniform(1.0, config.k);  // density in [1, k]
      next_submit += rng.exponential_rate(config.arrival_rate);
      if (c.closed) continue;  // its share of arrivals is simply lost
      append_frame(c.obuf, m);
      c.by_seq[m.seq] = PendingSubmit{now, m.c};
      ++c.report.submitted;
      report.submitted_value += m.c;
    }
    if (config.send_drain && !drain_sent && now >= submit_end) {
      Message m;
      m.type = MsgType::kDrain;
      m.seq = next_seq++;
      for (Conn& c : conns) {  // first open connection carries the DRAIN
        if (c.closed) continue;
        append_frame(c.obuf, m);
        break;
      }
      drain_sent = true;
    }

    // Poll until the next submission is due (or briefly, when idle).
    double wait_s = config.send_drain || drain_sent
                        ? 0.01
                        : std::max(0.0, next_submit - now);
    if (next_submit >= submit_end && !config.send_drain) wait_s = 0.01;
    wait_s = std::min(wait_s, std::max(0.0, hard_end - now));
    const int timeout_ms =
        static_cast<int>(std::ceil(std::min(wait_s, 0.05) * 1000.0));
    std::vector<pollfd> pfds;
    std::vector<std::size_t> pfd_conn;
    pfds.reserve(nconn);
    for (std::size_t i = 0; i < nconn; ++i) {
      Conn& c = conns[i];
      if (c.closed) continue;
      pollfd pfd{c.fd, POLLIN, 0};
      if (c.opos < c.obuf.size()) pfd.events |= POLLOUT;
      pfds.push_back(pfd);
      pfd_conn.push_back(i);
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);

    for (std::size_t p = 0; p < pfds.size(); ++p) {
      Conn& c = conns[pfd_conn[p]];
      const short revents = pfds[p].revents;
      if (revents & POLLOUT) {
        while (c.opos < c.obuf.size()) {
          const ssize_t n = ::send(c.fd, c.obuf.data() + c.opos,
                                   c.obuf.size() - c.opos, MSG_NOSIGNAL);
          if (n > 0) {
            c.opos += static_cast<std::size_t>(n);
          } else {
            if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != EINTR) {
              c.closed = true;
            }
            break;
          }
        }
        if (c.opos == c.obuf.size()) {
          c.obuf.clear();
          c.opos = 0;
        }
      }
      if (revents & (POLLIN | POLLHUP | POLLERR)) {
        std::uint8_t rbuf[4096];
        while (true) {
          const ssize_t n = ::recv(c.fd, rbuf, sizeof(rbuf), 0);
          if (n > 0) {
            c.decoder.feed(rbuf, static_cast<std::size_t>(n));
            if (n < static_cast<ssize_t>(sizeof(rbuf))) break;
          } else if (n == 0) {
            c.closed = true;
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
              c.closed = true;
            }
            break;
          }
        }
        Message m;
        while (c.decoder.next(m) == FrameDecoder::Status::kOk) {
          const double t = clock.now();
          switch (m.type) {
            case MsgType::kAccepted: {
              const auto it = c.by_seq.find(m.seq);
              if (it != c.by_seq.end()) {
                c.ack_lat.push_back(t - it->second.sent_at);
                report.admitted_value += it->second.value;
                c.by_ticket[m.ticket] = it->second;
                c.by_seq.erase(it);
              }
              ++c.report.accepted;
              break;
            }
            case MsgType::kRejected: {
              const auto it = c.by_seq.find(m.seq);
              if (it != c.by_seq.end()) {
                c.ack_lat.push_back(t - it->second.sent_at);
                c.by_seq.erase(it);
              }
              ++c.report.rejected;
              break;
            }
            case MsgType::kShed: {
              const auto it = c.by_seq.find(m.seq);
              if (it != c.by_seq.end()) {
                c.ack_lat.push_back(t - it->second.sent_at);
                c.by_seq.erase(it);
              }
              ++c.report.shed;
              break;
            }
            case MsgType::kCompleted: {
              const auto it = c.by_ticket.find(m.ticket);
              if (it != c.by_ticket.end()) {
                c.done_lat.push_back(t - it->second.sent_at);
                c.by_ticket.erase(it);
              }
              ++c.report.completed;
              report.completed_value += m.a;
              break;
            }
            case MsgType::kExpired: {
              c.by_ticket.erase(m.ticket);
              ++c.report.expired;
              break;
            }
            case MsgType::kDraining:
              report.drain_acked = true;
              break;
            default:
              break;  // kQueryReply/kStatsReply/kCancelled: not used here
          }
        }
      }
    }
    // After a drain ack, the server resolves everything immediately; once no
    // completions are outstanding there is nothing left to wait for.
    if (settled()) break;
  }
  for (Conn& c : conns) ::close(c.fd);

  std::vector<std::vector<double>> ack_samples;
  std::vector<std::vector<double>> done_samples;
  for (Conn& c : conns) {
    c.report.ack_latency = summarize(c.ack_lat);
    c.report.completion_latency = summarize(c.done_lat);
    report.submitted += c.report.submitted;
    report.accepted += c.report.accepted;
    report.rejected += c.report.rejected;
    report.shed += c.report.shed;
    report.completed += c.report.completed;
    report.expired += c.report.expired;
    ack_samples.push_back(std::move(c.ack_lat));
    done_samples.push_back(std::move(c.done_lat));
    report.connections.push_back(std::move(c.report));
  }
  report.ack_latency = merge_latency_samples(ack_samples);
  report.completion_latency = merge_latency_samples(done_samples);
  return report;
}

Summary merge_latency_samples(
    const std::vector<std::vector<double>>& per_conn) {
  std::size_t total = 0;
  for (const auto& samples : per_conn) total += samples.size();
  std::vector<double> pooled;
  pooled.reserve(total);
  for (const auto& samples : per_conn) {
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  return summarize(std::move(pooled));
}

namespace {

void append_latencies(std::ostringstream& os, const char* label,
                      const Summary& s) {
  if (s.count == 0) return;
  os << "\n" << label << " (ms): p50 " << s.median * 1e3 << ", p95 "
     << s.p95 * 1e3 << ", p99 " << s.p99 * 1e3 << ", max " << s.max * 1e3;
}

}  // namespace

std::string LoadReport::to_string() const {
  std::ostringstream os;
  os << "submitted " << submitted << " (value " << submitted_value << "), "
     << "accepted " << accepted << ", rejected " << rejected << ", shed "
     << shed << ", completed " << completed << ", expired " << expired
     << "\ncaptured value: " << completed_value << "/" << admitted_value
     << " admitted (" << captured_fraction() * 100.0 << "%)";
  if (ack_latency.count > 0) {
    os << "\nack latency (ms): p50 " << ack_latency.median * 1e3 << ", p95 "
       << ack_latency.p95 * 1e3 << ", p99 " << ack_latency.p99 * 1e3
       << ", max " << ack_latency.max * 1e3;
  }
  if (completion_latency.count > 0) {
    os << "\ncompletion latency (ms): p50 " << completion_latency.median * 1e3
       << ", p95 " << completion_latency.p95 * 1e3 << ", p99 "
       << completion_latency.p99 * 1e3;
  }
  if (connections.size() > 1) {
    for (std::size_t i = 0; i < connections.size(); ++i) {
      const ConnReport& c = connections[i];
      os << "\nconn " << i << ": submitted " << c.submitted << ", accepted "
         << c.accepted << ", rejected " << c.rejected << ", shed " << c.shed
         << ", completed " << c.completed << ", expired " << c.expired;
      append_latencies(os, "  ack latency", c.ack_latency);
      append_latencies(os, "  completion latency", c.completion_latency);
    }
  }
  return os.str();
}

}  // namespace sjs::serve
