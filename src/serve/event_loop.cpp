#include "serve/event_loop.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/vec.hpp"

namespace sjs::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

EventLoop::EventLoop(Handler& handler) : handler_(&handler) {}

EventLoop::~EventLoop() { shutdown(); }

int EventLoop::listen_loopback(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(listen_fd_, 64) < 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname");
  }
  set_nonblocking(listen_fd_);
  port_ = ntohs(addr.sin_port);
  return port_;
}

void EventLoop::watch(int fd) { util::append(watched_, fd); }

bool EventLoop::send(int conn, const std::uint8_t* data, std::size_t size) {
  if (!conn_open(conn)) return false;
  Conn& c = conns_[static_cast<std::size_t>(conn)];
  if (c.wbuf.size() - c.wpos + size > max_write_buffer_) {
    drop_conn(conn, /*overflow=*/true);
    return false;
  }
  c.wbuf.insert(c.wbuf.end(), data, data + size);
  if (c.wbuf.size() - c.wpos > write_buffer_peak_) {
    write_buffer_peak_ = c.wbuf.size() - c.wpos;
  }
  return true;
}

void EventLoop::close_conn(int conn) {
  if (!conn_open(conn)) return;
  // Best-effort flush so a queued farewell (e.g. the kError reply that
  // precedes a protocol close) reaches the peer; loopback kernel buffers
  // make this reliable in practice. flush_conn may itself drop the conn.
  flush_conn(conn);
  if (conn_open(conn)) drop_conn(conn, /*overflow=*/false);
}

bool EventLoop::conn_open(int conn) const {
  return conn >= 0 && static_cast<std::size_t>(conn) < conns_.size() &&
         conns_[static_cast<std::size_t>(conn)].open;
}

std::size_t EventLoop::open_conn_count() const {
  std::size_t n = 0;
  for (const Conn& c : conns_) n += c.open ? 1 : 0;
  return n;
}

bool EventLoop::writes_pending() const {
  for (const Conn& c : conns_) {
    if (c.open && c.wpos < c.wbuf.size()) return true;
  }
  return false;
}

void EventLoop::stop_listening() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void EventLoop::shutdown() {
  stop_listening();
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].open) {
      ::close(conns_[i].fd);
      conns_[i].fd = -1;
      conns_[i].wbuf.clear();
      conns_[i].wpos = 0;
      conns_[i].open = false;
    }
  }
  watched_.clear();
}

int EventLoop::poll_once(int timeout_ms) {
  // Member scratch: clear() keeps capacity, so rebuilding the poll set each
  // cycle stops allocating once the fd high-water is reached. fds[i] belongs
  // to conn ids[i] (or a special slot).
  std::vector<pollfd>& fds = fds_scratch_;
  std::vector<int>& ids = ids_scratch_;
  fds.clear();
  ids.clear();
  if (listen_fd_ >= 0) {
    util::append(fds, pollfd{listen_fd_, POLLIN, 0});
    util::append(ids, -1);
  }
  for (int w : watched_) {
    util::append(fds, pollfd{w, POLLIN, 0});
    util::append(ids, -2);
  }
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (!conns_[i].open) continue;
    short ev = POLLIN;
    if (conns_[i].wpos < conns_[i].wbuf.size()) ev |= POLLOUT;
    util::append(fds, pollfd{conns_[i].fd, ev, 0});
    util::append(ids, static_cast<int>(i));
  }
  const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
  if (n <= 0) return 0;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (ids[i] == -1) {
      accept_new();
    } else if (ids[i] == -2) {
      handler_->on_wake(fds[i].fd);
    } else {
      const int conn = ids[i];
      // The conn may have been dropped by an earlier upcall this cycle.
      if (!conn_open(conn) ||
          conns_[static_cast<std::size_t>(conn)].fd != fds[i].fd) {
        continue;
      }
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Read whatever the peer flushed before closing, then drop.
        read_conn(conn);
        if (conn_open(conn)) drop_conn(conn, /*overflow=*/false);
        continue;
      }
      if (fds[i].revents & POLLIN) read_conn(conn);
      if (conn_open(conn) && (fds[i].revents & POLLOUT)) flush_conn(conn);
    }
  }
  return n;
}

void EventLoop::accept_new() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    int conn = -1;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (!conns_[i].open) {
        conn = static_cast<int>(i);
        break;
      }
    }
    if (conn < 0) {
      conn = static_cast<int>(conns_.size());
      // Per-connection accept path, not per-request steady state; slots are
      // reused after close, so growth stops at the concurrency high-water.
      util::append_emplace(conns_);
    }
    Conn& c = conns_[static_cast<std::size_t>(conn)];
    c.fd = fd;
    c.wbuf.clear();
    c.wpos = 0;
    c.open = true;
    handler_->on_accept(conn);
  }
}

void EventLoop::read_conn(int conn) {
  std::uint8_t buf[4096];
  while (conn_open(conn)) {
    const ssize_t n =
        ::recv(conns_[static_cast<std::size_t>(conn)].fd, buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_in_ += static_cast<std::uint64_t>(n);
      handler_->on_data(conn, buf, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
    } else if (n == 0) {
      drop_conn(conn, /*overflow=*/false);
      break;
    } else {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        drop_conn(conn, /*overflow=*/false);
      }
      break;
    }
  }
}

void EventLoop::flush_conn(int conn) {
  Conn& c = conns_[static_cast<std::size_t>(conn)];
  while (c.wpos < c.wbuf.size()) {
    const ssize_t n = ::send(c.fd, c.wbuf.data() + c.wpos,
                             c.wbuf.size() - c.wpos, MSG_NOSIGNAL);
    if (n > 0) {
      c.wpos += static_cast<std::size_t>(n);
      bytes_out_ += static_cast<std::uint64_t>(n);
    } else {
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        drop_conn(conn, /*overflow=*/false);
      }
      return;
    }
  }
  if (c.wpos == c.wbuf.size()) {
    c.wbuf.clear();
    c.wpos = 0;
  }
}

void EventLoop::drop_conn(int conn, bool overflow) {
  Conn& c = conns_[static_cast<std::size_t>(conn)];
  ::close(c.fd);
  // Field-wise reset, not `c = Conn{}`: the write buffer keeps its capacity
  // for the next connection that reuses this slot.
  c.fd = -1;
  c.wbuf.clear();
  c.wpos = 0;
  c.open = false;
  handler_->on_close(conn, overflow);
}

}  // namespace sjs::serve
