// ShardedAdmissionServer — the sharded admission plane (docs/serving.md).
//
// One ACCEPTOR thread (the thread calling step()/run()) owns every socket
// and all frame decoding; N SHARD threads (serve/shard_worker.hpp) each own
// a private live-mode engine + scheduler + journal. The two sides meet only
// at bounded conc::Channels:
//
//   acceptor ──ShardRequest──▶ shard k          (bounded MPSC, per shard)
//   shard k  ──ShardReply────▶ acceptor         (per-shard reply channel)
//
// Routing is deterministic: the acceptor assigns each forwarded SUBMIT a
// dense global ticket (0, 1, 2, …) and sends it to shard
// conc::shard_of(ticket, N) — splitmix64 over the ticket, so the placement
// of every job is a pure function of its submission index, replayable from
// the journals alone. CANCEL/QUERY route by the same function of the
// carried ticket. A SUBMIT that cannot be forwarded (request channel full)
// is SHED and consumes NO ticket.
//
// Time: the acceptor reads the injected Clock exactly once at start() and
// hands the same epoch to its own bridge and every shard's, so "virtual
// now" is one global timeline across the plane.
//
// Drain (DRAIN request or watched shutdown fd): the acceptor stops
// listening, refuses further submits, and closes every request channel in
// shard order. Each shard finishes its backlog, journals outcomes, and
// closes its reply channel; the acceptor keeps shipping notifications until
// every reply channel reports drained, then joins the ShardSet (again in
// shard order), flushes client sockets, and shuts down.
//
// Stats/metrics: the acceptor aggregates the plane-wide StatsBody from the
// reply stream (kStats is answered locally, never forwarded), counts the
// plain server.* metric names, and leaves "<name>.shard<k>" breakdowns to
// the shards — a registry snapshot therefore carries both rollup and
// per-shard series without double counting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "conc/shard_set.hpp"
#include "obs/metrics.hpp"
#include "serve/clock.hpp"
#include "serve/event_loop.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/shard_worker.hpp"
#include "sim/scheduler.hpp"

namespace sjs::serve {

class ShardedAdmissionServer final : public EventLoop::Handler {
 public:
  /// Builds one fresh scheduler per shard (schedulers are single-engine by
  /// contract, so they cannot be shared).
  using SchedulerFactory = std::function<std::unique_ptr<sim::Scheduler>()>;

  ShardedAdmissionServer(ServerConfig config, SchedulerFactory make_scheduler,
                         Clock& clock, obs::MetricsRegistry* metrics = nullptr);
  ~ShardedAdmissionServer() override;

  /// Binds the listener, captures the plane epoch, spawns the shards.
  /// Returns the bound port.
  int start();

  /// One acceptor pump: poll sockets and reply channels (at most
  /// `max_wait_ms`), dispatch. Returns false once fully drained.
  bool step(int max_wait_ms = 50);

  /// Serves until drained.
  void run();

  /// Graceful drain: stop accepting, refuse submits, close the request
  /// channels in shard order. step() completes the shutdown.
  void request_drain();

  bool draining() const { return draining_; }
  bool finished() const { return finished_; }

  /// Plane-wide aggregate counters (also the body of STATS replies).
  /// `virtual_now` is the acceptor bridge's reading (the shards' engines
  /// trail it only by their undispatched backlog).
  StatsBody stats();

  int port() const { return loop_.port(); }
  EventLoop& loop() { return loop_; }
  std::size_t shard_count() const { return workers_.size(); }
  /// Shard k's worker. Its result()/instance()/stats() are valid only after
  /// finished().
  const ShardWorker& shard(std::size_t k) const { return *workers_[k]; }
  /// The journal ROOT (shard k writes `<root>/shard<k>`); empty when
  /// journalling is off.
  const std::string& journal_dir() const { return config_.journal_dir; }

  /// Registers `fd` (e.g. a signal self-pipe) with the loop; when readable
  /// the server drains it and initiates a drain.
  void watch_shutdown_fd(int fd);

  // EventLoop::Handler:
  void on_accept(int conn) override;
  void on_data(int conn, const std::uint8_t* data, std::size_t size) override;
  void on_close(int conn, bool overflow) override;
  void on_wake(int fd) override;

 private:
  void handle_message(int conn, const Message& m);
  void handle_submit(int conn, const Message& m);
  /// Routes kCancel/kQuery to the owning shard by ticket.
  void forward_by_ticket(int conn, const Message& m);
  void reply(int conn, const Message& m);
  /// Pops every deliverable reply from every shard and dispatches it.
  void drain_replies();
  void dispatch_reply(const ShardReply& rep);
  bool all_replies_drained() const;
  void count(const char* name, double delta = 1.0);
  void set_gauge(const char* name, double value);

  ServerConfig config_;
  SchedulerFactory make_scheduler_;
  Clock* clock_;
  ClockBridge bridge_;
  EventLoop loop_;
  obs::MetricsRegistry* metrics_;
  obs::MetricsRegistry::Shard* shard_ = nullptr;  ///< cached local() shard

  std::vector<std::unique_ptr<ShardWorker>> workers_;
  conc::ShardSet threads_;

  std::vector<FrameDecoder> decoders_;    // indexed by conn id
  std::vector<std::uint64_t> conn_gens_;  // bumped on close
  std::vector<std::uint32_t> ticket_shard_;  // indexed by global ticket
  std::vector<double> ticket_value_;         // submit value, for stats
  std::vector<int> shutdown_fds_;

  bool started_ = false;
  bool draining_ = false;
  bool joined_ = false;
  bool finished_ = false;
  int flush_spins_ = 0;

  StatsBody stats_{};
  std::uint64_t in_flight_peak_ = 0;
};

}  // namespace sjs::serve
