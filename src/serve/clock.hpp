// Wall-clock abstraction and the monotonic→virtual time bridge.
//
// The simulation core is wall-clock-free by contract (the banned-time lint
// rule); real-time serving needs exactly one sanctioned read site, and this
// is it: SystemClock (clock.cpp) is the only translation unit outside util/
// allowed to touch a clock, via an audited lint suppression. Everything else
// — the admission server, the load generator, the tests — takes a Clock& so
// the whole serving stack runs deterministically (and time-accelerated)
// under FakeClock.
//
// Clock::now() is *monotonic seconds from an arbitrary epoch*: it never goes
// backwards and carries no calendar meaning. ClockBridge anchors an epoch at
// start() and maps wall seconds to virtual simulation seconds with a
// configurable acceleration factor, so a one-hour simulated session can be
// served in seconds (load tests) or in real time (production).
#pragma once

#include <atomic>

#include "util/logging.hpp"

namespace sjs::serve {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic seconds since an arbitrary fixed epoch. Never decreases.
  virtual double now() = 0;
};

/// The real monotonic clock (CLOCK_MONOTONIC). The single sanctioned
/// wall-clock read site outside util/ — see clock.cpp.
class SystemClock : public Clock {
 public:
  double now() override;
};

/// Manually driven clock for deterministic tests. Starts at 0. now() is
/// safe to call from shard threads while the test driver advances the clock
/// (the sharded admission plane reads one shared FakeClock from N+1
/// threads); advance()/set() stay single-writer.
class FakeClock : public Clock {
 public:
  double now() override { return now_.load(std::memory_order_acquire); }

  void advance(double dt) {
    SJS_CHECK_MSG(dt >= 0.0, "FakeClock cannot go backwards");
    now_.store(now_.load(std::memory_order_relaxed) + dt,
               std::memory_order_release);
  }
  void set(double t) {
    SJS_CHECK_MSG(t >= now_.load(std::memory_order_relaxed),
                  "FakeClock cannot go backwards");
    now_.store(t, std::memory_order_release);
  }

 private:
  // sjs-lint: allow(raw-concurrency): single-writer test clock read by N shard threads; a channel round-trip per now() would serialise shards on the driver
  std::atomic<double> now_{0.0};
};

/// Maps wall time onto virtual simulation time:
///
///   virtual = (wall - epoch) * accel
///
/// `accel` is virtual seconds per wall second (1 = real time; 60 = one
/// simulated minute per wall second). The epoch is captured by start(), so
/// virtual time is 0 at session start and strictly tied to the monotonic
/// clock thereafter.
class ClockBridge {
 public:
  ClockBridge(Clock& clock, double accel = 1.0) : clock_(&clock),
                                                  accel_(accel) {
    SJS_CHECK_MSG(accel > 0.0, "acceleration must be positive");
  }

  /// Anchors virtual 0 at the clock's current reading.
  void start() {
    epoch_ = clock_->now();
    started_ = true;
  }

  /// Anchors virtual 0 at an externally captured epoch. The sharded plane
  /// reads the clock ONCE at server start and hands the same epoch to the
  /// acceptor's and every shard's bridge, so "virtual now" is one global
  /// timeline instead of N slightly-skewed ones.
  void start_at(double epoch) {
    epoch_ = epoch;
    started_ = true;
  }

  bool started() const { return started_; }

  /// Current virtual time (>= 0, non-decreasing).
  double virtual_now() {
    SJS_CHECK_MSG(started_, "ClockBridge::virtual_now before start()");
    return (clock_->now() - epoch_) * accel_;
  }

  /// Wall seconds from now until virtual time `v` is reached (<= 0 when v is
  /// already past). The event loop's poll-timeout computation.
  double wall_until(double v) {
    SJS_CHECK_MSG(started_, "ClockBridge::wall_until before start()");
    return v / accel_ - (clock_->now() - epoch_);
  }

  double accel() const { return accel_; }

 private:
  Clock* clock_;
  double accel_;
  double epoch_ = 0.0;
  bool started_ = false;
};

}  // namespace sjs::serve
