// Wire protocol for the real-time admission service (docs/serving.md).
//
// Length-prefixed binary frames over a byte stream:
//
//   u32  payload length L (little-endian, 9 <= L <= kMaxPayload)
//   u8   message type
//   u64  seq — client-chosen request id, echoed in the direct response;
//        job notifications (COMPLETED/EXPIRED) echo the SUBMIT's seq
//   ...  fixed type-specific body (table in docs/serving.md)
//
// All integers are little-endian; doubles are IEEE-754 bit patterns in
// little-endian byte order (bit-exact round-trip — admission stamps written
// by the server survive the wire unchanged). Every message has a fixed body
// size; a frame whose length does not match its type exactly is malformed,
// as is an unknown type or a length outside [kMinPayload, kMaxPayload] —
// malformed input kills the connection, never the server.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sjs::serve {

enum class MsgType : std::uint8_t {
  // Client → server.
  kSubmit = 1,   ///< f64 workload, f64 rel_deadline, f64 value
  kCancel = 2,   ///< u64 ticket
  kQuery = 3,    ///< u64 ticket
  kStats = 4,    ///< (empty)
  kDrain = 5,    ///< (empty)
  // Server → client.
  kAccepted = 10,     ///< u64 ticket, f64 release (virtual admission stamp)
  kRejected = 11,     ///< u8 reason (RejectReason)
  kShed = 12,         ///< (empty) — backpressure: over the in-flight limit
  kCompleted = 13,    ///< u64 ticket, f64 value, f64 completion time
  kExpired = 14,      ///< u64 ticket, f64 expiry time
  kCancelled = 15,    ///< u64 ticket
  kCancelFailed = 16, ///< u64 ticket (unknown / already terminal)
  kQueryReply = 17,   ///< u64 ticket, u8 state (JobState), f64 remaining
  kStatsReply = 18,   ///< StatsBody
  kDraining = 19,     ///< (empty) — drain acknowledged / submit refused
  kError = 20,        ///< u8 code (ErrorCode); connection closes after
};

enum class RejectReason : std::uint8_t {
  kInvalid = 1,       ///< non-finite / non-positive workload or deadline
  kInadmissible = 2,  ///< fails Thm. 3(3): d − r < p / c_lo
  kDraining = 3,      ///< server is draining
};

enum class JobState : std::uint8_t {
  kUnknown = 0,
  kQueued = 1,    ///< admitted, not currently on the processor
  kRunning = 2,
  kCompleted = 3,
  kExpired = 4,
};

enum class ErrorCode : std::uint8_t {
  kMalformedFrame = 1,
  kNotARequest = 2,    ///< client sent a server→client message type
  kJournalFailed = 3,  ///< journal append failed; session is draining
};

/// Per-connection server counters carried by kStatsReply.
struct StatsBody {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t in_flight = 0;
  double virtual_now = 0.0;
  double admitted_value = 0.0;
  double completed_value = 0.0;
};

/// One decoded message. Field use depends on `type` (see MsgType); unused
/// fields are zero. Flat rather than a variant: every body is tiny and the
/// hot path (SUBMIT) stays allocation-free.
struct Message {
  MsgType type = MsgType::kError;
  std::uint64_t seq = 0;
  std::uint64_t ticket = 0;
  double a = 0.0;  ///< workload / release / value / remaining
  double b = 0.0;  ///< rel_deadline / completion or expiry time
  double c = 0.0;  ///< value (SUBMIT)
  std::uint8_t code = 0;  ///< RejectReason / JobState / ErrorCode
  StatsBody stats;        ///< kStatsReply only
};

/// Payload size bounds. kMaxPayload comfortably fits the largest body
/// (kStatsReply) while rejecting garbage lengths before buffering.
inline constexpr std::size_t kMinPayload = 9;    // type + seq
inline constexpr std::size_t kMaxPayload = 128;
inline constexpr std::size_t kFrameHeader = 4;   // the u32 length prefix
/// Upper bound on one encoded frame — the size for stack reply buffers.
inline constexpr std::size_t kMaxFrame = kFrameHeader + kMaxPayload;

/// Body size (after type+seq) for a message type; SIZE_MAX for unknown.
std::size_t body_size(MsgType type);

/// Serializes one message (length prefix + payload) into `out`, which must
/// hold at least kMaxFrame bytes. Returns the number of bytes written. This
/// is the zero-allocation encoder the serve hot path uses with a stack
/// buffer; the vector overloads below layer on top of it.
std::size_t encode_frame_into(std::uint8_t* out, const Message& m);

/// Serializes one message, appending the length prefix and payload to `out`.
void append_frame(std::vector<std::uint8_t>& out, const Message& m);

/// Convenience: one message as a fresh frame.
std::vector<std::uint8_t> encode_frame(const Message& m);

/// Decodes one payload (without the length prefix). Returns false and sets
/// `error` on malformed input: unknown type, or size != 9 + body_size.
bool decode_payload(const std::uint8_t* data, std::size_t size, Message& out,
                    std::string& error);

/// Incremental frame splitter over a received byte stream. Feed bytes as
/// they arrive; next() yields complete messages. Malformed input is sticky:
/// after kMalformed the decoder refuses further frames (the connection is
/// dead anyway).
class FrameDecoder {
 public:
  enum class Status { kOk, kNeedMore, kMalformed };

  void feed(const std::uint8_t* data, std::size_t size);
  Status next(Message& out);
  const std::string& error() const { return error_; }

  /// Returns the decoder to its initial state while keeping the byte
  /// buffer's capacity — connection-slot reuse must not re-grow to the
  /// previous connection's high-water from scratch.
  void reset() {
    buf_.clear();
    pos_ = 0;
    broken_ = false;
    error_.clear();
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;   // consumed prefix of buf_
  bool broken_ = false;
  std::string error_;
};

}  // namespace sjs::serve
