#include "serve/journal.hpp"

#include <filesystem>
#include <stdexcept>

#include "capacity/trace_io.hpp"

namespace sjs::serve {

namespace fs = std::filesystem;

Journal::Journal(const std::string& dir, const cap::CapacityProfile& capacity,
                 double c_lo, double c_hi, const Meta& meta)
    : dir_(dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create journal directory " + dir + ": " +
                             ec.message());
  }
  cap::save_trace(capacity, (fs::path(dir) / "capacity.csv").string());
  {
    CsvWriter band((fs::path(dir) / "band.csv").string());
    band.write_row({"c_lo", "c_hi"});
    band.write_row_numeric({c_lo, c_hi});
  }
  {
    CsvWriter m((fs::path(dir) / "meta.csv").string());
    m.write_row({"key", "value"});
    m.write_row({"scheduler", meta.scheduler});
    m.write_row({"accel", format_double(meta.accel)});
    m.write_row({"admission_check", meta.admission_check ? "1" : "0"});
  }
  jobs_csv_ = std::make_unique<CsvWriter>((fs::path(dir) / "jobs.csv").string());
  jobs_csv_->write_row({"id", "release", "workload", "deadline", "value"});
  jobs_csv_->flush();
  cancels_csv_ =
      std::make_unique<CsvWriter>((fs::path(dir) / "cancels.csv").string());
  cancels_csv_->write_row({"time", "ticket"});
  cancels_csv_->flush();
  if (!jobs_csv_->ok() || !cancels_csv_->ok()) {
    throw std::runtime_error("journal header write failed in " + dir);
  }
}

void Journal::record_admit(const Job& job) {
  // Same row layout and %.17g formatting as Instance::save_jobs, so the
  // bundle loader reconstructs the admitted stream bit-exactly.
  const double row[] = {static_cast<double>(job.id), job.release, job.workload,
                        job.deadline, job.value};
  jobs_csv_->write_row_numeric(row, 5);
  jobs_csv_->flush();
  // An ofstream swallows short writes and ENOSPC into its failbit; a row the
  // client was promised durable must not vanish silently, so surface the
  // stream state as the append's result.
  if (!jobs_csv_->ok()) {
    throw std::runtime_error("journal append failed (jobs.csv in " + dir_ +
                             "): disk full or I/O error");
  }
  ++admit_rows_;
}

void Journal::record_cancel(double time, JobId job) {
  const double row[] = {time, static_cast<double>(job)};
  cancels_csv_->write_row_numeric(row, 2);
  cancels_csv_->flush();
  if (!cancels_csv_->ok()) {
    throw std::runtime_error("journal append failed (cancels.csv in " + dir_ +
                             "): disk full or I/O error");
  }
  ++cancel_rows_;
}

void Journal::close() {
  if (jobs_csv_) jobs_csv_->flush();
  if (cancels_csv_) cancels_csv_->flush();
  const bool failed = (jobs_csv_ && !jobs_csv_->ok()) ||
                      (cancels_csv_ && !cancels_csv_->ok());
  jobs_csv_.reset();
  cancels_csv_.reset();
  if (failed) {
    throw std::runtime_error("journal close failed in " + dir_ +
                             ": disk full or I/O error");
  }
}

std::map<std::string, std::string> read_journal_meta(const std::string& dir) {
  const auto rows = read_csv((fs::path(dir) / "meta.csv").string());
  std::map<std::string, std::string> out;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 2) {
      throw std::runtime_error("malformed meta.csv row in " + dir);
    }
    out[rows[i][0]] = rows[i][1];
  }
  return out;
}

std::vector<std::pair<double, JobId>> read_journal_cancels(
    const std::string& dir) {
  const auto path = (fs::path(dir) / "cancels.csv").string();
  std::vector<std::pair<double, JobId>> out;
  if (!fs::exists(path)) return out;
  const auto rows = read_csv(path);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != 2) {
      throw std::runtime_error("malformed cancels.csv row in " + dir);
    }
    out.emplace_back(std::stod(rows[i][0]),
                     static_cast<JobId>(std::stol(rows[i][1])));
  }
  return out;
}

}  // namespace sjs::serve
