#include "serve/sharded_server.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>

#include "conc/shard_hash.hpp"
#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::serve {

namespace {

// Plain server.* names — counted exactly once, by the acceptor (shards
// publish only the ".shard<k>"-suffixed breakdowns; see shard_worker.cpp).
constexpr const char* kCtrSubmitted = "server.jobs_submitted";
constexpr const char* kCtrAccepted = "server.jobs_accepted";
constexpr const char* kCtrRejected = "server.jobs_rejected";
constexpr const char* kCtrShed = "server.jobs_shed";
constexpr const char* kCtrCompleted = "server.jobs_completed";
constexpr const char* kCtrExpired = "server.jobs_expired";
constexpr const char* kCtrCancelled = "server.jobs_cancelled";
constexpr const char* kCtrConnections = "server.connections";
constexpr const char* kCtrMalformed = "server.malformed_frames";
constexpr const char* kCtrOverflows = "server.write_overflows";
constexpr const char* kGaugeInFlightPeak = "server.in_flight_peak";
constexpr const char* kGaugeWriteBufPeak = "server.write_buffer_peak";

}  // namespace

ShardedAdmissionServer::ShardedAdmissionServer(ServerConfig config,
                                               SchedulerFactory make_scheduler,
                                               Clock& clock,
                                               obs::MetricsRegistry* metrics)
    : config_(std::move(config)),
      make_scheduler_(std::move(make_scheduler)),
      clock_(&clock),
      bridge_(clock, config_.accel),
      loop_(*this),
      metrics_(metrics) {
  SJS_CHECK_MSG(config_.shards >= 1, "sharded server needs >= 1 shard");
  SJS_CHECK_MSG(static_cast<bool>(make_scheduler_),
                "sharded server needs a scheduler factory");
  if (metrics_) shard_ = &metrics_->local();
  loop_.set_max_write_buffer(config_.max_write_buffer);
}

ShardedAdmissionServer::~ShardedAdmissionServer() {
  // A still-serving plane must not hang the destructor: close the inputs so
  // every shard body exits, and keep consuming replies so no shard can wait
  // on a full reply channel meanwhile. ShardSet's destructor then joins.
  for (auto& w : workers_) w->requests().close();
  while (!all_replies_drained()) {
    drain_replies();
    ::poll(nullptr, 0, 1);
  }
}

int ShardedAdmissionServer::start() {
  SJS_CHECK_MSG(!started_, "ShardedAdmissionServer::start called twice");
  workers_.reserve(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    workers_.push_back(std::make_unique<ShardWorker>(
        config_, k, make_scheduler_(), *clock_, metrics_));
    loop_.watch(workers_[k]->replies().wake_fd());
  }
  const int port = loop_.listen_loopback(config_.port);
  // Pre-size the acceptor's per-ticket tables for a full plane's worth of
  // in-flight jobs; growth past this total is amortized, not per-request.
  const std::size_t plane_in_flight =
      static_cast<std::size_t>(config_.max_in_flight) * config_.shards;
  ticket_shard_.reserve(plane_in_flight);
  ticket_value_.reserve(plane_in_flight);
  // ONE clock read anchors the whole plane: the acceptor's bridge and every
  // shard's bridge share this epoch, so virtual time is a single timeline.
  const double epoch = clock_->now();
  bridge_.start_at(epoch);
  threads_.spawn(config_.shards,
                 [this, epoch](std::size_t k) { workers_[k]->run(epoch); });
  started_ = true;
  return port;
}

void ShardedAdmissionServer::watch_shutdown_fd(int fd) {
  util::append(shutdown_fds_, fd);
  loop_.watch(fd);
}

bool ShardedAdmissionServer::step(int max_wait_ms) {
  SJS_CHECK_MSG(started_, "ShardedAdmissionServer::step before start()");
  if (finished_) return false;
  drain_replies();
  if (!joined_) {
    loop_.poll_once(draining_ ? std::min(max_wait_ms, 10) : max_wait_ms);
    drain_replies();
    if (draining_ && all_replies_drained()) {
      // Every shard has finalised and closed its reply channel, and every
      // reply has been shipped or dropped — joining cannot block.
      threads_.join();
      joined_ = true;
      for (const auto& w : workers_) {
        stats_.virtual_now =
            std::max(stats_.virtual_now, w->stats().virtual_now);
      }
    }
  }
  if (joined_) {
    // Flush queued notifications/replies, then shut everything down. A peer
    // that stops reading cannot wedge the drain: bounded spins, then drop.
    if (loop_.writes_pending() && loop_.open_conn_count() > 0 &&
        flush_spins_ < 200) {
      ++flush_spins_;
      loop_.poll_once(std::min(max_wait_ms, 10));
    } else {
      set_gauge(kGaugeInFlightPeak, static_cast<double>(in_flight_peak_));
      set_gauge(kGaugeWriteBufPeak,
                static_cast<double>(loop_.write_buffer_peak()));
      loop_.shutdown();
      finished_ = true;
    }
  }
  return !finished_;
}

void ShardedAdmissionServer::run() {
  while (step()) {
  }
}

void ShardedAdmissionServer::request_drain() {
  if (draining_) return;
  draining_ = true;
  loop_.stop_listening();
  // Close the request channels in shard order — the deterministic half of
  // the drain contract (ShardSet::join is the other half).
  for (auto& w : workers_) w->requests().close();
}

StatsBody ShardedAdmissionServer::stats() {
  StatsBody s = stats_;
  if (!joined_) s.virtual_now = bridge_.virtual_now();
  return s;
}

void ShardedAdmissionServer::drain_replies() {
  for (auto& w : workers_) {
    auto& ch = w->replies();
    ch.drain_wakeups();
    ShardReply rep;
    while (ch.try_pop(rep) == conc::PopStatus::kOk) {
      dispatch_reply(rep);
    }
  }
}

bool ShardedAdmissionServer::all_replies_drained() const {
  for (const auto& w : workers_) {
    if (!w->replies().drained()) return false;
  }
  return true;
}

void ShardedAdmissionServer::dispatch_reply(const ShardReply& rep) {
  const Message& m = rep.msg;
  switch (m.type) {
    case MsgType::kAccepted:
      ++stats_.accepted;
      stats_.admitted_value += ticket_value_[m.ticket];
      ++stats_.in_flight;
      in_flight_peak_ = std::max(in_flight_peak_, stats_.in_flight);
      count(kCtrAccepted);
      break;
    case MsgType::kRejected:
      ++stats_.rejected;
      count(kCtrRejected);
      break;
    case MsgType::kShed:  // per-shard max_in_flight backpressure
      ++stats_.shed;
      count(kCtrShed);
      break;
    case MsgType::kCompleted:
      ++stats_.completed;
      stats_.completed_value += m.a;
      --stats_.in_flight;
      count(kCtrCompleted);
      break;
    case MsgType::kExpired:
      ++stats_.expired;
      --stats_.in_flight;
      count(kCtrExpired);
      break;
    case MsgType::kCancelled:
      // The shard suppresses the cancellation's internal expiry, so this is
      // the only in-flight decrement the acceptor will see for the job.
      ++stats_.cancelled;
      --stats_.in_flight;
      count(kCtrCancelled);
      break;
    default:  // kCancelFailed, kQueryReply: no aggregate effect
      break;
  }
  if (rep.conn >= 0 &&
      static_cast<std::size_t>(rep.conn) < conn_gens_.size() &&
      loop_.conn_open(rep.conn) &&
      conn_gens_[static_cast<std::size_t>(rep.conn)] == rep.gen) {
    reply(rep.conn, m);
  }
}

void ShardedAdmissionServer::on_accept(int conn) {
  // Per-connection slot setup on accept, not per-request steady state; the
  // tables grow to the concurrent-connection high-water. reset() (not
  // re-assignment) keeps the recycled decoder's buffer capacity.
  const auto i = static_cast<std::size_t>(conn);
  util::grow_to_index(decoders_, i);
  util::grow_to_index_fill(conn_gens_, i, std::uint64_t{0});
  decoders_[i].reset();
  count(kCtrConnections);
}

void ShardedAdmissionServer::on_close(int conn, bool overflow) {
  ++conn_gens_[static_cast<std::size_t>(conn)];
  if (overflow) count(kCtrOverflows);
}

void ShardedAdmissionServer::on_wake(int fd) {
  for (const int sfd : shutdown_fds_) {
    if (fd == sfd) {
      char buf[64];
      while (::read(fd, buf, sizeof(buf)) > 0) {
      }
      request_drain();
      return;
    }
  }
  // A shard reply wake: re-arm it now (poll is level-triggered, so leaving
  // the fd readable would spin); the pops happen in step()'s drain_replies.
  for (auto& w : workers_) {
    if (w->replies().wake_fd() == fd) {
      w->replies().drain_wakeups();
      return;
    }
  }
}

void ShardedAdmissionServer::on_data(int conn, const std::uint8_t* data,
                                     std::size_t size) {
  FrameDecoder& dec = decoders_[static_cast<std::size_t>(conn)];
  dec.feed(data, size);
  Message m;
  while (true) {
    const FrameDecoder::Status st = dec.next(m);
    if (st == FrameDecoder::Status::kNeedMore) return;
    if (st == FrameDecoder::Status::kMalformed) {
      count(kCtrMalformed);
      Message err;
      err.type = MsgType::kError;
      err.code = static_cast<std::uint8_t>(ErrorCode::kMalformedFrame);
      reply(conn, err);
      loop_.close_conn(conn);
      return;
    }
    handle_message(conn, m);
    if (!loop_.conn_open(conn)) return;
  }
}

void ShardedAdmissionServer::handle_message(int conn, const Message& m) {
  switch (m.type) {
    case MsgType::kSubmit:
      handle_submit(conn, m);
      return;
    case MsgType::kCancel:
    case MsgType::kQuery:
      forward_by_ticket(conn, m);
      return;
    case MsgType::kStats: {
      Message r;
      r.type = MsgType::kStatsReply;
      r.seq = m.seq;
      r.stats = stats();
      reply(conn, r);
      return;
    }
    case MsgType::kDrain: {
      Message r;
      r.type = MsgType::kDraining;
      r.seq = m.seq;
      reply(conn, r);
      request_drain();
      return;
    }
    default: {
      Message err;
      err.type = MsgType::kError;
      err.seq = m.seq;
      err.code = static_cast<std::uint8_t>(ErrorCode::kNotARequest);
      reply(conn, err);
      loop_.close_conn(conn);
      return;
    }
  }
}

void ShardedAdmissionServer::handle_submit(int conn, const Message& m) {
  ++stats_.submitted;
  count(kCtrSubmitted);
  Message r;
  r.seq = m.seq;
  if (draining_) {
    ++stats_.rejected;
    count(kCtrRejected);
    r.type = MsgType::kRejected;
    r.code = static_cast<std::uint8_t>(RejectReason::kDraining);
    reply(conn, r);
    return;
  }
  // The next dense ticket decides the shard; the two-phase send means a
  // full channel sheds WITHOUT consuming the ticket, keeping the
  // ticket→shard map a pure function of the forwarded-submission index.
  const std::uint64_t ticket = ticket_shard_.size();
  const std::size_t k = conc::shard_of(ticket, workers_.size());
  auto& ch = workers_[k]->requests();
  conc::Channel<ShardRequest>::Reservation res;
  if (ch.reserve(res) != conc::SendStatus::kOk) {  // kFull (or drain race)
    ++stats_.shed;
    count(kCtrShed);
    r.type = MsgType::kShed;
    reply(conn, r);
    return;
  }
  ShardRequest req;
  req.kind = ShardRequest::Kind::kSubmit;
  req.conn = conn;
  req.gen = conn_gens_[static_cast<std::size_t>(conn)];
  req.seq = m.seq;
  req.ticket = ticket;
  req.workload = m.a;
  req.rel_deadline = m.b;
  req.value = m.c;
  ch.commit(res, req);
  // Growth-to-high-water: reserve() at start() covers the steady state.
  util::append(ticket_shard_, static_cast<std::uint32_t>(k));
  util::append(ticket_value_, m.c);
}

void ShardedAdmissionServer::forward_by_ticket(int conn, const Message& m) {
  const bool known = m.ticket < ticket_shard_.size();
  bool forwarded = false;
  if (known) {
    auto& ch = workers_[ticket_shard_[m.ticket]]->requests();
    ShardRequest req;
    req.kind = m.type == MsgType::kCancel ? ShardRequest::Kind::kCancel
                                          : ShardRequest::Kind::kQuery;
    req.conn = conn;
    req.gen = conn_gens_[static_cast<std::size_t>(conn)];
    req.seq = m.seq;
    req.ticket = m.ticket;
    forwarded = ch.try_send(req) == conc::SendStatus::kOk;
  }
  if (forwarded) return;
  // Unknown ticket, full channel, or draining: answer locally — a cancel
  // honestly fails, a query reads as unknown.
  Message r;
  r.seq = m.seq;
  r.ticket = m.ticket;
  if (m.type == MsgType::kCancel) {
    r.type = MsgType::kCancelFailed;
  } else {
    r.type = MsgType::kQueryReply;
    r.code = static_cast<std::uint8_t>(JobState::kUnknown);
  }
  reply(conn, r);
}

void ShardedAdmissionServer::reply(int conn, const Message& m) {
  // Stack-encoded frame: the per-reply path allocates nothing (the loop's
  // send buffer retains its capacity between requests).
  std::uint8_t frame[kMaxFrame];
  const std::size_t n = encode_frame_into(frame, m);
  loop_.send(conn, frame, n);
}

void ShardedAdmissionServer::count(const char* name, double delta) {
  if (shard_) shard_->count(name, delta);
}

void ShardedAdmissionServer::set_gauge(const char* name, double value) {
  if (shard_) shard_->set_gauge(name, value);
}

}  // namespace sjs::serve
