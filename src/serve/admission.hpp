// AdmissionGate — the per-engine admission decision procedure, factored out
// of AdmissionServer so the single-threaded server and every shard worker of
// the sharded plane (serve/shard_worker.hpp) run the IDENTICAL sequence:
//
//   draining              → REJECTED(draining)
//   in_flight >= limit    → SHED                  (backpressure)
//   [stamp consumed here — even an invalid submit advances the chain]
//   invalid p/d_rel/v     → REJECTED(invalid)
//   d − r < p / c_lo      → REJECTED(inadmissible)    [Thm. 3(3)]
//   otherwise             → ACCEPTED with the stamped Job
//
// The gate owns the strictly-increasing admission-stamp chain
// (max(virtual_now, engine_now), nextafter on collision) that the journal
// replay contract depends on; one gate per engine, used from that engine's
// thread only. Byte-identity between the N=1 sharded server and the
// single-threaded server (tests/sharded_serve_test.cpp) holds because both
// call this one implementation.
#pragma once

#include <cstdint>

#include "jobs/job.hpp"
#include "serve/protocol.hpp"

namespace sjs::serve {

class AdmissionGate {
 public:
  AdmissionGate(double c_lo, bool admission_check,
                std::uint64_t max_in_flight)
      : c_lo_(c_lo),
        admission_check_(admission_check),
        max_in_flight_(max_in_flight) {}

  struct Decision {
    MsgType reply = MsgType::kRejected;  ///< kAccepted / kRejected / kShed
    RejectReason reason = RejectReason::kInvalid;  ///< when kRejected
    Job job;  ///< release-stamped; meaningful only when kAccepted
  };

  /// One submit through the gate. `virtual_now`/`engine_now` are the
  /// caller's clock-bridge and engine readings at decision time.
  Decision evaluate(double workload, double rel_deadline, double value,
                    double virtual_now, double engine_now, bool draining,
                    std::uint64_t in_flight);

  std::uint64_t max_in_flight() const { return max_in_flight_; }

 private:
  /// Strictly-increasing virtual admission stamp.
  double stamp(double virtual_now, double engine_now);

  double c_lo_;
  bool admission_check_;
  std::uint64_t max_in_flight_;
  double last_stamp_ = -1.0;
};

}  // namespace sjs::serve
