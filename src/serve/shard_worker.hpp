// ShardWorker — one engine shard of the sharded admission plane.
//
// Each shard is the single-threaded AdmissionServer core with the socket
// layer cut off: a private Instance + live-mode sim::Engine + scheduler +
// AdmissionGate + ClockBridge + append-only Journal, owned exclusively by
// one thread. The acceptor (serve/sharded_server.hpp) feeds it decoded
// requests through a bounded conc::Channel<ShardRequest> and reads fully
// formed protocol replies back from a conc::Channel<ShardReply>; the shard
// never touches a socket and the acceptor never touches an engine, so the
// only shared state in the whole plane is the two channels.
//
// Identity contract: a shard runs the IDENTICAL admission sequence as
// AdmissionServer (both call AdmissionGate::evaluate, stamps consumed in
// the same places), journals to its own bundle directory
// (`<journal>/shard<k>`), and its journal replays bit-exactly through
// `sjs_sim --bundle=<journal>/shard<k>` — per shard, independently.
//
// Tickets: the acceptor assigns dense global tickets and routes by
// conc::shard_of(ticket, n). The shard maps global tickets to its dense
// local JobIds (the journal speaks local ids, keeping each shard bundle
// self-contained); every reply and notification carries the GLOBAL ticket.
//
// Lifecycle: run() serves until the request channel drains (the acceptor
// closes it on DRAIN/SIGTERM), then finalises — Engine::finish_live,
// final notifications, outcomes.csv, journal close — and closes the reply
// channel. The acceptor joins the thread only after the reply channel
// reports drained, so result()/instance()/stats() are safe to read
// post-join without any further synchronisation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "conc/channel.hpp"
#include "jobs/instance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/journal.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "util/flat_map.hpp"
#include "util/vec.hpp"

namespace sjs::serve {

/// One decoded request forwarded from the acceptor to a shard. `conn`,
/// `gen` and `seq` are opaque routing state echoed back in replies; the
/// shard interprets only `kind`, `ticket` and the payload doubles.
struct ShardRequest {
  enum class Kind : std::uint8_t { kSubmit = 1, kCancel = 2, kQuery = 3 };
  Kind kind = Kind::kSubmit;
  int conn = -1;
  std::uint64_t gen = 0;
  std::uint64_t seq = 0;
  std::uint64_t ticket = 0;   ///< global ticket (submit: acceptor-assigned)
  double workload = 0.0;      ///< kSubmit: p
  double rel_deadline = 0.0;  ///< kSubmit: d − r
  double value = 0.0;         ///< kSubmit: v
};

/// A fully formed protocol message plus its connection route. The acceptor
/// checks conn liveness/generation at send time (the shard cannot know).
struct ShardReply {
  int conn = -1;
  std::uint64_t gen = 0;
  Message msg;
};

class ShardWorker {
 public:
  /// `config.journal_dir`, when set, is the PLANE's journal root; shard k
  /// journals to `<root>/shard<k>`. The clock is shared across the plane;
  /// run() anchors this shard's bridge at the epoch captured once by the
  /// acceptor. `metrics` may be nullptr.
  ShardWorker(const ServerConfig& config, std::size_t shard_index,
              std::unique_ptr<sim::Scheduler> scheduler, Clock& clock,
              obs::MetricsRegistry* metrics);
  ~ShardWorker();

  conc::Channel<ShardRequest>& requests() { return requests_; }
  conc::Channel<ShardReply>& replies() { return replies_; }

  /// Thread body: serves until the request channel drains, finalises, then
  /// closes the reply channel. `epoch` is the plane-wide clock reading.
  void run(double epoch);

  // Safe to read only after the owning thread has been joined:
  const sim::SimResult& result() const { return result_; }
  const Instance& instance() const { return instance_; }
  const std::string& journal_dir() const;
  /// Non-empty once a journal append failed on this shard. The failing
  /// request (and every later submit) was answered ERROR(kJournalFailed);
  /// callers should exit non-zero after the drain.
  const std::string& journal_error() const { return journal_error_; }
  const StatsBody& stats() const { return stats_; }
  /// Global ticket for each local JobId (index = local id).
  const std::vector<std::uint64_t>& tickets() const { return tickets_; }

 private:
  /// Where to route a job's COMPLETED/EXPIRED notification (local-id
  /// indexed, global ticket remembered for the wire).
  struct Route {
    int conn = -1;
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;
    std::uint64_t ticket = 0;
    bool cancelled = false;
  };

  /// Captures kComplete/kExpire events raised inside the engine (same shape
  /// as AdmissionServer's sink; per-shard, single-threaded). Drained in
  /// place (index + clear) so the buffer's capacity survives each loop turn;
  /// a move-out take() would hand the capacity away every drain.
  class NotificationSink final : public obs::TraceSink {
   public:
    void record(const obs::TraceEvent& event) override {
      if (event.kind == obs::TraceKind::kComplete ||
          event.kind == obs::TraceKind::kExpire) {
        util::append(pending_, event);
      }
    }
    std::size_t size() const { return pending_.size(); }
    const obs::TraceEvent& operator[](std::size_t i) const {
      return pending_[i];
    }
    void clear() { pending_.clear(); }
    void reserve(std::size_t n) { pending_.reserve(n); }

   private:
    std::vector<obs::TraceEvent> pending_;
  };

  void handle(const ShardRequest& req);
  void handle_submit(const ShardRequest& req);
  void handle_cancel(const ShardRequest& req);
  void handle_query(const ShardRequest& req);
  /// Advances virtual time to the bridge's now and ships notifications.
  void pump_engine();
  void dispatch_notifications();
  void finalize();
  /// Commits a reply, waiting out transient fullness (see .cpp for why this
  /// cannot deadlock).
  void push_reply(int conn, std::uint64_t gen, const Message& msg);
  /// `name` is one of the pre-suffixed ctr_* members below.
  void count(const std::string& name, double delta = 1.0);

  ServerConfig config_;
  std::size_t shard_index_;
  std::unique_ptr<sim::Scheduler> scheduler_;
  Instance instance_;
  sim::Engine engine_;
  AdmissionGate gate_;
  ClockBridge bridge_;
  std::unique_ptr<Journal> journal_;
  std::string journal_error_;  ///< first append failure; see journal_error()
  obs::MetricsRegistry* metrics_;
  /// This THREAD's metrics shard; obtained in run() (the constructor runs on
  /// the spawning thread, whose shard must not be aliased here).
  obs::MetricsRegistry::Shard* shard_ = nullptr;

  NotificationSink notifications_;
  obs::TeeSink tee_;
  std::unique_ptr<obs::TraceMetricsBridge> trace_bridge_;

  conc::Channel<ShardRequest> requests_;
  conc::Channel<ShardReply> replies_;

  std::vector<Route> routes_;           // indexed by local JobId
  util::FlatU64Map by_ticket_;          // global ticket → local JobId
  std::vector<std::uint64_t> tickets_;  // local → global

  // Pre-suffixed ".shard<k>" metric names, built once in the constructor so
  // the steady-state count() path never concatenates strings.
  std::string metric_suffix_;  // ".shard<k>" — per-shard counter labels
  std::string ctr_accepted_;
  std::string ctr_rejected_;
  std::string ctr_shed_;
  std::string ctr_completed_;
  std::string ctr_expired_;
  std::string ctr_cancelled_;
  std::string gauge_in_flight_peak_;
  StatsBody stats_{};
  std::uint64_t in_flight_peak_ = 0;
  sim::SimResult result_;
};

}  // namespace sjs::serve
