// Open-loop Poisson load generator for the admission service (tools/sjs_load).
//
// Open-loop means submissions are paced by the arrival process alone — a
// slow or shedding server does not slow the generator down — which is the
// regime where backpressure behaviour (SHED replies, write-budget drops) is
// actually exercised. Job shapes follow the paper's workload model: i.i.d.
// workloads, deadlines set to a uniform multiple of the minimum feasible
// window p/c_lo, value densities uniform in [1, k] (Sec. V).
//
// Single-threaded and clock-injected like everything in serve/: pacing and
// latency measurement use the provided Clock, never a direct time syscall.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/clock.hpp"
#include "stats/summary.hpp"

namespace sjs::serve {

struct LoadGenConfig {
  int port = 0;
  double duration_s = 2.0;       ///< wall seconds of submission activity
  double linger_s = 2.0;         ///< extra wall seconds to collect notifications
  double arrival_rate = 200.0;   ///< submissions per wall second (Poisson)
  double mean_workload = 0.02;   ///< virtual capacity-seconds (exponential)
  double c_lo = 1.0;             ///< band floor assumed for deadline windows
  double slack_min = 1.05;       ///< window = slack * p / c_lo, slack ~ U[min,max]
  double slack_max = 4.0;
  double k = 7.0;                ///< value density ~ U[1, k]
  std::uint64_t seed = 1;
  bool send_drain = false;       ///< send DRAIN after the last submission
  int connections = 1;           ///< sockets; submissions round-robin over them
};

/// Per-connection slice of a load run (LoadReport::connections).
struct ConnReport {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  Summary ack_latency;
  Summary completion_latency;
};

struct LoadReport {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  double submitted_value = 0.0;
  double admitted_value = 0.0;
  double completed_value = 0.0;
  bool drain_acked = false;

  /// completed / admitted value — the live analogue of Table I's metric.
  double captured_fraction() const {
    return admitted_value > 0.0 ? completed_value / admitted_value : 0.0;
  }

  Summary ack_latency;         ///< wall s, SUBMIT → ACCEPTED/REJECTED/SHED
  Summary completion_latency;  ///< wall s, SUBMIT → COMPLETED
  /// Per-connection breakdown, index = connection number (round-robin
  /// position). Size = LoadGenConfig::connections.
  std::vector<ConnReport> connections;

  std::string to_string() const;
};

/// Merges per-connection latency samples into the pooled Summary the merged
/// report carries: quantiles are recomputed over the union of the raw
/// samples, never averaged across per-connection summaries — averaging a
/// fast connection's p99 with a slow one's understates the tail exactly when
/// the skew matters. Exposed so the pooling rule is testable on its own.
Summary merge_latency_samples(const std::vector<std::vector<double>>& per_conn);

/// Opens `config.connections` sockets to 127.0.0.1:port and runs the
/// configured load round-robin over them (still single-threaded: one poll
/// set, so extra connections stress the server, not the client). Throws
/// std::runtime_error when a connection cannot be established.
LoadReport run_load(const LoadGenConfig& config, Clock& clock);

}  // namespace sjs::serve
