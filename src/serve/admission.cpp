#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sjs::serve {

double AdmissionGate::stamp(double virtual_now, double engine_now) {
  double t = std::max(virtual_now, engine_now);
  if (t <= last_stamp_) {
    t = std::nextafter(last_stamp_, std::numeric_limits<double>::infinity());
  }
  last_stamp_ = t;
  return t;
}

AdmissionGate::Decision AdmissionGate::evaluate(
    double workload, double rel_deadline, double value, double virtual_now,
    double engine_now, bool draining, std::uint64_t in_flight) {
  Decision d;
  if (draining) {
    d.reply = MsgType::kRejected;
    d.reason = RejectReason::kDraining;
    return d;
  }
  if (in_flight >= max_in_flight_) {
    d.reply = MsgType::kShed;
    return d;
  }
  // The stamp is consumed before validation (an invalid submit still
  // advances the chain) — this matches the pre-sharding AdmissionServer
  // byte-for-byte, which the N=1 journal-identity test depends on.
  d.job.release = stamp(virtual_now, engine_now);
  d.job.workload = workload;
  d.job.deadline = d.job.release + rel_deadline;
  d.job.value = value;
  if (!std::isfinite(workload) || !std::isfinite(rel_deadline) ||
      !std::isfinite(value) || !d.job.valid()) {
    d.reply = MsgType::kRejected;
    d.reason = RejectReason::kInvalid;
    return d;
  }
  if (admission_check_ && !d.job.individually_admissible(c_lo_)) {
    d.reply = MsgType::kRejected;
    d.reason = RejectReason::kInadmissible;
    return d;
  }
  d.reply = MsgType::kAccepted;
  return d;
}

}  // namespace sjs::serve
