#include "sim/result.hpp"

#include <cmath>
#include <sstream>

#include "util/csv.hpp"

namespace sjs::sim {

std::vector<double> SimResult::response_times() const {
  std::vector<double> out;
  for (std::size_t i = 0;
       i < completion_times.size() && i < release_times.size(); ++i) {
    if (!std::isnan(completion_times[i])) {
      out.push_back(completion_times[i] - release_times[i]);
    }
  }
  return out;
}

void SimResult::clear() {
  scheduler_name.clear();
  completed_value = 0.0;
  generated_value = 0.0;
  completed_count = 0;
  expired_count = 0;
  outcomes.clear();
  executed_work.clear();
  completion_times.clear();
  release_times.clear();
  value_trace.clear();
  schedule.clear();
  dispatches = 0;
  preemptions = 0;
  events_processed = 0;
  busy_time = 0.0;
  executed_total = 0.0;
  timers_armed = 0;
  timer_slab_peak = 0;
  timer_slab_slots = 0;
  event_heap_peak = 0;
  event_heap_dead_peak = 0;
  heap_compactions = 0;
  timer_cascades = 0;
  timer_cascade_entries = 0;
  timer_bucket_peak = 0;
  queue_peak = 0;
  queue_slots = 0;
  job_slab_peak = 0;
  job_slab_slots = 0;
}

double SimResult::mean_response_time() const {
  const auto responses = response_times();
  if (responses.empty()) return 0.0;
  double total = 0.0;
  for (double r : responses) total += r;
  return total / static_cast<double>(responses.size());
}

std::string SimResult::to_string() const {
  std::ostringstream os;
  os << scheduler_name << ": value " << completed_value << "/"
     << generated_value << " (" << value_fraction() * 100.0 << "%), "
     << completed_count << " completed, " << expired_count << " expired, "
     << preemptions << " preemptions, " << events_processed << " events";
  return os.str();
}

void save_outcomes_csv(const SimResult& result, const std::vector<Job>& jobs,
                       const std::string& path) {
  CsvWriter w(path);
  w.write_row({"id", "outcome", "completion", "value_collected"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const char* outcome = "pending";
    double collected = 0.0;
    std::string completion;
    if (result.outcomes[i] == JobOutcome::kCompleted) {
      outcome = "completed";
      collected = i < jobs.size() ? jobs[i].value : 0.0;
      if (i < result.completion_times.size() &&
          !std::isnan(result.completion_times[i])) {
        completion = format_double(result.completion_times[i]);
      }
    } else if (result.outcomes[i] == JobOutcome::kExpired) {
      outcome = "expired";
    }
    w.write_row({std::to_string(i), outcome, completion,
                 format_double(collected)});
  }
}

}  // namespace sjs::sim
