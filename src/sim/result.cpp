#include "sim/result.hpp"

#include <cmath>
#include <sstream>

namespace sjs::sim {

std::vector<double> SimResult::response_times() const {
  std::vector<double> out;
  for (std::size_t i = 0;
       i < completion_times.size() && i < release_times.size(); ++i) {
    if (!std::isnan(completion_times[i])) {
      out.push_back(completion_times[i] - release_times[i]);
    }
  }
  return out;
}

double SimResult::mean_response_time() const {
  const auto responses = response_times();
  if (responses.empty()) return 0.0;
  double total = 0.0;
  for (double r : responses) total += r;
  return total / static_cast<double>(responses.size());
}

std::string SimResult::to_string() const {
  std::ostringstream os;
  os << scheduler_name << ": value " << completed_value << "/"
     << generated_value << " (" << value_fraction() * 100.0 << "%), "
     << completed_count << " completed, " << expired_count << " expired, "
     << preemptions << " preemptions, " << events_processed << " events";
  return os.str();
}

}  // namespace sjs::sim
