#include "sim/reference.hpp"

#include <algorithm>
#include <limits>

#include "util/logging.hpp"
#include "util/fp.hpp"

namespace sjs::sim {

ReferenceResult reference_edf_simulate(const Instance& instance, double dt) {
  SJS_CHECK_MSG(dt > 0.0, "step must be positive");
  const auto& jobs = instance.jobs();
  const auto& capacity = instance.capacity();

  ReferenceResult result;
  result.outcomes.assign(jobs.size(), JobOutcome::kPending);
  std::vector<double> remaining(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    remaining[i] = jobs[i].workload;
  }

  const double end = instance.max_deadline();
  std::size_t next_release = 0;  // jobs are sorted by release
  std::vector<std::size_t> live;  // released, not finished, not expired

  for (double t = 0.0; t < end; t += dt) {
    const double step_end = t + dt;
    // Admit releases that occur up to the *start* of this step.
    while (next_release < jobs.size() && jobs[next_release].release <= t) {
      live.push_back(next_release);
      ++next_release;
    }
    // Expire jobs whose deadline has passed.
    for (auto it = live.begin(); it != live.end();) {
      if (jobs[*it].deadline <= t) {
        result.outcomes[*it] = JobOutcome::kExpired;
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    if (live.empty()) continue;
    // EDF choice, ties by id for determinism (matches the engine's EDF).
    std::size_t chosen = live[0];
    for (std::size_t idx : live) {
      if (jobs[idx].deadline < jobs[chosen].deadline ||
          (fp::exact_eq(jobs[idx].deadline, jobs[chosen].deadline) &&
           idx < chosen)) {
        chosen = idx;
      }
    }
    remaining[chosen] -= capacity.work(t, step_end);
    if (remaining[chosen] <= 1e-12) {
      result.outcomes[chosen] = JobOutcome::kCompleted;
      result.completed_value += jobs[chosen].value;
      ++result.completed_count;
      live.erase(std::find(live.begin(), live.end(), chosen));
    }
  }
  // Anything still live at the horizon has a deadline <= end and failed.
  for (std::size_t idx : live) {
    result.outcomes[idx] = JobOutcome::kExpired;
  }
  return result;
}

}  // namespace sjs::sim
