// Structure-of-arrays job slab — the engine's ground-truth per-job state.
//
// Every per-job table that used to live scattered across the engine
// (remaining workload, outcome, released flag) and the schedulers (V-Dover's
// Qedf metadata, 0cl timer handles, abandonment flags; EDF-AC's trial-schedule
// scratch) is one contiguous lane here, indexed by the slot half of a JobId.
// Centralising them buys three things:
//
//   1. Zero-allocation steady state: the slab is pre-sized once (reserve()
//      from --max-in-flight in live mode, bind_dense() per replay) and every
//      handler afterwards is pure lane indexing — no per-job push_back left
//      anywhere on the hot path.
//   2. Cache locality: the completion/expiry handlers touch remaining +
//      outcome for the same slot back-to-back; parallel arrays keep those
//      loads on adjacent cache lines instead of chasing map nodes.
//   3. Generation-stamped handles (the timer-slab idiom, sim/timer_wheel.hpp):
//      allocate()/release_slot() reuse slots through a free list and bump a
//      per-slot generation, so a stale JobId held across a release decodes to
//      a mismatched generation and valid() rejects it in O(1).
//
// Two id regimes share the one structure:
//
//   * Dense mode (replay and live admission): ids are slot indices with
//     generation 0, assigned in admission order — numerically identical to
//     the pre-slab 32-bit ids, which is what keeps the obs digest, the event
//     tie-breaks, and the journal byte-stable. bind_dense()/append_dense()
//     serve this regime; no slot is ever reused, so generations stay 0.
//   * Slab mode (allocate/release_slot): free-list reuse with generation
//     bumps. Nothing engine-side uses it yet — it exists for callers that
//     manage job populations with churn (exercised directly by
//     tests/job_table_test.cpp) and as the forward path for bounded-memory
//     unbounded-session serving.
//
// Hot accessors index by job_slot(id) without re-checking the generation:
// the engine only passes ids it minted itself (dense regime), so the check
// would be dead weight on the hottest loads. valid() is the checked gate for
// ids of unknown provenance.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "jobs/job.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sim {

/// Qedf bookkeeping (V-Dover, paper Sec. III-D): the time and cSlack at the
/// moment the job was inserted into Qedf, consumed by the cSlack update on
/// completion. Lives here rather than in the scheduler so the lane is part of
/// the pre-sized slab (V-Dover's old per-scheduler vectors grew on first
/// contact inside on_release — an allocation in the hot path).
struct QedfMeta {
  double t_insert = 0.0;
  double cslack_insert = 0.0;
};

class JobTable {
 public:
  // --- Dense regime (replay + live admission; generation 0) ----------------

  /// Rebinds the slab to a sealed instance: slot i holds job i's initial
  /// state, ids are dense (== slots, generation 0). Keeps lane capacity
  /// across calls — the Monte-Carlo driver rebinds one engine per cell.
  /// Invalidates the free list and resets all generations (a rebind
  /// repopulates every slot, so handles from before it are void by contract,
  /// exactly as with the old per-run vectors).
  void bind_dense(const std::vector<Job>& jobs);

  /// Appends one dense slot (live admission): id == slot == previous size,
  /// generation 0. Must not be mixed with slab-regime reuse (the free list
  /// must be empty) — live replay fidelity depends on dense admission-order
  /// ids (journal local ids, outcome CSV rows).
  JobId append_dense(double workload);

  // --- Slab regime (free-list reuse, generation stamps) --------------------

  /// Takes a slot (reusing a freed one when available), initialises its
  /// lanes, and returns a generation-stamped handle.
  JobId allocate(double workload);

  /// Frees the slot behind `id` and bumps its generation, invalidating every
  /// outstanding handle to it. Stale or foreign ids are a harmless no-op
  /// (returns false), matching Engine::cancel_timer's contract.
  bool release_slot(JobId id);

  /// True iff `id` names a currently-occupied slot at its current generation.
  bool valid(JobId id) const {
    const std::uint32_t slot = job_slot(id);
    return id >= 0 && slot < gen_.size() && !freed_[slot] &&
           gen_[slot] == job_generation(id);
  }

  // --- Shared lifecycle -----------------------------------------------------

  /// Releases every occupied slot (reuse across Monte-Carlo cells): each
  /// occupied slot's generation is bumped — so handles from before the clear
  /// are rejected by valid() even after the slot is reallocated — and every
  /// slot joins the free list. Lanes keep their high-water length and
  /// capacity; no memory is returned.
  void clear();

  /// Pre-sizes every lane for `n` slots (live boot: --max-in-flight
  /// admissions fit without reallocation).
  void reserve(std::size_t n);

  std::size_t size() const { return remaining_.size(); }
  /// Slots currently occupied (dense slots count until clear/rebind).
  std::size_t live_count() const { return live_; }
  /// Peak simultaneous occupancy since the last clear()/bind_dense().
  std::size_t peak() const { return peak_; }
  /// Distinct slots ever populated (lane length; survives clear()).
  std::size_t slots() const { return remaining_.size(); }

  // --- Lanes (hot accessors: unchecked slot indexing, see header note) ------

  double remaining(JobId id) const { return remaining_[job_slot(id)]; }
  double& remaining(JobId id) { return remaining_[job_slot(id)]; }

  JobOutcome outcome(JobId id) const { return outcome_[job_slot(id)]; }
  void set_outcome(JobId id, JobOutcome o) { outcome_[job_slot(id)] = o; }

  bool released(JobId id) const { return released_[job_slot(id)] != 0; }
  void set_released(JobId id) { released_[job_slot(id)] = 1; }

  /// Bounds-checked released query for ids that may not be in the table yet
  /// (live mode: a ticket can reference a job not yet admitted).
  bool released_checked(JobId id) const {
    const std::uint32_t slot = job_slot(id);
    return id >= 0 && slot < released_.size() && released_[slot] != 0;
  }

  QedfMeta& qedf_meta(JobId id) { return qedf_meta_[job_slot(id)]; }
  const QedfMeta& qedf_meta(JobId id) const { return qedf_meta_[job_slot(id)]; }

  TimerId& ocl_timer(JobId id) { return ocl_timer_[job_slot(id)]; }
  TimerId ocl_timer(JobId id) const { return ocl_timer_[job_slot(id)]; }

  bool abandoned(JobId id) const { return abandoned_[job_slot(id)] != 0; }
  void set_abandoned(JobId id, bool v) { abandoned_[job_slot(id)] = v ? 1 : 0; }

  bool ocl_scheduled(JobId id) const { return ocl_scheduled_[job_slot(id)] != 0; }
  void set_ocl_scheduled(JobId id, bool v) {
    ocl_scheduled_[job_slot(id)] = v ? 1 : 0;
  }

  const std::vector<double>& remaining_lane() const { return remaining_; }
  const std::vector<JobOutcome>& outcome_lane() const { return outcome_; }

  /// EDF-AC's trial-schedule scratch (deadline, remaining) — a slab-owned
  /// buffer so the admission test reuses one allocation across calls. Exposed
  /// const-callable (mutable member) because the admission test is a const
  /// query; contents are meaningless between calls.
  std::vector<std::pair<double, double>>& admission_scratch() const {
    return admission_scratch_;
  }

 private:
  /// Resets one slot's lanes to a fresh job's state.
  void init_slot(std::uint32_t slot, double workload);

  std::vector<double> remaining_;
  std::vector<JobOutcome> outcome_;
  std::vector<std::uint8_t> released_;
  std::vector<QedfMeta> qedf_meta_;
  std::vector<TimerId> ocl_timer_;
  std::vector<std::uint8_t> abandoned_;
  std::vector<std::uint8_t> ocl_scheduled_;

  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> freed_;     // slot currently on the free list
  std::vector<std::uint32_t> free_;     // reusable slots, LIFO
  std::size_t live_ = 0;
  std::size_t peak_ = 0;

  mutable std::vector<std::pair<double, double>> admission_scratch_;
};

}  // namespace sjs::sim
