// Reference discretised simulator for cross-validation.
//
// The production engine computes completion instants *exactly* by inverting
// the cumulative-work function. This module is its independent check: a
// deliberately naive fixed-timestep EDF simulator whose only shared code
// with the engine is the CapacityProfile arithmetic. As dt -> 0 its per-job
// outcomes converge to the event engine's; the property tests compare the
// two on randomised instances (with enough slack that outcomes are robust to
// O(dt) discretisation error).
#pragma once

#include <vector>

#include "jobs/instance.hpp"
#include "sim/result.hpp"

namespace sjs::sim {

struct ReferenceResult {
  double completed_value = 0.0;
  std::uint64_t completed_count = 0;
  std::vector<JobOutcome> outcomes;  ///< indexed by JobId
};

/// Simulates preemptive EDF on the instance with fixed step `dt`. Work
/// delivered in each step is the exact profile integral over the step (so
/// the only discretisation error is in *when* decisions are re-evaluated,
/// not in how much work is done).
ReferenceResult reference_edf_simulate(const Instance& instance, double dt);

}  // namespace sjs::sim
