// Online scheduler interface.
//
// The engine is interrupt-driven, mirroring the paper's Sec. III-D skeleton:
// the scheduler sleeps until an interrupt (release / completion-or-failure /
// timer) and reacts by dispatching a job via Engine::run(). Timers are how
// algorithm-specific interrupts — V-Dover's zero-conservative-laxity
// interrupt — are realised: the scheduler arms a timer for the instant a
// queued job's conservative laxity hits zero.
//
// Information hiding: callbacks receive an Engine& whose query surface only
// exposes what an online scheduler may know (current time, current rate, the
// band, parameters of *released* jobs, remaining workloads). Future capacity
// is engine-private.
#pragma once

#include <cstdint>
#include <string>

#include "jobs/job.hpp"

namespace sjs::sim {

class Engine;

using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Called once at t = 0 before any event.
  virtual void on_start(Engine& /*engine*/) {}

  /// Job release interrupt: `job` has just been released.
  // sjs-hot-path-root
  virtual void on_release(Engine& engine, JobId job) = 0;

  /// Completion interrupt: the running job finished by its deadline. The
  /// engine has already stopped it (nothing is running).
  // sjs-hot-path-root
  virtual void on_complete(Engine& engine, JobId job) = 0;

  /// Failure/expiry interrupt: `job` reached its deadline uncompleted.
  /// `was_running` distinguishes the paper's "failure" interrupt (job died on
  /// the processor) from a queued job silently expiring. The engine has
  /// already idled the processor if the job was running.
  // sjs-hot-path-root
  virtual void on_expire(Engine& engine, JobId job, bool was_running) = 0;

  /// A timer armed via Engine::set_timer fired. `tag` is scheduler-defined.
  // sjs-hot-path-root
  virtual void on_timer(Engine& /*engine*/, JobId /*job*/, int /*tag*/) {}

  /// Capacity-change interrupt (only delivered when wants_capacity_events()).
  // sjs-hot-path-root
  virtual void on_capacity_change(Engine& /*engine*/) {}

  /// Opt-in to capacity-change interrupts (observable online: the scheduler
  /// knows c(τ) for τ <= now). Profiles with many breakpoints make these
  /// events expensive, so only laxity-tracking schedulers should opt in.
  virtual bool wants_capacity_events() const { return false; }

  /// Ready-queue occupancy accounting, harvested by the engine at the end of
  /// run_to_completion into SimResult::queue_peak / queue_slots (and from
  /// there into the sched.queue.* metrics gauges). `peak` sums each queue's
  /// lifetime high-water mark — for a multi-queue scheduler (V-Dover) an
  /// upper bound on simultaneous total occupancy; `slots` is the entry
  /// storage currently reserved across the scheduler's queues.
  struct QueueStats {
    std::uint64_t peak = 0;
    std::uint64_t slots = 0;
  };
  virtual QueueStats queue_stats() const { return {}; }

  virtual std::string name() const = 0;
};

}  // namespace sjs::sim
