#include "sim/job_table.hpp"

#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::sim {

void JobTable::init_slot(std::uint32_t slot, double workload) {
  remaining_[slot] = workload;
  outcome_[slot] = JobOutcome::kPending;
  released_[slot] = 0;
  qedf_meta_[slot] = QedfMeta{};
  ocl_timer_[slot] = kNoTimer;
  abandoned_[slot] = 0;
  ocl_scheduled_[slot] = 0;
}

void JobTable::bind_dense(const std::vector<Job>& jobs) {
  const std::size_t n = jobs.size();
  util::grow(remaining_, n);
  util::grow(outcome_, n);
  util::grow(released_, n);
  util::grow(qedf_meta_, n);
  util::grow(ocl_timer_, n);
  util::grow(abandoned_, n);
  util::grow(ocl_scheduled_, n);
  util::grow(gen_, n);
  util::grow(freed_, n);
  free_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    init_slot(static_cast<std::uint32_t>(i), jobs[i].workload);
    gen_[i] = 0;
    freed_[i] = 0;
  }
  live_ = n;
  peak_ = n;
}

JobId JobTable::append_dense(double workload) {
  SJS_CHECK_MSG(free_.empty(),
                "append_dense after slab-regime reuse: dense ids require "
                "no slot reuse");
  const auto slot = static_cast<std::uint32_t>(remaining_.size());
  util::append(remaining_, 0.0);
  util::append(outcome_, JobOutcome::kPending);
  util::append(released_, std::uint8_t{0});
  util::append(qedf_meta_, QedfMeta{});
  util::append(ocl_timer_, kNoTimer);
  util::append(abandoned_, std::uint8_t{0});
  util::append(ocl_scheduled_, std::uint8_t{0});
  util::append(gen_, std::uint32_t{0});
  util::append(freed_, std::uint8_t{0});
  init_slot(slot, workload);
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return make_job_id(slot, 0);
}

JobId JobTable::allocate(double workload) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
    freed_[slot] = 0;
  } else {
    slot = static_cast<std::uint32_t>(remaining_.size());
    util::append(remaining_, 0.0);
    util::append(outcome_, JobOutcome::kPending);
    util::append(released_, std::uint8_t{0});
    util::append(qedf_meta_, QedfMeta{});
    util::append(ocl_timer_, kNoTimer);
    util::append(abandoned_, std::uint8_t{0});
    util::append(ocl_scheduled_, std::uint8_t{0});
    util::append(gen_, std::uint32_t{0});
    util::append(freed_, std::uint8_t{0});
  }
  init_slot(slot, workload);
  ++live_;
  if (live_ > peak_) peak_ = live_;
  return make_job_id(slot, gen_[slot]);
}

bool JobTable::release_slot(JobId id) {
  if (!valid(id)) return false;  // stale generation or foreign id: no-op
  const std::uint32_t slot = job_slot(id);
  ++gen_[slot];  // invalidates every outstanding handle to this slot
  freed_[slot] = 1;
  util::append(free_, slot);
  --live_;
  return true;
}

void JobTable::clear() {
  // Treat the clear as releasing every occupied slot: bump its generation
  // (so handles from before the clear stay invalid even after the slot is
  // repopulated) and put it on the free list. Lanes keep their high-water
  // length and capacity — the generation stamps must survive, and a LIFO
  // free list restores slot reuse without any reallocation.
  for (std::size_t i = gen_.size(); i-- > 0;) {
    if (!freed_[i]) {
      ++gen_[i];
      freed_[i] = 1;
      util::append(free_, static_cast<std::uint32_t>(i));
    }
  }
  live_ = 0;
  peak_ = 0;
}

void JobTable::reserve(std::size_t n) {
  remaining_.reserve(n);
  outcome_.reserve(n);
  released_.reserve(n);
  qedf_meta_.reserve(n);
  ocl_timer_.reserve(n);
  abandoned_.reserve(n);
  ocl_scheduled_.reserve(n);
  gen_.reserve(n);
  freed_.reserve(n);
  free_.reserve(n);
  admission_scratch_.reserve(n + 2);
}

}  // namespace sjs::sim
