// Hierarchical timer wheel over virtual time — the timer backend of the
// engine's volatile event side (docs/performance.md, "The timer wheel").
//
// The wheel replaces the binary heap for EventType::kTimer entries: arming
// and cancelling become amortized O(1) instead of O(log n). It is two
// structures:
//
//  * a generation-stamped **slab** of timer slots — the PR2 id scheme,
//    unchanged: ids are (generation << 32) | (slot + 1), a cancel or fire
//    frees the slot and bumps the generation, slots are recycled LIFO;
//  * a pool of queued **nodes** (one per set_timer call), bucketed by the
//    wheel, each carrying the (time, seq) order key and its TimerId.
//
// A cancel frees only the slab slot; the queued node stays in its bucket and
// later pops as a *stale* entry (generation mismatch), exactly like the dead
// events the heap used to carry. This is deliberate and digest-critical: the
// engine subdivides the running job's execution integral at every popped
// event's timestamp, dead or live, so eagerly unlinking a cancelled timer
// would shift downstream floating-point sums by ulps and change completion
// instants. Dead nodes are reclaimed by the engine's lazy compaction
// (purge_dead) on the same trigger as before.
//
// Layout. A timer's instant is keyed by the raw bit pattern of its `double`
// time: for non-negative IEEE-754 doubles the bit pattern is monotone in the
// value, so integer order on keys IS the engine's order on times (the
// sanctioned exact comparison — same contract as fp::exact_eq). The 64-bit
// key is split into 8 levels of one byte each; level L, slot S holds nodes
// whose key agrees with the wheel clock `cur_key_` on all bytes above L and
// has byte L == S. Each bucket is an intrusive doubly-linked list threaded
// through the node pool; per-level 256-bit occupancy bitmaps make find-min a
// handful of word scans.
//
// Invariant (restored by every clock advance): at level L >= 1 every
// occupied slot is strictly greater than byte L of cur_key_, and nodes in
// one bucket agree with cur_key_ on all bytes above L. Hence the bucket at
// the lowest occupied slot of the lowest non-empty level contains the global
// minimum key, and a linear scan of that one bucket (min (key, seq)) yields
// the exact pop candidate. At level 0 all nodes in one bucket share the
// *identical* bit pattern — the same double — so the (time, seq) order the
// engine's digest depends on is reproduced exactly.
//
// Cascading happens on clock advance, not on demand: when the engine's clock
// moves from key A to key B (only ever forward, and only after every node
// with key < B has been popped), the highest differing byte h between A and
// B names the single bucket (h, byte_h(B)) that can hold nodes now due for
// finer placement; its nodes are relinked against B and strictly descend in
// level, so each node cascades at most 7 times over its lifetime.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "jobs/job.hpp"
#include "sim/scheduler.hpp"
#include "util/logging.hpp"

namespace sjs::sim {

class TimerWheel {
 public:
  /// A popped timer node: everything the engine needs to build the kTimer
  /// event. `live` is false for a tombstone (the timer was cancelled and its
  /// slot possibly reused since) — the engine pops it as a dead event, like
  /// the stale heap entries it replaces. The node, and for live pops the
  /// slab slot, are already freed when this is returned.
  struct Fired {
    double time;
    std::uint64_t seq;
    JobId job;
    int tag;
    bool live;
  };

  static constexpr int kLevels = 8;
  static constexpr int kSlotsPerLevel = 256;

  TimerWheel();

  /// Arms a timer at `time` (>= the last advance_clock instant, non-negative,
  /// not NaN) carrying (job, tag). `seq` is the engine's global event
  /// sequence number — it must be strictly increasing across calls; it is
  /// the tie-break among timers at the identical instant.
  TimerId arm(double time, JobId job, int tag, std::uint64_t seq);

  /// Cancels a pending timer: O(1) — frees the slab slot (bumping the
  /// generation) but leaves the queued node in place as a tombstone. Returns
  /// false (no-op) for a stale id — already fired, already cancelled, slot
  /// since reused. A corrupted id (slot index never allocated) fails an
  /// SJS_CHECK.
  bool cancel(TimerId id);

  /// The pop candidate's (time, seq) without removing it; false when no
  /// nodes (live or tombstone) are queued. Amortized O(1): the minimum is
  /// cached and only recomputed after the cached node leaves the wheel.
  bool peek(double& time, std::uint64_t& seq) const {
    if (pending_count_ == 0) return false;
    if (min_dirty_ || min_node_ == kNil) find_min();
    const Node& n = nodes_[min_node_];
    time = n.time;
    seq = n.seq;
    return true;
  }

  /// Removes and returns the minimum-(key, seq) node. Wheel must not be
  /// empty (peek first).
  Fired pop();

  /// Advances the wheel clock to `now` (monotone; the engine calls this with
  /// its own clock, after every node earlier than `now` has been popped) and
  /// cascades the one bucket the advance exposes.
  void advance_clock(double now);

  /// Unlinks and frees every tombstone node (the wheel half of the engine's
  /// lazy dead-event compaction). O(pending_count). Returns the number
  /// purged.
  std::size_t purge_dead();

  /// Rewinds to an empty wheel at clock 0, keeping slab/pool capacity
  /// (engine reuse across Monte-Carlo runs).
  void clear();

  /// Pre-sizes the slab and node pool for `n` simultaneously armed timers
  /// (live boot: Engine::reserve_live — zero-alloc steady state).
  void reserve(std::size_t n) {
    slab_.reserve(n);
    free_slots_.reserve(n);
    nodes_.reserve(n);
    free_nodes_.reserve(n);
  }

  /// Timers currently armed (live slab slots).
  std::size_t live_count() const { return live_count_; }
  /// Queued nodes, tombstones included — the wheel's share of the engine's
  /// pending-event population.
  std::size_t pending_count() const { return pending_count_; }
  /// Distinct slab slots ever allocated (bounded by peak live_count).
  std::size_t slab_size() const { return slab_.size(); }

  // --- Occupancy / churn statistics (engine.timer.* gauges) ---

  /// Cascade operations performed (clock advances that relinked a bucket).
  std::uint64_t cascades() const { return cascades_; }
  /// Nodes moved by cascades (each node can cascade at most 7 times).
  std::uint64_t cascaded_entries() const { return cascaded_entries_; }
  /// Peak nodes simultaneously in any single bucket.
  std::uint64_t bucket_peak() const { return bucket_peak_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One slab slot — the id scheme's ground truth (PR2 semantics).
  struct Slot {
    JobId job = kNoJob;
    int tag = 0;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// One queued node. `id` resolves liveness against the slab at pop time:
  /// a generation mismatch means the timer was cancelled after queuing.
  struct Node {
    double time = 0.0;
    std::uint64_t key = 0;
    std::uint64_t seq = 0;
    TimerId id = kNoTimer;
    std::uint32_t next = kNil;   // intrusive bucket list links
    std::uint32_t prev = kNil;
    std::uint16_t bucket = 0;    // level * kSlotsPerLevel + slot, while queued
  };

  static std::uint32_t slot_of_id(TimerId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffull) - 1;
  }
  static std::uint32_t generation_of_id(TimerId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Monotone key of a non-negative time; canonicalises -0.0 and rejects
  /// negative/NaN times (SJS_CHECK). +infinity is a valid far-future key.
  static std::uint64_t key_of(double time);

  /// Bucket index (level * 256 + slot) for `key` relative to cur_key_.
  std::uint32_t bucket_of(std::uint64_t key) const;

  void link(std::uint32_t node, std::uint32_t bucket);
  void unlink(std::uint32_t node);
  void free_node(std::uint32_t node);
  /// Out-of-line half of advance_clock: cascades the bucket a cross-byte
  /// clock advance exposes.
  void advance_slow(std::uint64_t key);
  /// Recomputes the cached minimum by scanning the occupancy bitmaps.
  void find_min() const;

  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::size_t pending_count_ = 0;

  std::uint64_t cur_key_ = 0;

  std::array<std::uint32_t, kLevels * kSlotsPerLevel> head_;
  std::array<std::uint32_t, kLevels * kSlotsPerLevel> count_;
  // One 256-bit occupancy bitmap per level, 4 words each. Word index order is
  // (level, slot) lexicographic, so the lowest set bit across all words names
  // the minimum-holding bucket directly.
  std::array<std::uint64_t, kLevels * 4> bits_;
  // Summary: bit w set iff bits_[w] != 0 — find_min in two countr_zero steps.
  std::uint32_t word_mask_ = 0;

  // Cached pop candidate (node index), recomputed lazily.
  mutable std::uint32_t min_node_ = kNil;
  mutable bool min_dirty_ = false;

  std::uint64_t cascades_ = 0;
  std::uint64_t cascaded_entries_ = 0;
  std::uint64_t bucket_peak_ = 0;
};

}  // namespace sjs::sim
