// Discrete-event engine for preemptive deadline scheduling on a processor
// with time-varying capacity.
//
// The engine owns ground truth (the full capacity sample path, remaining
// workloads, job outcomes) and drives a Scheduler through interrupts. Because
// the capacity path is piecewise constant, the completion instant of the
// running job is computed *exactly* by inverting the cumulative-work function
// — there is no time-stepping and no accumulation of integration error.
//
// Event ordering at equal timestamps (see DESIGN.md §5):
//   Completion < Expiry < CapacityChange < Release < Timer
// so a job finishing exactly at its deadline succeeds, and a timer armed
// "now" during a release handler fires immediately after it.
//
// Stale events are handled by lazy invalidation: each dispatch bumps an epoch
// counter recorded in completion events; timers carry generation-checked ids.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "obs/trace_sink.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"

namespace sjs::sim {

class Engine {
 public:
  /// Binds the engine to an instance and a scheduler. Neither is owned; both
  /// must outlive the engine. A Scheduler instance must not be reused across
  /// runs (its internal queues would leak state); construct one per run.
  Engine(const Instance& instance, Scheduler& scheduler);

  /// Runs the simulation to completion (all jobs completed or expired) and
  /// returns the result.
  SimResult run_to_completion();

  /// Enables recording of the full execution timeline into
  /// SimResult::schedule (off by default; costs one slice append per
  /// dispatch change). Call before run_to_completion().
  void record_schedule(bool enabled) { record_schedule_ = enabled; }

  /// Attaches a trace sink (src/obs/) receiving every engine event as a
  /// typed record; nullptr detaches. The sink is not owned and must outlive
  /// the run. With no sink attached the recording path is a single null
  /// check per event. Call before run_to_completion().
  void attach_trace(obs::TraceSink* sink) { sink_ = sink; }
  bool trace_enabled() const { return sink_ != nullptr; }

  // --- Query surface available to schedulers (online-observable only) ---

  double now() const { return now_; }
  /// Current instantaneous capacity (observable: c(τ) is known for τ <= now).
  double current_rate() const { return instance_->capacity().rate(now_); }
  /// The declared capacity band (known a priori to the algorithms).
  double c_lo() const { return instance_->c_lo(); }
  double c_hi() const { return instance_->c_hi(); }

  const Job& job(JobId id) const { return instance_->job(id); }
  std::size_t job_count() const { return instance_->size(); }
  /// Remaining workload of a released job (exact as of `now`).
  double remaining(JobId id) const;
  bool is_released(JobId id) const;
  bool is_completed(JobId id) const;
  bool is_expired(JobId id) const;
  /// A job is live if released, not completed, and not expired.
  bool is_live(JobId id) const;
  /// The job currently occupying the processor, or kNoJob.
  JobId running() const { return running_; }

  /// Conservative laxity (Definition 5) of a live job at `now`, computed with
  /// the capacity estimate `c_est` (V-Dover passes c_lo; Dover passes ĉ).
  double claxity(JobId id, double c_est) const {
    return job(id).deadline - now_ - remaining(id) / c_est;
  }

  // --- Commands available to schedulers (only valid inside callbacks) ---

  /// Dispatches `id` (preempting whatever is running) or idles the processor
  /// when id == kNoJob. Dispatching the already-running job is a no-op.
  /// The job must be live. Preemption is free and resumable (paper Sec. II-A).
  void run(JobId id);

  /// Arms a timer that raises Scheduler::on_timer(job, tag) at time `t`
  /// (>= now; t == now fires after the current handler returns).
  TimerId set_timer(double t, JobId job, int tag);

  /// Cancels a pending timer; cancelling an already-fired or unknown timer is
  /// a harmless no-op (schedulers cancel lazily on preemption paths).
  void cancel_timer(TimerId id);

  /// Scheduler annotation channel: records an obs::TraceKind::kNote event
  /// (code from obs::NoteCode, plus a free payload) so algorithm-internal
  /// decisions are auditable from the trace. No-op without a sink.
  void note(JobId job, int code, double payload = 0.0) {
    trace(obs::TraceKind::kNote, job, static_cast<double>(code), payload);
  }

 private:
  enum class EventType : std::uint8_t {
    // Declaration order IS the tie-break priority at equal timestamps.
    kCompletion = 0,
    kExpiry = 1,
    kCapacityChange = 2,
    kRelease = 3,
    kTimer = 4,
  };

  struct Event {
    double time;
    EventType type;
    std::uint64_t seq;     // FIFO tie-break within the same (time, type)
    JobId job = kNoJob;
    std::uint64_t id = 0;  // dispatch epoch (completion) or timer id

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      if (type != other.type) return type > other.type;
      return seq > other.seq;
    }
  };

  struct TimerRecord {
    JobId job = kNoJob;
    int tag = 0;
    bool cancelled = false;
    bool fired = false;
  };

  /// Records one trace event at `now_`; compiles to a null check when no
  /// sink is attached (the zero-cost disabled path).
  void trace(obs::TraceKind kind, JobId job, double a = 0.0, double b = 0.0) {
    if (sink_) sink_->record(obs::TraceEvent{now_, kind, job, -1, a, b});
  }

  void push_event(double time, EventType type, JobId job, std::uint64_t id);
  /// Brings the running job's remaining workload up to date at time `t`.
  void advance_execution(double t);
  /// Stops the running job (bookkeeping only; no scheduler callback).
  void halt_running();
  void handle_completion(const Event& event);
  void handle_expiry(const Event& event);
  void handle_release(const Event& event);
  void handle_timer(const Event& event);

  const Instance* instance_;
  Scheduler* scheduler_;

  double now_ = 0.0;
  double last_advance_ = 0.0;   // execution accounted up to this time
  JobId running_ = kNoJob;
  std::uint64_t dispatch_epoch_ = 0;

  std::vector<double> remaining_;
  std::vector<JobOutcome> outcomes_;
  std::vector<bool> released_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t next_seq_ = 0;

  std::vector<TimerRecord> timers_;  // index = TimerId - 1

  bool in_callback_ = false;
  bool record_schedule_ = false;
  obs::TraceSink* sink_ = nullptr;
  SimResult result_;
};

}  // namespace sjs::sim
