// Discrete-event engine for preemptive deadline scheduling on a processor
// with time-varying capacity.
//
// The engine owns ground truth (the full capacity sample path, remaining
// workloads, job outcomes) and drives a Scheduler through interrupts. Because
// the capacity path is piecewise constant, the completion instant of the
// running job is computed *exactly* by inverting the cumulative-work function
// — there is no time-stepping and no accumulation of integration error.
//
// Event ordering at equal timestamps (see DESIGN.md §5):
//   Completion < Expiry < CapacityChange < Release < Timer
// so a job finishing exactly at its deadline succeeds, and a timer armed
// "now" during a release handler fires immediately after it.
//
// Stale events are handled by lazy invalidation: each dispatch bumps an epoch
// counter recorded in completion events, and timers live in sim::TimerWheel —
// a hierarchical wheel over virtual time whose slab slots carry a generation
// stamp, so cancelling or firing a timer frees its slot in O(1) and bumps the
// generation, and any event or handle still holding the old id decodes to a
// mismatched generation and is discarded. Dead events left queued by either
// mechanism are reclaimed lazily: when they outnumber the live events the
// volatile side is compacted in one O(n) pass. Both structures are therefore
// bounded by the number of *simultaneously pending* timers/dispatches, not by
// the totals over the run.
#pragma once

#include <cstdint>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "obs/trace_sink.hpp"
#include "sim/job_table.hpp"
#include "sim/result.hpp"
#include "sim/scheduler.hpp"
#include "sim/timer_wheel.hpp"
#include "util/fp.hpp"

namespace sjs::sim {

class Engine {
 public:
  /// Binds the engine to an instance and a scheduler. Neither is owned; both
  /// must outlive the engine. A Scheduler instance must not be reused across
  /// runs (its internal queues would leak state); construct one per run and
  /// rebind with reset(scheduler) — the engine itself is reusable.
  Engine(const Instance& instance, Scheduler& scheduler);

  /// Runs the simulation to completion (all jobs completed or expired) and
  /// returns the result. The reference stays valid until the next
  /// run/reset; copy it (`SimResult r = engine.run_to_completion()`) to keep
  /// it longer. Returning a reference — not a value — is what lets a warmed
  /// engine replay with zero heap allocations (tests/hotpath_test.cpp).
  const SimResult& run_to_completion();

  /// Rewinds the engine for another run over the same instance with a fresh
  /// scheduler, keeping every allocation (remaining/outcome/release tables,
  /// event heap, timer slab) — the Monte-Carlo driver reuses one engine per
  /// run across all scheduler cells instead of reallocating each cell. The
  /// replayed event stream is bit-identical to a freshly constructed
  /// engine's (asserted in tests/engine_test.cpp). The trace sink and
  /// record_schedule flag persist across resets; pass attach_trace(nullptr)
  /// to detach.
  void reset(Scheduler& scheduler);

  // --- Live mode (real-time admission serving, src/serve/) -----------------
  //
  // The serving daemon drives the engine against wall-clock time instead of
  // running a sealed instance to completion: jobs are appended to the bound
  // Instance as they arrive over the wire (Instance::append_job) and admitted
  // with admit_live(); the event loop advances virtual time with
  // advance_to(t) between socket polls. Live mode reuses the exact replay
  // machinery — push_event/pop_event, the handler dispatch, the (time, type,
  // seq) total order — so a live session whose admitted arrival stream is
  // journalled and replayed through run_to_completion reproduces the
  // identical schedule: the event sequences coincide because (1) live
  // release/expiry events go to the volatile heap, and heap-vs-static
  // placement never affects the merged pop order, (2) admission stamps are
  // strictly increasing and advance_to's bound is *strict* (< t), so every
  // event at one timestamp is in the queue before any of them pops, and (3)
  // relative seq order within each (time, type) class equals admission order
  // in both modes. See docs/serving.md for the full argument.

  /// Enters live mode over the (possibly empty) bound instance: initialises
  /// the run, pushes capacity-change interrupts if the scheduler wants them,
  /// and raises on_start. Pair with finish_live().
  void begin_live();

  /// Admits job `id` — already appended to the bound Instance, release
  /// >= now() — into the live run: schedules its release and expiry.
  void admit_live(JobId id);

  /// Force-expires a live job at now() (client cancellation). The scheduler
  /// sees an ordinary on_expire interrupt. Returns false when the job is not
  /// live (already completed/expired/cancelled, or not yet released).
  /// Sessions containing cancellations are not journal-replayable through
  /// run_to_completion (the replay input has no cancel channel).
  bool cancel_live(JobId id);

  /// Processes every pending event with time *strictly* before t, then
  /// advances the virtual clock to t (>= now()). Strictness is what keeps
  /// live pop order identical to replay order: events at exactly t wait
  /// until every same-timestamp admission has been queued.
  void advance_to(double t);

  /// Timestamp of the next pending event, or +infinity when idle — the event
  /// loop's poll-timeout bound.
  double next_event_time() const;

  /// Fast-forwards through every remaining event (drain: the simulated
  /// backlog is resolved immediately in virtual time), harvests and returns
  /// the result, and leaves live mode. Same reference lifetime as
  /// run_to_completion().
  const SimResult& finish_live();

  bool live_mode() const { return live_; }

  /// Pre-sizes every structure that grows with in-flight population — the
  /// job slab, both event-queue sides, the timer wheel's node slab, and the
  /// result's per-job vectors — for `max_in_flight` simultaneous jobs, so a
  /// warmed live session performs zero heap allocations in steady state
  /// (the serve plane calls this at boot with --max-in-flight). Sessions
  /// admitting more than `max_in_flight` jobs *in total* still grow the
  /// dense per-admitted-job tables past the pre-size (amortized, documented
  /// in docs/performance.md).
  void reserve_live(std::size_t max_in_flight);

  /// Bound schedulers should size their per-job structures for in
  /// on_start(): the static job count on replay runs, or the reserve_live()
  /// pre-size in a live session (where job_count() is still 0 at start).
  std::size_t job_capacity_hint() const {
    return std::max(job_count(), live_reserve_);
  }

  // -------------------------------------------------------------------------

  /// Enables recording of the full execution timeline into
  /// SimResult::schedule (off by default; costs one slice append per
  /// dispatch change). Call before run_to_completion().
  void record_schedule(bool enabled) { record_schedule_ = enabled; }

  /// Attaches a trace sink (src/obs/) receiving every engine event as a
  /// typed record; nullptr detaches. The sink is not owned and must outlive
  /// the run. With no sink attached the recording path is a single null
  /// check per event. Call before run_to_completion().
  void attach_trace(obs::TraceSink* sink) { sink_ = sink; }
  bool trace_enabled() const { return sink_ != nullptr; }

  // --- Query surface available to schedulers (online-observable only) ---

  double now() const { return now_; }
  /// Current instantaneous capacity (observable: c(τ) is known for τ <= now).
  /// Served from the monotone capacity cursor: amortized O(1).
  double current_rate() const { return cursor_.rate(now_); }
  /// The declared capacity band (known a priori to the algorithms).
  double c_lo() const { return instance_->c_lo(); }
  double c_hi() const { return instance_->c_hi(); }

  const Job& job(JobId id) const { return instance_->job(id); }
  std::size_t job_count() const { return instance_->size(); }
  /// Remaining workload of a released job (exact as of `now`).
  double remaining(JobId id) const;
  bool is_released(JobId id) const;
  bool is_completed(JobId id) const;
  bool is_expired(JobId id) const;
  /// A job is live if released, not completed, and not expired.
  bool is_live(JobId id) const;
  /// The job currently occupying the processor, or kNoJob.
  JobId running() const { return running_; }

  /// Conservative laxity (Definition 5) of a live job at `now`, computed with
  /// the capacity estimate `c_est` (V-Dover passes c_lo; Dover passes ĉ).
  double claxity(JobId id, double c_est) const {
    return job(id).deadline - now_ - remaining(id) / c_est;
  }

  /// The structure-of-arrays job slab backing every per-job lane. Schedulers
  /// own their lanes (V-Dover's Qedf metadata / 0cl timers / flags, EDF-AC's
  /// admission scratch) and read/write them through this reference; the
  /// ground-truth lanes (remaining, outcome, released) are engine-owned —
  /// schedulers must only read those, via the query surface above.
  JobTable& job_state() { return jobs_; }
  const JobTable& job_state() const { return jobs_; }

  // --- Commands available to schedulers (only valid inside callbacks) ---

  /// Dispatches `id` (preempting whatever is running) or idles the processor
  /// when id == kNoJob. Dispatching the already-running job is a no-op.
  /// The job must be live. Preemption is free and resumable (paper Sec. II-A).
  void run(JobId id);

  /// Arms a timer that raises Scheduler::on_timer(job, tag) at time `t`
  /// (>= now; t == now fires after the current handler returns). The
  /// returned id encodes (slab slot, generation); it is invalidated — and
  /// its slot reclaimed — the moment the timer fires, is cancelled, or is
  /// swallowed because `job` died first.
  TimerId set_timer(double t, JobId job, int tag);

  /// Cancels a pending timer and frees its slab slot. Cancelling an
  /// already-fired or already-cancelled id is a harmless no-op (schedulers
  /// cancel lazily on preemption paths): the generation check rejects stale
  /// ids even after the slot was reused. A *corrupted* id — one whose slot
  /// index was never allocated — fails an SJS_CHECK loudly.
  void cancel_timer(TimerId id);

  // --- Hot-path occupancy introspection (tests, benches, gauges) ---

  /// Timers currently armed (wheel slab slots in use).
  std::size_t live_timer_count() const { return wheel_.live_count(); }
  /// Distinct slab slots ever allocated this run (bounded by the peak of
  /// live_timer_count, NOT by the total number of set_timer calls).
  std::size_t timer_slab_size() const { return wheel_.slab_size(); }
  /// Events currently pending (static queue + volatile heap + timer wheel),
  /// dead ones included.
  std::size_t queued_event_count() const { return pending_events(); }
  /// Dead events currently queued on the volatile side (stale completions in
  /// the heap + cancelled-timer tombstones in the wheel); lazy compaction
  /// keeps this at most max(kCompactionMinEvents, half the volatile side).
  std::size_t dead_event_count() const { return dead_events_; }

  /// Compaction is skipped below this heap size: tiny heaps make the dead
  /// fraction noisy and the O(n) pass isn't worth saving a few entries.
  static constexpr std::size_t kCompactionMinEvents = 64;

  /// Scheduler annotation channel: records an obs::TraceKind::kNote event
  /// (code from obs::NoteCode, plus a free payload) so algorithm-internal
  /// decisions are auditable from the trace. No-op without a sink.
  void note(JobId job, int code, double payload = 0.0) {
    trace(obs::TraceKind::kNote, job, static_cast<double>(code), payload);
  }

 private:
  enum class EventType : std::uint8_t {
    // Declaration order IS the tie-break priority at equal timestamps.
    kCompletion = 0,
    kExpiry = 1,
    kCapacityChange = 2,
    kRelease = 3,
    kTimer = 4,
  };

  struct Event {
    double time;
    EventType type;
    std::uint64_t seq;     // FIFO tie-break within the same (time, type)
    JobId job = kNoJob;
    std::uint64_t id = 0;  // dispatch epoch (completion) or timer tag

    bool operator>(const Event& other) const {
      if (fp::exact_ne(time, other.time)) return time > other.time;
      if (type != other.type) return type > other.type;
      return seq > other.seq;
    }
  };

  /// Records one trace event at `now_`; compiles to a null check when no
  /// sink is attached (the zero-cost disabled path).
  void trace(obs::TraceKind kind, JobId job, double a = 0.0, double b = 0.0) {
    if (sink_) sink_->record(obs::TraceEvent{now_, kind, job, -1, a, b});
  }

  void push_event(double time, EventType type, JobId job, std::uint64_t id);
  Event pop_event();
  /// Timestamp of the event pop_event would return (+inf when none). Dead
  /// events count — popping them is a cheap no-op, never wrong.
  double peek_event_time() const;
  /// Pops and handles exactly one event (the body of the run loops).
  void step_event();
  /// Dispatches one event to its handler (the switch shared by all modes).
  void process_event(const Event& event);
  /// Fills the end-of-run SimResult fields (outcome/work tables, occupancy
  /// stats, kRunEnd trace) shared by run_to_completion and finish_live.
  void harvest_result();
  /// Rewinds all per-run state (capacities of every container are kept).
  void rewind();
  /// Purges dead events once they outnumber the live ones (amortized O(1)
  /// per event; total order on events makes the rebuild order-neutral).
  void maybe_compact_heap();
  /// Brings the running job's remaining workload up to date at time `t`.
  void advance_execution(double t);
  /// Stops the running job (bookkeeping only; no scheduler callback).
  void halt_running();
  void handle_completion(const Event& event);
  void handle_expiry(const Event& event);
  void handle_release(const Event& event);
  void handle_timer(const Event& event);

  const Instance* instance_;
  Scheduler* scheduler_;

  double now_ = 0.0;
  double last_advance_ = 0.0;   // execution accounted up to this time
  JobId running_ = kNoJob;
  std::uint64_t dispatch_epoch_ = 0;
  /// A completion event for the current dispatch epoch is in the heap; used
  /// to count the event as dead the moment a preemption invalidates it.
  bool completion_pending_ = false;

  /// Per-job ground truth + scheduler lanes, one SoA slab (sim/job_table.hpp).
  JobTable jobs_;

  std::size_t pending_events() const {
    return heap_.size() + (static_events_.size() - static_cursor_) +
           wheel_.pending_count();
  }

  /// The event queue is split in two by churn profile; pop_event compares
  /// the two fronts under the total order on Event (time, type, seq), so
  /// the merged pop sequence is identical to a single queue's.
  ///
  /// Static side: releases, expiries, and capacity changes are all pushed
  /// up front by run_to_completion and never cancelled — one sort seals
  /// them, then consumption is a cursor walk (O(1) pops, no heap traffic).
  std::vector<Event> static_events_;
  std::size_t static_cursor_ = 0;
  bool static_sealed_ = false;

  /// Volatile side, completions: a binary min-heap (std::push_heap/pop_heap
  /// with greater<>) — an explicit container instead of std::priority_queue
  /// so dead (stale-epoch) events can be purged in place; the total order on
  /// Event makes compaction order-neutral. In live mode the heap also takes
  /// the late-arriving release/expiry events.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t dead_events_ = 0;   // dead entries currently in heap_

  /// Volatile side, timers: the hierarchical wheel — amortized O(1)
  /// arm/cancel, pops in exact (time, seq) order (sim/timer_wheel.hpp).
  /// pop_event merges its front with the other two sides under the total
  /// order on Event, so the merged pop sequence is identical to the old
  /// single heap's.
  TimerWheel wheel_;

  mutable cap::CapacityProfile::Cursor cursor_;  // mutable: amortized-O(1)
                                                 // lookups from const queries

  bool in_callback_ = false;
  bool live_ = false;  // live admission mode (begin_live..finish_live)
  bool record_schedule_ = false;
  std::size_t live_reserve_ = 0;  // reserve_live() pre-size (capacity hint)
  obs::TraceSink* sink_ = nullptr;
  SimResult result_;
};

}  // namespace sjs::sim
