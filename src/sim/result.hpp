// Per-run simulation outcome: value accounting, per-job outcomes, the
// cumulative value-vs-time trace (paper Fig. 1), and engine counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jobs/job.hpp"
#include "stats/timeseries.hpp"

namespace sjs::sim {

enum class JobOutcome : std::uint8_t {
  kPending = 0,   ///< not yet released / still live at end of run
  kCompleted,     ///< finished by its deadline; value collected
  kExpired,       ///< deadline passed uncompleted
};

/// One maximal stretch of uninterrupted execution of one job.
struct ExecutionSlice {
  double start = 0.0;
  double end = 0.0;
  JobId job = kNoJob;
};

struct SimResult {
  std::string scheduler_name;

  double completed_value = 0.0;   ///< Σ v_i over completed jobs
  double generated_value = 0.0;   ///< Σ v_i over all jobs in the instance
  std::uint64_t completed_count = 0;
  std::uint64_t expired_count = 0;

  /// completed_value / generated_value — the paper's Table-I metric.
  double value_fraction() const {
    return generated_value > 0.0 ? completed_value / generated_value : 0.0;
  }

  std::vector<JobOutcome> outcomes;       ///< indexed by JobId
  std::vector<double> executed_work;      ///< work done per job (<= p_i)
  /// Completion instant per job; NaN for jobs that expired.
  std::vector<double> completion_times;
  /// Release instant per job (copied from the instance for convenience).
  std::vector<double> release_times;
  /// Response times (completion − release) of completed jobs, in JobId
  /// order. Empty when nothing completed.
  std::vector<double> response_times() const;
  /// Mean response time of completed jobs (0 when none).
  double mean_response_time() const;
  StepFunction value_trace;               ///< cumulative completed value v. time
  /// Full execution timeline (only populated when Engine::record_schedule()
  /// was enabled): non-overlapping slices in chronological order.
  std::vector<ExecutionSlice> schedule;

  // Engine counters (useful for ablations and performance sanity checks).
  std::uint64_t dispatches = 0;    ///< Engine::run() calls that changed the job
  std::uint64_t preemptions = 0;   ///< dispatches that displaced an unfinished job
  std::uint64_t events_processed = 0;
  double busy_time = 0.0;          ///< total time a job occupied the processor
  double executed_total = 0.0;     ///< Σ executed work (capacity-seconds)

  // Hot-path occupancy stats (timer slab and event heap; the bounded-memory
  // regression test and the engine.* metrics gauges read these).
  std::uint64_t timers_armed = 0;       ///< set_timer() calls over the run
  std::uint64_t timer_slab_peak = 0;    ///< peak simultaneously-live timers
  std::uint64_t timer_slab_slots = 0;   ///< distinct slots ever allocated
  std::uint64_t event_heap_peak = 0;    ///< peak pending events in the heap
  std::uint64_t event_heap_dead_peak = 0;  ///< peak dead (stale) heap events
  std::uint64_t heap_compactions = 0;   ///< lazy dead-event purges performed
  std::uint64_t timer_cascades = 0;     ///< wheel clock advances that relinked
  std::uint64_t timer_cascade_entries = 0;  ///< entries moved by cascades
  std::uint64_t timer_bucket_peak = 0;  ///< peak entries in one wheel bucket

  // Scheduler ready-queue occupancy (Scheduler::queue_stats, harvested at
  // the end of the run; zeros for schedulers that keep no priority queue).
  std::uint64_t queue_peak = 0;    ///< summed per-queue occupancy high-water
  std::uint64_t queue_slots = 0;   ///< entry storage reserved across queues

  // Job-slab occupancy (sim::JobTable — same shape as the timer-slab pair).
  std::uint64_t job_slab_peak = 0;   ///< peak simultaneously-tracked jobs
  std::uint64_t job_slab_slots = 0;  ///< distinct slab slots populated

  /// Rewinds every field to its default while keeping the capacity of every
  /// vector and the value trace — the engine-reuse path: `result_.clear()`
  /// instead of `result_ = SimResult{}` is what makes a warmed engine's
  /// replay allocation-free (tests/hotpath_test.cpp ratchets it to zero).
  void clear();

  std::string to_string() const;
};

/// Writes per-job outcomes as CSV ("id,outcome,completion,value_collected",
/// %.17g doubles, outcome ∈ {pending,completed,expired}, completion empty for
/// jobs that never finished). One canonical format shared by sjs_sim
/// --outcomes-csv and the serving daemon's journal, so live-vs-replay
/// fidelity can be checked with a byte diff (scripts/serve_smoke.sh).
void save_outcomes_csv(const SimResult& result,
                       const std::vector<Job>& jobs,
                       const std::string& path);

}  // namespace sjs::sim
