// ASCII Gantt rendering of a recorded execution timeline, for examples and
// debugging: one row per job, one column per time bucket, '#' where the job
// held the processor, '.' inside its [release, deadline] window.
#pragma once

#include <string>

#include "jobs/instance.hpp"
#include "sim/result.hpp"

namespace sjs::sim {

struct GanttOptions {
  int width = 80;        ///< time-axis columns
  std::size_t max_jobs = 40;  ///< rows beyond this are elided
};

/// Renders the schedule recorded in `result` (Engine::record_schedule must
/// have been enabled) against the instance's job windows.
std::string render_gantt(const Instance& instance, const SimResult& result,
                         const GanttOptions& options = {});

}  // namespace sjs::sim
