#include "sim/gantt.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sjs::sim {

std::string render_gantt(const Instance& instance, const SimResult& result,
                         const GanttOptions& options) {
  std::ostringstream os;
  if (instance.size() == 0) return "(no jobs)\n";
  const double end = instance.max_deadline();
  const int width = std::max(10, options.width);
  const double bucket = end / width;

  auto column = [&](double t) {
    return std::clamp(static_cast<int>(t / bucket), 0, width - 1);
  };

  const std::size_t rows = std::min(options.max_jobs, instance.size());
  std::vector<std::string> grid(rows, std::string(width, ' '));
  for (std::size_t i = 0; i < rows; ++i) {
    const Job& j = instance.jobs()[i];
    for (int c = column(j.release); c <= column(j.deadline); ++c) {
      grid[i][static_cast<std::size_t>(c)] = '.';
    }
  }
  for (const auto& slice : result.schedule) {
    if (slice.job < 0 || static_cast<std::size_t>(slice.job) >= rows) continue;
    // Half-open slice: mark every bucket the slice overlaps.
    const int first = column(slice.start);
    const int last = column(std::max(slice.start, slice.end - 1e-12));
    for (int c = first; c <= last; ++c) {
      grid[static_cast<std::size_t>(slice.job)][static_cast<std::size_t>(c)] =
          '#';
    }
  }

  char buf[64];
  for (std::size_t i = 0; i < rows; ++i) {
    const char status =
        result.outcomes[i] == JobOutcome::kCompleted ? 'C' : 'X';
    std::snprintf(buf, sizeof(buf), "job %4zu %c |", i, status);
    os << buf << grid[i] << "|\n";
  }
  if (instance.size() > rows) {
    os << "(" << instance.size() - rows << " more jobs elided)\n";
  }
  std::snprintf(buf, sizeof(buf), "%.1f", end);
  os << std::string(11, ' ') << '0'
     << std::string(
            static_cast<std::size_t>(
                std::max<int>(1, width - static_cast<int>(std::string(buf).size()))),
            ' ')
     << buf << "\n";
  os << "(# executing, . waiting inside window; C completed, X expired)\n";
  return os.str();
}

}  // namespace sjs::sim
