#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"
#include "util/fp.hpp"
#include "util/vec.hpp"

namespace sjs::sim {

namespace {
// Relative tolerance for "completed by deadline" decisions. Completion
// instants are exact inversions of the cumulative-work function, but deadlines
// are computed independently (r + p/c_lo in the generators), so the two can
// disagree by a few ulps. A job whose exact completion lands within this
// tolerance of its deadline is treated as completing *at* the deadline.
double deadline_eps(double deadline) {
  return 1e-9 * std::max(1.0, std::abs(deadline));
}
}  // namespace

Engine::Engine(const Instance& instance, Scheduler& scheduler)
    : instance_(&instance),
      scheduler_(&scheduler),
      cursor_(instance.capacity()) {
  rewind();
}

void Engine::reset(Scheduler& scheduler) {
  scheduler_ = &scheduler;
  rewind();
}

void Engine::rewind() {
  now_ = 0.0;
  last_advance_ = 0.0;
  running_ = kNoJob;
  dispatch_epoch_ = 0;
  completion_pending_ = false;

  jobs_.bind_dense(instance_->jobs());

  static_events_.clear();
  static_cursor_ = 0;
  static_sealed_ = false;
  heap_.clear();
  next_seq_ = 0;
  dead_events_ = 0;
  wheel_.clear();
  cursor_.reset();
  in_callback_ = false;
  live_ = false;
}

void Engine::push_event(double time, EventType type, JobId jid,
                        std::uint64_t id) {
  SJS_CHECK_MSG(type != EventType::kTimer,
                "timer events go through the wheel, not push_event");
  const Event event{time, type, next_seq_++, jid, id};
  // Live-admitted releases/expiries arrive after the static side was sealed,
  // so they use the heap; side placement never changes the merged pop order
  // (pop_event compares fronts under the total order on Event).
  const bool volatile_side =
      type == EventType::kCompletion ||
      (live_ && (type == EventType::kRelease || type == EventType::kExpiry));
  if (volatile_side) {
    // Growth to the episode high-water only; reserve_live pre-sizes this for
    // the serve plane, so a warmed steady state never grows it.
    util::append(heap_, event);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  } else {
    // Releases, expiries, and capacity changes all arrive during setup and
    // are never cancelled; they go to the sort-once static queue.
    SJS_CHECK_MSG(!static_sealed_,
                  "static-type event pushed after the queue was sealed");
    util::append(static_events_, event);
  }
  result_.event_heap_peak = std::max<std::uint64_t>(
      result_.event_heap_peak, pending_events());
}

Engine::Event Engine::pop_event() {
  // Three-way merge-pop: static cursor, completion heap, timer wheel —
  // whichever front is smallest under Event's total order. The sides never
  // tie: seq numbers are globally unique.
  const bool has_static = static_cursor_ < static_events_.size();
  const Event* best = has_static ? &static_events_[static_cursor_] : nullptr;
  bool from_heap = false;
  if (!heap_.empty() && (best == nullptr || *best > heap_.front())) {
    best = &heap_.front();
    from_heap = true;
  }
  double wheel_time = 0.0;
  std::uint64_t wheel_seq = 0;
  if (wheel_.peek(wheel_time, wheel_seq)) {
    const Event wheel_front{wheel_time, EventType::kTimer, wheel_seq, kNoJob,
                            0};
    if (best == nullptr || *best > wheel_front) {
      const TimerWheel::Fired fired = wheel_.pop();
      // Event::id carries the tag in the low 32 bits and a tombstone flag in
      // bit 32 (a cancelled timer still pops as a dead event — see the
      // subdivision argument in sim/timer_wheel.hpp). The slot is freed.
      const std::uint64_t id =
          static_cast<std::uint32_t>(fired.tag) |
          (fired.live ? 0ull : (1ull << 32));
      return Event{fired.time, EventType::kTimer, fired.seq, fired.job, id};
    }
  }
  if (from_heap) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
    const Event event = heap_.back();
    heap_.pop_back();
    return event;
  }
  return static_events_[static_cursor_++];
}

double Engine::peek_event_time() const {
  // Only the minimum timestamp is needed here, and the three fronts carry
  // exact (same-path) doubles, so a plain min over times matches the full
  // Event-order merge in pop_event.
  double t = std::numeric_limits<double>::infinity();
  if (static_cursor_ < static_events_.size()) {
    t = static_events_[static_cursor_].time;
  }
  if (!heap_.empty()) t = std::min(t, heap_.front().time);
  double wheel_time = 0.0;
  std::uint64_t wheel_seq = 0;
  if (wheel_.peek(wheel_time, wheel_seq)) t = std::min(t, wheel_time);
  return t;
}

void Engine::maybe_compact_heap() {
  // The volatile side is the completion heap plus the wheel's queued nodes —
  // the same population the single pre-wheel heap held, so the trigger fires
  // at the same instants as before the split (digest-neutral by replication).
  const std::size_t volatile_size = heap_.size() + wheel_.pending_count();
  if (volatile_size < kCompactionMinEvents ||
      dead_events_ * 2 <= volatile_size) {
    return;
  }
  std::erase_if(heap_, [&](const Event& e) {
    if (e.type == EventType::kCompletion) return e.id != dispatch_epoch_;
    return false;
  });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<Event>{});
  wheel_.purge_dead();
  dead_events_ = 0;
  ++result_.heap_compactions;
}

double Engine::remaining(JobId id) const {
  SJS_CHECK_MSG(is_released(id), "remaining() on unreleased job " << id);
  return jobs_.remaining(id);
}

bool Engine::is_released(JobId id) const {
  return jobs_.released_checked(id);
}

bool Engine::is_completed(JobId id) const {
  return jobs_.outcome(id) == JobOutcome::kCompleted;
}

bool Engine::is_expired(JobId id) const {
  return jobs_.outcome(id) == JobOutcome::kExpired;
}

bool Engine::is_live(JobId id) const {
  return is_released(id) && jobs_.outcome(id) == JobOutcome::kPending;
}

void Engine::advance_execution(double t) {
  SJS_CHECK_MSG(t >= last_advance_ - 1e-12,
                "time moved backwards: " << t << " < " << last_advance_);
  t = std::max(t, last_advance_);
  if (running_ != kNoJob && t > last_advance_) {
    const double executed = cursor_.work(last_advance_, t);
    double& rem = jobs_.remaining(running_);
    rem = std::max(0.0, rem - executed);
    result_.busy_time += t - last_advance_;
    result_.executed_total += executed;
    if (record_schedule_) {
      // Extend the current slice if it continues the same job, else append.
      auto& schedule = result_.schedule;
      if (!schedule.empty() && schedule.back().job == running_ &&
          fp::exact_eq(schedule.back().end, last_advance_)) {
        schedule.back().end = t;
      } else {
        util::append(schedule, ExecutionSlice{last_advance_, t, running_});
      }
    }
  }
  last_advance_ = t;
}

void Engine::halt_running() {
  running_ = kNoJob;
  ++dispatch_epoch_;  // invalidates any in-flight completion event
  if (completion_pending_) {
    completion_pending_ = false;
    ++dead_events_;
    result_.event_heap_dead_peak =
        std::max<std::uint64_t>(result_.event_heap_dead_peak, dead_events_);
  }
}

void Engine::run(JobId id) {
  SJS_CHECK_MSG(in_callback_, "Engine::run() outside a scheduler callback");
  advance_execution(now_);
  if (id == running_) return;

  if (running_ != kNoJob && jobs_.remaining(running_) > 0.0) {
    ++result_.preemptions;
    trace(obs::TraceKind::kPreempt, running_, jobs_.remaining(running_));
  }
  halt_running();
  if (id == kNoJob) {
    trace(obs::TraceKind::kIdle, kNoJob);
    return;
  }

  SJS_CHECK_MSG(is_live(id), "run() on non-live job " << id);
  running_ = id;
  ++result_.dispatches;
  trace(obs::TraceKind::kDispatch, id, jobs_.remaining(id));

  const Job& j = instance_->job(id);
  const double completion = cursor_.invert(now_, jobs_.remaining(id));
  if (completion <= j.deadline + deadline_eps(j.deadline)) {
    // Clamp to the deadline so a completion that lands "at" the deadline
    // sorts before the expiry event at the same timestamp.
    push_event(std::min(completion, j.deadline), EventType::kCompletion, id,
               dispatch_epoch_);
    completion_pending_ = true;
  }
  // Otherwise the job cannot finish under the true capacity path from here;
  // the expiry event at its deadline will raise the failure interrupt (the
  // scheduler is free to preempt it earlier).
}

TimerId Engine::set_timer(double t, JobId jid, int tag) {
  SJS_CHECK_MSG(in_callback_, "set_timer() outside a scheduler callback");
  SJS_CHECK_MSG(t >= now_ - 1e-12, "timer in the past: " << t << " < " << now_);
  // The global seq keeps wheel entries totally ordered against the other two
  // event sides exactly as when timers shared the heap.
  const TimerId id = wheel_.arm(std::max(t, now_), jid, tag, next_seq_++);
  ++result_.timers_armed;
  result_.timer_slab_peak =
      std::max<std::uint64_t>(result_.timer_slab_peak, wheel_.live_count());
  result_.event_heap_peak = std::max<std::uint64_t>(
      result_.event_heap_peak, pending_events());
  return id;
}

void Engine::cancel_timer(TimerId id) {
  if (id == kNoTimer) return;
  // O(1): frees the slab slot; the queued node stays as a tombstone (stale
  // ids are a tolerated no-op; corrupted ids fail a check inside the wheel).
  if (!wheel_.cancel(id)) return;
  ++dead_events_;  // its queued node is now dead weight
  result_.event_heap_dead_peak =
      std::max<std::uint64_t>(result_.event_heap_dead_peak, dead_events_);
  maybe_compact_heap();
}

void Engine::handle_completion(const Event& event) {
  if (event.id != dispatch_epoch_ || event.job != running_) {  // stale
    --dead_events_;  // counted when the preemption invalidated it
    return;
  }
  completion_pending_ = false;
  // The inversion is exact; any residue is floating-point dust.
  SJS_CHECK_MSG(jobs_.remaining(event.job) <
                    1e-6 * std::max(1.0, instance_->job(event.job).workload),
                "completion event with " << jobs_.remaining(event.job)
                                         << " work left");
  jobs_.remaining(event.job) = 0.0;
  jobs_.set_outcome(event.job, JobOutcome::kCompleted);
  halt_running();

  const Job& j = instance_->job(event.job);
  result_.completed_value += j.value;
  ++result_.completed_count;
  result_.completion_times[job_slot(event.job)] = now_;
  result_.value_trace.append(now_, result_.completed_value);
  trace(obs::TraceKind::kComplete, event.job, j.value);

  scheduler_->on_complete(*this, event.job);
}

void Engine::handle_expiry(const Event& event) {
  if (jobs_.outcome(event.job) != JobOutcome::kPending) return;  // completed
  jobs_.set_outcome(event.job, JobOutcome::kExpired);
  ++result_.expired_count;
  const bool was_running = (running_ == event.job);
  if (was_running) halt_running();
  trace(obs::TraceKind::kExpire, event.job, jobs_.remaining(event.job),
        was_running ? 1.0 : 0.0);
  scheduler_->on_expire(*this, event.job, was_running);
}

void Engine::handle_release(const Event& event) {
  jobs_.set_released(event.job);
  const Job& j = instance_->job(event.job);
  trace(obs::TraceKind::kRelease, event.job, j.workload, j.deadline);
  scheduler_->on_release(*this, event.job);
}

void Engine::handle_timer(const Event& event) {
  if ((event.id >> 32) != 0) {
    // Cancelled before firing (a wheel tombstone): dead event, counted when
    // the cancel happened. Popping it still advanced the clock — the
    // digest-relevant side effect the tombstone exists to preserve.
    --dead_events_;
    return;
  }
  // The slot was freed in pop_event; the id is already stale and the timer
  // fires exactly once.
  const JobId jid = event.job;
  const int tag = static_cast<int>(static_cast<std::uint32_t>(event.id));
  // Guard: timers reference queue membership that only matters for live jobs;
  // a timer outliving its job (completed early, or expired at the same
  // instant) must not resurrect it.
  if (jid != kNoJob && !is_live(jid)) return;
  trace(obs::TraceKind::kTimer, jid, static_cast<double>(tag));
  scheduler_->on_timer(*this, jid, tag);
}

const SimResult& Engine::run_to_completion() {
  // clear() (not `result_ = SimResult{}`) keeps every per-job vector's
  // capacity, so a warmed engine's replay performs no result allocations.
  result_.clear();
  result_.scheduler_name = scheduler_->name();
  result_.generated_value = instance_->total_value();
  result_.completion_times.assign(instance_->size(),
                                  std::numeric_limits<double>::quiet_NaN());
  result_.release_times.reserve(instance_->size());
  result_.value_trace.reserve(instance_->size());
  static_events_.reserve(static_events_.size() + 2 * instance_->size());

  for (const Job& j : instance_->jobs()) {
    util::append(result_.release_times, j.release);
    push_event(j.release, EventType::kRelease, j.id, 0);
    push_event(j.deadline, EventType::kExpiry, j.id, 0);
  }
  if (scheduler_->wants_capacity_events()) {
    const double end = instance_->max_deadline();
    for (double bp : instance_->capacity().breakpoints()) {
      if (bp > 0.0 && bp <= end) {
        push_event(bp, EventType::kCapacityChange, kNoJob, 0);
      }
    }
  }

  // Seal the static side: one ascending sort, then pops are a cursor walk.
  std::sort(static_events_.begin(), static_events_.end(),
            [](const Event& a, const Event& b) { return b > a; });
  static_sealed_ = true;

  trace(obs::TraceKind::kRunStart, kNoJob,
        static_cast<double>(instance_->size()));

  in_callback_ = true;
  scheduler_->on_start(*this);
  in_callback_ = false;

  while (pending_events() > 0) {
    step_event();
  }

  harvest_result();
  return result_;
}

void Engine::process_event(const Event& event) {
  switch (event.type) {
    case EventType::kCompletion:
      handle_completion(event);
      break;
    case EventType::kExpiry:
      handle_expiry(event);
      break;
    case EventType::kCapacityChange:
      trace(obs::TraceKind::kCapacityChange, kNoJob, cursor_.rate(now_));
      scheduler_->on_capacity_change(*this);
      break;
    case EventType::kRelease:
      handle_release(event);
      break;
    case EventType::kTimer:
      handle_timer(event);
      break;
  }
}

// sjs-hot-path-root
void Engine::step_event() {
  const Event event = pop_event();
  now_ = std::max(now_, event.time);
  // Safe exactly here: the pop removed the global minimum, so no pending
  // wheel entry is earlier than now_ — the precondition for cascading.
  wheel_.advance_clock(now_);
  advance_execution(now_);
  ++result_.events_processed;

  in_callback_ = true;
  process_event(event);
  in_callback_ = false;
}

void Engine::harvest_result() {
  result_.outcomes = jobs_.outcome_lane();
  util::grow(result_.executed_work, instance_->size());
  const std::vector<double>& remaining = jobs_.remaining_lane();
  for (std::size_t i = 0; i < instance_->size(); ++i) {
    result_.executed_work[i] = instance_->jobs()[i].workload - remaining[i];
  }
  result_.job_slab_peak = jobs_.peak();
  result_.job_slab_slots = jobs_.slots();
  result_.timer_slab_slots = wheel_.slab_size();
  result_.timer_cascades = wheel_.cascades();
  result_.timer_cascade_entries = wheel_.cascaded_entries();
  result_.timer_bucket_peak = wheel_.bucket_peak();
  const Scheduler::QueueStats queue_stats = scheduler_->queue_stats();
  result_.queue_peak = queue_stats.peak;
  result_.queue_slots = queue_stats.slots;
  trace(obs::TraceKind::kRunEnd, kNoJob, result_.completed_value,
        result_.generated_value);
  if (sink_) sink_->flush();
}

// --- Live mode (real-time admission serving) --------------------------------

void Engine::begin_live() {
  SJS_CHECK_MSG(!live_ && !in_callback_, "begin_live: already live");
  live_ = true;
  result_.clear();
  result_.scheduler_name = scheduler_->name();
  result_.generated_value = instance_->total_value();
  result_.completion_times.assign(instance_->size(),
                                  std::numeric_limits<double>::quiet_NaN());
  result_.release_times.reserve(instance_->size());
  // A live session normally starts empty, but admit any pre-loaded jobs so a
  // warm-started instance behaves like the equivalent replay.
  for (const Job& j : instance_->jobs()) {
    util::append(result_.release_times, j.release);
    push_event(j.release, EventType::kRelease, j.id, 0);
    push_event(j.deadline, EventType::kExpiry, j.id, 0);
  }
  if (scheduler_->wants_capacity_events()) {
    // All profile breakpoints: the final deadline is unknown up front. The
    // extras beyond the last admitted deadline fire with no live jobs and
    // change nothing — outcome equality with replay is unaffected.
    for (double bp : instance_->capacity().breakpoints()) {
      if (bp > 0.0) {
        push_event(bp, EventType::kCapacityChange, kNoJob, 0);
      }
    }
  }
  std::sort(static_events_.begin(), static_events_.end(),
            [](const Event& a, const Event& b) { return b > a; });
  static_sealed_ = true;

  trace(obs::TraceKind::kRunStart, kNoJob,
        static_cast<double>(instance_->size()));
  in_callback_ = true;
  scheduler_->on_start(*this);
  in_callback_ = false;
}

void Engine::admit_live(JobId id) {
  SJS_CHECK_MSG(live_ && !in_callback_, "admit_live outside live mode");
  SJS_CHECK_MSG(static_cast<std::size_t>(id) == jobs_.size(),
                "admit_live out of order: job " << id << ", expected "
                    << jobs_.size());
  const Job& j = instance_->job(id);
  SJS_CHECK_MSG(j.release >= now_ - 1e-12,
                "admit_live in the past: release " << j.release << " < now "
                    << now_);
  // Dense append: live ids stay == admission order (journal local ids and
  // the outcome CSV depend on it), so slots are never reused here. All
  // growth is to reserve_live's pre-size in a bounded-in-flight session.
  const JobId slab_id = jobs_.append_dense(j.workload);
  SJS_CHECK_MSG(slab_id == id, "job slab out of sync with instance ids");
  result_.generated_value += j.value;
  util::append(result_.completion_times,
               std::numeric_limits<double>::quiet_NaN());
  util::append(result_.release_times, j.release);
  push_event(j.release, EventType::kRelease, id, 0);
  push_event(j.deadline, EventType::kExpiry, id, 0);
}

bool Engine::cancel_live(JobId id) {
  SJS_CHECK_MSG(live_ && !in_callback_, "cancel_live outside live mode");
  if (!is_live(id)) return false;
  // Deliver an ordinary expiry interrupt at the current instant; the job's
  // original expiry event stays queued and later pops as a no-op (outcome is
  // no longer pending). Note this subdivides the running job's execution
  // integral at now(), so cancel-bearing sessions are excluded from the
  // bit-exact replay guarantee (docs/serving.md).
  advance_execution(now_);
  const Event event{now_, EventType::kExpiry, next_seq_++, id, 0};
  ++result_.events_processed;
  in_callback_ = true;
  handle_expiry(event);
  in_callback_ = false;
  return true;
}

void Engine::advance_to(double t) {
  SJS_CHECK_MSG(live_ && !in_callback_, "advance_to outside live mode");
  SJS_CHECK_MSG(t >= now_ - 1e-12, "advance_to moving backwards: " << t
                                       << " < " << now_);
  while (pending_events() > 0 && peek_event_time() < t) {
    step_event();
  }
  now_ = std::max(now_, t);
  // last_advance_ deliberately stays at the last processed event: execution
  // integrals must be subdivided at event times only, exactly as replay
  // subdivides them, or remaining workloads drift by ulps.
}

double Engine::next_event_time() const {
  if (pending_events() == 0) return std::numeric_limits<double>::infinity();
  return peek_event_time();
}

const SimResult& Engine::finish_live() {
  SJS_CHECK_MSG(live_ && !in_callback_, "finish_live outside live mode");
  while (pending_events() > 0) {
    step_event();
  }
  harvest_result();
  live_ = false;
  return result_;
}

void Engine::reserve_live(std::size_t max_in_flight) {
  live_reserve_ = max_in_flight;
  jobs_.reserve(max_in_flight);
  // Live releases/expiries go to the volatile heap: up to two events per
  // in-flight job, plus the running job's completion.
  heap_.reserve(2 * max_in_flight + 1);
  // The static side only takes pre-loaded jobs and capacity breakpoints.
  static_events_.reserve(2 * instance_->size() +
                         instance_->capacity().breakpoints().size());
  wheel_.reserve(max_in_flight);
  result_.completion_times.reserve(max_in_flight);
  result_.release_times.reserve(max_in_flight);
  result_.outcomes.reserve(max_in_flight);
  result_.executed_work.reserve(max_in_flight);
  result_.value_trace.reserve(max_in_flight);
}

}  // namespace sjs::sim
