#include "sim/timer_wheel.hpp"

#include <bit>
#include <cstring>

#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::sim {

TimerWheel::TimerWheel() { clear(); }

void TimerWheel::clear() {
  slab_.clear();
  free_slots_.clear();
  live_count_ = 0;
  nodes_.clear();
  free_nodes_.clear();
  pending_count_ = 0;
  cur_key_ = 0;
  head_.fill(kNil);
  count_.fill(0);
  bits_.fill(0);
  word_mask_ = 0;
  min_node_ = kNil;
  min_dirty_ = false;
  cascades_ = 0;
  cascaded_entries_ = 0;
  bucket_peak_ = 0;
}

std::uint64_t TimerWheel::key_of(double time) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(time));
  std::memcpy(&bits, &time, sizeof(bits));
  // -0.0 and +0.0 are the same instant; canonicalise so the key stays
  // monotone over the engine's non-negative clock.
  if (bits == 0x8000000000000000ull) bits = 0;
  SJS_CHECK_MSG(bits <= 0x7ff0000000000000ull,
                "TimerWheel: negative or NaN time " << time);
  return bits;
}

void TimerWheel::advance_clock(double now) {
  const std::uint64_t key = key_of(now);
  if (key <= cur_key_) return;
  if (((key ^ cur_key_) >> 8) == 0) {
    // The clock moved within one level-0 bucket span: level-0 slots are
    // already exact instants, nothing can need finer placement.
    cur_key_ = key;
    return;
  }
  advance_slow(key);
}

std::uint32_t TimerWheel::bucket_of(std::uint64_t key) const {
  const std::uint64_t diff = key ^ cur_key_;
  if (diff == 0) {
    return static_cast<std::uint32_t>(key & 0xffu);
  }
  const int level = (63 - std::countl_zero(diff)) >> 3;
  const auto slot =
      static_cast<std::uint32_t>((key >> (level * 8)) & 0xffu);
  return static_cast<std::uint32_t>(level) * kSlotsPerLevel + slot;
}

void TimerWheel::link(std::uint32_t node, std::uint32_t bucket) {
  Node& n = nodes_[node];
  n.bucket = static_cast<std::uint16_t>(bucket);
  n.prev = kNil;
  n.next = head_[bucket];
  if (n.next != kNil) nodes_[n.next].prev = node;
  head_[bucket] = node;
  bits_[bucket >> 6] |= 1ull << (bucket & 63u);
  word_mask_ |= 1u << (bucket >> 6);
  ++count_[bucket];
  bucket_peak_ = std::max<std::uint64_t>(bucket_peak_, count_[bucket]);
}

void TimerWheel::unlink(std::uint32_t node) {
  Node& n = nodes_[node];
  const std::uint32_t bucket = n.bucket;
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_[bucket] = n.next;
  }
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
  if (head_[bucket] == kNil) {
    bits_[bucket >> 6] &= ~(1ull << (bucket & 63u));
    if (bits_[bucket >> 6] == 0) word_mask_ &= ~(1u << (bucket >> 6));
  }
  --count_[bucket];
}

void TimerWheel::free_node(std::uint32_t node) {
  // Free-list push: growth stops at the pool high-water (reserve() pre-sizes
  // it for live mode).
  util::append(free_nodes_, node);
  --pending_count_;
}

TimerId TimerWheel::arm(double time, JobId job, int tag, std::uint64_t seq) {
  const std::uint64_t key = key_of(time);
  SJS_CHECK_MSG(key >= cur_key_,
                "TimerWheel: arm at " << time << " behind the wheel clock");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    util::append(slab_, Slot{});
  }
  Slot& s = slab_[slot];
  s.job = job;
  s.tag = tag;
  s.live = true;
  ++live_count_;
  // Ids are (generation << 32) | (slot + 1); the +1 keeps every id distinct
  // from kNoTimer regardless of generation.
  const TimerId id =
      (static_cast<TimerId>(s.generation) << 32) | (slot + 1ull);

  std::uint32_t node;
  if (!free_nodes_.empty()) {
    node = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    node = static_cast<std::uint32_t>(nodes_.size());
    util::append(nodes_, Node{});
  }
  Node& n = nodes_[node];
  n.time = time;
  n.key = key;
  n.seq = seq;
  n.id = id;
  ++pending_count_;
  link(node, bucket_of(key));
  if (!min_dirty_) {
    // seq is strictly increasing, so an equal-key arm never displaces the
    // cached minimum (the earlier seq pops first).
    if (min_node_ == kNil || key < nodes_[min_node_].key) min_node_ = node;
  }
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  const std::uint64_t slot_plus_one = id & 0xffffffffull;
  SJS_CHECK_MSG(slot_plus_one >= 1 && slot_plus_one <= slab_.size(),
                "cancel_timer: corrupted TimerId " << id << " (slab has "
                    << slab_.size() << " slots)");
  const std::uint32_t slot = slot_of_id(id);
  Slot& s = slab_[slot];
  if (!s.live || s.generation != generation_of_id(id)) return false;  // stale
  s.live = false;
  ++s.generation;
  util::append(free_slots_, slot);
  --live_count_;
  // The queued node stays as a tombstone: it pops (or is purged) at the same
  // instant the dead heap event used to, keeping the engine's execution
  // subdivision — and therefore the replay digest — byte-identical.
  return true;
}

void TimerWheel::find_min() const {
  if (word_mask_ == 0) {
    min_node_ = kNil;
    min_dirty_ = false;
    return;
  }
  const int word = std::countr_zero(word_mask_);
  const std::uint64_t occupied = bits_[word];
  const auto bucket =
      static_cast<std::uint32_t>(word * 64 + std::countr_zero(occupied));
  // Linear scan of the one bucket that can hold the minimum (see the level
  // invariant in the header). At level 0 all keys in a bucket are identical,
  // so this picks the minimum seq — the digest order.
  std::uint32_t best = head_[bucket];
  for (std::uint32_t i = nodes_[best].next; i != kNil; i = nodes_[i].next) {
    const Node& a = nodes_[i];
    const Node& b = nodes_[best];
    if (a.key < b.key || (a.key == b.key && a.seq < b.seq)) best = i;
  }
  min_node_ = best;
  min_dirty_ = false;
}

TimerWheel::Fired TimerWheel::pop() {
  SJS_CHECK_MSG(pending_count_ > 0, "TimerWheel::pop on an empty wheel");
  if (min_dirty_ || min_node_ == kNil) find_min();
  const std::uint32_t node = min_node_;
  const Node& n = nodes_[node];
  Fired fired{n.time, n.seq, kNoJob, 0, false};
  const std::uint32_t slot = slot_of_id(n.id);
  Slot& s = slab_[slot];
  if (s.generation == generation_of_id(n.id)) {
    SJS_CHECK_MSG(s.live, "timer slab resurrected freed id " << n.id);
    fired.job = s.job;
    fired.tag = s.tag;
    fired.live = true;
    // Fires exactly once: free the slot, invalidating the outstanding id.
    s.live = false;
    ++s.generation;
    util::append(free_slots_, slot);
    --live_count_;
  }
  unlink(node);
  free_node(node);
  min_node_ = kNil;
  min_dirty_ = true;
  return fired;
}

void TimerWheel::advance_slow(std::uint64_t key) {
  const std::uint64_t diff = key ^ cur_key_;
  const int level = (63 - std::countl_zero(diff)) >> 3;
  const auto slot = static_cast<std::uint32_t>((key >> (level * 8)) & 0xffu);
  const auto bucket =
      static_cast<std::uint32_t>(level) * kSlotsPerLevel + slot;
  std::uint32_t chain = head_[bucket];
  cur_key_ = key;
  if (chain == kNil) return;
  // Detach the whole bucket, then relink each node against the new clock.
  // Every node here agrees with the new clock on bytes >= `level`, so each
  // lands strictly below — a node cascades at most kLevels - 1 times total.
  head_[bucket] = kNil;
  bits_[bucket >> 6] &= ~(1ull << (bucket & 63u));
  if (bits_[bucket >> 6] == 0) word_mask_ &= ~(1u << (bucket >> 6));
  count_[bucket] = 0;
  ++cascades_;
  while (chain != kNil) {
    const std::uint32_t node = chain;
    chain = nodes_[node].next;
    link(node, bucket_of(nodes_[node].key));
    ++cascaded_entries_;
  }
}

std::size_t TimerWheel::purge_dead() {
  std::size_t purged = 0;
  // Visit only occupied buckets via the occupancy bitmaps: compaction fires
  // when tombstones dominate a *small* volatile side, so the population is
  // typically a few buckets out of 2048.
  for (int word = 0; word < kLevels * 4; ++word) {
    std::uint64_t occupied = bits_[word];
    while (occupied != 0) {
      const int bit = std::countr_zero(occupied);
      occupied &= occupied - 1;
      const auto bucket = static_cast<std::uint32_t>(word * 64 + bit);
      std::uint32_t node = head_[bucket];
      while (node != kNil) {
        const std::uint32_t next = nodes_[node].next;
        const TimerId id = nodes_[node].id;
        const Slot& s = slab_[slot_of_id(id)];
        if (s.generation != generation_of_id(id)) {
          unlink(node);
          free_node(node);
          ++purged;
        }
        node = next;
      }
    }
  }
  if (purged > 0) {
    min_node_ = kNil;
    min_dirty_ = true;
  }
  return purged;
}

}  // namespace sjs::sim
