// InvariantChecker — online runtime verification of engine conservation laws.
//
// A TraceSink that replays the event stream against the ground-truth
// instance (jobs + capacity sample path) and independently re-derives what
// the engine claims: it integrates ∫c(τ)dτ over every execution slice it
// observes, so any engine accounting bug — lost work, execution outside a
// job's window, double completion, value miscounting — surfaces as a typed
// violation instead of a silently wrong experiment.
//
// Invariants verified on every run:
//   I1  event times are non-decreasing (the engine's ordering contract);
//   I2  releases happen exactly at r_i, once per job;
//   I3  no job executes outside [r_i, d_i], and at most one job occupies a
//       server at a time (dispatch implies the previous slice closed);
//   I4  a completed job received exactly p_i of work — the checker's own
//       ∫c(τ)dτ over the job's slices, not the engine's number;
//   I5  executed work over busy intervals never exceeds ∫c(τ)dτ available
//       on [0, T] (conservation; equality holds per slice by I4's method);
//   I6  no job completes after expiring, or vice versa;
//   I7  value accounting: Σ v_i over observed completions equals the
//       completed value the engine reports at kRunEnd, and the generated
//       value equals the instance total;
//   I8  capacity-change events report the true rate c(t);
//   I9  V-Dover/Dover only label a job supplement — or abandon it — after
//       that job actually went through the zero-laxity value test (kNote
//       records, see trace_event.hpp).
//
// By default the checker runs on the single-server engine using the
// instance's capacity path; for cloud::MultiEngine streams, supply the
// per-server profiles via set_server_profiles().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capacity/capacity_profile.hpp"
#include "jobs/instance.hpp"
#include "obs/trace_sink.hpp"

namespace sjs::obs {

struct InvariantViolation {
  std::string what;
  TraceEvent event;
};

class InvariantChecker : public TraceSink {
 public:
  struct Options {
    /// Relative tolerance for work/value comparisons (floating-point dust).
    double tolerance = 1e-6;
    /// Throw CheckError on first violation instead of collecting.
    bool throw_on_violation = false;
    /// Cap on stored violations (the stream may be long).
    std::size_t max_violations = 100;
  };

  explicit InvariantChecker(const Instance& instance)
      : InvariantChecker(instance, Options()) {}
  InvariantChecker(const Instance& instance, Options options);

  /// For multi-server streams: per-server capacity paths, indexed by the
  /// TraceEvent::server field.
  void set_server_profiles(std::vector<cap::CapacityProfile> profiles);

  void record(const TraceEvent& event) override;

  /// Cross-checks the engine's reported per-job executed work against this
  /// checker's independent integration (call after the run with
  /// SimResult::executed_work).
  void verify_executed_work(const std::vector<double>& reported);

  bool ok() const { return violations_.empty(); }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t events_seen() const { return events_seen_; }
  /// Work this checker integrated for `job` across its execution slices.
  double executed(JobId job) const;
  double total_executed() const;
  std::uint64_t completed_count() const { return completed_count_; }

  /// Multi-line summary: "OK (N events)" or the collected violations.
  std::string report() const;

 private:
  const cap::CapacityProfile& profile_for(std::int32_t server) const;
  double work_tolerance(const Job& job) const;
  void fail(const TraceEvent& event, const std::string& what);
  /// Integrates and closes the open slice on `server` (no-op when idle).
  /// `expected` != kNoJob asserts which job the slice must hold.
  void close_slice(std::int32_t server, double t, JobId expected);

  void check_release(const TraceEvent& event);
  void check_dispatch(const TraceEvent& event);
  void check_complete(const TraceEvent& event);
  void check_expire(const TraceEvent& event);
  void check_note(const TraceEvent& event);
  void check_run_end(const TraceEvent& event);

  struct OpenSlice {
    JobId job;
    double start;
  };

  const Instance* instance_;
  Options options_;
  std::vector<cap::CapacityProfile> server_profiles_;

  std::vector<double> executed_;
  std::vector<char> released_;
  std::vector<char> completed_;
  std::vector<char> expired_;
  std::vector<char> zero_laxity_tested_;
  std::map<std::int32_t, OpenSlice> open_;  // per server (-1 = single engine)

  double last_time_ = 0.0;
  double value_sum_ = 0.0;
  std::uint64_t completed_count_ = 0;
  std::uint64_t events_seen_ = 0;
  bool run_ended_ = false;

  std::vector<InvariantViolation> violations_;
  std::uint64_t suppressed_violations_ = 0;
};

}  // namespace sjs::obs
