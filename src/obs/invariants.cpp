#include "obs/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hpp"
#include "util/fp.hpp"
#include "util/vec.hpp"

namespace sjs::obs {

namespace {
// Matches the engine's deadline tolerance (sim/engine.cpp): completion
// instants are exact, deadlines computed independently; within an ulp-scale
// band the two may disagree.
double deadline_eps(double deadline) {
  return 1e-9 * std::max(1.0, std::abs(deadline));
}
}  // namespace

InvariantChecker::InvariantChecker(const Instance& instance, Options options)
    : instance_(&instance), options_(options) {
  const std::size_t n = instance.size();
  executed_.assign(n, 0.0);
  released_.assign(n, 0);
  completed_.assign(n, 0);
  expired_.assign(n, 0);
  zero_laxity_tested_.assign(n, 0);
}

void InvariantChecker::set_server_profiles(
    std::vector<cap::CapacityProfile> profiles) {
  server_profiles_ = std::move(profiles);
}

const cap::CapacityProfile& InvariantChecker::profile_for(
    std::int32_t server) const {
  if (server >= 0 && static_cast<std::size_t>(server) < server_profiles_.size()) {
    return server_profiles_[static_cast<std::size_t>(server)];
  }
  return instance_->capacity();
}

double InvariantChecker::work_tolerance(const Job& job) const {
  // Relative slack on the workload plus the work representable inside the
  // engine's deadline snap (a completion clamped to d can shave up to
  // c_hi * deadline_eps(d) of integrated work).
  return options_.tolerance * std::max(1.0, job.workload) +
         instance_->c_hi() * deadline_eps(job.deadline);
}

void InvariantChecker::fail(const TraceEvent& event, const std::string& what) {
  if (options_.throw_on_violation) {
    SJS_CHECK_MSG(false, "invariant violation at t=" << event.time << " ["
                                                     << kind_name(event.kind)
                                                     << "]: " << what);
  }
  if (violations_.size() < options_.max_violations) {
    // Failure path only: fires when an invariant is already broken, so the
    // zero-allocation steady-state claim is unaffected.
    util::append(violations_, InvariantViolation{what, event});
  } else {
    ++suppressed_violations_;
  }
}

void InvariantChecker::close_slice(std::int32_t server, double t,
                                   JobId expected) {
  const auto it = open_.find(server);
  if (it == open_.end()) {
    if (expected != kNoJob) {
      std::ostringstream os;
      os << "job " << expected << " stopped on server " << server
         << " but no execution slice was open";
      fail(TraceEvent{t, TraceKind::kIdle, expected, server, 0, 0}, os.str());
    }
    return;
  }
  const OpenSlice slice = it->second;
  open_.erase(it);
  if (expected != kNoJob && slice.job != expected) {
    std::ostringstream os;
    os << "expected job " << expected << " on server " << server
       << " but slice holds job " << slice.job;
    fail(TraceEvent{t, TraceKind::kIdle, expected, server, 0, 0}, os.str());
  }
  const Job& job = instance_->job(slice.job);
  // I3: the slice must lie inside [r_i, d_i].
  if (slice.start < job.release - deadline_eps(job.release)) {
    std::ostringstream os;
    os << "job " << slice.job << " executed before its release (slice start "
       << slice.start << " < r=" << job.release << ")";
    fail(TraceEvent{t, TraceKind::kDispatch, slice.job, server, 0, 0},
         os.str());
  }
  if (t > job.deadline + deadline_eps(job.deadline)) {
    std::ostringstream os;
    os << "job " << slice.job << " executed past its deadline (slice end " << t
       << " > d=" << job.deadline << ")";
    fail(TraceEvent{t, TraceKind::kDispatch, slice.job, server, 0, 0},
         os.str());
  }
  executed_[static_cast<std::size_t>(slice.job)] +=
      profile_for(server).work(std::max(0.0, slice.start), std::max(0.0, t));
}

void InvariantChecker::check_release(const TraceEvent& event) {
  const auto idx = static_cast<std::size_t>(event.job);
  if (event.job < 0 || idx >= released_.size()) {
    fail(event, "release of unknown job id");
    return;
  }
  if (released_[idx]) {
    fail(event, "job released twice");
    return;
  }
  released_[idx] = 1;
  const Job& job = instance_->job(event.job);
  // I2: releases happen at r_i.
  if (std::abs(event.time - job.release) > deadline_eps(job.release)) {
    std::ostringstream os;
    os << "job " << event.job << " released at " << event.time
       << " but r=" << job.release;
    fail(event, os.str());
  }
}

void InvariantChecker::check_dispatch(const TraceEvent& event) {
  const auto idx = static_cast<std::size_t>(event.job);
  if (event.job < 0 || idx >= released_.size()) {
    fail(event, "dispatch of unknown job id");
    return;
  }
  if (!released_[idx]) fail(event, "dispatch of an unreleased job");
  if (completed_[idx]) fail(event, "dispatch of a completed job");
  if (expired_[idx]) fail(event, "dispatch of an expired job");
  const Job& job = instance_->job(event.job);
  if (event.time > job.deadline + deadline_eps(job.deadline)) {
    fail(event, "dispatch after the job's deadline");
  }
  // A dispatch displaces whatever ran before it on this server; the engine
  // emits kPreempt/kIdle first, so normally no slice is open here. Closing
  // unconditionally keeps the integration exact even for sink streams that
  // filter preempt records out.
  close_slice(event.server, event.time, kNoJob);
  open_[event.server] = OpenSlice{event.job, event.time};
}

void InvariantChecker::check_complete(const TraceEvent& event) {
  const auto idx = static_cast<std::size_t>(event.job);
  if (event.job < 0 || idx >= released_.size()) {
    fail(event, "completion of unknown job id");
    return;
  }
  // A completion interrupt can only come from the running job.
  close_slice(event.server, event.time, event.job);
  const Job& job = instance_->job(event.job);
  if (completed_[idx]) fail(event, "job completed twice");          // I6
  if (expired_[idx]) fail(event, "completion of an expired job");   // I6
  completed_[idx] = 1;
  ++completed_count_;
  value_sum_ += job.value;
  if (std::abs(event.a - job.value) > options_.tolerance) {
    std::ostringstream os;
    os << "completion value payload " << event.a << " != v=" << job.value;
    fail(event, os.str());
  }
  // I4: the job received exactly p_i, by our own integration.
  const double got = executed_[idx];
  if (std::abs(got - job.workload) > work_tolerance(job)) {
    std::ostringstream os;
    os << "job " << event.job << " completed with integrated work " << got
       << " != p=" << job.workload;
    fail(event, os.str());
  }
  if (event.time > job.deadline + deadline_eps(job.deadline)) {
    fail(event, "completion after the deadline");
  }
}

void InvariantChecker::check_expire(const TraceEvent& event) {
  const auto idx = static_cast<std::size_t>(event.job);
  if (event.job < 0 || idx >= released_.size()) {
    fail(event, "expiry of unknown job id");
    return;
  }
  if (completed_[idx]) fail(event, "expiry of a completed job");  // I6
  if (expired_[idx]) fail(event, "job expired twice");
  expired_[idx] = 1;
  const bool was_running = !fp::is_zero(event.b);
  if (was_running) {
    close_slice(event.server, event.time, event.job);
  }
  const Job& job = instance_->job(event.job);
  if (std::abs(event.time - job.deadline) > deadline_eps(job.deadline)) {
    std::ostringstream os;
    os << "job " << event.job << " expired at " << event.time
       << " but d=" << job.deadline;
    fail(event, os.str());
  }
  // An expired job must not have received its full workload (it would have
  // completed): allow equality within tolerance for the deadline-snap case.
  if (executed_[idx] > job.workload + work_tolerance(job)) {
    fail(event, "expired job received more than its workload");
  }
}

void InvariantChecker::check_note(const TraceEvent& event) {
  const auto code = static_cast<int>(event.a);
  const auto idx = static_cast<std::size_t>(event.job);
  if (event.job < 0 || idx >= zero_laxity_tested_.size()) return;
  switch (code) {
    case kNoteZeroLaxityTest:
      zero_laxity_tested_[idx] = 1;
      break;
    case kNoteSupplement:
    case kNoteAbandon:
    case kNoteOclScheduled:
      // I9: the 0cl outcome labels are only ever applied to a job that went
      // through the value test.
      if (!zero_laxity_tested_[idx]) {
        std::ostringstream os;
        os << "job " << event.job << " labelled "
           << (code == kNoteSupplement
                   ? "supplement"
                   : code == kNoteAbandon ? "abandoned" : "0cl-scheduled")
           << " without a zero-laxity value test";
        fail(event, os.str());
      }
      break;
    default:
      break;
  }
}

void InvariantChecker::check_run_end(const TraceEvent& event) {
  run_ended_ = true;
  // I7: value accounting.
  const double value_tol =
      options_.tolerance * std::max(1.0, instance_->total_value());
  if (std::abs(value_sum_ - event.a) > value_tol) {
    std::ostringstream os;
    os << "engine reports completed value " << event.a
       << " but observed completions sum to " << value_sum_;
    fail(event, os.str());
  }
  if (std::abs(instance_->total_value() - event.b) > value_tol) {
    std::ostringstream os;
    os << "engine reports generated value " << event.b
       << " but the instance totals " << instance_->total_value();
    fail(event, os.str());
  }
  // Every job must have been released and reached a terminal state.
  for (std::size_t i = 0; i < released_.size(); ++i) {
    if (!released_[i]) {
      std::ostringstream os;
      os << "job " << i << " was never released";
      fail(event, os.str());
    }
    if (!completed_[i] && !expired_[i]) {
      std::ostringstream os;
      os << "job " << i << " reached no terminal state";
      fail(event, os.str());
    }
  }
  // I5: conservation against the capacity supply (single-server stream; a
  // multi-server stream bounds against the sum of server supplies).
  double supply = 0.0;
  if (server_profiles_.empty()) {
    supply = instance_->capacity().work(0.0, event.time);
  } else {
    for (const auto& profile : server_profiles_) {
      supply += profile.work(0.0, event.time);
    }
  }
  const double total = total_executed();
  if (total > supply * (1.0 + options_.tolerance) + options_.tolerance) {
    std::ostringstream os;
    os << "executed work " << total << " exceeds capacity supply " << supply;
    fail(event, os.str());
  }
}

void InvariantChecker::record(const TraceEvent& event) {
  ++events_seen_;
  // I1: monotone time.
  if (event.time < last_time_ - 1e-12) {
    std::ostringstream os;
    os << "time moved backwards: " << event.time << " after " << last_time_;
    fail(event, os.str());
  }
  last_time_ = std::max(last_time_, event.time);

  switch (event.kind) {
    case TraceKind::kRunStart:
      if (static_cast<std::size_t>(event.a) != instance_->size()) {
        fail(event, "run_start job count does not match the instance");
      }
      break;
    case TraceKind::kRelease:
      check_release(event);
      break;
    case TraceKind::kDispatch:
      check_dispatch(event);
      break;
    case TraceKind::kPreempt:
      close_slice(event.server, event.time, event.job);
      break;
    case TraceKind::kIdle:
      close_slice(event.server, event.time, kNoJob);
      break;
    case TraceKind::kComplete:
      check_complete(event);
      break;
    case TraceKind::kExpire:
      check_expire(event);
      break;
    case TraceKind::kTimer:
      break;
    case TraceKind::kCapacityChange: {
      // I8: the reported rate is the true sample-path rate. Only checkable
      // against the instance path on single-server streams.
      if (server_profiles_.empty()) {
        const double truth = instance_->capacity().rate(event.time);
        if (std::abs(event.a - truth) > options_.tolerance) {
          std::ostringstream os;
          os << "capacity_change reports rate " << event.a << " but c(t)="
             << truth;
          fail(event, os.str());
        }
      }
      break;
    }
    case TraceKind::kMigrate:
      // The job leaves its source server (a); the destination slice opens at
      // the kDispatch that follows.
      close_slice(static_cast<std::int32_t>(event.a), event.time, event.job);
      break;
    case TraceKind::kNote:
      check_note(event);
      break;
    case TraceKind::kRunEnd:
      check_run_end(event);
      break;
  }
}

void InvariantChecker::verify_executed_work(
    const std::vector<double>& reported) {
  if (reported.size() != executed_.size()) {
    fail(TraceEvent{last_time_, TraceKind::kRunEnd, kNoJob, -1, 0, 0},
         "executed_work size does not match the instance");
    return;
  }
  for (std::size_t i = 0; i < reported.size(); ++i) {
    const Job& job = instance_->job(static_cast<JobId>(i));
    if (std::abs(reported[i] - executed_[i]) > work_tolerance(job)) {
      std::ostringstream os;
      os << "engine reports " << reported[i] << " executed for job " << i
         << " but the trace integrates to " << executed_[i];
      fail(TraceEvent{last_time_, TraceKind::kRunEnd, static_cast<JobId>(i),
                      -1, 0, 0},
           os.str());
    }
  }
}

double InvariantChecker::executed(JobId job) const {
  SJS_CHECK(job >= 0 && static_cast<std::size_t>(job) < executed_.size());
  return executed_[static_cast<std::size_t>(job)];
}

double InvariantChecker::total_executed() const {
  double total = 0.0;
  for (double w : executed_) total += w;
  return total;
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  if (ok()) {
    os << "invariants OK (" << events_seen_ << " events, " << completed_count_
       << " completions";
    if (!run_ended_) os << ", stream truncated before run_end";
    os << ")";
    return os.str();
  }
  os << violations_.size() + suppressed_violations_
     << " invariant violation(s):\n";
  for (const auto& violation : violations_) {
    os << "  t=" << violation.event.time << " ["
       << kind_name(violation.event.kind) << "] " << violation.what << "\n";
  }
  if (suppressed_violations_ > 0) {
    os << "  ... and " << suppressed_violations_ << " more\n";
  }
  return os.str();
}

}  // namespace sjs::obs
