// Trace exporters: JSONL event logs and Chrome trace_event (catapult) JSON.
//
// JSONL is the machine-diffable archival format — one self-describing JSON
// object per line, trivially consumed by jq / pandas / grep. The Chrome
// format renders the schedule as a timeline: load the file in
// chrome://tracing or https://ui.perfetto.dev and every server becomes a
// track whose slices are job executions, with releases / completions /
// expiries as instant markers and capacity as a counter track.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_sink.hpp"

namespace sjs::obs {

/// Streaming sink writing one JSON object per event line. The stream is not
/// owned and must outlive the sink.
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  void record(const TraceEvent& event) override;
  void flush() override;

 private:
  std::ostream* out_;
};

/// Writes a buffered event stream as JSONL.
void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out);

/// Writes a buffered event stream in Chrome trace_event JSON (the
/// {"traceEvents": [...]} object form). Simulation time is mapped to
/// microseconds (1 sim second = 1 trace second = 1e6 us).
void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out);

/// Convenience: writes `events` to `path` in the named format
/// ("jsonl" | "chrome"). Throws std::runtime_error on unknown format or
/// unwritable path.
void save_trace(const std::vector<TraceEvent>& events, const std::string& path,
                const std::string& format);

}  // namespace sjs::obs
