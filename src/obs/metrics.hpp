// MetricsRegistry — named counters, gauges, and distributions with
// thread-local sharding.
//
// Parallel Monte-Carlo workers must not contend on shared counters, so the
// registry never takes a lock on the update path: each thread obtains its
// own Shard (created once, under the registration mutex) and updates plain
// maps thereafter. snapshot() merges every shard — counters add, gauges take
// the maximum (shards have no global ordering, so "last write" is
// undefined), distributions merge exactly via Welford/Chan, histograms add
// bin-wise.
//
// Snapshotting while worker threads are still writing is a data race by
// design (no atomics on the hot path); call snapshot() after the parallel
// region has been joined (e.g. after ThreadPool::wait_idle()).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace_sink.hpp"
#include "stats/histogram.hpp"
#include "stats/welford.hpp"

namespace sjs::obs {

/// Merged view over all shards at one point in time.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Welford> distributions;
  std::map<std::string, Histogram> histograms;

  /// Human-readable multi-line report.
  std::string render() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  /// Per-thread accumulator. Obtained via MetricsRegistry::local(); all
  /// update methods are lock-free (the shard is thread-private). Names are
  /// taken as string_view and looked up heterogeneously, so repeated updates
  /// of an existing metric never materialise a std::string — the only
  /// allocation is the first-use key insert (setup).
  class Shard {
   public:
    /// Construct via MetricsRegistry::local(); public only so the registry
    /// can route construction through the audited util allocation helper.
    explicit Shard(const MetricsRegistry* owner) : owner_(owner) {}

    /// Adds `delta` to a monotone counter.
    void count(std::string_view name, double delta = 1.0);
    /// Sets a gauge (merged across shards by maximum).
    void set_gauge(std::string_view name, double value);
    /// Feeds a sample into a distribution (streaming mean/variance/min/max),
    /// and into its histogram when binning was declared for `name`.
    void observe(std::string_view name, double value);

   private:
    friend class MetricsRegistry;

    const MetricsRegistry* owner_;
    std::map<std::string, double, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, Welford, std::less<>> distributions_;
    std::map<std::string, Histogram, std::less<>> histograms_;
  };

  /// Declares histogram binning for distribution `name`. Must be called
  /// before the parallel region; observe() calls for `name` then also fill a
  /// histogram with these bins.
  void declare_histogram(const std::string& name, double lo, double hi,
                         std::size_t bins);

  /// The calling thread's shard (created on first use).
  Shard& local();

  /// Number of shards created so far (== distinct threads that updated).
  std::size_t shard_count() const;

  /// Merges all shards. Only safe once parallel updates have quiesced.
  MetricsSnapshot snapshot() const;

  /// snapshot().render() convenience.
  std::string render() const { return snapshot().render(); }

 private:
  struct HistogramSpec {
    double lo;
    double hi;
    std::size_t bins;
  };

  const std::uint64_t id_;  // distinguishes registries in thread-local caches
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, HistogramSpec, std::less<>> histogram_specs_;
};

// Hot-path occupancy metric names fed from SimResult by the engine's
// consumers (mc::run_monte_carlo when McConfig::metrics is set, sjs_sim
// --metrics). Gauges merge by maximum across shards, so a campaign snapshot
// reports the worst run. The bounded-memory guarantee of the timer slab /
// event heap (engine.hpp) is observable here: slab peak stays O(jobs) and the
// dead-event peak stays at most ~half the heap peak no matter how many
// timers a run arms or cancels.
inline constexpr const char* kGaugeTimerSlabPeak = "engine.timer_slab_peak";
inline constexpr const char* kGaugeTimerSlabSlots = "engine.timer_slab_slots";
inline constexpr const char* kGaugeEventHeapPeak = "engine.event_heap_peak";
inline constexpr const char* kGaugeEventHeapDeadPeak =
    "engine.event_heap_dead_peak";
inline constexpr const char* kCounterTimersArmed = "engine.timers_armed";
inline constexpr const char* kCounterHeapCompactions =
    "engine.heap_compactions";

// Job-slab occupancy (sim::JobTable, the SoA per-job state store). Peak is
// the live-job high-water mark of a run; slots the slot-array length — the
// storage actually reserved. On dense (replay) runs slots == the instance
// size; on live admission runs both are bounded by the in-flight high-water,
// never by how many jobs the session admitted in total.
inline constexpr const char* kGaugeJobSlabPeak = "engine.job_slab_peak";
inline constexpr const char* kGaugeJobSlabSlots = "engine.job_slab_slots";

// Timer-wheel churn (sim::TimerWheel, the kTimer backend of the volatile
// event side). Cascades count clock advances that relinked a bucket;
// cascade entries the nodes moved (each node cascades at most 7 times over
// its life); bucket peak merges by maximum — the deepest single bucket any
// run saw, the bound on one find-min scan.
inline constexpr const char* kCounterTimerCascades = "engine.timer.cascades";
inline constexpr const char* kCounterTimerCascadeEntries =
    "engine.timer.cascade_entries";
inline constexpr const char* kGaugeTimerBucketPeak =
    "engine.timer.bucket_peak";

// Scheduler ready-queue occupancy (sched::ReadyQueue via
// Scheduler::queue_stats -> SimResult::queue_peak/queue_slots). Gauges merge
// by maximum, so a campaign snapshot reports the worst (run, scheduler)
// cell: peak is the summed per-queue occupancy high-water mark, slots the
// entry storage reserved — bounded by O(jobs), never by event count.
inline constexpr const char* kGaugeQueuePeak = "sched.queue.peak";
inline constexpr const char* kGaugeQueueSlots = "sched.queue.slots";

// Cluster plane (cluster::Dispatcher over cloud::MultiEngine). Counters
// accumulate across runs: placement churn (dispatches / preemptions /
// migrations), fleet elasticity (rent / release events), and the rental-cost
// integral. Gauges merge by maximum: rented_machines is the rented-fleet
// high-water mark; per-server utilisation gauges are built by
// cluster_util_gauge(k) as "cluster.util.server<k>" — busy time over session
// span, per machine.
inline constexpr const char* kCounterClusterDispatches = "cluster.dispatches";
inline constexpr const char* kCounterClusterPreemptions =
    "cluster.preemptions";
inline constexpr const char* kCounterClusterMigrations = "cluster.migrations";
inline constexpr const char* kCounterClusterRentEvents = "cluster.rent_events";
inline constexpr const char* kCounterClusterReleaseEvents =
    "cluster.release_events";
inline constexpr const char* kCounterClusterCostAccrued =
    "cluster.cost_accrued";
inline constexpr const char* kGaugeClusterRentedMachines =
    "cluster.rented_machines";
inline constexpr const char* kGaugeClusterRentedMachineTime =
    "cluster.rented_machine_time";

/// Per-server utilisation gauge name, "cluster.util.server<k>".
inline std::string cluster_util_gauge(std::size_t server) {
  return "cluster.util.server" + std::to_string(server);
}

/// Bridges a trace stream into a metrics shard: per-kind event counters
/// ("trace.release", "trace.dispatch", ...) plus derived distributions —
/// "job.response_time" (completion - release) and "job.slack_at_completion"
/// (deadline - completion). Lets any engine run feed the metrics surface
/// without bespoke wiring.
class TraceMetricsBridge : public TraceSink {
 public:
  explicit TraceMetricsBridge(MetricsRegistry::Shard& shard) : shard_(&shard) {}

  void record(const TraceEvent& event) override;

 private:
  MetricsRegistry::Shard* shard_;
  // Per-job release/deadline stamps, indexed by job slot (dense vectors, not
  // maps: the per-event path must not allocate node storage). NaN = unseen.
  std::vector<double> release_time_;
  std::vector<double> deadline_;
};

}  // namespace sjs::obs
