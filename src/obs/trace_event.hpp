// Typed trace records — the canonical event stream of an engine run.
//
// Every observable engine transition (release, dispatch, preemption,
// completion, expiry, timer, migration, capacity change) is recorded as one
// fixed-size POD record. The stream is *canonical*: for a given (instance,
// scheduler) pair it is bit-identical across processes, thread counts, and
// platforms with IEEE-754 doubles, which is what makes the replay digest
// (obs/digest.hpp) a meaningful determinism check.
//
// The payload fields `a`/`b` are kind-specific (full schema in
// docs/observability.md):
//
//   kind            job        a                    b
//   --------------  ---------  -------------------  --------------------
//   kRunStart       kNoJob     job count            0
//   kRelease        released   workload p_i         deadline d_i
//   kDispatch       dispatched remaining workload   0
//   kPreempt        displaced  remaining workload   0
//   kIdle           kNoJob     0                    0
//   kComplete       completed  value v_i            0
//   kExpire         expired    remaining workload   1 if it was running
//   kTimer          target     timer tag            0
//   kCapacityChange kNoJob     new rate c(t)        0
//   kMigrate        migrated   source server        destination server
//   kNote           annotated  note code            note-specific payload
//   kRunEnd         kNoJob     completed value      generated value
#pragma once

#include <cstdint>

#include "jobs/job.hpp"

namespace sjs::obs {

enum class TraceKind : std::uint8_t {
  kRunStart = 0,
  kRelease,
  kDispatch,
  kPreempt,
  kIdle,
  kComplete,
  kExpire,
  kTimer,
  kCapacityChange,
  kMigrate,
  kNote,
  kRunEnd,
};

/// Stable display name ("release", "dispatch", ...) used by the exporters.
const char* kind_name(TraceKind kind);

/// Scheduler annotation codes carried in TraceEvent::a when kind == kNote.
/// These let the InvariantChecker audit algorithm-internal decisions (e.g.
/// V-Dover's Procedure D) without reaching into scheduler state.
enum NoteCode : int {
  /// The zero-conservative-laxity value test (V-Dover Procedure D.1) was
  /// evaluated for `job`; payload b = the privileged value it was compared
  /// against.
  kNoteZeroLaxityTest = 1,
  /// `job` lost the test and was moved to the supplement queue (V-Dover).
  kNoteSupplement = 2,
  /// `job` lost the test and was abandoned (Dover mode).
  kNoteAbandon = 3,
  /// `job` won the test and was 0cl-scheduled immediately.
  kNoteOclScheduled = 4,
};

/// One trace record. `server` is the executing server index on the
/// multi-server engine and -1 on the single-server engine.
struct TraceEvent {
  double time = 0.0;
  TraceKind kind = TraceKind::kNote;
  JobId job = kNoJob;
  std::int32_t server = -1;
  double a = 0.0;
  double b = 0.0;
};

}  // namespace sjs::obs
