#include "obs/exporters.hpp"

#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>
#include "util/fp.hpp"

namespace sjs::obs {

namespace {

// Plain doubles print with enough digits to round-trip.
void print_double(std::ostream& out, double x) {
  const auto old_precision = out.precision(17);
  out << x;
  out.precision(old_precision);
}

void print_event_json(std::ostream& out, const TraceEvent& event) {
  out << "{\"t\":";
  print_double(out, event.time);
  out << ",\"kind\":\"" << kind_name(event.kind) << "\"";
  if (event.job != kNoJob) out << ",\"job\":" << event.job;
  if (event.server >= 0) out << ",\"server\":" << event.server;
  if (!fp::is_zero(event.a)) {
    out << ",\"a\":";
    print_double(out, event.a);
  }
  if (!fp::is_zero(event.b)) {
    out << ",\"b\":";
    print_double(out, event.b);
  }
  out << "}";
}

// Chrome trace timestamps are microseconds.
double to_us(double t) { return t * 1e6; }

class ChromeWriter {
 public:
  explicit ChromeWriter(std::ostream& out) : out_(&out) {}

  void write(const std::vector<TraceEvent>& events) {
    *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (const TraceEvent& event : events) handle(event);
    // Close slices left open at the stream end (e.g. a truncated ring).
    for (const auto& [server, slice] : open_) {
      emit_slice(slice.job, server, slice.start, last_time_);
    }
    *out_ << "]}";
  }

 private:
  struct OpenSlice {
    JobId job;
    double start;
  };

  static int track_of(const TraceEvent& event) {
    return event.server >= 0 ? event.server : 0;
  }

  void comma() {
    if (!first_) *out_ << ",";
    first_ = false;
  }

  void emit_slice(JobId job, int server, double start, double end) {
    comma();
    *out_ << "{\"name\":\"job " << job << "\",\"cat\":\"exec\",\"ph\":\"X\","
          << "\"ts\":";
    print_double(*out_, to_us(start));
    *out_ << ",\"dur\":";
    print_double(*out_, to_us(end - start));
    *out_ << ",\"pid\":0,\"tid\":" << server << ",\"args\":{\"job\":" << job
          << "}}";
  }

  void emit_instant(const TraceEvent& event) {
    comma();
    *out_ << "{\"name\":\"" << kind_name(event.kind);
    if (event.job != kNoJob) *out_ << " job " << event.job;
    *out_ << "\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
    print_double(*out_, to_us(event.time));
    *out_ << ",\"pid\":0,\"tid\":" << track_of(event) << "}";
  }

  void emit_counter(const TraceEvent& event) {
    comma();
    *out_ << "{\"name\":\"capacity\",\"ph\":\"C\",\"ts\":";
    print_double(*out_, to_us(event.time));
    *out_ << ",\"pid\":0,\"args\":{\"rate\":";
    print_double(*out_, event.a);
    *out_ << "}}";
  }

  void close_open(int server, double end) {
    const auto it = open_.find(server);
    if (it == open_.end()) return;
    emit_slice(it->second.job, server, it->second.start, end);
    open_.erase(it);
  }

  void handle(const TraceEvent& event) {
    last_time_ = event.time;
    const int server = track_of(event);
    switch (event.kind) {
      case TraceKind::kDispatch:
        close_open(server, event.time);
        open_[server] = OpenSlice{event.job, event.time};
        break;
      case TraceKind::kPreempt:
      case TraceKind::kIdle:
        close_open(server, event.time);
        break;
      case TraceKind::kComplete:
      case TraceKind::kExpire:
        close_open(server, event.time);
        emit_instant(event);
        break;
      case TraceKind::kMigrate:
        // a = source server; the destination slice opens at its kDispatch.
        close_open(static_cast<int>(event.a), event.time);
        emit_instant(event);
        break;
      case TraceKind::kRelease:
      case TraceKind::kTimer:
        emit_instant(event);
        break;
      case TraceKind::kCapacityChange:
        emit_counter(event);
        break;
      case TraceKind::kRunStart:
      case TraceKind::kNote:
      case TraceKind::kRunEnd:
        break;  // bookkeeping records; no timeline geometry
    }
  }

  std::ostream* out_;
  std::map<int, OpenSlice> open_;
  bool first_ = true;
  double last_time_ = 0.0;
};

}  // namespace

void JsonlTraceSink::record(const TraceEvent& event) {
  print_event_json(*out_, event);
  *out_ << "\n";
}

void JsonlTraceSink::flush() { out_->flush(); }

void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  JsonlTraceSink sink(out);
  for (const TraceEvent& event : events) sink.record(event);
  sink.flush();
}

void write_chrome_trace(const std::vector<TraceEvent>& events,
                        std::ostream& out) {
  ChromeWriter(out).write(events);
  out.flush();
}

void save_trace(const std::vector<TraceEvent>& events, const std::string& path,
                const std::string& format) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  if (format == "jsonl") {
    write_jsonl(events, out);
  } else if (format == "chrome") {
    write_chrome_trace(events, out);
  } else {
    throw std::runtime_error("unknown trace format: " + format +
                             " (expected jsonl|chrome)");
  }
}

}  // namespace sjs::obs
