#include "obs/ring_buffer.hpp"

#include "util/logging.hpp"

namespace sjs::obs {

RingTraceBuffer::RingTraceBuffer(std::size_t capacity) : buffer_(capacity) {
  SJS_CHECK_MSG(capacity > 0, "ring buffer needs capacity >= 1");
}

void RingTraceBuffer::record(const TraceEvent& event) {
  buffer_[next_] = event;
  next_ = (next_ + 1) % buffer_.size();
  ++total_;
}

std::size_t RingTraceBuffer::size() const {
  return total_ < buffer_.size() ? static_cast<std::size_t>(total_)
                                 : buffer_.size();
}

std::uint64_t RingTraceBuffer::dropped() const {
  return total_ > buffer_.size() ? total_ - buffer_.size() : 0;
}

std::vector<TraceEvent> RingTraceBuffer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained event sits at `next_` once the buffer has wrapped.
  const std::size_t start = (total_ > buffer_.size()) ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

}  // namespace sjs::obs
