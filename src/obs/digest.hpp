// Replay determinism digest — a 64-bit hash folded over the canonical event
// stream of a run.
//
// The engine's determinism contract (DESIGN.md §5, README "Determinism")
// promises bit-identical runs for a given (instance, scheduler) pair,
// independent of thread count. The digest turns that promise into a cheap,
// checkable assertion: fold every TraceEvent into a running hash and compare
// the final value across configurations. Any divergence — a reordered event,
// a single bit of floating-point drift — changes the digest with
// overwhelming probability.
//
// The fold is order-sensitive by construction (event order IS the contract)
// and uses the splitmix64 finalizer, whose avalanche behaviour makes
// near-identical streams hash far apart. Doubles are folded by IEEE-754 bit
// pattern with -0.0 normalised to +0.0.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_sink.hpp"

namespace sjs::obs {

/// Digest seed; shared so independently computed digests are comparable.
inline constexpr std::uint64_t kDigestSeed = 0x5A17AB1EDEADC0DEull;

/// splitmix64 finalizer (Vigna): bijective 64-bit mixer with full avalanche.
std::uint64_t mix64(std::uint64_t x);

/// Canonical bit pattern of a double (-0.0 -> +0.0).
std::uint64_t double_bits(double x);

/// Folds one event into a running digest.
std::uint64_t fold_event(std::uint64_t digest, const TraceEvent& event);

/// Order-sensitive combination of per-run digests into a campaign digest.
std::uint64_t combine_digests(const std::vector<std::uint64_t>& digests);

/// Sink computing the digest of the stream it observes.
class DigestSink : public TraceSink {
 public:
  void record(const TraceEvent& event) override {
    digest_ = fold_event(digest_, event);
    ++count_;
  }

  std::uint64_t digest() const { return digest_; }
  std::uint64_t event_count() const { return count_; }

 private:
  std::uint64_t digest_ = kDigestSeed;
  std::uint64_t count_ = 0;
};

}  // namespace sjs::obs
