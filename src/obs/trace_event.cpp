#include "obs/trace_event.hpp"

namespace sjs::obs {

const char* kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRunStart:
      return "run_start";
    case TraceKind::kRelease:
      return "release";
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kIdle:
      return "idle";
    case TraceKind::kComplete:
      return "complete";
    case TraceKind::kExpire:
      return "expire";
    case TraceKind::kTimer:
      return "timer";
    case TraceKind::kCapacityChange:
      return "capacity_change";
    case TraceKind::kMigrate:
      return "migrate";
    case TraceKind::kNote:
      return "note";
    case TraceKind::kRunEnd:
      return "run_end";
  }
  return "unknown";
}

}  // namespace sjs::obs
