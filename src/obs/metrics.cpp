#include "obs/metrics.hpp"

#include <atomic>
#include <sstream>
#include <unordered_map>

#include "util/logging.hpp"

namespace sjs::obs {

namespace {
std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}
}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

void MetricsRegistry::Shard::count(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricsRegistry::Shard::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::Shard::observe(const std::string& name, double value) {
  distributions_[name].add(value);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    const auto spec = owner_->histogram_specs_.find(name);
    if (spec == owner_->histogram_specs_.end()) return;
    it = histograms_
             .emplace(name, Histogram(spec->second.lo, spec->second.hi,
                                      spec->second.bins))
             .first;
  }
  it->second.add(value);
}

void MetricsRegistry::declare_histogram(const std::string& name, double lo,
                                        double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  SJS_CHECK_MSG(shards_.empty(),
                "declare_histogram() after shards exist would bin "
                "inconsistently; declare before the parallel region");
  histogram_specs_.insert_or_assign(name, HistogramSpec{lo, hi, bins});
}

MetricsRegistry::Shard& MetricsRegistry::local() {
  // Keyed by registry id, not pointer: a destroyed registry's address can be
  // reused, and a stale cache hit would then write into a foreign shard.
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;
  std::lock_guard<std::mutex> lock(mu_);
  // sjs-lint: allow(alloc-in-hot-path): once per thread at first use; steady state takes the thread-local fast path
  shards_.push_back(std::unique_ptr<Shard>(new Shard(this)));
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return *shard;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& shard : shards_) {
    for (const auto& [name, value] : shard->counters_) {
      snap.counters[name] += value;
    }
    for (const auto& [name, value] : shard->gauges_) {
      auto [it, inserted] = snap.gauges.emplace(name, value);
      if (!inserted && value > it->second) it->second = value;
    }
    for (const auto& [name, welford] : shard->distributions_) {
      snap.distributions[name].merge(welford);
    }
    for (const auto& [name, histogram] : shard->histograms_) {
      auto [it, inserted] = snap.histograms.emplace(name, histogram);
      if (!inserted) it->second.merge(histogram);
    }
  }
  return snap;
}

std::string MetricsSnapshot::render() const {
  std::ostringstream os;
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters) {
      os << "  " << name << ": " << value << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      os << "  " << name << ": " << value << "\n";
    }
  }
  if (!distributions.empty()) {
    os << "distributions:\n";
    for (const auto& [name, w] : distributions) {
      os << "  " << name << ": n=" << w.count() << " mean=" << w.mean()
         << " sd=" << w.stddev_sample() << " min=" << w.min()
         << " max=" << w.max() << "\n";
    }
  }
  for (const auto& [name, histogram] : histograms) {
    os << "histogram " << name << ":\n" << histogram.render();
  }
  return os.str();
}

void TraceMetricsBridge::record(const TraceEvent& event) {
  shard_->count(std::string("trace.") + kind_name(event.kind));
  switch (event.kind) {
    case TraceKind::kRelease:
      release_time_[event.job] = event.time;
      deadline_[event.job] = event.b;
      break;
    case TraceKind::kComplete: {
      const auto rel = release_time_.find(event.job);
      if (rel != release_time_.end()) {
        shard_->observe("job.response_time", event.time - rel->second);
      }
      const auto dl = deadline_.find(event.job);
      if (dl != deadline_.end()) {
        shard_->observe("job.slack_at_completion", dl->second - event.time);
      }
      break;
    }
    case TraceKind::kRunEnd:
      if (event.b > 0.0) {
        shard_->observe("run.value_fraction", event.a / event.b);
      }
      break;
    default:
      break;
  }
}

}  // namespace sjs::obs
