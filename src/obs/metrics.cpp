#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/logging.hpp"
#include "util/vec.hpp"

namespace sjs::obs {

namespace {
std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}
}  // namespace

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

void MetricsRegistry::Shard::count(std::string_view name, double delta) {
  // Heterogeneous lookup: the steady-state path (key already present) never
  // builds a std::string. The insert is first-use setup.
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
    return;
  }
  counters_.emplace(std::string(name), delta);
}

void MetricsRegistry::Shard::set_gauge(std::string_view name, double value) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    it->second = value;
    return;
  }
  gauges_.emplace(std::string(name), value);
}

void MetricsRegistry::Shard::observe(std::string_view name, double value) {
  auto dist = distributions_.find(name);
  if (dist == distributions_.end()) {
    dist = distributions_.emplace(std::string(name), Welford{}).first;
  }
  dist->second.add(value);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    const auto spec = owner_->histogram_specs_.find(name);
    if (spec == owner_->histogram_specs_.end()) return;
    it = histograms_
             .emplace(std::string(name),
                      Histogram(spec->second.lo, spec->second.hi,
                                spec->second.bins))
             .first;
  }
  it->second.add(value);
}

void MetricsRegistry::declare_histogram(const std::string& name, double lo,
                                        double hi, std::size_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  SJS_CHECK_MSG(shards_.empty(),
                "declare_histogram() after shards exist would bin "
                "inconsistently; declare before the parallel region");
  histogram_specs_.insert_or_assign(name, HistogramSpec{lo, hi, bins});
}

MetricsRegistry::Shard& MetricsRegistry::local() {
  // Keyed by registry id, not pointer: a destroyed registry's address can be
  // reused, and a stale cache hit would then write into a foreign shard.
  thread_local std::unordered_map<std::uint64_t, Shard*> cache;
  const auto it = cache.find(id_);
  if (it != cache.end()) return *it->second;
  std::lock_guard<std::mutex> lock(mu_);
  // Once per (thread, registry) at first use; every later call takes the
  // thread-local cache fast path above, so the steady state never reaches
  // this allocation.
  util::append(shards_, util::alloc_unique<Shard>(this));
  Shard* shard = shards_.back().get();
  cache.emplace(id_, shard);
  return *shard;
}

std::size_t MetricsRegistry::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& shard : shards_) {
    for (const auto& [name, value] : shard->counters_) {
      snap.counters[name] += value;
    }
    for (const auto& [name, value] : shard->gauges_) {
      auto [it, inserted] = snap.gauges.emplace(name, value);
      if (!inserted && value > it->second) it->second = value;
    }
    for (const auto& [name, welford] : shard->distributions_) {
      snap.distributions[name].merge(welford);
    }
    for (const auto& [name, histogram] : shard->histograms_) {
      auto [it, inserted] = snap.histograms.emplace(name, histogram);
      if (!inserted) it->second.merge(histogram);
    }
  }
  return snap;
}

std::string MetricsSnapshot::render() const {
  std::ostringstream os;
  if (!counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : counters) {
      os << "  " << name << ": " << value << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : gauges) {
      os << "  " << name << ": " << value << "\n";
    }
  }
  if (!distributions.empty()) {
    os << "distributions:\n";
    for (const auto& [name, w] : distributions) {
      os << "  " << name << ": n=" << w.count() << " mean=" << w.mean()
         << " sd=" << w.stddev_sample() << " min=" << w.min()
         << " max=" << w.max() << "\n";
    }
  }
  for (const auto& [name, histogram] : histograms) {
    os << "histogram " << name << ":\n" << histogram.render();
  }
  return os.str();
}

namespace {
// Pre-joined "trace.<kind>" counter names, indexed by TraceKind. Keeping the
// table static makes the per-event counter bump string-free (the old
// std::string("trace.") + kind_name(...) concatenation allocated per event).
constexpr const char* kTraceCounterName[] = {
    "trace.run_start", "trace.release", "trace.dispatch",
    "trace.preempt",   "trace.idle",    "trace.complete",
    "trace.expire",    "trace.timer",   "trace.capacity_change",
    "trace.migrate",   "trace.note",    "trace.run_end",
};
static_assert(sizeof(kTraceCounterName) / sizeof(kTraceCounterName[0]) ==
              static_cast<std::size_t>(TraceKind::kRunEnd) + 1);
}  // namespace

void TraceMetricsBridge::record(const TraceEvent& event) {
  shard_->count(kTraceCounterName[static_cast<std::size_t>(event.kind)]);
  constexpr double kUnseen = std::numeric_limits<double>::quiet_NaN();
  switch (event.kind) {
    case TraceKind::kRelease: {
      const auto slot = static_cast<std::size_t>(job_slot(event.job));
      util::grow_to_index_fill(release_time_, slot, kUnseen);
      util::grow_to_index_fill(deadline_, slot, kUnseen);
      release_time_[slot] = event.time;
      deadline_[slot] = event.b;
      break;
    }
    case TraceKind::kComplete: {
      const auto slot = static_cast<std::size_t>(job_slot(event.job));
      if (slot < release_time_.size() && !std::isnan(release_time_[slot])) {
        shard_->observe("job.response_time", event.time - release_time_[slot]);
      }
      if (slot < deadline_.size() && !std::isnan(deadline_[slot])) {
        shard_->observe("job.slack_at_completion",
                        deadline_[slot] - event.time);
      }
      break;
    }
    case TraceKind::kRunEnd:
      if (event.b > 0.0) {
        shard_->observe("run.value_fraction", event.a / event.b);
      }
      break;
    default:
      break;
  }
}

}  // namespace sjs::obs
