// TraceSink — the consumer interface for engine event streams.
//
// Engines hold a raw `TraceSink*` that defaults to nullptr; the recording
// helper compiles to a single null check when tracing is disabled, so the
// hot path pays nothing measurable. A sink is owned by the caller and must
// outlive the run. Sinks are single-threaded by design: each engine run is
// sequential, and parallel Monte-Carlo campaigns attach one sink per run
// (per worker thread) — lock-free without any atomics.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace_event.hpp"
#include "util/vec.hpp"

namespace sjs::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Consumes one event. Called in canonical stream order.
  virtual void record(const TraceEvent& event) = 0;

  /// Flushes any buffered output (no-op for in-memory sinks).
  virtual void flush() {}
};

/// Unbounded in-memory sink — the input both exporters consume.
class VectorTraceSink : public TraceSink {
 public:
  /// Capture sink for tests/offline analysis; growth-to-high-water across
  /// clear()/reuse. Production runs use counting sinks.
  void record(const TraceEvent& event) override { util::append(events_, event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Fan-out to several sinks (e.g. digest + invariant checker + JSONL file in
/// one run). Sinks are not owned.
class TeeSink : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  /// Setup-time wiring; add() is never called after the run starts.
  void add(TraceSink* sink) { util::append(sinks_, sink); }
  std::size_t sink_count() const { return sinks_.size(); }

  void record(const TraceEvent& event) override {
    for (TraceSink* sink : sinks_) sink->record(event);
  }
  void flush() override {
    for (TraceSink* sink : sinks_) sink->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace sjs::obs
